module Ast = Mv_calc.Ast
module Expr = Mv_calc.Expr
module Value = Mv_calc.Value
module Imc = Mv_imc.Imc
module To_ctmc = Mv_imc.To_ctmc
module Ctmc = Mv_markov.Ctmc

type summary = {
  throughput : float;
  mean_occupancy : float;
  mean_latency : float;
  blocking : float;
}

let rec occupancy_of_term ~queue term =
  match term with
  | Ast.Call (name, _, Expr.Const (Value.VInt n) :: _) when String.equal name queue ->
    Some n
  | Ast.Call _ | Ast.Stop | Ast.Exit _ -> None
  | Ast.Prefix (_, k) | Ast.Rate (_, k) | Ast.Guard (_, k)
  | Ast.Hide (_, k) | Ast.Rename (_, k) | Ast.At (_, k) ->
    occupancy_of_term ~queue k
  | Ast.Choice bs ->
    List.fold_left
      (fun acc b ->
         match acc with Some _ -> acc | None -> occupancy_of_term ~queue b)
      None bs
  | Ast.Par (_, x, y) | Ast.Seq (x, _, y) -> (
      match occupancy_of_term ~queue x with
      | Some n -> Some n
      | None -> occupancy_of_term ~queue y)

let occupancy_distribution ?(queue = Queues.queue_process_name) spec ~capacity =
  let outcome = Mv_calc.State_space.generate spec in
  let imc = Imc.of_lts outcome.Mv_calc.State_space.lts in
  let progressed = Imc.maximal_progress (Imc.hide_all imc) in
  let conv = To_ctmc.convert progressed in
  let pi = Ctmc.steady_state conv.To_ctmc.ctmc in
  let dist = Array.make (capacity + 1) 0.0 in
  Array.iteri
    (fun imc_state ctmc_state ->
       if ctmc_state >= 0 then
         match
           occupancy_of_term ~queue outcome.Mv_calc.State_space.terms.(imc_state)
         with
         | Some n when n >= 0 && n <= capacity ->
           dist.(n) <- dist.(n) +. pi.(ctmc_state)
         | Some _ | None -> ())
    conv.To_ctmc.ctmc_state_of_imc;
  (* the mass on states without a readable occupancy (artificial
     initial only) is negligible; renormalize nonetheless *)
  let total = Array.fold_left ( +. ) 0.0 dist in
  if total > 0.0 then Array.map (fun p -> p /. total) dist else dist

let summary ?(queue = Queues.queue_process_name) spec ~capacity =
  let perf = Mv_core.Flow.Run.performance
    Mv_core.Flow.Config.(default |> with_keep [ "pop" ]) spec in
  let throughput = Mv_core.Flow.throughput perf ~gate:"pop" in
  let dist = occupancy_distribution ~queue spec ~capacity in
  let mean_occupancy = ref 0.0 in
  Array.iteri
    (fun n p -> mean_occupancy := !mean_occupancy +. (float_of_int n *. p))
    dist;
  {
    throughput;
    mean_occupancy = !mean_occupancy;
    mean_latency = !mean_occupancy /. throughput;
    blocking = dist.(capacity);
  }

type spill_summary = {
  spill_throughput : float;
  mean_hw : float;
  mean_spilled : float;
  spilling : float;
}

let rec spill_of_term term =
  match term with
  | Ast.Call ("Queue", _, Expr.Const (Value.VInt hw) :: Expr.Const (Value.VInt sp) :: _)
    -> Some (hw, sp)
  | Ast.Call _ | Ast.Stop | Ast.Exit _ -> None
  | Ast.Prefix (_, k) | Ast.Rate (_, k) | Ast.Guard (_, k)
  | Ast.Hide (_, k) | Ast.Rename (_, k) | Ast.At (_, k) -> spill_of_term k
  | Ast.Choice bs ->
    List.fold_left
      (fun acc b -> match acc with Some _ -> acc | None -> spill_of_term b)
      None bs
  | Ast.Par (_, x, y) | Ast.Seq (x, _, y) -> (
      match spill_of_term x with Some v -> Some v | None -> spill_of_term y)

let spill_summary spec =
  let outcome = Mv_calc.State_space.generate spec in
  let imc = Imc.of_lts outcome.Mv_calc.State_space.lts in
  let progressed = Imc.maximal_progress (Imc.hide_all imc) in
  let conv = To_ctmc.convert progressed in
  let pi = Ctmc.steady_state conv.To_ctmc.ctmc in
  let mean_hw = ref 0.0 and mean_spilled = ref 0.0 and spilling = ref 0.0 in
  Array.iteri
    (fun imc_state ctmc_state ->
       if ctmc_state >= 0 then
         match spill_of_term outcome.Mv_calc.State_space.terms.(imc_state) with
         | Some (hw, sp) ->
           mean_hw := !mean_hw +. (float_of_int hw *. pi.(ctmc_state));
           mean_spilled := !mean_spilled +. (float_of_int sp *. pi.(ctmc_state));
           if sp > 0 then spilling := !spilling +. pi.(ctmc_state)
         | None -> ())
    conv.To_ctmc.ctmc_state_of_imc;
  let perf = Mv_core.Flow.Run.performance
    Mv_core.Flow.Config.(default |> with_keep [ "pop" ]) spec in
  {
    spill_throughput = Mv_core.Flow.throughput perf ~gate:"pop";
    mean_hw = !mean_hw;
    mean_spilled = !mean_spilled;
    spilling = !spilling;
  }
