(** Interactive Markov Chains (Hermanns, LNCS 2428).

    An IMC combines interactive transitions (labelled, subject to
    synchronization, tau included) with Markovian transitions
    (exponential rates). This module provides the operations of the
    performance-evaluation flow: decoding ["rate <lambda>"] labels from
    generated LTSs, parallel composition, hiding, and the maximal
    progress cut. *)

type t

(** [make ~nb_states ~initial ~labels ~interactive ~markovian] —
    [interactive] are [(src, label_id, dst)] over [labels], [markovian]
    are [(src, rate, dst)] with positive rates. *)
val make :
  nb_states:int ->
  initial:int ->
  labels:Mv_lts.Label.table ->
  interactive:(int * int * int) list ->
  markovian:(int * float * int) list ->
  t

val nb_states : t -> int
val initial : t -> int
val labels : t -> Mv_lts.Label.table
val nb_interactive : t -> int
val nb_markovian : t -> int

val iter_interactive : t -> (int -> int -> int -> unit) -> unit

val iter_markovian : t -> (int -> float -> int -> unit) -> unit

(** Outgoing interactive transitions of one state, as
    [(label, dst)]. *)
val interactive_out : t -> int -> (int * int) list

(** Outgoing Markovian transitions of one state, as [(rate, dst)]. *)
val markovian_out : t -> int -> (float * int) list

(** Allocation-free per-state iteration, in the same [(label, dst)]
    (resp. [(rate, dst)]) order as the [_out] lists — which is also the
    per-state order of {!iter_interactive} / {!iter_markovian}. *)
val iter_interactive_out : t -> int -> (int -> int -> unit) -> unit

val iter_markovian_out : t -> int -> (float -> int -> unit) -> unit

(** {1 Conversions} *)

(** The gate used to encode Markovian transitions in LTS labels. *)
val rate_gate : string

(** [of_lts lts] decodes an LTS whose ["rate <lambda>"] labels denote
    Markovian transitions (as produced by {!Mv_calc.State_space} on
    specifications with [Rate] prefixes). *)
val of_lts : Mv_lts.Lts.t -> t

(** [to_lts imc] encodes Markovian transitions back into
    ["rate <lambda>"] labels (used to reuse LTS-level algorithms).
    Rates print as [%.12g] by default; [~exact:true] prints hex floats
    ([%h]), which {!of_lts} parses back bit-identically — required
    when the LTS is a storage format (the {!Mv_store} cache) rather
    than a display format. *)
val to_lts : ?exact:bool -> t -> Mv_lts.Lts.t

(** {1 Operators} *)

(** [hide imc ~gates] — interactive labels whose gate is in [gates]
    become tau. *)
val hide : t -> gates:string list -> t

(** Hide every visible interactive label. *)
val hide_all : t -> t

(** [par ~sync a b] — parallel composition, synchronizing interactive
    transitions whose gate belongs to [sync] (labels must match
    exactly); Markovian transitions always interleave. Only reachable
    product states are built. *)
val par : sync:string list -> t -> t -> t

(** [maximal_progress imc] removes Markovian transitions from every
    state that has an outgoing tau: internal moves are immediate and
    pre-empt exponential delays. (Sound on closed systems: apply after
    hiding.) *)
val maximal_progress : t -> t

(** States with at least one interactive transition, after
    {!maximal_progress} these are the vanishing states. *)
val unstable_states : t -> int list

val pp : Format.formatter -> t -> unit
