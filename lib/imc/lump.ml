module Partition = Mv_bisim.Partition
module Label = Mv_lts.Label
module Sig_table = Mv_kern.Sig_table

(* Rates enter signatures as strings rounded to 12 significant digits;
   see the interface for the rationale. *)
let rate_key r = Printf.sprintf "%.12e" r

let signatures_legacy imc (p : Partition.t) =
  let n = Imc.nb_states imc in
  let interactive_sig = Array.make n [] in
  Imc.iter_interactive imc (fun s l d ->
      interactive_sig.(s) <- (l, p.block_of.(d)) :: interactive_sig.(s));
  let markov_acc : (int, float) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 4)
  in
  Imc.iter_markovian imc (fun s r d ->
      let block = p.block_of.(d) in
      let current = Option.value ~default:0.0 (Hashtbl.find_opt markov_acc.(s) block) in
      Hashtbl.replace markov_acc.(s) block (current +. r));
  Array.init n (fun s ->
      let interactive = List.sort_uniq compare interactive_sig.(s) in
      let markovian =
        Hashtbl.fold (fun block r acc -> (block, rate_key r) :: acc) markov_acc.(s) []
        |> List.sort compare
      in
      (interactive, markovian))

let partition_legacy imc =
  let n = Imc.nb_states imc in
  let rec loop (p : Partition.t) =
    let sigs = signatures_legacy imc p in
    let keys = Hashtbl.create 256 in
    let block_of = Array.make n 0 in
    let next = ref 0 in
    for s = 0 to n - 1 do
      let key = (p.block_of.(s), sigs.(s)) in
      let id =
        match Hashtbl.find_opt keys key with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.replace keys key id;
          id
      in
      block_of.(s) <- id
    done;
    let p' : Partition.t = { block_of; count = !next } in
    if p'.count = p.count then p' else loop p'
  in
  loop (Partition.trivial n)

(* Flat engine over the Mv_kern signature table. An interactive move
   (l, b) packs into the single word [l * (n+1) + b]; Markovian rates
   accumulate per destination block into a scratch float array in the
   exact per-state transition order of the legacy Hashtbl engine (so
   the sums — and their [%.12e] roundings — are bitwise the same),
   then enter the signature as [min_int; b1; rid1; b2; rid2; ...] with
   blocks ascending, where [rid] interns the rounded rate string. The
   [min_int] separator cannot collide with packed interactive words
   (nonnegative), so two flat signatures are equal exactly when the
   legacy pairs are: the per-round grouping, the first-occurrence ids,
   and hence the final partition are all identical to the legacy
   engine's. *)
let partition imc =
  let n = Imc.nb_states imc in
  let rounds = Mv_obs.Obs.counter "lump.rounds" in
  let blocks = Mv_obs.Obs.series "lump.blocks" in
  let base = n + 1 in
  let table = Sig_table.create () in
  let rate_ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rate_id r =
    let key = rate_key r in
    match Hashtbl.find_opt rate_ids key with
    | Some id -> id
    | None ->
      let id = Hashtbl.length rate_ids in
      Hashtbl.add rate_ids key id;
      id
  in
  let racc = Array.make n 0.0 in
  let rtouched = Array.make n 0 in
  let buf = ref (Array.make 64 0) in
  let len = ref 0 in
  let push x =
    if !len >= Array.length !buf then begin
      let b = Array.make (2 * Array.length !buf) 0 in
      Array.blit !buf 0 b 0 !len;
      buf := b
    end;
    !buf.(!len) <- x;
    incr len
  in
  let rec loop (p : Partition.t) =
    Sig_table.reset table;
    let block_of = Array.make n 0 in
    for s = 0 to n - 1 do
      len := 0;
      Imc.iter_interactive_out imc s (fun l d ->
          push ((l * base) + p.block_of.(d)));
      len := Sig_table.sort_dedup !buf !len;
      let nb_blocks = ref 0 in
      Imc.iter_markovian_out imc s (fun r d ->
          let b = p.block_of.(d) in
          (* rates are strictly positive, so 0.0 means untouched *)
          if racc.(b) = 0.0 then begin
            rtouched.(!nb_blocks) <- b;
            incr nb_blocks
          end;
          racc.(b) <- racc.(b) +. r);
      if !nb_blocks > 0 then begin
        push min_int;
        let nb = Sig_table.sort_dedup rtouched !nb_blocks in
        for j = 0 to nb - 1 do
          let b = rtouched.(j) in
          push b;
          push (rate_id racc.(b));
          racc.(b) <- 0.0
        done
      end;
      block_of.(s) <-
        Sig_table.classify table ~block:p.block_of.(s) (Array.sub !buf 0 !len)
    done;
    let p' : Partition.t = { block_of; count = Sig_table.count table } in
    Mv_obs.Obs.incr rounds;
    Mv_obs.Obs.push blocks (float_of_int p'.count);
    Mv_obs.Obs.progress (fun () ->
        Printf.sprintf "lump: %d block(s) over %d state(s)" p'.count n);
    if p'.count = p.count then p' else loop p'
  in
  loop (Partition.trivial n)

let partition imc = Mv_obs.Obs.span "imc.lump" (fun () -> partition imc)

let quotient imc (p : Partition.t) =
  let interactive = ref [] in
  Imc.iter_interactive imc (fun s l d ->
      interactive := (p.block_of.(s), l, p.block_of.(d)) :: !interactive);
  (* Markovian rates: sum over the transitions of one representative
     per block (lumpability guarantees any representative agrees). *)
  let representative = Array.make p.count (-1) in
  for s = Imc.nb_states imc - 1 downto 0 do
    representative.(p.block_of.(s)) <- s
  done;
  let markovian = ref [] in
  Array.iteri
    (fun block s ->
       if s >= 0 then begin
         let acc = Hashtbl.create 4 in
         List.iter
           (fun (r, d) ->
              let dst = p.block_of.(d) in
              let current = Option.value ~default:0.0 (Hashtbl.find_opt acc dst) in
              Hashtbl.replace acc dst (current +. r))
           (Imc.markovian_out imc s);
         Hashtbl.iter (fun dst r -> markovian := (block, r, dst) :: !markovian) acc
       end)
    representative;
  Imc.make ~nb_states:p.count
    ~initial:p.block_of.(Imc.initial imc)
    ~labels:(Imc.labels imc)
    ~interactive:(List.sort_uniq compare !interactive)
    ~markovian:!markovian

let minimize imc = quotient imc (partition imc)
let minimize_legacy imc = quotient imc (partition_legacy imc)

let equivalent a b =
  (* direct disjoint union (keeps Markovian multiplicities intact) *)
  let offset = Imc.nb_states a in
  let labels = Label.create () in
  let interactive = ref [] and markovian = ref [] in
  Imc.iter_interactive a (fun s l d ->
      interactive :=
        (s, Label.intern labels (Label.name (Imc.labels a) l), d) :: !interactive);
  Imc.iter_markovian a (fun s r d -> markovian := (s, r, d) :: !markovian);
  Imc.iter_interactive b (fun s l d ->
      interactive :=
        (s + offset, Label.intern labels (Label.name (Imc.labels b) l), d + offset)
        :: !interactive);
  Imc.iter_markovian b (fun s r d ->
      markovian := (s + offset, r, d + offset) :: !markovian);
  let union =
    Imc.make
      ~nb_states:(offset + Imc.nb_states b)
      ~initial:(Imc.initial a) ~labels ~interactive:!interactive
      ~markovian:!markovian
  in
  let p = partition union in
  Partition.same_block p (Imc.initial a) (offset + Imc.initial b)
