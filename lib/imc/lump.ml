module Partition = Mv_bisim.Partition
module Label = Mv_lts.Label

(* Rates enter signatures as strings rounded to 12 significant digits;
   see the interface for the rationale. *)
let rate_key r = Printf.sprintf "%.12e" r

let signatures imc (p : Partition.t) =
  let n = Imc.nb_states imc in
  let interactive_sig = Array.make n [] in
  Imc.iter_interactive imc (fun s l d ->
      interactive_sig.(s) <- (l, p.block_of.(d)) :: interactive_sig.(s));
  let markov_acc : (int, float) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 4)
  in
  Imc.iter_markovian imc (fun s r d ->
      let block = p.block_of.(d) in
      let current = Option.value ~default:0.0 (Hashtbl.find_opt markov_acc.(s) block) in
      Hashtbl.replace markov_acc.(s) block (current +. r));
  Array.init n (fun s ->
      let interactive = List.sort_uniq compare interactive_sig.(s) in
      let markovian =
        Hashtbl.fold (fun block r acc -> (block, rate_key r) :: acc) markov_acc.(s) []
        |> List.sort compare
      in
      (interactive, markovian))

let partition imc =
  let n = Imc.nb_states imc in
  let rounds = Mv_obs.Obs.counter "lump.rounds" in
  let blocks = Mv_obs.Obs.series "lump.blocks" in
  let rec loop (p : Partition.t) =
    let sigs = signatures imc p in
    let keys = Hashtbl.create 256 in
    let block_of = Array.make n 0 in
    let next = ref 0 in
    for s = 0 to n - 1 do
      let key = (p.block_of.(s), sigs.(s)) in
      let id =
        match Hashtbl.find_opt keys key with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.replace keys key id;
          id
      in
      block_of.(s) <- id
    done;
    let p' : Partition.t = { block_of; count = !next } in
    Mv_obs.Obs.incr rounds;
    Mv_obs.Obs.push blocks (float_of_int p'.count);
    Mv_obs.Obs.progress (fun () ->
        Printf.sprintf "lump: %d block(s) over %d state(s)" p'.count n);
    if p'.count = p.count then p' else loop p'
  in
  loop (Partition.trivial n)

let partition imc = Mv_obs.Obs.span "imc.lump" (fun () -> partition imc)

let quotient imc (p : Partition.t) =
  let interactive = ref [] in
  Imc.iter_interactive imc (fun s l d ->
      interactive := (p.block_of.(s), l, p.block_of.(d)) :: !interactive);
  (* Markovian rates: sum over the transitions of one representative
     per block (lumpability guarantees any representative agrees). *)
  let representative = Array.make p.count (-1) in
  for s = Imc.nb_states imc - 1 downto 0 do
    representative.(p.block_of.(s)) <- s
  done;
  let markovian = ref [] in
  Array.iteri
    (fun block s ->
       if s >= 0 then begin
         let acc = Hashtbl.create 4 in
         List.iter
           (fun (r, d) ->
              let dst = p.block_of.(d) in
              let current = Option.value ~default:0.0 (Hashtbl.find_opt acc dst) in
              Hashtbl.replace acc dst (current +. r))
           (Imc.markovian_out imc s);
         Hashtbl.iter (fun dst r -> markovian := (block, r, dst) :: !markovian) acc
       end)
    representative;
  Imc.make ~nb_states:p.count
    ~initial:p.block_of.(Imc.initial imc)
    ~labels:(Imc.labels imc)
    ~interactive:(List.sort_uniq compare !interactive)
    ~markovian:!markovian

let minimize imc = quotient imc (partition imc)

let equivalent a b =
  (* direct disjoint union (keeps Markovian multiplicities intact) *)
  let offset = Imc.nb_states a in
  let labels = Label.create () in
  let interactive = ref [] and markovian = ref [] in
  Imc.iter_interactive a (fun s l d ->
      interactive :=
        (s, Label.intern labels (Label.name (Imc.labels a) l), d) :: !interactive);
  Imc.iter_markovian a (fun s r d -> markovian := (s, r, d) :: !markovian);
  Imc.iter_interactive b (fun s l d ->
      interactive :=
        (s + offset, Label.intern labels (Label.name (Imc.labels b) l), d + offset)
        :: !interactive);
  Imc.iter_markovian b (fun s r d ->
      markovian := (s + offset, r, d + offset) :: !markovian);
  let union =
    Imc.make
      ~nb_states:(offset + Imc.nb_states b)
      ~initial:(Imc.initial a) ~labels ~interactive:!interactive
      ~markovian:!markovian
  in
  let p = partition union in
  Partition.same_block p (Imc.initial a) (offset + Imc.initial b)
