(** Stochastic bisimulation minimization of IMCs.

    The equivalence refines strong bisimulation on interactive
    transitions with ordinary lumpability on Markovian rates: two
    states are equivalent when they have the same [(label, block)]
    interactive moves and the same cumulative rate into every block.

    This is the "stochastic state space minimization" step that the
    flow alternates with generation. Cumulative rates are compared
    after rounding to 12 significant digits, so rate sums that differ
    only by floating-point association are lumped together.

    The default engine packs signatures into flat int arrays over
    {!Mv_kern.Sig_table} (rates summed in the same order and rounded
    to the same strings as the legacy engine, then interned); its
    partitions are identical to the legacy engine's, block ids
    included, so quotients and cache keys are unchanged. *)

(** Coarsest stochastic-bisimulation partition. *)
val partition : Imc.t -> Mv_bisim.Partition.t

(** Quotient IMC (reachable part): one state per block, interactive
    transitions deduplicated, Markovian rates summed per target
    block. *)
val minimize : Imc.t -> Imc.t

(** [equivalent a b] — stochastic bisimilarity of initial states. *)
val equivalent : Imc.t -> Imc.t -> bool

(** {1 Legacy engine} — the original list/Hashtbl signature rounds,
    kept as the cross-check oracle and for the E10 benchmark. *)

val partition_legacy : Imc.t -> Mv_bisim.Partition.t
val minimize_legacy : Imc.t -> Imc.t
