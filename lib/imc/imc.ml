module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

type t = {
  nb_states : int;
  initial : int;
  labels : Label.table;
  interactive : (int * int * int) array; (* sorted by src *)
  irow : int array;
  markovian : (int * float * int) array; (* sorted by src *)
  mrow : int array;
}

let row_index ~nb_states ~src_of transitions =
  let row = Array.make (nb_states + 1) 0 in
  Array.iter (fun tr -> row.(src_of tr + 1) <- row.(src_of tr + 1) + 1) transitions;
  for s = 1 to nb_states do
    row.(s) <- row.(s) + row.(s - 1)
  done;
  row

let make ~nb_states ~initial ~labels ~interactive ~markovian =
  if initial < 0 || initial >= nb_states then invalid_arg "Imc.make: initial";
  List.iter
    (fun (s, _, d) ->
       if s < 0 || s >= nb_states || d < 0 || d >= nb_states then
         invalid_arg "Imc.make: state out of range")
    interactive;
  List.iter
    (fun (s, r, d) ->
       if s < 0 || s >= nb_states || d < 0 || d >= nb_states then
         invalid_arg "Imc.make: state out of range";
       if r <= 0.0 then invalid_arg "Imc.make: rate must be positive")
    markovian;
  (* sort_uniq orders by (src, label, dst); interactive_out relies on
     this order for deterministic scheduler indexing *)
  let interactive = Array.of_list (List.sort_uniq compare interactive) in
  let markovian = Array.of_list (List.sort compare markovian) in
  {
    nb_states;
    initial;
    labels;
    interactive;
    irow = row_index ~nb_states ~src_of:(fun (s, _, _) -> s) interactive;
    markovian;
    mrow = row_index ~nb_states ~src_of:(fun (s, _, _) -> s) markovian;
  }

let nb_states t = t.nb_states
let initial t = t.initial
let labels t = t.labels
let nb_interactive t = Array.length t.interactive
let nb_markovian t = Array.length t.markovian

let iter_interactive t f =
  Array.iter (fun (s, l, d) -> f s l d) t.interactive

let iter_markovian t f = Array.iter (fun (s, r, d) -> f s r d) t.markovian

let interactive_out t s =
  let out = ref [] in
  for i = t.irow.(s + 1) - 1 downto t.irow.(s) do
    let _, l, d = t.interactive.(i) in
    out := (l, d) :: !out
  done;
  !out

let markovian_out t s =
  let out = ref [] in
  for i = t.mrow.(s + 1) - 1 downto t.mrow.(s) do
    let _, r, d = t.markovian.(i) in
    out := (r, d) :: !out
  done;
  !out

let iter_interactive_out t s f =
  for i = t.irow.(s) to t.irow.(s + 1) - 1 do
    let _, l, d = t.interactive.(i) in
    f l d
  done

let iter_markovian_out t s f =
  for i = t.mrow.(s) to t.mrow.(s + 1) - 1 do
    let _, r, d = t.markovian.(i) in
    f r d
  done

let rate_gate = "rate"

let rate_of_label name =
  match String.index_opt name ' ' with
  | Some i when String.sub name 0 i = rate_gate -> (
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      match float_of_string_opt rest with
      | Some r when r > 0.0 -> Some r
      | Some _ | None -> None)
  | Some _ | None -> None

let of_lts lts =
  let labels = Label.create () in
  let interactive = ref [] in
  let markovian = ref [] in
  Lts.iter_transitions lts (fun s l d ->
      let name = Label.name (Lts.labels lts) l in
      match rate_of_label name with
      | Some r -> markovian := (s, r, d) :: !markovian
      | None -> interactive := (s, Label.intern labels name, d) :: !interactive);
  make ~nb_states:(Lts.nb_states lts) ~initial:(Lts.initial lts) ~labels
    ~interactive:!interactive ~markovian:!markovian

let to_lts ?(exact = false) t =
  let labels = Label.copy t.labels in
  let rate_format : (_, _, _) format = if exact then "%s %h" else "%s %.12g" in
  let transitions = ref [] in
  iter_interactive t (fun s l d -> transitions := (s, l, d) :: !transitions);
  iter_markovian t (fun s r d ->
      let name = Printf.sprintf rate_format rate_gate r in
      transitions := (s, Label.intern labels name, d) :: !transitions);
  Lts.make ~nb_states:t.nb_states ~initial:t.initial ~labels !transitions

let relabel_interactive t f =
  let labels = Label.create () in
  let interactive = ref [] in
  iter_interactive t (fun s l d ->
      let name = Label.name t.labels l in
      let name' = if l = Label.tau then Label.tau_name else f name in
      interactive := (s, Label.intern labels name', d) :: !interactive);
  let markovian = ref [] in
  iter_markovian t (fun s r d -> markovian := (s, r, d) :: !markovian);
  make ~nb_states:t.nb_states ~initial:t.initial ~labels
    ~interactive:!interactive ~markovian:!markovian

let hide t ~gates =
  relabel_interactive t (fun name ->
      if List.mem (Label.gate name) gates then Label.tau_name else name)

let hide_all t = relabel_interactive t (fun _ -> Label.tau_name)

(* Parallel composition by exploration of reachable pairs. *)
module Pair_state = struct
  type t = int * int

  let equal = ( = )
  let hash = Hashtbl.hash
end

module Pair_table = Hashtbl.Make (Pair_state)

let par ~sync a b =
  let labels = Label.create () in
  let label_of_a = Array.init (Label.count a.labels) (fun l ->
      Label.intern labels (Label.name a.labels l))
  in
  let label_of_b = Array.init (Label.count b.labels) (fun l ->
      Label.intern labels (Label.name b.labels l))
  in
  let syncs_a =
    Array.init (Label.count a.labels) (fun l ->
        l <> Label.tau && List.mem (Label.gate (Label.name a.labels l)) sync)
  in
  let syncs_b =
    Array.init (Label.count b.labels) (fun l ->
        l <> Label.tau && List.mem (Label.gate (Label.name b.labels l)) sync)
  in
  let ids = Pair_table.create 256 in
  let interactive = ref [] in
  let markovian = ref [] in
  let frontier = Queue.create () in
  let nb = ref 0 in
  let id_of pair =
    match Pair_table.find_opt ids pair with
    | Some id -> id
    | None ->
      let id = !nb in
      incr nb;
      Pair_table.add ids pair id;
      Queue.add (id, pair) frontier;
      id
  in
  let initial = id_of (a.initial, b.initial) in
  while not (Queue.is_empty frontier) do
    let src, (sa, sb) = Queue.pop frontier in
    let moves_a = interactive_out a sa and moves_b = interactive_out b sb in
    (* independent interactive moves *)
    List.iter
      (fun (l, d) ->
         if not syncs_a.(l) then
           interactive := (src, label_of_a.(l), id_of (d, sb)) :: !interactive)
      moves_a;
    List.iter
      (fun (l, d) ->
         if not syncs_b.(l) then
           interactive := (src, label_of_b.(l), id_of (sa, d)) :: !interactive)
      moves_b;
    (* synchronized moves: identical printed labels on a sync gate *)
    List.iter
      (fun (la, da) ->
         if syncs_a.(la) then
           List.iter
             (fun (lb, db) ->
                if syncs_b.(lb) && label_of_a.(la) = label_of_b.(lb) then
                  interactive :=
                    (src, label_of_a.(la), id_of (da, db)) :: !interactive)
             moves_b)
      moves_a;
    (* Markovian moves always interleave *)
    List.iter
      (fun (r, d) -> markovian := (src, r, id_of (d, sb)) :: !markovian)
      (markovian_out a sa);
    List.iter
      (fun (r, d) -> markovian := (src, r, id_of (sa, d)) :: !markovian)
      (markovian_out b sb)
  done;
  make ~nb_states:!nb ~initial ~labels ~interactive:!interactive
    ~markovian:!markovian

let maximal_progress t =
  let has_tau = Array.make t.nb_states false in
  iter_interactive t (fun s l _ ->
      if l = Label.tau then has_tau.(s) <- true);
  let markovian = ref [] in
  iter_markovian t (fun s r d ->
      if not has_tau.(s) then markovian := (s, r, d) :: !markovian);
  let interactive = ref [] in
  iter_interactive t (fun s l d -> interactive := (s, l, d) :: !interactive);
  make ~nb_states:t.nb_states ~initial:t.initial ~labels:t.labels
    ~interactive:!interactive ~markovian:!markovian

let unstable_states t =
  let unstable = Array.make t.nb_states false in
  iter_interactive t (fun s _ _ -> unstable.(s) <- true);
  let out = ref [] in
  for s = t.nb_states - 1 downto 0 do
    if unstable.(s) then out := s :: !out
  done;
  !out

let pp fmt t =
  Format.fprintf fmt
    "imc: %d states, %d interactive + %d markovian transitions, initial %d"
    t.nb_states (nb_interactive t) (nb_markovian t) t.initial
