(** Refinable partition of [0 .. n-1] with O(1) mark and O(marked)
    split, after Valmari's "Refinable partition" data structure.

    States of one block occupy a contiguous slice of an element array;
    marking a state swaps it into the marked prefix of its block's
    slice, and splitting cuts the slice at the mark boundary. No
    allocation after {!create}. *)

type t

(** [create n] is the one-block partition over [n >= 1] states. *)
val create : int -> t

(** Number of blocks. *)
val count : t -> int

(** Block id of a state. *)
val block_of : t -> int -> int

(** Number of states in a block. *)
val size : t -> int -> int

(** Number of currently marked states in a block. *)
val marked : t -> int -> int

(** Iterate over the states of a block (unspecified order). *)
val iter_block : t -> int -> (int -> unit) -> unit

(** [slice p b] — the [(first, last)] element-array bounds of [b]'s
    slice (half-open). Splitting never moves states outside the
    parent's slice, so a recorded slice stays a valid snapshot of the
    block's extent-at-recording even after later splits — the
    parallel refinement engine leans on this. *)
val slice : t -> int -> int * int

(** [element p i] — the state at position [i] of the element array
    (valid between mutations; {!mark} and {!split_marked} permute
    positions within the touched block's slice only). *)
val element : t -> int -> int

(** [mark p s] marks [s] inside its block; no-op if already marked. *)
val mark : t -> int -> unit

(** [split_marked p b] cuts block [b] at its mark boundary. The marked
    states become a fresh block (its id is returned) and all marks in
    [b] are cleared. If {e every} state of [b] was marked the block is
    left whole, marks are cleared, and [-1] is returned. Must only be
    called when [marked p b > 0]. *)
val split_marked : t -> int -> int

(** Canonical renumbering: block ids reassigned by first occurrence in
    state order (the numbering the signature-refinement engines
    produce). Returns [(block_of, count)]. *)
val assignment : t -> int array * int
