module Obs = Mv_obs.Obs

type method_ = Jacobi | Gauss_seidel | Sor of float

let default_sor_omega = 1.25

let method_of_name = function
  | "jacobi" -> Some Jacobi
  | "gs" | "gauss-seidel" -> Some Gauss_seidel
  | "sor" -> Some (Sor default_sor_omega)
  | _ -> None

let method_name = function
  | Jacobi -> "jacobi"
  | Gauss_seidel -> "gs"
  | Sor _ -> "sor"

type system = {
  size : int;
  in_row : int array;
  in_src : int array;
  in_rate : float array;
  exit : float array;
}

let steady_state ?pool ?(tolerance = 1e-13) ?(max_iterations = 200_000)
    ~method_ sys pi =
  let k = sys.size in
  let iteration = ref 0 in
  let delta = ref infinity in
  let residual_series = Obs.series "solver.residual" in
  let first_delta = ref 0.0 in
  let record_iteration () =
    Obs.push residual_series !delta;
    if !first_delta = 0.0 then first_delta := !delta;
    if !iteration land 255 = 0 then
      Obs.progress (fun () ->
          Printf.sprintf "solve: iteration %d, residual %.3g" !iteration
            !delta)
  in
  let inflow j =
    let flow = ref 0.0 in
    for i = sys.in_row.(j) to sys.in_row.(j + 1) - 1 do
      flow := !flow +. (pi.(sys.in_src.(i)) *. sys.in_rate.(i))
    done;
    !flow
  in
  (match method_ with
   | Gauss_seidel | Sor _ ->
     let omega = ref (match method_ with Sor w -> w | _ -> 1.0) in
     (* Over-relaxation is not convergent on every chain (the balance
        system is not symmetric); it then oscillates instead of
        contracting. Watch the best residual reached: when it has not
        improved for a while, pull omega back toward plain
        Gauss-Seidel. *)
     let best = ref infinity in
     let stall = ref 0 in
     let diverging () =
       if not (Float.is_finite !delta) then true
       else if !delta < 0.999 *. !best then begin
         (* a meaningful improvement, not just oscillation noise *)
         best := !delta;
         stall := 0;
         false
       end
       else begin
         if !delta < !best then best := !delta;
         incr stall;
         !stall >= 200
       end
     in
     let continue_ = ref true in
     while !continue_ && !iteration < max_iterations do
       delta := 0.0;
       for j = 0 to k - 1 do
         if sys.exit.(j) > 0.0 then begin
           let updated = inflow j /. sys.exit.(j) in
           let d = abs_float (updated -. pi.(j)) in
           if d > !delta then delta := d;
           pi.(j) <-
             (if !omega = 1.0 then updated
              else ((1.0 -. !omega) *. pi.(j)) +. (!omega *. updated))
         end
       done;
       let total = ref 0.0 in
       for j = 0 to k - 1 do
         total := !total +. pi.(j)
       done;
       if Float.is_finite !total && !total > 0.0 then
         for j = 0 to k - 1 do
           pi.(j) <- pi.(j) /. !total
         done
       else Array.fill pi 0 k (1.0 /. float_of_int k);
       incr iteration;
       record_iteration ();
       if !omega <> 1.0 && diverging () then begin
         omega := 1.0 +. ((!omega -. 1.0) /. 2.0);
         if Float.abs (!omega -. 1.0) < 0.01 then omega := 1.0;
         best := infinity;
         stall := 0;
         delta := infinity
       end;
       continue_ := Float.is_nan !delta || !delta > tolerance
     done
   | Jacobi ->
     let next = Array.make k 0.0 in
     let residual = Array.make k 0.0 in
     let omega = 0.7 in
     let body j =
       if sys.exit.(j) > 0.0 then begin
         let updated = inflow j /. sys.exit.(j) in
         residual.(j) <- abs_float (updated -. pi.(j));
         next.(j) <- ((1.0 -. omega) *. pi.(j)) +. (omega *. updated)
       end
       else begin
         residual.(j) <- 0.0;
         next.(j) <- pi.(j)
       end
     in
     while !delta > tolerance && !iteration < max_iterations do
       (match pool with
        | Some pool when Mv_par.Pool.size pool > 1 && k > 64 ->
          Mv_par.Par.parallel_for pool ~lo:0 ~hi:k body
        | _ ->
          for j = 0 to k - 1 do
            body j
          done);
       delta := 0.0;
       Array.iter (fun r -> if r > !delta then delta := r) residual;
       let total = ref 0.0 in
       for j = 0 to k - 1 do
         total := !total +. next.(j)
       done;
       if !total > 0.0 then
         for j = 0 to k - 1 do
           pi.(j) <- next.(j) /. !total
         done
       else Array.blit next 0 pi 0 k;
       incr iteration;
       record_iteration ()
     done);
  Obs.add (Obs.counter "solver.iterations") !iteration;
  Obs.set (Obs.gauge "solver.final_residual") !delta;
  (* geometric-mean contraction factor per sweep — a cheap stand-in for
     the magnitude of the iteration operator's dominant eigenvalue *)
  if !iteration > 1 && !first_delta > 0.0 && !delta > 0.0 then
    Obs.set
      (Obs.gauge "solver.contraction")
      (Float.exp
         (Float.log (!delta /. !first_delta) /. float_of_int (!iteration - 1)));
  (!iteration, !delta, !delta <= tolerance)
