module Obs = Mv_obs.Obs

type method_ = Jacobi | Gauss_seidel | Sor

let default_sor_omega = 1.25

let method_of_name = function
  | "jacobi" -> Some Jacobi
  | "gs" | "gauss-seidel" -> Some Gauss_seidel
  | "sor" -> Some Sor
  | _ -> None

let method_name = function
  | Jacobi -> "jacobi"
  | Gauss_seidel -> "gs"
  | Sor -> "sor"

type system = {
  size : int;
  in_row : int array;
  in_src : int array;
  in_rate : float array;
  exit : float array;
}

type config = {
  method_ : method_;
  omega : float;
  tolerance : float;
  max_sweeps : int;
  pool : Mv_par.Pool.t option;
}

let config ?(method_ = Gauss_seidel) ?(omega = default_sor_omega)
    ?(tolerance = 1e-13) ?(max_sweeps = 200_000) ?pool () =
  { method_; omega; tolerance; max_sweeps; pool }

type outcome = { sweeps : int; residual : float; converged : bool }

(* Minimum color-class size worth fanning out; below it the loop-setup
   overhead beats the body. *)
let parallel_class_threshold = 512

(* Greedy multi-coloring of the conflict graph: states [i] and [j]
   conflict when a transition connects them in either direction, so
   within one color class no update reads another's write. Gauss-Seidel
   is then run in colored order — class 0 ascending, class 1
   ascending, ... — by {e every} configuration: at [-j 1] the permuted
   sweep is simply executed sequentially, at [-j N] each class is a
   parallel loop over disjoint slots, so the arithmetic (and hence the
   iterate sequence) is bitwise identical at any pool size. Returns
   [(order, class_start, nb_colors)] with class [c] occupying
   [order.(class_start.(c)) .. order.(class_start.(c + 1) - 1)]. *)
let coloring sys =
  let k = sys.size in
  let nb_in = Array.length sys.in_src in
  (* transpose the in-CSR to get out-adjacency *)
  let out_row = Array.make (k + 1) 0 in
  for e = 0 to nb_in - 1 do
    let i = sys.in_src.(e) in
    out_row.(i + 1) <- out_row.(i + 1) + 1
  done;
  for j = 1 to k do
    out_row.(j) <- out_row.(j) + out_row.(j - 1)
  done;
  let out_dst = Array.make nb_in 0 in
  let cursor = Array.copy out_row in
  for j = 0 to k - 1 do
    for e = sys.in_row.(j) to sys.in_row.(j + 1) - 1 do
      let i = sys.in_src.(e) in
      out_dst.(cursor.(i)) <- j;
      cursor.(i) <- cursor.(i) + 1
    done
  done;
  let degree j =
    sys.in_row.(j + 1) - sys.in_row.(j) + out_row.(j + 1) - out_row.(j)
  in
  let max_degree = ref 0 in
  for j = 0 to k - 1 do
    if degree j > !max_degree then max_degree := degree j
  done;
  let color = Array.make (max k 1) 0 in
  let used = Array.make (!max_degree + 2) (-1) in
  let nb_colors = ref (min 1 k) in
  for j = 0 to k - 1 do
    for e = sys.in_row.(j) to sys.in_row.(j + 1) - 1 do
      let i = sys.in_src.(e) in
      if i < j then used.(color.(i)) <- j
    done;
    for e = out_row.(j) to out_row.(j + 1) - 1 do
      let d = out_dst.(e) in
      if d < j then used.(color.(d)) <- j
    done;
    let c = ref 0 in
    while used.(!c) = j do
      incr c
    done;
    color.(j) <- !c;
    if !c + 1 > !nb_colors then nb_colors := !c + 1
  done;
  let nb_colors = !nb_colors in
  let class_start = Array.make (nb_colors + 1) 0 in
  for j = 0 to k - 1 do
    class_start.(color.(j) + 1) <- class_start.(color.(j) + 1) + 1
  done;
  for c = 1 to nb_colors do
    class_start.(c) <- class_start.(c) + class_start.(c - 1)
  done;
  let order = Array.make (max k 1) 0 in
  let fill = Array.copy class_start in
  for j = 0 to k - 1 do
    order.(fill.(color.(j))) <- j;
    fill.(color.(j)) <- fill.(color.(j)) + 1
  done;
  (order, class_start, nb_colors)

let run cfg sys pi =
  let k = sys.size in
  let sweeps = ref 0 in
  let delta = ref infinity in
  let residual_series = Obs.series "solver.residual" in
  let first_delta = ref 0.0 in
  let record_sweep () =
    Obs.push residual_series !delta;
    if !first_delta = 0.0 then first_delta := !delta;
    if !sweeps land 255 = 0 then
      Obs.progress (fun () ->
          Printf.sprintf "solve: sweep %d, residual %.3g" !sweeps !delta)
  in
  let inflow j =
    let flow = ref 0.0 in
    for i = sys.in_row.(j) to sys.in_row.(j + 1) - 1 do
      flow := !flow +. (pi.(sys.in_src.(i)) *. sys.in_rate.(i))
    done;
    !flow
  in
  let pool =
    match cfg.pool with
    | Some pool when Mv_par.Pool.size pool > 1 -> Some pool
    | _ -> None
  in
  (* The residual max and the normalization sums are always sequential
     in ascending state order, so they cost the same float operations
     in the same order at every pool size. *)
  let normalize () =
    let total = ref 0.0 in
    for j = 0 to k - 1 do
      total := !total +. pi.(j)
    done;
    if Float.is_finite !total && !total > 0.0 then
      for j = 0 to k - 1 do
        pi.(j) <- pi.(j) /. !total
      done
    else Array.fill pi 0 k (1.0 /. float_of_int k)
  in
  (match cfg.method_ with
   | Gauss_seidel | Sor ->
     let order, class_start, nb_colors = coloring sys in
     Obs.set (Obs.gauge "solver.colors") (float_of_int nb_colors);
     let residual = Array.make (max k 1) 0.0 in
     let omega = ref (match cfg.method_ with Sor -> cfg.omega | _ -> 1.0) in
     (* Neither sweep is unconditionally convergent: over-relaxation
        (omega > 1) can oscillate on nonsymmetric balance systems, and
        the {e colored} order itself is periodic on bipartite conflict
        graphs (a pure cycle: each class only feeds the other, so the
        sweep operator keeps unit-modulus eigenvalues that natural-order
        propagation would have damped). Watch the best residual
        reached; when it stops improving, pull omega > 1 back toward
        1.0, and drop omega = 1.0 to an under-relaxed 0.7 — damping
        moves every unit-circle eigenvalue except the stationary one
        strictly inside, restoring convergence. The fallback is driven
        only by the residual sequence, which is bitwise identical at
        every pool size, so determinism is preserved. *)
     let best = ref infinity in
     let stall = ref 0 in
     let diverging () =
       if not (Float.is_finite !delta) then true
       else if !delta < 0.999 *. !best then begin
         (* a meaningful improvement, not just oscillation noise *)
         best := !delta;
         stall := 0;
         false
       end
       else begin
         if !delta < !best then best := !delta;
         incr stall;
         !stall >= 200
       end
     in
     let body idx =
       let j = order.(idx) in
       if sys.exit.(j) > 0.0 then begin
         let updated = inflow j /. sys.exit.(j) in
         residual.(j) <- abs_float (updated -. pi.(j));
         pi.(j) <-
           (if !omega = 1.0 then updated
            else ((1.0 -. !omega) *. pi.(j)) +. (!omega *. updated))
       end
       else residual.(j) <- 0.0
     in
     let continue_ = ref true in
     while !continue_ && !sweeps < cfg.max_sweeps do
       for c = 0 to nb_colors - 1 do
         let lo = class_start.(c) and hi = class_start.(c + 1) in
         match pool with
         | Some pool when hi - lo > parallel_class_threshold ->
           Mv_par.Pool.for_ ~pool ~lo ~hi body
         | _ ->
           for idx = lo to hi - 1 do
             body idx
           done
       done;
       delta := 0.0;
       for j = 0 to k - 1 do
         if residual.(j) > !delta then delta := residual.(j)
       done;
       normalize ();
       incr sweeps;
       record_sweep ();
       if !omega >= 1.0 && diverging () then begin
         if !omega > 1.0 then begin
           omega := 1.0 +. ((!omega -. 1.0) /. 2.0);
           if Float.abs (!omega -. 1.0) < 0.01 then omega := 1.0
         end
         else omega := 0.7;
         best := infinity;
         stall := 0;
         delta := infinity
       end;
       continue_ := Float.is_nan !delta || !delta > cfg.tolerance
     done
   | Jacobi ->
     let next = Array.make (max k 1) 0.0 in
     let residual = Array.make (max k 1) 0.0 in
     let damping = 0.7 in
     let body j =
       if sys.exit.(j) > 0.0 then begin
         let updated = inflow j /. sys.exit.(j) in
         residual.(j) <- abs_float (updated -. pi.(j));
         next.(j) <- ((1.0 -. damping) *. pi.(j)) +. (damping *. updated)
       end
       else begin
         residual.(j) <- 0.0;
         next.(j) <- pi.(j)
       end
     in
     while !delta > cfg.tolerance && !sweeps < cfg.max_sweeps do
       (match pool with
        | Some pool when k > 64 -> Mv_par.Pool.for_ ~pool ~lo:0 ~hi:k body
        | _ ->
          for j = 0 to k - 1 do
            body j
          done);
       delta := 0.0;
       Array.iter (fun r -> if r > !delta then delta := r) residual;
       let total = ref 0.0 in
       for j = 0 to k - 1 do
         total := !total +. next.(j)
       done;
       if !total > 0.0 then
         for j = 0 to k - 1 do
           pi.(j) <- next.(j) /. !total
         done
       else Array.blit next 0 pi 0 k;
       incr sweeps;
       record_sweep ()
     done);
  Obs.add (Obs.counter "solver.iterations") !sweeps;
  Obs.set (Obs.gauge "solver.final_residual") !delta;
  (* geometric-mean contraction factor per sweep — a cheap stand-in for
     the magnitude of the iteration operator's dominant eigenvalue *)
  if !sweeps > 1 && !first_delta > 0.0 && !delta > 0.0 then
    Obs.set
      (Obs.gauge "solver.contraction")
      (Float.exp
         (Float.log (!delta /. !first_delta) /. float_of_int (!sweeps - 1)));
  { sweeps = !sweeps; residual = !delta; converged = !delta <= cfg.tolerance }

let steady_state ?pool ?(tolerance = 1e-13) ?(max_iterations = 200_000)
    ~method_ sys pi =
  let outcome =
    run
      {
        method_;
        omega = default_sor_omega;
        tolerance;
        max_sweeps = max_iterations;
        pool;
      }
      sys pi
  in
  (outcome.sweeps, outcome.residual, outcome.converged)
