(** Flat int arrays over two backings: heap [int array] (the in-RAM
    fast path) or an mmap'd scratch file (the out-of-core path — the
    kernel pages cold ranges to disk instead of the process holding
    the whole array resident).

    Scratch files are unlinked immediately after mapping: the disk
    space is reclaimed when the mapping is collected or the process
    exits, so a crash can never leave an orphan behind. Every mmap
    allocation bumps the [kern.mmap_bytes] counter. *)

type big = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type t = Heap of int array | Big of big

val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit

(** [heap_make n x] — heap-backed, length [n], filled with [x]. *)
val heap_make : int -> int -> t

(** [mmap_make ~path n x] — scratch-file-backed at [path] (created
    0600, truncated, unlinked once mapped), length [n], filled with
    [x]. [n = 0] degrades to an empty heap array. *)
val mmap_make : path:string -> int -> int -> t

(** [blit src dst] copies [src] into [dst] (equal lengths required). *)
val blit : t -> t -> unit

(** [of_array a] wraps [a] without copying. *)
val of_array : int array -> t

(** [to_array t] is a fresh [int array] copy. *)
val to_array : t -> int array
