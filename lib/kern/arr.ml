(* Flat int arrays with a choice of backing: ordinary heap arrays (the
   fast path for everything that fits in RAM) or mmap'd scratch files
   (the out-of-core path, where the kernel pages cold ranges out
   instead of the process holding them resident).

   Scratch files are unlinked immediately after mapping, so the space
   is reclaimed automatically when the mapping is garbage-collected or
   the process exits — there is nothing to sweep on a crash. *)

type big = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type t = Heap of int array | Big of big

let length = function
  | Heap a -> Array.length a
  | Big b -> Bigarray.Array1.dim b

let get t i =
  match t with Heap a -> a.(i) | Big b -> Bigarray.Array1.get b i

let set t i v =
  match t with Heap a -> a.(i) <- v | Big b -> Bigarray.Array1.set b i v

let heap_make n x = Heap (Array.make n x)

let mmap_make ~path n x =
  if n = 0 then Heap [||]
  else begin
    let fd =
      Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
    in
    let big =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| n |]))
    in
    (try Sys.remove path with Sys_error _ -> ());
    Bigarray.Array1.fill big x;
    Mv_obs.Obs.add (Mv_obs.Obs.counter "kern.mmap_bytes") (8 * n);
    Big big
  end

let blit src dst =
  let n = length src in
  if length dst <> n then invalid_arg "Arr.blit: length mismatch";
  match (src, dst) with
  | Heap a, Heap b -> Array.blit a 0 b 0 n
  | Big a, Big b -> Bigarray.Array1.blit a b
  | _ ->
    for i = 0 to n - 1 do
      set dst i (get src i)
    done

let of_array a = Heap a

let to_array t =
  match t with Heap a -> Array.copy a | Big _ -> Array.init (length t) (get t)
