(** Interning table for flat packed signatures.

    A signature is an int array (a sorted, deduplicated encoding of a
    state's one-step behaviour) paired with the state's current block;
    {!classify} assigns dense ids in insertion order, which — when
    states are classified in ascending state order — reproduces exactly
    the block numbering of the legacy list-signature engines. *)

type t

val create : unit -> t

(** Drop all keys and restart ids at 0 (call between rounds). *)
val reset : t -> unit

(** [classify t ~block sig_] returns the dense id for the key
    [(block, sig_)], allocating the next id on first sight. The array
    is captured by reference — callers must pass a fresh (or never
    again mutated) array. *)
val classify : t -> block:int -> int array -> int

(** Number of distinct keys classified since the last {!reset}. *)
val count : t -> int

(** [sort_dedup a len] sorts [a.(0 .. len-1)] in place (ascending) and
    compacts away duplicates, returning the deduplicated length. The
    tail beyond the returned length is unspecified. Dutch-flag
    quicksort: duplicate-heavy inputs (signature inheritance) stay
    O(n log n). *)
val sort_dedup : int array -> int -> int
