(** CSR sparse steady-state solver kernels.

    The system is a local, contiguous view of one irreducible subset of
    a CTMC: states renumbered [0 .. size-1] (callers should use a BFS
    order for cache locality — see {!Mv_markov.Ctmc}), incoming
    transitions in CSR form, and per-state exit rates. Solves
    [pi_j = (sum_i pi_i q_ij) / E_j] with post-sweep normalization.

    {!run} is the single entry point; every front end (CLI, daemon
    ops, bench, {!Mv_markov.Ctmc}) builds the same {!config} record,
    so a method/tolerance choice means the same thing everywhere.

    Methods:
    - [Gauss_seidel]: in-place sweeps in {e colored order} — a greedy
      multi-coloring of the transition conflict graph groups states so
      that no state reads a same-class write, then every configuration
      sweeps class 0 ascending, class 1 ascending, ... At [-j 1] that
      permuted sweep runs sequentially; under a pool each class is a
      parallel loop over disjoint slots, and the residual max and
      normalization sums stay sequential — so the iterate sequence is
      {e bitwise identical at any pool size}. The default: fewer
      sweeps than Jacobi on every case study. On bipartite conflict
      graphs (e.g. pure cycles) the colored sweep can oscillate
      instead of contracting; a residual-stall detector then drops to
      an under-relaxed (0.7) sweep, which is convergent — the
      detector reads only the (pool-size-independent) residual
      sequence, so the bitwise guarantee stands.
    - [Sor]: the colored Gauss-Seidel sweep with over-relaxation
      [pi_j <- (1-omega) pi_j + omega update] ([config.omega], default
      {!default_sor_omega}). Over-relaxation is not convergent on
      every chain; when the residual stops improving, [omega] is
      halved back toward [1.0] and iteration continues, so [Sor]
      degrades to Gauss-Seidel in the worst case instead of
      oscillating forever.
    - [Jacobi]: damped Jacobi (damping 0.7); every update reads only
      the previous iterate, so sweeps parallelize trivially. Kept as
      the cross-check for the colored sweeps.

    The residual tested against [tolerance] is the unrelaxed one,
    [max_j |update_j - pi_j|], so stopping criteria are comparable
    across methods.

    Observability: per-sweep [solver.residual] series,
    [solver.iterations] counter, [solver.final_residual],
    [solver.contraction] and [solver.colors] gauges. *)

type method_ = Jacobi | Gauss_seidel | Sor

val default_sor_omega : float

(** Parse a [mval solve --method] name: ["jacobi"], ["gs"] (or
    ["gauss-seidel"]), ["sor"]. *)
val method_of_name : string -> method_ option

val method_name : method_ -> string

type system = {
  size : int;
  in_row : int array;  (** length [size + 1] *)
  in_src : int array;  (** local source index per incoming transition *)
  in_rate : float array;
  exit : float array;  (** exit rate per local state; [0.0] rows are skipped *)
}

type config = {
  method_ : method_;
  omega : float;  (** [Sor] relaxation factor; ignored by the others *)
  tolerance : float;
  max_sweeps : int;
  pool : Mv_par.Pool.t option;
      (** parallel sweeps when [size > 1]; results are bitwise
          identical with or without it *)
}

(** [config ()] — [Gauss_seidel], omega {!default_sor_omega},
    tolerance [1e-13], max sweeps [200_000], no pool. *)
val config :
  ?method_:method_ ->
  ?omega:float ->
  ?tolerance:float ->
  ?max_sweeps:int ->
  ?pool:Mv_par.Pool.t ->
  unit ->
  config

type outcome = { sweeps : int; residual : float; converged : bool }

(** [run config sys pi] iterates in place on [pi] (length [sys.size],
    callers initialize it to a distribution). *)
val run : config -> system -> float array -> outcome

val steady_state :
  ?pool:Mv_par.Pool.t ->
  ?tolerance:float ->
  ?max_iterations:int ->
  method_:method_ ->
  system ->
  float array ->
  int * float * bool
[@@deprecated "build a Solver.config and use Solver.run"]

(**/**)

(** Exposed for tests: the colored order used by [Gauss_seidel]/[Sor]
    — [(order, class_start, nb_colors)]; within a class no two states
    are connected by a transition. *)
val coloring : system -> int array * int array * int
