(** CSR sparse steady-state solver kernels.

    The system is a local, contiguous view of one irreducible subset of
    a CTMC: states renumbered [0 .. size-1] (callers should use a BFS
    order for cache locality — see {!Mv_markov.Ctmc}), incoming
    transitions in CSR form, and per-state exit rates. Solves
    [pi_j = (sum_i pi_i q_ij) / E_j] with post-sweep normalization.

    Methods:
    - [Gauss_seidel]: in-place sweeps, sequential. The default — fewer
      iterations than Jacobi on every case study.
    - [Sor omega]: Gauss-Seidel with over-relaxation
      [pi_j <- (1-omega) pi_j + omega update]. Over-relaxation is not
      convergent on every chain; when the residual stops improving,
      [omega] is halved back toward [1.0] (plain Gauss-Seidel) and
      iteration continues, so [Sor] degrades to Gauss-Seidel in the
      worst case instead of oscillating forever.
    - [Jacobi]: damped Jacobi (damping 0.7), the only method whose
      sweeps parallelize (every update reads only the previous
      iterate); under a pool each sweep writes disjoint slots and the
      reductions are sequential, so any pool size gives bit-identical
      vectors. Also the cross-check for the sequential methods.

    The residual tested against [tolerance] is the undamped/unrelaxed
    one, [max_j |update_j - pi_j|], so stopping criteria are comparable
    across methods.

    Observability: per-iteration [solver.residual] series,
    [solver.iterations] counter, [solver.final_residual] and
    [solver.contraction] gauges. *)

type method_ = Jacobi | Gauss_seidel | Sor of float

val default_sor_omega : float

(** Parse a [mval solve --method] name: ["jacobi"], ["gs"] (or
    ["gauss-seidel"]), ["sor"] (with {!default_sor_omega}). *)
val method_of_name : string -> method_ option

val method_name : method_ -> string

type system = {
  size : int;
  in_row : int array;  (** length [size + 1] *)
  in_src : int array;  (** local source index per incoming transition *)
  in_rate : float array;
  exit : float array;  (** exit rate per local state; [0.0] rows are skipped *)
}

(** [steady_state ?pool ~method_ sys pi] iterates in place on [pi]
    (length [sys.size], callers initialize it to a distribution) and
    returns [(iterations, residual, converged)]. [pool] is only used by
    [Jacobi] (and only when [size > 64]). *)
val steady_state :
  ?pool:Mv_par.Pool.t ->
  ?tolerance:float ->
  ?max_iterations:int ->
  method_:method_ ->
  system ->
  float array ->
  int * float * bool
