(** Compressed-sparse-row adjacency over an {!Mv_lts.Lts.t}.

    Three flat int arrays: [row] (length [nb_states + 1]) indexes into
    [lbl]/[col], which hold one entry per transition. Built once, in one
    O(n + m) pass, then shared by every refinement / solver pass — no
    per-state allocation afterwards.

    [forward] rows are indexed by source state and [col] holds
    destinations; entries within a row appear in [(label, dst)] order
    (inherited from the LTS transition order). [reverse] rows are
    indexed by destination state and [col] holds sources; entries
    within a row appear in [(src, label)] order. *)

type t = {
  row : int array;  (** length [nb_rows + 1]; row [s] spans [row.(s) .. row.(s+1) - 1] *)
  lbl : int array;  (** label of each entry *)
  col : int array;  (** destination ([forward]) or source ([reverse]) *)
}

val nb_rows : t -> int
val nb_entries : t -> int

(** Forward adjacency: rows by source, [col] = destination. *)
val forward : Mv_lts.Lts.t -> t

(** Reverse adjacency: rows by destination, [col] = source. *)
val reverse : Mv_lts.Lts.t -> t

(** [deterministic csr] is true when no [forward] row contains two
    entries with the same label — i.e. every action is deterministic.
    Meaningless on a [reverse] index. *)
val deterministic : t -> bool
