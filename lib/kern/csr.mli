(** Compressed-sparse-row adjacency over an {!Mv_lts.Lts.t}.

    Three flat {!Arr.t} arrays: [row] (length [nb_states + 1]) indexes
    into [lbl]/[col], which hold one entry per transition. Built once,
    in one O(n + m) pass, then shared by every refinement / solver
    pass — no per-state allocation afterwards.

    The backing is chosen at build time: {!In_ram} (heap arrays, the
    default fast path) or {!Scratch} (mmap'd scratch files in the
    given directory — the out-of-core path, where the kernel pages
    cold ranges out instead of the process holding ~3 words per
    transition resident). The stored values are identical either way,
    so every downstream algorithm produces byte-identical results.

    [forward] rows are indexed by source state and [col] holds
    destinations; entries within a row appear in [(label, dst)] order
    (inherited from the LTS transition order). [reverse] rows are
    indexed by destination state and [col] holds sources; entries
    within a row appear in [(src, label)] order. *)

type t = {
  row : Arr.t;  (** length [nb_rows + 1]; row [s] spans [row.(s) .. row.(s+1) - 1] *)
  lbl : Arr.t;  (** label of each entry *)
  col : Arr.t;  (** destination ([forward]) or source ([reverse]) *)
}

(** Where the three arrays live. [Scratch dir] places unlinked mmap'd
    scratch files in [dir] (names carry the pid and a sequence number,
    so concurrent builds never collide). *)
type mode = In_ram | Scratch of string

val nb_rows : t -> int
val nb_entries : t -> int

(** Forward adjacency: rows by source, [col] = destination. *)
val forward : ?mode:mode -> Mv_lts.Lts.t -> t

(** Reverse adjacency: rows by destination, [col] = source. *)
val reverse : ?mode:mode -> Mv_lts.Lts.t -> t

(** Build from a replayable transition iterator instead of a
    materialized LTS (the out-of-core generate→minimize path feeds a
    {!Mv_store.Mvb.Segment} sweep through here without the kern layer
    depending on the store). The callback is invoked twice — count,
    then fill — and must replay the same [f src label dst] sequence
    both times. [n] = states, [m] = transitions. *)
val forward_iter :
  ?mode:mode -> n:int -> m:int -> ((int -> int -> int -> unit) -> unit) -> t

val reverse_iter :
  ?mode:mode -> n:int -> m:int -> ((int -> int -> int -> unit) -> unit) -> t

(** [deterministic csr] is true when no [forward] row contains two
    entries with the same label — i.e. every action is deterministic.
    Meaningless on a [reverse] index. *)
val deterministic : t -> bool
