(** Splitter-worklist partition refinement for strong bisimulation,
    after Valmari / Paige–Tarjan.

    Instead of recomputing a full signature for every state in every
    round (O(n·m) per round), the worklist engine keeps a queue of
    {e splitter} blocks and, for each one popped, walks only the
    predecessors of its states through the reverse CSR index, grouping
    them per label and splitting their blocks at the mark boundary.

    Queueing discipline (sequential engine): when a block [X] splits
    into [X] and [C],
    - if [X] was still queued, only [C] is added (splitting against
      both halves separately subsumes splitting against old [X]);
    - if every label is deterministic (at most one successor per
      (state, label)), only the {e smaller} half is queued — Hopcroft's
      "process the smaller half", giving O(m log n) splitter work;
    - otherwise {e both} halves are queued (smaller popped first):
      with nondeterministic actions, stability against a parent block
      does not follow from stability against one half alone without
      Paige–Tarjan three-way counts.

    Splitting against a queued block whose extent has since been
    refined is still sound: any such block is a union of current
    blocks, and the labelled predecessor set of a union of
    bisimulation classes never separates bisimilar states.

    Parallel engine (selected by [?pool] above a size threshold):
    round-based. The whole worklist becomes one batch; every batch
    splitter's labelled predecessors are gathered — and counting-sorted
    by label, in the same deterministic order as the sequential engine
    — by the pool workers in parallel against a read-only snapshot of
    the partition, then all marks and splits are applied sequentially
    in batch order. Split children go to the next round's batch (the
    smaller-half shortcut is disabled; see refine.ml for the
    soundness/termination argument). Both engines converge on the
    {e unique} coarsest partition and renumber it identically, so the
    returned arrays are byte-identical at every [-j N].

    Observability: counters [kern.splitters] (splitter blocks
    processed) and [kern.splits] (blocks cut), series [kern.queue]
    (worklist length at each pop / round), span [kern.strong];
    the parallel engine also counts [kern.rounds]. *)

(** [strong ~nb_labels ~fwd ~rev] computes the coarsest strong
    bisimulation partition. Returns [(block_of, count)] with block ids
    renumbered by first occurrence in state order — the exact numbering
    of the legacy signature-refinement engine, making the resulting
    quotient LTSs byte-identical (at any pool size). *)
val strong :
  pool:Mv_par.Pool.t option ->
  nb_labels:int ->
  fwd:Csr.t ->
  rev:Csr.t ->
  int array * int
