module Key = struct
  type t = int * int array

  let equal (b1, a1) (b2, a2) = b1 = b2 && a1 = a2

  let hash (b, a) =
    (* FNV-1a over the packed words, seeded with the block *)
    let h = ref (b lxor 0x9e3779b9) in
    for i = 0 to Array.length a - 1 do
      h := (!h * 0x01000193) lxor a.(i)
    done;
    !h land max_int
end

module H = Hashtbl.Make (Key)

type t = { table : int H.t; mutable next : int }

let create () = { table = H.create 1024; next = 0 }

let reset t =
  H.reset t.table;
  t.next <- 0

let classify t ~block sig_ =
  let key = (block, sig_) in
  match H.find_opt t.table key with
  | Some id -> id
  | None ->
    let id = t.next in
    t.next <- id + 1;
    H.add t.table key id;
    id

let count t = t.next

let sort_dedup a len =
  let swap i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  (* 3-way (Dutch-flag) quicksort on [lo, hi); insertion sort for short
     runs; recurse on the smaller side to bound the stack *)
  let rec sort lo hi =
    if hi - lo <= 12 then begin
      for i = lo + 1 to hi - 1 do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > x do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* median of three as pivot *)
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi - 1) < a.(lo) then swap (hi - 1) lo;
      if a.(hi - 1) < a.(mid) then swap (hi - 1) mid;
      let v = a.(mid) in
      let lt = ref lo and i = ref lo and gt = ref hi in
      while !i < !gt do
        let x = a.(!i) in
        if x < v then begin
          swap !lt !i;
          incr lt;
          incr i
        end
        else if x > v then begin
          decr gt;
          swap !i !gt
        end
        else incr i
      done;
      if !lt - lo <= hi - !gt then begin
        sort lo !lt;
        sort !gt hi
      end
      else begin
        sort !gt hi;
        sort lo !lt
      end
    end
  in
  sort 0 len;
  if len = 0 then 0
  else begin
    let w = ref 1 in
    for i = 1 to len - 1 do
      if a.(i) <> a.(!w - 1) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    !w
  end
