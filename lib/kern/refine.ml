module Obs = Mv_obs.Obs

(* Both engines compute the coarsest strong bisimulation partition and
   renumber it canonically (Part.assignment: by first occurrence in
   state order). The coarsest partition is unique and neither engine
   ever splits bisimilar states, so the returned arrays are identical
   — byte for byte — whichever engine ran; callers pick purely on
   pool size. *)

let strong_sequential ~nb_labels ~fwd ~rev =
  let n = Csr.nb_rows fwd in
  let splitters = Obs.counter "kern.splitters" in
  let splits = Obs.counter "kern.splits" in
  let qlen = Obs.series "kern.queue" in
  let p = Part.create n in
  let small_half_only = Csr.deterministic fwd in
  (* worklist of splitter blocks, as a stack with membership flags *)
  let queue = Array.make n 0 in
  let qtop = ref 0 in
  let in_queue = Array.make n false in
  let enqueue b =
    if not in_queue.(b) then begin
      in_queue.(b) <- true;
      queue.(!qtop) <- b;
      incr qtop
    end
  in
  enqueue 0;
  (* scratch: predecessors of the popped block, then the same grouped
     per label by counting sort (labels occurring among them only) *)
  let pred_l = ref (Array.make 64 0) in
  let pred_s = ref (Array.make 64 0) in
  let by_label = ref (Array.make 64 0) in
  let label_cnt = Array.make (max nb_labels 1) 0 in
  let label_end = Array.make (max nb_labels 1) 0 in
  let present = Array.make (max nb_labels 1) 0 in
  let touched = Array.make n 0 in
  let ensure used len =
    if len > Array.length !pred_l then begin
      let cap = max len (2 * Array.length !pred_l) in
      let grow a =
        let b = Array.make cap 0 in
        Array.blit !a 0 b 0 used;
        a := b
      in
      grow pred_l;
      grow pred_s;
      by_label := Array.make cap 0
    end
  in
  while !qtop > 0 do
    decr qtop;
    let b = queue.(!qtop) in
    in_queue.(b) <- false;
    Obs.incr splitters;
    Obs.push qlen (float_of_int (!qtop + 1));
    (* gather the labelled predecessors of b's states *)
    let k = ref 0 in
    Part.iter_block p b (fun d ->
        let lo = Arr.get rev.Csr.row d and hi = Arr.get rev.Csr.row (d + 1) in
        ensure !k (!k + hi - lo);
        for i = lo to hi - 1 do
          !pred_l.(!k) <- Arr.get rev.Csr.lbl i;
          !pred_s.(!k) <- Arr.get rev.Csr.col i;
          incr k
        done);
    let k = !k in
    (* counting sort by label; [present] lists the labels seen *)
    let nb_present = ref 0 in
    for i = 0 to k - 1 do
      let l = !pred_l.(i) in
      if label_cnt.(l) = 0 then begin
        present.(!nb_present) <- l;
        incr nb_present
      end;
      label_cnt.(l) <- label_cnt.(l) + 1
    done;
    let off = ref 0 in
    for j = 0 to !nb_present - 1 do
      let l = present.(j) in
      off := !off + label_cnt.(l);
      label_end.(l) <- !off
    done;
    for i = k - 1 downto 0 do
      let l = !pred_l.(i) in
      let pos = label_end.(l) - 1 in
      label_end.(l) <- pos;
      !by_label.(pos) <- !pred_s.(i)
    done;
    (* after the fill, label_end.(l) is the start of l's segment *)
    for j = 0 to !nb_present - 1 do
      let l = present.(j) in
      let seg_start = label_end.(l) in
      let seg_end = seg_start + label_cnt.(l) in
      label_cnt.(l) <- 0;
      (* mark the predecessors under label l, then split every block
         that received a mark *)
      let nb_touched = ref 0 in
      for i = seg_start to seg_end - 1 do
        let s = !by_label.(i) in
        let bs = Part.block_of p s in
        if Part.size p bs > 1 then begin
          if Part.marked p bs = 0 then begin
            touched.(!nb_touched) <- bs;
            incr nb_touched
          end;
          Part.mark p s
        end
      done;
      for t = 0 to !nb_touched - 1 do
        let x = touched.(t) in
        match Part.split_marked p x with
        | -1 -> ()
        | c ->
          Obs.incr splits;
          if in_queue.(x) then enqueue c
          else begin
            let smaller, larger =
              if Part.size p c <= Part.size p x then (c, x) else (x, c)
            in
            if small_half_only then enqueue smaller
            else begin
              (* both halves; push the larger first so the smaller is
                 popped first *)
              enqueue larger;
              enqueue smaller
            end
          end
      done
    done
  done;
  Part.assignment p

(* Round-based parallel engine.

   Each round snapshots the whole worklist as a batch, gathers every
   splitter's labelled predecessors in parallel, then applies marks
   and splits sequentially in deterministic batch order:

   - Snapshot: per batch block, its element slice [(first, last)]
     recorded at round start. Part slices never leave the parent's
     slice when splitting, so the recorded window keeps denoting the
     block's extent-at-snapshot even while the apply phase splits
     blocks of the same batch; processing a stale extent means
     splitting against a union of current blocks, which can never
     separate bisimilar states (a union of blocks is a union of
     bisimulation classes) — soundness is order-independent.
   - Gather: workers claim batch slots by fetch-and-add and write each
     splitter's (label, predecessor) pairs — counting-sorted by label
     exactly like the sequential engine, in the same deterministic
     slice x CSR order — into a shared segment array at prefix-summed
     offsets. Disjoint writes; Part is read-only during this phase.
   - Apply: batch order, label-group order within a splitter, same
     mark/split code as the sequential engine. Children of a split are
     enqueued for the next round; the smaller-half rule is {e not}
     used here (its invariant assumes current extents, not snapshots),
     so this engine trades some redundant splitter work for the
     parallel gather.

   Stability of every block against every block holds when the queue
   empties (any split re-enqueues enough cover: the child always, the
   parent unless still queued), so the result is the coarsest — i.e.
   the same — partition. *)
let strong_parallel pool ~nb_labels ~fwd ~rev =
  let n = Csr.nb_rows fwd in
  let splitters = Obs.counter "kern.splitters" in
  let splits = Obs.counter "kern.splits" in
  let qlen = Obs.series "kern.queue" in
  let rounds = Obs.counter "kern.rounds" in
  ignore (Csr.deterministic fwd);
  let p = Part.create n in
  let queue = Array.make n 0 in
  let qtop = ref 0 in
  let in_queue = Array.make n false in
  let enqueue b =
    if not in_queue.(b) then begin
      in_queue.(b) <- true;
      queue.(!qtop) <- b;
      incr qtop
    end
  in
  enqueue 0;
  let batch = Array.make n 0 in
  let snap_lo = Array.make n 0 in
  let snap_hi = Array.make n 0 in
  let offsets = Array.make (n + 1) 0 in
  let seg_l = ref (Array.make 1024 0) in
  let seg_s = ref (Array.make 1024 0) in
  let touched = Array.make n 0 in
  let indeg d = Arr.get rev.Csr.row (d + 1) - Arr.get rev.Csr.row d in
  while !qtop > 0 do
    let nb_batch = !qtop in
    Obs.incr rounds;
    Obs.push qlen (float_of_int nb_batch);
    Array.blit queue 0 batch 0 nb_batch;
    qtop := 0;
    (* snapshot extents and prefix-sum the gather offsets *)
    offsets.(0) <- 0;
    for j = 0 to nb_batch - 1 do
      let b = batch.(j) in
      in_queue.(b) <- false;
      let lo, hi = Part.slice p b in
      snap_lo.(j) <- lo;
      snap_hi.(j) <- hi;
      let sz = ref 0 in
      for i = lo to hi - 1 do
        sz := !sz + indeg (Part.element p i)
      done;
      offsets.(j + 1) <- offsets.(j) + !sz
    done;
    let total = offsets.(nb_batch) in
    if total > Array.length !seg_l then begin
      let cap = max total (2 * Array.length !seg_l) in
      seg_l := Array.make cap 0;
      seg_s := Array.make cap 0
    end;
    let seg_l = !seg_l and seg_s = !seg_s in
    (* parallel gather: workers claim splitters dynamically *)
    let cursor = Atomic.make 0 in
    Mv_par.Pool.run pool (fun _w ->
        let label_cnt = Array.make (max nb_labels 1) 0 in
        let label_end = Array.make (max nb_labels 1) 0 in
        let present = Array.make (max nb_labels 1) 0 in
        let tmp_l = ref (Array.make 1024 0) in
        let tmp_s = ref (Array.make 1024 0) in
        let rec claim () =
          let j = Atomic.fetch_and_add cursor 1 in
          if j < nb_batch then begin
            let len = offsets.(j + 1) - offsets.(j) in
            if len > 0 then begin
              if len > Array.length !tmp_l then begin
                let cap = max len (2 * Array.length !tmp_l) in
                tmp_l := Array.make cap 0;
                tmp_s := Array.make cap 0
              end;
              let tmp_l = !tmp_l and tmp_s = !tmp_s in
              let k = ref 0 in
              for i = snap_lo.(j) to snap_hi.(j) - 1 do
                let d = Part.element p i in
                for e = Arr.get rev.Csr.row d to Arr.get rev.Csr.row (d + 1) - 1
                do
                  tmp_l.(!k) <- Arr.get rev.Csr.lbl e;
                  tmp_s.(!k) <- Arr.get rev.Csr.col e;
                  incr k
                done
              done;
              let nb_present = ref 0 in
              for i = 0 to len - 1 do
                let l = tmp_l.(i) in
                if label_cnt.(l) = 0 then begin
                  present.(!nb_present) <- l;
                  incr nb_present
                end;
                label_cnt.(l) <- label_cnt.(l) + 1
              done;
              let off = ref 0 in
              for q = 0 to !nb_present - 1 do
                let l = present.(q) in
                off := !off + label_cnt.(l);
                label_end.(l) <- !off
              done;
              let base = offsets.(j) in
              for i = len - 1 downto 0 do
                let l = tmp_l.(i) in
                let pos = label_end.(l) - 1 in
                label_end.(l) <- pos;
                seg_l.(base + pos) <- l;
                seg_s.(base + pos) <- tmp_s.(i)
              done;
              for q = 0 to !nb_present - 1 do
                label_cnt.(present.(q)) <- 0
              done
            end;
            claim ()
          end
        in
        claim ());
    (* sequential apply, in deterministic batch order *)
    for j = 0 to nb_batch - 1 do
      Obs.incr splitters;
      let stop = offsets.(j + 1) in
      let i = ref offsets.(j) in
      while !i < stop do
        let l = seg_l.(!i) in
        let nb_touched = ref 0 in
        while !i < stop && seg_l.(!i) = l do
          let s = seg_s.(!i) in
          incr i;
          let bs = Part.block_of p s in
          if Part.size p bs > 1 then begin
            if Part.marked p bs = 0 then begin
              touched.(!nb_touched) <- bs;
              incr nb_touched
            end;
            Part.mark p s
          end
        done;
        for t = 0 to !nb_touched - 1 do
          let x = touched.(t) in
          match Part.split_marked p x with
          | -1 -> ()
          | c ->
            Obs.incr splits;
            if in_queue.(x) then enqueue c
            else begin
              let smaller, larger =
                if Part.size p c <= Part.size p x then (c, x) else (x, c)
              in
              enqueue larger;
              enqueue smaller
            end
        done
      done
    done
  done;
  Part.assignment p

(* Below this the parallel gather cannot pay for its round structure. *)
let parallel_threshold = 1024

let strong ~pool ~nb_labels ~fwd ~rev =
  Obs.span "kern.strong" @@ fun () ->
  match pool with
  | Some pool
    when Mv_par.Pool.size pool > 1 && Csr.nb_rows fwd > parallel_threshold ->
    strong_parallel pool ~nb_labels ~fwd ~rev
  | _ -> strong_sequential ~nb_labels ~fwd ~rev
