module Obs = Mv_obs.Obs

let strong ~nb_labels ~fwd ~rev =
  Obs.span "kern.strong" @@ fun () ->
  let n = Csr.nb_rows fwd in
  let splitters = Obs.counter "kern.splitters" in
  let splits = Obs.counter "kern.splits" in
  let qlen = Obs.series "kern.queue" in
  let p = Part.create n in
  let small_half_only = Csr.deterministic fwd in
  (* worklist of splitter blocks, as a stack with membership flags *)
  let queue = Array.make n 0 in
  let qtop = ref 0 in
  let in_queue = Array.make n false in
  let enqueue b =
    if not in_queue.(b) then begin
      in_queue.(b) <- true;
      queue.(!qtop) <- b;
      incr qtop
    end
  in
  enqueue 0;
  (* scratch: predecessors of the popped block, then the same grouped
     per label by counting sort (labels occurring among them only) *)
  let pred_l = ref (Array.make 64 0) in
  let pred_s = ref (Array.make 64 0) in
  let by_label = ref (Array.make 64 0) in
  let label_cnt = Array.make (max nb_labels 1) 0 in
  let label_end = Array.make (max nb_labels 1) 0 in
  let present = Array.make (max nb_labels 1) 0 in
  let touched = Array.make n 0 in
  let ensure used len =
    if len > Array.length !pred_l then begin
      let cap = max len (2 * Array.length !pred_l) in
      let grow a =
        let b = Array.make cap 0 in
        Array.blit !a 0 b 0 used;
        a := b
      in
      grow pred_l;
      grow pred_s;
      by_label := Array.make cap 0
    end
  in
  while !qtop > 0 do
    decr qtop;
    let b = queue.(!qtop) in
    in_queue.(b) <- false;
    Obs.incr splitters;
    Obs.push qlen (float_of_int (!qtop + 1));
    (* gather the labelled predecessors of b's states *)
    let k = ref 0 in
    Part.iter_block p b (fun d ->
        let lo = rev.Csr.row.(d) and hi = rev.Csr.row.(d + 1) in
        ensure !k (!k + hi - lo);
        for i = lo to hi - 1 do
          !pred_l.(!k) <- rev.Csr.lbl.(i);
          !pred_s.(!k) <- rev.Csr.col.(i);
          incr k
        done);
    let k = !k in
    (* counting sort by label; [present] lists the labels seen *)
    let nb_present = ref 0 in
    for i = 0 to k - 1 do
      let l = !pred_l.(i) in
      if label_cnt.(l) = 0 then begin
        present.(!nb_present) <- l;
        incr nb_present
      end;
      label_cnt.(l) <- label_cnt.(l) + 1
    done;
    let off = ref 0 in
    for j = 0 to !nb_present - 1 do
      let l = present.(j) in
      off := !off + label_cnt.(l);
      label_end.(l) <- !off
    done;
    for i = k - 1 downto 0 do
      let l = !pred_l.(i) in
      let pos = label_end.(l) - 1 in
      label_end.(l) <- pos;
      !by_label.(pos) <- !pred_s.(i)
    done;
    (* after the fill, label_end.(l) is the start of l's segment *)
    for j = 0 to !nb_present - 1 do
      let l = present.(j) in
      let seg_start = label_end.(l) in
      let seg_end = seg_start + label_cnt.(l) in
      label_cnt.(l) <- 0;
      (* mark the predecessors under label l, then split every block
         that received a mark *)
      let nb_touched = ref 0 in
      for i = seg_start to seg_end - 1 do
        let s = !by_label.(i) in
        let bs = Part.block_of p s in
        if Part.size p bs > 1 then begin
          if Part.marked p bs = 0 then begin
            touched.(!nb_touched) <- bs;
            incr nb_touched
          end;
          Part.mark p s
        end
      done;
      for t = 0 to !nb_touched - 1 do
        let x = touched.(t) in
        match Part.split_marked p x with
        | -1 -> ()
        | c ->
          Obs.incr splits;
          if in_queue.(x) then enqueue c
          else begin
            let smaller, larger =
              if Part.size p c <= Part.size p x then (c, x) else (x, c)
            in
            if small_half_only then enqueue smaller
            else begin
              (* both halves; push the larger first so the smaller is
                 popped first *)
              enqueue larger;
              enqueue smaller
            end
          end
      done
    done
  done;
  Part.assignment p
