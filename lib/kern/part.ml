type t = {
  elems : int array; (* states, grouped by block into contiguous slices *)
  loc : int array; (* position of each state in [elems] *)
  blk : int array; (* block id of each state *)
  first : int array; (* slice start, per block *)
  last_ : int array; (* slice end (exclusive), per block *)
  mid : int array; (* marked states occupy [first .. mid - 1] *)
  mutable count : int;
}

let create n =
  if n < 1 then invalid_arg "Part.create";
  let t =
    {
      elems = Array.init n (fun i -> i);
      loc = Array.init n (fun i -> i);
      blk = Array.make n 0;
      first = Array.make n 0;
      last_ = Array.make n 0;
      mid = Array.make n 0;
      count = 1;
    }
  in
  t.last_.(0) <- n;
  t

let count t = t.count
let block_of t s = t.blk.(s)
let size t b = t.last_.(b) - t.first.(b)
let marked t b = t.mid.(b) - t.first.(b)

let slice t b = (t.first.(b), t.last_.(b))
let element t i = t.elems.(i)

let iter_block t b f =
  for i = t.first.(b) to t.last_.(b) - 1 do
    f t.elems.(i)
  done

let mark t s =
  let b = t.blk.(s) in
  let i = t.loc.(s) in
  let m = t.mid.(b) in
  if i >= m then begin
    let u = t.elems.(m) in
    t.elems.(m) <- s;
    t.elems.(i) <- u;
    t.loc.(s) <- m;
    t.loc.(u) <- i;
    t.mid.(b) <- m + 1
  end

let split_marked t b =
  let f = t.first.(b) and m = t.mid.(b) in
  if m = t.last_.(b) then begin
    (* everything marked: no split, just clear the marks *)
    t.mid.(b) <- f;
    -1
  end
  else begin
    let c = t.count in
    t.count <- c + 1;
    t.first.(c) <- f;
    t.mid.(c) <- f;
    t.last_.(c) <- m;
    t.first.(b) <- m;
    t.mid.(b) <- m;
    for i = f to m - 1 do
      t.blk.(t.elems.(i)) <- c
    done;
    c
  end

let assignment t =
  let n = Array.length t.blk in
  let renum = Array.make t.count (-1) in
  let block_of = Array.make n 0 in
  let next = ref 0 in
  for s = 0 to n - 1 do
    let b = t.blk.(s) in
    if renum.(b) < 0 then begin
      renum.(b) <- !next;
      incr next
    end;
    block_of.(s) <- renum.(b)
  done;
  (block_of, t.count)
