module Lts = Mv_lts.Lts

type t = { row : Arr.t; lbl : Arr.t; col : Arr.t }
type mode = In_ram | Scratch of string

let nb_rows t = Arr.length t.row - 1
let nb_entries t = Arr.length t.row |> fun n -> Arr.get t.row (n - 1)

(* Scratch file names carry the pid and a process-local sequence so
   concurrent builds in one directory never collide; the files are
   unlinked as soon as they are mapped (see Arr). *)
let scratch_seq = ref 0

let alloc mode n x =
  match mode with
  | In_ram -> Arr.heap_make n x
  | Scratch dir ->
    incr scratch_seq;
    let path =
      Filename.concat dir
        (Printf.sprintf "mv-csr-%d-%d.scratch" (Unix.getpid ()) !scratch_seq)
    in
    Arr.mmap_make ~path n x

(* Two passes over the transition multiset: count per row, prefix-sum,
   fill. [iter] replays the transitions identically both times. *)
let build_iter ~mode ~n ~m ~key ~value iter =
  let row = alloc mode (n + 1) 0 in
  iter (fun s _ d ->
      let k = key s d in
      Arr.set row (k + 1) (Arr.get row (k + 1) + 1));
  for r = 1 to n do
    Arr.set row r (Arr.get row r + Arr.get row (r - 1))
  done;
  let lbl = alloc mode (max m 1) 0 in
  let col = alloc mode (max m 1) 0 in
  let fill = alloc mode (n + 1) 0 in
  Arr.blit row fill;
  iter (fun s l d ->
      let k = key s d in
      let i = Arr.get fill k in
      Arr.set lbl i l;
      Arr.set col i (value s d);
      Arr.set fill k (i + 1));
  { row; lbl; col }

let forward_iter ?(mode = In_ram) ~n ~m iter =
  build_iter ~mode ~n ~m ~key:(fun s _ -> s) ~value:(fun _ d -> d) iter

let reverse_iter ?(mode = In_ram) ~n ~m iter =
  build_iter ~mode ~n ~m ~key:(fun _ d -> d) ~value:(fun s _ -> s) iter

let forward ?mode lts =
  forward_iter ?mode ~n:(Lts.nb_states lts) ~m:(Lts.nb_transitions lts)
    (fun f -> Lts.iter_transitions lts f)

let reverse ?mode lts =
  reverse_iter ?mode ~n:(Lts.nb_states lts) ~m:(Lts.nb_transitions lts)
    (fun f -> Lts.iter_transitions lts f)

let deterministic t =
  let n = nb_rows t in
  let det = ref true in
  for s = 0 to n - 1 do
    for i = Arr.get t.row s to Arr.get t.row (s + 1) - 2 do
      if Arr.get t.lbl i = Arr.get t.lbl (i + 1) then det := false
    done
  done;
  !det
