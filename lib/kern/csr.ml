module Lts = Mv_lts.Lts

type t = { row : int array; lbl : int array; col : int array }

let nb_rows t = Array.length t.row - 1
let nb_entries t = Array.length t.row |> fun n -> t.row.(n - 1)

let build ~n ~m ~key ~value lts =
  let row = Array.make (n + 1) 0 in
  let lbl = Array.make (max m 1) 0 in
  let col = Array.make (max m 1) 0 in
  Lts.iter_transitions lts (fun s _ d -> row.(key s d + 1) <- row.(key s d + 1) + 1);
  for r = 1 to n do
    row.(r) <- row.(r) + row.(r - 1)
  done;
  let fill = Array.copy row in
  Lts.iter_transitions lts (fun s l d ->
      let i = fill.(key s d) in
      lbl.(i) <- l;
      col.(i) <- value s d;
      fill.(key s d) <- i + 1);
  { row; lbl; col }

let forward lts =
  build lts ~n:(Lts.nb_states lts) ~m:(Lts.nb_transitions lts)
    ~key:(fun s _ -> s)
    ~value:(fun _ d -> d)

let reverse lts =
  build lts ~n:(Lts.nb_states lts) ~m:(Lts.nb_transitions lts)
    ~key:(fun _ d -> d)
    ~value:(fun s _ -> s)

let deterministic t =
  let n = nb_rows t in
  let det = ref true in
  for s = 0 to n - 1 do
    for i = t.row.(s) to t.row.(s + 1) - 2 do
      if t.lbl.(i) = t.lbl.(i + 1) then det := false
    done
  done;
  !det
