(** Deterministic schedule exploration for lock-free algorithms
    (a DSCheck-style model checker, self-contained on OCaml effects).

    A bounded concurrent program is expressed against the virtual
    atomics {!A}: every [get]/[set]/[compare_and_set]/[fetch_and_add]
    is a yield point of a cooperative scheduler, and {!explore}
    enumerates {e every} interleaving of those atomic accesses by
    replay-based depth-first search (threads are re-run from scratch
    for each schedule, so no multi-shot continuations are needed).
    Because OCaml atomics are sequentially consistent, enumerating
    interleavings of atomic accesses is a sound and complete
    exploration of the behaviours the real {!Atomics.Real} instance
    can exhibit — which is exactly why {!Deque.Make} and
    {!Shard_set.Bucket} are functorized over {!Atomics.S}: the model
    checker runs the shipped algorithm, not a copy.

    Scope and limits: programs must be bounded (a few threads, a
    handful of atomic accesses each — the schedule count is
    multinomial in the step counts) and must touch shared state only
    through {!A}. Code before a thread's first atomic access runs at
    thread creation, in list order; code between accesses runs
    atomically with the preceding access. There is no partial-order
    reduction, so keep programs small; [max_schedules] (default
    200_000) turns an accidental blow-up into a clean failure. *)

(** Virtual atomics: each operation yields to the exploration
    scheduler. Only meaningful inside {!explore}'s callbacks —
    performing an operation outside raises [Effect.Unhandled]. *)
module A : Atomics.S

type stats = {
  schedules : int;  (** distinct complete interleavings executed *)
  steps : int;  (** total atomic accesses across all schedules *)
}

(** Raised by {!explore} when [check] returns [false] on some
    schedule; [schedule] is the failing thread-choice sequence (one
    thread index per atomic access, a deterministic repro). *)
exception Violation of { schedule : int list; message : string }

(** [explore ~setup ~threads ~check ()] — for every interleaving:
    runs [setup ()] alone (build the shared state here), then the
    [threads] on the shared state under the exploring scheduler, then
    [check] alone on the final state. Raises {!Violation} on the first
    schedule whose [check] fails, [Failure] past [max_schedules], and
    re-raises exceptions from the callbacks unchanged. *)
val explore :
  ?max_schedules:int ->
  setup:(unit -> 'st) ->
  threads:('st -> unit) list ->
  check:('st -> bool) ->
  unit ->
  stats
