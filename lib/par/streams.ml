module Rng = Mv_util.Rng

let replications ~seed n =
  let master = Rng.create seed in
  Array.init n (fun _ -> Rng.split master)

let per_worker ~seed pool = replications ~seed (Pool.size pool)
