type policy =
  | Auto
  | Fixed of int
  | Guided

let policy_name = function
  | Auto -> "auto"
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Guided -> "guided"

let auto_size ~workers ~lo ~hi = min 1024 (max 1 ((hi - lo) / (8 * workers)))

let guided_min = 64

let validate = function
  | Fixed n when n <= 0 -> invalid_arg "Chunk: Fixed size must be positive"
  | _ -> ()

(* Uniform split of [lo, hi) into chunks of [size] (last one short). *)
let uniform ~size ~lo ~hi =
  let nb = (hi - lo + size - 1) / size in
  Array.init nb (fun c ->
      let a = lo + (c * size) in
      (a, min hi (a + size)))

let ranges ~policy ~workers ~lo ~hi =
  validate policy;
  if hi <= lo then [||]
  else
    match policy with
    | Fixed size -> uniform ~size ~lo ~hi
    | Auto -> uniform ~size:(auto_size ~workers ~lo ~hi) ~lo ~hi
    | Guided ->
      (* Guided self-scheduling: each successive chunk takes
         [remaining / (2 * workers)] indices, floored at
         [guided_min], so early chunks are big (low scheduling
         overhead) and the tail is fine-grained (good load balance
         for skewed bodies). The schedule is a pure function of
         [(workers, lo, hi)] and is laid out fully before any worker
         starts. *)
      let acc = ref [] in
      let a = ref lo in
      while !a < hi do
        let remaining = hi - !a in
        let size = max guided_min (remaining / (2 * workers)) in
        let b = min hi (!a + size) in
        acc := (!a, b) :: !acc;
        a := b
      done;
      Array.of_list (List.rev !acc)
