(** Chunking policies for the pool's data-parallel loops.

    A {!policy} travels with the pool handle ({!Pool.create}'s [?chunk]
    argument) so every loop run on that pool splits its iteration space
    the same way; individual calls may override it. The split is always
    computed {e before} any worker starts, as a fixed ascending array
    of half-open ranges — scheduling decides only {e who} runs a range,
    never {e what} the ranges are, which is the keystone of the
    repository's determinism contract (see doc/parallel.md).

    - [Auto] — uniform chunks of [max 1 ((hi - lo) / (8 * workers))]
      capped at 1024: small enough to steal, large enough to amortize
      scheduling. The boundaries depend on the worker count below the
      cap; engines that key work off range starts should use [Fixed].
    - [Fixed n] — uniform chunks of exactly [n] (last one short).
      Boundaries are independent of the pool, so per-chunk outputs
      (e.g. {!Pool.map_reduce} partials) are reproducible across
      [-j N].
    - [Guided] — decreasing chunk sizes ([remaining / (2 * workers)],
      floored at 64): big head chunks, fine tail, for bodies with
      skewed per-index cost. Boundaries depend on the worker count. *)

type policy =
  | Auto
  | Fixed of int
  | Guided

(** ["auto"], ["fixed:N"] or ["guided"], for logs and metrics. *)
val policy_name : policy -> string

(** The uniform chunk size [Auto] uses. *)
val auto_size : workers:int -> lo:int -> hi:int -> int

(** Raises [Invalid_argument] on [Fixed n] with [n <= 0]. *)
val validate : policy -> unit

(** [ranges ~policy ~workers ~lo ~hi] — the full schedule, ascending,
    covering every index of [[lo, hi)] exactly once; [[||]] when the
    range is empty. Raises [Invalid_argument] on [Fixed n] with
    [n <= 0]. *)
val ranges :
  policy:policy -> workers:int -> lo:int -> hi:int -> (int * int) array
