module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
end

module Real : S with type 'a t = 'a Atomic.t = Atomic
