(** Chunked data-parallel loops over a {!Pool}.

    Determinism contract (relied on by every engine that uses this
    module): the set of indices executed, the chunk boundaries, and
    the reduction order depend only on the iteration bounds and
    [chunk_size] — {e never} on the pool size or on scheduling. A
    [parallel_for] whose body writes only to slot [i] of an output
    array therefore produces bit-identical results at any [-j N], and
    [map_reduce] reduces chunk results in ascending chunk order, so
    floating-point reductions are likewise reproducible. *)

(** [parallel_for ?chunk_size pool ~lo ~hi f] runs [f i] for every
    [lo <= i < hi], each index exactly once, in parallel. Bodies must
    not touch shared mutable state except through disjoint slots or
    their own synchronization. Default [chunk_size]: [max 1 ((hi - lo)
    / (8 * size))], capped at 1024 — small enough to steal, large
    enough to amortize scheduling. *)
val parallel_for :
  ?chunk_size:int -> Pool.t -> lo:int -> hi:int -> (int -> unit) -> unit

(** [parallel_chunks ?chunk_size pool ~lo ~hi f] — chunk-grained
    variant: [f a b] processes the half-open range [[a, b)]. Use it
    when per-index closure calls would dominate. *)
val parallel_chunks :
  ?chunk_size:int -> Pool.t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** [map_reduce ?chunk_size pool ~lo ~hi ~map ~reduce ~init] computes
    [reduce (... (reduce init (fold of chunk 0)) ...) (fold of chunk
    k)], where the fold of a chunk is [reduce] applied left-to-right
    over [map i] in ascending index order, seeded with [init]. [init]
    must be a neutral element of [reduce] (it is folded in once per
    chunk). The result depends on [chunk_size] but not on the pool
    size. *)
val map_reduce :
  ?chunk_size:int ->
  Pool.t ->
  lo:int ->
  hi:int ->
  map:(int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  init:'a ->
  'a
