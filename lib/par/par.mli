(** Deprecated shims over {!Pool}'s loops.

    The pool-handle-first API ({!Pool.for_}, {!Pool.chunks},
    {!Pool.map_reduce}, with the chunking policy carried by the pool)
    replaced these free-floating entry points; see doc/parallel.md for
    the migration table. Each shim forwards verbatim, translating
    [?chunk_size] to [Chunk.Fixed]. *)

val default_chunk_size : Pool.t -> lo:int -> hi:int -> int
[@@deprecated "use Mv_par.Chunk.auto_size"]

val parallel_for :
  ?chunk_size:int -> Pool.t -> lo:int -> hi:int -> (int -> unit) -> unit
[@@deprecated "use Mv_par.Pool.for_"]

val parallel_chunks :
  ?chunk_size:int -> Pool.t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
[@@deprecated "use Mv_par.Pool.chunks"]

val map_reduce :
  ?chunk_size:int ->
  Pool.t ->
  lo:int ->
  hi:int ->
  map:(int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  init:'a ->
  'a
[@@deprecated "use Mv_par.Pool.map_reduce"]
