(** Splittable per-worker random streams.

    Monte-Carlo engines that fan replications out over a pool must not
    share one {!Mv_util.Rng.t}: the interleaving (and hence every
    sample) would depend on scheduling. Instead a master generator is
    split sequentially, {e up front}, into one independent stream per
    unit of work; stream [i] then depends only on [seed] and [i], so
    results are bit-identical at any pool size — including 1, where
    splitting reproduces the historical sequential seeding
    ([Rng.split] derives exactly the seeds the sequential code drew
    with [next_int64]). *)

(** [replications ~seed n] — [n] independent generators split off a
    master seeded with [seed]. Stream [i] is a function of [(seed, i)]
    only. *)
val replications : seed:int64 -> int -> Mv_util.Rng.t array

(** [per_worker ~seed pool] — one stream per pool worker, for
    embarrassingly parallel sampling where work items need no
    individual stream identity (statistics then depend on the pool
    size; use {!replications} when they must not). *)
val per_worker : seed:int64 -> Pool.t -> Mv_util.Rng.t array
