module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

(* One CAS-guarded hash bucket: a chain of immutable cons cells behind
   a single atomic head. Reading the head is a true snapshot of the
   bucket (cells are never mutated); inserting is copy-head-and-CAS
   with a full re-scan on failure, so an element is published at most
   once even under contention. Factored out (and functorized over the
   atomics) so the interleaving suite can exhaustively model-check the
   insert path — see test/test_model.ml. *)
module Bucket (A : Atomics.S) (H : HASHED) = struct
  type node =
    | Nil
    | Cons of { elem : H.t; slot : int; next : node }

  let rec find_node node x =
    match node with
    | Nil -> None
    | Cons { elem; slot; next } ->
      if H.equal elem x then Some slot else find_node next x

  let find bucket x = find_node (A.get bucket) x

  (* [add bucket x ~alloc] inserts [x] if absent; [alloc] assigns its
     slot (called at most once, before the node becomes visible, so
     anything [alloc] writes is published by the winning CAS). Returns
     [(slot, fresh)]. A slot allocated by a loser of the race is
     abandoned — callers get holes in the slot space, never
     duplicates. *)
  let add bucket x ~alloc =
    let rec retry allocated =
      let head = A.get bucket in
      match find_node head x with
      | Some slot -> (slot, false)
      | None ->
        let slot =
          match allocated with Some s -> s | None -> alloc ()
        in
        if A.compare_and_set bucket head (Cons { elem = x; slot; next = head })
        then (slot, true)
        else retry (Some slot)
    in
    retry None
end

module Make (H : HASHED) = struct
  module B = Bucket (Atomics.Real) (H)

  (* Slot -> element log, as a spine of chunks published by CAS so
     readers never see a partially grown array. Chunk [k] holds
     [log_base * 2^k] slots starting at [log_base * (2^k - 1)]; a
     62-entry spine covers every representable slot. *)
  let log_base = 32

  let chunk_of slot =
    let q = (slot / log_base) + 1 in
    let k = ref 0 in
    let q = ref q in
    while !q > 1 do
      incr k;
      q := !q lsr 1
    done;
    let k = !k in
    (k, slot - (log_base * ((1 lsl k) - 1)))

  type shard = {
    buckets : B.node Atomic.t array; (* power-of-two sized *)
    bucket_mask : int;
    next_slot : int Atomic.t;
    count : int Atomic.t; (* elements actually published *)
    log : H.t array Atomic.t array; (* spine; [||] = chunk not built *)
  }

  type t = {
    shards : shard array;
    mask : int;
    shift : int; (* log2 (nb shards): bucket index uses the hash bits
                    above the shard bits *)
  }

  let create ?(shards = 64) ?(buckets = 1024) () =
    let rec pow2 n target = if n >= target then n else pow2 (2 * n) target in
    let nb = pow2 1 (max 1 shards) in
    let nb_buckets = pow2 1 (max 1 buckets) in
    let shift =
      let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
      log2 0 nb
    in
    {
      shards =
        Array.init nb (fun _ ->
            {
              buckets = Array.init nb_buckets (fun _ -> Atomic.make B.Nil);
              bucket_mask = nb_buckets - 1;
              next_slot = Atomic.make 0;
              count = Atomic.make 0;
              log = Array.init 62 (fun _ -> Atomic.make [||]);
            });
      mask = nb - 1;
      shift;
    }

  let nb_shards t = Array.length t.shards

  (* Writes [x] at [slot] of the shard's log. The chunk is built on
     first touch and published by CAS ([x] doubles as the filler, so
     unwritten cells hold a valid — if arbitrary — element, never a
     dangling value). The plain write at [offset] is published to
     readers by the bucket CAS that follows it. *)
  let log_write shard slot x =
    let k, offset = chunk_of slot in
    let cell = shard.log.(k) in
    let current = Atomic.get cell in
    let chunk =
      if Array.length current > 0 then current
      else begin
        let fresh = Array.make (log_base lsl k) x in
        if Atomic.compare_and_set cell current fresh then fresh
        else Atomic.get cell
      end
    in
    chunk.(offset) <- x

  let log_read shard slot =
    let k, offset = chunk_of slot in
    (Atomic.get shard.log.(k)).(offset)

  let add t x =
    let nb = Array.length t.shards in
    let h = H.hash x in
    let index = h land t.mask in
    let shard = t.shards.(index) in
    let bucket = shard.buckets.((h lsr t.shift) land shard.bucket_mask) in
    let alloc () =
      let slot = Atomic.fetch_and_add shard.next_slot 1 in
      log_write shard slot x;
      slot
    in
    let slot, fresh = B.add bucket x ~alloc in
    if fresh then ignore (Atomic.fetch_and_add shard.count 1);
    ((slot * nb) + index, fresh)

  let find t x =
    let h = H.hash x in
    let index = h land t.mask in
    let shard = t.shards.(index) in
    let bucket = shard.buckets.((h lsr t.shift) land shard.bucket_mask) in
    Option.map
      (fun slot -> (slot * Array.length t.shards) + index)
      (B.find bucket x)

  let mem t x = find t x <> None

  let get t id =
    let nb = Array.length t.shards in
    log_read t.shards.(id mod nb) (id / nb)

  let cardinal t =
    Array.fold_left (fun acc shard -> acc + Atomic.get shard.count) 0 t.shards

  let id_bound t =
    let widest =
      Array.fold_left
        (fun acc shard -> max acc (Atomic.get shard.next_slot))
        0 t.shards
    in
    widest * Array.length t.shards

  let iter t f =
    let nb = Array.length t.shards in
    Array.iteri
      (fun index shard ->
        Array.iter
          (fun bucket ->
            let rec walk = function
              | B.Nil -> ()
              | B.Cons { elem; slot; next } ->
                f ((slot * nb) + index) elem;
                walk next
            in
            walk (Atomic.get bucket))
          shard.buckets)
      t.shards
end
