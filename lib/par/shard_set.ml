module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : HASHED) = struct
  module Table = Hashtbl.Make (H)

  type shard = {
    lock : Mutex.t;
    slots : int Table.t; (* element -> slot *)
    mutable elements : H.t array; (* slot -> element; filler beyond [size] *)
    mutable size : int;
  }

  type t = {
    shards : shard array;
    mask : int;
  }

  let create ?(shards = 64) () =
    let rec pow2 n = if n >= shards then n else pow2 (2 * n) in
    let n = pow2 1 in
    {
      shards =
        Array.init n (fun _ ->
            {
              lock = Mutex.create ();
              slots = Table.create 256;
              elements = [||];
              size = 0;
            });
      mask = n - 1;
    }

  let nb_shards t = Array.length t.shards

  let shard_of t x = t.shards.(H.hash x land t.mask)

  let add t x =
    let nb = Array.length t.shards in
    let index = H.hash x land t.mask in
    let shard = t.shards.(index) in
    Mutex.lock shard.lock;
    let result =
      match Table.find_opt shard.slots x with
      | Some slot -> ((slot * nb) + index, false)
      | None ->
        let slot = shard.size in
        if slot = Array.length shard.elements then begin
          let cap = max 16 (2 * slot) in
          let elements = Array.make cap x in
          Array.blit shard.elements 0 elements 0 slot;
          shard.elements <- elements
        end;
        shard.elements.(slot) <- x;
        shard.size <- slot + 1;
        Table.add shard.slots x slot;
        ((slot * nb) + index, true)
    in
    Mutex.unlock shard.lock;
    result

  let find t x =
    let shard = shard_of t x in
    Mutex.lock shard.lock;
    let slot = Table.find_opt shard.slots x in
    Mutex.unlock shard.lock;
    Option.map (fun s -> (s * Array.length t.shards) + (H.hash x land t.mask)) slot

  let mem t x = find t x <> None

  let get t id =
    let nb = Array.length t.shards in
    t.shards.(id mod nb).elements.(id / nb)

  let cardinal t =
    Array.fold_left
      (fun acc shard ->
         Mutex.lock shard.lock;
         let n = shard.size in
         Mutex.unlock shard.lock;
         acc + n)
      0 t.shards

  let id_bound t =
    let widest =
      Array.fold_left
        (fun acc shard ->
           Mutex.lock shard.lock;
           let n = shard.size in
           Mutex.unlock shard.lock;
           max acc n)
        0 t.shards
    in
    widest * Array.length t.shards
end
