type t = {
  size : int;
  chunk : Chunk.policy;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int; (* bumped per job; wakes parked workers *)
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let record_failure pool exn =
  Mutex.lock pool.mutex;
  if pool.failure = None then pool.failure <- Some exn;
  Mutex.unlock pool.mutex

let worker pool index =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while pool.epoch = !last && not pool.stop do
      Condition.wait pool.start pool.mutex
    done;
    if pool.stop then begin
      running := false;
      Mutex.unlock pool.mutex
    end
    else begin
      last := pool.epoch;
      let job = Option.get pool.job in
      Mutex.unlock pool.mutex;
      (try job index with exn -> record_failure pool exn);
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.mutex
    end
  done

let create ?(chunk = Chunk.Auto) ~domains () =
  Chunk.validate chunk;
  let size = max 1 domains in
  let pool =
    {
      size;
      chunk;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      failure = None;
      stop = false;
      domains = [||];
    }
  in
  pool.domains <-
    Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool i));
  pool

let size pool = pool.size
let chunk_policy pool = pool.chunk

let run_plain pool f =
  if pool.size = 1 then f 0
  else begin
    Mutex.lock pool.mutex;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    pool.job <- Some f;
    pool.failure <- None;
    pool.pending <- pool.size - 1;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.start;
    Mutex.unlock pool.mutex;
    (* the caller is the last worker *)
    let own_failure =
      match f (pool.size - 1) with () -> None | exception exn -> Some exn
    in
    Mutex.lock pool.mutex;
    while pool.pending > 0 do
      Condition.wait pool.finished pool.mutex
    done;
    let failure = pool.failure in
    pool.job <- None;
    Mutex.unlock pool.mutex;
    match own_failure, failure with
    | Some exn, _ | None, Some exn -> raise exn
    | None, None -> ()
  end

(* When telemetry is on, time each domain's share of the job and fold
   it into accumulating busy/idle gauges (flushed by the caller's
   domain once the run is over, so gauge read-modify-write never
   races). *)
let run pool f =
  let module Obs = Mv_obs.Obs in
  if pool.size = 1 || not (Obs.is_enabled ()) then run_plain pool f
  else begin
    let busy = Array.make pool.size 0.0 in
    let t0 = Obs.Clock.now_ns () in
    let timed w =
      let s0 = Obs.Clock.now_ns () in
      match f w with
      | () -> busy.(w) <- Obs.Clock.elapsed_s s0
      | exception exn ->
        busy.(w) <- Obs.Clock.elapsed_s s0;
        raise exn
    in
    let flush () =
      let wall = Obs.Clock.elapsed_s t0 in
      let total_busy = Array.fold_left ( +. ) 0.0 busy in
      Obs.incr (Obs.counter "par.runs");
      let accumulate name dt =
        let g = Obs.gauge name in
        Obs.set g (Obs.gauge_value g +. dt)
      in
      accumulate "par.pool.wall_s" wall;
      accumulate "par.pool.idle_s"
        (max 0.0 ((wall *. float_of_int pool.size) -. total_busy));
      Array.iteri
        (fun w dt -> accumulate (Printf.sprintf "par.domain%d.busy_s" w) dt)
        busy
    in
    match run_plain pool timed with
    | () -> flush ()
    | exception exn ->
      flush ();
      raise exn
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.start;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let scope ?chunk ~domains f =
  let pool = create ?chunk ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let auto () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Data-parallel loops.

   The schedule (an ascending array of ranges) is fully laid out
   before any worker starts, then dealt round-robin into per-worker
   Chase-Lev deques; each worker drains its own deque bottom-first and
   sweeps the others stealing top-first. No work is created after the
   deal, so a full sweep that finds every deque empty is a sound
   termination condition (an item is always either done, running, or
   in some deque). *)

let resolve pool = function Some policy -> policy | None -> pool.chunk

(* [f ordinal a b] for every range, each exactly once. *)
let run_ranges pool ranges f =
  let nb = Array.length ranges in
  if nb > 0 then begin
    let workers = pool.size in
    if workers = 1 || nb = 1 then
      Array.iteri (fun c (a, b) -> f c a b) ranges
    else begin
      let module Obs = Mv_obs.Obs in
      if Obs.is_enabled () then begin
        Obs.add (Obs.counter "par.chunks") nb;
        let sizes = Obs.histogram "par.chunk_size" in
        Array.iter (fun (a, b) -> Obs.observe sizes (float_of_int (b - a))) ranges
      end;
      let steals = Obs.counter "par.steals" in
      let deques = Array.init workers (fun _ -> Deque.create ()) in
      for c = nb - 1 downto 0 do
        (* reverse deal so [pop] serves ranges in ascending order *)
        let a, b = ranges.(c) in
        Deque.push deques.(c mod workers) (c, a, b)
      done;
      run pool (fun w ->
          let rec next victim =
            if victim = workers then None
            else
              match Deque.steal deques.((w + victim) mod workers) with
              | Some _ as item ->
                Obs.incr steals;
                item
              | None -> next (victim + 1)
          in
          let rec drain () =
            match
              match Deque.pop deques.(w) with
              | Some _ as item -> item
              | None -> next 1
            with
            | Some (c, a, b) ->
              f c a b;
              drain ()
            | None -> ()
          in
          drain ())
    end
  end

let plan ?chunk pool ~lo ~hi =
  Chunk.ranges ~policy:(resolve pool chunk) ~workers:pool.size ~lo ~hi

let chunks ?chunk ~pool ~lo ~hi f =
  run_ranges pool (plan ?chunk pool ~lo ~hi) (fun _ a b -> f a b)

let for_ ?chunk ~pool ~lo ~hi f =
  run_ranges pool
    (plan ?chunk pool ~lo ~hi)
    (fun _ a b ->
      for i = a to b - 1 do
        f i
      done)

let map_reduce ?chunk ~pool ~lo ~hi ~map ~reduce ~init =
  if hi <= lo then init
  else begin
    let ranges = plan ?chunk pool ~lo ~hi in
    let partials = Array.make (Array.length ranges) None in
    run_ranges pool ranges (fun c a b ->
        let acc = ref init in
        for i = a to b - 1 do
          acc := reduce !acc (map i)
        done;
        partials.(c) <- Some !acc);
    Array.fold_left
      (fun acc partial -> reduce acc (Option.get partial))
      init partials
  end
