type t = {
  size : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int; (* bumped per job; wakes parked workers *)
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let record_failure pool exn =
  Mutex.lock pool.mutex;
  if pool.failure = None then pool.failure <- Some exn;
  Mutex.unlock pool.mutex

let worker pool index =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while pool.epoch = !last && not pool.stop do
      Condition.wait pool.start pool.mutex
    done;
    if pool.stop then begin
      running := false;
      Mutex.unlock pool.mutex
    end
    else begin
      last := pool.epoch;
      let job = Option.get pool.job in
      Mutex.unlock pool.mutex;
      (try job index with exn -> record_failure pool exn);
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.mutex
    end
  done

let create ~domains =
  let size = max 1 domains in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      failure = None;
      stop = false;
      domains = [||];
    }
  in
  pool.domains <-
    Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool i));
  pool

let size pool = pool.size

let run_plain pool f =
  if pool.size = 1 then f 0
  else begin
    Mutex.lock pool.mutex;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    pool.job <- Some f;
    pool.failure <- None;
    pool.pending <- pool.size - 1;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.start;
    Mutex.unlock pool.mutex;
    (* the caller is the last worker *)
    let own_failure =
      match f (pool.size - 1) with () -> None | exception exn -> Some exn
    in
    Mutex.lock pool.mutex;
    while pool.pending > 0 do
      Condition.wait pool.finished pool.mutex
    done;
    let failure = pool.failure in
    pool.job <- None;
    Mutex.unlock pool.mutex;
    match own_failure, failure with
    | Some exn, _ | None, Some exn -> raise exn
    | None, None -> ()
  end

(* When telemetry is on, time each domain's share of the job and fold
   it into accumulating busy/idle gauges (flushed by the caller's
   domain once the run is over, so gauge read-modify-write never
   races). *)
let run pool f =
  let module Obs = Mv_obs.Obs in
  if pool.size = 1 || not (Obs.is_enabled ()) then run_plain pool f
  else begin
    let busy = Array.make pool.size 0.0 in
    let t0 = Obs.Clock.now_ns () in
    let timed w =
      let s0 = Obs.Clock.now_ns () in
      match f w with
      | () -> busy.(w) <- Obs.Clock.elapsed_s s0
      | exception exn ->
        busy.(w) <- Obs.Clock.elapsed_s s0;
        raise exn
    in
    let flush () =
      let wall = Obs.Clock.elapsed_s t0 in
      let total_busy = Array.fold_left ( +. ) 0.0 busy in
      Obs.incr (Obs.counter "par.runs");
      let accumulate name dt =
        let g = Obs.gauge name in
        Obs.set g (Obs.gauge_value g +. dt)
      in
      accumulate "par.pool.wall_s" wall;
      accumulate "par.pool.idle_s"
        (max 0.0 ((wall *. float_of_int pool.size) -. total_busy));
      Array.iteri
        (fun w dt -> accumulate (Printf.sprintf "par.domain%d.busy_s" w) dt)
        busy
    in
    match run_plain pool timed with
    | () -> flush ()
    | exception exn ->
      flush ();
      raise exn
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.start;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let auto () = Domain.recommended_domain_count ()
