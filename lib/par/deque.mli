(** Work-stealing deques.

    Each pool worker owns one deque: the owner pushes and pops work at
    the bottom (LIFO, cache-friendly), idle workers steal from the top
    (FIFO, so thieves take the oldest — typically largest-granularity —
    item). The implementation is a mutex-protected ring buffer: with
    chunk-grained work items the lock is taken a few hundred times per
    parallel region, so contention is negligible and the simplicity
    pays for itself (no fences to reason about beyond the lock). *)

type 'a t

(** An empty deque. *)
val create : unit -> 'a t

(** [push d x] appends [x] at the owner end. Safe from any domain
    (the pool only pushes before releasing workers, but tests push
    concurrently). *)
val push : 'a t -> 'a -> unit

(** [pop d] removes the most recently pushed item (owner end), or
    [None] when empty. *)
val pop : 'a t -> 'a option

(** [steal d] removes the oldest item (thief end), or [None] when
    empty. *)
val steal : 'a t -> 'a option

(** Current number of items (a snapshot; other domains may race). *)
val length : 'a t -> int
