(** Lock-free Chase–Lev work-stealing deques.

    Each pool worker owns one deque: the owner pushes and pops work at
    the bottom (LIFO, cache-friendly), idle workers steal from the top
    (FIFO, so thieves take the oldest — typically largest-granularity —
    item). The implementation is the Chase–Lev algorithm on a circular
    growable buffer: [top]/[bottom] are [Atomic] indices, the owner's
    push/pop are CAS-free except when racing a thief for the last
    element, and thieves claim items with a single CAS on [top]. OCaml
    atomics are sequentially consistent, which is the memory model the
    correctness argument (in deque.ml, and doc/parallel.md § memory
    model notes) is stated against; the interleaving suite in
    test/test_model.ml checks the argument by exhaustive schedule
    enumeration of bounded programs over {!Make}.

    Ownership contract: at most one domain may call {!push}/{!pop} on
    a given deque at a time (the pool guarantees this structurally —
    it deals before releasing workers, and each worker pops only its
    own deque). {!steal} and {!length} are safe from any number of
    domains concurrently. *)

type 'a t

(** An empty deque (initial capacity 8, grows by doubling). *)
val create : unit -> 'a t

(** [push d x] appends [x] at the owner end. Owner-only. *)
val push : 'a t -> 'a -> unit

(** [pop d] removes the most recently pushed item (owner end), or
    [None] when empty. Owner-only. *)
val pop : 'a t -> 'a option

(** [steal d] removes the oldest item (thief end), or [None] when
    empty. Safe from any domain. *)
val steal : 'a t -> 'a option

(** Approximate number of items: one relaxed pass over [bottom - top]
    with no synchronization, so concurrent operations can make the
    result stale by the time it returns. Exact when the deque is
    quiescent. Cheap enough for hot-path telemetry gauges. *)
val length : 'a t -> int

(** Output signature of {!Make}. *)
module type S = sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
  val length : 'a t -> int
end

(** The algorithm, abstracted over its atomics so the model-check
    suite can explore it under a virtual scheduler ({!Interleave.A}).
    The toplevel values of this module are [Make (Atomics.Real)]. *)
module Make (A : Atomics.S) : S
