(** The atomic primitives the lock-free structures are written
    against.

    {!Deque} and {!Shard_set} take their atomics as a functor argument
    instead of calling [Stdlib.Atomic] directly, so the {e same}
    algorithm code runs in two worlds:

    - production, instantiated with {!Real} (= [Stdlib.Atomic], whose
      operations are sequentially consistent per the OCaml memory
      model), and
    - the model-check suite, instantiated with {!Interleave.A}, whose
      operations are yield points of a deterministic scheduler that
      enumerates every interleaving of a bounded program.

    This is what makes the interleaving tests meaningful: they explore
    the shipped algorithm, not a re-implementation of it. Only the five
    operations below may be used by code that wants to be model
    checkable; in particular no blocking, no [Domain] primitives, and
    no unbounded retry loops that are not cut off by another thread's
    progress. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  (** [compare_and_set r seen v] — physical-equality CAS, like
      [Atomic.compare_and_set]. *)
  val compare_and_set : 'a t -> 'a -> 'a -> bool

  (** [fetch_and_add r n] returns the pre-increment value. *)
  val fetch_and_add : int t -> int -> int
end

(** [Stdlib.Atomic]: every operation is a sequentially consistent
    atomic access. *)
module Real : S with type 'a t = 'a Atomic.t
