(** The pool handle: worker domains + chunking policy + parallel
    loops.

    This is the one entry point for parallel execution. A pool is
    created once per command invocation ([mval -j N]) and carries both
    the worker domains and the {!Chunk.policy} its loops use, so every
    engine handed the pool splits work the same way; the former
    free-floating [Par.parallel_for]/[Par.map_reduce] entry points are
    deprecated shims over {!for_}/{!map_reduce} (see doc/parallel.md
    for the migration table).

    OCaml domains are heavyweight (each maps to an OS thread with its
    own minor heap), so engines never spawn them per task: a pool of
    size 1 spawns no domains at all and runs everything inline, which
    is how the default [-j 1] keeps the sequential behaviour (and
    performance) of the pre-parallel code paths.

    Determinism contract (relied on by every engine): the set of
    indices executed, the chunk boundaries, and the reduction order
    are fixed before any worker starts — scheduling (who steals what)
    never changes {e what} runs, only {e where}. A {!for_} whose body
    writes only to slot [i] of an output array therefore produces
    bit-identical results at any [-j N]; {!map_reduce} reduces chunk
    results in ascending chunk order, so floating-point reductions are
    reproducible given the same chunk boundaries (use [Chunk.Fixed]
    when boundaries must also survive a pool-size change; [Auto]
    boundaries are pool-size-independent only above the 1024 cap). *)

type t

(** [create ~domains ()] — a pool of [domains] workers ([domains - 1]
    spawned domains plus the caller; values < 1 are clamped to 1)
    whose loops default to [chunk] (default {!Chunk.Auto}). *)
val create : ?chunk:Chunk.policy -> domains:int -> unit -> t

(** Number of workers (including the calling domain). *)
val size : t -> int

(** The policy loops use when not overridden per call. *)
val chunk_policy : t -> Chunk.policy

(** [scope ?chunk ~domains f] — [create], run [f pool], always
    [shutdown]. The only structured way to get a temporary pool. *)
val scope : ?chunk:Chunk.policy -> domains:int -> (t -> 'a) -> 'a

(** [run pool f] executes [f 0], ..., [f (size - 1)] concurrently, one
    call per worker, and returns when all have finished; exceptions
    raised by workers are re-raised here (first one wins). The raw
    fork-join primitive under the loops below — engines with bespoke
    work distribution (the explorer, Refine) use it directly. Nested
    [run] on the same pool is not allowed. The join establishes the
    happens-before edges that make worker writes (e.g. into disjoint
    array slots) visible to the caller. *)
val run : t -> (int -> unit) -> unit

(** [for_ ~pool ~lo ~hi f] runs [f i] for every [lo <= i < hi], each
    index exactly once, in parallel. Bodies must not touch shared
    mutable state except through disjoint slots or their own
    synchronization. [?chunk] overrides the pool's policy for this
    loop. *)
val for_ : ?chunk:Chunk.policy -> pool:t -> lo:int -> hi:int -> (int -> unit) -> unit

(** [chunks ~pool ~lo ~hi f] — chunk-grained variant: [f a b]
    processes the half-open range [[a, b)]. Use it when per-index
    closure calls would dominate. *)
val chunks :
  ?chunk:Chunk.policy -> pool:t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** [map_reduce ~pool ~lo ~hi ~map ~reduce ~init] computes
    [reduce (... (reduce init (fold of chunk 0)) ...) (fold of chunk
    k)], where the fold of a chunk is [reduce] applied left-to-right
    over [map i] in ascending index order, seeded with [init]. [init]
    must be a neutral element of [reduce] (it is folded in once per
    chunk). The result depends on the chunk boundaries but not on
    scheduling. *)
val map_reduce :
  ?chunk:Chunk.policy ->
  pool:t ->
  lo:int ->
  hi:int ->
  map:(int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  init:'a ->
  'a

(** The planned ranges a loop over [[lo, hi)] would use (ascending).
    Exposed for engines that key side tables off chunk ordinals. *)
val plan : ?chunk:Chunk.policy -> t -> lo:int -> hi:int -> (int * int) array

(** Park-and-join all spawned domains. The pool must not be used
    afterwards. Idempotent. *)
val shutdown : t -> unit

(** The runtime's recommended domain count for this machine (for
    [-j 0]-style auto selection). *)
val auto : unit -> int
