(** A fixed-size pool of worker domains.

    OCaml domains are heavyweight (each maps to an OS thread with its
    own minor heap), so the engines in this repository never spawn them
    per task: a pool is created once per command invocation ([mval -j
    N]) and every parallel region reuses its domains. A pool of size 1
    spawns no domains at all and runs jobs inline, which is how the
    default [-j 1] configuration keeps the sequential behaviour (and
    performance) of the pre-parallel code paths.

    Workers are parked on a condition variable between jobs. [run] is
    a synchronous fork-join: the calling domain participates as the
    last worker, so a pool of size [n] uses exactly [n] domains during
    a job. Exceptions raised by workers are re-raised in [run] (the
    first one wins). The mutex/condition handshake establishes the
    happens-before edges that make worker writes (e.g. into disjoint
    array slots) visible to the caller after [run] returns. *)

type t

(** [create ~domains] — a pool of [domains] workers ([domains - 1]
    spawned domains plus the caller). Values < 1 are clamped to 1. *)
val create : domains:int -> t

(** Number of workers (including the calling domain). *)
val size : t -> int

(** [run pool f] executes [f 0], ..., [f (size - 1)] concurrently, one
    call per worker, and returns when all have finished. Nested [run]
    on the same pool is not allowed. *)
val run : t -> (int -> unit) -> unit

(** Park-and-join all spawned domains. The pool must not be used
    afterwards. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~domains f] — [create], run [f pool], always
    [shutdown]. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** The runtime's recommended domain count for this machine (for
    [-j 0]-style auto selection). *)
val auto : unit -> int
