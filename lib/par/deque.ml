module type S = sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
  val length : 'a t -> int
end

(* Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005), on a
   circular growable buffer.

   [top] and [bottom] are monotonically advancing logical indices into
   an infinite array; the live window [top, bottom) is mapped onto a
   power-of-two buffer by masking. The owner works at [bottom] (push /
   pop, LIFO); thieves CAS [top] forward (steal, FIFO). Only [top] is
   ever CASed and it only ever grows, so there is no ABA problem.

   Memory-model notes (OCaml atomics are sequentially consistent):

   - [pop] writes [bottom] {e before} reading [top]; [steal] reads
     [top] {e before} reading [bottom]. Under SC this ordering is what
     prevents the classic lost/duplicated-element races: a thief that
     observes a stale large [bottom] necessarily observes a [top]
     young enough that its CAS fails if the owner already took the
     element.
   - The last remaining element is raced for explicitly: the owner
     CASes [top] exactly like a thief and loses gracefully.
   - Buffer slots are plain (non-atomic) [option] cells. A thief may
     read a slot concurrently with the owner overwriting it; whatever
     value it reads is discarded unless its CAS on [top] succeeds, and
     the CAS can only succeed while the slot still holds the value
     dealt to that logical index (slot writes happen-before the
     [bottom] store that publishes the index; slot clears happen only
     for indices the owner has already taken, i.e. after [top] moved
     past them or after [bottom] excluded them).
   - [grow] is owner-only: it copies the live window into a buffer of
     twice the size and publishes it with a single atomic store.
     Thieves holding the old buffer are safe — the old copy of the
     live window is never mutated, and their CAS still guards against
     taking an element twice.

   One deliberate leak-shaped trade-off: a {e stolen} slot cannot be
   cleared (neither by the thief, who may have lost a race it does not
   know about yet, nor by the owner, who never revisits indices below
   [top]), so up to [capacity] stolen elements stay reachable from the
   buffer until overwritten by later pushes or the deque is dropped.
   Pool runs deal short-lived [(lo, hi)] ranges, so this retention is
   harmless here; do not store large unique payloads in a long-lived
   deque. *)
module Make (A : Atomics.S) : S = struct
  type 'a buffer = { data : 'a option array; mask : int }

  type 'a t = {
    top : int A.t;
    bottom : int A.t;
    buf : 'a buffer A.t;
  }

  let buffer capacity = { data = Array.make capacity None; mask = capacity - 1 }

  let create () = { top = A.make 0; bottom = A.make 0; buf = A.make (buffer 8) }

  (* Owner-only. Copies the live window [t, b) and publishes. *)
  let grow d buf t b =
    let bigger = buffer (2 * Array.length buf.data) in
    for i = t to b - 1 do
      bigger.data.(i land bigger.mask) <- buf.data.(i land buf.mask)
    done;
    A.set d.buf bigger;
    bigger

  let push d x =
    let b = A.get d.bottom in
    let t = A.get d.top in
    let buf = A.get d.buf in
    let buf = if b - t >= Array.length buf.data then grow d buf t b else buf in
    buf.data.(b land buf.mask) <- Some x;
    A.set d.bottom (b + 1)

  let pop d =
    let b = A.get d.bottom - 1 in
    A.set d.bottom b;
    let t = A.get d.top in
    if b < t then begin
      (* empty; restore the canonical empty shape *)
      A.set d.bottom t;
      None
    end
    else begin
      let buf = A.get d.buf in
      let i = b land buf.mask in
      let x = buf.data.(i) in
      if b > t then begin
        (* more than one element: index [b] is unreachable by thieves
           (they need [top = b < bottom], but bottom is already b) *)
        buf.data.(i) <- None;
        x
      end
      else begin
        (* last element: race thieves for it *)
        let won = A.compare_and_set d.top t (t + 1) in
        A.set d.bottom (t + 1);
        if won then begin
          buf.data.(i) <- None;
          x
        end
        else None
      end
    end

  let rec steal d =
    let t = A.get d.top in
    let b = A.get d.bottom in
    if b <= t then None
    else begin
      let buf = A.get d.buf in
      let x = buf.data.(t land buf.mask) in
      if A.compare_and_set d.top t (t + 1) then x
      else
        (* lost to another thief or to the owner's last-element CAS;
           [top] moved, so the recursion makes progress *)
        steal d
    end

  let length d = max 0 (A.get d.bottom - A.get d.top)
end

include Make (Atomics.Real)
