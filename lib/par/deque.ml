type 'a t = {
  mutable buf : 'a option array;
  mutable top : int; (* index of the oldest item *)
  mutable size : int;
  lock : Mutex.t;
}

let create () = { buf = Array.make 8 None; top = 0; size = 0; lock = Mutex.create () }

let with_lock d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let grow d =
  let cap = Array.length d.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to d.size - 1 do
    buf.(i) <- d.buf.((d.top + i) mod cap)
  done;
  d.buf <- buf;
  d.top <- 0

let push d x =
  with_lock d (fun () ->
      if d.size = Array.length d.buf then grow d;
      d.buf.((d.top + d.size) mod Array.length d.buf) <- Some x;
      d.size <- d.size + 1)

let pop d =
  with_lock d (fun () ->
      if d.size = 0 then None
      else begin
        let i = (d.top + d.size - 1) mod Array.length d.buf in
        let x = d.buf.(i) in
        d.buf.(i) <- None;
        d.size <- d.size - 1;
        x
      end)

let steal d =
  with_lock d (fun () ->
      if d.size = 0 then None
      else begin
        let x = d.buf.(d.top) in
        d.buf.(d.top) <- None;
        d.top <- (d.top + 1) mod Array.length d.buf;
        d.size <- d.size - 1;
        x
      end)

let length d = with_lock d (fun () -> d.size)
