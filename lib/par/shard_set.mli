(** Sharded lock-free hash sets with dense-ish integer ids.

    The parallel state-space generator needs one operation under
    contention: atomically test-and-insert a state, learning its id
    and whether it was new. The set is split into [2^k] shards
    selected by the low hash bits; each shard is an array of
    CAS-guarded buckets holding immutable cons chains, plus an atomic
    slot counter and a chunked slot->element log. There are no locks
    anywhere: inserts race by CAS on a bucket head (losers re-scan and
    retry), slots come from [fetch_and_add], and the statistics reads
    ({!cardinal}, {!id_bound}) are plain atomic loads summed without
    synchronization — cheap enough for per-level telemetry on the
    exploration hot path, and exact whenever no [add] is racing.

    Ids encode the shard in the low bits ([slot * nb_shards + shard]);
    they are stable, unique, and bounded by {!id_bound}, which makes
    them usable as indices into caller-side side tables (grown between
    parallel phases). A slot allocated by the loser of an insert race
    is abandoned, so the slot space can have holes — ids stay
    "dense-ish", not dense. Ids are {e not} discovery-ordered — the
    exploration engine re-numbers states canonically in a sequential
    post-pass.

    Snapshot-iteration contract ({!Make.iter}): a bucket head is read
    once and its immutable chain walked, so iteration sees a per-bucket
    atomic snapshot. Every element whose [add] returned before [iter]
    started is visited exactly once; an element being inserted
    concurrently is visited once or not at all; no element is ever
    visited twice. There is no cross-bucket atomicity — two racing
    adds to different buckets may be seen in either combination. *)

module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : HASHED) : sig
  type t

  (** [create ()] — [shards] (default 64) and per-shard [buckets]
      (default 1024) are rounded up to powers of two. Bucket arrays
      are fixed-size; chains just grow past the sizing hint. *)
  val create : ?shards:int -> ?buckets:int -> unit -> t

  val nb_shards : t -> int

  (** [add t x] returns [(id, fresh)]: the id of [x] (newly assigned
      when [fresh]). Linearizable (the linearization point is the
      winning bucket CAS, or the read that found the element). For a
      given element, exactly one racing [add] reports [fresh = true].
      [get t id] is safe on any id obtained from an [add] that
      happens-before the read (e.g. across a {!Pool.run} join). *)
  val add : t -> H.t -> int * bool

  (** [find t x] — the id of [x] if present. Lock-free, never blocks
      an [add]. *)
  val find : t -> H.t -> int option

  val mem : t -> H.t -> bool

  (** [get t id] — the element with id [id]. Unsafe for ids never
      returned by [add]. *)
  val get : t -> int -> H.t

  (** Number of elements: a relaxed sum of per-shard counters, no
      synchronization taken. Exact when no [add] is racing; during a
      parallel phase it can lag inserts that are still between their
      slot allocation and their publishing CAS. *)
  val cardinal : t -> int

  (** Exclusive upper bound on every id returned so far: a relaxed
      maximum over per-shard slot counters (includes abandoned slots).
      At most [nb_shards] times the cardinal in the worst hash skew;
      within a few percent of it for well-hashed elements. *)
  val id_bound : t -> int

  (** [iter t f] calls [f id elem] under the snapshot-iteration
      contract described above. Iteration order is unspecified. *)
  val iter : t -> (int -> H.t -> unit) -> unit
end

(** The insert path of a single bucket, abstracted over its atomics so
    the interleaving suite can enumerate its schedules (see
    test/test_model.ml). {!Make} is built on
    [Bucket (Atomics.Real) (H)]. *)
module Bucket (A : Atomics.S) (H : HASHED) : sig
  type node =
    | Nil
    | Cons of { elem : H.t; slot : int; next : node }

  val find_node : node -> H.t -> int option
  val find : node A.t -> H.t -> int option

  (** [add bucket x ~alloc] — test-and-insert; [alloc] is called at
      most once, before the new node can be observed. Returns
      [(slot, fresh)]. *)
  val add : node A.t -> H.t -> alloc:(unit -> int) -> int * bool
end
