(** Sharded concurrent hash sets with dense-ish integer ids.

    The parallel state-space generator needs one operation under
    contention: atomically test-and-insert a state, learning its id
    and whether it was new. The set is split into [2^k] independently
    locked shards selected by the element hash, so concurrent inserts
    of distinct states almost never collide on a lock. Ids encode the
    shard in the low bits ([slot * nb_shards + shard]); they are
    stable, unique, and bounded by {!id_bound}, which makes them
    usable as indices into caller-side side tables (grown between
    parallel phases).

    Ids are {e not} discovery-ordered — the exploration engine
    re-numbers states canonically in a sequential post-pass. *)

module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : HASHED) : sig
  type t

  (** [create ()] — [shards] (default 64) is rounded up to a power of
      two. *)
  val create : ?shards:int -> unit -> t

  val nb_shards : t -> int

  (** [add t x] returns [(id, fresh)]: the id of [x] (newly assigned
      when [fresh]). Linearizable. *)
  val add : t -> H.t -> int * bool

  (** [find t x] — the id of [x] if present. *)
  val find : t -> H.t -> int option

  val mem : t -> H.t -> bool

  (** [get t id] — the element with id [id]. Unsafe for ids never
      returned by [add]. *)
  val get : t -> int -> H.t

  (** Number of elements. Exact when no [add] is racing. *)
  val cardinal : t -> int

  (** Exclusive upper bound on every id returned so far (when no [add]
      is racing). At most [nb_shards] times the cardinal in the worst
      hash skew; within a few percent of it for well-hashed elements. *)
  val id_bound : t -> int
end
