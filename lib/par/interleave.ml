type _ Effect.t += Step : (unit -> 'a) -> 'a Effect.t

module A : Atomics.S = struct
  type 'a t = 'a ref

  let make v = ref v
  let step f = Effect.perform (Step f)
  let get r = step (fun () -> !r)
  let set r v = step (fun () -> r := v)

  let compare_and_set r seen v =
    step (fun () -> if !r == seen then (r := v; true) else false)

  let fetch_and_add r n =
    step (fun () ->
        let v = !r in
        r := v + n;
        v)
end

type stats = { schedules : int; steps : int }

exception Violation of { schedule : int list; message : string }

type fiber =
  | Done
  | Ready of (unit -> fiber)

(* Runs [thunk] up to its first atomic access and suspends. Each
   subsequent [Ready] step performs exactly one suspended atomic
   action and runs the thread to its next one, so scheduler steps and
   atomic accesses coincide 1:1 (code between accesses is thread-local
   by the Atomics contract and needs no interleaving points). The
   continuation is one-shot — exploration re-runs the whole program
   for every schedule instead of cloning continuations. *)
let spawn (thunk : unit -> unit) : fiber =
  Effect.Deep.match_with
    (fun () ->
      thunk ();
      Done)
    ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Step action ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                Ready (fun () -> Effect.Deep.continue k (action ())))
          | _ -> None);
    }

let rec run_solo = function
  | Done -> ()
  | Ready k -> run_solo (k ())

let explore ?(max_schedules = 200_000) ~setup ~threads ~check () =
  let schedules = ref 0 in
  let steps = ref 0 in
  (* One deterministic execution: follow [prefix], then always pick
     the lowest-numbered runnable thread. Returns the decision trace:
     at each step, the (ascending) runnable set; the choice made was
     the prefix entry, or the head once past the prefix. *)
  let replay prefix =
    let state =
      let r = ref None in
      run_solo (spawn (fun () -> r := Some (setup ())));
      Option.get !r
    in
    let fibers =
      Array.of_list (List.map (fun thread -> spawn (fun () -> thread state)) threads)
    in
    let trace = ref [] in
    let taken = ref [] in
    let rec go prefix =
      let runnable =
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun i -> match fibers.(i) with Ready _ -> Some i | Done -> None)
                (Seq.init (Array.length fibers) Fun.id)))
      in
      match runnable with
      | [] ->
        assert (prefix = []);
        let ok =
          let r = ref false in
          run_solo (spawn (fun () -> r := check state));
          !r
        in
        if not ok then
          raise
            (Violation
               {
                 schedule = List.rev !taken;
                 message = "final-state check failed";
               })
      | first :: _ ->
        let choice, rest =
          match prefix with
          | c :: rest ->
            assert (List.mem c runnable);
            (c, rest)
          | [] -> (first, [])
        in
        trace := (choice, runnable) :: !trace;
        taken := choice :: !taken;
        incr steps;
        (match fibers.(choice) with
        | Ready k -> fibers.(choice) <- k ()
        | Done -> assert false);
        go rest
    in
    go prefix;
    List.rev !trace
  in
  (* DFS over untried alternatives. A prefix is pushed once, from the
     unique schedule that reaches its branch point with default
     (lowest-first) choices, so every schedule is explored exactly
     once. *)
  let stack = ref [ [] ] in
  let rec drain () =
    match !stack with
    | [] -> ()
    | prefix :: rest ->
      stack := rest;
      incr schedules;
      if !schedules > max_schedules then
        failwith
          (Printf.sprintf "Interleave.explore: more than %d schedules"
             max_schedules);
      let trace = replay prefix in
      let depth = List.length prefix in
      let rec branch i before = function
        | [] -> ()
        | (choice, runnable) :: tail ->
          if i >= depth then
            List.iter
              (fun alt ->
                if alt <> choice then
                  stack := List.rev_append before [ alt ] :: !stack)
              runnable;
          branch (i + 1) (choice :: before) tail
      in
      branch 0 [] trace;
      drain ()
  in
  drain ();
  { schedules = !schedules; steps = !steps }
