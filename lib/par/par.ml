let chunk_of = function
  | Some size -> Some (Chunk.Fixed size)
  | None -> None

let default_chunk_size pool ~lo ~hi =
  Chunk.auto_size ~workers:(Pool.size pool) ~lo ~hi

let parallel_for ?chunk_size pool ~lo ~hi f =
  Pool.for_ ?chunk:(chunk_of chunk_size) ~pool ~lo ~hi f

let parallel_chunks ?chunk_size pool ~lo ~hi f =
  Pool.chunks ?chunk:(chunk_of chunk_size) ~pool ~lo ~hi f

let map_reduce ?chunk_size pool ~lo ~hi ~map ~reduce ~init =
  Pool.map_reduce ?chunk:(chunk_of chunk_size) ~pool ~lo ~hi ~map ~reduce ~init
