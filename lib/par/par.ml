let default_chunk_size pool ~lo ~hi =
  min 1024 (max 1 ((hi - lo) / (8 * Pool.size pool)))

(* Ranges are dealt round-robin into per-worker deques before the
   workers start; each worker drains its own deque bottom-first, then
   sweeps the others stealing top-first. No work is created after the
   deal, so a full sweep that finds every deque empty is a sound
   termination condition (an item is always either done, running, or
   in some deque). *)
let parallel_chunks ?chunk_size pool ~lo ~hi f =
  if hi > lo then begin
    let chunk =
      match chunk_size with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Par.parallel_chunks: chunk_size"
      | None -> default_chunk_size pool ~lo ~hi
    in
    let workers = Pool.size pool in
    let nb_chunks = (hi - lo + chunk - 1) / chunk in
    if workers = 1 || nb_chunks <= 1 then
      (* same chunk boundaries as the parallel path, in ascending
         order, so callers keying work off range starts see the exact
         ranges they would see at any pool size *)
      let rec go a =
        if a < hi then begin
          f a (min hi (a + chunk));
          go (a + chunk)
        end
      in
      go lo
    else begin
      let module Obs = Mv_obs.Obs in
      if Obs.is_enabled () then begin
        Obs.add (Obs.counter "par.chunks") nb_chunks;
        let sizes = Obs.histogram "par.chunk_size" in
        for c = 0 to nb_chunks - 1 do
          let a = lo + (c * chunk) in
          Obs.observe sizes (float_of_int (min hi (a + chunk) - a))
        done
      end;
      let steals = Obs.counter "par.steals" in
      let deques = Array.init workers (fun _ -> Deque.create ()) in
      for c = nb_chunks - 1 downto 0 do
        (* reverse deal so [pop] serves ranges in ascending order *)
        let a = lo + (c * chunk) in
        Deque.push deques.(c mod workers) (a, min hi (a + chunk))
      done;
      Pool.run pool (fun w ->
          let rec next victim =
            if victim = workers then None
            else
              match Deque.steal deques.((w + victim) mod workers) with
              | Some _ as item ->
                Obs.incr steals;
                item
              | None -> next (victim + 1)
          in
          let rec drain () =
            match
              match Deque.pop deques.(w) with
              | Some _ as item -> item
              | None -> next 1
            with
            | Some (a, b) ->
              f a b;
              drain ()
            | None -> ()
          in
          drain ())
    end
  end

let parallel_for ?chunk_size pool ~lo ~hi f =
  parallel_chunks ?chunk_size pool ~lo ~hi (fun a b ->
      for i = a to b - 1 do
        f i
      done)

let map_reduce ?chunk_size pool ~lo ~hi ~map ~reduce ~init =
  if hi <= lo then init
  else begin
    let chunk =
      match chunk_size with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Par.map_reduce: chunk_size"
      | None -> default_chunk_size pool ~lo ~hi
    in
    let nb_chunks = (hi - lo + chunk - 1) / chunk in
    let partials = Array.make nb_chunks None in
    parallel_chunks ~chunk_size:chunk pool ~lo ~hi (fun a b ->
        let acc = ref init in
        for i = a to b - 1 do
          acc := reduce !acc (map i)
        done;
        partials.((a - lo) / chunk) <- Some !acc);
    Array.fold_left
      (fun acc partial -> reduce acc (Option.get partial))
      init partials
  end
