(** Parallel composition of explicit LTSs.

    [compose ~sync a b] builds the reachable product: transitions whose
    label gate belongs to [sync] must be matched by an identical label
    on the other side; all other transitions (tau included) interleave.
    The [exit] label is {e not} treated specially at this level — add
    ["exit"] to [sync] to make termination synchronous.

    [expect] pre-sizes the product's pair table (the compositional
    planner passes its interface-size estimate); it never affects the
    result. *)

val compose :
  ?expect:int -> sync:string list -> Mv_lts.Lts.t -> Mv_lts.Lts.t ->
  Mv_lts.Lts.t
