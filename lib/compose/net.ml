module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

type node =
  | Leaf of string * Lts.t
  | Par of string list * node * node
  | Hide of string list * node
  | Rename of (string * string) list * node

type strategy = [ `Monolithic | `Compositional ]
type plan = [ `Naive | `Greedy ]

type step = { description : string; states : int; transitions : int }

type report = {
  result : Lts.t;
  steps : step list;
  peak_states : int;
}

let rec describe = function
  | Leaf (name, _) -> name
  | Par (gates, a, b) ->
    Printf.sprintf "(%s |[%s]| %s)" (describe a) (String.concat "," gates)
      (describe b)
  | Hide (gates, n) ->
    Printf.sprintf "(hide %s in %s)" (String.concat "," gates) (describe n)
  | Rename (_, n) -> Printf.sprintf "(rename in %s)" (describe n)

(* ---- planner cost model ------------------------------------------ *)

(* The gates a component can still engage in: the gate parts of its
   label alphabet. *)
let alphabet lts =
  let labels = Lts.labels lts in
  let gates = Hashtbl.create 16 in
  for l = 1 to Label.count labels - 1 do
    Hashtbl.replace gates (Label.gate (Label.name labels l)) ()
  done;
  gates

(* Interface-size estimate of [a |[sync]| b]: the free product scaled
   down by how much of [sync] actually couples the two components.
   Every shared sync gate forces a rendezvous, cutting the reachable
   product roughly by the interleaving factor it removes; a pair that
   shares no sync gate interleaves freely and gets the full [sa * sb]
   — exactly the composition a planner should postpone. *)
let estimate ~sync a b =
  let ga = alphabet a and gb = alphabet b in
  let shared =
    List.fold_left
      (fun acc g ->
        if Hashtbl.mem ga g && Hashtbl.mem gb g then acc + 1 else acc)
      0
      (List.sort_uniq compare sync)
  in
  float_of_int (Lts.nb_states a)
  *. float_of_int (Lts.nb_states b)
  /. float_of_int (1 + shared)

let same_gates g g' = List.sort compare g = List.sort compare g'

(* maximal chain of Par nodes with one gate set — [|[G]|] is
   associative and commutative for a fixed G, so the chain's members
   can be composed in any order *)
let rec flatten gates node =
  match node with
  | Par (g, a, b) when same_gates g gates -> flatten gates a @ flatten gates b
  | n -> [ n ]

let evaluate ?(plan = `Naive) ~strategy node =
  let steps = ref [] in
  let record description lts =
    steps :=
      { description; states = Lts.nb_states lts;
        transitions = Lts.nb_transitions lts }
      :: !steps;
    lts
  in
  let reduce description lts =
    match strategy with
    | `Monolithic -> record description lts
    | `Compositional ->
      let lts = record description lts in
      record (description ^ " [min]") (Mv_bisim.Branching.minimize lts)
  in
  let rec eval node =
    match node with
    | Leaf (name, lts) -> reduce name lts
    | Par (gates, a, b) -> (
      match (plan, flatten gates node) with
      | `Greedy, (_ :: _ :: _ :: _ as parts) ->
        (* evaluate (and under `Compositional, minimize) every member
           first so the cost model sees reduced sizes, then repeatedly
           compose the cheapest-looking pair *)
        let items = ref (List.map (fun n -> (describe n, eval n)) parts) in
        let rec best_pair items =
          match items with
          | a :: rest ->
            List.fold_left
              (fun acc b ->
                let cost = estimate ~sync:gates (snd a) (snd b) in
                match acc with
                | Some (_, _, c) when c <= cost -> acc
                | _ -> Some (a, b, cost))
              (best_pair rest) rest
          | [] -> None
        in
        while List.length !items > 1 do
          match best_pair !items with
          | None -> assert false
          | Some (((da, la) as ia), ((db, lb) as ib), cost) ->
            let description =
              Printf.sprintf "(%s |[%s]| %s)" da (String.concat "," gates) db
            in
            let expect = int_of_float (Float.min cost 1e9) in
            let lts =
              reduce description (Parallel.compose ~expect ~sync:gates la lb)
            in
            items :=
              (description, lts)
              :: List.filter (fun i -> i != ia && i != ib) !items
        done;
        snd (List.hd !items)
      | _ ->
        let la = eval a and lb = eval b in
        let expect = int_of_float (Float.min (estimate ~sync:gates la lb) 1e9) in
        reduce (describe node) (Parallel.compose ~expect ~sync:gates la lb))
    | Hide (gates, n) ->
      let inner = eval n in
      reduce (describe node) (Lts.hide inner ~gates)
    | Rename (pairs, n) ->
      let inner = eval n in
      let renaming name =
        List.assoc_opt (Mv_lts.Label.gate name) pairs
        |> Option.map (fun g ->
            (* keep offers, replace the gate *)
            match String.index_opt name ' ' with
            | None -> g
            | Some i -> g ^ String.sub name i (String.length name - i))
      in
      reduce (describe node) (Lts.rename inner renaming)
  in
  let result = eval node in
  let steps = List.rev !steps in
  let peak_states =
    List.fold_left (fun acc s -> max acc s.states) 0 steps
  in
  { result; steps; peak_states }

let par_list gates = function
  | [] -> invalid_arg "Net.par_list: empty"
  | n :: rest -> List.fold_left (fun acc x -> Par (gates, acc, x)) n rest
