(** Composition networks: the compositional-verification engine.

    A network is an expression over LTS leaves; {!evaluate} computes
    its LTS under one of two strategies:

    - [`Monolithic] evaluates operators directly (the naive product);
    - [`Compositional] minimizes every intermediate result modulo
      branching bisimulation before it is used — the paper's
      "refined approach based on compositional verification" that
      alternates generation and minimization to avoid state-space
      explosion.

    Both strategies yield branching-equivalent results; the report
    records the intermediate sizes so the saving can be measured. *)

type node =
  | Leaf of string * Mv_lts.Lts.t (** named component *)
  | Par of string list * node * node (** synchronization gate set *)
  | Hide of string list * node
  | Rename of (string * string) list * node

type strategy = [ `Monolithic | `Compositional ]

(** Composition-order planning for chains of [Par] nodes sharing one
    gate set (where [|[G]|] is associative and commutative, so any
    order is semantically valid):

    - [`Naive] evaluates the expression exactly as written
      (left-to-right for {!par_list});
    - [`Greedy] evaluates every chain member first (minimized under
      [`Compositional]), then repeatedly composes the pair with the
      smallest interface-size estimate
      [|a| * |b| / (1 + shared sync gates)] — tightly-coupled pairs
      compose (and shrink) early, free-interleaving pairs are
      postponed, which keeps the largest intermediate product small.

    The estimate also pre-sizes the product's pair table. Chains of
    length 2 and mixed-gate expressions are unaffected. *)
type plan = [ `Naive | `Greedy ]

type step = {
  description : string;
  states : int;
  transitions : int;
}

type report = {
  result : Mv_lts.Lts.t;
  steps : step list; (** in evaluation order *)
  peak_states : int; (** largest intermediate state count *)
}

val evaluate : ?plan:plan -> strategy:strategy -> node -> report

(** Convenience: [par_list gates \[n1; ...\]] left-associates
    [Par gates]. *)
val par_list : string list -> node list -> node
