module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

module Pair_state = struct
  type t = int * int

  let equal = ( = )
  let hash = Hashtbl.hash
end

module Pair_table = Hashtbl.Make (Pair_state)

let out_list lts s = Lts.fold_out lts s (fun l d acc -> (l, d) :: acc) []

let compose ?(expect = 256) ~sync a b =
  let labels = Label.create () in
  let label_of_a =
    Array.init (Label.count (Lts.labels a)) (fun l ->
        Label.intern labels (Label.name (Lts.labels a) l))
  in
  let label_of_b =
    Array.init (Label.count (Lts.labels b)) (fun l ->
        Label.intern labels (Label.name (Lts.labels b) l))
  in
  let is_sync table =
    Array.init (Label.count table) (fun l ->
        l <> Label.tau && List.mem (Label.gate (Label.name table l)) sync)
  in
  let sync_a = is_sync (Lts.labels a) and sync_b = is_sync (Lts.labels b) in
  let ids = Pair_table.create (max 256 (min expect (1 lsl 22))) in
  let transitions = ref [] in
  let frontier = Queue.create () in
  let nb = ref 0 in
  let id_of pair =
    match Pair_table.find_opt ids pair with
    | Some id -> id
    | None ->
      let id = !nb in
      incr nb;
      Pair_table.add ids pair id;
      Queue.add (id, pair) frontier;
      id
  in
  let initial = id_of (Lts.initial a, Lts.initial b) in
  while not (Queue.is_empty frontier) do
    let src, (sa, sb) = Queue.pop frontier in
    let moves_a = out_list a sa and moves_b = out_list b sb in
    List.iter
      (fun (l, d) ->
         if not sync_a.(l) then
           transitions := (src, label_of_a.(l), id_of (d, sb)) :: !transitions)
      moves_a;
    List.iter
      (fun (l, d) ->
         if not sync_b.(l) then
           transitions := (src, label_of_b.(l), id_of (sa, d)) :: !transitions)
      moves_b;
    List.iter
      (fun (la, da) ->
         if sync_a.(la) then
           List.iter
             (fun (lb, db) ->
                if sync_b.(lb) && label_of_a.(la) = label_of_b.(lb) then
                  transitions :=
                    (src, label_of_a.(la), id_of (da, db)) :: !transitions)
             moves_b)
      moves_a
  done;
  Lts.make ~nb_states:!nb ~initial ~labels !transitions
