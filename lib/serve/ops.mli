(** Operation handlers shared by [mval] (local execution) and [mvald]
    (the daemon).

    Byte-identity between a local run and a [--remote] run is a hard
    requirement (asserted in CI), so the rendering of every flow
    command lives here exactly once: the local CLI calls the
    [*_texts] renderers directly, and the daemon reaches the same
    functions through {!dispatch} after decoding the request's JSON
    arguments. A renderer never prints — it returns a {!texts} record
    ({e stdout}, {e stderr}, exit code) that the CLI prints verbatim
    and the daemon ships inside the response.

    {!classify} is the single table mapping the flow's exceptions to
    protocol error kinds, human messages and exit codes; [mval]'s
    error handler and the daemon both use it, which is what makes an
    over-budget request come back as the same structured
    [budget_exceeded] error everywhere. *)

module Json = Mv_obs.Json

(** Rendered command output: what goes to stdout, to stderr, and the
    process exit code. *)
type texts = { out : string; err : string; code : int }

(** {1 Error classification} *)

(** Map a flow exception to (protocol error kind, message as the CLI
    prints it, exit code); [None] for unexpected exceptions. *)
val classify : exn -> (Proto.error_kind * string * int) option

(** The exit code [mval --remote] uses for a structured daemon error:
    the {!classify} codes for flow errors, [75] ([EX_TEMPFAIL]) for
    [Overloaded]/[Draining], [70] ([EX_SOFTWARE]) for [Internal]. *)
val exit_code_of_kind : Proto.error_kind -> int

(** {1 Shared renderers} *)

(** ["%d -> %d states\n"] — the [mval minimize] stderr note. *)
val minimize_note : before:int -> after:int -> string

(** [mval compare]: verdict line plus (for inequivalent traces) the
    counterexample; exit 0/1. *)
val compare_texts :
  Mv_core.Flow.Config.t ->
  Mv_core.Flow.equivalence ->
  Mv_lts.Lts.t ->
  Mv_lts.Lts.t ->
  texts

(** [mval check]: one verdict line per property (witness traces for
    violations); formulas are parsed here so a parse error raises the
    same exception locally and remotely. *)
val check_texts :
  engine:[ `Fixpoint | `Bes ] ->
  deadlock:bool ->
  formulas:string list ->
  Mv_lts.Lts.t ->
  texts

(** [mval solve]: the full performance-pipeline report. Raises
    [Mv_imc.To_ctmc.Nondeterministic] under [--scheduler fail]
    (classified to exit 4). *)
val solve_texts :
  Mv_core.Flow.Config.t -> first:string option -> Mv_calc.Ast.spec -> texts

(** [mval script]: run an SVL script (from [dir]) and render the step
    table or the [mv-svl-steps-v1] JSON; exit 0/1 on all-ok/failed. *)
val script_texts :
  ?cache:Mv_store.Cache.t -> ?dir:string -> json:bool -> string -> texts

(** Fold [-W] specs into a lint config; [Error] carries the CLI's
    "invalid -W argument" message (exit 2). *)
val lint_config_of_specs :
  max_phases:int -> string list -> (Mv_lint.Lint.config, string) result

(** [mval lint]: diagnostics (rendered against [file], the
    client-side path) or JSON; exit via [Lint.exit_code]. *)
val lint_texts :
  config:Mv_lint.Lint.config -> json:bool -> file:string -> string -> texts

(** [mval cache stats]: the human table or [mv-store-stats-v1]
    JSON. *)
val cache_stats_texts : json:bool -> Mv_store.Cache.t -> texts

(** [mval version]: the binary version and every protocol/on-disk
    schema version ({!Proto.versions_json}), as aligned text or
    JSON. *)
val version_texts : json:bool -> texts

(** Render a (possibly remote) {!Proto.versions_json} document the way
    [mval version] prints its own. *)
val version_texts_of_json : json:bool -> Json.t -> texts

(** {1 Request dispatch (the daemon side)} *)

(** JSON encodings of {!texts} for responses: [{"stdout", "stderr",
    "exit"}] (plus extra fields merged in). *)
val texts_json : ?extra:(string * Json.t) list -> texts -> Json.t

val texts_of_json : Json.t -> texts

(** [dispatch ?cache ?server request] executes one [mv-serve-v1]
    request and returns its result document or a structured error —
    never raises. [cache] is the daemon's shared artifact cache
    (consulted and filled exactly as a local [--cache] run would);
    [server] supplies the live server gauges embedded in a [metrics]
    response. The request's budget is enforced via
    {!Mv_core.Budget} inside the flow steps.

    Supported ops: [generate], [minimize], [equivalent], [check],
    [solve], [script], [lint], [cache-stats], [metrics],
    [metrics-text] (OpenMetrics exposition as a {!texts} document),
    [logs] (the {!Mv_obs.Log} flight-recorder dump, newest
    [args.limit] events), [version], [ping] and [sleep] (a
    test/load-bench aid that holds a worker for [args.s] seconds,
    honouring wall budgets). *)
val dispatch :
  ?cache:Mv_store.Cache.t ->
  ?server:(unit -> Json.t) ->
  Proto.request ->
  (Json.t, Proto.error) result

(** The OpenMetrics text exposition of the whole registry, with per-op
    serve histograms split into labelled families — what
    [metrics-text] and the daemon's [GET /metrics] answer serve. *)
val openmetrics_text : unit -> string
