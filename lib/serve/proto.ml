module Json = Mv_obs.Json

let schema = "mv-serve-v1"
let binary_version = "1.0.0"
let default_max_frame = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)

type addr = Unix_path of string | Tcp of string * int

let addr_of_string text =
  let tcp_of host port_text =
    match int_of_string_opt port_text with
    | Some port when port >= 0 && port < 65536 -> Ok (Tcp (host, port))
    | Some _ | None -> Error (Printf.sprintf "invalid port %S" port_text)
  in
  let split_host_port s =
    match String.rindex_opt s ':' with
    | Some i when i > 0 && i < String.length s - 1 ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | Some _ | None -> None
  in
  if String.length text = 0 then Error "empty address"
  else if String.length text > 5 && String.sub text 0 5 = "unix:" then
    Ok (Unix_path (String.sub text 5 (String.length text - 5)))
  else if String.length text > 4 && String.sub text 0 4 = "tcp:" then
    match split_host_port (String.sub text 4 (String.length text - 4)) with
    | Some (host, port) -> tcp_of host port
    | None -> Error (Printf.sprintf "expected tcp:HOST:PORT in %S" text)
  else if String.contains text '/' then Ok (Unix_path text)
  else
    match split_host_port text with
    | Some (host, port) -> tcp_of host port
    | None ->
      Error
        (Printf.sprintf
           "cannot parse address %S (expected unix:PATH, tcp:HOST:PORT or a \
            socket path)"
           text)

let addr_to_string = function
  | Unix_path path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

(* A socket write racing a peer close must surface as an [EPIPE]
   exception — which every writer in this library handles — not as a
   process-killing SIGPIPE. Forced by [Server.create] and
   [Client.connect], so in-process embedders (the test suite, [mval
   --remote]) get the same protection as [mvald]. *)
let sigpipe_ignored =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let ensure_sigpipe_ignored () = Lazy.force sigpipe_ignored

exception Frame_error of string

let rec restart_read fd buf ofs len =
  match Unix.read fd buf ofs len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> restart_read fd buf ofs len

let really_read fd buf ofs len =
  let got = ref 0 in
  while !got < len do
    let n = restart_read fd buf (ofs + !got) (len - !got) in
    if n = 0 then raise (Frame_error "connection closed mid-frame");
    got := !got + n
  done

let really_write fd buf ofs len =
  let sent = ref 0 in
  while !sent < len do
    let n =
      match Unix.write fd buf (ofs + !sent) (len - !sent) with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    sent := !sent + n
  done

let write_frame fd body =
  let n = String.length body in
  let buf = Bytes.create (4 + n) in
  Bytes.set buf 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (n land 0xff));
  Bytes.blit_string body 0 buf 4 n;
  really_write fd buf 0 (4 + n)

let write_string fd s = really_write fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* The framing is split so the server's reader can sniff the first 4
   bytes: a length prefix for an mv-serve-v1 frame, or the ASCII
   preamble of an HTTP GET (the /metrics scrape path). A 4-byte length
   can never collide with "GET " — that prefix would be a 1.2 GiB
   frame, far beyond any sane [max_frame]. *)
let http_get_preamble = "GET "

let read_header fd =
  let header = Bytes.create 4 in
  let first = restart_read fd header 0 4 in
  if first = 0 then None
  else begin
    if first < 4 then really_read fd header first (4 - first);
    Some (Bytes.to_string header)
  end

let decode_frame_len ?(max_frame = default_max_frame) header =
  let len =
    (Char.code header.[0] lsl 24)
    lor (Char.code header.[1] lsl 16)
    lor (Char.code header.[2] lsl 8)
    lor Char.code header.[3]
  in
  if len > max_frame then
    raise
      (Frame_error
         (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len
            max_frame));
  len

let read_body fd len =
  let body = Bytes.create len in
  really_read fd body 0 len;
  Bytes.unsafe_to_string body

let read_frame ?max_frame fd =
  match read_header fd with
  | None -> None
  | Some header -> Some (read_body fd (decode_frame_len ?max_frame header))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type budget_spec = { max_states : int option; wall_s : float option }

let no_budget = { max_states = None; wall_s = None }

(* Trace context carried by a request: the client-chosen request id
   every server-side span, metric and log event of this request is
   tagged with, and whether the server should ship the request's spans
   back in the response (mv-trace-spans-v1). Optional and ignored by
   old peers. *)
type trace_spec = { request_id : string; collect_spans : bool }

type request = {
  id : int;
  op : string;
  args : Json.t;
  budget : budget_spec option;
  trace : trace_spec option;
}

let request_counter = Atomic.make 0

(* unique across processes and within one: wall microseconds + pid +
   per-process counter *)
let fresh_request_id () =
  Printf.sprintf "%012x-%04x-%x"
    (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffffffffff)
    (Unix.getpid () land 0xffff)
    (Atomic.fetch_and_add request_counter 1)

let budget_json b =
  Json.Obj
    [
      ( "max_states",
        match b.max_states with Some n -> Json.Int n | None -> Json.Null );
      ("wall_s", match b.wall_s with Some s -> Json.Float s | None -> Json.Null);
    ]

let trace_spec_json t =
  Json.Obj
    [
      ("request_id", Json.String t.request_id);
      ("collect_spans", Json.Bool t.collect_spans);
    ]

let encode_request r =
  Json.to_string ~compact:true
    (Json.Obj
       (("schema", Json.String schema)
        :: ("id", Json.Int r.id)
        :: ("op", Json.String r.op)
        :: ("args", r.args)
        :: ((match r.budget with
             | Some b -> [ ("budget", budget_json b) ]
             | None -> [])
            @
            match r.trace with
            | Some t -> [ ("trace", trace_spec_json t) ]
            | None -> [])))

(* Protocol documents stay shallow; a depth cap of 32 rejects nesting
   bombs long before the JSON parser's own default. *)
let parse_json ?(max_frame = default_max_frame) body =
  Json.of_string ~max_depth:32 ~max_bytes:max_frame body

let int_member name json =
  match Json.member name json with Some (Json.Int n) -> Some n | _ -> None

let string_member name json =
  match Json.member name json with
  | Some (Json.String s) -> Some s
  | _ -> None

let budget_of_json json =
  {
    max_states = int_member "max_states" json;
    wall_s =
      (match Json.member "wall_s" json with
       | Some (Json.Float f) -> Some f
       | Some (Json.Int n) -> Some (float_of_int n)
       | _ -> None);
  }

let trace_spec_of_json json =
  match string_member "request_id" json with
  | Some request_id ->
    Some
      {
        request_id;
        collect_spans =
          (match Json.member "collect_spans" json with
           | Some (Json.Bool b) -> b
           | _ -> false);
      }
  | None -> None

let parse_request ?max_frame body =
  match parse_json ?max_frame body with
  | exception Json.Parse_error msg -> Error ("bad JSON: " ^ msg)
  | json -> (
    match string_member "schema" json with
    | Some s when s = schema -> (
      match (int_member "id" json, string_member "op" json) with
      | Some id, Some op ->
        Ok
          {
            id;
            op;
            args =
              (match Json.member "args" json with
               | Some (Json.Obj _ as args) -> args
               | _ -> Json.Obj []);
            budget = Option.map budget_of_json (Json.member "budget" json);
            trace =
              (match Json.member "trace" json with
               | Some (Json.Obj _ as t) -> trace_spec_of_json t
               | _ -> None);
          }
      | None, _ -> Error "missing integer field \"id\""
      | _, None -> Error "missing string field \"op\"")
    | Some s -> Error (Printf.sprintf "unknown schema %S (expected %S)" s schema)
    | None -> Error "missing field \"schema\"")

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

type error_kind =
  | Bad_request
  | Unsupported_op
  | Overloaded
  | Draining
  | Budget_exceeded
  | Too_many_states
  | Model_error
  | Nondeterministic
  | No_cache
  | Internal

let kinds =
  [
    (Bad_request, "bad_request");
    (Unsupported_op, "unsupported_op");
    (Overloaded, "overloaded");
    (Draining, "draining");
    (Budget_exceeded, "budget_exceeded");
    (Too_many_states, "too_many_states");
    (Model_error, "model_error");
    (Nondeterministic, "nondeterministic");
    (No_cache, "no_cache");
    (Internal, "internal");
  ]

let kind_name kind = List.assoc kind kinds

let kind_of_name name =
  List.find_map (fun (k, n) -> if n = name then Some k else None) kinds

type error = { kind : error_kind; message : string }

type response = {
  rsp_id : int;
  outcome : (Json.t, error) result;
  cache : (int * int) option;
  elapsed_s : float;
  trace : Json.t option;
      (** mv-trace-spans-v1 document when the request asked for
          [collect_spans]; old peers ignore the extra field *)
}

let encode_response r =
  let fields =
    match r.outcome with
    | Ok result ->
      [
        ("ok", Json.Bool true);
        ("result", result);
        ( "cache",
          match r.cache with
          | Some (hits, misses) ->
            Json.Obj [ ("hits", Json.Int hits); ("misses", Json.Int misses) ]
          | None -> Json.Null );
        ("elapsed_s", Json.Float r.elapsed_s);
      ]
      @ (match r.trace with Some t -> [ ("trace", t) ] | None -> [])
    | Error { kind; message } ->
      [
        ("ok", Json.Bool false);
        ( "error",
          Json.Obj
            [
              ("kind", Json.String (kind_name kind));
              ("message", Json.String message);
            ] );
      ]
  in
  Json.to_string ~compact:true
    (Json.Obj
       (("schema", Json.String schema) :: ("id", Json.Int r.rsp_id) :: fields))

let parse_response ?max_frame body =
  match parse_json ?max_frame body with
  | exception Json.Parse_error msg -> Error ("bad JSON: " ^ msg)
  | json -> (
    match (string_member "schema" json, int_member "id" json) with
    | Some s, _ when s <> schema ->
      Error (Printf.sprintf "unknown schema %S (expected %S)" s schema)
    | None, _ -> Error "missing field \"schema\""
    | Some _, None -> Error "missing integer field \"id\""
    | Some _, Some rsp_id -> (
      match Json.member "ok" json with
      | Some (Json.Bool true) -> (
        match Json.member "result" json with
        | Some result ->
          Ok
            {
              rsp_id;
              outcome = Ok result;
              cache =
                (match Json.member "cache" json with
                 | Some (Json.Obj _ as c) -> (
                   match (int_member "hits" c, int_member "misses" c) with
                   | Some h, Some m -> Some (h, m)
                   | _ -> None)
                 | _ -> None);
              elapsed_s =
                (match Json.member "elapsed_s" json with
                 | Some (Json.Float f) -> f
                 | Some (Json.Int n) -> float_of_int n
                 | _ -> 0.0);
              trace =
                (match Json.member "trace" json with
                 | Some (Json.Obj _ as t) -> Some t
                 | _ -> None);
            }
        | None -> Error "ok response without \"result\"")
      | Some (Json.Bool false) -> (
        match Json.member "error" json with
        | Some err -> (
          match (string_member "kind" err, string_member "message" err) with
          | Some kind_text, Some message ->
            let kind =
              match kind_of_name kind_text with
              | Some kind -> kind
              | None -> Internal
            in
            Ok
              {
                rsp_id;
                outcome = Error { kind; message };
                cache = None;
                elapsed_s = 0.0;
                trace = None;
              }
          | _ -> Error "error response without kind/message")
        | None -> Error "error response without \"error\"")
      | _ -> Error "missing boolean field \"ok\""))

(* ------------------------------------------------------------------ *)
(* Version report                                                      *)

let versions_json () =
  Json.Obj
    [
      ("binary", Json.String binary_version);
      ("protocol", Json.String schema);
      ("mvb_format", Json.Int Mv_store.Mvb.format_version);
      ( "schemas",
        Json.List
          (List.map
             (fun s -> Json.String s)
             [
               schema;
               Mv_store.Cache.index_schema_name;
               Mv_store.Cache.stats_schema_name;
               Mv_obs.Obs.metrics_schema;
               Mv_core.Svl.steps_schema;
             ]) );
    ]
