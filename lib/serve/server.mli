(** The [mvald] server core: socket accept loop, admission control and
    request execution on an {!Mv_par.Pool}.

    Concurrency model:

    - the thread calling {!run} owns the accept loop (a [select] over
      the listening socket and a self-pipe used to request drain);
    - each accepted connection gets a reader {e systhread} that decodes
      frames, runs admission, and answers fast rejects
      ([overloaded] / [draining] / parse errors) inline;
    - admitted requests are queued per client and executed by the
      worker {e domains} of the shared {!Mv_par.Pool} — a dedicated
      thread calls [Pool.run pool worker_loop] once, so the serving
      period is one long fork-join job multiplexing every request onto
      the pool.

    Fairness is FIFO per client with round-robin across clients: each
    connection has its own FIFO of pending requests and at most one
    request dispatched at a time, and workers pick the next client from
    a round-robin ready queue. A single connection streaming requests
    therefore cannot starve the others, yet its own requests never
    reorder. Admission is bounded: when the total backlog reaches
    [queue_capacity], new requests are rejected immediately with
    [overloaded] (never queued, never blocked), which keeps tail
    latency bounded under abuse.

    Draining ({!initiate_drain}, safe to call from a signal handler):
    stop accepting connections, answer new requests with [draining],
    finish everything queued and in flight, then close connections and
    return from {!run}.

    Telemetry: every request executes under an
    {!Mv_obs.Obs.with_request} context (the client's request id when
    the frame carried a trace spec, a fresh one otherwise), so all
    spans, metrics and {!Mv_obs.Log} events it produces are tagged.
    The server records [serve.queue_wait_s], per-op [serve.exec_s.*]
    and [serve.request_latency_s.*] histograms, a
    [serve.client_backlog] histogram, [serve.requests] /
    [serve.requests_rejected] (plus per-reason [serve.rejected.*])
    counters, and live [serve.queue_depth] / [serve.in_flight] /
    [serve.connections] gauges. A connection whose first four bytes
    are ["GET "] is treated as a one-shot HTTP client: [GET /metrics]
    is answered with the OpenMetrics exposition of the registry
    (anything else, 404). *)

type config = {
  addr : Proto.addr;  (** listen address; TCP port 0 picks one *)
  workers : int;  (** pool size (domains), clamped to >= 1 *)
  queue_capacity : int;  (** max queued (not yet executing) requests *)
  max_frame : int;  (** per-frame byte cap for untrusted input *)
  cache : Mv_store.Cache.t option;  (** shared artifact cache *)
  slow_s : float;
      (** execution time beyond which a request is logged as slow *)
}

val default_queue_capacity : int
val default_slow_s : float

type t

(** Bind and listen (does not accept yet). For a Unix-domain address a
    stale socket file left by a dead daemon is detected (connect
    refused) and replaced; for TCP, the address is reusable
    ([SO_REUSEADDR]). Raises [Unix.Unix_error] on bind failure. *)
val create : config -> t

(** The bound address — for TCP with port 0, the actual port. *)
val addr : t -> Proto.addr

(** Serve until drained. Blocks the calling thread; returns only after
    a {!initiate_drain} has been fully honoured (all admitted requests
    answered, connections closed, pool workers parked). The pool itself
    is shut down by the caller. *)
val run : t -> unit

(** Request graceful drain. Idempotent, callable from a signal
    handler. *)
val initiate_drain : t -> unit

(** Live server gauges, embedded in [metrics] responses:
    [{"queue_depth", "in_flight", "connections", "accepted",
    "requests", "rejected_overloaded", "rejected_draining", "workers",
    "queue_capacity", "draining"}]. *)
val stats_json : t -> Mv_obs.Json.t
