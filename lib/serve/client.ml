module Json = Mv_obs.Json

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable next_id : int;
  mutable closed : bool;
}

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let connect ?(max_frame = Proto.default_max_frame) addr =
  Proto.ensure_sigpipe_ignored ();
  let domain, sockaddr =
    match addr with
    | Proto.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Proto.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
            addrs.(0)
          | _ | (exception Not_found) -> fail "cannot resolve host %S" host)
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd sockaddr with
   | () -> ()
   | exception Unix.Unix_error (code, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot connect to %s: %s" (Proto.addr_to_string addr)
       (Unix.error_message code));
  { fd; max_frame; next_id = 1; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connection ?max_frame addr f =
  let t = connect ?max_frame addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let call t ~op ?budget ?trace args =
  if t.closed then fail "connection is closed";
  let id = t.next_id in
  t.next_id <- id + 1;
  let body = Proto.encode_request { Proto.id; op; args; budget; trace } in
  (try Proto.write_frame t.fd body
   with Unix.Unix_error (code, _, _) ->
     fail "write failed: %s" (Unix.error_message code));
  match Proto.read_frame ~max_frame:t.max_frame t.fd with
  | None -> fail "server closed the connection before responding"
  | exception Proto.Frame_error msg -> fail "bad response frame: %s" msg
  | exception Unix.Unix_error (code, _, _) ->
    fail "read failed: %s" (Unix.error_message code)
  | Some reply -> (
    match Proto.parse_response ~max_frame:t.max_frame reply with
    | Error msg -> fail "bad response: %s" msg
    | Ok response ->
      if response.Proto.rsp_id <> id && response.Proto.rsp_id <> 0 then
        fail "response id %d does not match request id %d"
          response.Proto.rsp_id id;
      response)
