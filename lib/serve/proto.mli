(** The [mv-serve-v1] wire protocol.

    A connection carries a sequence of {e frames}, each a 4-byte
    big-endian length prefix followed by that many bytes of compact
    JSON (the tree of {!Mv_obs.Json}). Client frames are requests,
    server frames are responses, matched by [id]; a client may
    pipeline several requests on one connection, and the server
    answers them in order.

    Request object:
    {v
    {"schema": "mv-serve-v1", "id": 1, "op": "generate",
     "args": {...},
     "budget": {"max_states": 10000, "wall_s": 2.5}}   (optional)
    v}

    Response object (one of):
    {v
    {"schema": "mv-serve-v1", "id": 1, "ok": true, "result": {...},
     "cache": {"hits": 1, "misses": 0} | null, "elapsed_s": 0.012}
    {"schema": "mv-serve-v1", "id": 1, "ok": false,
     "error": {"kind": "budget_exceeded", "message": "..."}}
    v}

    Parsing is defensive ({!Mv_obs.Json.of_string} depth limit, frame
    size cap, trailing-garbage rejection): this is the untrusted
    boundary of the daemon. *)

module Json = Mv_obs.Json

(** Protocol schema tag: ["mv-serve-v1"]. *)
val schema : string

(** The version of the [mval]/[mvald] binaries (also what
    [mval version] prints first). *)
val binary_version : string

(** Default cap on a frame body (64 MiB). *)
val default_max_frame : int

(** {1 Addresses} *)

type addr =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

(** Accepted spellings: ["unix:PATH"], ["tcp:HOST:PORT"],
    ["HOST:PORT"], and anything containing a ['/'] (a Unix path). *)
val addr_of_string : string -> (addr, string) result

val addr_to_string : addr -> string

(** {1 Framing} *)

(** Ignore SIGPIPE process-wide (idempotent), so a socket write racing
    a peer close raises [EPIPE] — handled by every writer here —
    instead of killing the process. {!Server.create} and
    {!Client.connect} call this, covering in-process embedders exactly
    like [mvald]'s own handler setup. *)
val ensure_sigpipe_ignored : unit -> unit

exception Frame_error of string

(** [write_frame fd body] writes the length prefix and [body].
    Restarts on [EINTR]. *)
val write_frame : Unix.file_descr -> string -> unit

(** [read_frame ?max_frame fd] reads one frame body. [None] on a clean
    end of stream (EOF at a frame boundary); {!Frame_error} on a
    truncated frame or one longer than [max_frame]. *)
val read_frame : ?max_frame:int -> Unix.file_descr -> string option

(** Split framing, for readers that sniff the stream: [read_header]
    returns the first 4 bytes ([None] on clean EOF). If they equal
    {!http_get_preamble} the peer is a plain HTTP client (the
    [/metrics] scrape path); otherwise [decode_frame_len] interprets
    them as the length prefix (raising {!Frame_error} past
    [max_frame]) and [read_body] completes the frame. *)
val read_header : Unix.file_descr -> string option

val http_get_preamble : string
val decode_frame_len : ?max_frame:int -> string -> int
val read_body : Unix.file_descr -> int -> string

(** Write a raw string (no length prefix) — the HTTP answer path. *)
val write_string : Unix.file_descr -> string -> unit

(** {1 Requests} *)

type budget_spec = { max_states : int option; wall_s : float option }

val no_budget : budget_spec

(** Trace context carried by a request (optional; ignored by old
    peers): the request id the server tags every span, metric and log
    event of this request with, and whether to ship the request's
    spans back in the response (as an [mv-trace-spans-v1] document
    under the response's [trace] field). *)
type trace_spec = { request_id : string; collect_spans : bool }

type request = {
  id : int;
  op : string;
  args : Json.t;  (** an [Obj]; [Obj []] when absent *)
  budget : budget_spec option;
  trace : trace_spec option;
}

(** A process-unique request id (wall microseconds + pid + counter). *)
val fresh_request_id : unit -> string

val encode_request : request -> string

(** Parse and validate a request frame body. [Error] carries a
    human-readable reason (bad JSON, wrong schema, missing fields,
    over-deep nesting). *)
val parse_request : ?max_frame:int -> string -> (request, string) result

(** {1 Responses} *)

type error_kind =
  | Bad_request  (** malformed frame, JSON or arguments *)
  | Unsupported_op
  | Overloaded  (** admission fast-reject: queue full *)
  | Draining  (** server is shutting down *)
  | Budget_exceeded
  | Too_many_states
  | Model_error  (** parse/type/lint errors in the payload model *)
  | Nondeterministic  (** [mval solve --scheduler fail] rejection *)
  | No_cache  (** cache-stats on a daemon with no cache *)
  | Internal

val kind_name : error_kind -> string
val kind_of_name : string -> error_kind option

type error = { kind : error_kind; message : string }

type response = {
  rsp_id : int;
  outcome : (Json.t, error) result;
  cache : (int * int) option;  (** request's (hits, misses), when known *)
  elapsed_s : float;
  trace : Json.t option;
      (** [mv-trace-spans-v1] spans of this request, present on [ok]
          responses when the request asked for [collect_spans] *)
}

val encode_response : response -> string
val parse_response : ?max_frame:int -> string -> (response, string) result

(** {1 Version report}

    All protocol/on-disk schema versions spoken by this build, for
    [mval version] and the [version] op:
    [{"binary", "protocol", "mvb_format", "schemas": [...]}]. *)
val versions_json : unit -> Json.t
