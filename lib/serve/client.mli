(** Blocking [mv-serve-v1] client — what [mval --remote] speaks.

    One connection carries a sequence of synchronous calls: {!call}
    writes a request frame and blocks for its response (the server
    preserves per-connection FIFO order, so responses cannot
    interleave). For concurrent load, open several connections — the
    load bench and the smoke tests do exactly that from separate
    threads, one connection each. *)

type t

exception Error of string
(** Transport-level failure: connect refused, connection closed
    mid-call, protocol violation (bad schema, mismatched response
    id). Structured daemon errors are NOT this — they come back inside
    the {!Proto.response}. *)

(** Connect (Unix-domain or TCP). [max_frame] bounds response frames
    (default {!Proto.default_max_frame}). *)
val connect : ?max_frame:int -> Proto.addr -> t

(** [call t ~op ?budget ?trace args] — send one request, wait for its
    response. [trace] attaches a {!Proto.trace_spec} (request id +
    span collection) for request-centric telemetry. Raises {!Error} on
    transport failure only. *)
val call :
  t ->
  op:string ->
  ?budget:Proto.budget_spec ->
  ?trace:Proto.trace_spec ->
  Mv_obs.Json.t ->
  Proto.response

val close : t -> unit

(** Connect, run, always close. *)
val with_connection : ?max_frame:int -> Proto.addr -> (t -> 'a) -> 'a
