module Json = Mv_obs.Json
module Obs = Mv_obs.Obs
module Flow = Mv_core.Flow
module Budget = Mv_core.Budget
module Svl = Mv_core.Svl
module Cache = Mv_store.Cache
module Lts = Mv_lts.Lts
module Aut = Mv_lts.Aut
module Lint = Mv_lint.Lint
module Diagnostic = Mv_lint.Diagnostic

type texts = { out : string; err : string; code : int }

let ok_out out = { out; err = ""; code = 0 }

(* ------------------------------------------------------------------ *)
(* Error classification                                                *)

let classify = function
  | Mv_calc.Parser.Parse_error msg | Mv_mcl.Parser.Parse_error msg ->
    Some (Proto.Model_error, "parse error: " ^ msg, 2)
  | Mv_calc.Typecheck.Type_error msg ->
    Some (Proto.Model_error, "type error: " ^ msg, 2)
  | Aut.Parse_error msg ->
    Some (Proto.Model_error, "aut parse error: " ^ msg, 2)
  | Mv_store.Mvb.Corrupt msg ->
    Some (Proto.Model_error, "mvb corrupt: " ^ msg, 2)
  | Svl.Parse_error msg ->
    Some (Proto.Model_error, "script parse error: " ^ msg, 2)
  | Mv_lts.Explore.Too_many_states n ->
    Some
      ( Proto.Too_many_states,
        Printf.sprintf "state space exceeds %d states (raise --max-states)" n,
        3 )
  | Mv_imc.To_ctmc.Nondeterministic state ->
    Some
      ( Proto.Nondeterministic,
        Printf.sprintf
          "rejected: nondeterministic vanishing state %d (rerun with \
           --scheduler uniform)"
          state,
        4 )
  | Budget.Exceeded { Budget.resource; message } ->
    Some
      ( Proto.Budget_exceeded,
        Printf.sprintf "budget exceeded (%s): %s" resource message,
        5 )
  | Sys_error msg -> Some (Proto.Model_error, msg, 2)
  | _ -> None

let exit_code_of_kind = function
  | Proto.Bad_request | Proto.Unsupported_op | Proto.Model_error
  | Proto.No_cache ->
    2
  | Proto.Too_many_states -> 3
  | Proto.Nondeterministic -> 4
  | Proto.Budget_exceeded -> 5
  | Proto.Overloaded | Proto.Draining -> 75
  | Proto.Internal -> 70

(* ------------------------------------------------------------------ *)
(* Renderers (the single copy of every command's output format)        *)

let minimize_note ~before ~after =
  Printf.sprintf "%d -> %d states\n" before after

let compare_texts config equivalence la lb =
  let buffer = Buffer.create 64 in
  let equal = Flow.Run.equivalent config equivalence la lb in
  Buffer.add_string buffer (if equal then "equivalent\n" else "NOT equivalent\n");
  if (not equal) && equivalence = Flow.Traces then begin
    match Mv_bisim.Traces.counterexample la lb with
    | Some trace ->
      Buffer.add_string buffer
        (Printf.sprintf "first model performs: %s\n" (String.concat "; " trace))
    | None -> (
      match Mv_bisim.Traces.counterexample lb la with
      | Some trace ->
        Buffer.add_string buffer
          (Printf.sprintf "second model performs: %s\n"
             (String.concat "; " trace))
      | None -> ())
  end;
  { out = Buffer.contents buffer; err = ""; code = (if equal then 0 else 1) }

let check_texts ~engine ~deadlock ~formulas lts =
  let checks =
    (if deadlock then
       [ ("deadlock freedom", Mv_mcl.Formula.Macro.deadlock_free) ]
     else [])
    @ List.map (fun f -> (f, Mv_mcl.Parser.formula_of_string f)) formulas
  in
  if checks = [] then
    { out = "";
      err = "nothing to check (use --formula or --deadlock)\n";
      code = 2 }
  else begin
    let evaluate =
      match engine with
      | `Fixpoint -> Mv_mcl.Eval.holds
      | `Bes -> Mv_mcl.Bes.holds
    in
    let buffer = Buffer.create 256 in
    let failures = ref 0 in
    List.iter
      (fun (name, formula) ->
         let holds = evaluate lts formula in
         if not holds then begin
           incr failures;
           (* pick the most informative witness available: the
              shortest deadlock trace for the deadlock check, else a
              shortest path into the violating region (useful for
              invariants; path formulas often violate at the initial
              state itself, where no trace helps) *)
           let witness =
             if name = "deadlock freedom" then
               Mv_lts.Trace.shortest_to_deadlock lts
             else
               match
                 Mv_lts.Trace.shortest_to_violation lts
                   ~sat:(Mv_mcl.Eval.sat lts formula)
               with
               | Some t when t.Mv_lts.Trace.labels <> [] -> Some t
               | Some _ | None -> None
           in
           match witness with
           | Some t ->
             Buffer.add_string buffer
               (Printf.sprintf "%-60s VIOLATED (witness: %s)\n" name
                  (Mv_lts.Trace.to_string t))
           | None ->
             Buffer.add_string buffer
               (Printf.sprintf "%-60s VIOLATED\n" name)
         end
         else
           Buffer.add_string buffer (Printf.sprintf "%-60s holds\n" name))
      checks;
    { out = Buffer.contents buffer;
      err = "";
      code = (if !failures = 0 then 0 else 1) }
  end

let solve_texts config ~first spec =
  let perf = Flow.Run.performance config spec in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "IMC: %d states; lumped: %d; CTMC: %d\n"
       (Mv_imc.Imc.nb_states perf.Flow.imc)
       (Mv_imc.Imc.nb_states perf.Flow.lumped)
       (Mv_markov.Ctmc.nb_states perf.Flow.conversion.Mv_imc.To_ctmc.ctmc));
  (match perf.Flow.conversion.Mv_imc.To_ctmc.nondeterministic with
   | [] -> ()
   | states ->
     Buffer.add_string buffer
       (Printf.sprintf
          "note: %d statically nondeterministic vanishing state(s) (resolved \
           by the scheduler if reached during elimination)\n"
          (List.length states)));
  List.iter
    (fun (action, value) ->
       Buffer.add_string buffer
         (Printf.sprintf "throughput %-20s %.6g\n" action value))
    (Flow.throughputs perf);
  let stats = Flow.solver_stats perf in
  let err =
    if not stats.Mv_markov.Solver_stats.converged then
      Printf.sprintf
        "warning: steady-state solve did NOT converge (%d iteration(s), \
         residual %.3g); the reported measures may be inaccurate\n"
        stats.Mv_markov.Solver_stats.iterations
        stats.Mv_markov.Solver_stats.residual
    else ""
  in
  (match first with
   | None -> ()
   | Some gate ->
     Buffer.add_string buffer
       (Printf.sprintf "mean time to first %-9s %.6g\n" gate
          (Flow.time_to_first perf ~gate)));
  { out = Buffer.contents buffer; err; code = 0 }

let script_texts ?cache ?dir ~json script =
  let steps = Svl.run_string ?cache ?dir script in
  let out =
    if json then Json.to_string (Svl.steps_json steps) ^ "\n"
    else begin
      let buffer = Buffer.create 256 in
      List.iter
        (fun step ->
           let cache_note =
             match step.Svl.outcome with
             | Svl.Passed { cache = Some { Svl.hits; misses }; _ }
               when hits + misses > 0 ->
               Printf.sprintf " [cache: %d hit(s), %d miss(es)]" hits misses
             | _ -> ""
           in
           Buffer.add_string buffer
             (Printf.sprintf "%s %-60s %s%s\n"
                (if Svl.ok step then "[ ok ]" else "[FAIL]")
                step.Svl.description step.Svl.detail cache_note))
        steps;
      Buffer.contents buffer
    end
  in
  { out; err = ""; code = (if Svl.all_ok steps then 0 else 1) }

let lint_config_of_specs ~max_phases specs =
  List.fold_left
    (fun acc spec ->
       match acc with
       | Error _ -> acc
       | Ok config ->
         if spec = "error" then Ok { config with Lint.werror = true }
         else (
           match Lint.parse_override spec with
           | Some ov ->
             Ok { config with Lint.overrides = config.Lint.overrides @ [ ov ] }
           | None ->
             Error
               (Printf.sprintf
                  "invalid -W argument %S (expected CODE=LEVEL or 'error')"
                  spec)))
    (Ok { Lint.default_config with Lint.max_phase_product = max_phases })
    specs

let lint_texts ~config ~json ~file text =
  let ds = Lint.check_text ~config text in
  let out =
    if json then Diagnostic.to_json ds
    else
      String.concat ""
        (List.map (fun d -> Diagnostic.render ~file d ^ "\n") ds)
      ^ ((if ds = [] then "clean" else Diagnostic.summary ds) ^ "\n")
  in
  { out; err = ""; code = Lint.exit_code ~config ds }

let cache_stats_texts ~json cache =
  if json then ok_out (Json.to_string (Cache.stats_json cache) ^ "\n")
  else begin
    let s = Cache.stats cache in
    let buffer = Buffer.create 128 in
    Buffer.add_string buffer (Printf.sprintf "cache %s\n" (Cache.dir cache));
    Buffer.add_string buffer
      (Printf.sprintf "  entries    %d\n" s.Cache.entries);
    Buffer.add_string buffer
      (Printf.sprintf "  bytes      %d%s\n" s.Cache.bytes
         (match s.Cache.capacity with
          | Some cap -> Printf.sprintf " (cap %d)" cap
          | None -> ""));
    Buffer.add_string buffer (Printf.sprintf "  hits       %d\n" s.Cache.hits);
    Buffer.add_string buffer
      (Printf.sprintf "  misses     %d\n" s.Cache.misses);
    Buffer.add_string buffer
      (Printf.sprintf "  evictions  %d\n" s.Cache.evictions);
    ok_out (Buffer.contents buffer)
  end

(* Rendered from the JSON document (rather than from the constants
   directly) so that [mval version --remote] prints a daemon's report
   through the exact same code path. *)
let version_texts_of_json ~json versions =
  if json then ok_out (Json.to_string versions ^ "\n")
  else begin
    let field name =
      match Json.member name versions with
      | Some (Json.String s) -> s
      | Some (Json.Int n) -> string_of_int n
      | _ -> "?"
    in
    let buffer = Buffer.create 128 in
    List.iter
      (fun (label, value) ->
         Buffer.add_string buffer (Printf.sprintf "%-12s %s\n" label value))
      [ ("binary", field "binary");
        ("protocol", field "protocol");
        ("mvb-format", field "mvb_format") ];
    (match Json.member "schemas" versions with
     | Some (Json.List schemas) ->
       List.iter
         (function
           | Json.String s ->
             Buffer.add_string buffer (Printf.sprintf "%-12s %s\n" "schema" s)
           | _ -> ())
         schemas
     | _ -> ());
    ok_out (Buffer.contents buffer)
  end

let version_texts ~json = version_texts_of_json ~json (Proto.versions_json ())

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)

exception Bad of string
exception Unsupported of string
exception No_cache_configured

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let str_field ?default name args =
  match Json.member name args with
  | Some (Json.String s) -> s
  | Some _ -> bad "field %S must be a string" name
  | None -> (
    match default with
    | Some d -> d
    | None -> bad "missing string field %S" name)

let int_field ~default name args =
  match Json.member name args with
  | Some (Json.Int n) -> n
  | Some _ -> bad "field %S must be an integer" name
  | None -> default

let bool_field ~default name args =
  match Json.member name args with
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name
  | None -> default

let float_field ~default name args =
  match Json.member name args with
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | Some _ -> bad "field %S must be a number" name
  | None -> default

let string_list_field name args =
  match Json.member name args with
  | Some (Json.List items) ->
    List.map
      (function
        | Json.String s -> s
        | _ -> bad "field %S must be a list of strings" name)
      items
  | Some Json.Null | None -> []
  | Some _ -> bad "field %S must be a list of strings" name

let opt_str_field name args =
  match Json.member name args with
  | Some (Json.String s) -> Some s
  | Some Json.Null | None -> None
  | Some _ -> bad "field %S must be a string" name

let equivalence_of_name = function
  | "strong" -> Some Flow.Strong
  | "branching" -> Some Flow.Branching
  | "divbranching" -> Some Flow.Divbranching
  | "weak" -> Some Flow.Weak
  | "traces" -> Some Flow.Traces
  | _ -> None

let equivalence_field args =
  let name = str_field ~default:"branching" "equivalence" args in
  match equivalence_of_name name with
  | Some eq -> eq
  | None -> bad "unknown equivalence %S" name

(* A model payload: {"kind": "mvl" | "aut", "text": "..."}. MVL
   sources run through the (cache-memoized) flow generation; .aut
   texts are parsed directly, exactly like a local [mval] run on an
   .aut file. The client converts .mvb inputs to .aut before
   sending — the protocol carries only text. *)
let lts_of_model config name args =
  match Json.member name args with
  | None -> bad "missing field %S" name
  | Some m -> (
    let text = str_field "text" m in
    match str_field ~default:"mvl" "kind" m with
    | "mvl" -> Flow.Run.generate config (Flow.model_of_text text)
    | "aut" -> Aut.of_string text
    | kind -> bad "unknown model kind %S (expected mvl or aut)" kind)

let apply_hide args lts =
  match string_list_field "hide" args with
  | [] -> lts
  | gates -> Lts.hide lts ~gates

let with_temp_dir f =
  let dir = Filename.temp_file "mvald_script" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec remove_tree path =
    if Sys.is_directory path then begin
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> try remove_tree dir with Sys_error _ -> ())
    (fun () -> f dir)

let texts_json ?(extra = []) t =
  Json.Obj
    (("stdout", Json.String t.out)
     :: ("stderr", Json.String t.err)
     :: ("exit", Json.Int t.code)
     :: extra)

let texts_of_json json =
  {
    out =
      (match Json.member "stdout" json with
       | Some (Json.String s) -> s
       | _ -> "");
    err =
      (match Json.member "stderr" json with
       | Some (Json.String s) -> s
       | _ -> "");
    code =
      (match Json.member "exit" json with Some (Json.Int n) -> n | _ -> 0);
  }

let lts_result lts =
  Json.Obj
    [
      ("artifact", Json.String (Aut.to_string lts));
      ("states", Json.Int (Lts.nb_states lts));
      ("transitions", Json.Int (Lts.nb_transitions lts));
    ]

let run_generate config args =
  let lts = apply_hide args (lts_of_model config "model" args) in
  lts_result lts

let run_minimize config args =
  let equivalence = equivalence_field args in
  let lts = apply_hide args (lts_of_model config "model" args) in
  let minimized = Flow.Run.minimize config equivalence lts in
  (match lts_result minimized with
   | Json.Obj fields ->
     Json.Obj (("states_before", Json.Int (Lts.nb_states lts)) :: fields)
   | other -> other)

let run_equivalent config args =
  let equivalence = equivalence_field args in
  let la = lts_of_model config "a" args
  and lb = lts_of_model config "b" args in
  texts_json (compare_texts config equivalence la lb)

let run_check config args =
  let lts = lts_of_model config "model" args in
  let engine =
    match str_field ~default:"fixpoint" "engine" args with
    | "fixpoint" -> `Fixpoint
    | "bes" -> `Bes
    | e -> bad "unknown engine %S (expected fixpoint or bes)" e
  in
  texts_json
    (check_texts ~engine
       ~deadlock:(bool_field ~default:false "deadlock" args)
       ~formulas:(string_list_field "formulas" args)
       lts)

let run_solve config args =
  let spec = Flow.model_of_text (str_field "model" args) in
  let scheduler =
    match str_field ~default:"uniform" "scheduler" args with
    | "uniform" -> Mv_imc.To_ctmc.Uniform
    | "fail" -> Mv_imc.To_ctmc.Fail
    | s -> bad "unknown scheduler %S (expected uniform or fail)" s
  in
  let solve_method =
    match opt_str_field "method" args with
    | None -> None
    | Some name -> (
      match Mv_kern.Solver.method_of_name name with
      | Some m -> Some m
      | None -> bad "unknown solve method %S" name)
  in
  let config =
    {
      config with
      Flow.Config.keep = string_list_field "keep" args;
      scheduler;
      solve_method;
    }
  in
  texts_json (solve_texts config ~first:(opt_str_field "time_to_first" args) spec)

let run_script cache args =
  let script = str_field "script" args in
  let json = bool_field ~default:false "json" args in
  let files =
    match Json.member "files" args with
    | Some (Json.Obj fields) ->
      List.map
        (fun (name, value) ->
           match value with
           | Json.String text -> (name, text)
           | _ -> bad "field \"files\" must map names to text")
        fields
    | Some Json.Null | None -> []
    | Some _ -> bad "field \"files\" must be an object"
  in
  List.iter
    (fun (name, _) ->
       if Filename.basename name <> name || name = "." || name = ".." then
         bad "illegal file name %S in \"files\"" name)
    files;
  with_temp_dir @@ fun dir ->
  List.iter
    (fun (name, text) ->
       Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
           Out_channel.output_string oc text))
    files;
  texts_json (script_texts ?cache ~dir ~json script)

let run_lint args =
  let specs = string_list_field "warn" args in
  let max_phases =
    int_field ~default:Lint.default_config.Lint.max_phase_product "max_phases"
      args
  in
  match lint_config_of_specs ~max_phases specs with
  | Error msg -> texts_json { out = ""; err = msg ^ "\n"; code = 2 }
  | Ok config ->
    texts_json
      (lint_texts ~config
         ~json:(bool_field ~default:false "json" args)
         ~file:(str_field ~default:"<remote>" "file" args)
         (str_field "model" args))

let run_sleep budget args =
  let duration = float_field ~default:0.0 "s" args in
  let deadline = Unix.gettimeofday () +. duration in
  let rec wait () =
    (match budget with Some b -> Budget.tick b | None -> ());
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining > 0.0 then begin
      Unix.sleepf (Float.min 0.01 remaining);
      wait ()
    end
  in
  wait ();
  Json.Obj [ ("slept_s", Json.Float duration) ]

(* Family rules for the OpenMetrics exposition: per-op registry names
   become one family with an "op" label (see Mv_obs.Openmetrics). *)
let openmetrics_families =
  [ ("serve.request_latency_s.", "op"); ("serve.exec_s.", "op") ]

let openmetrics_text () =
  Mv_obs.Openmetrics.render ~families:openmetrics_families ()

let dispatch ?cache ?server (request : Proto.request) =
  let budget =
    Option.map
      (fun (b : Proto.budget_spec) ->
         Budget.create ?max_states:b.max_states ?wall_s:b.wall_s ())
      request.Proto.budget
  in
  let args = request.Proto.args in
  let config =
    {
      Flow.Config.default with
      cache;
      budget;
      max_states = Some (int_field ~default:1_000_000 "max_states" args);
    }
  in
  try
    Obs.span "serve.request"
      ~args:[ ("op", Json.String request.Proto.op) ]
    @@ fun () ->
    Ok
      (match request.Proto.op with
       | "generate" -> run_generate config args
       | "minimize" -> run_minimize config args
       | "equivalent" -> run_equivalent config args
       | "check" -> run_check config args
       | "solve" -> run_solve config args
       | "script" -> run_script cache args
       | "lint" -> run_lint args
       | "cache-stats" -> (
         match cache with
         | Some cache ->
           texts_json
             (cache_stats_texts
                ~json:(bool_field ~default:false "json" args)
                cache)
         | None -> raise No_cache_configured)
       | "metrics" ->
         Json.Obj
           [
             ("metrics", Obs.metrics_json ());
             ( "server",
               match server with Some f -> f () | None -> Json.Null );
           ]
       | "metrics-text" -> texts_json (ok_out (openmetrics_text ()))
       | "logs" ->
         let limit = int_field ~default:Mv_obs.Log.capacity "limit" args in
         Mv_obs.Log.dump_json ~limit ()
       | "version" -> Proto.versions_json ()
       | "ping" -> Json.Obj []
       | "sleep" -> run_sleep budget args
       | op -> raise (Unsupported op))
  with
  | Bad msg -> Error { Proto.kind = Proto.Bad_request; message = msg }
  | Unsupported op ->
    Error
      {
        Proto.kind = Proto.Unsupported_op;
        message = Printf.sprintf "unsupported op %S" op;
      }
  | No_cache_configured ->
    Error
      {
        Proto.kind = Proto.No_cache;
        message = "no cache directory configured on this daemon";
      }
  | exn -> (
    match classify exn with
    | Some (kind, message, _) -> Error { Proto.kind; message }
    | None ->
      Error { Proto.kind = Proto.Internal; message = Printexc.to_string exn })
