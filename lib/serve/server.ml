module Json = Mv_obs.Json
module Obs = Mv_obs.Obs
module Log = Mv_obs.Log
module Cache = Mv_store.Cache
module Pool = Mv_par.Pool

type config = {
  addr : Proto.addr;
  workers : int;
  queue_capacity : int;
  max_frame : int;
  cache : Cache.t option;
  slow_s : float;
}

let default_queue_capacity = 64
let default_slow_s = 1.0

type job = {
  client : client;
  request : Proto.request;
  admitted_ns : int64;  (** admission time, for the queue-wait histogram *)
}

and client_state = Idle | Ready | Scheduled

and client = {
  client_id : int;  (** accept-order ordinal, for log events *)
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  mutable fd_closed : bool;  (** guarded by [write_mutex] *)
  pending : job Queue.t;  (** guarded by the server mutex *)
  mutable state : client_state;  (** guarded by the server mutex *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  actual_addr : Proto.addr;
  pool : Pool.t;
  mutex : Mutex.t;
  work : Condition.t;
  ready : client Queue.t;
  mutable queued : int;
  mutable in_flight : int;
  mutable draining : bool;
  mutable clients : client list;
  mutable readers : Thread.t list;
  mutable accepted : int;
  mutable connected : int;
  mutable requests : int;
  mutable rejected_overloaded : int;
  mutable rejected_draining : int;
  drain_requested : bool Atomic.t;
  drain_r : Unix.file_descr;
  drain_w : Unix.file_descr;
  queue_gauge : Obs.gauge;
  in_flight_gauge : Obs.gauge;
  connections_gauge : Obs.gauge;
}

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)

let stale_unix_socket path =
  match (Unix.stat path).Unix.st_kind with
  | Unix.S_SOCK -> (
    (* a live daemon accepts; a dead one's socket file refuses *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close probe)
      (fun () ->
         match Unix.connect probe (Unix.ADDR_UNIX path) with
         | () -> false
         | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> true))
  | _ | (exception Unix.Unix_error (Unix.ENOENT, _, _)) -> false

let bind_listen addr =
  match addr with
  | Proto.Unix_path path ->
    if stale_unix_socket path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with e ->
       Unix.close fd;
       raise e);
    Unix.listen fd 64;
    (fd, addr)
  | Proto.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
          addrs.(0)
        | _ | (exception Not_found) ->
          raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "gethostbyname", host)))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 64
     with e ->
       Unix.close fd;
       raise e);
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, bound_port) -> Proto.Tcp (host, bound_port)
      | _ -> addr
    in
    (fd, actual)

let create config =
  Proto.ensure_sigpipe_ignored ();
  let listen_fd, actual_addr = bind_listen config.addr in
  let drain_r, drain_w = Unix.pipe ~cloexec:true () in
  {
    config;
    listen_fd;
    actual_addr;
    pool = Pool.create ~domains:config.workers ();
    mutex = Mutex.create ();
    work = Condition.create ();
    ready = Queue.create ();
    queued = 0;
    in_flight = 0;
    draining = false;
    clients = [];
    readers = [];
    accepted = 0;
    connected = 0;
    requests = 0;
    rejected_overloaded = 0;
    rejected_draining = 0;
    drain_requested = Atomic.make false;
    drain_r;
    drain_w;
    queue_gauge = Obs.gauge "serve.queue_depth";
    in_flight_gauge = Obs.gauge "serve.in_flight";
    connections_gauge = Obs.gauge "serve.connections";
  }

let addr t = t.actual_addr

let initiate_drain t =
  if not (Atomic.exchange t.drain_requested true) then
    (* wake the accept loop out of select; a pipe write is
       async-signal-safe, which is why drain is requested this way *)
    ignore (Unix.write t.drain_w (Bytes.of_string "d") 0 1)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let locked mutex f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let stats_json t =
  locked t.mutex @@ fun () ->
  Json.Obj
    [
      ("queue_depth", Json.Int t.queued);
      ("in_flight", Json.Int t.in_flight);
      ("connections", Json.Int t.connected);
      ("accepted", Json.Int t.accepted);
      ("requests", Json.Int t.requests);
      ("rejected_overloaded", Json.Int t.rejected_overloaded);
      ("rejected_draining", Json.Int t.rejected_draining);
      ("workers", Json.Int (Pool.size t.pool));
      ("queue_capacity", Json.Int t.config.queue_capacity);
      ("draining", Json.Bool t.draining);
    ]

let respond client response =
  locked client.write_mutex @@ fun () ->
  if not client.fd_closed then
    try Proto.write_frame client.fd (Proto.encode_response response)
    with Unix.Unix_error _ | Sys_error _ | Proto.Frame_error _ ->
      (* peer vanished mid-write; the reader will observe the same and
         retire the connection *)
      ()

let respond_error client id kind message =
  respond client
    {
      Proto.rsp_id = id;
      outcome = Error { Proto.kind; message };
      cache = None;
      elapsed_s = 0.0;
      trace = None;
    }

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)

(* The id every span, metric and log event of this request is tagged
   with: the client's choice when the request carried a trace spec, a
   fresh one otherwise (so server-side telemetry is always
   attributable, traced client or not). *)
let job_request_id job =
  match job.request.Proto.trace with
  | Some { Proto.request_id; _ } -> request_id
  | None -> Proto.fresh_request_id ()

let execute t job =
  let op = job.request.Proto.op in
  let rid = job_request_id job in
  let started = Obs.Clock.now_ns () in
  let queue_wait_s =
    Int64.to_float (Int64.sub started job.admitted_ns) /. 1e9
  in
  Obs.observe (Obs.histogram "serve.queue_wait_s") queue_wait_s;
  let hits0, misses0 = Cache.domain_session () in
  let outcome =
    Obs.with_request rid (fun () ->
        Ops.dispatch ?cache:t.config.cache
          ~server:(fun () -> stats_json t)
          job.request)
  in
  let hits1, misses1 = Cache.domain_session () in
  let elapsed_s = Obs.Clock.elapsed_s started in
  let cache =
    match t.config.cache with
    | Some _ -> Some (hits1 - hits0, misses1 - misses0)
    | None -> None
  in
  Obs.observe (Obs.histogram ("serve.exec_s." ^ op)) elapsed_s;
  Obs.observe
    (Obs.histogram ("serve.request_latency_s." ^ op))
    (queue_wait_s +. elapsed_s);
  (match outcome with
   | Error { Proto.kind = Proto.Budget_exceeded; message } ->
     Log.warn ~request:rid ~op
       ~fields:[ ("message", Json.String message) ]
       "budget exhausted"
   | _ -> ());
  if elapsed_s > t.config.slow_s then
    Log.warn ~request:rid ~op
      ~fields:
        [
          ("exec_s", Json.Float elapsed_s);
          ("queue_wait_s", Json.Float queue_wait_s);
        ]
      "slow request";
  let trace =
    match (job.request.Proto.trace, outcome) with
    | Some { Proto.collect_spans = true; _ }, Ok _ ->
      Some (Obs.spans_json (Obs.spans_for_request rid))
    | _ -> None
  in
  respond job.client
    { Proto.rsp_id = job.request.Proto.id; outcome; cache; elapsed_s; trace }

let worker_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while Queue.is_empty t.ready && not (t.draining && t.queued = 0) do
      Condition.wait t.work t.mutex
    done;
    if Queue.is_empty t.ready then begin
      (* draining and nothing left to pick up *)
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let client = Queue.pop t.ready in
      client.state <- Scheduled;
      let job = Queue.pop client.pending in
      t.queued <- t.queued - 1;
      t.in_flight <- t.in_flight + 1;
      Obs.set t.queue_gauge (float_of_int t.queued);
      Obs.set t.in_flight_gauge (float_of_int t.in_flight);
      Mutex.unlock t.mutex;
      (try execute t job with _ -> ());
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      Obs.set t.in_flight_gauge (float_of_int t.in_flight);
      if Queue.is_empty client.pending then client.state <- Idle
      else begin
        client.state <- Ready;
        Queue.push client t.ready;
        Condition.signal t.work
      end;
      if t.draining && t.queued = 0 then Condition.broadcast t.work;
      Mutex.unlock t.mutex
    end
  done

(* ------------------------------------------------------------------ *)
(* Readers (one systhread per connection)                              *)

let request_log_id (request : Proto.request) =
  match request.Proto.trace with
  | Some { Proto.request_id; _ } -> Some request_id
  | None -> None

let admit t client request =
  let admitted =
    locked t.mutex @@ fun () ->
    if t.draining then Error (Proto.Draining, "server is draining")
    else if t.queued >= t.config.queue_capacity then begin
      t.rejected_overloaded <- t.rejected_overloaded + 1;
      Obs.incr (Obs.counter "serve.rejected.overloaded");
      Obs.incr (Obs.counter "serve.requests_rejected");
      Error
        ( Proto.Overloaded,
          Printf.sprintf "queue full (%d requests pending)" t.queued )
    end
    else begin
      t.requests <- t.requests + 1;
      Obs.incr (Obs.counter "serve.requests");
      Queue.push
        { client; request; admitted_ns = Obs.Clock.now_ns () }
        client.pending;
      t.queued <- t.queued + 1;
      Obs.set t.queue_gauge (float_of_int t.queued);
      (* this client's own backlog, for fairness monitoring *)
      Obs.observe
        (Obs.histogram "serve.client_backlog")
        (float_of_int (Queue.length client.pending));
      if client.state = Idle then begin
        client.state <- Ready;
        Queue.push client t.ready
      end;
      Condition.signal t.work;
      Ok t.queued
    end
  in
  (* log outside the server lock *)
  match admitted with
  | Ok depth ->
    Log.debug ?request:(request_log_id request) ~op:request.Proto.op
      ~fields:
        [
          ("client", Json.Int client.client_id);
          ("queue_depth", Json.Int depth);
        ]
      "request admitted";
    Ok ()
  | Error ((Proto.Overloaded, message) as e) ->
    Log.warn ?request:(request_log_id request) ~op:request.Proto.op
      ~fields:
        [
          ("client", Json.Int client.client_id);
          ("message", Json.String message);
        ]
      "request rejected: overloaded";
    Error e
  | Error e -> Error e

let count_draining_reject t request =
  locked t.mutex (fun () ->
      t.rejected_draining <- t.rejected_draining + 1;
      Obs.incr (Obs.counter "serve.rejected.draining");
      Obs.incr (Obs.counter "serve.requests_rejected"));
  Log.warn ?request:(request_log_id request) ~op:request.Proto.op
    "request rejected: draining"

let close_client client =
  locked client.write_mutex @@ fun () ->
  if not client.fd_closed then begin
    client.fd_closed <- true;
    try Unix.close client.fd with Unix.Unix_error _ -> ()
  end

(* Wake a reader blocked in [read] so it can retire; the reader itself
   performs the [close] (under the write mutex), so the descriptor
   number can never be recycled while another thread still uses it. *)
let shutdown_client client =
  locked client.write_mutex @@ fun () ->
  if not client.fd_closed then
    try Unix.shutdown client.fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()

(* A plain HTTP client on the same listener (the scrape path). The
   "GET " preamble is already consumed; read the rest of the request
   head (bounded — this is still the untrusted boundary), answer, and
   let the reader retire the connection: HTTP here is strictly
   one-shot. *)
let http_head_cap = 8192

let serve_http client =
  let head = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec fill () =
    if
      Buffer.length head < http_head_cap
      && not (String.contains (Buffer.contents head) '\n')
    then begin
      match Unix.read client.fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes head chunk 0 n;
        fill ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
    end
  in
  fill ();
  let line =
    match String.index_opt (Buffer.contents head) '\n' with
    | Some i -> String.sub (Buffer.contents head) 0 i
    | None -> Buffer.contents head
  in
  (* request line minus the consumed "GET ": "<path> HTTP/1.x" *)
  let target =
    match String.index_opt line ' ' with
    | Some i -> String.sub line 0 i
    | None -> String.trim line
  in
  let respond_http status content_type body =
    let text =
      Printf.sprintf
        "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
         close\r\n\r\n%s"
        status content_type (String.length body) body
    in
    locked client.write_mutex @@ fun () ->
    if not client.fd_closed then
      try Proto.write_string client.fd text
      with Unix.Unix_error _ | Sys_error _ -> ()
  in
  if target = "/metrics" then begin
    Obs.incr (Obs.counter "serve.http_scrapes");
    respond_http "200 OK"
      "application/openmetrics-text; version=1.0.0; charset=utf-8"
      (Ops.openmetrics_text ())
  end
  else respond_http "404 Not Found" "text/plain; charset=utf-8" "not found\n"

let reader t client =
  let rec loop () =
    match Proto.read_header client.fd with
    | None -> ()
    | exception (Proto.Frame_error _ | Unix.Unix_error _ | Sys_error _) -> ()
    | Some header when header = Proto.http_get_preamble -> serve_http client
    | Some header -> (
      match
        let len =
          Proto.decode_frame_len ~max_frame:t.config.max_frame header
        in
        Proto.read_body client.fd len
      with
      | exception (Proto.Frame_error _ | Unix.Unix_error _ | Sys_error _) ->
        ()
      | body -> (
        match Proto.parse_request ~max_frame:t.config.max_frame body with
        | Error message ->
          (* no trustworthy id to echo; answer on id 0 and drop the
             connection — after a framing-level parse failure the byte
             stream cannot be trusted to stay aligned *)
          respond_error client 0 Proto.Bad_request message
        | Ok request -> (
          match admit t client request with
          | Ok () -> loop ()
          | Error (kind, message) ->
            if kind = Proto.Draining then count_draining_reject t request;
            respond_error client request.Proto.id kind message;
            loop ())))
  in
  (try loop () with _ -> ());
  close_client client;
  locked t.mutex (fun () ->
      t.connected <- t.connected - 1;
      Obs.set t.connections_gauge (float_of_int t.connected))

(* ------------------------------------------------------------------ *)
(* Accept loop and drain                                               *)

let adopt_client t fd =
  let client_id =
    locked t.mutex (fun () ->
        t.accepted <- t.accepted + 1;
        t.connected <- t.connected + 1;
        Obs.set t.connections_gauge (float_of_int t.connected);
        t.accepted)
  in
  let client =
    {
      client_id;
      fd;
      write_mutex = Mutex.create ();
      fd_closed = false;
      pending = Queue.create ();
      state = Idle;
    }
  in
  let thread = Thread.create (fun () -> reader t client) () in
  locked t.mutex (fun () ->
      t.clients <- client :: t.clients;
      t.readers <- thread :: t.readers)

(* The listen backlog may hold peers whose connect already completed
   when drain was requested; adopt them so their requests get a
   structured [draining] answer instead of a reset socket. *)
let accept_pending t =
  Unix.set_nonblock t.listen_fd;
  let rec sweep () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> sweep ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | fd, _ ->
      adopt_client t fd;
      sweep ()
  in
  sweep ()

let accept_loop t =
  let accepting = ref true in
  while !accepting do
    match Unix.select [ t.listen_fd; t.drain_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* a signal landed; its handler may have requested drain *)
      if Atomic.get t.drain_requested then accepting := false
    | readable, _, _ ->
      if List.mem t.drain_r readable then accepting := false
      else if List.mem t.listen_fd readable then begin
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error (_, _, _) -> ()
        | fd, _ -> adopt_client t fd
      end
  done;
  accept_pending t

let run t =
  (* one long fork-join job: every pool domain becomes a request
     worker for the whole serving period *)
  let workers = Thread.create (fun () -> Pool.run t.pool (fun _ -> worker_loop t)) () in
  accept_loop t;
  Unix.close t.listen_fd;
  (match t.actual_addr with
   | Proto.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
   | Proto.Tcp _ -> ());
  (* flip to draining: readers now answer [draining]; workers finish
     the backlog then park. Logged here, not in the signal handler —
     the handler must stay async-signal-safe. *)
  let backlog = locked t.mutex (fun () -> t.queued + t.in_flight) in
  Log.info ~fields:[ ("backlog", Json.Int backlog) ] "draining";
  locked t.mutex (fun () ->
      t.draining <- true;
      Condition.broadcast t.work);
  Thread.join workers;
  Log.info "drained";
  (* backlog answered; retire the connections *)
  let clients, readers =
    locked t.mutex (fun () -> (t.clients, t.readers))
  in
  List.iter shutdown_client clients;
  List.iter Thread.join readers;
  Unix.close t.drain_r;
  Unix.close t.drain_w;
  Pool.shutdown t.pool
