module Json = Mv_obs.Json
module Obs = Mv_obs.Obs
module Cache = Mv_store.Cache
module Pool = Mv_par.Pool

type config = {
  addr : Proto.addr;
  workers : int;
  queue_capacity : int;
  max_frame : int;
  cache : Cache.t option;
}

let default_queue_capacity = 64

type job = { client : client; request : Proto.request }

and client_state = Idle | Ready | Scheduled

and client = {
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  mutable fd_closed : bool;  (** guarded by [write_mutex] *)
  pending : job Queue.t;  (** guarded by the server mutex *)
  mutable state : client_state;  (** guarded by the server mutex *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  actual_addr : Proto.addr;
  pool : Pool.t;
  mutex : Mutex.t;
  work : Condition.t;
  ready : client Queue.t;
  mutable queued : int;
  mutable in_flight : int;
  mutable draining : bool;
  mutable clients : client list;
  mutable readers : Thread.t list;
  mutable accepted : int;
  mutable requests : int;
  mutable rejected_overloaded : int;
  mutable rejected_draining : int;
  drain_requested : bool Atomic.t;
  drain_r : Unix.file_descr;
  drain_w : Unix.file_descr;
  queue_gauge : Obs.gauge;
  in_flight_gauge : Obs.gauge;
}

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)

let stale_unix_socket path =
  match (Unix.stat path).Unix.st_kind with
  | Unix.S_SOCK -> (
    (* a live daemon accepts; a dead one's socket file refuses *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close probe)
      (fun () ->
         match Unix.connect probe (Unix.ADDR_UNIX path) with
         | () -> false
         | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> true))
  | _ | (exception Unix.Unix_error (Unix.ENOENT, _, _)) -> false

let bind_listen addr =
  match addr with
  | Proto.Unix_path path ->
    if stale_unix_socket path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with e ->
       Unix.close fd;
       raise e);
    Unix.listen fd 64;
    (fd, addr)
  | Proto.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
          addrs.(0)
        | _ | (exception Not_found) ->
          raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "gethostbyname", host)))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 64
     with e ->
       Unix.close fd;
       raise e);
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, bound_port) -> Proto.Tcp (host, bound_port)
      | _ -> addr
    in
    (fd, actual)

let create config =
  let listen_fd, actual_addr = bind_listen config.addr in
  let drain_r, drain_w = Unix.pipe ~cloexec:true () in
  {
    config;
    listen_fd;
    actual_addr;
    pool = Pool.create ~domains:config.workers;
    mutex = Mutex.create ();
    work = Condition.create ();
    ready = Queue.create ();
    queued = 0;
    in_flight = 0;
    draining = false;
    clients = [];
    readers = [];
    accepted = 0;
    requests = 0;
    rejected_overloaded = 0;
    rejected_draining = 0;
    drain_requested = Atomic.make false;
    drain_r;
    drain_w;
    queue_gauge = Obs.gauge "serve.queue_depth";
    in_flight_gauge = Obs.gauge "serve.in_flight";
  }

let addr t = t.actual_addr

let initiate_drain t =
  if not (Atomic.exchange t.drain_requested true) then
    (* wake the accept loop out of select; a pipe write is
       async-signal-safe, which is why drain is requested this way *)
    ignore (Unix.write t.drain_w (Bytes.of_string "d") 0 1)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let locked mutex f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let stats_json t =
  locked t.mutex @@ fun () ->
  Json.Obj
    [
      ("queue_depth", Json.Int t.queued);
      ("in_flight", Json.Int t.in_flight);
      ("connections", Json.Int (List.length t.clients));
      ("accepted", Json.Int t.accepted);
      ("requests", Json.Int t.requests);
      ("rejected_overloaded", Json.Int t.rejected_overloaded);
      ("rejected_draining", Json.Int t.rejected_draining);
      ("workers", Json.Int (Pool.size t.pool));
      ("queue_capacity", Json.Int t.config.queue_capacity);
      ("draining", Json.Bool t.draining);
    ]

let respond client response =
  locked client.write_mutex @@ fun () ->
  if not client.fd_closed then
    try Proto.write_frame client.fd (Proto.encode_response response)
    with Unix.Unix_error _ | Sys_error _ | Proto.Frame_error _ ->
      (* peer vanished mid-write; the reader will observe the same and
         retire the connection *)
      ()

let respond_error client id kind message =
  respond client
    {
      Proto.rsp_id = id;
      outcome = Error { Proto.kind; message };
      cache = None;
      elapsed_s = 0.0;
    }

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)

let execute t job =
  let started = Obs.Clock.now_ns () in
  let hits0, misses0 = Cache.domain_session () in
  let outcome =
    Ops.dispatch ?cache:t.config.cache
      ~server:(fun () -> stats_json t)
      job.request
  in
  let hits1, misses1 = Cache.domain_session () in
  let elapsed_s = Obs.Clock.elapsed_s started in
  let cache =
    match t.config.cache with
    | Some _ -> Some (hits1 - hits0, misses1 - misses0)
    | None -> None
  in
  Obs.observe
    (Obs.histogram ("serve.latency_ms." ^ job.request.Proto.op))
    (elapsed_s *. 1000.0);
  respond job.client
    { Proto.rsp_id = job.request.Proto.id; outcome; cache; elapsed_s }

let worker_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while Queue.is_empty t.ready && not (t.draining && t.queued = 0) do
      Condition.wait t.work t.mutex
    done;
    if Queue.is_empty t.ready then begin
      (* draining and nothing left to pick up *)
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let client = Queue.pop t.ready in
      client.state <- Scheduled;
      let job = Queue.pop client.pending in
      t.queued <- t.queued - 1;
      t.in_flight <- t.in_flight + 1;
      Obs.set t.queue_gauge (float_of_int t.queued);
      Obs.set t.in_flight_gauge (float_of_int t.in_flight);
      Mutex.unlock t.mutex;
      (try execute t job with _ -> ());
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      Obs.set t.in_flight_gauge (float_of_int t.in_flight);
      if Queue.is_empty client.pending then client.state <- Idle
      else begin
        client.state <- Ready;
        Queue.push client t.ready;
        Condition.signal t.work
      end;
      if t.draining && t.queued = 0 then Condition.broadcast t.work;
      Mutex.unlock t.mutex
    end
  done

(* ------------------------------------------------------------------ *)
(* Readers (one systhread per connection)                              *)

let admit t client request =
  locked t.mutex @@ fun () ->
  if t.draining then Error (Proto.Draining, "server is draining")
  else if t.queued >= t.config.queue_capacity then begin
    t.rejected_overloaded <- t.rejected_overloaded + 1;
    Obs.incr (Obs.counter "serve.rejected.overloaded");
    Error
      ( Proto.Overloaded,
        Printf.sprintf "queue full (%d requests pending)" t.queued )
  end
  else begin
    t.requests <- t.requests + 1;
    Obs.incr (Obs.counter "serve.requests");
    Queue.push { client; request } client.pending;
    t.queued <- t.queued + 1;
    Obs.set t.queue_gauge (float_of_int t.queued);
    if client.state = Idle then begin
      client.state <- Ready;
      Queue.push client t.ready
    end;
    Condition.signal t.work;
    Ok ()
  end

let count_draining_reject t =
  locked t.mutex @@ fun () ->
  t.rejected_draining <- t.rejected_draining + 1;
  Obs.incr (Obs.counter "serve.rejected.draining")

let close_client client =
  locked client.write_mutex @@ fun () ->
  if not client.fd_closed then begin
    client.fd_closed <- true;
    try Unix.close client.fd with Unix.Unix_error _ -> ()
  end

(* Wake a reader blocked in [read] so it can retire; the reader itself
   performs the [close] (under the write mutex), so the descriptor
   number can never be recycled while another thread still uses it. *)
let shutdown_client client =
  locked client.write_mutex @@ fun () ->
  if not client.fd_closed then
    try Unix.shutdown client.fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()

let reader t client =
  let rec loop () =
    match Proto.read_frame ~max_frame:t.config.max_frame client.fd with
    | None -> ()
    | exception (Proto.Frame_error _ | Unix.Unix_error _ | Sys_error _) -> ()
    | Some body -> (
      match Proto.parse_request ~max_frame:t.config.max_frame body with
      | Error message ->
        (* no trustworthy id to echo; answer on id 0 and drop the
           connection — after a framing-level parse failure the byte
           stream cannot be trusted to stay aligned *)
        respond_error client 0 Proto.Bad_request message
      | Ok request -> (
        match admit t client request with
        | Ok () -> loop ()
        | Error (kind, message) ->
          if kind = Proto.Draining then count_draining_reject t;
          respond_error client request.Proto.id kind message;
          loop ()))
  in
  (try loop () with _ -> ());
  close_client client

(* ------------------------------------------------------------------ *)
(* Accept loop and drain                                               *)

let accept_loop t =
  let accepting = ref true in
  while !accepting do
    match Unix.select [ t.listen_fd; t.drain_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* a signal landed; its handler may have requested drain *)
      if Atomic.get t.drain_requested then accepting := false
    | readable, _, _ ->
      if List.mem t.drain_r readable then accepting := false
      else if List.mem t.listen_fd readable then begin
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error (_, _, _) -> ()
        | fd, _ ->
          let client =
            {
              fd;
              write_mutex = Mutex.create ();
              fd_closed = false;
              pending = Queue.create ();
              state = Idle;
            }
          in
          let thread = Thread.create (fun () -> reader t client) () in
          locked t.mutex (fun () ->
              t.accepted <- t.accepted + 1;
              t.clients <- client :: t.clients;
              t.readers <- thread :: t.readers)
      end
  done

let run t =
  (* one long fork-join job: every pool domain becomes a request
     worker for the whole serving period *)
  let workers = Thread.create (fun () -> Pool.run t.pool (fun _ -> worker_loop t)) () in
  accept_loop t;
  Unix.close t.listen_fd;
  (match t.actual_addr with
   | Proto.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
   | Proto.Tcp _ -> ());
  (* flip to draining: readers now answer [draining]; workers finish
     the backlog then park *)
  locked t.mutex (fun () ->
      t.draining <- true;
      Condition.broadcast t.work);
  Thread.join workers;
  (* backlog answered; retire the connections *)
  let clients, readers =
    locked t.mutex (fun () -> (t.clients, t.readers))
  in
  List.iter shutdown_client clients;
  List.iter Thread.join readers;
  Unix.close t.drain_r;
  Unix.close t.drain_w;
  Pool.shutdown t.pool
