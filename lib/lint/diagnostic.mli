(** Diagnostics emitted by the MVL linter.

    A diagnostic carries a stable rule code ([MVL001]...), a severity,
    an optional 1-based source line (known when the spec was parsed
    through the located entry points of {!Mv_calc.Parser}), and a
    human-readable message. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  line : int option;
  message : string;
}

val severity_name : severity -> string

(** Inverse of {!severity_name}; [None] on unknown names. *)
val severity_of_name : string -> severity option

(** [Error] < [Warning] < [Info]. *)
val severity_rank : severity -> int

(** Order by line (unknown lines first), then code, then message. *)
val compare : t -> t -> int

(** ["file.mvl:12: warning MVL005: ..."]; the location prefix is
    dropped when unknown. *)
val render : ?file:string -> t -> string

val pp : Format.formatter -> t -> unit

(** [(errors, warnings, infos)]. *)
val counts : t list -> int * int * int

(** ["E error(s), W warning(s), I info(s)"]. *)
val summary : t list -> string

(** {1 JSON interchange}

    {!to_json} renders a JSON array of flat objects with fields
    [code], [severity], [line] (integer or [null]) and [message];
    {!of_json} parses exactly that shape back, so the machine output of
    [mval lint --json] round-trips. *)

exception Json_error of string

val to_json : t list -> string

(** Raises {!Json_error} on malformed input. *)
val of_json : string -> t list
