module Ast = Mv_calc.Ast
module Expr = Mv_calc.Expr
module Value = Mv_calc.Value
module Ty = Mv_calc.Ty
module Typecheck = Mv_calc.Typecheck
module Parser = Mv_calc.Parser
module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Rule registry                                                       *)

type rule = {
  code : string;
  default_severity : Diagnostic.severity;
  title : string;
}

let rules =
  [
    { code = "MVL001"; default_severity = Diagnostic.Error;
      title = "type or well-formedness error" };
    { code = "MVL002"; default_severity = Diagnostic.Error;
      title = "call to an undefined process" };
    { code = "MVL003"; default_severity = Diagnostic.Warning;
      title = "process is never used (unreachable from init)" };
    { code = "MVL004"; default_severity = Diagnostic.Warning;
      title = "unguarded recursion (call cycle without an intervening action)" };
    { code = "MVL005"; default_severity = Diagnostic.Warning;
      title = "synchronization gate never offered by one operand" };
    { code = "MVL006"; default_severity = Diagnostic.Warning;
      title = "hidden gate is never offered" };
    { code = "MVL007"; default_severity = Diagnostic.Warning;
      title = "renamed gate is never offered" };
    { code = "MVL008"; default_severity = Diagnostic.Warning;
      title = "guard is always false (dead branch)" };
    { code = "MVL009"; default_severity = Diagnostic.Info;
      title = "guard is always true (redundant)" };
    { code = "MVL010"; default_severity = Diagnostic.Error;
      title = "binding always out of the declared range" };
    { code = "MVL011"; default_severity = Diagnostic.Warning;
      title = "Markovian delay races a visible action" };
    { code = "MVL012"; default_severity = Diagnostic.Warning;
      title = "phase-type expansion estimate exceeds the limit" };
    { code = "MVL013"; default_severity = Diagnostic.Warning;
      title = "formal gate never used in the process body" };
  ]

let find_rule code = List.find_opt (fun r -> String.equal r.code code) rules

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  max_phase_product : int;
  overrides : (string * Diagnostic.severity option) list;
  werror : bool;
}

let default_config =
  { max_phase_product = 1024; overrides = []; werror = false }

let parse_override s =
  match String.index_opt s '=' with
  | None -> None
  | Some i ->
    let code = String.sub s 0 i in
    let level = String.sub s (i + 1) (String.length s - i - 1) in
    if String.equal code "" then None
    else if String.equal level "ignore" then Some (code, None)
    else (
      match Diagnostic.severity_of_name level with
      | Some sev -> Some (code, Some sev)
      | None -> None)

let apply_overrides config ds =
  List.filter_map
    (fun (d : Diagnostic.t) ->
       match List.assoc_opt d.Diagnostic.code config.overrides with
       | Some None -> None
       | Some (Some sev) -> Some { d with Diagnostic.severity = sev }
       | None -> Some d)
    ds

(* ------------------------------------------------------------------ *)
(* Call graph: MVL003 (unused process), MVL004 (unguarded recursion)   *)

(* Call sites of [b] as [(callee, guarded, line)]. A call is guarded
   when an action necessarily happens before it: it sits under a
   [Prefix] or [Rate], or in the continuation of [>>] (reaching it
   consumes the [exit] of the left operand). *)
let rec calls guarded line acc b =
  match b with
  | Ast.At (l, k) -> calls guarded (Some l) acc k
  | Ast.Stop | Ast.Exit _ -> acc
  | Ast.Prefix (_, k) | Ast.Rate (_, k) -> calls true line acc k
  | Ast.Guard (_, k) | Ast.Hide (_, k) | Ast.Rename (_, k) ->
    calls guarded line acc k
  | Ast.Choice bs -> List.fold_left (calls guarded line) acc bs
  | Ast.Par (_, a, b) -> calls guarded line (calls guarded line acc a) b
  | Ast.Seq (a, _, b) -> calls true line (calls guarded line acc a) b
  | Ast.Call (p, _, _) -> (p, guarded, line) :: acc

let callgraph_pass spec emit =
  let edges =
    List.map
      (fun (p : Ast.process) ->
         (p.Ast.proc_name, calls false (Ast.loc_of p.Ast.body) [] p.Ast.body))
      spec.Ast.processes
  in
  let reachable = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.add reachable name ();
      match List.assoc_opt name edges with
      | Some es -> List.iter (fun (q, _, _) -> visit q) es
      | None -> ()
    end
  in
  List.iter
    (fun (q, _, _) -> visit q)
    (calls false (Ast.loc_of spec.Ast.init) [] spec.Ast.init);
  List.iter
    (fun (p : Ast.process) ->
       if not (Hashtbl.mem reachable p.Ast.proc_name) then
         emit "MVL003" (Ast.loc_of p.Ast.body)
           (Printf.sprintf "process %s is never used (unreachable from init)"
              p.Ast.proc_name))
    spec.Ast.processes;
  let unguarded name =
    match List.assoc_opt name edges with
    | Some es ->
      List.filter_map (fun (q, g, l) -> if g then None else Some (q, l)) es
    | None -> []
  in
  let reaches_unguarded src target =
    let visited = Hashtbl.create 16 in
    let rec go name =
      String.equal name target
      || (not (Hashtbl.mem visited name)
          && begin
            Hashtbl.add visited name ();
            List.exists (fun (q, _) -> go q) (unguarded name)
          end)
    in
    go src
  in
  List.iter
    (fun (p : Ast.process) ->
       let name = p.Ast.proc_name in
       match
         List.find_opt (fun (q, _) -> reaches_unguarded q name) (unguarded name)
       with
       | Some (q, line) ->
         emit "MVL004" line
           (if String.equal q name then
              Printf.sprintf
                "unguarded recursion: process %s calls itself without \
                 performing an action first"
                name
            else
              Printf.sprintf
                "unguarded recursion: process %s can reenter itself (via %s) \
                 without performing an action"
                name q)
       | None -> ())
    spec.Ast.processes

(* ------------------------------------------------------------------ *)
(* Gate usage: MVL005-MVL007, MVL013                                   *)

(* Over-approximation of the visible gates a behaviour may ever offer.
   Process results are stored in terms of each process's own formal
   gates and mapped to actuals at call sites; computed as a fixpoint
   over the (finite) set of gate names appearing in the spec. *)
let rec offered spec sets b =
  match b with
  | Ast.At (_, k) -> offered spec sets k
  | Ast.Stop | Ast.Exit _ -> SS.empty
  | Ast.Prefix (a, k) ->
    let s = offered spec sets k in
    if String.equal a.Ast.gate Ast.tau_gate then s else SS.add a.Ast.gate s
  | Ast.Rate (_, k) | Ast.Guard (_, k) -> offered spec sets k
  | Ast.Choice bs ->
    List.fold_left (fun acc b -> SS.union acc (offered spec sets b)) SS.empty bs
  | Ast.Par (_, a, b) | Ast.Seq (a, _, b) ->
    SS.union (offered spec sets a) (offered spec sets b)
  | Ast.Hide (gs, k) -> SS.diff (offered spec sets k) (SS.of_list gs)
  | Ast.Rename (pairs, k) ->
    SS.map
      (fun g -> match List.assoc_opt g pairs with Some g' -> g' | None -> g)
      (offered spec sets k)
  | Ast.Call (p, gate_args, _) -> (
      match Hashtbl.find_opt sets p with
      | None -> SS.empty
      | Some s -> (
          match Ast.find_process spec p with
          | Some proc when List.length proc.Ast.gates = List.length gate_args
            ->
            let map = List.combine proc.Ast.gates gate_args in
            SS.map
              (fun g ->
                 match List.assoc_opt g map with Some g' -> g' | None -> g)
              s
          | _ -> s))

let offers_fixpoint spec =
  let sets = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.process) -> Hashtbl.replace sets p.Ast.proc_name SS.empty)
    spec.Ast.processes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Ast.process) ->
         let s = offered spec sets p.Ast.body in
         if not (SS.equal s (Hashtbl.find sets p.Ast.proc_name)) then begin
           Hashtbl.replace sets p.Ast.proc_name s;
           changed := true
         end)
      spec.Ast.processes
  done;
  sets

(* Gates appearing syntactically anywhere in [b]. *)
let rec mentioned_gates acc b =
  match b with
  | Ast.At (_, k) -> mentioned_gates acc k
  | Ast.Stop | Ast.Exit _ -> acc
  | Ast.Prefix (a, k) -> mentioned_gates (SS.add a.Ast.gate acc) k
  | Ast.Rate (_, k) | Ast.Guard (_, k) -> mentioned_gates acc k
  | Ast.Choice bs -> List.fold_left mentioned_gates acc bs
  | Ast.Par (sync, a, b) ->
    let acc =
      match sync with
      | Ast.Gates gs -> SS.union acc (SS.of_list gs)
      | Ast.All -> acc
    in
    mentioned_gates (mentioned_gates acc a) b
  | Ast.Hide (gs, k) -> mentioned_gates (SS.union acc (SS.of_list gs)) k
  | Ast.Rename (pairs, k) ->
    let acc =
      List.fold_left (fun acc (o, n) -> SS.add o (SS.add n acc)) acc pairs
    in
    mentioned_gates acc k
  | Ast.Seq (a, _, b) -> mentioned_gates (mentioned_gates acc a) b
  | Ast.Call (_, gate_args, _) -> SS.union acc (SS.of_list gate_args)

let gate_pass spec emit =
  let sets = offers_fixpoint spec in
  let rec walk line b =
    match b with
    | Ast.At (l, k) -> walk (Some l) k
    | Ast.Stop | Ast.Exit _ | Ast.Call _ -> ()
    | Ast.Prefix (_, k) | Ast.Rate (_, k) | Ast.Guard (_, k) -> walk line k
    | Ast.Choice bs -> List.iter (walk line) bs
    | Ast.Par (sync, a, b) ->
      let oa = offered spec sets a and ob = offered spec sets b in
      (match sync with
       | Ast.Gates gs ->
         List.iter
           (fun g ->
              let side s =
                Printf.sprintf
                  "gate %s in the synchronization set is never offered by \
                   the %s operand (rendezvous on %s cannot happen)"
                  g s g
              in
              if not (SS.mem g oa) then emit "MVL005" line (side "left");
              if not (SS.mem g ob) then emit "MVL005" line (side "right"))
           (List.sort_uniq String.compare gs)
       | Ast.All ->
         let one_sided s g =
           Printf.sprintf
             "gate %s is offered only by the %s operand of || (full \
              synchronization: it can never fire)"
             g s
         in
         SS.iter
           (fun g ->
              if not (SS.mem g ob) then emit "MVL005" line (one_sided "left" g))
           oa;
         SS.iter
           (fun g ->
              if not (SS.mem g oa) then
                emit "MVL005" line (one_sided "right" g))
           ob);
      walk line a;
      walk line b
    | Ast.Hide (gs, k) ->
      let o = offered spec sets k in
      List.iter
        (fun g ->
           if not (SS.mem g o) then
             emit "MVL006" line
               (Printf.sprintf "hidden gate %s is never offered" g))
        (List.sort_uniq String.compare gs);
      walk line k
    | Ast.Rename (pairs, k) ->
      let o = offered spec sets k in
      List.iter
        (fun (old_g, new_g) ->
           if not (SS.mem old_g o) then
             emit "MVL007" line
               (Printf.sprintf "renamed gate %s (-> %s) is never offered"
                  old_g new_g))
        pairs;
      walk line k
    | Ast.Seq (a, _, b) ->
      walk line a;
      walk line b
  in
  List.iter
    (fun (p : Ast.process) ->
       walk (Ast.loc_of p.Ast.body) p.Ast.body;
       let used = mentioned_gates SS.empty p.Ast.body in
       List.iter
         (fun g ->
            if not (SS.mem g used) then
              emit "MVL013" (Ast.loc_of p.Ast.body)
                (Printf.sprintf
                   "formal gate %s of process %s is never used in its body" g
                   p.Ast.proc_name))
         p.Ast.gates)
    spec.Ast.processes;
  walk (Ast.loc_of spec.Ast.init) spec.Ast.init

(* ------------------------------------------------------------------ *)
(* Guard folding and interval analysis: MVL008-MVL010                  *)

type av = AInt of int * int | ABool of bool option | AAny

let av_of_ty = function
  | Ty.TBool -> ABool None
  | Ty.TIntRange (lo, hi) -> AInt (lo, hi)
  | Ty.TEnum _ -> AAny

let av_join a b =
  match a, b with
  | AInt (a1, a2), AInt (b1, b2) -> AInt (min a1 b1, max a2 b2)
  | ABool (Some x), ABool (Some y) when x = y -> ABool (Some x)
  | ABool _, ABool _ -> ABool None
  | _ -> AAny

let as_bool = function ABool b -> b | _ -> None

let rec aeval env e =
  match e with
  | Expr.Const (Value.VInt n) -> AInt (n, n)
  | Expr.Const (Value.VBool b) -> ABool (Some b)
  | Expr.Const (Value.VEnum _) -> AAny
  | Expr.Var x -> (
      match List.assoc_opt x env with Some v -> v | None -> AAny)
  | Expr.Unop (`Neg, e) -> (
      match aeval env e with AInt (lo, hi) -> AInt (-hi, -lo) | _ -> AAny)
  | Expr.Unop (`Not, e) -> (
      match as_bool (aeval env e) with
      | Some b -> ABool (Some (not b))
      | None -> ABool None)
  | Expr.If (c, t, f) -> (
      match as_bool (aeval env c) with
      | Some true -> aeval env t
      | Some false -> aeval env f
      | None -> av_join (aeval env t) (aeval env f))
  | Expr.Binop (op, a, b) -> abinop op (aeval env a) (aeval env b)

and abinop op va vb =
  match op with
  | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod -> (
      match va, vb with
      | AInt (a1, a2), AInt (b1, b2) -> (
          match op with
          | Expr.Add -> AInt (a1 + b1, a2 + b2)
          | Expr.Sub -> AInt (a1 - b2, a2 - b1)
          | Expr.Mul ->
            let products = [ a1 * b1; a1 * b2; a2 * b1; a2 * b2 ] in
            AInt
              ( List.fold_left min (List.hd products) products,
                List.fold_left max (List.hd products) products )
          | Expr.Div when a1 = a2 && b1 = b2 && b1 <> 0 ->
            let q = a1 / b1 in
            AInt (q, q)
          | Expr.Mod when a1 = a2 && b1 = b2 && b1 <> 0 ->
            let r = a1 mod b1 in
            AInt (r, r)
          | Expr.Mod when b1 = b2 && b1 > 0 && a1 >= 0 -> AInt (0, b1 - 1)
          | _ -> AAny)
      | _ -> AAny)
  | Expr.Eq | Expr.Ne -> (
      let eq =
        match va, vb with
        | AInt (a1, a2), AInt (b1, b2) ->
          if a1 = a2 && b1 = b2 then Some (a1 = b1)
          else if a2 < b1 || b2 < a1 then Some false
          else None
        | ABool (Some x), ABool (Some y) -> Some (x = y)
        | _ -> None
      in
      match eq with
      | Some r -> ABool (Some (if op = Expr.Eq then r else not r))
      | None -> ABool None)
  | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> (
      match va, vb with
      | AInt (a1, a2), AInt (b1, b2) ->
        ABool
          (match op with
           | Expr.Lt ->
             if a2 < b1 then Some true
             else if a1 >= b2 then Some false
             else None
           | Expr.Le ->
             if a2 <= b1 then Some true
             else if a1 > b2 then Some false
             else None
           | Expr.Gt ->
             if a1 > b2 then Some true
             else if a2 <= b1 then Some false
             else None
           | _ ->
             if a1 >= b2 then Some true
             else if a2 < b1 then Some false
             else None)
      | _ -> ABool None)
  | Expr.And -> (
      match as_bool va, as_bool vb with
      | Some false, _ | _, Some false -> ABool (Some false)
      | Some true, Some true -> ABool (Some true)
      | _ -> ABool None)
  | Expr.Or -> (
      match as_bool va, as_bool vb with
      | Some true, _ | _, Some true -> ABool (Some true)
      | Some false, Some false -> ABool (Some false)
      | _ -> ABool None)

let set_env env x v = (x, v) :: env

(* Narrow the interval of [x] under the assumption [x op n]. *)
let narrow env x op n =
  match List.assoc_opt x env with
  | Some (AInt (lo, hi)) ->
    let lo', hi' =
      match op with
      | Expr.Lt -> (lo, min hi (n - 1))
      | Expr.Le -> (lo, min hi n)
      | Expr.Gt -> (max lo (n + 1), hi)
      | Expr.Ge -> (max lo n, hi)
      | Expr.Eq -> (max lo n, min hi n)
      | _ -> (lo, hi)
    in
    if lo' <= hi' then set_env env x (AInt (lo', hi')) else env
  | _ -> env

let flip_cmp = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | op -> op

(* Refine the environment under the assumption that [e] holds:
   conjunctions of variable-versus-constant comparisons narrow the
   variable's interval. *)
let rec refine env e =
  match e with
  | Expr.Binop (Expr.And, a, b) -> refine (refine env a) b
  | Expr.Binop (op, Expr.Var x, Expr.Const (Value.VInt n)) -> narrow env x op n
  | Expr.Binop (op, Expr.Const (Value.VInt n), Expr.Var x) ->
    narrow env x (flip_cmp op) n
  | Expr.Binop (Expr.Eq, Expr.Var x, Expr.Const (Value.VBool b))
  | Expr.Binop (Expr.Eq, Expr.Const (Value.VBool b), Expr.Var x) ->
    set_env env x (ABool (Some b))
  | _ -> env

let value_pass spec emit =
  let rec walk env line b =
    match b with
    | Ast.At (l, k) -> walk env (Some l) k
    | Ast.Stop | Ast.Exit _ -> ()
    | Ast.Prefix (a, k) ->
      let env =
        List.fold_left
          (fun env o ->
             match o with
             | Ast.Receive (x, ty) -> set_env env x (av_of_ty ty)
             | Ast.Send _ -> env)
          env a.Ast.offers
      in
      walk env line k
    | Ast.Rate (_, k) | Ast.Hide (_, k) | Ast.Rename (_, k) -> walk env line k
    | Ast.Choice bs -> List.iter (walk env line) bs
    | Ast.Guard (e, k) -> (
        match as_bool (aeval env e) with
        | Some false -> emit "MVL008" line "guard is always false (the branch is dead)"
        | Some true ->
          emit "MVL009" line "guard is always true (redundant)";
          walk env line k
        | None -> walk (refine env e) line k)
    | Ast.Par (_, a, b) | Ast.Seq (a, [], b) ->
      walk env line a;
      walk env line b
    | Ast.Seq (a, accepts, b) ->
      walk env line a;
      let env' =
        List.fold_left
          (fun env (x, ty) -> set_env env x (av_of_ty ty))
          env accepts
      in
      walk env' line b
    | Ast.Call (p, _, args) -> (
        match Ast.find_process spec p with
        | Some proc when List.length proc.Ast.params = List.length args ->
          List.iter2
            (fun (pname, ty) arg ->
               match ty with
               | Ty.TIntRange (lo, hi) -> (
                   match aeval env arg with
                   | AInt (alo, ahi) when ahi < lo || alo > hi ->
                     emit "MVL010" line
                       (Printf.sprintf
                          "argument %s of call to %s is always out of range: \
                           its value lies in [%d..%d] but the parameter is \
                           declared int[%d..%d]"
                          pname p alo ahi lo hi)
                   | _ -> ())
               | _ -> ())
            proc.Ast.params args
        | _ -> ())
  in
  List.iter
    (fun (p : Ast.process) ->
       let env = List.map (fun (x, ty) -> (x, av_of_ty ty)) p.Ast.params in
       walk env (Ast.loc_of p.Ast.body) p.Ast.body)
    spec.Ast.processes;
  walk [] (Ast.loc_of spec.Ast.init) spec.Ast.init

(* ------------------------------------------------------------------ *)
(* Stochastic well-formedness: MVL011 (rate race), MVL012 (blowup)     *)

type initials = {
  i_rate : bool;
  i_tau : bool;
  i_exit : bool;
  i_gates : SS.t;
}

let i_bot = { i_rate = false; i_tau = false; i_exit = false; i_gates = SS.empty }

let i_join a b =
  {
    i_rate = a.i_rate || b.i_rate;
    i_tau = a.i_tau || b.i_tau;
    i_exit = a.i_exit || b.i_exit;
    i_gates = SS.union a.i_gates b.i_gates;
  }

let i_equal a b =
  a.i_rate = b.i_rate && a.i_tau = b.i_tau && a.i_exit = b.i_exit
  && SS.equal a.i_gates b.i_gates

(* Over-approximation of what a behaviour can do first: a Markovian
   delay, an internal step, an exit, or a visible gate. *)
let rec initials spec sets b =
  match b with
  | Ast.At (_, k) -> initials spec sets k
  | Ast.Stop -> i_bot
  | Ast.Exit _ -> { i_bot with i_exit = true }
  | Ast.Prefix (a, _) ->
    if String.equal a.Ast.gate Ast.tau_gate then { i_bot with i_tau = true }
    else { i_bot with i_gates = SS.singleton a.Ast.gate }
  | Ast.Rate _ -> { i_bot with i_rate = true }
  | Ast.Choice bs ->
    List.fold_left (fun acc b -> i_join acc (initials spec sets b)) i_bot bs
  | Ast.Guard (_, k) -> initials spec sets k
  | Ast.Par (sync, a, b) ->
    let ia = initials spec sets a and ib = initials spec sets b in
    let gates =
      match sync with
      | Ast.Gates gs ->
        let gset = SS.of_list gs in
        SS.union
          (SS.union (SS.diff ia.i_gates gset) (SS.diff ib.i_gates gset))
          (SS.inter gset (SS.inter ia.i_gates ib.i_gates))
      | Ast.All -> SS.inter ia.i_gates ib.i_gates
    in
    {
      i_rate = ia.i_rate || ib.i_rate;
      i_tau = ia.i_tau || ib.i_tau;
      i_exit = ia.i_exit && ib.i_exit;
      i_gates = gates;
    }
  | Ast.Hide (gs, k) ->
    let i = initials spec sets k in
    let gset = SS.of_list gs in
    {
      i with
      i_gates = SS.diff i.i_gates gset;
      i_tau = i.i_tau || not (SS.is_empty (SS.inter i.i_gates gset));
    }
  | Ast.Rename (pairs, k) ->
    let i = initials spec sets k in
    {
      i with
      i_gates =
        SS.map
          (fun g ->
             match List.assoc_opt g pairs with Some g' -> g' | None -> g)
          i.i_gates;
    }
  | Ast.Seq (a, _, _) ->
    let i = initials spec sets a in
    { i with i_exit = false; i_tau = i.i_tau || i.i_exit }
  | Ast.Call (p, gate_args, _) -> (
      match Hashtbl.find_opt sets p with
      | None -> i_bot
      | Some i -> (
          match Ast.find_process spec p with
          | Some proc when List.length proc.Ast.gates = List.length gate_args
            ->
            let map = List.combine proc.Ast.gates gate_args in
            {
              i with
              i_gates =
                SS.map
                  (fun g ->
                     match List.assoc_opt g map with
                     | Some g' -> g'
                     | None -> g)
                  i.i_gates;
            }
          | _ -> i))

let initials_fixpoint spec =
  let sets = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.process) -> Hashtbl.replace sets p.Ast.proc_name i_bot)
    spec.Ast.processes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Ast.process) ->
         let i = initials spec sets p.Ast.body in
         if not (i_equal i (Hashtbl.find sets p.Ast.proc_name)) then begin
           Hashtbl.replace sets p.Ast.proc_name i;
           changed := true
         end)
      spec.Ast.processes
  done;
  sets

let stochastic_pass config spec emit =
  let sets = initials_fixpoint spec in
  let rec walk line b =
    match b with
    | Ast.At (l, k) -> walk (Some l) k
    | Ast.Stop | Ast.Exit _ | Ast.Call _ -> ()
    | Ast.Prefix (_, k) | Ast.Rate (_, k) | Ast.Guard (_, k)
    | Ast.Hide (_, k) | Ast.Rename (_, k) ->
      walk line k
    | Ast.Par (_, a, b) | Ast.Seq (a, _, b) ->
      walk line a;
      walk line b
    | Ast.Choice bs ->
      let is = List.mapi (fun i b -> (i, initials spec sets b)) bs in
      let race =
        List.exists
          (fun (i, ii) ->
             ii.i_rate
             && List.exists
                  (fun (j, ij) -> j <> i && not (SS.is_empty ij.i_gates))
                  is)
          is
      in
      if race then
        emit "MVL011" line
          "a Markovian delay races a visible action in this choice (after \
           hiding, maximal progress can prune the delayed branch)";
      List.iter (walk line) bs
  in
  List.iter
    (fun (p : Ast.process) -> walk (Ast.loc_of p.Ast.body) p.Ast.body)
    spec.Ast.processes;
  walk (Ast.loc_of spec.Ast.init) spec.Ast.init;
  (* Phase blowup: phases of independent components multiply in the
     CTMC, so estimate one factor per parallel leaf of init — the
     syntactic rate prefixes reachable from the leaf, plus one for the
     phase-free state. *)
  let rec leaves b =
    match b with
    | Ast.At (_, k) | Ast.Hide (_, k) | Ast.Rename (_, k) -> leaves k
    | Ast.Par (_, a, b) -> leaves a @ leaves b
    | b -> [ b ]
  in
  let rec rate_nodes b =
    match b with
    | Ast.At (_, k) | Ast.Prefix (_, k) | Ast.Guard (_, k)
    | Ast.Hide (_, k) | Ast.Rename (_, k) ->
      rate_nodes k
    | Ast.Rate (_, k) -> 1 + rate_nodes k
    | Ast.Stop | Ast.Exit _ | Ast.Call _ -> 0
    | Ast.Choice bs -> List.fold_left (fun acc b -> acc + rate_nodes b) 0 bs
    | Ast.Par (_, a, b) | Ast.Seq (a, _, b) -> rate_nodes a + rate_nodes b
  in
  let leaf_estimate leaf =
    let seen = Hashtbl.create 8 in
    let rec visit_behavior b =
      List.iter (fun (q, _, _) -> visit q) (calls false None [] b)
    and visit name =
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        match Ast.find_process spec name with
        | Some proc -> visit_behavior proc.Ast.body
        | None -> ()
      end
    in
    visit_behavior leaf;
    let n =
      Hashtbl.fold
        (fun name () acc ->
           match Ast.find_process spec name with
           | Some proc -> acc + rate_nodes proc.Ast.body
           | None -> acc)
        seen (rate_nodes leaf)
    in
    n + 1
  in
  let estimates = List.map leaf_estimate (leaves spec.Ast.init) in
  let product =
    List.fold_left
      (fun acc n -> if acc > max_int / max n 1 then max_int else acc * n)
      1 estimates
  in
  if product > config.max_phase_product then
    emit "MVL012" (Ast.loc_of spec.Ast.init)
      (Printf.sprintf
         "phase-type expansion estimate %s exceeds the limit %d (Markovian \
          phases multiply across the %d parallel components of init; raise \
          the limit if this is intended)"
         (if product = max_int then "more than 10^18"
          else string_of_int product)
         config.max_phase_product (List.length estimates))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let check ?(config = default_config) spec =
  let acc = ref [] in
  let emit code line message =
    let severity =
      match find_rule code with
      | Some r -> r.default_severity
      | None -> Diagnostic.Warning
    in
    acc := { Diagnostic.code; severity; line; message } :: !acc
  in
  List.iter
    (fun (p : Typecheck.problem) ->
       emit p.Typecheck.code p.Typecheck.line p.Typecheck.message)
    (Typecheck.problems spec);
  (* The analyses are best-effort on ill-formed specs: any internal
     failure is dropped rather than aborting the report. *)
  let safely f = try f () with _ -> () in
  safely (fun () -> callgraph_pass spec emit);
  safely (fun () -> gate_pass spec emit);
  safely (fun () -> value_pass spec emit);
  safely (fun () -> stochastic_pass config spec emit);
  List.stable_sort Diagnostic.compare (apply_overrides config (List.rev !acc))

let check_text ?(config = default_config) text =
  let located = Parser.spec_of_string_located text in
  match Typecheck.resolve_spec located with
  | spec -> check ~config spec
  | exception Typecheck.Type_error msg ->
    apply_overrides config
      [
        {
          Diagnostic.code = Typecheck.code_type;
          severity = Diagnostic.Error;
          line = None;
          message = msg;
        };
      ]

let has_errors ds =
  List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Error) ds

let exit_code ?(config = default_config) ds =
  let errors, warnings, _ = Diagnostic.counts ds in
  if errors > 0 then 2 else if config.werror && warnings > 0 then 1 else 0
