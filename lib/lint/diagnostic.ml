type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  line : int option;
  message : string;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match a.line, b.line with
  | None, Some _ -> -1
  | Some _, None -> 1
  | la, lb ->
    let c = Stdlib.compare la lb in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message

let render ?file d =
  let prefix =
    match file, d.line with
    | Some f, Some l -> Printf.sprintf "%s:%d: " f l
    | Some f, None -> Printf.sprintf "%s: " f
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  Printf.sprintf "%s%s %s: %s" prefix (severity_name d.severity) d.code
    d.message

let pp fmt d = Format.pp_print_string fmt (render d)

let counts ds =
  List.fold_left
    (fun (e, w, i) d ->
       match d.severity with
       | Error -> (e + 1, w, i)
       | Warning -> (e, w + 1, i)
       | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let summary ds =
  let e, w, i = counts ds in
  Printf.sprintf "%d error(s), %d warning(s), %d info(s)" e w i

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

(* Diagnostics travel as a plain JSON array of flat objects, built on
   the shared {!Mv_obs.Json} tree so the lint renderer and the
   observability exporters agree on one interchange format. *)

module Json = Mv_obs.Json

exception Json_error of string

let json_of_diagnostic d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_name d.severity));
      ("line", match d.line with Some l -> Json.Int l | None -> Json.Null);
      ("message", Json.String d.message);
    ]

let to_json ds = Json.to_string (Json.List (List.map json_of_diagnostic ds))

let diagnostic_of_json item =
  let field obj name =
    match Json.member name obj with
    | Some v -> v
    | None -> raise (Json_error ("missing field " ^ name))
  in
  match item with
  | Json.Obj _ ->
    let code =
      match field item "code" with
      | Json.String s -> s
      | _ -> raise (Json_error "code must be a string")
    in
    let severity =
      match field item "severity" with
      | Json.String s -> (
          match severity_of_name s with
          | Some sev -> sev
          | None -> raise (Json_error ("unknown severity " ^ s)))
      | _ -> raise (Json_error "severity must be a string")
    in
    let line =
      match field item "line" with
      | Json.Int l -> Some l
      | Json.Null -> None
      | _ -> raise (Json_error "line must be an integer or null")
    in
    let message =
      match field item "message" with
      | Json.String s -> s
      | _ -> raise (Json_error "message must be a string")
    in
    { code; severity; line; message }
  | _ -> raise (Json_error "expected an array of objects")

let of_json text =
  let v =
    try Json.of_string text
    with Json.Parse_error m -> raise (Json_error m)
  in
  match v with
  | Json.List items -> List.map diagnostic_of_json items
  | _ -> raise (Json_error "expected a JSON array")
