type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  line : int option;
  message : string;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match a.line, b.line with
  | None, Some _ -> -1
  | Some _, None -> 1
  | la, lb ->
    let c = Stdlib.compare la lb in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message

let render ?file d =
  let prefix =
    match file, d.line with
    | Some f, Some l -> Printf.sprintf "%s:%d: " f l
    | Some f, None -> Printf.sprintf "%s: " f
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  Printf.sprintf "%s%s %s: %s" prefix (severity_name d.severity) d.code
    d.message

let pp fmt d = Format.pp_print_string fmt (render d)

let counts ds =
  List.fold_left
    (fun (e, w, i) d ->
       match d.severity with
       | Error -> (e + 1, w, i)
       | Warning -> (e, w + 1, i)
       | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let summary ds =
  let e, w, i = counts ds in
  Printf.sprintf "%d error(s), %d warning(s), %d info(s)" e w i

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

(* The output is a plain JSON array of flat objects; the reader below
   parses exactly that subset (arrays, objects, strings, integers,
   null), which keeps the renderer round-trippable without pulling a
   JSON dependency into the toolchain. *)

let escape_string s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buffer "\\\""
       | '\\' -> Buffer.add_string buffer "\\\\"
       | '\n' -> Buffer.add_string buffer "\\n"
       | '\t' -> Buffer.add_string buffer "\\t"
       | '\r' -> Buffer.add_string buffer "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_json ds =
  let item d =
    Printf.sprintf
      "  {\"code\": \"%s\", \"severity\": \"%s\", \"line\": %s, \"message\": \
       \"%s\"}"
      (escape_string d.code)
      (severity_name d.severity)
      (match d.line with Some l -> string_of_int l | None -> "null")
      (escape_string d.message)
  in
  if ds = [] then "[]\n"
  else "[\n" ^ String.concat ",\n" (List.map item ds) ^ "\n]\n"

exception Json_error of string

type json =
  | JString of string
  | JInt of int
  | JNull
  | JList of json list
  | JObject of (string * json) list

let parse_json text =
  let pos = ref 0 in
  let len = String.length text in
  let failf fmt = Printf.ksprintf (fun m -> raise (Json_error m)) fmt in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> failf "expected %c, found %c at offset %d" c c' !pos
    | None -> failf "expected %c, found end of input" c
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else failf "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> failf "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'n' -> Buffer.add_char buffer '\n'; advance ()
         | Some 't' -> Buffer.add_char buffer '\t'; advance ()
         | Some 'r' -> Buffer.add_char buffer '\r'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > len then failf "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub text !pos 4) in
           pos := !pos + 4;
           (* BMP-only: enough for the control characters we emit *)
           if code < 0x80 then Buffer.add_char buffer (Char.chr code)
           else Buffer.add_char buffer '?'
         | Some c -> Buffer.add_char buffer c; advance ()
         | None -> failf "unterminated escape");
        loop ()
      | Some c -> Buffer.add_char buffer c; advance (); loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> JString (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); JList [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> failf "expected , or ] at offset %d" !pos
        in
        JList (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); JObject [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((key, v) :: acc)
          | Some '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> failf "expected , or } at offset %d" !pos
        in
        JObject (fields [])
      end
    | Some 'n' -> literal "null" JNull
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      if peek () = Some '-' then advance ();
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      JInt (int_of_string (String.sub text start (!pos - start)))
    | Some c -> failf "unexpected character %c at offset %d" c !pos
    | None -> failf "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then failf "trailing input at offset %d" !pos;
  v

let of_json text =
  let field obj name =
    match List.assoc_opt name obj with
    | Some v -> v
    | None -> raise (Json_error ("missing field " ^ name))
  in
  match parse_json text with
  | JList items ->
    List.map
      (function
        | JObject obj ->
          let code =
            match field obj "code" with
            | JString s -> s
            | _ -> raise (Json_error "code must be a string")
          in
          let severity =
            match field obj "severity" with
            | JString s -> (
                match severity_of_name s with
                | Some sev -> sev
                | None -> raise (Json_error ("unknown severity " ^ s)))
            | _ -> raise (Json_error "severity must be a string")
          in
          let line =
            match field obj "line" with
            | JInt l -> Some l
            | JNull -> None
            | _ -> raise (Json_error "line must be an integer or null")
          in
          let message =
            match field obj "message" with
            | JString s -> s
            | _ -> raise (Json_error "message must be a string")
          in
          { code; severity; line; message }
        | _ -> raise (Json_error "expected an array of objects"))
      items
  | _ -> raise (Json_error "expected a JSON array")
