(** Static analysis of MVL specifications.

    Beyond the well-formedness checks of {!Mv_calc.Typecheck} (reported
    here with their stable codes), the linter runs four analyses:

    - {b call graph}: processes unreachable from [init] (MVL003) and
      recursion with no intervening action (MVL004);
    - {b gate usage}: synchronization-set gates one operand can never
      offer (MVL005), hides and renames of gates that are never offered
      (MVL006, MVL007), and formal gates a process never uses (MVL013);
    - {b value analysis}: interval analysis over integer parameters and
      constant folding over guards — statically false or true guards
      (MVL008, MVL009) and process arguments guaranteed outside the
      declared range (MVL010);
    - {b stochastic well-formedness}: Markovian delays racing visible
      actions in a choice (MVL011) and an estimate of the phase-type
      expansion size across parallel components (MVL012).

    All analyses over-approximate behaviour and never fail: linting an
    ill-formed specification degrades to reporting the typechecker's
    problems. Diagnostics carry source lines when the spec was parsed
    with the located entry points ({!Mv_calc.Parser.spec_of_string_located},
    or {!check_text} which uses them). *)

(** One lint rule: stable code, severity used unless overridden, and a
    one-line description (shown by [mval lint --help] and the rule
    catalogue in [doc/lint.md]). *)
type rule = {
  code : string;
  default_severity : Diagnostic.severity;
  title : string;
}

(** The rule registry, in code order. *)
val rules : rule list

val find_rule : string -> rule option

type config = {
  max_phase_product : int;
      (** MVL012 threshold on the estimated number of phase
          combinations (default 1024) *)
  overrides : (string * Diagnostic.severity option) list;
      (** per-code severity overrides; [None] drops the code entirely *)
  werror : bool;  (** warnings fail {!exit_code} (policy only: severity
                      labels are unchanged) *)
}

val default_config : config

(** Parse a [-W] argument of the form [CODE=error|warning|info|ignore].
    [None] if the argument is malformed. *)
val parse_override : string -> (string * Diagnostic.severity option) option

(** Lint a resolved specification (see {!Mv_calc.Typecheck.resolve_spec}).
    Returns every diagnostic found, sorted by source line. *)
val check : ?config:config -> Mv_calc.Ast.spec -> Diagnostic.t list

(** Parse (with locations), resolve, and lint. A resolution failure is
    reported as a single MVL001 error; parse errors propagate as
    {!Mv_calc.Parser.Parse_error}. *)
val check_text : ?config:config -> string -> Diagnostic.t list

val has_errors : Diagnostic.t list -> bool

(** Exit-code policy of [mval lint]: [2] if any error, [1] if
    [config.werror] and any warning, [0] otherwise. *)
val exit_code : ?config:config -> Diagnostic.t list -> int
