module Imc = Mv_imc.Imc
module Label = Mv_lts.Label
module Rng = Mv_util.Rng
module Obs = Mv_obs.Obs

type stats = { mean : float; stddev : float; replications : int }

(* One simulation step from [state]: immediate interactive transitions
   (uniform choice) pre-empt Markovian races. Returns the next state,
   the elapsed time, and the visible action crossed (if any); [None]
   when the state is absorbing. *)
let step imc rng state =
  match Imc.interactive_out imc state with
  | [] -> (
      match Imc.markovian_out imc state with
      | [] -> None
      | markovian ->
        let total = List.fold_left (fun acc (r, _) -> acc +. r) 0.0 markovian in
        let delay = Rng.exponential rng ~rate:total in
        (* choose the winning transition proportionally to its rate *)
        let u = Rng.float rng *. total in
        let rec pick acc = function
          | [] -> assert false
          | [ (_, d) ] -> d
          | (r, d) :: rest -> if u < acc +. r then d else pick (acc +. r) rest
        in
        Some (pick 0.0 markovian, delay, None))
  | choices ->
    let index = Rng.int rng (List.length choices) in
    let label, dst = List.nth choices index in
    let action =
      if label = Label.tau then None
      else Some (Label.name (Imc.labels imc) label)
    in
    Some (dst, 0.0, action)

let throughput_rng imc ~action ~horizon rng =
  let events = ref 0 in
  let rec run state time count =
    if time >= horizon then count
    else
      match step imc rng state with
      | None -> count
      | Some (next, delay, crossed) ->
        incr events;
        let count = if crossed = Some action then count + 1 else count in
        run next (time +. delay) count
  in
  let crossings = run (Imc.initial imc) 0.0 0 in
  Obs.add (Obs.counter "des.events") !events;
  float_of_int crossings /. horizon

let throughput imc ~action ~horizon ~seed =
  throughput_rng imc ~action ~horizon (Rng.create seed)

let statistics samples =
  let replications = Array.length samples in
  let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int replications in
  let variance =
    if replications < 2 then 0.0
    else
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
      /. float_of_int (replications - 1)
  in
  { mean; stddev = sqrt variance; replications }

(* Replications draw from split RNG streams (one independent stream
   per replication, all derived from [seed]), so each sample depends
   only on its own stream: running them on a pool gives bit-identical
   statistics to the sequential loop, for any pool size. *)
let run_replications ?pool ~replications ~seed sample =
  Obs.span "des.replications" @@ fun () ->
  let rngs = Mv_par.Streams.replications ~seed replications in
  let samples = Array.make replications 0.0 in
  let wall = Array.make replications 0.0 in
  let completed = Atomic.make 0 in
  let run_one =
    if Obs.is_enabled () || Obs.progress_enabled () then (fun i ->
      let t0 = Obs.Clock.now_ns () in
      samples.(i) <- sample rngs.(i);
      wall.(i) <- Obs.Clock.elapsed_s t0;
      let k = 1 + Atomic.fetch_and_add completed 1 in
      Obs.progress (fun () ->
          Printf.sprintf "sim: %d/%d replication(s)" k replications))
    else fun i -> samples.(i) <- sample rngs.(i)
  in
  (match pool with
   | Some pool when Mv_par.Pool.size pool > 1 && replications > 1 ->
     Mv_par.Pool.for_ ~pool ~lo:0 ~hi:replications run_one
   | _ ->
     for i = 0 to replications - 1 do
       run_one i
     done);
  Obs.add (Obs.counter "des.replications") replications;
  (* pushed in replication order after the (possibly parallel) run, so
     the series layout does not depend on scheduling *)
  let timings = Obs.series "des.replication_s" in
  Array.iter (fun dt -> Obs.push timings dt) wall;
  statistics samples

let throughput_stats ?pool imc ~action ~horizon ~replications ~seed =
  if replications <= 0 then invalid_arg "Des.throughput_stats: replications";
  run_replications ?pool ~replications ~seed (fun rng ->
      throughput_rng imc ~action ~horizon rng)

let mean_first_passage ?pool ?(max_time = 1e6) imc ~targets ~replications ~seed
    =
  if replications <= 0 then invalid_arg "Des.mean_first_passage: replications";
  let one_replication rng =
    let events = ref 0 in
    let rec run state time =
      if targets state then time
      else if time >= max_time then max_time
      else
        match step imc rng state with
        | None -> max_time
        | Some (next, delay, _) ->
          incr events;
          run next (time +. delay)
    in
    let passage = run (Imc.initial imc) 0.0 in
    Obs.add (Obs.counter "des.events") !events;
    passage
  in
  run_replications ?pool ~replications ~seed one_replication

let occupancy imc ~reward ~horizon ~seed =
  let rng = Rng.create seed in
  let rec run state time acc =
    if time >= horizon then acc
    else
      match step imc rng state with
      | None ->
        (* absorbing: the current reward holds for the remaining time *)
        acc +. ((horizon -. time) *. reward state)
      | Some (next, delay, _) ->
        let slice = min delay (horizon -. time) in
        run next (time +. delay) (acc +. (slice *. reward state))
  in
  run (Imc.initial imc) 0.0 0.0 /. horizon
