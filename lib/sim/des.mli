(** Discrete-event simulation of IMCs.

    The paper's flow solves Markov chains numerically; this simulator
    provides an independent estimate of the same measures (throughput,
    first-passage latency, occupancy) so that the numerical pipeline
    can be cross-validated. Interactive transitions are immediate and
    chosen uniformly at random; Markovian transitions race with
    exponential delays. Deterministic given the seed. *)

type stats = {
  mean : float;
  stddev : float; (** sample standard deviation across replications *)
  replications : int;
}

(** [throughput imc ~action ~horizon ~seed] counts occurrences of
    visible action [action] on one trajectory of duration [horizon]
    and divides by the elapsed time. The trajectory stops early in an
    absorbing state (count is then divided by the full horizon). *)
val throughput : Mv_imc.Imc.t -> action:string -> horizon:float -> seed:int64 -> float

(** [throughput_stats imc ~action ~horizon ~replications ~seed] runs
    independent replications of {!throughput} (each on its own RNG
    stream split from [seed]) and reports their mean and sample
    standard deviation (use [1.96 *. stddev /. sqrt replications] for
    a ~95% confidence half-width). With a [pool], replications run in
    parallel; the statistics are bit-identical to the sequential
    run. *)
val throughput_stats :
  ?pool:Mv_par.Pool.t ->
  Mv_imc.Imc.t ->
  action:string ->
  horizon:float ->
  replications:int ->
  seed:int64 ->
  stats

(** [mean_first_passage imc ~targets ~replications ~seed] averages the
    time to first enter a state satisfying [targets] (predicate on IMC
    states) over independent replications (one split RNG stream each),
    restarting from the initial state. [max_time] (default [1e6])
    aborts a replication (counted at the bound). [pool] parallelizes
    the replications without changing the statistics. *)
val mean_first_passage :
  ?pool:Mv_par.Pool.t ->
  ?max_time:float ->
  Mv_imc.Imc.t ->
  targets:(int -> bool) ->
  replications:int ->
  seed:int64 ->
  stats

(** [occupancy imc ~reward ~horizon ~seed] is the time average of
    [reward state] along one trajectory of duration [horizon]. *)
val occupancy : Mv_imc.Imc.t -> reward:(int -> float) -> horizon:float -> seed:int64 -> float
