let float_cell v =
  if v <> v then "nan"
  else if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else Printf.sprintf "%.4g" v

let percent_cell v = Printf.sprintf "%.2f%%" (100.0 *. v)

let csv_dir = ref None

let set_csv_dir dir = csv_dir := dir

let slug title =
  let buffer = Buffer.create (String.length title) in
  String.iter
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buffer (Char.lowercase_ascii c)
       | ' ' | '-' | '_' | '/' ->
         if Buffer.length buffer > 0 && Buffer.nth buffer (Buffer.length buffer - 1) <> '-'
         then Buffer.add_char buffer '-'
       | _ -> ())
    title;
  let s = Buffer.contents buffer in
  let s = if String.length s > 60 then String.sub s 0 60 else s in
  if s = "" then "table" else s

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~title ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (slug title ^ ".csv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
         List.iter
           (fun row ->
              output_string oc (String.concat "," (List.map csv_escape row));
              output_char oc '\n')
           (header :: rows))

let headline ~title items =
  if items <> [] then begin
    let width =
      List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 items
    in
    print_newline ();
    print_endline ("== " ^ title);
    List.iter
      (fun (key, value) ->
         Printf.printf "  %s%s  %s\n" key
           (String.make (width - String.length key) ' ')
           value)
      items
  end

let table ~title ~header rows =
  List.iter
    (fun row ->
       if List.length row <> List.length header then
         invalid_arg "Report.table: row arity mismatch")
    rows;
  let all = header :: rows in
  let arity = List.length header in
  let widths =
    List.init arity (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  let print_row cells =
    let padded =
      List.mapi
        (fun i cell -> cell ^ String.make (List.nth widths i - String.length cell) ' ')
        cells
    in
    print_endline ("| " ^ String.concat " | " padded ^ " |")
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  write_csv ~title ~header rows;
  print_newline ();
  print_endline ("== " ^ title);
  print_endline rule;
  print_row header;
  print_endline rule;
  List.iter print_row rows;
  print_endline rule
