type t = {
  states_limit : int option;
  wall_s : float option;
  started_ns : int64;
}

type violation = { resource : string; message : string }

exception Exceeded of violation

let create ?max_states ?wall_s () =
  {
    states_limit = max_states;
    wall_s;
    started_ns = Mv_obs.Obs.Clock.now_ns ();
  }

let max_states t = t.states_limit
let elapsed_s t = Mv_obs.Obs.Clock.elapsed_s t.started_ns

let exceeded resource message = raise (Exceeded { resource; message })

let tick t =
  match t.wall_s with
  | Some limit ->
    let elapsed = elapsed_s t in
    if elapsed > limit then
      exceeded "wall"
        (Printf.sprintf "%.3fs elapsed exceeds the %gs wall-time budget"
           elapsed limit)
  | None -> ()

let check t ~states =
  tick t;
  match t.states_limit with
  | Some limit when states > limit ->
    exceeded "states"
      (Printf.sprintf "%d states exceed the %d-state budget" states limit)
  | Some _ | None -> ()
