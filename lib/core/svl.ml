module Lex = Mv_util.Lexing_util
module Lts = Mv_lts.Lts
module Mvb = Mv_store.Mvb
module Cache = Mv_store.Cache
module Json = Mv_obs.Json

type cache_use = { hits : int; misses : int }

type outcome =
  | Passed of { artifacts : string list; cache : cache_use option }
  | Failed_check
  | Hard_error of string

type step = { description : string; outcome : outcome; detail : string }

let ok step =
  match step.outcome with
  | Passed _ -> true
  | Failed_check | Hard_error _ -> false

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Abstract syntax                                                     *)

type statement =
  | Generate of { target : string; source : string; hide : string list }
  | Reduction of {
      target : string;
      equivalence : Flow.equivalence;
      source : string;
    }
  | Composition of { target : string; left : string; gates : string list; right : string }
  | Hide of { target : string; gates : string list; source : string }
  | Check of { formula : [ `Deadlock | `Formula of string ]; source : string }
  | Compare of { left : string; right : string; equivalence : Flow.equivalence }
  | Solve of { source : string; keep : string list }
  | Expect_throughput of {
      source : string;
      gate : string;
      lo : float;
      hi : float;
    }

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let symbols = [ "|["; "]|"; "=="; "="; ";"; "," ]

let parse_equivalence lex =
  match Lex.next lex with
  | Lex.Ident "strong" -> Flow.Strong
  | Lex.Ident "branching" -> Flow.Branching
  | Lex.Ident "divbranching" -> Flow.Divbranching
  | Lex.Ident "weak" -> Flow.Weak
  | Lex.Ident "traces" -> Flow.Traces
  | _ -> Lex.error lex "expected an equivalence name"

let expect_string lex what =
  match Lex.next lex with
  | Lex.Str s -> s
  | _ -> Lex.error lex ("expected a quoted " ^ what)

let expect_keyword lex kw =
  match Lex.next lex with
  | Lex.Ident k when k = kw -> ()
  | _ -> Lex.error lex (Printf.sprintf "expected '%s'" kw)

let parse_gate_list lex =
  let rec loop acc =
    let g = Lex.expect_ident lex in
    if Lex.eat lex "," then loop (g :: acc) else List.rev (g :: acc)
  in
  loop []

let parse_statement lex =
  match Lex.peek lex with
  | Lex.Str target -> (
      ignore (Lex.next lex);
      Lex.expect lex "=";
      match Lex.next lex with
      | Lex.Ident "generate" ->
        let source = expect_string lex "model file" in
        let hide =
          match Lex.peek lex with
          | Lex.Ident "hide" ->
            ignore (Lex.next lex);
            parse_gate_list lex
          | _ -> []
        in
        Generate { target; source; hide }
      | Lex.Ident "composition" ->
        expect_keyword lex "of";
        let left = expect_string lex "model file" in
        Lex.expect lex "|[";
        let gates = parse_gate_list lex in
        Lex.expect lex "]|";
        let right = expect_string lex "model file" in
        Composition { target; left; gates; right }
      | Lex.Ident "hide" ->
        let gates = parse_gate_list lex in
        expect_keyword lex "in";
        let source = expect_string lex "model file" in
        Hide { target; gates; source }
      | Lex.Ident eq
        when List.mem eq [ "strong"; "branching"; "divbranching"; "weak"; "traces" ]
        ->
        let equivalence =
          match eq with
          | "strong" -> Flow.Strong
          | "branching" -> Flow.Branching
          | "divbranching" -> Flow.Divbranching
          | "weak" -> Flow.Weak
          | _ -> Flow.Traces
        in
        expect_keyword lex "reduction";
        expect_keyword lex "of";
        let source = expect_string lex "model file" in
        Reduction { target; equivalence; source }
      | _ -> Lex.error lex "expected generate/reduction/composition/hide")
  | Lex.Ident "check" ->
    ignore (Lex.next lex);
    let formula =
      match Lex.next lex with
      | Lex.Ident "deadlock" -> `Deadlock
      | Lex.Str text -> `Formula text
      | _ -> Lex.error lex "expected 'deadlock' or a quoted formula"
    in
    expect_keyword lex "of";
    let source = expect_string lex "model file" in
    Check { formula; source }
  | Lex.Ident "compare" ->
    ignore (Lex.next lex);
    let left = expect_string lex "model file" in
    Lex.expect lex "==";
    let right = expect_string lex "model file" in
    expect_keyword lex "modulo";
    let equivalence = parse_equivalence lex in
    Compare { left; right; equivalence }
  | Lex.Ident "expect" ->
    ignore (Lex.next lex);
    expect_keyword lex "throughput";
    let gate = Lex.expect_ident lex in
    expect_keyword lex "of";
    let source = expect_string lex "model file" in
    expect_keyword lex "in";
    Lex.expect lex "[";
    let number () =
      match Lex.next lex with
      | Lex.Float f -> f
      | Lex.Int n -> float_of_int n
      | _ -> Lex.error lex "expected a number"
    in
    let lo = number () in
    Lex.expect lex ",";
    let hi = number () in
    Lex.expect lex "]";
    Expect_throughput { source; gate; lo; hi }
  | Lex.Ident "solve" ->
    ignore (Lex.next lex);
    let source = expect_string lex "model file" in
    expect_keyword lex "keep";
    let keep = parse_gate_list lex in
    Solve { source; keep }
  | _ -> Lex.error lex "expected a statement"

let parse_script text =
  let lex = Lex.make ~symbols text in
  let rec loop acc =
    match Lex.peek lex with
    | Lex.Eof -> List.rev acc
    | _ ->
      let stmt = parse_statement lex in
      Lex.expect lex ";";
      loop (stmt :: acc)
  in
  try loop [] with Lex.Lex_error msg -> raise (Parse_error msg)

(* Every statement's description, available even when executing it
   fails — a hard error is reported against the real statement, not a
   generic "script step". *)
let describe = function
  | Generate { target; source; _ } ->
    Printf.sprintf "%S = generate %S" target source
  | Reduction { target; equivalence; source } ->
    Printf.sprintf "%S = %s reduction of %S" target
      (Flow.equivalence_name equivalence) source
  | Composition { target; left; gates; right } ->
    Printf.sprintf "%S = composition of %S |[%s]| %S" target left
      (String.concat "," gates) right
  | Hide { target; gates; source } ->
    Printf.sprintf "%S = hide %s in %S" target (String.concat "," gates) source
  | Check { formula; source } ->
    let name =
      match formula with `Deadlock -> "deadlock freedom" | `Formula text -> text
    in
    Printf.sprintf "check %s of %S" name source
  | Compare { left; right; equivalence } ->
    Printf.sprintf "compare %S == %S modulo %s" left right
      (Flow.equivalence_name equivalence)
  | Solve { source; keep } ->
    Printf.sprintf "solve %S keep %s" source (String.concat "," keep)
  | Expect_throughput { source; gate; lo; hi } ->
    Printf.sprintf "expect throughput %s of %S in [%g, %g]" gate source lo hi

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Inputs and outputs resolve against the script directory alike. *)
let resolve ~dir path =
  if Filename.is_relative path then Filename.concat dir path else path

let load_lts ~config ~dir path =
  let full = resolve ~dir path in
  if Filename.check_suffix full ".aut" then Mv_lts.Aut.of_string (read_file full)
  else if Filename.check_suffix full ".mvb" then Mvb.read_file full
  else Flow.Run.generate config (Flow.model_of_text (read_file full))

let load_model ~dir path = Flow.model_of_text (read_file (resolve ~dir path))

let single_to_double_quotes text =
  String.map (fun c -> if c = '\'' then '"' else c) text

let save ~dir path lts =
  let full = resolve ~dir path in
  if Filename.check_suffix full ".mvb" then Mvb.write_file full lts
  else Mv_lts.Aut.write_file full lts;
  full

(* What execute computes; the run loop turns it into a [step] by
   adding the description and the cache-session delta. *)
type result = { passed : bool; artifacts : string list; detail : string }

let passed ?(artifacts = []) detail = { passed = true; artifacts; detail }

let execute ~config ~dir statement =
  match statement with
  | Expect_throughput { source; gate; lo; hi } ->
    let perf =
      Flow.Run.performance
        (Flow.Config.with_keep [ gate ] config)
        (load_model ~dir source)
    in
    let value = Flow.throughput perf ~gate in
    let ok = value >= lo && value <= hi in
    {
      passed = ok;
      artifacts = [];
      detail = Printf.sprintf "%.6g%s" value (if ok then "" else " OUT OF RANGE");
    }
  | Generate { target; source; hide } ->
    let lts = load_lts ~config ~dir source in
    let lts = if hide = [] then lts else Lts.hide lts ~gates:hide in
    passed
      ~artifacts:[ save ~dir target lts ]
      (Printf.sprintf "%d states, %d transitions" (Lts.nb_states lts)
         (Lts.nb_transitions lts))
  | Reduction { target; equivalence; source } ->
    let lts = load_lts ~config ~dir source in
    let reduced = Flow.Run.minimize config equivalence lts in
    passed
      ~artifacts:[ save ~dir target reduced ]
      (Printf.sprintf "%d -> %d states" (Lts.nb_states lts)
         (Lts.nb_states reduced))
  | Composition { target; left; gates; right } ->
    let product =
      Mv_compose.Parallel.compose ~sync:gates
        (load_lts ~config ~dir left)
        (load_lts ~config ~dir right)
    in
    passed
      ~artifacts:[ save ~dir target product ]
      (Printf.sprintf "%d states" (Lts.nb_states product))
  | Hide { target; gates; source } ->
    let lts = Lts.hide (load_lts ~config ~dir source) ~gates in
    passed
      ~artifacts:[ save ~dir target lts ]
      (Printf.sprintf "%d states" (Lts.nb_states lts))
  | Check { formula; source } ->
    let lts = load_lts ~config ~dir source in
    let parsed =
      match formula with
      | `Deadlock -> Mv_mcl.Formula.Macro.deadlock_free
      | `Formula text ->
        Mv_mcl.Parser.formula_of_string (single_to_double_quotes text)
    in
    let holds = Mv_mcl.Eval.holds lts parsed in
    {
      passed = holds;
      artifacts = [];
      detail = (if holds then "holds" else "VIOLATED");
    }
  | Compare { left; right; equivalence } ->
    let la = load_lts ~config ~dir left
    and lb = load_lts ~config ~dir right in
    let equal = Flow.Run.equivalent config equivalence la lb in
    {
      passed = equal;
      artifacts = [];
      detail = (if equal then "equivalent" else "NOT equivalent");
    }
  | Solve { source; keep } ->
    let perf =
      Flow.Run.performance
        (Flow.Config.with_keep keep config)
        (load_model ~dir source)
    in
    let throughputs = Flow.throughputs perf in
    passed
      (String.concat "; "
         (List.map
            (fun (action, value) -> Printf.sprintf "%s: %.6g" action value)
            throughputs))

let run_string ?cache ?(dir = ".") text =
  let statements = parse_script text in
  let config = Flow.Config.with_cache cache Flow.Config.default in
  let session () = match cache with Some c -> Cache.session c | None -> (0, 0) in
  let rec loop acc = function
    | [] -> List.rev acc
    | statement :: rest -> (
        let description = describe statement in
        let hits0, misses0 = session () in
        match execute ~config ~dir statement with
        | result ->
          let cache_use =
            match cache with
            | None -> None
            | Some _ ->
              let hits, misses = session () in
              Some { hits = hits - hits0; misses = misses - misses0 }
          in
          let outcome =
            if result.passed then
              Passed { artifacts = result.artifacts; cache = cache_use }
            else Failed_check
          in
          loop ({ description; outcome; detail = result.detail } :: acc) rest
        | exception exn ->
          (* hard error: report against the real statement and stop *)
          let message = Printexc.to_string exn in
          let step =
            { description; outcome = Hard_error message; detail = message }
          in
          List.rev (step :: acc))
  in
  loop [] statements

let run_file ?cache path =
  let text = read_file path in
  run_string ?cache ~dir:(Filename.dirname path) text

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)

let step_json step =
  let artifacts, cache_field =
    match step.outcome with
    | Passed { artifacts; cache } ->
      ( artifacts,
        match cache with
        | None -> Json.Null
        | Some c ->
          Json.Obj [ ("hits", Json.Int c.hits); ("misses", Json.Int c.misses) ]
      )
    | Failed_check | Hard_error _ -> ([], Json.Null)
  in
  let tag =
    match step.outcome with
    | Passed _ -> "passed"
    | Failed_check -> "failed"
    | Hard_error _ -> "error"
  in
  Json.Obj
    [
      ("description", Json.String step.description);
      ("outcome", Json.String tag);
      ("detail", Json.String step.detail);
      ("artifacts", Json.List (List.map (fun p -> Json.String p) artifacts));
      ("cache", cache_field);
    ]

let steps_schema = "mv-svl-steps-v1"

let steps_json steps =
  Json.Obj
    [
      ("schema", Json.String steps_schema);
      ("steps", Json.List (List.map step_json steps));
    ]

(* ------------------------------------------------------------------ *)
(* Static queries                                                      *)

let model_sources_of_string ?(dir = ".") text =
  let sources_of = function
    | Generate { source; _ }
    | Reduction { source; _ }
    | Hide { source; _ }
    | Check { source; _ }
    | Solve { source; _ }
    | Expect_throughput { source; _ } -> [ source ]
    | Composition { left; right; _ } | Compare { left; right; _ } ->
      [ left; right ]
  in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun p ->
       if Filename.check_suffix p ".mvl" then begin
         let full = resolve ~dir p in
         if Hashtbl.mem seen full then None
         else begin
           Hashtbl.add seen full ();
           Some full
         end
       end
       else None)
    (List.concat_map sources_of (parse_script text))

let model_sources_of_file path =
  model_sources_of_string ~dir:(Filename.dirname path) (read_file path)

let all_ok steps = List.for_all ok steps
