module Lex = Mv_util.Lexing_util
module Lts = Mv_lts.Lts

type step = { description : string; ok : bool; detail : string }

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Abstract syntax                                                     *)

type equivalence = Strong | Branching | Divbranching | Weak | Traces

type statement =
  | Generate of { target : string; source : string; hide : string list }
  | Reduction of { target : string; equivalence : equivalence; source : string }
  | Composition of { target : string; left : string; gates : string list; right : string }
  | Hide of { target : string; gates : string list; source : string }
  | Check of { formula : [ `Deadlock | `Formula of string ]; source : string }
  | Compare of { left : string; right : string; equivalence : equivalence }
  | Solve of { source : string; keep : string list }
  | Expect_throughput of {
      source : string;
      gate : string;
      lo : float;
      hi : float;
    }

let equivalence_name = function
  | Strong -> "strong"
  | Branching -> "branching"
  | Divbranching -> "divbranching"
  | Weak -> "weak"
  | Traces -> "traces"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let symbols = [ "|["; "]|"; "=="; "="; ";"; "," ]

let parse_equivalence lex =
  match Lex.next lex with
  | Lex.Ident "strong" -> Strong
  | Lex.Ident "branching" -> Branching
  | Lex.Ident "divbranching" -> Divbranching
  | Lex.Ident "weak" -> Weak
  | Lex.Ident "traces" -> Traces
  | _ -> Lex.error lex "expected an equivalence name"

let expect_string lex what =
  match Lex.next lex with
  | Lex.Str s -> s
  | _ -> Lex.error lex ("expected a quoted " ^ what)

let expect_keyword lex kw =
  match Lex.next lex with
  | Lex.Ident k when k = kw -> ()
  | _ -> Lex.error lex (Printf.sprintf "expected '%s'" kw)

let parse_gate_list lex =
  let rec loop acc =
    let g = Lex.expect_ident lex in
    if Lex.eat lex "," then loop (g :: acc) else List.rev (g :: acc)
  in
  loop []

let parse_statement lex =
  match Lex.peek lex with
  | Lex.Str target -> (
      ignore (Lex.next lex);
      Lex.expect lex "=";
      match Lex.next lex with
      | Lex.Ident "generate" ->
        let source = expect_string lex "model file" in
        let hide =
          match Lex.peek lex with
          | Lex.Ident "hide" ->
            ignore (Lex.next lex);
            parse_gate_list lex
          | _ -> []
        in
        Generate { target; source; hide }
      | Lex.Ident "composition" ->
        expect_keyword lex "of";
        let left = expect_string lex "model file" in
        Lex.expect lex "|[";
        let gates = parse_gate_list lex in
        Lex.expect lex "]|";
        let right = expect_string lex "model file" in
        Composition { target; left; gates; right }
      | Lex.Ident "hide" ->
        let gates = parse_gate_list lex in
        expect_keyword lex "in";
        let source = expect_string lex "model file" in
        Hide { target; gates; source }
      | Lex.Ident eq
        when List.mem eq [ "strong"; "branching"; "divbranching"; "weak"; "traces" ]
        ->
        let equivalence =
          match eq with
          | "strong" -> Strong
          | "branching" -> Branching
          | "divbranching" -> Divbranching
          | "weak" -> Weak
          | _ -> Traces
        in
        expect_keyword lex "reduction";
        expect_keyword lex "of";
        let source = expect_string lex "model file" in
        Reduction { target; equivalence; source }
      | _ -> Lex.error lex "expected generate/reduction/composition/hide")
  | Lex.Ident "check" ->
    ignore (Lex.next lex);
    let formula =
      match Lex.next lex with
      | Lex.Ident "deadlock" -> `Deadlock
      | Lex.Str text -> `Formula text
      | _ -> Lex.error lex "expected 'deadlock' or a quoted formula"
    in
    expect_keyword lex "of";
    let source = expect_string lex "model file" in
    Check { formula; source }
  | Lex.Ident "compare" ->
    ignore (Lex.next lex);
    let left = expect_string lex "model file" in
    Lex.expect lex "==";
    let right = expect_string lex "model file" in
    expect_keyword lex "modulo";
    let equivalence = parse_equivalence lex in
    Compare { left; right; equivalence }
  | Lex.Ident "expect" ->
    ignore (Lex.next lex);
    expect_keyword lex "throughput";
    let gate = Lex.expect_ident lex in
    expect_keyword lex "of";
    let source = expect_string lex "model file" in
    expect_keyword lex "in";
    Lex.expect lex "[";
    let number () =
      match Lex.next lex with
      | Lex.Float f -> f
      | Lex.Int n -> float_of_int n
      | _ -> Lex.error lex "expected a number"
    in
    let lo = number () in
    Lex.expect lex ",";
    let hi = number () in
    Lex.expect lex "]";
    Expect_throughput { source; gate; lo; hi }
  | Lex.Ident "solve" ->
    ignore (Lex.next lex);
    let source = expect_string lex "model file" in
    expect_keyword lex "keep";
    let keep = parse_gate_list lex in
    Solve { source; keep }
  | _ -> Lex.error lex "expected a statement"

let parse_script text =
  let lex = Lex.make ~symbols text in
  let rec loop acc =
    match Lex.peek lex with
    | Lex.Eof -> List.rev acc
    | _ ->
      let stmt = parse_statement lex in
      Lex.expect lex ";";
      loop (stmt :: acc)
  in
  try loop [] with Lex.Lex_error msg -> raise (Parse_error msg)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_lts ~dir path =
  let full = if Filename.is_relative path then Filename.concat dir path else path in
  if Filename.check_suffix full ".aut" then Mv_lts.Aut.of_string (read_file full)
  else Flow.generate (Flow.model_of_text (read_file full))

let single_to_double_quotes text =
  String.map (fun c -> if c = '\'' then '"' else c) text

let minimize equivalence lts =
  match equivalence with
  | Strong -> Mv_bisim.Strong.minimize lts
  | Branching -> Mv_bisim.Branching.minimize lts
  | Divbranching -> Mv_bisim.Branching.minimize ~divergence_sensitive:true lts
  | Weak -> Mv_bisim.Weak.minimize lts
  | Traces -> Mv_bisim.Traces.determinize lts

let equivalent equivalence a b =
  match equivalence with
  | Strong -> Mv_bisim.Strong.equivalent a b
  | Branching -> Mv_bisim.Branching.equivalent a b
  | Divbranching -> Mv_bisim.Branching.equivalent ~divergence_sensitive:true a b
  | Weak -> Mv_bisim.Weak.equivalent a b
  | Traces -> Mv_bisim.Traces.equivalent a b

let save ~dir path lts =
  let full = if Filename.is_relative path then Filename.concat dir path else path in
  Mv_lts.Aut.write_file full lts

let execute_expect ~dir ~source ~gate ~lo ~hi =
  let full =
    if Filename.is_relative source then Filename.concat dir source else source
  in
  let perf =
    Flow.performance ~keep:[ gate ] (Flow.model_of_text (read_file full))
  in
  let value = Flow.throughput perf ~gate in
  let ok = value >= lo && value <= hi in
  {
    description =
      Printf.sprintf "expect throughput %s of %S in [%g, %g]" gate source lo hi;
    ok;
    detail = Printf.sprintf "%.6g%s" value (if ok then "" else " OUT OF RANGE");
  }

let execute ~dir statement =
  match statement with
  | Expect_throughput { source; gate; lo; hi } ->
    execute_expect ~dir ~source ~gate ~lo ~hi
  | Generate { target; source; hide } ->
    let lts = load_lts ~dir source in
    let lts = if hide = [] then lts else Lts.hide lts ~gates:hide in
    save ~dir target lts;
    {
      description = Printf.sprintf "%S = generate %S" target source;
      ok = true;
      detail =
        Printf.sprintf "%d states, %d transitions" (Lts.nb_states lts)
          (Lts.nb_transitions lts);
    }
  | Reduction { target; equivalence; source } ->
    let lts = load_lts ~dir source in
    let reduced = minimize equivalence lts in
    save ~dir target reduced;
    {
      description =
        Printf.sprintf "%S = %s reduction of %S" target
          (equivalence_name equivalence) source;
      ok = true;
      detail =
        Printf.sprintf "%d -> %d states" (Lts.nb_states lts)
          (Lts.nb_states reduced);
    }
  | Composition { target; left; gates; right } ->
    let product =
      Mv_compose.Parallel.compose ~sync:gates (load_lts ~dir left)
        (load_lts ~dir right)
    in
    save ~dir target product;
    {
      description =
        Printf.sprintf "%S = composition of %S |[%s]| %S" target left
          (String.concat "," gates) right;
      ok = true;
      detail = Printf.sprintf "%d states" (Lts.nb_states product);
    }
  | Hide { target; gates; source } ->
    let lts = Lts.hide (load_lts ~dir source) ~gates in
    save ~dir target lts;
    {
      description =
        Printf.sprintf "%S = hide %s in %S" target (String.concat "," gates)
          source;
      ok = true;
      detail = Printf.sprintf "%d states" (Lts.nb_states lts);
    }
  | Check { formula; source } ->
    let lts = load_lts ~dir source in
    let name, parsed =
      match formula with
      | `Deadlock -> ("deadlock freedom", Mv_mcl.Formula.Macro.deadlock_free)
      | `Formula text ->
        (text, Mv_mcl.Parser.formula_of_string (single_to_double_quotes text))
    in
    let holds = Mv_mcl.Eval.holds lts parsed in
    {
      description = Printf.sprintf "check %s of %S" name source;
      ok = holds;
      detail = (if holds then "holds" else "VIOLATED");
    }
  | Compare { left; right; equivalence } ->
    let la = load_lts ~dir left and lb = load_lts ~dir right in
    let equal = equivalent equivalence la lb in
    {
      description =
        Printf.sprintf "compare %S == %S modulo %s" left right
          (equivalence_name equivalence);
      ok = equal;
      detail = (if equal then "equivalent" else "NOT equivalent");
    }
  | Solve { source; keep } ->
    let full =
      if Filename.is_relative source then Filename.concat dir source else source
    in
    let perf = Flow.performance ~keep (Flow.model_of_text (read_file full)) in
    let throughputs = Flow.throughputs perf in
    {
      description = Printf.sprintf "solve %S keep %s" source (String.concat "," keep);
      ok = true;
      detail =
        String.concat "; "
          (List.map
             (fun (action, value) -> Printf.sprintf "%s: %.6g" action value)
             throughputs);
    }

let run_string ?(dir = ".") text =
  let statements = parse_script text in
  let rec loop acc = function
    | [] -> List.rev acc
    | statement :: rest -> (
        match execute ~dir statement with
        | step -> loop (step :: acc) rest
        | exception exn ->
          (* hard error: report and stop *)
          let step =
            {
              description = "script step";
              ok = false;
              detail = Printexc.to_string exn;
            }
          in
          List.rev (step :: acc))
  in
  loop [] statements

let run_file path =
  let text = read_file path in
  run_string ~dir:(Filename.dirname path) text

let model_sources_of_string ?(dir = ".") text =
  let sources_of = function
    | Generate { source; _ }
    | Reduction { source; _ }
    | Hide { source; _ }
    | Check { source; _ }
    | Solve { source; _ }
    | Expect_throughput { source; _ } -> [ source ]
    | Composition { left; right; _ } | Compare { left; right; _ } ->
      [ left; right ]
  in
  let resolve p = if Filename.is_relative p then Filename.concat dir p else p in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun p ->
       if Filename.check_suffix p ".mvl" then begin
         let full = resolve p in
         if Hashtbl.mem seen full then None
         else begin
           Hashtbl.add seen full ();
           Some full
         end
       end
       else None)
    (List.concat_map sources_of (parse_script text))

let model_sources_of_file path =
  model_sources_of_string ~dir:(Filename.dirname path) (read_file path)

let all_ok steps = List.for_all (fun s -> s.ok) steps
