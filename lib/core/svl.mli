(** SVL-style verification scripts.

    CADP orchestrates its tools with SVL scripts; this is the
    equivalent for the Multival flow: a small declarative language
    whose values are model files on disk ([.mvl] sources, [.aut] or
    [.mvb] LTSs). One statement per step, separated by [;]:

    {v
    (* generation, with optional hiding *)
    "queue.aut" = generate "queue.mvl" hide push, pop ;

    (* minimization: strong | branching | divbranching | weak | traces *)
    "min.aut" = branching reduction of "queue.aut" ;

    (* LTS-level composition and hiding *)
    "net.aut" = composition of "a.aut" |[g, h]| "b.aut" ;
    "abs.aut" = hide g, h in "net.aut" ;

    (* model checking (deadlock, or any mu-calculus formula) *)
    check deadlock of "queue.aut" ;
    check "[ true* . 'error' ] false" of "net.aut" ;

    (* equivalence checking *)
    compare "min.aut" == "queue.aut" modulo branching ;

    (* the performance pipeline: prints throughputs of the kept gates *)
    solve "queue.mvl" keep pop ;

    (* regression assertion on a performance measure *)
    expect throughput pop of "queue.mvl" in [1.8, 2.0] ;
    v}

    Mu-calculus formulas are quoted like file names; inside them, use
    single quotes for action labels (['error !1']) — they are converted
    to the double quotes the formula parser expects. Relative paths
    (inputs and outputs alike) are resolved against the script's
    directory. Comments are [(* ... *)].

    With a {!Mv_store.Cache}, generation, reduction and the lumping
    inside [solve]/[expect] are memoized; each step's {!outcome}
    records how many cache hits and misses it incurred, so a warm
    rerun is observably identical except for the hit counts. *)

(** Cache traffic attributable to one step. *)
type cache_use = { hits : int; misses : int }

(** How a step ended. [Passed] carries the files the step wrote
    (resolved paths, in write order) and its cache traffic ([None]
    when no cache was configured). [Failed_check] is a check, compare
    or expect whose answer was "no" — execution continues.
    [Hard_error] (unreadable file, parse error, unwritable target
    directory, ...) carries the exception text and stops the
    script. *)
type outcome =
  | Passed of { artifacts : string list; cache : cache_use option }
  | Failed_check
  | Hard_error of string

type step = {
  description : string;
  outcome : outcome;
  detail : string; (** human-readable result or error *)
}

(** [ok step] — true iff the step {!Passed}. *)
val ok : step -> bool

exception Parse_error of string

(** Run a script from text. [dir] anchors relative paths (default:
    current directory). [cache] memoizes generation/reduction/lumping
    through {!Flow.Run}. Execution continues past failed checks but
    stops at the first hard error, which is reported as a
    [Hard_error] step carrying the real statement description. *)
val run_string : ?cache:Mv_store.Cache.t -> ?dir:string -> string -> step list

(** Run a script file (paths resolve against its directory). *)
val run_file : ?cache:Mv_store.Cache.t -> string -> step list

(** [all_ok steps]. *)
val all_ok : step list -> bool

(** {1 JSON rendering (schema [mv-svl-steps-v1])}

    [steps_json] wraps the step objects as
    [{"schema": "mv-svl-steps-v1", "steps": [...]}]. Each step object
    has ["description"], ["outcome"] (["passed"] | ["failed"] |
    ["error"]), ["detail"], ["artifacts"] (list of paths, empty unless
    passed) and ["cache"] ([null] or [{"hits", "misses"}]). *)
val step_json : step -> Mv_obs.Json.t

val steps_json : step list -> Mv_obs.Json.t

(** The schema tag of {!steps_json} ("mv-svl-steps-v1"), exposed for
    [mval version] and the serve protocol's version report. *)
val steps_schema : string

(** The [.mvl] model sources a script references, resolved against
    [dir] (default: current directory), deduplicated in first-use
    order. [.aut]/[.mvb] files are omitted. [mval script] lints these
    before running the script. Raises {!Parse_error} on a malformed
    script. *)
val model_sources_of_string : ?dir:string -> string -> string list

(** {!model_sources_of_string} on a script file, resolving against its
    directory. *)
val model_sources_of_file : string -> string list
