(** SVL-style verification scripts.

    CADP orchestrates its tools with SVL scripts; this is the
    equivalent for the Multival flow: a small declarative language
    whose values are model files on disk ([.mvl] sources or [.aut]
    LTSs). One statement per step, separated by [;]:

    {v
    (* generation, with optional hiding *)
    "queue.aut" = generate "queue.mvl" hide push, pop ;

    (* minimization: strong | branching | divbranching | weak | traces *)
    "min.aut" = branching reduction of "queue.aut" ;

    (* LTS-level composition and hiding *)
    "net.aut" = composition of "a.aut" |[g, h]| "b.aut" ;
    "abs.aut" = hide g, h in "net.aut" ;

    (* model checking (deadlock, or any mu-calculus formula) *)
    check deadlock of "queue.aut" ;
    check "[ true* . 'error' ] false" of "net.aut" ;

    (* equivalence checking *)
    compare "min.aut" == "queue.aut" modulo branching ;

    (* the performance pipeline: prints throughputs of the kept gates *)
    solve "queue.mvl" keep pop ;

    (* regression assertion on a performance measure *)
    expect throughput pop of "queue.mvl" in [1.8, 2.0] ;
    v}

    Mu-calculus formulas are quoted like file names; inside them, use
    single quotes for action labels (['error !1']) — they are converted
    to the double quotes the formula parser expects. Relative paths are
    resolved against the script's directory. Comments are [(* ... *)]. *)

type step = {
  description : string;
  ok : bool;
  detail : string; (** human-readable result or error *)
}

exception Parse_error of string

(** Run a script from text. [dir] anchors relative paths (default:
    current directory). Execution continues past failed checks but
    stops at the first hard error (unreadable file, parse error in a
    model), which is reported as a failed step. *)
val run_string : ?dir:string -> string -> step list

(** Run a script file (paths resolve against its directory). *)
val run_file : string -> step list

(** [all_ok steps]. *)
val all_ok : step list -> bool

(** The [.mvl] model sources a script references, resolved against
    [dir] (default: current directory), deduplicated in first-use
    order. [.aut] files are omitted. [mval script] lints these before
    running the script. Raises {!Parse_error} on a malformed script. *)
val model_sources_of_string : ?dir:string -> string -> string list

(** {!model_sources_of_string} on a script file, resolving against its
    directory. *)
val model_sources_of_file : string -> string list
