(** Plain-text tables for the experiment harness and the examples.

    The benchmark executable prints one table per reproduced
    experiment; this module keeps the formatting in one place. *)

(** [table ~title ~header rows] prints an aligned table to stdout.
    Every row must have the same arity as [header]. When a CSV
    directory is configured ({!set_csv_dir}), the table is also written
    there as [<slug-of-title>.csv]. *)
val table : title:string -> header:string list -> string list list -> unit

(** Configure a directory to mirror every printed table as a CSV file
    (created if missing); [None] disables mirroring. *)
val set_csv_dir : string option -> unit

(** [headline ~title items] prints an aligned key/value block (used for
    the telemetry headline figures of [mval --metrics]); prints nothing
    when [items] is empty. *)
val headline : title:string -> (string * string) list -> unit

(** Format a float with 4 significant digits (the precision used in
    experiment tables). *)
val float_cell : float -> string

(** Format as a percentage with two decimals. *)
val percent_cell : float -> string
