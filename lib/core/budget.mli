(** Per-request computation budgets.

    A budget bounds how much work one flow invocation may perform: a
    {e state-count} budget caps the number of states the explorer (or
    a minimization input) may touch, and a {e wall-time} budget caps
    elapsed seconds. Budgets are enforced {e cooperatively}: the flow
    steps call {!check}/{!tick} at their natural checkpoints (every
    explorer batch, every pipeline step boundary), so an over-budget
    request stops within one checkpoint of the limit instead of being
    killed mid-structure. Exceeding a budget raises {!Exceeded}, which
    [mval] reports as a structured error (exit code 5) and the
    [mvald] daemon maps to a [budget_exceeded] protocol error — never
    a crash or a hung connection.

    Budgets are attached to a run through
    {!Flow.Config.with_budget}; they are deliberately {e not} part of
    {!Mv_store.Cache} keys (they bound computation, not results — a
    warm cache hit is always within budget). *)

type t

(** What was exceeded: [resource] is ["states"] or ["wall"], [message]
    is human-readable detail including the limit. *)
type violation = { resource : string; message : string }

exception Exceeded of violation

(** [create ?max_states ?wall_s ()] — a budget allowing up to
    [max_states] touched states and [wall_s] elapsed seconds, counted
    from this call. Omitted dimensions are unlimited. *)
val create : ?max_states:int -> ?wall_s:float -> unit -> t

(** The state-count limit, if any (the flow uses it to tighten the
    explorer bound). *)
val max_states : t -> int option

(** Raise {!Exceeded} if the wall-time budget has run out. *)
val tick : t -> unit

(** [check t ~states] — {!tick}, then raise {!Exceeded} if [states]
    exceeds the state budget. *)
val check : t -> states:int -> unit

(** Elapsed seconds since {!create}. *)
val elapsed_s : t -> float
