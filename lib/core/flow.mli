(** The Multival flow (the paper's primary contribution).

    Two pipelines over one formal model:

    {b Functional verification} (paper §3):
    model -> state-space generation -> (branching) minimization ->
    temporal-logic model checking / equivalence checking.

    {b Performance evaluation} (paper §4): the functional model is
    decorated with phase-type delays ([rate] prefixes or
    {!Mv_imc.Phase.process} delay processes synchronized on gates),
    generated into an IMC, minimized by stochastic lumping, closed
    (hiding + maximal progress), transformed into an action-tagged
    CTMC, and solved for steady-state or time-dependent measures and
    action throughputs. *)

(** {1 Model entry points} *)

(** Parse + resolve + typecheck an MVL source text. *)
val model_of_text : string -> Mv_calc.Ast.spec

(** State-space generation. [pool] parallelizes the exploration; the
    resulting LTS is identical to the sequential one (see
    {!Mv_calc.State_space.generate}). *)
val generate :
  ?pool:Mv_par.Pool.t -> ?max_states:int -> Mv_calc.Ast.spec -> Mv_lts.Lts.t

(** Compositional generation (the automated form of the paper's §3
    approach): the top-level parallel/hide structure of [spec.init] is
    turned into a composition network whose leaves are generated
    separately, then combined with minimize-before-compose
    ({!Mv_compose.Net}). The result is branching-equivalent to
    {!generate} but the peak intermediate size can be exponentially
    smaller. Only [|\[...\]|] and [hide] nodes are split; any other
    construct becomes a leaf. *)
val generate_compositional :
  ?max_states:int -> Mv_calc.Ast.spec -> Mv_compose.Net.report

(** {1 Functional verification} *)

type property_result = {
  property_name : string;
  formula : Mv_mcl.Formula.t;
  holds : bool;
}

type verification = {
  lts : Mv_lts.Lts.t; (** generated state space *)
  minimized : Mv_lts.Lts.t; (** branching-bisimulation quotient *)
  deadlock_states : int list; (** deadlocks of the full LTS *)
  results : property_result list; (** checked on the full LTS *)
}

(** [verify ?max_states ?hide spec properties] runs the verification
    pipeline. [hide] lists gates abstracted to tau before
    minimization (checking still runs on the unhidden LTS). *)
val verify :
  ?pool:Mv_par.Pool.t ->
  ?max_states:int ->
  ?hide:string list ->
  Mv_calc.Ast.spec ->
  (string * Mv_mcl.Formula.t) list ->
  verification

(** [all_hold v]. *)
val all_hold : verification -> bool

(** Shortest trace into a deadlock of the generated LTS ([None] when
    deadlock-free). *)
val deadlock_witness : verification -> Mv_lts.Trace.t option

(** Shortest trace whose last action is on [gate] ([None] when no such
    action is reachable). *)
val action_witness : verification -> gate:string -> Mv_lts.Trace.t option

(** {1 Performance evaluation} *)

type performance = {
  imc : Mv_imc.Imc.t; (** decoded from the generated LTS *)
  lumped : Mv_imc.Imc.t; (** after stochastic minimization *)
  conversion : Mv_imc.To_ctmc.result;
  steady : (float array * Mv_markov.Solver_stats.t) Lazy.t;
  (** steady-state of the CTMC, with the iterative solve's stats *)
}

(** [performance ?max_states ?keep ?scheduler spec] runs the
    performance pipeline. Gates in [keep] stay visible through hiding
    and become the action tags available for throughput queries; every
    other gate is hidden. When a [pool] is given it is captured by the
    [steady] lazy, so force it (e.g. via {!throughputs}) before
    shutting the pool down. *)
val performance :
  ?pool:Mv_par.Pool.t ->
  ?max_states:int ->
  ?keep:string list ->
  ?scheduler:Mv_imc.To_ctmc.scheduler ->
  Mv_calc.Ast.spec ->
  performance

(** [performance_of_imc ?keep ?scheduler imc] — same pipeline entered
    at the IMC level (for compositionally built IMCs). *)
val performance_of_imc :
  ?pool:Mv_par.Pool.t ->
  ?keep:string list ->
  ?scheduler:Mv_imc.To_ctmc.scheduler ->
  Mv_imc.Imc.t ->
  performance

(** The steady-state vector (forces the solve). *)
val steady_vector : performance -> float array

(** Convergence stats of the steady-state solve (forces the solve);
    check [converged] before trusting the vector. *)
val solver_stats : performance -> Mv_markov.Solver_stats.t

(** Long-run occurrence rate of actions on gate [gate] (summed over
    offer values). The gate must be in [keep]. *)
val throughput : performance -> gate:string -> float

(** All visible-action throughputs, by label. *)
val throughputs : performance -> (string * float) list

(** Mean time until the first occurrence of an action on [gate],
    starting from the initial state ([infinity] if it may never
    occur). *)
val time_to_first : performance -> gate:string -> float

(** Probability that an action on [gate] has occurred by [horizon]. *)
val probability_by : performance -> gate:string -> horizon:float -> float

(** Expected steady-state reward over CTMC states; the reward is given
    on CTMC state ids (see [conversion] for the mapping back to IMC
    states). *)
val expected_reward : performance -> (int -> float) -> float
