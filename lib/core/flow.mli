(** The Multival flow (the paper's primary contribution).

    Two pipelines over one formal model:

    {b Functional verification} (paper §3):
    model -> state-space generation -> (branching) minimization ->
    temporal-logic model checking / equivalence checking.

    {b Performance evaluation} (paper §4): the functional model is
    decorated with phase-type delays ([rate] prefixes or
    {!Mv_imc.Phase.process} delay processes synchronized on gates),
    generated into an IMC, minimized by stochastic lumping, closed
    (hiding + maximal progress), transformed into an action-tagged
    CTMC, and solved for steady-state or time-dependent measures and
    action throughputs.

    Entry points come in two flavours. {!Run} is the canonical API:
    every pipeline takes a {!Config.t} first, which carries the worker
    pool, exploration bounds, gate lists, the CTMC scheduler and the
    {!Mv_store.Cache} handle in one value instead of a drifting set of
    optional arguments. The top-level functions ({!generate},
    {!verify}, {!performance}, ...) are kept as thin wrappers for
    existing callers and examples; new code should use {!Run}. *)

(** {1 Model entry points} *)

(** Parse + resolve + typecheck an MVL source text. *)
val model_of_text : string -> Mv_calc.Ast.spec

(** The equivalences the flow can minimize or compare by (also used by
    {!Svl} scripts and [mval minimize -e]). *)
type equivalence = Strong | Branching | Divbranching | Weak | Traces

(** Lower-case name, e.g. ["divbranching"]. *)
val equivalence_name : equivalence -> string

(** {1 Configuration} *)

module Config : sig
  (** Everything that parameterizes a pipeline run. Build one with
      {!default} and the [with_*] helpers:
      [Config.(default |> with_max_states 100_000 |> with_keep ["get"])]. *)
  type t = {
    pool : Mv_par.Pool.t option;
        (** worker pool for generation, minimization and solving;
            results are identical at every pool size *)
    max_states : int option;  (** exploration bound for generation *)
    hide : string list;  (** gates abstracted to tau ({!Run.verify}) *)
    keep : string list;
        (** gates kept visible through the performance pipeline *)
    scheduler : Mv_imc.To_ctmc.scheduler;
    cache : Mv_store.Cache.t option;
        (** artifact cache consulted by {!Run.generate},
            {!Run.generate_compositional}, {!Run.minimize} and the
            lumping step of {!Run.performance} *)
    solve_method : Mv_kern.Solver.method_ option;
        (** steady-state iteration for {!Run.performance} solves
            ([mval solve --method]); [None] picks Gauss-Seidel, or
            Jacobi under a pool. Like the pool, absent from cache
            keys: every method converges to the same vector within
            the solver tolerance, and solve results are never
            cached. *)
    budget : Budget.t option;
        (** per-request computation budget (state count, wall time),
            enforced cooperatively inside the pipeline steps: the
            explorer checks it every batch, and every step boundary
            re-checks it. Over-budget runs raise {!Budget.Exceeded}.
            Like the pool, absent from cache keys: budgets bound
            computation, not results, so a warm cache hit always
            succeeds. *)
    out_of_core : bool;
        (** route generate/minimize through the streaming [.mvb]
            pipeline ({!Run.generate_mvb} / {!Run.minimize_mvb}):
            bounded RAM, spill and mmap scratch on disk. [mval
            --out-of-core]. *)
    mem_budget_mb : int option;
        (** RAM target for the out-of-core path: half goes to the hot
            seen-set, the rest covers bloom bits and the current BFS
            level. [None] uses a 64 MiB hot budget. *)
    scratch_dir : string option;
        (** where spill runs and mmap scratch files live; defaults to
            the output file's directory *)
    expect : int option;
        (** anticipated reachable-state count: pre-sizes exploration
            hash tables and the out-of-core bloom filter. A hint —
            never changes any result. *)
    compose_plan : Mv_compose.Net.plan;
        (** composition-order planning for
            {!Run.generate_compositional} *)
  }

  val default : t
  val with_pool : Mv_par.Pool.t option -> t -> t
  val with_budget : Budget.t option -> t -> t

  val with_solve_method : Mv_kern.Solver.method_ option -> t -> t
  val with_max_states : int -> t -> t
  val with_hide : string list -> t -> t
  val with_keep : string list -> t -> t
  val with_scheduler : Mv_imc.To_ctmc.scheduler -> t -> t
  val with_cache : Mv_store.Cache.t option -> t -> t
  val with_out_of_core : bool -> t -> t
  val with_mem_budget_mb : int option -> t -> t
  val with_scratch_dir : string option -> t -> t
  val with_expect : int option -> t -> t
  val with_compose_plan : Mv_compose.Net.plan -> t -> t
end

(** {1 Results} *)

type property_result = {
  property_name : string;
  formula : Mv_mcl.Formula.t;
  holds : bool;
}

type verification = {
  lts : Mv_lts.Lts.t;  (** generated state space *)
  minimized : Mv_lts.Lts.t;  (** branching-bisimulation quotient *)
  deadlock_states : int list;  (** deadlocks of the full LTS *)
  results : property_result list;  (** checked on the full LTS *)
}

type performance = {
  imc : Mv_imc.Imc.t;  (** decoded from the generated LTS *)
  lumped : Mv_imc.Imc.t;  (** after stochastic minimization *)
  conversion : Mv_imc.To_ctmc.result;
  steady : (float array * Mv_markov.Solver_stats.t) Lazy.t;
      (** steady-state of the CTMC, with the iterative solve's stats *)
}

(** {1 The canonical API} *)

module Run : sig
  (** State-space generation; memoized through [config.cache] keyed on
      the printed model text and [max_states] (never the pool). *)
  val generate : Config.t -> Mv_calc.Ast.spec -> Mv_lts.Lts.t

  (** Compositional generation (the automated form of the paper's §3
      approach): the top-level parallel/hide structure of [spec.init]
      is turned into a composition network whose leaves are generated
      separately, then combined with minimize-before-compose
      ({!Mv_compose.Net}). The result is branching-equivalent to
      {!generate} but the peak intermediate size can be exponentially
      smaller. Only [|\[...\]|] and [hide] nodes are split; any other
      construct becomes a leaf. With a cache, only the final LTS is
      memoized: a hit returns a report with one synthetic step and
      [peak_states] equal to the result size. *)
  val generate_compositional :
    Config.t -> Mv_calc.Ast.spec -> Mv_compose.Net.report

  (** Out-of-core generation: explore with the spillable seen set
      (bloom + bounded hot table + sorted disk runs, see
      {!Mv_lts.Explore.Make.run_ooc}) and stream the transitions
      straight into [out] (a [.mvb] file), never materializing the
      LTS. The file is byte-identical to writing {!generate}'s result
      with {!Mv_store.Mvb.write_file}. Spill scratch goes to
      [config.scratch_dir] (default: [out]'s directory) and is removed
      on return or exception; [config.mem_budget_mb] bounds the hot
      seen-set. Not cached (the artifact {e is} the output file). *)
  val generate_mvb :
    Config.t -> Mv_calc.Ast.spec -> out:string -> Mv_lts.Explore.ooc_outcome

  (** Out-of-core strong minimization, [.mvb] file to [.mvb] file: the
      input is read through an mmap'd {!Mv_store.Mvb.Segment}, the CSR
      indexes are built into mmap scratch ({!Mv_kern.Csr.Scratch}),
      and the quotient is deduplicated on the fly — resident memory is
      O(states), not O(transitions). [dst] is byte-identical to
      minimizing the materialized LTS and writing it. Returns the
      minimized LTS (it is small). Only [Strong] is supported
      out-of-core; other equivalences raise [Invalid_argument]. *)
  val minimize_mvb :
    Config.t -> equivalence -> src:string -> dst:string -> Mv_lts.Lts.t

  (** Quotient by the given equivalence ([Traces] determinizes);
      memoized through [config.cache] keyed on the input LTS bytes. *)
  val minimize : Config.t -> equivalence -> Mv_lts.Lts.t -> Mv_lts.Lts.t

  (** Equivalence of two LTSs' initial states (never cached — it is a
      yes/no answer, not an artifact). *)
  val equivalent : Config.t -> equivalence -> Mv_lts.Lts.t -> Mv_lts.Lts.t -> bool

  (** The verification pipeline. [config.hide] lists gates abstracted
      to tau before minimization (checking still runs on the unhidden
      LTS). *)
  val verify :
    Config.t ->
    Mv_calc.Ast.spec ->
    (string * Mv_mcl.Formula.t) list ->
    verification

  (** The performance pipeline. Gates in [config.keep] stay visible
      through hiding and become the action tags available for
      throughput queries; every other gate is hidden. When a pool is
      configured it is captured by the [steady] lazy, so force it
      (e.g. via {!throughputs}) before shutting the pool down. The
      lumping step is memoized through [config.cache]. *)
  val performance : Config.t -> Mv_calc.Ast.spec -> performance

  (** Same pipeline entered at the IMC level (for compositionally
      built IMCs). *)
  val performance_of_imc : Config.t -> Mv_imc.Imc.t -> performance
end

(** {1 Legacy entry points}

    Thin wrappers over {!Run} kept for existing callers; prefer
    {!Run} with a {!Config.t} in new code. *)

(** Deprecated spelling of {!Run.generate}. *)
val generate :
  ?pool:Mv_par.Pool.t -> ?max_states:int -> Mv_calc.Ast.spec -> Mv_lts.Lts.t

(** Deprecated spelling of {!Run.generate_compositional}. *)
val generate_compositional :
  ?max_states:int -> Mv_calc.Ast.spec -> Mv_compose.Net.report

(** Deprecated spelling of {!Run.verify}. *)
val verify :
  ?pool:Mv_par.Pool.t ->
  ?max_states:int ->
  ?hide:string list ->
  Mv_calc.Ast.spec ->
  (string * Mv_mcl.Formula.t) list ->
  verification

(** Deprecated spelling of {!Run.performance}. *)
val performance :
  ?pool:Mv_par.Pool.t ->
  ?max_states:int ->
  ?keep:string list ->
  ?scheduler:Mv_imc.To_ctmc.scheduler ->
  Mv_calc.Ast.spec ->
  performance

(** Deprecated spelling of {!Run.performance_of_imc}. *)
val performance_of_imc :
  ?pool:Mv_par.Pool.t ->
  ?keep:string list ->
  ?scheduler:Mv_imc.To_ctmc.scheduler ->
  Mv_imc.Imc.t ->
  performance

(** {1 Accessors} *)

(** [all_hold v]. *)
val all_hold : verification -> bool

(** Shortest trace into a deadlock of the generated LTS ([None] when
    deadlock-free). *)
val deadlock_witness : verification -> Mv_lts.Trace.t option

(** Shortest trace whose last action is on [gate] ([None] when no such
    action is reachable). *)
val action_witness : verification -> gate:string -> Mv_lts.Trace.t option

(** The steady-state vector (forces the solve). *)
val steady_vector : performance -> float array

(** Convergence stats of the steady-state solve (forces the solve);
    check [converged] before trusting the vector. *)
val solver_stats : performance -> Mv_markov.Solver_stats.t

(** Long-run occurrence rate of actions on gate [gate] (summed over
    offer values). The gate must be in [keep]. *)
val throughput : performance -> gate:string -> float

(** All visible-action throughputs, by label. *)
val throughputs : performance -> (string * float) list

(** Mean time until the first occurrence of an action on [gate],
    starting from the initial state ([infinity] if it may never
    occur). *)
val time_to_first : performance -> gate:string -> float

(** Probability that an action on [gate] has occurred by [horizon]. *)
val probability_by : performance -> gate:string -> horizon:float -> float

(** Expected steady-state reward over CTMC states; the reward is given
    on CTMC state ids (see [conversion] for the mapping back to IMC
    states). *)
val expected_reward : performance -> (int -> float) -> float
