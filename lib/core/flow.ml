module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Imc = Mv_imc.Imc
module To_ctmc = Mv_imc.To_ctmc
module Ctmc = Mv_markov.Ctmc
module Obs = Mv_obs.Obs

let model_of_text text = Mv_calc.Parser.spec_of_string_checked text

let generate ?pool ?max_states spec =
  Obs.span "flow.generate" @@ fun () ->
  Mv_calc.State_space.lts ?pool ?max_states spec

(* Split the top-level parallel/hide skeleton of the initial behaviour
   into a composition network; everything below any other construct is
   generated as one leaf. *)
let generate_compositional ?max_states spec =
  let leaf_counter = ref 0 in
  let rec decompose (behavior : Mv_calc.Ast.behavior) =
    match behavior with
    | Mv_calc.Ast.At (_, inner) -> decompose inner
    | Mv_calc.Ast.Par (Mv_calc.Ast.Gates gates, a, b) ->
      Mv_compose.Net.Par (gates, decompose a, decompose b)
    | Mv_calc.Ast.Hide (gates, inner) ->
      Mv_compose.Net.Hide (gates, decompose inner)
    | Mv_calc.Ast.Stop | Mv_calc.Ast.Exit _ | Mv_calc.Ast.Prefix _
    | Mv_calc.Ast.Rate _ | Mv_calc.Ast.Choice _ | Mv_calc.Ast.Guard _
    | Mv_calc.Ast.Par (Mv_calc.Ast.All, _, _) | Mv_calc.Ast.Rename _
    | Mv_calc.Ast.Seq _ | Mv_calc.Ast.Call _ ->
      incr leaf_counter;
      let name = Printf.sprintf "component%d" !leaf_counter in
      Mv_compose.Net.Leaf
        ( name,
          Mv_calc.State_space.lts ?max_states
            { spec with Mv_calc.Ast.init = behavior } )
  in
  Mv_compose.Net.evaluate ~strategy:`Compositional
    (decompose spec.Mv_calc.Ast.init)

(* ------------------------------------------------------------------ *)
(* Verification pipeline                                               *)

type property_result = {
  property_name : string;
  formula : Mv_mcl.Formula.t;
  holds : bool;
}

type verification = {
  lts : Lts.t;
  minimized : Lts.t;
  deadlock_states : int list;
  results : property_result list;
}

let verify ?pool ?max_states ?(hide = []) spec properties =
  let lts = generate ?pool ?max_states spec in
  let abstracted = if hide = [] then lts else Lts.hide lts ~gates:hide in
  let minimized = Mv_bisim.Branching.minimize ?pool abstracted in
  let results =
    List.map
      (fun (property_name, formula) ->
         { property_name; formula; holds = Mv_mcl.Eval.holds lts formula })
      properties
  in
  { lts; minimized; deadlock_states = Lts.deadlocks lts; results }

let all_hold v = List.for_all (fun r -> r.holds) v.results

let deadlock_witness v = Mv_lts.Trace.shortest_to_deadlock v.lts

let action_witness v ~gate =
  Mv_lts.Trace.shortest_to_action v.lts ~action:(fun name ->
      Label.gate name = gate)

(* ------------------------------------------------------------------ *)
(* Performance pipeline                                                *)

type performance = {
  imc : Imc.t;
  lumped : Imc.t;
  conversion : To_ctmc.result;
  steady : (float array * Mv_markov.Solver_stats.t) Lazy.t;
}

let performance_of_imc ?pool ?(keep = []) ?(scheduler = To_ctmc.Uniform) imc =
  let visible_kept name = List.mem (Label.gate name) keep in
  let hidden =
    (* hide every gate not in [keep] *)
    let labels = Imc.labels imc in
    let gates = ref [] in
    for l = 1 to Label.count labels - 1 do
      let gate = Label.gate (Label.name labels l) in
      if (not (visible_kept (Label.name labels l))) && not (List.mem gate !gates)
      then gates := gate :: !gates
    done;
    Imc.hide imc ~gates:!gates
  in
  let progressed = Imc.maximal_progress hidden in
  let lumped = Obs.span "flow.lump" (fun () -> Mv_imc.Lump.minimize progressed) in
  let conversion =
    Obs.span "flow.to_ctmc" (fun () -> To_ctmc.convert ~scheduler lumped)
  in
  {
    imc;
    lumped;
    conversion;
    steady =
      lazy
        (Obs.span "flow.solve" (fun () ->
             Ctmc.steady_state_stats ?pool conversion.To_ctmc.ctmc));
  }

let performance ?pool ?max_states ?keep ?scheduler spec =
  let lts = generate ?pool ?max_states spec in
  performance_of_imc ?pool ?keep ?scheduler (Imc.of_lts lts)

let steady_vector perf = fst (Lazy.force perf.steady)
let solver_stats perf = snd (Lazy.force perf.steady)

let throughput perf ~gate =
  let pi = steady_vector perf in
  let ctmc = perf.conversion.To_ctmc.ctmc in
  List.fold_left
    (fun acc (action, value) ->
       if Label.gate action = gate then acc +. value else acc)
    0.0
    (Ctmc.throughputs ctmc ~pi)

let throughputs perf =
  let pi = steady_vector perf in
  Ctmc.throughputs perf.conversion.To_ctmc.ctmc ~pi

(* Redirect every transition tagged with an action on [gate] to a
   fresh absorbing state; first-passage to it is the time to the first
   occurrence of the action. *)
let first_action_ctmc ctmc ~gate =
  let n = Ctmc.nb_states ctmc in
  let absorbing = n in
  let transitions = ref [] in
  Ctmc.iter_transitions ctmc (fun tr ->
      let tagged =
        List.exists (fun a -> Label.gate a = gate) tr.Ctmc.actions
      in
      let tr = if tagged then { tr with Ctmc.dst = absorbing } else tr in
      transitions := tr :: !transitions);
  let redirected =
    Ctmc.make ~nb_states:(n + 1) ~initial:(Ctmc.initial ctmc) !transitions
  in
  (redirected, absorbing)

let time_to_first perf ~gate =
  let redirected, absorbing =
    first_action_ctmc perf.conversion.To_ctmc.ctmc ~gate
  in
  let hitting = Ctmc.mean_first_passage redirected ~targets:[ absorbing ] in
  hitting.(Ctmc.initial redirected)

let probability_by perf ~gate ~horizon =
  let redirected, absorbing =
    first_action_ctmc perf.conversion.To_ctmc.ctmc ~gate
  in
  Ctmc.reach_probability_by redirected ~targets:[ absorbing ] ~horizon

let expected_reward perf reward =
  let pi = steady_vector perf in
  Ctmc.expected_reward perf.conversion.To_ctmc.ctmc ~pi reward
