module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Imc = Mv_imc.Imc
module To_ctmc = Mv_imc.To_ctmc
module Ctmc = Mv_markov.Ctmc
module Obs = Mv_obs.Obs
module Cache = Mv_store.Cache

let model_of_text text = Mv_calc.Parser.spec_of_string_checked text

type equivalence = Strong | Branching | Divbranching | Weak | Traces

let equivalence_name = function
  | Strong -> "strong"
  | Branching -> "branching"
  | Divbranching -> "divbranching"
  | Weak -> "weak"
  | Traces -> "traces"

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

module Config = struct
  type t = {
    pool : Mv_par.Pool.t option;
    max_states : int option;
    hide : string list;
    keep : string list;
    scheduler : To_ctmc.scheduler;
    cache : Cache.t option;
    solve_method : Mv_kern.Solver.method_ option;
    budget : Budget.t option;
    out_of_core : bool;
    mem_budget_mb : int option;
    scratch_dir : string option;
    expect : int option;
    compose_plan : Mv_compose.Net.plan;
  }

  let default =
    {
      pool = None;
      max_states = None;
      hide = [];
      keep = [];
      scheduler = To_ctmc.Uniform;
      cache = None;
      solve_method = None;
      budget = None;
      out_of_core = false;
      mem_budget_mb = None;
      scratch_dir = None;
      expect = None;
      compose_plan = `Naive;
    }

  let with_pool pool t = { t with pool }
  let with_solve_method solve_method t = { t with solve_method }
  let with_max_states max_states t = { t with max_states = Some max_states }
  let with_hide hide t = { t with hide }
  let with_keep keep t = { t with keep }
  let with_scheduler scheduler t = { t with scheduler }
  let with_cache cache t = { t with cache }
  let with_budget budget t = { t with budget }
  let with_out_of_core out_of_core t = { t with out_of_core }
  let with_mem_budget_mb mem_budget_mb t = { t with mem_budget_mb }
  let with_scratch_dir scratch_dir t = { t with scratch_dir }
  let with_expect expect t = { t with expect }
  let with_compose_plan compose_plan t = { t with compose_plan }
end

(* Budget checkpoints: [budget_tick] at step boundaries (wall-time),
   [budget_states] wherever a state count is known, and [budget_probe]
   threaded into the explorer as its cooperative tick. All no-ops
   without a budget. *)
let budget_tick (config : Config.t) =
  match config.budget with Some b -> Budget.tick b | None -> ()

let budget_states (config : Config.t) n =
  match config.budget with Some b -> Budget.check b ~states:n | None -> ()

let budget_probe (config : Config.t) =
  match config.budget with
  | Some b -> Some (fun ~states -> Budget.check b ~states)
  | None -> None

(* Memoize an LTS-producing operation through the config's cache, if
   any. The pool is deliberately absent from the key: every parallel
   engine produces results identical to the sequential one. *)
let memo (config : Config.t) ~op ~params ~source compute =
  match config.cache with
  | None -> compute ()
  | Some cache -> Cache.memoize_lts cache ~op ~params source compute

let max_states_param (config : Config.t) =
  ( "max_states",
    match config.max_states with
    | Some n -> string_of_int n
    | None -> "default" )

(* ------------------------------------------------------------------ *)
(* Result types (shared by Run and the legacy wrappers)                *)

type property_result = {
  property_name : string;
  formula : Mv_mcl.Formula.t;
  holds : bool;
}

type verification = {
  lts : Lts.t;
  minimized : Lts.t;
  deadlock_states : int list;
  results : property_result list;
}

type performance = {
  imc : Imc.t;
  lumped : Imc.t;
  conversion : To_ctmc.result;
  steady : (float array * Mv_markov.Solver_stats.t) Lazy.t;
}

module Run = struct
  let generate (config : Config.t) spec =
    Obs.span "flow.generate" @@ fun () ->
    budget_tick config;
    let lts =
      memo config ~op:"generate"
        ~params:[ max_states_param config ]
        ~source:(Mv_calc.Ast.spec_to_string spec)
        (fun () ->
          Mv_calc.State_space.lts ?pool:config.pool
            ?tick:(budget_probe config) ?max_states:config.max_states
            ?expect:config.expect spec)
    in
    (* The explorer ticks at a coarse stride, so re-check the final
       count — outside the memo, so an over-budget state space is
       reported even when it comes from the cache (and a cold
       over-budget result is still stored for future unbudgeted
       callers). *)
    budget_states config (Lts.nb_states lts);
    lts

  (* Split the top-level parallel/hide skeleton of the initial
     behaviour into a composition network; everything below any other
     construct is generated as one leaf. *)
  let generate_compositional (config : Config.t) spec =
    let max_states = config.max_states in
    let evaluate () =
      let leaf_counter = ref 0 in
      let rec decompose (behavior : Mv_calc.Ast.behavior) =
        match behavior with
        | Mv_calc.Ast.At (_, inner) -> decompose inner
        | Mv_calc.Ast.Par (Mv_calc.Ast.Gates gates, a, b) ->
          Mv_compose.Net.Par (gates, decompose a, decompose b)
        | Mv_calc.Ast.Hide (gates, inner) ->
          Mv_compose.Net.Hide (gates, decompose inner)
        | Mv_calc.Ast.Stop | Mv_calc.Ast.Exit _ | Mv_calc.Ast.Prefix _
        | Mv_calc.Ast.Rate _ | Mv_calc.Ast.Choice _ | Mv_calc.Ast.Guard _
        | Mv_calc.Ast.Par (Mv_calc.Ast.All, _, _) | Mv_calc.Ast.Rename _
        | Mv_calc.Ast.Seq _ | Mv_calc.Ast.Call _ ->
          incr leaf_counter;
          let name = Printf.sprintf "component%d" !leaf_counter in
          Mv_compose.Net.Leaf
            ( name,
              Mv_calc.State_space.lts ?tick:(budget_probe config) ?max_states
                { spec with Mv_calc.Ast.init = behavior } )
      in
      Mv_compose.Net.evaluate ~plan:config.compose_plan
        ~strategy:`Compositional
        (decompose spec.Mv_calc.Ast.init)
    in
    match config.cache with
    | None -> evaluate ()
    | Some cache -> (
        (* Only the final LTS is cached; on a hit the per-node steps of
           the original evaluation are gone, so the report carries a
           single synthetic step and a conservative peak. *)
        (* the plan changes the (equivalent but not identical)
           intermediate numbering, so it keys the cached artifact *)
        let params =
          [
            max_states_param config;
            ( "plan",
              match config.compose_plan with
              | `Naive -> "naive"
              | `Greedy -> "greedy" );
          ]
        in
        let source = Mv_calc.Ast.spec_to_string spec in
        match
          Cache.find_lts cache ~op:"generate_compositional" ~params source
        with
        | Some result ->
          {
            Mv_compose.Net.result;
            steps =
              [
                {
                  Mv_compose.Net.description = "composition (cache hit)";
                  states = Lts.nb_states result;
                  transitions = Lts.nb_transitions result;
                };
              ];
            peak_states = Lts.nb_states result;
          }
        | None ->
          let report = evaluate () in
          Cache.store_lts cache ~op:"generate_compositional" ~params source
            report.Mv_compose.Net.result;
          report)

  (* ---------------- out-of-core pipeline ------------------------- *)

  (* Streaming generation: explore with the spillable seen set and
     write the .mvb directly, never materializing the LTS. The file is
     byte-identical to [Mvb.write_file] of [generate]'s result. *)
  let generate_mvb (config : Config.t) spec ~out =
    Obs.span "flow.generate_ooc" @@ fun () ->
    budget_tick config;
    let scratch_dir =
      match config.scratch_dir with
      | Some d -> d
      | None -> Filename.dirname out
    in
    (* the hot seen-set gets half the memory budget; the other half
       covers the bloom bits, the current BFS level and the program *)
    let hot_budget_bytes =
      Option.map (fun mb -> max (1 lsl 16) (mb * 1024 * 1024 / 2))
        config.mem_budget_mb
    in
    let writer = Mv_store.Mvb.Stream.create out in
    match
      Mv_calc.State_space.generate_ooc ?tick:(budget_probe config)
        ?max_states:config.max_states ?expect:config.expect
        ?hot_budget_bytes ~scratch_dir
        ~labels:(Mv_store.Mvb.Stream.labels writer)
        ~emit:(Mv_store.Mvb.Stream.add_state writer)
        spec
    with
    | outcome ->
      Mv_store.Mvb.Stream.finish writer ~initial:0;
      budget_states config outcome.Mv_lts.Explore.ooc_states;
      outcome
    | exception exn ->
      Mv_store.Mvb.Stream.abort writer;
      raise exn

  (* Out-of-core strong minimization: the transition relation is read
     through an mmap'd segment reader and the CSR indexes live in mmap
     scratch, so resident memory is O(states) for the partition plus
     the quotient — not O(transitions). The output file is
     byte-identical to minimizing the materialized LTS. *)
  let minimize_mvb (config : Config.t) equivalence ~src ~dst =
    (match equivalence with
     | Strong -> ()
     | _ ->
       invalid_arg
         (Printf.sprintf "out-of-core minimization supports strong only, not %s"
            (equivalence_name equivalence)));
    Obs.span "flow.minimize_ooc" @@ fun () ->
    budget_tick config;
    let seg = Mv_store.Mvb.Segment.openfile src in
    let n = Mv_store.Mvb.Segment.nb_states seg in
    let m = Mv_store.Mvb.Segment.nb_transitions seg in
    budget_states config n;
    let scratch =
      match config.scratch_dir with
      | Some d -> d
      | None -> Filename.dirname dst
    in
    let mode = Mv_kern.Csr.Scratch scratch in
    let iter f = Mv_store.Mvb.Segment.iter_all seg f in
    let fwd = Mv_kern.Csr.forward_iter ~mode ~n ~m iter in
    let rev = Mv_kern.Csr.reverse_iter ~mode ~n ~m iter in
    let labels = Mv_store.Mvb.Segment.labels seg in
    let block_of, count =
      Mv_kern.Refine.strong ~pool:config.pool
        ~nb_labels:(Label.count labels) ~fwd ~rev
    in
    (* quotient without materializing the input: one more segment
       sweep, deduplicating mapped transitions as they appear (the
       distinct set is as small as the minimized system). The mapped
       triple packs into one immediate int whenever count^2 * labels
       fits a word — always, short of 10^9-block quotients — so the
       sweep allocates nothing per transition and the table holds
       unboxed keys. *)
    let nl = Label.count labels in
    let transitions =
      if
        count > 0 && nl > 0
        && count < 1 lsl 30
        && nl < 1 lsl 30
        && nl * count <= max_int / count
      then begin
        let distinct : (int, unit) Hashtbl.t = Hashtbl.create 65536 in
        Mv_store.Mvb.Segment.iter_all seg (fun s l d ->
            let key = ((block_of.(s) * nl) + l) * count + block_of.(d) in
            if not (Hashtbl.mem distinct key) then
              Hashtbl.replace distinct key ());
        Hashtbl.fold
          (fun k () acc ->
            let bd = k mod count in
            let r = k / count in
            (r / nl, r mod nl, bd) :: acc)
          distinct []
      end
      else begin
        let distinct : (int * int * int, unit) Hashtbl.t =
          Hashtbl.create 4096
        in
        Mv_store.Mvb.Segment.iter_all seg (fun s l d ->
            let key = (block_of.(s), l, block_of.(d)) in
            if not (Hashtbl.mem distinct key) then
              Hashtbl.replace distinct key ());
        Hashtbl.fold (fun t () acc -> t :: acc) distinct []
      end
    in
    let quotient =
      Lts.make ~nb_states:count
        ~initial:block_of.(Mv_store.Mvb.Segment.initial seg)
        ~labels transitions
    in
    let minimized = Lts.restrict_reachable quotient in
    Mv_store.Mvb.write_file dst minimized;
    minimized

  let minimize_uncached (config : Config.t) equivalence lts =
    let pool = config.pool in
    match equivalence with
    | Strong -> Mv_bisim.Strong.minimize ?pool lts
    | Branching -> Mv_bisim.Branching.minimize ?pool lts
    | Divbranching ->
      Mv_bisim.Branching.minimize ?pool ~divergence_sensitive:true lts
    | Weak -> Mv_bisim.Weak.minimize ?pool lts
    | Traces -> Mv_bisim.Traces.determinize lts

  let minimize (config : Config.t) equivalence lts =
    budget_tick config;
    memo config ~op:"minimize"
      ~params:[ ("equivalence", equivalence_name equivalence) ]
      ~source:(Mv_store.Mvb.to_string lts)
      (fun () ->
        budget_states config (Lts.nb_states lts);
        minimize_uncached config equivalence lts)

  let equivalent (config : Config.t) equivalence a b =
    budget_tick config;
    budget_states config (Lts.nb_states a + Lts.nb_states b);
    let pool = config.pool in
    match equivalence with
    | Strong -> Mv_bisim.Strong.equivalent ?pool a b
    | Branching -> Mv_bisim.Branching.equivalent ?pool a b
    | Divbranching ->
      Mv_bisim.Branching.equivalent ?pool ~divergence_sensitive:true a b
    | Weak -> Mv_bisim.Weak.equivalent ?pool a b
    | Traces -> Mv_bisim.Traces.equivalent a b

  let verify (config : Config.t) spec properties =
    let lts = generate config spec in
    let abstracted =
      if config.hide = [] then lts else Lts.hide lts ~gates:config.hide
    in
    let minimized = minimize config Branching abstracted in
    budget_tick config;
    let results =
      List.map
        (fun (property_name, formula) ->
           { property_name; formula; holds = Mv_mcl.Eval.holds lts formula })
        properties
    in
    { lts; minimized; deadlock_states = Lts.deadlocks lts; results }

  (* The lumping quotient is the expensive step of the performance
     pipeline, so it goes through the cache as well; the IMC crosses
     the cache as an exact-rate LTS encoding (hex floats survive the
     round-trip bit-for-bit). *)
  let lump (config : Config.t) progressed =
    budget_tick config;
    match config.cache with
    | None -> Obs.span "flow.lump" (fun () -> Mv_imc.Lump.minimize progressed)
    | Some cache -> (
        Obs.span "flow.lump" @@ fun () ->
        let source = Mv_store.Mvb.to_string (Imc.to_lts ~exact:true progressed) in
        match Cache.find_lts cache ~op:"lump" source with
        | Some lts -> Imc.of_lts lts
        | None ->
          let lumped = Mv_imc.Lump.minimize progressed in
          Cache.store_lts cache ~op:"lump" source (Imc.to_lts ~exact:true lumped);
          lumped)

  let performance_of_imc (config : Config.t) imc =
    let keep = config.keep in
    let visible_kept name = List.mem (Label.gate name) keep in
    let hidden =
      (* hide every gate not in [keep] *)
      let labels = Imc.labels imc in
      let gates = ref [] in
      for l = 1 to Label.count labels - 1 do
        let gate = Label.gate (Label.name labels l) in
        if
          (not (visible_kept (Label.name labels l)))
          && not (List.mem gate !gates)
        then gates := gate :: !gates
      done;
      Imc.hide imc ~gates:!gates
    in
    let progressed = Imc.maximal_progress hidden in
    let lumped = lump config progressed in
    let conversion =
      Obs.span "flow.to_ctmc" (fun () ->
          To_ctmc.convert ~scheduler:config.scheduler lumped)
    in
    {
      imc;
      lumped;
      conversion;
      steady =
        lazy
          (Obs.span "flow.solve" (fun () ->
               budget_tick config;
               Ctmc.steady_state_stats ?pool:config.pool
                 ?method_:config.solve_method conversion.To_ctmc.ctmc));
    }

  let performance (config : Config.t) spec =
    let lts = generate config spec in
    performance_of_imc config (Imc.of_lts lts)
end

(* ------------------------------------------------------------------ *)
(* Legacy entry points (thin wrappers over Run with an ad-hoc config)  *)

let config ?pool ?max_states ?(hide = []) ?(keep = [])
    ?(scheduler = To_ctmc.Uniform) () =
  {
    Config.pool;
    max_states;
    hide;
    keep;
    scheduler;
    cache = None;
    solve_method = None;
    budget = None;
    out_of_core = false;
    mem_budget_mb = None;
    scratch_dir = None;
    expect = None;
    compose_plan = `Naive;
  }

let generate ?pool ?max_states spec =
  Run.generate (config ?pool ?max_states ()) spec

let generate_compositional ?max_states spec =
  Run.generate_compositional (config ?max_states ()) spec

let verify ?pool ?max_states ?hide spec properties =
  Run.verify (config ?pool ?max_states ?hide ()) spec properties

let all_hold v = List.for_all (fun r -> r.holds) v.results

let deadlock_witness v = Mv_lts.Trace.shortest_to_deadlock v.lts

let action_witness v ~gate =
  Mv_lts.Trace.shortest_to_action v.lts ~action:(fun name ->
      Label.gate name = gate)

let performance_of_imc ?pool ?keep ?scheduler imc =
  Run.performance_of_imc (config ?pool ?keep ?scheduler ()) imc

let performance ?pool ?max_states ?keep ?scheduler spec =
  Run.performance (config ?pool ?max_states ?keep ?scheduler ()) spec

let steady_vector perf = fst (Lazy.force perf.steady)
let solver_stats perf = snd (Lazy.force perf.steady)

let throughput perf ~gate =
  let pi = steady_vector perf in
  let ctmc = perf.conversion.To_ctmc.ctmc in
  List.fold_left
    (fun acc (action, value) ->
       if Label.gate action = gate then acc +. value else acc)
    0.0
    (Ctmc.throughputs ctmc ~pi)

let throughputs perf =
  let pi = steady_vector perf in
  Ctmc.throughputs perf.conversion.To_ctmc.ctmc ~pi

(* Redirect every transition tagged with an action on [gate] to a
   fresh absorbing state; first-passage to it is the time to the first
   occurrence of the action. *)
let first_action_ctmc ctmc ~gate =
  let n = Ctmc.nb_states ctmc in
  let absorbing = n in
  let transitions = ref [] in
  Ctmc.iter_transitions ctmc (fun tr ->
      let tagged =
        List.exists (fun a -> Label.gate a = gate) tr.Ctmc.actions
      in
      let tr = if tagged then { tr with Ctmc.dst = absorbing } else tr in
      transitions := tr :: !transitions);
  let redirected =
    Ctmc.make ~nb_states:(n + 1) ~initial:(Ctmc.initial ctmc) !transitions
  in
  (redirected, absorbing)

let time_to_first perf ~gate =
  let redirected, absorbing =
    first_action_ctmc perf.conversion.To_ctmc.ctmc ~gate
  in
  let hitting = Ctmc.mean_first_passage redirected ~targets:[ absorbing ] in
  hitting.(Ctmc.initial redirected)

let probability_by perf ~gate ~horizon =
  let redirected, absorbing =
    first_action_ctmc perf.conversion.To_ctmc.ctmc ~gate
  in
  Ctmc.reach_probability_by redirected ~targets:[ absorbing ] ~horizon

let expected_reward perf reward =
  let pi = steady_vector perf in
  Ctmc.expected_reward perf.conversion.To_ctmc.ctmc ~pi reward
