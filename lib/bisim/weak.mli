(** Weak (observational) bisimulation.

    Milner's observational equivalence: tau moves may be absorbed
    before and after a visible action ([tau* a tau*]), and a tau move
    may be matched by any number of taus (including none). Coarser than
    branching bisimulation (which also constrains the intermediate
    states), finer than weak traces.

    Implemented by saturation: build the weak-transition relation and
    minimize it modulo strong bisimulation. Saturation can square the
    transition count, so prefer {!Branching} (cheaper and finer —
    almost always what the flow needs); this module exists for
    CADP-parity and for the rare systems where branching is too
    strong. The optional [pool] parallelizes the strong refinement of
    the saturation (see {!Strong}). *)

(** Coarsest weak-bisimulation partition of the original states. *)
val partition : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Partition.t

(** Quotient by weak bisimilarity (built on the original transitions,
    inert taus dropped), restricted to reachable states. *)
val minimize : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Mv_lts.Lts.t

(** Weak bisimilarity of the initial states of two LTSs. *)
val equivalent : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Mv_lts.Lts.t -> bool
