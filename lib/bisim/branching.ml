module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Scc = Mv_lts.Scc
module Csr = Mv_kern.Csr
module Arr = Mv_kern.Arr
module Sig_table = Mv_kern.Sig_table

let tau_scc lts =
  let iter_succ s f = Lts.iter_out lts s (fun l d -> if l = Label.tau then f d) in
  Scc.compute ~nb_states:(Lts.nb_states lts) ~iter_succ

let divergence_free lts =
  let scc = tau_scc lts in
  (* a tau cycle exists iff some tau-SCC is non-trivial or has a tau
     self-loop *)
  let size = Array.make scc.count 0 in
  Array.iter (fun c -> size.(c) <- size.(c) + 1) scc.component;
  let divergent = ref false in
  Array.iter (fun members -> if members > 1 then divergent := true) size;
  if not !divergent then
    Lts.iter_transitions lts (fun s l d ->
        if l = Label.tau && s = d then divergent := true);
  not !divergent

(* Collapse tau-SCCs. Tarjan numbers components in reverse topological
   order of the condensation, so in the collapsed system every tau edge
   goes from a higher id to a lower id: increasing id order is a valid
   bottom-up processing order for signature inheritance. Also reports
   which collapsed states are divergent (a nontrivial tau-SCC or a tau
   self-loop). *)
let collapse lts =
  let scc = tau_scc lts in
  let transitions = ref [] in
  let divergent = Array.make scc.count false in
  let size = Array.make scc.count 0 in
  Array.iter (fun c -> size.(c) <- size.(c) + 1) scc.component;
  Array.iteri (fun c members -> if members > 1 then divergent.(c) <- true) size;
  Lts.iter_transitions lts (fun s l d ->
      let cs = scc.component.(s) and cd = scc.component.(d) in
      if l = Label.tau && cs = cd then divergent.(cs) <- true
      else transitions := (cs, l, cd) :: !transitions);
  let collapsed =
    Lts.make ~nb_states:scc.count
      ~initial:scc.component.(Lts.initial lts)
      ~labels:(Lts.labels lts) !transitions
  in
  (collapsed, scc.component, divergent)

let signatures_legacy ?pool ?(divergent = [||]) collapsed (p : Partition.t) =
  let n = Lts.nb_states collapsed in
  let sigs = Array.make n [] in
  let compute s =
    (* every tau successor d of s has d < s, so sigs.(d) is final *)
    let direct =
      Lts.fold_out collapsed s
        (fun l d acc ->
           if l = Label.tau && p.block_of.(d) = p.block_of.(s) then acc
           else (l, p.block_of.(d)) :: acc)
        []
    in
    let inherited =
      Lts.fold_out collapsed s
        (fun l d acc ->
           if l = Label.tau && p.block_of.(d) = p.block_of.(s) then
             List.rev_append sigs.(d) acc
           else acc)
        []
    in
    (* divergence sensitivity: a divergent state carries the marker
       (-1, -1), which no real (label, block) pair can produce *)
    let marker =
      if Array.length divergent > 0 && divergent.(s) then [ (-1, -1) ] else []
    in
    sigs.(s) <- List.sort_uniq compare (marker @ List.rev_append direct inherited)
  in
  (match pool with
   | Some pool when Mv_par.Pool.size pool > 1 && n > 64 ->
     (* Signature inheritance follows inert tau edges, so states are
        scheduled by their height in the inert-tau DAG: everything at
        one height depends only on strictly lower heights, making each
        height an independent parallel batch. Heights are recomputed
        per round (inertness depends on the current partition); one
        sequential O(m) pass suffices because tau edges always point
        to lower state ids. *)
     let height = Array.make n 0 in
     let max_height = ref 0 in
     for s = 0 to n - 1 do
       let h =
         Lts.fold_out collapsed s
           (fun l d acc ->
              if l = Label.tau && p.block_of.(d) = p.block_of.(s) then
                max acc (height.(d) + 1)
              else acc)
           0
       in
       height.(s) <- h;
       if h > !max_height then max_height := h
     done;
     let offsets = Array.make (!max_height + 2) 0 in
     Array.iter (fun h -> offsets.(h + 1) <- offsets.(h + 1) + 1) height;
     for h = 1 to !max_height + 1 do
       offsets.(h) <- offsets.(h) + offsets.(h - 1)
     done;
     let by_height = Array.make n 0 in
     let fill = Array.copy offsets in
     for s = 0 to n - 1 do
       let h = height.(s) in
       by_height.(fill.(h)) <- s;
       fill.(h) <- fill.(h) + 1
     done;
     for h = 0 to !max_height do
       Mv_par.Pool.for_ ~pool ~lo:offsets.(h) ~hi:offsets.(h + 1)
         (fun i -> compute by_height.(i))
     done
   | _ ->
     for s = 0 to n - 1 do
       compute s
     done);
  sigs

let refine_legacy ?pool ?divergent collapsed =
  let n = Lts.nb_states collapsed in
  let rec loop (p : Partition.t) =
    let sigs = signatures_legacy ?pool ?divergent collapsed p in
    let keys : (int * (int * int) list, int) Hashtbl.t = Hashtbl.create 256 in
    let block_of = Array.make n 0 in
    let next = ref 0 in
    for s = 0 to n - 1 do
      let key = (p.block_of.(s), sigs.(s)) in
      let id =
        match Hashtbl.find_opt keys key with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.replace keys key id;
          id
      in
      block_of.(s) <- id
    done;
    let p' : Partition.t = { block_of; count = !next } in
    if p'.count = p.count then p' else loop p'
  in
  loop (Partition.trivial n)

(* Flat engine: same fixpoint as the legacy one, but signatures are
   packed int arrays over a CSR index built once — a non-inert move
   (l, b) becomes the single word [l * (n+1) + b] (injective since
   blocks are < n+1), the divergence marker is [-1] (no packed move is
   negative), and inherited signatures are blitted then
   sorted/deduplicated in place. Packing is injective, so two flat
   signatures are equal exactly when the legacy signature lists are:
   every round groups the states identically, ids are assigned by
   first occurrence in state order either way, and the resulting
   partitions are identical — blocks and ids both. *)
let signatures ?pool ?(divergent = [||]) fwd (p : Partition.t) =
  let n = Csr.nb_rows fwd in
  let base = n + 1 in
  let sigs = Array.make n [||] in
  let compute s =
    let lo = Arr.get fwd.Csr.row s and hi = Arr.get fwd.Csr.row (s + 1) in
    let is_divergent = Array.length divergent > 0 && divergent.(s) in
    let cap = ref (if is_divergent then 1 else 0) in
    for i = lo to hi - 1 do
      if
        Arr.get fwd.Csr.lbl i = Label.tau
        && p.block_of.(Arr.get fwd.Csr.col i) = p.block_of.(s)
      then cap := !cap + Array.length sigs.(Arr.get fwd.Csr.col i)
      else incr cap
    done;
    let buf = Array.make (max !cap 1) 0 in
    let len = ref 0 in
    if is_divergent then begin
      buf.(0) <- -1;
      len := 1
    end;
    for i = lo to hi - 1 do
      let l = Arr.get fwd.Csr.lbl i and d = Arr.get fwd.Csr.col i in
      if l = Label.tau && p.block_of.(d) = p.block_of.(s) then begin
        (* every tau successor d of s has d < s, so sigs.(d) is final *)
        let inherited = sigs.(d) in
        let m = Array.length inherited in
        Array.blit inherited 0 buf !len m;
        len := !len + m
      end
      else begin
        buf.(!len) <- (l * base) + p.block_of.(d);
        incr len
      end
    done;
    let final = Sig_table.sort_dedup buf !len in
    sigs.(s) <- (if final = Array.length buf then buf else Array.sub buf 0 final)
  in
  (match pool with
   | Some pool when Mv_par.Pool.size pool > 1 && n > 64 ->
     (* same height-batched schedule as the legacy engine: everything
        at one height of the inert-tau DAG depends only on strictly
        lower heights *)
     let height = Array.make n 0 in
     let max_height = ref 0 in
     for s = 0 to n - 1 do
       let h = ref 0 in
       for i = Arr.get fwd.Csr.row s to Arr.get fwd.Csr.row (s + 1) - 1 do
         if
           Arr.get fwd.Csr.lbl i = Label.tau
           && p.block_of.(Arr.get fwd.Csr.col i) = p.block_of.(s)
           && height.(Arr.get fwd.Csr.col i) + 1 > !h
         then h := height.(Arr.get fwd.Csr.col i) + 1
       done;
       height.(s) <- !h;
       if !h > !max_height then max_height := !h
     done;
     let offsets = Array.make (!max_height + 2) 0 in
     Array.iter (fun h -> offsets.(h + 1) <- offsets.(h + 1) + 1) height;
     for h = 1 to !max_height + 1 do
       offsets.(h) <- offsets.(h) + offsets.(h - 1)
     done;
     let by_height = Array.make n 0 in
     let fill = Array.copy offsets in
     for s = 0 to n - 1 do
       let h = height.(s) in
       by_height.(fill.(h)) <- s;
       fill.(h) <- fill.(h) + 1
     done;
     for h = 0 to !max_height do
       Mv_par.Pool.for_ ~pool ~lo:offsets.(h) ~hi:offsets.(h + 1)
         (fun i -> compute by_height.(i))
     done
   | _ ->
     for s = 0 to n - 1 do
       compute s
     done);
  sigs

let refine ?pool ?divergent collapsed =
  let n = Lts.nb_states collapsed in
  let fwd = Csr.forward collapsed in
  let table = Sig_table.create () in
  let rec loop (p : Partition.t) =
    Sig_table.reset table;
    let sigs = signatures ?pool ?divergent fwd p in
    let block_of = Array.make n 0 in
    for s = 0 to n - 1 do
      block_of.(s) <- Sig_table.classify table ~block:p.Partition.block_of.(s) sigs.(s)
    done;
    let p' : Partition.t = { block_of; count = Sig_table.count table } in
    if p'.count = p.count then p' else loop p'
  in
  loop (Partition.trivial n)

(* A state diverges iff some tau path reaches a tau-cycle: close the
   SCC-level divergence backwards over the collapsed tau DAG
   (increasing id order visits successors first). *)
let divergence_closure collapsed divergent =
  let n = Lts.nb_states collapsed in
  let delta = Array.copy divergent in
  for s = 0 to n - 1 do
    Lts.iter_out collapsed s (fun l d ->
        if l = Label.tau && delta.(d) then delta.(s) <- true)
  done;
  delta

let partition_with
    ~(refine :
        ?pool:Mv_par.Pool.t -> ?divergent:bool array -> Lts.t -> Partition.t)
    ?pool ?(divergence_sensitive = false) lts =
  let collapsed, component, divergent = collapse lts in
  let p =
    if divergence_sensitive then
      refine ?pool ~divergent:(divergence_closure collapsed divergent) collapsed
    else refine ?pool ?divergent:None collapsed
  in
  {
    Partition.block_of =
      Array.init (Lts.nb_states lts) (fun s ->
          p.Partition.block_of.(component.(s)));
    count = p.Partition.count;
  }

let partition ?pool ?divergence_sensitive lts =
  partition_with ~refine ?pool ?divergence_sensitive lts

let partition_legacy ?pool ?divergence_sensitive lts =
  partition_with ~refine:refine_legacy ?pool ?divergence_sensitive lts

let minimize_from ?(divergence_sensitive = false) lts (p : Partition.t) =
  let quotient = Quotient.weak lts p in
  let quotient =
    if not divergence_sensitive then quotient
    else begin
      (* restore a tau self-loop on every block containing a divergent
         original state (inert taus inside a tau-SCC were dropped) *)
      let _, component, divergent = collapse lts in
      let needs_loop = Hashtbl.create 8 in
      Array.iteri
        (fun s c ->
           if divergent.(c) then Hashtbl.replace needs_loop p.Partition.block_of.(s) ())
        component;
      if Hashtbl.length needs_loop = 0 then quotient
      else begin
        let transitions = ref [] in
        Lts.iter_transitions quotient (fun s l d -> transitions := (s, l, d) :: !transitions);
        Hashtbl.iter
          (fun block () -> transitions := (block, Label.tau, block) :: !transitions)
          needs_loop;
        Lts.make ~nb_states:(Lts.nb_states quotient)
          ~initial:(Lts.initial quotient)
          ~labels:(Lts.labels quotient) !transitions
      end
    end
  in
  Lts.restrict_reachable quotient

let minimize ?pool ?(divergence_sensitive = false) lts =
  minimize_from ~divergence_sensitive lts
    (partition ?pool ~divergence_sensitive lts)

let minimize_legacy ?(divergence_sensitive = false) lts =
  minimize_from ~divergence_sensitive lts
    (partition_legacy ~divergence_sensitive lts)

let equivalent ?pool ?(divergence_sensitive = false) a b =
  let union, offset = Union.disjoint a b in
  let p = partition ?pool ~divergence_sensitive union in
  Partition.same_block p (Lts.initial a) (offset + Lts.initial b)
