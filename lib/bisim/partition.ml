type t = { block_of : int array; count : int }

let trivial nb_states = { block_of = Array.make nb_states 0; count = 1 }

let of_classes ~nb_states class_of =
  let dense = Hashtbl.create 64 in
  let block_of = Array.make nb_states 0 in
  let next = ref 0 in
  for s = 0 to nb_states - 1 do
    let c = class_of s in
    let id =
      match Hashtbl.find_opt dense c with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        Hashtbl.replace dense c id;
        id
    in
    block_of.(s) <- id
  done;
  { block_of; count = !next }

(* Parallelizing a refinement round: signature computation is
   per-state independent (the map phase, where all the fold/sort work
   is) and fans out over the pool; the densification of (old block,
   signature) keys into new block ids stays sequential in state order,
   which is what makes the resulting ids — and hence every later
   round — identical to the sequential algorithm's. *)
let signatures_of ?pool ~nb_states ~signature p =
  match pool with
  | Some pool when Mv_par.Pool.size pool > 1 && nb_states > 64 ->
    let sigs = Array.make nb_states [] in
    Mv_par.Pool.for_ ~pool ~lo:0 ~hi:nb_states (fun s ->
        sigs.(s) <- signature p s);
    fun s -> sigs.(s)
  | _ -> fun s -> signature p s

let refine_step ?pool ~nb_states ~signature p =
  let signature_of = signatures_of ?pool ~nb_states ~signature p in
  let keys : (int * (int * int) list, int) Hashtbl.t = Hashtbl.create 256 in
  let block_of = Array.make nb_states 0 in
  let next = ref 0 in
  for s = 0 to nb_states - 1 do
    let key = (p.block_of.(s), signature_of s) in
    let id =
      match Hashtbl.find_opt keys key with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        Hashtbl.replace keys key id;
        id
    in
    block_of.(s) <- id
  done;
  { block_of; count = !next }

let refine_until_stable ?pool ~nb_states ~signature p =
  Mv_obs.Obs.span "bisim.refine" @@ fun () ->
  let rounds = Mv_obs.Obs.counter "bisim.rounds" in
  let blocks = Mv_obs.Obs.series "bisim.blocks" in
  let rec loop p =
    let p' = refine_step ?pool ~nb_states ~signature p in
    Mv_obs.Obs.incr rounds;
    Mv_obs.Obs.push blocks (float_of_int p'.count);
    Mv_obs.Obs.progress (fun () ->
        Printf.sprintf "bisim: %d block(s) over %d state(s)" p'.count
          nb_states);
    if p'.count = p.count then p' else loop p'
  in
  loop p

let same_block p a b = p.block_of.(a) = p.block_of.(b)
