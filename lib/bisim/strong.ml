module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Csr = Mv_kern.Csr
module Refine = Mv_kern.Refine

let signature lts (p : Partition.t) s =
  let pairs = Lts.fold_out lts s (fun l d acc -> (l, p.block_of.(d)) :: acc) [] in
  List.sort_uniq compare pairs

let partition_legacy ?pool lts =
  Partition.refine_until_stable ?pool ~nb_states:(Lts.nb_states lts)
    ~signature:(signature lts)
    (Partition.trivial (Lts.nb_states lts))

(* The Mv_kern splitter-worklist engine touches, per splitter, only the
   predecessors of the splitter's states — no per-round full-signature
   recomputation — and renumbers the final blocks by first occurrence
   in state order, so its partitions (and hence quotients) are
   identical to the legacy engine's. Under a pool it gathers splitter
   predecessors in parallel (round-based batches); the partition it
   returns is byte-identical at every pool size. *)
let partition ?pool lts =
  let block_of, count =
    Refine.strong ~pool
      ~nb_labels:(Label.count (Lts.labels lts))
      ~fwd:(Csr.forward lts) ~rev:(Csr.reverse lts)
  in
  { Partition.block_of; count }

let minimize ?pool lts =
  Lts.restrict_reachable (Quotient.strong lts (partition ?pool lts))

let minimize_legacy lts =
  Lts.restrict_reachable (Quotient.strong lts (partition_legacy lts))

let equivalent ?pool a b =
  let union, offset = Union.disjoint a b in
  let p = partition ?pool union in
  Partition.same_block p (Lts.initial a) (offset + Lts.initial b)
