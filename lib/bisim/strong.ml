module Lts = Mv_lts.Lts

let signature lts (p : Partition.t) s =
  let pairs = Lts.fold_out lts s (fun l d acc -> (l, p.block_of.(d)) :: acc) [] in
  List.sort_uniq compare pairs

let partition ?pool lts =
  Partition.refine_until_stable ?pool ~nb_states:(Lts.nb_states lts)
    ~signature:(signature lts)
    (Partition.trivial (Lts.nb_states lts))

let minimize ?pool lts =
  Lts.restrict_reachable (Quotient.strong lts (partition ?pool lts))

let equivalent ?pool a b =
  let union, offset = Union.disjoint a b in
  let p = partition ?pool union in
  Partition.same_block p (Lts.initial a) (offset + Lts.initial b)
