(** Strong bisimulation.

    Signature refinement in the style of Kanellakis-Smolka: the
    signature of a state is its set of [(label, successor block)]
    pairs. Adequate (O(m) per round, at most [n] rounds) for the model
    sizes this toolchain targets.

    The optional [pool] fans each round's signature computation out
    over the pool domains (signatures are per-state independent); the
    partition, quotient and verdict are identical to the sequential
    ones. *)

(** Coarsest strong-bisimulation partition. *)
val partition : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Partition.t

(** Quotient by the coarsest partition, restricted to reachable
    states. *)
val minimize : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Mv_lts.Lts.t

(** [equivalent a b] — strong bisimilarity of the initial states.
    Labels are matched by printed name. *)
val equivalent : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Mv_lts.Lts.t -> bool
