(** Strong bisimulation.

    The default engine is the {!Mv_kern.Refine} splitter worklist
    (Valmari / Paige-Tarjan style, "process the smaller half" on
    deterministic labels): per splitter it touches only the
    predecessors of the splitter's states through a reverse CSR index,
    instead of recomputing every state's signature every round. Its
    partitions — block ids included — are identical to the legacy
    signature engine's, so quotients are byte-identical and cache keys
    stay valid; see [doc/performance.md].

    [pool] is accepted for API compatibility; the worklist engine is
    sequential (and faster than the parallel legacy engine). *)

(** Coarsest strong-bisimulation partition. *)
val partition : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Partition.t

(** Quotient by the coarsest partition, restricted to reachable
    states. *)
val minimize : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Mv_lts.Lts.t

(** [equivalent a b] — strong bisimilarity of the initial states.
    Labels are matched by printed name. *)
val equivalent : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Mv_lts.Lts.t -> bool

(** {1 Legacy engine}

    Kanellakis-Smolka signature refinement (the signature of a state is
    its set of [(label, successor block)] pairs, recomputed every
    round). Kept as the cross-check oracle for the worklist engine and
    for the E10 benchmark. *)

val partition_legacy : ?pool:Mv_par.Pool.t -> Mv_lts.Lts.t -> Partition.t
val minimize_legacy : Mv_lts.Lts.t -> Mv_lts.Lts.t
