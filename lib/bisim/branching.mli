(** Branching bisimulation (divergence-blind), by Blom-Orzan signature
    refinement.

    Tau-SCCs are collapsed first (states on a tau cycle are branching
    bisimilar when divergence is ignored), which makes the internal tau
    graph acyclic; each refinement round then computes signatures in
    one pass over a topological order of the tau DAG. The signature of
    a state is the set of [(label, block)] moves reachable through
    inert tau steps, excluding inert tau itself.

    The default engine packs each signature into a flat, sorted int
    array over a CSR index built once ({!Mv_kern}), inheriting along
    inert taus by array blit — no per-state list allocation or
    polymorphic sorting. Its partitions are identical, block ids
    included, to the legacy list engine's (see [doc/performance.md]).

    The optional [pool] parallelizes each round: states are batched by
    height in the inert-tau DAG and every batch's signatures are
    computed on all pool domains. The partition, quotient and verdict
    are identical to the sequential ones. *)

(** Coarsest branching-bisimulation partition of the {e original}
    states. With [divergence_sensitive:true] (default [false]) the
    equivalence additionally distinguishes states that can diverge
    (perform infinitely many taus) from those that cannot — CADP's
    "divbranching", the variant that preserves livelocks. *)
val partition :
  ?pool:Mv_par.Pool.t -> ?divergence_sensitive:bool -> Mv_lts.Lts.t -> Partition.t

(** Quotient (inert taus removed; under divergence sensitivity each
    divergent block keeps a tau self-loop), restricted to reachable
    states. *)
val minimize :
  ?pool:Mv_par.Pool.t -> ?divergence_sensitive:bool -> Mv_lts.Lts.t -> Mv_lts.Lts.t

(** Branching bisimilarity of the initial states of two LTSs. *)
val equivalent :
  ?pool:Mv_par.Pool.t ->
  ?divergence_sensitive:bool ->
  Mv_lts.Lts.t ->
  Mv_lts.Lts.t ->
  bool

(** [divergence_free lts] is true when the LTS has no tau cycle
    (callers that need divergence-sensitive results can check this
    before trusting the divergence-blind quotient). *)
val divergence_free : Mv_lts.Lts.t -> bool

(** {1 Legacy engine}

    The original list-signature rounds, kept as the cross-check oracle
    for the flat engine and for the E10 benchmark. *)

val partition_legacy :
  ?pool:Mv_par.Pool.t -> ?divergence_sensitive:bool -> Mv_lts.Lts.t -> Partition.t

val minimize_legacy :
  ?divergence_sensitive:bool -> Mv_lts.Lts.t -> Mv_lts.Lts.t
