module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

(* Saturated ("double arrow") transition system:
   s ==tau==> t  iff  s tau* t
   s ==a==> t    iff  s tau* a tau* t (a visible).
   Weak bisimulation on the original LTS coincides with strong
   bisimulation on the saturation (with the convention that every
   state has the reflexive tau arrow, which the signature encoding
   makes harmless because it is shared by all states of a block). *)

let tau_reach lts =
  (* tau-closure per state, as sorted int lists (transitive) *)
  let n = Lts.nb_states lts in
  let closure = Array.make n [] in
  for s = 0 to n - 1 do
    let seen = Hashtbl.create 8 in
    let rec visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        Lts.iter_out lts v (fun label dst ->
            if label = Label.tau then visit dst)
      end
    in
    visit s;
    closure.(s) <- List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) seen [])
  done;
  closure

let saturate lts =
  let n = Lts.nb_states lts in
  let closure = tau_reach lts in
  let transitions = Hashtbl.create 1024 in
  (* weak tau arrows (reflexive closure included) *)
  for s = 0 to n - 1 do
    List.iter
      (fun t -> Hashtbl.replace transitions (s, Label.tau, t) ())
      closure.(s)
  done;
  (* weak visible arrows: s tau* u -a-> v tau* t *)
  for s = 0 to n - 1 do
    List.iter
      (fun u ->
         Lts.iter_out lts u (fun label v ->
             if label <> Label.tau then
               List.iter
                 (fun t -> Hashtbl.replace transitions (s, label, t) ())
                 closure.(v)))
      closure.(s)
  done;
  let triples = Hashtbl.fold (fun (s, l, t) () acc -> (s, l, t) :: acc) transitions [] in
  Lts.make ~nb_states:n ~initial:(Lts.initial lts) ~labels:(Lts.labels lts) triples

let partition ?pool lts = Strong.partition ?pool (saturate lts)

let minimize ?pool lts =
  Lts.restrict_reachable (Quotient.weak lts (partition ?pool lts))

let equivalent ?pool a b =
  let union, offset = Union.disjoint a b in
  let p = partition ?pool union in
  Partition.same_block p (Lts.initial a) (offset + Lts.initial b)
