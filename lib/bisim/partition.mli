(** Partitions of state spaces and the generic signature-refinement
    loop shared by the strong and branching minimizers.

    A partition maps every state to a dense block id. Refinement
    re-splits every block according to a caller-supplied signature
    function and repeats until the number of blocks is stable; since
    the new key always includes the old block id, every step is a
    proper refinement and the loop terminates in at most [n] rounds. *)

type t = {
  block_of : int array; (** state -> block id in [0 .. count-1] *)
  count : int;
}

(** All states in a single block. *)
val trivial : int -> t

(** [of_classes ~nb_states class_of] builds a partition from an
    arbitrary labelling (ids are densified). *)
val of_classes : nb_states:int -> (int -> int) -> t

(** [refine_until_stable ?pool ~nb_states ~signature p] iterates
    refinement. [signature p s] must return a canonical (sorted,
    duplicate-free) representation of state [s]'s behaviour under
    partition [p]; states of one block with equal signatures stay
    together. With a [pool] of size > 1 each round's signatures are
    computed on all pool domains ([signature] must then be safe to
    call concurrently — it may read the shared partition and LTS but
    not write); block ids are still assigned sequentially in state
    order, so the result is identical to the sequential one. *)
val refine_until_stable :
  ?pool:Mv_par.Pool.t ->
  nb_states:int ->
  signature:(t -> int -> (int * int) list) ->
  t ->
  t

(** [same_block p a b]. *)
val same_block : t -> int -> int -> bool
