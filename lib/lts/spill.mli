(** A bounded-RAM seen-set over encoded states (opaque byte strings
    mapped to state ids), the memory backbone of out-of-core
    exploration.

    Three tiers: a Bloom filter over every key ever added (answers
    "definitely new" with zero I/O — false positives possible, false
    negatives not), a hot hash table bounded by a byte budget, and
    sorted on-disk run files the hot table is spilled to wholesale
    when it outgrows the budget. Runs are merged k-way once more than
    8 accumulate. A key lives in exactly one tier at a time.

    Cold lookups are batched: {!resolve} streams each run once against
    a sorted query batch (a merge join) — callers collect a whole BFS
    level of bloom-positive misses and resolve them in one pass, so
    there are no per-key disk seeks.

    Counters: [ooc.spill_runs], [ooc.spilled_bytes],
    [ooc.merge_passes], [ooc.bloom_negatives], [ooc.cold_lookups]. *)

type t

(** [create ~dir ~expect ~hot_budget_bytes ()] — run files go to
    [dir] (which must exist); the bloom filter is sized at
    [bits_per_key] (default 10) bits per [expect]ed key; the hot
    table is spilled when its estimated footprint exceeds
    [hot_budget_bytes] (clamped to at least 64 KiB). *)
val create :
  ?bits_per_key:int -> dir:string -> expect:int -> hot_budget_bytes:int ->
  unit -> t

(** [add t key id] records a {e new} key (the caller has established
    it is not present). May spill the hot table. *)
val add : t -> string -> int -> unit

(** Hot-tier lookup only; [None] means "not hot" (it may still be in
    a run). *)
val find_hot : t -> string -> int option

(** Bloom check: [true] means the key was never added — no cold
    lookup needed. [false] is inconclusive. *)
val definitely_new : t -> string -> bool

(** [resolve t queries] looks every [(key, slot)] up in the cold runs,
    writing the id into [slot] for each key found ([slot] is left
    untouched for keys not present). Keys should be distinct; order is
    arbitrary ([resolve] sorts internally). One streaming pass per
    run file. *)
val resolve : t -> (string * int ref) array -> unit

val nb_runs : t -> int

(** Delete the run files. Idempotent; further use of [t] is undefined. *)
val close : t -> unit
