module Bitset = Mv_util.Bitset

type rev = { rrow : int array; rlbl : int array; rsrc : int array }

type t = {
  nb_states : int;
  initial : int;
  labels : Label.table;
  (* transitions sorted by (src, label, dst), deduplicated *)
  src : int array;
  lbl : int array;
  dst : int array;
  row : int array; (* row.(s) .. row.(s+1)-1 are the transitions of s *)
  (* reverse index (rows by dst), built lazily on first use. Rebuilding
     it twice from concurrent domains is harmless: both builds produce
     identical arrays and either write wins. *)
  mutable rev : rev option;
}

let compare_triple (s1, l1, d1) (s2, l2, d2) =
  match compare s1 s2 with
  | 0 -> (match compare l1 l2 with 0 -> compare d1 d2 | c -> c)
  | c -> c

let make_array ~nb_states ~initial ~labels transitions =
  if initial < 0 || initial >= nb_states then invalid_arg "Lts.make: initial";
  Array.sort compare_triple transitions;
  let n = Array.length transitions in
  (* count distinct *)
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || compare_triple transitions.(i) transitions.(i - 1) <> 0 then
      incr distinct
  done;
  let m = !distinct in
  let src = Array.make (max m 1) 0
  and lbl = Array.make (max m 1) 0
  and dst = Array.make (max m 1) 0 in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || compare_triple transitions.(i) transitions.(i - 1) <> 0 then begin
      let s, l, d = transitions.(i) in
      if s < 0 || s >= nb_states || d < 0 || d >= nb_states then
        invalid_arg "Lts.make: state out of range";
      src.(!j) <- s; lbl.(!j) <- l; dst.(!j) <- d;
      incr j
    end
  done;
  let row = Array.make (nb_states + 1) 0 in
  for i = 0 to m - 1 do
    row.(src.(i) + 1) <- row.(src.(i) + 1) + 1
  done;
  for s = 1 to nb_states do
    row.(s) <- row.(s) + row.(s - 1)
  done;
  { nb_states; initial; labels; src; lbl; dst; row; rev = None }

let make ~nb_states ~initial ~labels transitions =
  make_array ~nb_states ~initial ~labels (Array.of_list transitions)

let nb_states t = t.nb_states
let nb_transitions t = t.row.(t.nb_states)
let initial t = t.initial
let labels t = t.labels

let iter_out t s f =
  for i = t.row.(s) to t.row.(s + 1) - 1 do
    f t.lbl.(i) t.dst.(i)
  done

let fold_out t s f init =
  let acc = ref init in
  iter_out t s (fun l d -> acc := f l d !acc);
  !acc

let out_degree t s = t.row.(s + 1) - t.row.(s)

let iter_transitions t f =
  for i = 0 to nb_transitions t - 1 do
    f t.src.(i) t.lbl.(i) t.dst.(i)
  done

let reverse_index t =
  match t.rev with
  | Some r -> r
  | None ->
    let m = nb_transitions t in
    let rrow = Array.make (t.nb_states + 1) 0 in
    let rlbl = Array.make (max m 1) 0 in
    let rsrc = Array.make (max m 1) 0 in
    for i = 0 to m - 1 do
      rrow.(t.dst.(i) + 1) <- rrow.(t.dst.(i) + 1) + 1
    done;
    for s = 1 to t.nb_states do
      rrow.(s) <- rrow.(s) + rrow.(s - 1)
    done;
    let fill = Array.copy rrow in
    for i = 0 to m - 1 do
      let j = fill.(t.dst.(i)) in
      rlbl.(j) <- t.lbl.(i);
      rsrc.(j) <- t.src.(i);
      fill.(t.dst.(i)) <- j + 1
    done;
    let r = { rrow; rlbl; rsrc } in
    t.rev <- Some r;
    r

let iter_in t s f =
  let r = reverse_index t in
  for i = r.rrow.(s) to r.rrow.(s + 1) - 1 do
    f r.rlbl.(i) r.rsrc.(i)
  done

let in_degree t s =
  let r = reverse_index t in
  r.rrow.(s + 1) - r.rrow.(s)

let in_adjacency t =
  let preds = Array.make t.nb_states [] in
  for s = 0 to t.nb_states - 1 do
    (* collect in reverse so each list comes out in index order *)
    let acc = ref [] in
    iter_in t s (fun l src -> acc := (l, src) :: !acc);
    preds.(s) <- List.rev !acc
  done;
  preds

let has_transition t s l d =
  (* binary search in the sorted row of s *)
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let c =
        match compare t.lbl.(mid) l with
        | 0 -> compare t.dst.(mid) d
        | c -> c
      in
      if c = 0 then true
      else if c < 0 then search (mid + 1) hi
      else search lo mid
  in
  search t.row.(s) t.row.(s + 1)

let deadlocks t =
  let dead = ref [] in
  for s = t.nb_states - 1 downto 0 do
    if out_degree t s = 0 then dead := s :: !dead
  done;
  !dead

let reachable t =
  let seen = Bitset.create t.nb_states in
  let stack = ref [ t.initial ] in
  Bitset.add seen t.initial;
  let rec loop () =
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      iter_out t s (fun _ d ->
          if not (Bitset.mem seen d) then begin
            Bitset.add seen d;
            stack := d :: !stack
          end);
      loop ()
  in
  loop ();
  seen

let restrict_reachable t =
  let seen = reachable t in
  if Bitset.cardinal seen = t.nb_states then t
  else begin
    let renum = Array.make t.nb_states (-1) in
    let fresh = ref 0 in
    (* ensure initial gets id 0 *)
    renum.(t.initial) <- 0;
    fresh := 1;
    Bitset.iter
      (fun s -> if renum.(s) < 0 then begin renum.(s) <- !fresh; incr fresh end)
      seen;
    let transitions = ref [] in
    iter_transitions t (fun s l d ->
        if renum.(s) >= 0 && renum.(d) >= 0 then
          transitions := (renum.(s), l, renum.(d)) :: !transitions);
    make ~nb_states:!fresh ~initial:0 ~labels:t.labels !transitions
  end

let relabel t f =
  let labels = Label.create () in
  let transitions = ref [] in
  iter_transitions t (fun s l d ->
      let s', name, d' = f s l d in
      transitions := (s', Label.intern labels name, d') :: !transitions);
  make ~nb_states:t.nb_states ~initial:t.initial ~labels !transitions

let hide t ~gates =
  let hidden name = List.mem (Label.gate name) gates in
  relabel t (fun s l d ->
      let name = Label.name t.labels l in
      if l <> Label.tau && hidden name then (s, Label.tau_name, d)
      else (s, name, d))

let hide_all_except t ~gates =
  let kept name = List.mem (Label.gate name) gates in
  relabel t (fun s l d ->
      let name = Label.name t.labels l in
      if l <> Label.tau && not (kept name) then (s, Label.tau_name, d)
      else (s, name, d))

let rename t f =
  relabel t (fun s l d ->
      let name = Label.name t.labels l in
      if l = Label.tau then (s, name, d)
      else
        match f name with
        | Some name' -> (s, name', d)
        | None -> (s, name, d))

let occurring_labels t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  iter_transitions t (fun _ l _ ->
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.replace seen l ();
        out := Label.name t.labels l :: !out
      end);
  List.sort compare !out

let pp fmt t =
  Format.fprintf fmt "lts: %d states, %d transitions, %d labels, initial %d"
    t.nb_states (nb_transitions t) (Label.count t.labels) t.initial
