(** Generic on-the-fly state-space exploration.

    The MVL interpreter, the CHP translation, the case-study model
    builders and the composition engine all enumerate reachable states
    of some abstract machine; this functor turns any [(initial,
    successors)] description into an explicit {!Lts.t} using
    breadth-first search with hashed canonical states. *)

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

type 'state outcome = {
  lts : Lts.t;
  states : 'state array; (** LTS state id -> abstract state *)
  truncated : bool; (** true when [max_states] stopped the search *)
}

exception Too_many_states of int

(** What {!Make.run_ooc} returns: the counts of the streamed LTS (its
    transitions went to the [emit] sink, not to memory). *)
type ooc_outcome = {
  ooc_states : int;
  ooc_transitions : int;
  ooc_truncated : bool;
}

module Make (S : STATE) : sig
  (** [run ?pool ?max_states ?on_truncate ~initial ~successors ()]
      explores breadth-first from [initial]. [successors s] lists the
      labelled moves of [s] (label is a printed name; ["i"] is tau).

      When more than [max_states] (default 1_000_000) states are
      reached: with [on_truncate = `Stop] (default) the frontier is
      abandoned and [truncated] is true (transitions into discovered
      states are kept); with [`Raise] {!Too_many_states} is raised.

      With a [pool] of size > 1 the search switches to
      level-synchronous parallel BFS: each frontier level is expanded
      concurrently (the calls to [successors] — the dominant cost —
      run on all domains, deduplicating states through a sharded
      concurrent table), then a cheap sequential post-pass replays the
      canonical breadth-first numbering over the in-memory successor
      lists. The outcome — state numbering, transition set, label
      table, states array, truncation behaviour — is {e identical} to
      the sequential one; [successors] must be safe to call
      concurrently (pure functions are).

      [tick] is a cooperative checkpoint for callers that enforce
      per-request budgets (see [Mv_core.Budget]): it is called with
      the current discovered-state count every 64 expansions
      (sequential search) or once per BFS level (parallel search),
      always from the calling domain, and may raise to abandon the
      exploration.

      [expect] is a sizing hint — the anticipated number of reachable
      states (from a [--expect] flag or the compositional planner's
      estimate). It pre-sizes the hash tables so a large exploration
      does not pay O(log n) rehashing rounds; it never affects the
      result. *)
  val run :
    ?pool:Mv_par.Pool.t ->
    ?tick:(states:int -> unit) ->
    ?max_states:int ->
    ?on_truncate:[ `Stop | `Raise ] ->
    ?expect:int ->
    initial:S.t ->
    successors:(S.t -> (string * S.t) list) ->
    unit ->
    S.t outcome

  (** [run_ooc ~scratch_dir ~labels ~emit ~initial ~successors ()] —
      out-of-core breadth-first search. Instead of materializing an
      {!Lts.t}, calls [emit moves] exactly once per discovered state,
      in state-id order, with the state's outgoing [(label id, dst
      id)] moves (labels interned into [labels]); the glue layer
      connects [emit] to a streaming [.mvb] writer. The initial state
      has id 0. The emitted LTS — numbering, transition multiset,
      label interning order, truncation behaviour — is {e identical}
      to what [run] builds in RAM.

      The seen set lives in a {!Spill}: a Bloom filter sized from
      [expect], a hot table bounded by [hot_budget_bytes] (default
      64 MiB), and sorted runs spilled to [scratch_dir]; cold lookups
      are batched per BFS level. Peak RAM is the bloom bits, the hot
      budget and the widest BFS level — not the state count.

      States are keyed by their [Marshal] encoding (without sharing),
      so [S.equal] must coincide with structural equality of the
      marshalled bytes — true of the tuple / int-array states used by
      every generator here; wrong for states with semantically
      irrelevant fields. Scratch files are removed on return and on
      exceptions. *)
  val run_ooc :
    ?tick:(states:int -> unit) ->
    ?max_states:int ->
    ?on_truncate:[ `Stop | `Raise ] ->
    ?expect:int ->
    ?hot_budget_bytes:int ->
    scratch_dir:string ->
    labels:Label.table ->
    emit:((int * int) array -> unit) ->
    initial:S.t ->
    successors:(S.t -> (string * S.t) list) ->
    unit ->
    ooc_outcome
end
