(** Generic on-the-fly state-space exploration.

    The MVL interpreter, the CHP translation, the case-study model
    builders and the composition engine all enumerate reachable states
    of some abstract machine; this functor turns any [(initial,
    successors)] description into an explicit {!Lts.t} using
    breadth-first search with hashed canonical states. *)

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

type 'state outcome = {
  lts : Lts.t;
  states : 'state array; (** LTS state id -> abstract state *)
  truncated : bool; (** true when [max_states] stopped the search *)
}

exception Too_many_states of int

module Make (S : STATE) : sig
  (** [run ?pool ?max_states ?on_truncate ~initial ~successors ()]
      explores breadth-first from [initial]. [successors s] lists the
      labelled moves of [s] (label is a printed name; ["i"] is tau).

      When more than [max_states] (default 1_000_000) states are
      reached: with [on_truncate = `Stop] (default) the frontier is
      abandoned and [truncated] is true (transitions into discovered
      states are kept); with [`Raise] {!Too_many_states} is raised.

      With a [pool] of size > 1 the search switches to
      level-synchronous parallel BFS: each frontier level is expanded
      concurrently (the calls to [successors] — the dominant cost —
      run on all domains, deduplicating states through a sharded
      concurrent table), then a cheap sequential post-pass replays the
      canonical breadth-first numbering over the in-memory successor
      lists. The outcome — state numbering, transition set, label
      table, states array, truncation behaviour — is {e identical} to
      the sequential one; [successors] must be safe to call
      concurrently (pure functions are).

      [tick] is a cooperative checkpoint for callers that enforce
      per-request budgets (see [Mv_core.Budget]): it is called with
      the current discovered-state count every 64 expansions
      (sequential search) or once per BFS level (parallel search),
      always from the calling domain, and may raise to abandon the
      exploration. *)
  val run :
    ?pool:Mv_par.Pool.t ->
    ?tick:(states:int -> unit) ->
    ?max_states:int ->
    ?on_truncate:[ `Stop | `Raise ] ->
    initial:S.t ->
    successors:(S.t -> (string * S.t) list) ->
    unit ->
    S.t outcome
end
