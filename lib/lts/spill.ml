module Obs = Mv_obs.Obs

(* A seen-set over encoded states (opaque byte strings -> state ids)
   that holds a bounded amount in RAM:

   - a Bloom filter over every key ever added (~[bits_per_key] bits per
     expected state, two independent hash probes) answers "definitely
     new" without touching the cold store;
   - a hot hash table holds the most recently added keys up to a byte
     budget;
   - when the hot table outgrows the budget it is spilled wholesale as
     a sorted run file in [dir]; runs are merged k-way once more than
     [max_runs] accumulate, so a lookup pass never touches more than
     [max_runs] files.

   Cold lookups are batched ({!resolve}): the caller collects every
   bloom-positive miss of a BFS level, and each run file is then
   streamed once against the sorted query batch (a merge join) — no
   per-key disk seeks. A key lives in exactly one place (hot, or one
   run), so the join never sees duplicates.

   This is the memory contract that lets exploration visit 10^7..10^8
   states: RAM holds the bloom bits, the hot budget and one BFS level,
   everything else is sequential disk I/O. *)

let max_runs = 8

type t = {
  dir : string;
  hot : (string, int) Hashtbl.t;
  hot_budget : int;
  mutable hot_bytes : int;
  bloom : Bytes.t;
  bloom_bits : int;
  mutable runs : string list; (* newest first *)
  mutable run_seq : int;
  mutable closed : bool;
  c_spill_runs : Obs.counter;
  c_spilled_bytes : Obs.counter;
  c_merge_passes : Obs.counter;
  c_bloom_negatives : Obs.counter;
  c_cold_lookups : Obs.counter;
}

(* ---------------- bloom ---------------- *)

let bloom_probes = 2

let bloom_index t seed key =
  (Hashtbl.seeded_hash seed key * 0x2545F491 + Hashtbl.seeded_hash (seed + 77) key)
  land max_int
  mod t.bloom_bits

let bloom_add t key =
  for p = 0 to bloom_probes - 1 do
    let i = bloom_index t p key in
    let b = Bytes.get_uint8 t.bloom (i lsr 3) in
    Bytes.set_uint8 t.bloom (i lsr 3) (b lor (1 lsl (i land 7)))
  done

let bloom_mem t key =
  let rec go p =
    p >= bloom_probes
    ||
    let i = bloom_index t p key in
    Bytes.get_uint8 t.bloom (i lsr 3) land (1 lsl (i land 7)) <> 0 && go (p + 1)
  in
  go 0

(* ---------------- run files ---------------- *)

(* record: varint key length, key bytes, varint id; keys strictly
   ascending within a run *)

let write_varint oc n =
  let rec go n =
    if n < 0x80 then output_char oc (Char.chr n)
    else begin
      output_char oc (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Spill: negative varint";
  go n

let read_varint ic =
  let rec go shift acc =
    let byte = Char.code (input_char ic) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* next (key, id) of an open run, None at end-of-run *)
let read_record ic =
  match read_varint ic with
  | len ->
    let key = really_input_string ic len in
    let id = read_varint ic in
    Some (key, id)
  | exception End_of_file -> None

let fresh_run_path t =
  t.run_seq <- t.run_seq + 1;
  Filename.concat t.dir
    (Printf.sprintf "mv-spill-%d-%d.run" (Unix.getpid ()) t.run_seq)

let write_run t records =
  let path = fresh_run_path t in
  let oc = open_out_bin path in
  (try
     Array.iter
       (fun (key, id) ->
         write_varint oc (String.length key);
         output_string oc key;
         write_varint oc id)
       records;
     close_out oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove path with Sys_error _ -> ());
     raise exn);
  Obs.incr t.c_spill_runs;
  Obs.add t.c_spilled_bytes (Unix.stat path).Unix.st_size;
  t.runs <- path :: t.runs

(* k-way merge of every run into one (keys are globally unique, so
   this is a pure interleave) *)
let merge_runs t =
  match t.runs with
  | [] | [ _ ] -> ()
  | runs ->
    Obs.incr t.c_merge_passes;
    let sources = List.map open_in_bin runs in
    let heads = ref [] in
    List.iter
      (fun ic ->
        match read_record ic with
        | Some r -> heads := (r, ic) :: !heads
        | None -> ())
      sources;
    let path = fresh_run_path t in
    let oc = open_out_bin path in
    (try
       while !heads <> [] do
         let ((bk, bid), bic) =
           List.fold_left
             (fun ((mk, _), _ as m) ((k, _), _ as c) ->
               if k < mk then c else m)
             (List.hd !heads) (List.tl !heads)
         in
         write_varint oc (String.length bk);
         output_string oc bk;
         write_varint oc bid;
         heads := List.filter (fun (_, ic) -> ic != bic) !heads;
         (match read_record bic with
          | Some r -> heads := (r, bic) :: !heads
          | None -> ())
       done;
       close_out oc
     with exn ->
       close_out_noerr oc;
       List.iter close_in_noerr sources;
       (try Sys.remove path with Sys_error _ -> ());
       raise exn);
    List.iter close_in_noerr sources;
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) runs;
    t.runs <- [ path ]

(* ---------------- API ---------------- *)

let create ?(bits_per_key = 10) ~dir ~expect ~hot_budget_bytes () =
  let bloom_bits = max 1024 (bits_per_key * max expect 1) in
  {
    dir;
    hot = Hashtbl.create 4096;
    hot_budget = max 65536 hot_budget_bytes;
    hot_bytes = 0;
    bloom = Bytes.make ((bloom_bits + 7) / 8) '\000';
    bloom_bits;
    runs = [];
    run_seq = 0;
    closed = false;
    c_spill_runs = Obs.counter "ooc.spill_runs";
    c_spilled_bytes = Obs.counter "ooc.spilled_bytes";
    c_merge_passes = Obs.counter "ooc.merge_passes";
    c_bloom_negatives = Obs.counter "ooc.bloom_negatives";
    c_cold_lookups = Obs.counter "ooc.cold_lookups";
  }

(* per-entry heap overhead estimate on top of the key bytes *)
let entry_overhead = 64

let spill_hot t =
  let records = Array.make (Hashtbl.length t.hot) ("", 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun k id ->
      records.(!i) <- (k, id);
      incr i)
    t.hot;
  Array.sort compare records;
  write_run t records;
  Hashtbl.reset t.hot;
  t.hot_bytes <- 0;
  if List.length t.runs > max_runs then merge_runs t

let add t key id =
  bloom_add t key;
  Hashtbl.replace t.hot key id;
  t.hot_bytes <- t.hot_bytes + String.length key + entry_overhead;
  if t.hot_bytes > t.hot_budget then spill_hot t

let find_hot t key = Hashtbl.find_opt t.hot key

let definitely_new t key =
  let fresh = not (bloom_mem t key) in
  if fresh then Obs.incr t.c_bloom_negatives;
  fresh

let resolve t queries =
  if Array.length queries > 0 && t.runs <> [] then begin
    Obs.add t.c_cold_lookups (Array.length queries);
    let order = Array.init (Array.length queries) (fun i -> i) in
    Array.sort (fun a b -> compare (fst queries.(a)) (fst queries.(b))) order;
    List.iter
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            (* merge join: both the run and the query batch ascend *)
            let q = ref 0 in
            let n = Array.length order in
            let rec walk record =
              if !q < n then begin
                match record with
                | None -> ()
                | Some (key, id) ->
                  let qkey, slot = queries.(order.(!q)) in
                  if qkey < key then begin
                    incr q;
                    walk record
                  end
                  else if qkey = key then begin
                    slot := id;
                    incr q;
                    walk (read_record ic)
                  end
                  else walk (read_record ic)
              end
            in
            walk (read_record ic)))
      t.runs
  end

let nb_runs t = List.length t.runs

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) t.runs;
    t.runs <- []
  end
