(** Explicit labeled transition systems.

    States are dense integers [0 .. nb_states-1]; labels are indices in
    an interned {!Label.table} where index {!Label.tau} is the internal
    action. Transitions are stored sorted by source state with a row
    index, so per-state iteration is allocation-free. *)

type t

(** [make ~nb_states ~initial ~labels transitions] builds an LTS.
    Duplicate transitions are removed; [initial] must be a valid state.
    The label table is captured by reference (callers should not intern
    new labels into it afterwards unless they also add transitions). *)
val make :
  nb_states:int ->
  initial:int ->
  labels:Label.table ->
  (int * int * int) list ->
  t

(** Like {!make} but from an array (takes ownership; the array is
    sorted in place). *)
val make_array :
  nb_states:int ->
  initial:int ->
  labels:Label.table ->
  (int * int * int) array ->
  t

val nb_states : t -> int
val nb_transitions : t -> int
val initial : t -> int
val labels : t -> Label.table

(** [iter_out lts s f] applies [f label dst] to every outgoing
    transition of [s]. *)
val iter_out : t -> int -> (int -> int -> unit) -> unit

(** [fold_out lts s f init] folds over outgoing transitions. *)
val fold_out : t -> int -> (int -> int -> 'a -> 'a) -> 'a -> 'a

(** [out_degree lts s] is the number of outgoing transitions of [s]. *)
val out_degree : t -> int -> int

(** [iter_transitions lts f] applies [f src label dst] to every
    transition. *)
val iter_transitions : t -> (int -> int -> int -> unit) -> unit

(** [iter_in lts s f] applies [f label src] to every incoming
    transition of [s], in global [(src, label, dst)] order. The flat
    reverse index behind it is built on first use and cached on the
    LTS, so after the first call iteration is allocation-free. *)
val iter_in : t -> int -> (int -> int -> unit) -> unit

(** [in_degree lts s] is the number of incoming transitions of [s]. *)
val in_degree : t -> int -> int

(** Incoming-transition index: [in_adjacency lts] is an array mapping
    each state to its list of [(label, src)] predecessors ([iter_in]
    order). Callers should reuse the result. *)
val in_adjacency : t -> (int * int) list array

(** [has_transition lts src label dst] — membership test. *)
val has_transition : t -> int -> int -> int -> bool

(** States with no outgoing transitions. *)
val deadlocks : t -> int list

(** [reachable lts] is the set of states reachable from the initial
    state. *)
val reachable : t -> Mv_util.Bitset.t

(** [restrict_reachable lts] drops unreachable states, renumbering the
    survivors (initial state becomes 0). *)
val restrict_reachable : t -> t

(** [hide lts ~gates] renames to tau every label whose {!Label.gate}
    belongs to [gates]. *)
val hide : t -> gates:string list -> t

(** [hide_all_except lts ~gates] renames to tau every label whose gate
    is {e not} in [gates] (tau stays tau). *)
val hide_all_except : t -> gates:string list -> t

(** [rename lts f] renames labels: [f name] returns the new printed
    name ([None] keeps the label unchanged). Tau cannot be renamed. *)
val rename : t -> (string -> string option) -> t

(** [relabel lts f] rebuilds the LTS mapping every transition through
    [f src label dst -> (src', name', dst')] over a fresh label table,
    keeping [nb_states] and [initial]. *)
val relabel : t -> (int -> int -> int -> int * string * int) -> t

(** All labels that actually occur, as printed names (tau included when
    present). *)
val occurring_labels : t -> string list

(** [pp] prints a short summary: states, transitions, labels. *)
val pp : Format.formatter -> t -> unit
