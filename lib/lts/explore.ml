module Pool = Mv_par.Pool

module Obs = Mv_obs.Obs

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

type 'state outcome = {
  lts : Lts.t;
  states : 'state array;
  truncated : bool;
}

exception Too_many_states of int

type ooc_outcome = {
  ooc_states : int;
  ooc_transitions : int;
  ooc_truncated : bool;
}

module Make (S : STATE) = struct
  module Table = Hashtbl.Make (S)
  module Shard_set = Mv_par.Shard_set.Make (S)

  let no_tick ~states:_ = ()

  let run_sequential ~tick ~max_states ~on_truncate ~expect ~initial
      ~successors () =
    Obs.span "explore" @@ fun () ->
    let frontier_series = Obs.series "explore.frontier" in
    let ids = Table.create (max 1024 (min expect max_states)) in
    let states = ref [] in
    let nb = ref 0 in
    let dedup = ref 0 in
    let nb_transitions = ref 0 in
    let truncated = ref false in
    let frontier = Queue.create () in
    let id_of state =
      match Table.find_opt ids state with
      | Some id ->
        incr dedup;
        Some id
      | None ->
        if !nb >= max_states then begin
          (match on_truncate with
           | `Raise -> raise (Too_many_states max_states)
           | `Stop -> truncated := true);
          None
        end
        else begin
          let id = !nb in
          incr nb;
          Table.add ids state id;
          states := state :: !states;
          Queue.add (id, state) frontier;
          Some id
        end
    in
    (match id_of initial with
     | Some 0 -> ()
     | Some _ | None -> assert false);
    let labels = Label.create () in
    let transitions = ref [] in
    let expansions = ref 0 in
    while not (Queue.is_empty frontier) do
      let src, state = Queue.pop frontier in
      incr expansions;
      if !expansions land 63 = 0 then tick ~states:!nb;
      if !expansions land 1023 = 1 then begin
        Obs.push frontier_series (float_of_int (Queue.length frontier));
        Obs.progress (fun () ->
            Printf.sprintf "explore: %d states, %d transitions, frontier %d"
              !nb !nb_transitions (Queue.length frontier))
      end;
      let moves = successors state in
      List.iter
        (fun (label, dst_state) ->
           match id_of dst_state with
           | Some dst ->
             incr nb_transitions;
             transitions := (src, Label.intern labels label, dst) :: !transitions
           | None -> ())
        moves
    done;
    Obs.add (Obs.counter "explore.states") !nb;
    Obs.add (Obs.counter "explore.transitions") !nb_transitions;
    Obs.add (Obs.counter "explore.dedup_hits") !dedup;
    let states_array = Array.of_list (List.rev !states) in
    let lts = Lts.make ~nb_states:!nb ~initial:0 ~labels !transitions in
    { lts; states = states_array; truncated = !truncated }

  (* Parallel level-synchronous BFS. Discovery runs with provisional
     ids from the sharded table; the canonical numbering is replayed
     sequentially at the end over the recorded successor lists, which
     reproduces the sequential BFS exactly (same ids, same transition
     order, same label interning order, same truncation set) because
     the sequential algorithm's output depends only on each state's
     ordered successor list — all of which the parallel phase has
     computed, whatever the discovery interleaving was.

     Truncation: sequential `Raise` fires iff the reachable set
     exceeds [max_states]; here that surfaces either as an overshoot
     at a level boundary or, when the boundary lands exactly on
     [max_states], as a fresh successor met after discovery closed.
     Sequential `Stop` keeps the first [max_states] states in BFS
     order and every transition among them — which is what replaying
     the canonical numbering with the same budget produces, provided
     every discovered state was expanded (the closing passes below
     keep expanding the remaining frontier with discovery closed). *)
  let run_parallel pool ~tick ~max_states ~on_truncate ~expect ~initial
      ~successors () =
    Obs.span "explore" @@ fun () ->
    let frontier_series = Obs.series "explore.frontier" in
    (* pre-size the sharded table so the expected population hashes to
       short chains: [expect] states over 64 shards *)
    let set =
      Shard_set.create ~buckets:(max 1024 (min expect max_states / 64)) ()
    in
    let init_id, _ = Shard_set.add set initial in
    let moves : (string * int) array array ref = ref [||] in
    let unexpanded = [||] in
    (* distinguished "not yet expanded" slot value *)
    let frontier = ref [| (init_id, initial) |] in
    let workers = Pool.size pool in
    let truncated = ref false in
    let closed = ref false in
    while Array.length !frontier > 0 do
      let bound = Shard_set.id_bound set in
      if bound > Array.length !moves then begin
        let bigger = Array.make bound unexpanded in
        Array.blit !moves 0 bigger 0 (Array.length !moves);
        moves := bigger
      end;
      let slots = !moves in
      let front = !frontier in
      let is_closed = !closed in
      let nb_front = Array.length front in
      tick ~states:(Shard_set.cardinal set);
      Obs.push frontier_series (float_of_int nb_front);
      Obs.progress (fun () ->
          Printf.sprintf "explore: %d states, frontier %d"
            (Shard_set.cardinal set) nb_front);
      let chunk_size = max 1 (min 512 ((nb_front / (4 * workers)) + 1)) in
      let nb_chunks = (nb_front + chunk_size - 1) / chunk_size in
      (* per-chunk accumulators: chunk [c] covers range starts at
         [c * chunk_size], each written by exactly one worker *)
      let chunk_discovered = Array.make nb_chunks [] in
      let chunk_refused = Array.make nb_chunks false in
      Pool.chunks ~chunk:(Mv_par.Chunk.Fixed chunk_size) ~pool ~lo:0 ~hi:nb_front (fun a b ->
          let c = a / chunk_size in
          let local = ref [] in
          let local_refused = ref false in
          for i = a to b - 1 do
            let src_id, state = front.(i) in
            let succ = successors state in
            if not is_closed then
              slots.(src_id) <-
                Array.of_list
                  (List.map
                     (fun (label, dst_state) ->
                        let dst_id, fresh = Shard_set.add set dst_state in
                        if fresh then local := (dst_id, dst_state) :: !local;
                        (label, dst_id))
                     succ)
            else
              slots.(src_id) <-
                Array.of_list
                  (List.filter_map
                     (fun (label, dst_state) ->
                        match Shard_set.find set dst_state with
                        | Some dst_id -> Some (label, dst_id)
                        | None ->
                          (* a state the sequential search would have
                             refused: its budget was already spent *)
                          (match on_truncate with
                           | `Raise -> raise (Too_many_states max_states)
                           | `Stop ->
                             local_refused := true;
                             None))
                     succ)
          done;
          chunk_discovered.(c) <- !local;
          chunk_refused.(c) <- !local_refused);
      if Array.exists Fun.id chunk_refused then truncated := true;
      let next =
        Array.fold_left
          (fun acc l -> List.rev_append l acc)
          [] chunk_discovered
      in
      frontier := Array.of_list next;
      if not !closed then begin
        let count = Shard_set.cardinal set in
        if count >= max_states then begin
          if count > max_states then begin
            match on_truncate with
            | `Raise -> raise (Too_many_states max_states)
            | `Stop -> truncated := true
          end;
          closed := true
        end
      end
    done;
    (* canonical renumbering: replay the sequential BFS over the
       recorded successor lists *)
    let slots = !moves in
    let canon = Array.make (max 1 (Array.length slots)) (-1) in
    let order = Mv_util.Vec.create ~capacity:1024 () in
    let nb = ref 0 in
    let assign prov =
      canon.(prov) <- !nb;
      incr nb;
      Mv_util.Vec.push order prov
    in
    assign init_id;
    let labels = Label.create () in
    let transitions = ref [] in
    let nb_transitions = ref 0 in
    let dedup = ref 0 in
    let cursor = ref 0 in
    while !cursor < Mv_util.Vec.length order do
      let prov = Mv_util.Vec.get order !cursor in
      incr cursor;
      let src = canon.(prov) in
      Array.iter
        (fun (label, dst_prov) ->
           let dst =
             if canon.(dst_prov) >= 0 then begin
               incr dedup;
               Some canon.(dst_prov)
             end
             else if !nb >= max_states then begin
               truncated := true;
               None
             end
             else begin
               assign dst_prov;
               Some canon.(dst_prov)
             end
           in
           match dst with
           | Some dst ->
             incr nb_transitions;
             transitions := (src, Label.intern labels label, dst) :: !transitions
           | None -> ())
        slots.(prov)
    done;
    Obs.add (Obs.counter "explore.states") !nb;
    Obs.add (Obs.counter "explore.transitions") !nb_transitions;
    Obs.add (Obs.counter "explore.dedup_hits") !dedup;
    let states_array =
      Array.init !nb (fun c -> Shard_set.get set (Mv_util.Vec.get order c))
    in
    let lts = Lts.make ~nb_states:!nb ~initial:0 ~labels !transitions in
    { lts; states = states_array; truncated = !truncated }

  let run ?pool ?(tick = no_tick) ?(max_states = 1_000_000)
      ?(on_truncate = `Stop) ?(expect = 1024) ~initial ~successors () =
    match pool with
    | Some pool when Pool.size pool > 1 ->
      run_parallel pool ~tick ~max_states ~on_truncate ~expect ~initial
        ~successors ()
    | Some _ | None ->
      run_sequential ~tick ~max_states ~on_truncate ~expect ~initial
        ~successors ()

  (* --------------------------------------------------------------- *)
  (* Out-of-core exploration.

     Level-synchronous BFS that never materializes the LTS: the seen
     set lives in a {!Spill} (bloom + bounded hot table + sorted
     on-disk runs) and each state's transitions are pushed to the
     caller's [emit] sink exactly once, in state-id order — the glue
     layer connects that to a streaming .mvb writer.

     The result is byte-identical to [run]'s LTS. The delicate part is
     state numbering: a bloom false positive must not disturb the
     order ids are assigned in, so {e no} id is assigned during
     successor generation. Instead each level records its transition
     log against per-level cells, cold lookups are batched through
     [Spill.resolve], and a final sequential walk over the log — same
     frontier order, same successor order as [run_sequential] —
     assigns ids at first encounter, interns labels on accepted
     transitions only, and applies the truncation budget. Every
     decision the sequential engine makes per transition is replayed
     at the same position in the same order.

     Memory: bloom bits + hot budget + one BFS level (its states,
     encodings and transition log). Everything colder is sequential
     disk I/O, so RAM is bounded by the widest level, not the state
     count. States are keyed by their [Marshal] encoding (no sharing),
     which must be injective modulo [S.equal] — true for the tuple /
     int-array states every generator in this repository uses. *)

  type cell = {
    cl_state : S.t;
    cl_enc : string;
    mutable cl_id : int; (* -1 = pending-new, >= 0 = known *)
  }

  type target = Tid of int | Tcell of cell

  let run_ooc ?(tick = no_tick) ?(max_states = 1_000_000)
      ?(on_truncate = `Stop) ?(expect = 1 lsl 20)
      ?(hot_budget_bytes = 64 lsl 20) ~scratch_dir ~labels ~emit ~initial
      ~successors () =
    Obs.span "explore.ooc" @@ fun () ->
    let frontier_series = Obs.series "explore.frontier" in
    let seen =
      Spill.create ~dir:scratch_dir ~expect:(min expect max_states)
        ~hot_budget_bytes ()
    in
    Fun.protect ~finally:(fun () -> Spill.close seen) @@ fun () ->
    let encode s = Marshal.to_string s [ Marshal.No_sharing ] in
    let nb = ref 0 in
    let nb_transitions = ref 0 in
    let dedup = ref 0 in
    let truncated = ref false in
    Spill.add seen (encode initial) 0;
    nb := 1;
    let frontier = ref [| initial |] in
    while Array.length !frontier > 0 do
      tick ~states:!nb;
      Obs.push frontier_series (float_of_int (Array.length !frontier));
      Obs.progress (fun () ->
          Printf.sprintf "explore (ooc): %d states, %d transitions, frontier %d"
            !nb !nb_transitions (Array.length !frontier));
      (* 1. generate: record the level's transition log against cells,
         assigning no ids *)
      let cells : (string, cell) Hashtbl.t = Hashtbl.create 4096 in
      let maybes = ref [] in
      let log =
        Array.map
          (fun state ->
            List.map
              (fun (label, dst_state) ->
                let enc = encode dst_state in
                match Hashtbl.find_opt cells enc with
                | Some c -> (label, Tcell c)
                | None -> (
                  match Spill.find_hot seen enc with
                  | Some id -> (label, Tid id)
                  | None ->
                    let c = { cl_state = dst_state; cl_enc = enc; cl_id = -1 } in
                    Hashtbl.add cells enc c;
                    if not (Spill.definitely_new seen enc) then
                      maybes := c :: !maybes;
                    (label, Tcell c)))
              (successors state))
          !frontier
      in
      (* 2. resolve: one batched cold lookup for the bloom-positive
         misses *)
      (match !maybes with
       | [] -> ()
       | maybes ->
         let maybes = Array.of_list maybes in
         let queries = Array.map (fun c -> (c.cl_enc, ref (-1))) maybes in
         Spill.resolve seen queries;
         Array.iteri
           (fun i c ->
             let _, slot = queries.(i) in
             if !slot >= 0 then c.cl_id <- !slot)
           maybes);
      (* 3. assign and emit: replay the sequential engine's decisions
         in its exact order *)
      let next = ref [] in
      Array.iter
        (fun moves ->
          let out = ref [] in
          List.iter
            (fun (label, tgt) ->
              let dst =
                match tgt with
                | Tid id ->
                  incr dedup;
                  Some id
                | Tcell c ->
                  if c.cl_id >= 0 then begin
                    incr dedup;
                    Some c.cl_id
                  end
                  else if !nb >= max_states then begin
                    (match on_truncate with
                     | `Raise -> raise (Too_many_states max_states)
                     | `Stop -> truncated := true);
                    None
                  end
                  else begin
                    c.cl_id <- !nb;
                    incr nb;
                    Spill.add seen c.cl_enc c.cl_id;
                    next := c.cl_state :: !next;
                    Some c.cl_id
                  end
              in
              match dst with
              | Some dst ->
                incr nb_transitions;
                out := (Label.intern labels label, dst) :: !out
              | None -> ())
            moves;
          emit (Array.of_list (List.rev !out)))
        log;
      frontier := Array.of_list (List.rev !next)
    done;
    Obs.add (Obs.counter "explore.states") !nb;
    Obs.add (Obs.counter "explore.transitions") !nb_transitions;
    Obs.add (Obs.counter "explore.dedup_hits") !dedup;
    {
      ooc_states = !nb;
      ooc_transitions = !nb_transitions;
      ooc_truncated = !truncated;
    }
end
