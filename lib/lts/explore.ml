module Pool = Mv_par.Pool

module Obs = Mv_obs.Obs

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

type 'state outcome = {
  lts : Lts.t;
  states : 'state array;
  truncated : bool;
}

exception Too_many_states of int

module Make (S : STATE) = struct
  module Table = Hashtbl.Make (S)
  module Shard_set = Mv_par.Shard_set.Make (S)

  let no_tick ~states:_ = ()

  let run_sequential ~tick ~max_states ~on_truncate ~initial ~successors () =
    Obs.span "explore" @@ fun () ->
    let frontier_series = Obs.series "explore.frontier" in
    let ids = Table.create 1024 in
    let states = ref [] in
    let nb = ref 0 in
    let dedup = ref 0 in
    let nb_transitions = ref 0 in
    let truncated = ref false in
    let frontier = Queue.create () in
    let id_of state =
      match Table.find_opt ids state with
      | Some id ->
        incr dedup;
        Some id
      | None ->
        if !nb >= max_states then begin
          (match on_truncate with
           | `Raise -> raise (Too_many_states max_states)
           | `Stop -> truncated := true);
          None
        end
        else begin
          let id = !nb in
          incr nb;
          Table.add ids state id;
          states := state :: !states;
          Queue.add (id, state) frontier;
          Some id
        end
    in
    (match id_of initial with
     | Some 0 -> ()
     | Some _ | None -> assert false);
    let labels = Label.create () in
    let transitions = ref [] in
    let expansions = ref 0 in
    while not (Queue.is_empty frontier) do
      let src, state = Queue.pop frontier in
      incr expansions;
      if !expansions land 63 = 0 then tick ~states:!nb;
      if !expansions land 1023 = 1 then begin
        Obs.push frontier_series (float_of_int (Queue.length frontier));
        Obs.progress (fun () ->
            Printf.sprintf "explore: %d states, %d transitions, frontier %d"
              !nb !nb_transitions (Queue.length frontier))
      end;
      let moves = successors state in
      List.iter
        (fun (label, dst_state) ->
           match id_of dst_state with
           | Some dst ->
             incr nb_transitions;
             transitions := (src, Label.intern labels label, dst) :: !transitions
           | None -> ())
        moves
    done;
    Obs.add (Obs.counter "explore.states") !nb;
    Obs.add (Obs.counter "explore.transitions") !nb_transitions;
    Obs.add (Obs.counter "explore.dedup_hits") !dedup;
    let states_array = Array.of_list (List.rev !states) in
    let lts = Lts.make ~nb_states:!nb ~initial:0 ~labels !transitions in
    { lts; states = states_array; truncated = !truncated }

  (* Parallel level-synchronous BFS. Discovery runs with provisional
     ids from the sharded table; the canonical numbering is replayed
     sequentially at the end over the recorded successor lists, which
     reproduces the sequential BFS exactly (same ids, same transition
     order, same label interning order, same truncation set) because
     the sequential algorithm's output depends only on each state's
     ordered successor list — all of which the parallel phase has
     computed, whatever the discovery interleaving was.

     Truncation: sequential `Raise` fires iff the reachable set
     exceeds [max_states]; here that surfaces either as an overshoot
     at a level boundary or, when the boundary lands exactly on
     [max_states], as a fresh successor met after discovery closed.
     Sequential `Stop` keeps the first [max_states] states in BFS
     order and every transition among them — which is what replaying
     the canonical numbering with the same budget produces, provided
     every discovered state was expanded (the closing passes below
     keep expanding the remaining frontier with discovery closed). *)
  let run_parallel pool ~tick ~max_states ~on_truncate ~initial ~successors ()
      =
    Obs.span "explore" @@ fun () ->
    let frontier_series = Obs.series "explore.frontier" in
    let set = Shard_set.create () in
    let init_id, _ = Shard_set.add set initial in
    let moves : (string * int) array array ref = ref [||] in
    let unexpanded = [||] in
    (* distinguished "not yet expanded" slot value *)
    let frontier = ref [| (init_id, initial) |] in
    let workers = Pool.size pool in
    let truncated = ref false in
    let closed = ref false in
    while Array.length !frontier > 0 do
      let bound = Shard_set.id_bound set in
      if bound > Array.length !moves then begin
        let bigger = Array.make bound unexpanded in
        Array.blit !moves 0 bigger 0 (Array.length !moves);
        moves := bigger
      end;
      let slots = !moves in
      let front = !frontier in
      let is_closed = !closed in
      let nb_front = Array.length front in
      tick ~states:(Shard_set.cardinal set);
      Obs.push frontier_series (float_of_int nb_front);
      Obs.progress (fun () ->
          Printf.sprintf "explore: %d states, frontier %d"
            (Shard_set.cardinal set) nb_front);
      let chunk_size = max 1 (min 512 ((nb_front / (4 * workers)) + 1)) in
      let nb_chunks = (nb_front + chunk_size - 1) / chunk_size in
      (* per-chunk accumulators: chunk [c] covers range starts at
         [c * chunk_size], each written by exactly one worker *)
      let chunk_discovered = Array.make nb_chunks [] in
      let chunk_refused = Array.make nb_chunks false in
      Pool.chunks ~chunk:(Mv_par.Chunk.Fixed chunk_size) ~pool ~lo:0 ~hi:nb_front (fun a b ->
          let c = a / chunk_size in
          let local = ref [] in
          let local_refused = ref false in
          for i = a to b - 1 do
            let src_id, state = front.(i) in
            let succ = successors state in
            if not is_closed then
              slots.(src_id) <-
                Array.of_list
                  (List.map
                     (fun (label, dst_state) ->
                        let dst_id, fresh = Shard_set.add set dst_state in
                        if fresh then local := (dst_id, dst_state) :: !local;
                        (label, dst_id))
                     succ)
            else
              slots.(src_id) <-
                Array.of_list
                  (List.filter_map
                     (fun (label, dst_state) ->
                        match Shard_set.find set dst_state with
                        | Some dst_id -> Some (label, dst_id)
                        | None ->
                          (* a state the sequential search would have
                             refused: its budget was already spent *)
                          (match on_truncate with
                           | `Raise -> raise (Too_many_states max_states)
                           | `Stop ->
                             local_refused := true;
                             None))
                     succ)
          done;
          chunk_discovered.(c) <- !local;
          chunk_refused.(c) <- !local_refused);
      if Array.exists Fun.id chunk_refused then truncated := true;
      let next =
        Array.fold_left
          (fun acc l -> List.rev_append l acc)
          [] chunk_discovered
      in
      frontier := Array.of_list next;
      if not !closed then begin
        let count = Shard_set.cardinal set in
        if count >= max_states then begin
          if count > max_states then begin
            match on_truncate with
            | `Raise -> raise (Too_many_states max_states)
            | `Stop -> truncated := true
          end;
          closed := true
        end
      end
    done;
    (* canonical renumbering: replay the sequential BFS over the
       recorded successor lists *)
    let slots = !moves in
    let canon = Array.make (max 1 (Array.length slots)) (-1) in
    let order = Mv_util.Vec.create ~capacity:1024 () in
    let nb = ref 0 in
    let assign prov =
      canon.(prov) <- !nb;
      incr nb;
      Mv_util.Vec.push order prov
    in
    assign init_id;
    let labels = Label.create () in
    let transitions = ref [] in
    let nb_transitions = ref 0 in
    let dedup = ref 0 in
    let cursor = ref 0 in
    while !cursor < Mv_util.Vec.length order do
      let prov = Mv_util.Vec.get order !cursor in
      incr cursor;
      let src = canon.(prov) in
      Array.iter
        (fun (label, dst_prov) ->
           let dst =
             if canon.(dst_prov) >= 0 then begin
               incr dedup;
               Some canon.(dst_prov)
             end
             else if !nb >= max_states then begin
               truncated := true;
               None
             end
             else begin
               assign dst_prov;
               Some canon.(dst_prov)
             end
           in
           match dst with
           | Some dst ->
             incr nb_transitions;
             transitions := (src, Label.intern labels label, dst) :: !transitions
           | None -> ())
        slots.(prov)
    done;
    Obs.add (Obs.counter "explore.states") !nb;
    Obs.add (Obs.counter "explore.transitions") !nb_transitions;
    Obs.add (Obs.counter "explore.dedup_hits") !dedup;
    let states_array =
      Array.init !nb (fun c -> Shard_set.get set (Mv_util.Vec.get order c))
    in
    let lts = Lts.make ~nb_states:!nb ~initial:0 ~labels !transitions in
    { lts; states = states_array; truncated = !truncated }

  let run ?pool ?(tick = no_tick) ?(max_states = 1_000_000)
      ?(on_truncate = `Stop) ~initial ~successors () =
    match pool with
    | Some pool when Pool.size pool > 1 ->
      run_parallel pool ~tick ~max_states ~on_truncate ~initial ~successors ()
    | Some _ | None ->
      run_sequential ~tick ~max_states ~on_truncate ~initial ~successors ()
end
