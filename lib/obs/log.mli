(** Structured logging: mv-log-v1 JSON events with a bounded flight
    recorder.

    Every event carries a level, both clocks (the monotonic
    {!Obs.Clock} reading and the raw wall clock), the request id it
    belongs to (defaulting to the calling domain's {!Obs.with_request}
    context), an optional op name, a message and free-form JSON
    fields:

    {v
    {"lvl": "warn", "seq": 17, "ts_ns": ..., "wall_s": ...,
     "request_id": "f3a1...-1", "op": "minimize",
     "msg": "slow request", "fields": {"exec_s": 2.31}}
    v}

    Recording into the in-memory ring (last 512 events) is always on
    and costs one record and one array store per event, so the recent
    history is available after the fact — [mvald] dumps it on SIGUSR1
    and serves it via the [logs] op — even when live logging was never
    requested. Live emission is opt-in: {!set_sink}. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

type event = {
  ev_seq : int;  (** monotonically increasing sequence number *)
  ev_level : level;
  ev_ts_ns : int64;  (** {!Obs.Clock.now_ns} at emit time *)
  ev_wall_s : float;  (** [Unix.gettimeofday] at emit time *)
  ev_request : string option;
  ev_op : string option;
  ev_msg : string;
  ev_fields : (string * Json.t) list;
}

val schema : string
(** ["mv-log-v1"]. *)

val capacity : int
(** Ring size (512): how many recent events {!recent} can return. *)

(** [emit msg] records an event. [?request] defaults to the calling
    domain's request context; [?op] and [?fields] default to empty.
    Thread-safe from any domain. *)
val emit :
  ?level:level ->
  ?request:string ->
  ?op:string ->
  ?fields:(string * Json.t) list ->
  string ->
  unit

val debug :
  ?request:string ->
  ?op:string ->
  ?fields:(string * Json.t) list ->
  string ->
  unit

val info :
  ?request:string ->
  ?op:string ->
  ?fields:(string * Json.t) list ->
  string ->
  unit

val warn :
  ?request:string ->
  ?op:string ->
  ?fields:(string * Json.t) list ->
  string ->
  unit

val error :
  ?request:string ->
  ?op:string ->
  ?fields:(string * Json.t) list ->
  string ->
  unit

(** Install (or remove, with [None]) a live sink called once per
    emitted event, outside the recorder lock. {!stderr_sink} prints
    one compact mv-log-v1 JSON line per event. *)
val set_sink : (event -> unit) option -> unit

val stderr_sink : event -> unit

val event_json : event -> Json.t
val line : event -> string

(** The most recent events, oldest first; [?limit] keeps only the
    newest [limit] of them. *)
val recent : ?limit:int -> unit -> event list

(** [{"schema": "mv-log-v1", "events": [..]}] — the flight-recorder
    dump served by the [logs] op and printed on SIGUSR1. *)
val dump_json : ?limit:int -> unit -> Json.t

val clear : unit -> unit
