(* OpenMetrics / Prometheus text exposition of the Obs registry.

   Registry names are dot-separated ("serve.request_latency_s.solve");
   Prometheus names must match [a-zA-Z_:][a-zA-Z0-9_:]*. A family rule
   [(prefix, label)] splits a dotted name at the prefix: the prefix
   (minus its trailing dot) becomes the metric family and the suffix
   becomes a label value — so per-op histograms registered as
   "serve.request_latency_s.<op>" expose as one family
   [serve_request_latency_s{op="<op>"}]. Names without a matching rule
   are sanitized wholesale.

   One deliberate approximation, documented in doc/observability.md:
   Obs buckets are [lo, hi) while OpenMetrics [le] is inclusive, so an
   observation exactly on a bucket boundary is attributed to the
   bucket above it. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize name =
  if name = "" then "_"
  else begin
    let out = String.map (fun c -> if is_name_char c then c else '_') name in
    match out.[0] with '0' .. '9' -> "_" ^ out | _ -> out
  end

let escape_label value =
  let buffer = Buffer.create (String.length value) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string buffer "\\\\"
       | '"' -> Buffer.add_string buffer "\\\""
       | '\n' -> Buffer.add_string buffer "\\n"
       | c -> Buffer.add_char buffer c)
    value;
  Buffer.contents buffer

(* family rule: (dotted prefix ending in '.', label name) *)
let split_family families name =
  let rule =
    List.find_opt
      (fun (prefix, _) ->
         String.length name > String.length prefix
         && String.starts_with ~prefix name)
      families
  in
  match rule with
  | Some (prefix, label) ->
    let family = String.sub prefix 0 (String.length prefix - 1) in
    let value =
      String.sub name (String.length prefix)
        (String.length name - String.length prefix)
    in
    (sanitize family, [ (label, value) ])
  | None -> (sanitize name, [])

let labels_text labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
           labels)
    ^ "}"

let number v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if v <> v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

(* group (family, labels, payload) rows by family, keeping rows of one
   family together and families sorted (registry snapshots are already
   name-sorted, so rows within a family stay sorted by label too) *)
let group rows =
  let sorted =
    List.stable_sort (fun (f1, _, _) (f2, _, _) -> String.compare f1 f2) rows
  in
  List.fold_left
    (fun acc (family, labels, payload) ->
       match acc with
       | (f, rows) :: rest when f = family ->
         (f, (labels, payload) :: rows) :: rest
       | _ -> (family, [ (labels, payload) ]) :: acc)
    [] sorted
  |> List.rev_map (fun (f, rows) -> (f, List.rev rows))

let render ?(families = []) () =
  Obs.refresh_process_gauges ();
  let buffer = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  let rows kind =
    List.map (fun (name, payload) ->
        let family, labels = split_family families name in
        (family, labels, payload))
      kind
  in
  List.iter
    (fun (family, entries) ->
       line "# TYPE %s counter" family;
       List.iter
         (fun (labels, value) ->
            line "%s_total%s %d" family (labels_text labels) value)
         entries)
    (group (rows (Obs.all_counters ())));
  List.iter
    (fun (family, entries) ->
       line "# TYPE %s gauge" family;
       List.iter
         (fun (labels, value) ->
            line "%s%s %s" family (labels_text labels) (number value))
         entries)
    (group (rows (Obs.all_gauges ())));
  List.iter
    (fun (family, entries) ->
       line "# TYPE %s histogram" family;
       List.iter
         (fun (labels, (snapshot : Obs.histogram_snapshot)) ->
            let lbl extra =
              labels_text (labels @ extra)
            in
            let cumulative = ref 0 in
            List.iter
              (fun (i, count) ->
                 cumulative := !cumulative + count;
                 let le = Obs.bucket_lt i in
                 (* the top bucket's bound is +Inf: covered by the
                    mandatory +Inf line below *)
                 if le <> infinity then
                   line "%s_bucket%s %d" family
                     (lbl [ ("le", number le) ])
                     !cumulative)
              snapshot.Obs.hs_buckets;
            line "%s_bucket%s %d" family (lbl [ ("le", "+Inf") ])
              snapshot.Obs.hs_count;
            line "%s_sum%s %s" family (labels_text labels)
              (number snapshot.Obs.hs_sum);
            line "%s_count%s %d" family (labels_text labels)
              snapshot.Obs.hs_count)
         entries)
    (group (rows (Obs.all_histograms ())));
  Buffer.add_string buffer "# EOF\n";
  Buffer.contents buffer
