(* Structured logging: mv-log-v1 JSON events with a bounded in-memory
   ring (the "flight recorder"). Recording is always on — an event is
   one record and one array store — so the recent history is available
   after the fact (SIGUSR1, the serve [logs] op) even when nobody
   asked for live logging up front. Live emission to stderr is opt-in
   via {!set_sink}. *)

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type event = {
  ev_seq : int;
  ev_level : level;
  ev_ts_ns : int64;
  ev_wall_s : float;
  ev_request : string option;
  ev_op : string option;
  ev_msg : string;
  ev_fields : (string * Json.t) list;
}

let schema = "mv-log-v1"
let capacity = 512

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  match f () with
  | v ->
    Mutex.unlock mutex;
    v
  | exception exn ->
    Mutex.unlock mutex;
    raise exn

let ring : event option array = Array.make capacity None
let total = ref 0
let sink : (event -> unit) option ref = ref None

let set_sink f = locked (fun () -> sink := f)

let event_json e =
  Json.Obj
    [
      ("lvl", Json.String (level_name e.ev_level));
      ("seq", Json.Int e.ev_seq);
      ("ts_ns", Json.Int (Int64.to_int e.ev_ts_ns));
      ("wall_s", Json.Float e.ev_wall_s);
      ( "request_id",
        match e.ev_request with Some r -> Json.String r | None -> Json.Null
      );
      ("op", match e.ev_op with Some o -> Json.String o | None -> Json.Null);
      ("msg", Json.String e.ev_msg);
      ("fields", Json.Obj e.ev_fields);
    ]

let line e = Json.to_string ~compact:true (event_json e)

let stderr_sink e = Printf.eprintf "%s\n%!" (line e)

let emit ?(level = Info) ?request ?op ?(fields = []) msg =
  let request =
    match request with Some _ as r -> r | None -> Obs.current_request ()
  in
  let ts_ns = Obs.Clock.now_ns () in
  let wall_s = Unix.gettimeofday () in
  let e, deliver =
    locked (fun () ->
        let e =
          {
            ev_seq = !total;
            ev_level = level;
            ev_ts_ns = ts_ns;
            ev_wall_s = wall_s;
            ev_request = request;
            ev_op = op;
            ev_msg = msg;
            ev_fields = fields;
          }
        in
        ring.(!total mod capacity) <- Some e;
        total := !total + 1;
        (e, !sink))
  in
  (* deliver outside the lock: a slow stderr must not stall recorders *)
  match deliver with Some f -> f e | None -> ()

let debug ?request ?op ?fields msg = emit ~level:Debug ?request ?op ?fields msg
let info ?request ?op ?fields msg = emit ~level:Info ?request ?op ?fields msg
let warn ?request ?op ?fields msg = emit ~level:Warn ?request ?op ?fields msg
let error ?request ?op ?fields msg = emit ~level:Error ?request ?op ?fields msg

let recent ?limit () =
  let events =
    locked (fun () ->
        let t = !total in
        let first = max 0 (t - capacity) in
        List.filter_map
          (fun i -> ring.(i mod capacity))
          (List.init (t - first) (fun k -> first + k)))
  in
  match limit with
  | Some n when n >= 0 && n < List.length events ->
    (* keep the newest [n] *)
    List.filteri (fun i _ -> i >= List.length events - n) events
  | _ -> events

let dump_json ?limit () =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("events", Json.List (List.map event_json (recent ?limit ())));
    ]

let clear () =
  locked (fun () ->
      Array.fill ring 0 capacity None;
      total := 0)
