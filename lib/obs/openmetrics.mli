(** OpenMetrics / Prometheus text exposition of the {!Obs} registry.

    {!render} snapshots every counter, gauge and histogram and formats
    them in the OpenMetrics text format (terminated by [# EOF]):
    counters as [name_total], gauges plain, histograms as cumulative
    [name_bucket{le="..."}] series plus [name_sum] / [name_count].

    Registry names are dot-separated; a family rule [(prefix, label)]
    — the prefix must end with ['.'] — splits matching names so the
    dynamic suffix becomes a label instead of a metric name: with
    [("serve.request_latency_s.", "op")], the histogram
    ["serve.request_latency_s.solve"] exposes as
    [serve_request_latency_s_bucket{op="solve",le="..."}]. Names
    without a matching rule are sanitized wholesale ([.] → [_]).

    Label values are escaped per the spec (backslash, double quote,
    newline). Obs
    buckets are [lo, hi) while OpenMetrics [le] is inclusive, so an
    observation exactly on a bucket boundary is attributed one bucket
    high — documented in doc/observability.md. *)

val render : ?families:(string * string) list -> unit -> string

(** Exposed for tests. *)

val sanitize : string -> string
val escape_label : string -> string
