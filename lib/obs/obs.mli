(** Mv_obs: metrics, spans and progress for the whole flow.

    A process-global telemetry registry that every engine in the
    repository reports into: counters ([Atomic]-backed, safe to bump
    from pool domains), gauges, histograms with fixed log-scale
    buckets, bounded series (per-iteration values such as solver
    residuals, decimated deterministically once they outgrow a cap)
    and monotonic-clock spans with parent nesting.

    Everything is disabled by default and costs one atomic load per
    operation; [mval --metrics/--trace/--progress] and the bench
    harness call {!enable} up front. Recording operations never
    allocate metric storage when disabled — handles are created
    eagerly by {!counter} & friends (get-or-create by name), which
    keeps the hot paths to an array/atomic update.

    Exporters: {!metrics_json} (machine-readable snapshot,
    round-trippable through {!Json}), {!trace_json} (Chrome
    trace-event format, loadable by [chrome://tracing] or
    [https://ui.perfetto.dev]), {!summary} (human text) and
    {!headlines} (curated key figures for {!Mv_core.Report}-style
    display). The metric catalogue is documented in
    doc/observability.md. *)

(** {1 Clock} *)

module Clock : sig
  (** Monotonic (non-decreasing across all domains) wall-clock
      nanoseconds. Backed by [Unix.gettimeofday] clamped so that no
      reading ever goes backwards. *)
  val now_ns : unit -> int64

  (** Seconds elapsed since [t0] (a {!now_ns} reading). *)
  val elapsed_s : int64 -> float
end

(** {1 Lifecycle} *)

(** Turn recording on. Idempotent. *)
val enable : unit -> unit

val is_enabled : unit -> bool

(** Drop every metric, span and open-span stack and disable recording
    (for tests and for the bench harness between experiments). *)
val reset : unit -> unit

(** {1 Metrics} *)

type counter
type gauge
type histogram
type series

(** Get-or-create by name. Two calls with one name return the same
    metric; one name must keep one kind (a kind clash raises
    [Invalid_argument]). *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Histograms bucket positive values into fixed base-2 log-scale
    buckets: bucket [i] holds values in [[2^(i-31), 2^(i-30))] for
    [0 < i < 62]; bucket [0] collects everything below (including
    non-positive values) and bucket [62] everything above. *)
val histogram : string -> histogram

val observe : histogram -> float -> unit

(** [bucket_of v] / [bucket_lt i]: the bucket index a value lands in,
    and a bucket's exclusive upper bound ([infinity] for the last). *)
val bucket_of : float -> int

val bucket_lt : int -> float

(** A series records successive values (e.g. one residual per solver
    iteration). The retained shape is deterministic: all values are
    kept until the cap (4096), then every other retained point is
    dropped and the sampling stride doubles — so a series always holds
    value [0], then every [stride]-th pushed value. *)
val series : string -> series

val push : series -> float -> unit

(** [(total pushed, stride, retained values in push order)]. *)
val series_values : series -> int * int * float list

(** {1 Spans} *)

type span = {
  sp_id : int;
  sp_parent : int option; (** id of the enclosing span, same domain *)
  sp_name : string;
  sp_domain : int; (** [Domain.self] of the recording domain *)
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_args : (string * Json.t) list;
}

(** [span name f] runs [f ()] inside a timed span. Nesting is tracked
    per domain: a span opened while another is open on the same domain
    records it as its parent. The span is recorded even when [f]
    raises. When disabled this is just [f ()]. *)
val span : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Completed spans, in completion order. *)
val spans : unit -> span list

(** Total recorded seconds of completed spans named [name]. *)
val span_total_s : string -> float

(** {1 Progress} *)

(** [set_progress true] turns on live progress reporting: {!progress}
    calls then repaint a single stderr line (rate-limited to ~5 Hz).
    Call {!progress_end} before printing normal output so the line is
    terminated. *)
val set_progress : bool -> unit

val progress_enabled : unit -> bool

(** [progress f] — when progress is on and the rate limiter allows,
    prints [f ()] as the live status line. [f] is not called
    otherwise. Safe to call from pool domains. *)
val progress : (unit -> string) -> unit

(** Terminate the live line (no-op when none was printed). *)
val progress_end : unit -> unit

(** {1 Exporters} *)

(** The schema tag of {!metrics_json} ("mv-obs-metrics-v1"), exposed
    for [mval version] and the serve protocol's version report. *)
val metrics_schema : string

(** Snapshot of every metric plus per-span-name aggregate timings:
    [{"schema": "mv-obs-metrics-v1", "counters": {..}, "gauges": {..},
    "histograms": {..}, "series": {..}, "timings": {..}}], keys
    sorted. Round-trips through {!Json.of_string}. *)
val metrics_json : unit -> Json.t

(** Chrome trace-event JSON: [{"traceEvents": [..]}] with one complete
    ("ph": "X") event per span, timestamps in microseconds relative to
    the first span. Load in [chrome://tracing] or Perfetto. *)
val trace_json : unit -> Json.t

(** Human-readable multi-line dump of the registry (sorted). *)
val summary : unit -> string

(** Curated key figures (states explored, states/s, solver iterations
    and residual, DES events, steal counts ...) for headline display;
    only metrics that were actually recorded appear. *)
val headlines : unit -> (string * string) list
