(** Mv_obs: metrics, spans and progress for the whole flow.

    A process-global telemetry registry that every engine in the
    repository reports into: counters ([Atomic]-backed, safe to bump
    from pool domains), gauges, histograms with fixed log-scale
    buckets and quantile estimation, bounded series (per-iteration
    values such as solver residuals, decimated deterministically once
    they outgrow a cap) and monotonic-clock spans with parent nesting
    and per-request tagging.

    Everything is disabled by default and costs one atomic load per
    operation; [mval --metrics/--trace/--progress], [mvald] and the
    bench harness call {!enable} up front. Recording operations never
    allocate metric storage when disabled — handles are created
    eagerly by {!counter} & friends (get-or-create by name), which
    keeps the hot paths to an array/atomic update.

    Exporters: {!metrics_json} (machine-readable snapshot,
    round-trippable through {!Json}), {!trace_json} (Chrome
    trace-event format, loadable by [chrome://tracing] or
    [https://ui.perfetto.dev]), {!summary} (human text) and
    {!headlines} (curated key figures for {!Mv_core.Report}-style
    display). OpenMetrics text exposition lives in {!Openmetrics};
    structured logging in {!Log}. The metric catalogue is documented
    in doc/observability.md. *)

(** {1 Clock} *)

module Clock : sig
  (** Monotonic (non-decreasing across all domains) wall-clock
      nanoseconds. Backed by [Unix.gettimeofday] clamped through a
      single process-global lock-free CAS-max, so concurrent domains
      can never observe the clock moving backwards relative to a
      reading taken on any other domain. *)
  val now_ns : unit -> int64

  (** Seconds elapsed since [t0] (a {!now_ns} reading). *)
  val elapsed_s : int64 -> float
end

(** {1 Lifecycle} *)

(** Turn recording on. Idempotent. *)
val enable : unit -> unit

val is_enabled : unit -> bool

(** Drop every metric, span, open-span stack and request context and
    disable recording (for tests and for the bench harness between
    experiments). A span still open across a reset is dropped when it
    closes instead of recording a dangling parent into the fresh
    registry. *)
val reset : unit -> unit

(** {1 Request context}

    The id of the request currently being served on the calling
    domain. Spans opened (and {!Log} events emitted) while a context
    is set are tagged with it; [Mv_serve.Server] installs the context
    around request execution. *)

(** [with_request rid f] runs [f ()] with the calling domain's request
    context set to [rid], restoring the previous context afterwards
    (also on exceptions). *)
val with_request : string -> (unit -> 'a) -> 'a

val set_request : string option -> unit
val current_request : unit -> string option

(** {1 Metrics} *)

type counter
type gauge
type histogram
type series

(** Get-or-create by name. Two calls with one name return the same
    metric; one name must keep one kind (a kind clash raises
    [Invalid_argument]). *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Histograms bucket positive values into fixed base-2 log-scale
    buckets: bucket [i] holds values in [[2^(i-31), 2^(i-30))] for
    [0 < i < 62]; bucket [0] collects everything below (including
    non-positive values) and bucket [62] everything above. *)
val histogram : string -> histogram

val observe : histogram -> float -> unit

(** [bucket_of v] / [bucket_lt i] / [bucket_ge i]: the bucket index a
    value lands in, a bucket's exclusive upper bound ([infinity] for
    the last) and its inclusive lower bound ([0.] for the first). *)
val bucket_of : float -> int

val bucket_lt : int -> float
val bucket_ge : int -> float

(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) of the
    observed distribution: the bucket holding the [ceil(q*count)]-th
    smallest observation is located exactly from the bucket counts,
    then the value is linearly interpolated between the bucket bounds
    (tightened by the recorded min/max). Estimates are monotone in [q]
    and always land inside the exact sample quantile's bucket. [nan]
    when the histogram is empty. *)
val quantile : histogram -> float -> float

(** A consistent locked snapshot of one histogram: count, sum,
    min/max, and the non-empty buckets as [(bucket index, count)]
    pairs in ascending bucket order. *)
type histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (int * int) list;
}

val histogram_snapshot : histogram -> histogram_snapshot

(** Registry-wide snapshots (name-sorted), for exporters such as
    {!Openmetrics}. *)
val all_counters : unit -> (string * int) list

val all_gauges : unit -> (string * float) list
val all_histograms : unit -> (string * histogram_snapshot) list

(** A series records successive values (e.g. one residual per solver
    iteration). The retained shape is deterministic: all values are
    kept until the cap (4096), then every other retained point is
    dropped and the sampling stride doubles — so a series always holds
    value [0], then every [stride]-th pushed value. *)
val series : string -> series

val push : series -> float -> unit

(** [(total pushed, stride, retained values in push order)]. *)
val series_values : series -> int * int * float list

(** {1 Spans} *)

type span = {
  sp_id : int;
  sp_parent : int option; (** id of the enclosing span, same domain *)
  sp_name : string;
  sp_domain : int; (** [Domain.self] of the recording domain *)
  sp_pid : int; (** trace process lane: 1 local, 2 ingested remote *)
  sp_request : string option; (** request context at open time *)
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_args : (string * Json.t) list;
}

(** [span name f] runs [f ()] inside a timed span. Nesting is tracked
    per domain: a span opened while another is open on the same domain
    records it as its parent. The span is recorded even when [f]
    raises, and tagged with the current request context. When disabled
    this is just [f ()]. *)
val span : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Completed spans, in completion order. Retention is bounded: only
    the most recent 32768 completions are kept (a long-running daemon
    would otherwise leak). *)
val spans : unit -> span list

(** Completed spans tagged with request id [rid]. *)
val spans_for_request : string -> span list

(** Total recorded seconds of completed spans named [name]. *)
val span_total_s : string -> float

(** {1 Span interchange}

    How a daemon ships the spans of one request back to the client so
    both sides land in a single Chrome trace ("mv-trace-spans-v1"). *)

val trace_spans_schema : string

(** Encode a span list as [{"schema": "mv-trace-spans-v1", "spans":
    [..]}] with absolute nanosecond timestamps. *)
val spans_json : span list -> Json.t

(** Re-record spans received from a peer under trace pid 2 (the
    "remote" lane). Both ends share the machine wall clock, so the
    absolute timestamps line up with locally recorded spans. Malformed
    entries are skipped; no-op when disabled. *)
val ingest_spans : Json.t -> unit

(** {1 Progress} *)

(** [set_progress true] turns on live progress reporting: {!progress}
    calls then repaint a single stderr line (rate-limited to ~5 Hz).
    Call {!progress_end} before printing normal output so the line is
    terminated. *)
val set_progress : bool -> unit

val progress_enabled : unit -> bool

(** [progress f] — when progress is on and the rate limiter allows,
    prints [f ()] as the live status line. [f] is not called
    otherwise. Safe to call from pool domains. *)
val progress : (unit -> string) -> unit

(** Terminate the live line (no-op when none was printed). *)
val progress_end : unit -> unit

(** {1 Process gauges} *)

(** Peak resident set size of the process so far, in kilobytes
    (getrusage [ru_maxrss] — a monotone high-water mark, never a
    current reading). Works without {!enable}. *)
val maxrss_kb : unit -> int

(** Refresh the [process.maxrss_kb] gauge from {!maxrss_kb}. Called
    automatically by {!metrics_json} and the OpenMetrics exposition,
    so every exported snapshot carries the peak at snapshot time. *)
val refresh_process_gauges : unit -> unit

(** {1 Exporters} *)

(** The schema tag of {!metrics_json} ("mv-obs-metrics-v1"), exposed
    for [mval version] and the serve protocol's version report. *)
val metrics_schema : string

(** Snapshot of every metric plus per-span-name aggregate timings:
    [{"schema": "mv-obs-metrics-v1", "counters": {..}, "gauges": {..},
    "histograms": {..}, "series": {..}, "timings": {..}}], keys
    sorted. Histogram entries include estimated [p50]/[p90]/[p99].
    Round-trips through {!Json.of_string}. *)
val metrics_json : unit -> Json.t

(** Chrome trace-event JSON: [{"traceEvents": [..]}] with one complete
    ("ph": "X") event per span, timestamps in microseconds relative to
    the first span, [pid] the span's trace lane (1 local, 2 remote)
    and the request id in [args]. Load in [chrome://tracing] or
    Perfetto. *)
val trace_json : unit -> Json.t

(** Human-readable multi-line dump of the registry (sorted). *)
val summary : unit -> string

(** Curated key figures (states explored, states/s, solver iterations
    and residual, DES events, steal counts ...) for headline display;
    only metrics that were actually recorded appear. *)
val headlines : unit -> (string * string) list
