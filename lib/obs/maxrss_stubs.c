/* Peak resident set size of the current process, via getrusage(2).
   ru_maxrss is in kilobytes on Linux and in bytes on macOS. */

#include <caml/mlvalues.h>
#include <sys/resource.h>

CAMLprim value mv_obs_maxrss_kb(value unit)
{
  struct rusage ru;
  (void)unit;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return Val_long(0);
#ifdef __APPLE__
  return Val_long(ru.ru_maxrss / 1024);
#else
  return Val_long(ru.ru_maxrss);
#endif
}
