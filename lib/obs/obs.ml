(* Process-global telemetry registry. One mutex guards every mutable
   structure except counters (Atomic), the clock clamp (Atomic CAS)
   and the enabled flag; the recording paths that run on pool domains
   (counter bumps, histogram observations, progress repaints) are safe
   from any domain. *)

module Clock = struct
  (* One process-global clamp, maintained with a lock-free CAS-max
     over an int (62-bit nanoseconds reach past the year 2100): no
     reading on any domain can observe a timestamp below one already
     handed out on another domain, and — unlike a mutex — the clock
     stays safe to read from signal handlers and from inside other
     locked sections. *)
  let last = Atomic.make 0

  let rec clamp wall =
    let prev = Atomic.get last in
    if wall <= prev then prev
    else if Atomic.compare_and_set last prev wall then wall
    else clamp wall

  let now_ns () =
    Int64.of_int (clamp (int_of_float (Unix.gettimeofday () *. 1e9)))

  let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9
end

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let is_enabled () = Atomic.get enabled_flag

(* Bumped by [reset]: a span that was open across a reset must not
   record itself into the fresh registry (its parent id points into
   the dropped world). *)
let epoch = Atomic.make 0

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  match f () with
  | v ->
    Mutex.unlock mutex;
    v
  | exception exn ->
    Mutex.unlock mutex;
    raise exn

let domain_id () = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* Request context                                                     *)

(* The id of the request currently being served on each domain; spans
   and log events opened while a context is set are tagged with it.
   [Mv_serve.Server] installs the context around request execution so
   every engine span recorded during a request carries its id. *)
let request_contexts : (int, string) Hashtbl.t = Hashtbl.create 8

let current_request () =
  locked (fun () -> Hashtbl.find_opt request_contexts (domain_id ()))

let set_request rid =
  locked (fun () ->
      match rid with
      | Some r -> Hashtbl.replace request_contexts (domain_id ()) r
      | None -> Hashtbl.remove request_contexts (domain_id ()))

let with_request rid f =
  let dom = domain_id () in
  let prev = locked (fun () -> Hashtbl.find_opt request_contexts dom) in
  set_request (Some rid);
  Fun.protect ~finally:(fun () -> set_request prev) f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; mutable g_value : float }

let nb_buckets = 63

let bucket_of v =
  if not (v > 0.0) then 0
  else begin
    let _, e = Float.frexp v in
    (* v is in [2^(e-1), 2^e) *)
    let i = e + 30 in
    if i < 0 then 0 else if i > nb_buckets - 1 then nb_buckets - 1 else i
  end

let bucket_lt i =
  if i >= nb_buckets - 1 then infinity else Float.ldexp 1.0 (i - 30)

let bucket_ge i = if i <= 0 then 0.0 else bucket_lt (i - 1)

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let series_cap = 4096

type series = {
  s_name : string;
  s_values : float array;
  mutable s_length : int;
  mutable s_stride : int;
  mutable s_skip : int; (* pushes to drop before the next retained one *)
  mutable s_total : int;
}

let kinds : (string, string) Hashtbl.t = Hashtbl.create 64
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let series_table : (string, series) Hashtbl.t = Hashtbl.create 16

let get_or_create table kind name make =
  locked (fun () ->
      (match Hashtbl.find_opt kinds name with
       | Some k when k <> kind ->
         invalid_arg
           (Printf.sprintf "Obs: metric %S is a %s, requested as %s" name k
              kind)
       | Some _ -> ()
       | None -> Hashtbl.replace kinds name kind);
      match Hashtbl.find_opt table name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace table name m;
        m)

let counter name =
  get_or_create counters "counter" name (fun () ->
      { c_name = name; cell = Atomic.make 0 })

let add c n = if is_enabled () && n <> 0 then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let counter_value c = Atomic.get c.cell

let gauge name =
  get_or_create gauges "gauge" name (fun () -> { g_name = name; g_value = 0.0 })

let set g v = if is_enabled () then locked (fun () -> g.g_value <- v)
let gauge_value g = g.g_value

let histogram name =
  get_or_create histograms "histogram" name (fun () ->
      {
        h_name = name;
        h_buckets = Array.make nb_buckets 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
      })

let observe h v =
  if is_enabled () then
    locked (fun () ->
        let b = bucket_of v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v)

type histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (int * int) list;
}

let histogram_snapshot h =
  locked (fun () ->
      let buckets = ref [] in
      for i = nb_buckets - 1 downto 0 do
        if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
      done;
      {
        hs_count = h.h_count;
        hs_sum = h.h_sum;
        hs_min = h.h_min;
        hs_max = h.h_max;
        hs_buckets = !buckets;
      })

(* Quantile estimation by log-bucket interpolation. The bucket is the
   one holding the ceil(q*count)-th smallest observation (buckets are
   exact counts, so this is exact); the value inside it is linearly
   interpolated between the bucket bounds, tightened by the recorded
   min/max. The estimate therefore always lands inside the exact
   sample quantile's bucket, and is monotone in q. *)
let quantile h q =
  locked (fun () ->
      if h.h_count = 0 then Float.nan
      else begin
        let q = Float.max 0.0 (Float.min 1.0 q) in
        let target = Float.max 1.0 (q *. float_of_int h.h_count) in
        let rec find i cum =
          if i >= nb_buckets - 1 then (i, cum)
          else if
            h.h_buckets.(i) > 0
            && float_of_int (cum + h.h_buckets.(i)) >= target
          then (i, cum)
          else find (i + 1) (cum + h.h_buckets.(i))
        in
        let b, before = find 0 0 in
        let lo = Float.max (bucket_ge b) h.h_min in
        let hi = Float.min (bucket_lt b) h.h_max in
        let lo = Float.min lo hi in
        let inside = h.h_buckets.(b) in
        let frac =
          if inside = 0 then 1.0
          else
            Float.max 0.0
              (Float.min 1.0
                 ((target -. float_of_int before) /. float_of_int inside))
        in
        lo +. (frac *. (hi -. lo))
      end)

let series name =
  get_or_create series_table "series" name (fun () ->
      {
        s_name = name;
        s_values = Array.make series_cap 0.0;
        s_length = 0;
        s_stride = 1;
        s_skip = 0;
        s_total = 0;
      })

let push s v =
  if is_enabled () then
    locked (fun () ->
        s.s_total <- s.s_total + 1;
        if s.s_skip > 0 then s.s_skip <- s.s_skip - 1
        else begin
          if s.s_length = series_cap then begin
            (* decimate: keep every other retained point *)
            for i = 0 to (series_cap / 2) - 1 do
              s.s_values.(i) <- s.s_values.(2 * i)
            done;
            s.s_length <- series_cap / 2;
            s.s_stride <- s.s_stride * 2
          end;
          s.s_values.(s.s_length) <- v;
          s.s_length <- s.s_length + 1;
          s.s_skip <- s.s_stride - 1
        end)

let series_values s =
  locked (fun () ->
      ( s.s_total,
        s.s_stride,
        List.init s.s_length (fun i -> s.s_values.(i)) ))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_domain : int;
  sp_pid : int;
  sp_request : string option;
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_args : (string * Json.t) list;
}

let local_pid = 1
let remote_pid = 2
let next_span_id = Atomic.make 0

(* Completed spans live in a bounded ring: a long-running daemon
   records one span tree per request forever, so an unbounded list
   would be a leak. The ring keeps the most recent [span_cap]
   completions in order. *)
let span_cap = 32768
let span_ring : span option array = Array.make span_cap None
let span_total = ref 0

let record_span sp =
  locked (fun () ->
      span_ring.(!span_total mod span_cap) <- Some sp;
      span_total := !span_total + 1)

(* per-domain stack of open span ids (innermost first) *)
let open_stacks : (int, int list) Hashtbl.t = Hashtbl.create 8

let span ?(args = []) name f =
  if not (is_enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_span_id 1 in
    let dom = domain_id () in
    let epoch0 = Atomic.get epoch in
    let parent, request =
      locked (fun () ->
          let stack =
            Option.value ~default:[] (Hashtbl.find_opt open_stacks dom)
          in
          Hashtbl.replace open_stacks dom (id :: stack);
          ( (match stack with [] -> None | p :: _ -> Some p),
            Hashtbl.find_opt request_contexts dom ))
    in
    let t0 = Clock.now_ns () in
    let record () =
      let t1 = Clock.now_ns () in
      if Atomic.get epoch = epoch0 then begin
        locked (fun () ->
            match Hashtbl.find_opt open_stacks dom with
            | Some (top :: rest) when top = id ->
              Hashtbl.replace open_stacks dom rest
            | Some stack ->
              Hashtbl.replace open_stacks dom
                (List.filter (fun i -> i <> id) stack)
            | None -> ());
        record_span
          {
            sp_id = id;
            sp_parent = parent;
            sp_name = name;
            sp_domain = dom;
            sp_pid = local_pid;
            sp_request = request;
            sp_start_ns = t0;
            sp_dur_ns = Int64.sub t1 t0;
            sp_args = args;
          }
      end
    in
    match f () with
    | v ->
      record ();
      v
    | exception exn ->
      record ();
      raise exn
  end

let spans () =
  locked (fun () ->
      let total = !span_total in
      let first = max 0 (total - span_cap) in
      List.filter_map
        (fun i -> span_ring.(i mod span_cap))
        (List.init (total - first) (fun k -> first + k)))

let spans_for_request rid =
  List.filter (fun sp -> sp.sp_request = Some rid) (spans ())

let span_total_s name =
  List.fold_left
    (fun acc sp ->
       if sp.sp_name = name then acc +. (Int64.to_float sp.sp_dur_ns /. 1e9)
       else acc)
    0.0 (spans ())

(* ------------------------------------------------------------------ *)
(* Progress                                                            *)

let progress_flag = Atomic.make false
let progress_last = ref 0L
let progress_live = ref false

let set_progress on = Atomic.set progress_flag on
let progress_enabled () = Atomic.get progress_flag

let progress f =
  if Atomic.get progress_flag then begin
    let now = Clock.now_ns () in
    let msg =
      locked (fun () ->
          if Int64.sub now !progress_last >= 200_000_000L then begin
            progress_last := now;
            progress_live := true;
            Some (f ())
          end
          else None)
    in
    match msg with
    | Some msg ->
      Printf.eprintf "\r\027[K%s%!" msg
    | None -> ()
  end

let progress_end () =
  let live =
    locked (fun () ->
        let was = !progress_live in
        progress_live := false;
        was)
  in
  if live then Printf.eprintf "\n%!"

(* ------------------------------------------------------------------ *)
(* Reset                                                               *)

let reset () =
  Atomic.set enabled_flag false;
  Atomic.set progress_flag false;
  (* orphan spans still open on (possibly idle) pool domains: their
     record must drop itself rather than land in the fresh registry *)
  Atomic.incr epoch;
  locked (fun () ->
      Hashtbl.reset kinds;
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms;
      Hashtbl.reset series_table;
      Hashtbl.reset open_stacks;
      Hashtbl.reset request_contexts;
      Array.fill span_ring 0 span_cap None;
      span_total := 0;
      progress_live := false;
      progress_last := 0L)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let sorted_fold table extract =
  locked (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, m) -> (name, extract m))

let all_counters () = sorted_fold counters (fun c -> Atomic.get c.cell)
let all_gauges () = sorted_fold gauges (fun g -> g.g_value)
let all_histograms () = sorted_fold histograms histogram_snapshot

let finite f = if f = infinity || f = neg_infinity || f <> f then 0.0 else f

let histogram_json h =
  let snapshot = histogram_snapshot h in
  let buckets =
    List.map
      (fun (i, count) ->
         Json.Obj
           [
             ( "lt",
               if i = nb_buckets - 1 then Json.Null
               else Json.Float (bucket_lt i) );
             ("count", Json.Int count);
           ])
      snapshot.hs_buckets
  in
  Json.Obj
    [
      ("count", Json.Int snapshot.hs_count);
      ("sum", Json.Float (finite snapshot.hs_sum));
      ("min", Json.Float (finite snapshot.hs_min));
      ("max", Json.Float (finite snapshot.hs_max));
      ("p50", Json.Float (finite (quantile h 0.50)));
      ("p90", Json.Float (finite (quantile h 0.90)));
      ("p99", Json.Float (finite (quantile h 0.99)));
      ("buckets", Json.List buckets);
    ]

let series_json s =
  let total, stride, values = series_values s in
  Json.Obj
    [
      ("total", Json.Int total);
      ("stride", Json.Int stride);
      ("values", Json.List (List.map (fun v -> Json.Float (finite v)) values));
    ]

(* aggregate span timings by name: count, total and max seconds *)
let timings () =
  let table : (string, int * float * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
       let s = Int64.to_float sp.sp_dur_ns /. 1e9 in
       let count, total, mx =
         Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt table sp.sp_name)
       in
       Hashtbl.replace table sp.sp_name (count + 1, total +. s, max mx s))
    (spans ());
  Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let metrics_schema = "mv-obs-metrics-v1"

(* Peak RSS (getrusage maxrss, monotone high-water mark). The gauge is
   refreshed lazily, just before every snapshot/exposition, so each
   exported view carries the peak as of the moment it was taken. *)
external maxrss_kb : unit -> int = "mv_obs_maxrss_kb" [@@noalloc]

let refresh_process_gauges () =
  if is_enabled () then
    set (gauge "process.maxrss_kb") (float_of_int (maxrss_kb ()))

let metrics_json () =
  refresh_process_gauges ();
  Json.Obj
    [
      ("schema", Json.String metrics_schema);
      ( "counters",
        Json.Obj
          (sorted_fold counters (fun c -> Json.Int (Atomic.get c.cell))) );
      ( "gauges",
        Json.Obj (sorted_fold gauges (fun g -> Json.Float (finite g.g_value)))
      );
      ("histograms", Json.Obj (sorted_fold histograms histogram_json));
      ("series", Json.Obj (sorted_fold series_table series_json));
      ( "timings",
        Json.Obj
          (List.map
             (fun (name, (count, total, mx)) ->
                ( name,
                  Json.Obj
                    [
                      ("count", Json.Int count);
                      ("total_s", Json.Float (finite total));
                      ("max_s", Json.Float (finite mx));
                    ] ))
             (timings ())) );
    ]

(* ------------------------------------------------------------------ *)
(* Span interchange (client/server trace stitching)                    *)

let trace_spans_schema = "mv-trace-spans-v1"

let span_json sp =
  Json.Obj
    [
      ("name", Json.String sp.sp_name);
      ("domain", Json.Int sp.sp_domain);
      ("start_ns", Json.Int (Int64.to_int sp.sp_start_ns));
      ("dur_ns", Json.Int (Int64.to_int sp.sp_dur_ns));
      ( "parent",
        match sp.sp_parent with Some p -> Json.Int p | None -> Json.Null );
      ( "request_id",
        match sp.sp_request with Some r -> Json.String r | None -> Json.Null
      );
      ("args", Json.Obj sp.sp_args);
    ]

let spans_json spans =
  Json.Obj
    [
      ("schema", Json.String trace_spans_schema);
      ("spans", Json.List (List.map span_json spans));
    ]

(* Ingest spans shipped by a peer (a daemon answering a traced
   request): they are re-recorded here under a distinct trace pid so a
   single Chrome trace shows the client and server timelines side by
   side. Client and daemon share the machine's wall clock, so the
   absolute nanosecond timestamps line up across the two pids. *)
let ingest_spans json =
  if is_enabled () then begin
    let spans =
      match Json.member "spans" json with Some (Json.List l) -> l | _ -> []
    in
    List.iter
      (fun sp ->
         let str name =
           match Json.member name sp with
           | Some (Json.String s) -> Some s
           | _ -> None
         in
         let int name =
           match Json.member name sp with
           | Some (Json.Int n) -> Some n
           | _ -> None
         in
         match (str "name", int "start_ns", int "dur_ns") with
         | Some name, Some start_ns, Some dur_ns ->
           record_span
             {
               sp_id = Atomic.fetch_and_add next_span_id 1;
               sp_parent = None;
               sp_name = name;
               sp_domain = Option.value ~default:0 (int "domain");
               sp_pid = remote_pid;
               sp_request = str "request_id";
               sp_start_ns = Int64.of_int start_ns;
               sp_dur_ns = Int64.of_int dur_ns;
               sp_args = [];
             }
         | _ -> ())
      spans
  end

let trace_json () =
  let all = spans () in
  let origin =
    List.fold_left
      (fun acc sp -> if Int64.compare sp.sp_start_ns acc < 0 then sp.sp_start_ns else acc)
      (match all with [] -> 0L | sp :: _ -> sp.sp_start_ns)
      all
  in
  let micro ns = Int64.to_float ns /. 1e3 in
  let events =
    List.map
      (fun sp ->
         let args =
           (match sp.sp_parent with
            | Some p -> [ ("parent", Json.Int p) ]
            | None -> [])
           @ (match sp.sp_request with
              | Some r -> [ ("request_id", Json.String r) ]
              | None -> [])
           @ sp.sp_args
         in
         Json.Obj
           [
             ("name", Json.String sp.sp_name);
             ("cat", Json.String "mv");
             ("ph", Json.String "X");
             ("ts", Json.Float (micro (Int64.sub sp.sp_start_ns origin)));
             ("dur", Json.Float (micro sp.sp_dur_ns));
             ("pid", Json.Int sp.sp_pid);
             ("tid", Json.Int sp.sp_domain);
             ("args", Json.Obj args);
           ])
      all
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

let summary () =
  let buffer = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) -> line "counter    %-32s %d" name v)
    (sorted_fold counters (fun c -> Atomic.get c.cell));
  List.iter
    (fun (name, v) -> line "gauge      %-32s %g" name v)
    (sorted_fold gauges (fun g -> g.g_value));
  List.iter
    (fun (name, h) ->
       line "histogram  %-32s count %d sum %g min %g max %g p50 %g p99 %g"
         name h.h_count (finite h.h_sum) (finite h.h_min) (finite h.h_max)
         (finite (quantile h 0.50)) (finite (quantile h 0.99)))
    (sorted_fold histograms Fun.id);
  List.iter
    (fun (name, s) ->
       let total, stride, values = series_values s in
       let last = match List.rev values with [] -> 0.0 | v :: _ -> v in
       line "series     %-32s %d point(s), stride %d, last %g" name total
         stride last)
    (sorted_fold series_table Fun.id);
  List.iter
    (fun (name, (count, total, mx)) ->
       line "span       %-32s %d run(s), total %.4fs, max %.4fs" name count
         total mx)
    (timings ());
  Buffer.contents buffer

let find_counter name =
  locked (fun () -> Hashtbl.find_opt counters name)
  |> Option.map (fun c -> Atomic.get c.cell)

let find_gauge name =
  locked (fun () -> Hashtbl.find_opt gauges name)
  |> Option.map (fun g -> g.g_value)

let headlines () =
  let items = ref [] in
  let add key value = items := (key, value) :: !items in
  (match find_counter "explore.states" with
   | Some states when states > 0 ->
     add "states explored" (string_of_int states);
     (match find_counter "explore.transitions" with
      | Some t -> add "transitions" (string_of_int t)
      | None -> ());
     let total = span_total_s "explore" in
     if total > 0.0 then
       add "states/s" (Printf.sprintf "%.0f" (float_of_int states /. total))
   | Some _ | None -> ());
  (match find_counter "solver.iterations" with
   | Some n when n > 0 ->
     add "solver iterations" (string_of_int n);
     (match find_gauge "solver.final_residual" with
      | Some r -> add "final residual" (Printf.sprintf "%.3g" r)
      | None -> ());
     (match find_gauge "solver.contraction" with
      | Some r when r > 0.0 ->
        add "contraction/iter" (Printf.sprintf "%.4f" r)
      | Some _ | None -> ())
   | Some _ | None -> ());
  (match find_counter "bisim.rounds" with
   | Some n when n > 0 -> add "refinement rounds" (string_of_int n)
   | Some _ | None -> ());
  (match find_counter "des.events" with
   | Some n when n > 0 -> add "DES events" (string_of_int n)
   | Some _ | None -> ());
  (match find_counter "par.steals" with
   | Some n -> add "work steals" (string_of_int n)
   | None -> ());
  List.rev !items
