(** A minimal JSON tree: printer and parser, round-trippable.

    This is the interchange format shared by the observability
    exporters ([mval --metrics], the Chrome trace file, the bench
    trajectory) and the lint renderer ([mval lint --json]); keeping it
    here avoids pulling a JSON dependency into the toolchain. Numbers
    parsed with a ['.'], an exponent, or a leading sign producing a
    fraction become {!Float}; all other numbers become {!Int}, and the
    printer preserves that distinction (floats always carry a ['.'] or
    an exponent), so [of_string (to_string v) = v] for every value the
    printer emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [to_string v] renders [v] with a trailing newline. Objects and
    arrays are pretty-printed one element per line ([compact] puts
    everything on one line, no trailing newline). Non-finite floats
    have no JSON representation and are rendered as [null]. *)
val to_string : ?compact:bool -> t -> string

(** Raises {!Parse_error} on malformed input (with an offset). The
    accepted grammar is standard JSON; [\u] escapes outside ASCII are
    decoded to UTF-8.

    This parser also consumes untrusted socket input (the [mv-serve-v1]
    protocol of {!Mv_serve}), so it is defensive: trailing garbage
    after the value is rejected, nesting deeper than [max_depth]
    (default {!default_max_depth}, bounding both memory and parser
    recursion) is rejected, and when [max_bytes] is given any input
    longer than it is rejected before parsing starts. *)
val of_string : ?max_depth:int -> ?max_bytes:int -> string -> t

(** The default nesting bound of {!of_string} (512 — far above any
    schema in this repository, low enough to keep a hostile
    deeply-nested document from exhausting the stack). *)
val default_max_depth : int

(** [member name v] — field lookup in an {!Obj}; [None] when absent or
    when [v] is not an object. *)
val member : string -> t -> t option

(** Structural equality (floats compared bitwise via [compare], so
    round-tripped values — which are never [nan] — compare equal). *)
val equal : t -> t -> bool
