type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_string s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buffer "\\\""
       | '\\' -> Buffer.add_string buffer "\\\\"
       | '\n' -> Buffer.add_string buffer "\\n"
       | '\t' -> Buffer.add_string buffer "\\t"
       | '\r' -> Buffer.add_string buffer "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* Shortest float form that survives a round trip and still parses
   back as a float (a '.' or exponent is forced onto integral
   values). *)
let float_repr f =
  if f <> f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let to_string ?(compact = false) v =
  let buffer = Buffer.create 256 in
  let indent depth =
    if not compact then begin
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (String.make (2 * depth) ' ')
    end
  in
  let rec emit depth v =
    match v with
    | Null -> Buffer.add_string buffer "null"
    | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
    | Int i -> Buffer.add_string buffer (string_of_int i)
    | Float f -> Buffer.add_string buffer (float_repr f)
    | String s ->
      Buffer.add_char buffer '"';
      Buffer.add_string buffer (escape_string s);
      Buffer.add_char buffer '"'
    | List [] -> Buffer.add_string buffer "[]"
    | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
           if i > 0 then Buffer.add_char buffer ',';
           indent (depth + 1);
           emit (depth + 1) item)
        items;
      indent depth;
      Buffer.add_char buffer ']'
    | Obj [] -> Buffer.add_string buffer "{}"
    | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, value) ->
           if i > 0 then Buffer.add_char buffer ',';
           indent (depth + 1);
           Buffer.add_char buffer '"';
           Buffer.add_string buffer (escape_string key);
           Buffer.add_string buffer "\": ";
           emit (depth + 1) value)
        fields;
      indent depth;
      Buffer.add_char buffer '}'
  in
  emit 0 v;
  if not compact then Buffer.add_char buffer '\n';
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let utf8_of_code buffer code =
  if code < 0x80 then Buffer.add_char buffer (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end

let default_max_depth = 512

let of_string ?(max_depth = default_max_depth) ?max_bytes text =
  let failf fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  (match max_bytes with
   | Some cap when String.length text > cap ->
     failf "input of %d bytes exceeds the %d-byte limit" (String.length text)
       cap
   | Some _ | None -> ());
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> failf "expected %c, found %c at offset %d" c c' !pos
    | None -> failf "expected %c, found end of input" c
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else failf "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> failf "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'n' -> Buffer.add_char buffer '\n'; advance ()
         | Some 't' -> Buffer.add_char buffer '\t'; advance ()
         | Some 'r' -> Buffer.add_char buffer '\r'; advance ()
         | Some 'b' -> Buffer.add_char buffer '\b'; advance ()
         | Some 'f' -> Buffer.add_char buffer '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > len then failf "truncated \\u escape";
           let code =
             match int_of_string_opt ("0x" ^ String.sub text !pos 4) with
             | Some c -> c
             | None -> failf "invalid \\u escape at offset %d" !pos
           in
           pos := !pos + 4;
           utf8_of_code buffer code
         | Some c -> Buffer.add_char buffer c; advance ()
         | None -> failf "unterminated escape");
        loop ()
      | Some c -> Buffer.add_char buffer c; advance (); loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       while (match peek () with Some '0' .. '9' -> true | _ -> false) do
         advance ()
       done
     | _ -> ());
    let body = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt body with
      | Some f -> Float f
      | None -> failf "invalid number %S at offset %d" body start
    else
      match int_of_string_opt body with
      | Some i -> Int i
      | None -> (
          (* out of int range: fall back to the float reading *)
          match float_of_string_opt body with
          | Some f -> Float f
          | None -> failf "invalid number %S at offset %d" body start)
  in
  let rec parse_value depth =
    if depth > max_depth then
      failf "nesting deeper than %d at offset %d" max_depth !pos;
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> failf "expected , or ] at offset %d" !pos
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((key, v) :: acc)
          | Some '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> failf "expected , or } at offset %d" !pos
        in
        Obj (fields [])
      end
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> failf "unexpected character %c at offset %d" c !pos
    | None -> failf "unexpected end of input"
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> len then failf "trailing input at offset %d" !pos;
  v

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let equal (a : t) (b : t) = a = b
