module Json = Mv_obs.Json
module Obs = Mv_obs.Obs

(* Object files are an envelope around the opaque payload:
   "MVC\x01" + u32le crc32(payload) + payload. The envelope (not the
   payload format) is what corruption detection checks, so the cache
   can hold any bytes. *)
let object_magic = "MVC\x01"
let index_schema = "mv-store-index-v1"
let stats_schema = "mv-store-stats-v1"
let index_schema_name = index_schema
let stats_schema_name = stats_schema

type entry = {
  key : string;
  op : string;
  bytes : int;
  created_s : float;
  mutable last_used_s : float;
  mutable hits : int;
}

type t = {
  dir : string;
  objects_dir : string;
  max_bytes : int option;
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits_total : int;
  mutable misses_total : int;
  mutable evictions_total : int;
  mutable session_hits : int;
  mutable session_misses : int;
}

let dir t = t.dir
let max_bytes t = t.max_bytes

(* One handle may be shared across the mvald worker domains: every
   public operation takes the handle's mutex (computation between a
   miss and the corresponding [store] happens outside it). The lock
   also keeps [write_atomic]'s pid-named temp files — identical for
   every domain of one process — from colliding on a same-key race. *)
let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Per-domain hit/miss counts: with [pool = None] inside each daemon
   request, every cache call a request makes lands on its worker
   domain, so a delta of these around the request is that request's
   exact cache provenance even while other domains hit the same
   handle. *)
let domain_counts : (int ref * int ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref 0, ref 0))

let domain_session () =
  let hits, misses = Domain.DLS.get domain_counts in
  (!hits, !misses)

(* obs handles (shared, process-wide) *)
let c_hits = lazy (Obs.counter "cache.hits")
let c_misses = lazy (Obs.counter "cache.misses")
let c_bytes_read = lazy (Obs.counter "cache.bytes_read")
let c_bytes_written = lazy (Obs.counter "cache.bytes_written")
let c_evictions = lazy (Obs.counter "cache.evictions")

let now_s () = Unix.gettimeofday ()
let object_path t key = Filename.concat t.objects_dir key

let mkdir_p path =
  let rec ensure path =
    if not (Sys.file_exists path) then begin
      ensure (Filename.dirname path);
      try Sys.mkdir path 0o755
      with Sys_error _ when Sys.file_exists path -> ()
    end
  in
  ensure path

(* ------------------------------------------------------------------ *)
(* Index persistence                                                   *)

let index_path t = Filename.concat t.dir "index.json"

let index_json t =
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
    |> List.sort (fun a b -> compare a.key b.key)
    |> List.map (fun e ->
           Json.Obj
             [
               ("key", Json.String e.key);
               ("op", Json.String e.op);
               ("bytes", Json.Int e.bytes);
               ("created_s", Json.Float e.created_s);
               ("last_used_s", Json.Float e.last_used_s);
               ("hits", Json.Int e.hits);
             ])
  in
  Json.Obj
    [
      ("schema", Json.String index_schema);
      ("hits", Json.Int t.hits_total);
      ("misses", Json.Int t.misses_total);
      ("evictions", Json.Int t.evictions_total);
      ("entries", Json.List entries);
    ]

(* Atomic publication: write to a temp name in the same directory,
   then rename over the destination. *)
let write_atomic path contents =
  let tmp =
    Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  Sys.rename tmp path

let save_index t = write_atomic (index_path t) (Json.to_string (index_json t))

let load_index t =
  let int_member name json =
    match Json.member name json with Some (Json.Int n) -> n | _ -> 0
  in
  let float_member name json =
    match Json.member name json with
    | Some (Json.Float f) -> f
    | Some (Json.Int n) -> float_of_int n
    | _ -> 0.0
  in
  let string_member name json =
    match Json.member name json with Some (Json.String s) -> s | _ -> ""
  in
  let json = Json.of_string (In_channel.with_open_bin (index_path t) In_channel.input_all) in
  (match Json.member "schema" json with
   | Some (Json.String s) when s = index_schema -> ()
   | _ -> failwith "unknown index schema");
  t.hits_total <- int_member "hits" json;
  t.misses_total <- int_member "misses" json;
  t.evictions_total <- int_member "evictions" json;
  match Json.member "entries" json with
  | Some (Json.List entries) ->
    List.iter
      (fun e ->
         let key = string_member "key" e in
         (* only believe entries whose object file is still present *)
         if key <> "" && Sys.file_exists (object_path t key) then
           Hashtbl.replace t.table key
             {
               key;
               op = string_member "op" e;
               bytes = int_member "bytes" e;
               created_s = float_member "created_s" e;
               last_used_s = float_member "last_used_s" e;
               hits = int_member "hits" e;
             })
      entries
  | _ -> ()

(* When the index is missing or unreadable, rebuild it from the object
   files themselves (op is unknown; sizes and mtimes come from stat). *)
let rebuild_index t =
  Hashtbl.reset t.table;
  Array.iter
    (fun name ->
       if not (String.contains name '.') then
         match Unix.stat (object_path t name) with
         | { Unix.st_size; st_mtime; _ } ->
           Hashtbl.replace t.table name
             {
               key = name;
               op = "?";
               bytes = max 0 (st_size - String.length object_magic - 4);
               created_s = st_mtime;
               last_used_s = st_mtime;
               hits = 0;
             }
         | exception Unix.Unix_error _ -> ())
    (Sys.readdir t.objects_dir)

let open_dir ?max_bytes path =
  let t =
    {
      dir = path;
      objects_dir = Filename.concat path "objects";
      max_bytes;
      table = Hashtbl.create 64;
      mutex = Mutex.create ();
      hits_total = 0;
      misses_total = 0;
      evictions_total = 0;
      session_hits = 0;
      session_misses = 0;
    }
  in
  mkdir_p t.objects_dir;
  (try load_index t
   with _ -> rebuild_index t);
  t

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)

let key ~op ?(params = []) source =
  let buffer = Buffer.create (String.length source + 64) in
  Buffer.add_string buffer op;
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer (Printf.sprintf "mvb%d\n" Mvb.format_version);
  List.iter
    (fun (k, v) ->
       Buffer.add_string buffer k;
       Buffer.add_char buffer '=';
       Buffer.add_string buffer v;
       Buffer.add_char buffer '\n')
    (List.sort compare params);
  Buffer.add_string buffer "--\n";
  Buffer.add_string buffer source;
  Digest.to_hex (Digest.string (Buffer.contents buffer))

(* ------------------------------------------------------------------ *)
(* Eviction                                                            *)

let total_bytes t = Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.table 0

let drop_entry t entry =
  Hashtbl.remove t.table entry.key;
  try Sys.remove (object_path t entry.key) with Sys_error _ -> ()

(* Evict least-recently-used entries until the payload total fits in
   [cap]. [keep] protects the entry just inserted from evicting
   itself (unless it alone exceeds the cap, in which case it stays —
   a cache holding its newest artifact is more useful than an empty
   one). *)
let evict_to_cap ?keep t cap =
  let excess = total_bytes t - cap in
  if excess <= 0 then 0
  else begin
    let by_age =
      Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
      |> List.sort (fun a b -> compare a.last_used_s b.last_used_s)
    in
    let evicted = ref 0 in
    List.iter
      (fun e ->
         if total_bytes t > cap && Some e.key <> keep then begin
           drop_entry t e;
           incr evicted;
           t.evictions_total <- t.evictions_total + 1;
           Obs.incr (Lazy.force c_evictions)
         end)
      by_age;
    !evicted
  end

(* ------------------------------------------------------------------ *)
(* Raw find / store                                                    *)

let read_object t key =
  let path = object_path t key in
  match In_channel.with_open_bin path In_channel.input_all with
  | contents ->
    let header_len = String.length object_magic + 4 in
    if
      String.length contents < header_len
      || String.sub contents 0 (String.length object_magic) <> object_magic
    then None
    else begin
      let crc = ref 0 in
      for i = 3 downto 0 do
        crc := (!crc lsl 8) lor Char.code contents.[String.length object_magic + i]
      done;
      let payload =
        String.sub contents header_len (String.length contents - header_len)
      in
      if Mvb.crc32 payload = !crc then Some payload else None
    end
  | exception Sys_error _ -> None

let record_miss t =
  t.misses_total <- t.misses_total + 1;
  t.session_misses <- t.session_misses + 1;
  incr (snd (Domain.DLS.get domain_counts));
  Obs.incr (Lazy.force c_misses);
  save_index t

let find_unlocked t ~key =
  Obs.span "cache.find" @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | None ->
    record_miss t;
    None
  | Some entry -> (
      match read_object t key with
      | Some payload ->
        entry.last_used_s <- now_s ();
        entry.hits <- entry.hits + 1;
        t.hits_total <- t.hits_total + 1;
        t.session_hits <- t.session_hits + 1;
        incr (fst (Domain.DLS.get domain_counts));
        Obs.incr (Lazy.force c_hits);
        Obs.add (Lazy.force c_bytes_read) (String.length payload);
        save_index t;
        Some payload
      | None ->
        (* corrupt or vanished object: drop it so the caller's
           recomputation repairs the cache *)
        drop_entry t entry;
        record_miss t;
        None)

let find t ~key = locked t (fun () -> find_unlocked t ~key)

let store_unlocked t ~key ~op payload =
  Obs.span "cache.store" @@ fun () ->
  let envelope = Buffer.create (String.length payload + 8) in
  Buffer.add_string envelope object_magic;
  for shift = 0 to 3 do
    Buffer.add_char envelope
      (Char.chr ((Mvb.crc32 payload lsr (8 * shift)) land 0xff))
  done;
  Buffer.add_string envelope payload;
  write_atomic (object_path t key) (Buffer.contents envelope);
  Obs.add (Lazy.force c_bytes_written) (String.length payload);
  let now = now_s () in
  Hashtbl.replace t.table key
    {
      key;
      op;
      bytes = String.length payload;
      created_s = now;
      last_used_s = now;
      hits = 0;
    };
  (match t.max_bytes with
   | Some cap -> ignore (evict_to_cap ~keep:key t cap)
   | None -> ());
  save_index t

let store t ~key ~op payload =
  locked t (fun () -> store_unlocked t ~key ~op payload)

(* ------------------------------------------------------------------ *)
(* LTS artifacts                                                       *)

let find_lts t ~op ?params source =
  locked t @@ fun () ->
  let k = key ~op ?params source in
  match find_unlocked t ~key:k with
  | None -> None
  | Some payload -> (
      match Mvb.of_string payload with
      | lts -> Some lts
      | exception Mvb.Corrupt _ ->
        (* stored bytes pass the envelope CRC but do not decode: poison;
           forget it and fall back to recomputation *)
        (match Hashtbl.find_opt t.table k with
         | Some entry -> drop_entry t entry
         | None -> ());
        record_miss t;
        None)

let store_lts t ~op ?params source lts =
  store t ~key:(key ~op ?params source) ~op (Mvb.to_string lts)

let memoize_lts t ~op ?params source compute =
  match find_lts t ~op ?params source with
  | Some lts -> lts
  | None ->
    let lts = compute () in
    store_lts t ~op ?params source lts;
    lts

(* ------------------------------------------------------------------ *)
(* Stats and maintenance                                               *)

type stats = {
  entries : int;
  bytes : int;
  capacity : int option;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  locked t @@ fun () ->
  {
    entries = Hashtbl.length t.table;
    bytes = total_bytes t;
    capacity = t.max_bytes;
    hits = t.hits_total;
    misses = t.misses_total;
    evictions = t.evictions_total;
  }

let stats_json t =
  let s = stats t in
  Json.Obj
    [
      ("schema", Json.String stats_schema);
      ("entries", Json.Int s.entries);
      ("bytes", Json.Int s.bytes);
      ("max_bytes",
       match s.capacity with Some n -> Json.Int n | None -> Json.Null);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
    ]

let session t = locked t (fun () -> (t.session_hits, t.session_misses))

let remove_orphans t =
  Array.iter
    (fun name ->
       let known = Hashtbl.mem t.table name in
       (* temp files from a crashed writer are orphans too *)
       if not known then
         try Sys.remove (object_path t name) with Sys_error _ -> ())
    (Sys.readdir t.objects_dir)

(* A writer that died between [open_out] and [rename] leaves a
   "<name>.tmp.<pid>" file behind; [write_atomic] never reuses it (the
   pid differs), so they accumulate until someone sweeps. Live objects
   never contain a '.', so matching on the ".tmp." infix is safe. *)
let is_tmp name =
  let rec find i =
    i + 5 <= String.length name
    && (String.sub name i 5 = ".tmp." || find (i + 1))
  in
  find 0

let sweep_tmp_unlocked t =
  let swept = ref 0 in
  let sweep_dir dir =
    match Sys.readdir dir with
    | names ->
      Array.iter
        (fun name ->
           if is_tmp name then begin
             (try
                Sys.remove (Filename.concat dir name);
                incr swept
              with Sys_error _ -> ())
           end)
        names
    | exception Sys_error _ -> ()
  in
  sweep_dir t.dir;
  sweep_dir t.objects_dir;
  !swept

let sweep_tmp t = locked t (fun () -> sweep_tmp_unlocked t)

let gc ?max_bytes t =
  locked t @@ fun () ->
  ignore (sweep_tmp_unlocked t);
  remove_orphans t;
  let evicted =
    match (max_bytes, t.max_bytes) with
    | Some cap, _ | None, Some cap -> evict_to_cap t cap
    | None, None -> 0
  in
  save_index t;
  evicted

let clear t =
  locked t @@ fun () ->
  let n = Hashtbl.length t.table in
  Hashtbl.iter (fun _ e -> try Sys.remove (object_path t e.key) with Sys_error _ -> ()) t.table;
  Hashtbl.reset t.table;
  remove_orphans t;
  save_index t;
  n
