module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt
let magic = "MVB\x01"
let format_version = 1

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE), table-driven                                         *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Varints (unsigned LEB128)                                           *)

let add_varint buffer n =
  if n < 0 then invalid_arg "Mvb: negative varint";
  let rec go n =
    if n < 0x80 then Buffer.add_char buffer (Char.chr n)
    else begin
      Buffer.add_char buffer (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let add_u32le buffer n =
  for shift = 0 to 3 do
    Buffer.add_char buffer (Char.chr ((n lsr (8 * shift)) land 0xff))
  done

(* ------------------------------------------------------------------ *)
(* Byte sources: a common cursor over strings and channels, with
   truncation reported as Corrupt                                      *)

type source = { read_char : unit -> char; read_string : int -> string }

let source_of_string s =
  let pos = ref 0 in
  let read_char () =
    if !pos >= String.length s then corrupt "truncated input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let read_string n =
    if !pos + n > String.length s then corrupt "truncated input";
    let sub = String.sub s !pos n in
    pos := !pos + n;
    sub
  in
  { read_char; read_string }

let source_of_channel ic =
  let read_char () =
    try input_char ic with End_of_file -> corrupt "truncated input"
  in
  let read_string n =
    try really_input_string ic n
    with End_of_file -> corrupt "truncated input"
  in
  { read_char; read_string }

let read_varint source =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflow";
    let byte = Char.code (source.read_char ()) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_u32le source =
  let b0 = Char.code (source.read_char ()) in
  let b1 = Char.code (source.read_char ()) in
  let b2 = Char.code (source.read_char ()) in
  let b3 = Char.code (source.read_char ()) in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

(* ------------------------------------------------------------------ *)
(* Writer: emit one fully-buffered section at a time                   *)

let max_section_bytes = 1 lsl 30

let emit_section emit tag payload =
  let head = Buffer.create 16 in
  Buffer.add_char head tag;
  add_varint head (String.length payload);
  emit (Buffer.contents head);
  emit payload;
  let trailer = Buffer.create 4 in
  add_u32le trailer (crc32 payload);
  emit (Buffer.contents trailer)

let write_sections emit lts =
  emit magic;
  emit (String.make 1 (Char.chr format_version));
  let labels = Lts.labels lts in
  let nb_labels = Label.count labels in
  let meta = Buffer.create 32 in
  add_varint meta (Lts.nb_states lts);
  add_varint meta (Lts.initial lts);
  add_varint meta nb_labels;
  add_varint meta (Lts.nb_transitions lts);
  emit_section emit 'M' (Buffer.contents meta);
  let table = Buffer.create (16 * nb_labels) in
  for l = 0 to nb_labels - 1 do
    let name = Label.name labels l in
    add_varint table (String.length name);
    Buffer.add_string table name
  done;
  emit_section emit 'L' (Buffer.contents table);
  let transitions = Buffer.create (4 * Lts.nb_transitions lts) in
  for s = 0 to Lts.nb_states lts - 1 do
    add_varint transitions (Lts.out_degree lts s);
    Lts.iter_out lts s (fun l d ->
        add_varint transitions l;
        add_varint transitions d)
  done;
  emit_section emit 'T' (Buffer.contents transitions);
  emit "E"

let to_string lts =
  let buffer = Buffer.create 4096 in
  write_sections (Buffer.add_string buffer) lts;
  Buffer.contents buffer

let write_channel oc lts = write_sections (output_string oc) lts

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

let read_section source expected_tag =
  let tag = source.read_char () in
  if tag <> expected_tag then
    corrupt "expected section '%c', found '%c'" expected_tag tag;
  let length = read_varint source in
  if length > max_section_bytes then
    corrupt "section '%c' is absurdly large (%d bytes)" expected_tag length;
  let payload = source.read_string length in
  let stored_crc = read_u32le source in
  if crc32 payload <> stored_crc then
    corrupt "CRC mismatch in section '%c'" expected_tag;
  payload

let read_source source =
  let header = source.read_string (String.length magic) in
  if header <> magic then corrupt "bad magic (not a .mvb file)";
  let version = Char.code (source.read_char ()) in
  if version <> format_version then
    corrupt "unsupported format version %d (this reader handles %d)" version
      format_version;
  let meta = source_of_string (read_section source 'M') in
  let nb_states = read_varint meta in
  let initial = read_varint meta in
  let nb_labels = read_varint meta in
  let nb_transitions = read_varint meta in
  if nb_states < 1 then corrupt "no states";
  if initial >= nb_states then corrupt "initial state out of range";
  if nb_labels < 1 then corrupt "no labels";
  let table = source_of_string (read_section source 'L') in
  let labels = Label.create () in
  for l = 0 to nb_labels - 1 do
    let name = table.read_string (read_varint table) in
    if l = 0 then begin
      if name <> Label.tau_name then
        corrupt "label 0 is %S, expected the internal action" name
    end
    else if Label.intern labels name <> l then
      corrupt "duplicate label %S" name
  done;
  let transitions = source_of_string (read_section source 'T') in
  let triples = Array.make nb_transitions (0, 0, 0) in
  let i = ref 0 in
  for s = 0 to nb_states - 1 do
    let degree = read_varint transitions in
    for _ = 1 to degree do
      if !i >= nb_transitions then corrupt "more transitions than declared";
      let l = read_varint transitions in
      let d = read_varint transitions in
      if l >= nb_labels then corrupt "label index %d out of range" l;
      if d >= nb_states then corrupt "destination state %d out of range" d;
      triples.(!i) <- (s, l, d);
      incr i
    done
  done;
  if !i <> nb_transitions then
    corrupt "fewer transitions than declared (%d of %d)" !i nb_transitions;
  let tag = source.read_char () in
  if tag <> 'E' then corrupt "missing end marker";
  Lts.make_array ~nb_states ~initial ~labels triples

let of_string s =
  let source = source_of_string s in
  let lts = read_source source in
  (match source.read_char () with
   | _ -> corrupt "trailing garbage after end marker"
   | exception Corrupt _ -> ());
  lts

let read_channel ic = read_source (source_of_channel ic)

let write_file path lts =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc lts)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lts = read_channel ic in
      (match input_char ic with
       | _ -> corrupt "trailing garbage after end marker"
       | exception End_of_file -> ());
      lts)
