module Lts = Mv_lts.Lts
module Label = Mv_lts.Label

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt
let magic = "MVB\x01"
let format_version = 1

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE), table-driven                                         *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Incremental form: [crc_init |> crc_update s1 |> ... |> crc_finish]
   equals [crc32 (s1 ^ ...)], which is what lets the streaming writer
   checksum the transition section while it is still being spilled. *)
let crc_init = 0xFFFFFFFF

let crc_update c s =
  let table = Lazy.force crc_table in
  let c = ref c in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c

let crc_finish c = c lxor 0xFFFFFFFF
let crc32 s = crc_finish (crc_update crc_init s)

(* ------------------------------------------------------------------ *)
(* Varints (unsigned LEB128)                                           *)

let add_varint buffer n =
  if n < 0 then invalid_arg "Mvb: negative varint";
  let rec go n =
    if n < 0x80 then Buffer.add_char buffer (Char.chr n)
    else begin
      Buffer.add_char buffer (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let add_u32le buffer n =
  for shift = 0 to 3 do
    Buffer.add_char buffer (Char.chr ((n lsr (8 * shift)) land 0xff))
  done

(* ------------------------------------------------------------------ *)
(* Byte sources: a common cursor over strings and channels, with
   truncation reported as Corrupt                                      *)

type source = { read_char : unit -> char; read_string : int -> string }

let source_of_string s =
  let pos = ref 0 in
  let read_char () =
    if !pos >= String.length s then corrupt "truncated input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let read_string n =
    if !pos + n > String.length s then corrupt "truncated input";
    let sub = String.sub s !pos n in
    pos := !pos + n;
    sub
  in
  { read_char; read_string }

let source_of_channel ic =
  let read_char () =
    try input_char ic with End_of_file -> corrupt "truncated input"
  in
  let read_string n =
    try really_input_string ic n
    with End_of_file -> corrupt "truncated input"
  in
  { read_char; read_string }

let read_varint source =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflow";
    let byte = Char.code (source.read_char ()) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_u32le source =
  let b0 = Char.code (source.read_char ()) in
  let b1 = Char.code (source.read_char ()) in
  let b2 = Char.code (source.read_char ()) in
  let b3 = Char.code (source.read_char ()) in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

(* ------------------------------------------------------------------ *)
(* Writer: emit one fully-buffered section at a time                   *)

let max_section_bytes = 1 lsl 30

let emit_section emit tag payload =
  let head = Buffer.create 16 in
  Buffer.add_char head tag;
  add_varint head (String.length payload);
  emit (Buffer.contents head);
  emit payload;
  let trailer = Buffer.create 4 in
  add_u32le trailer (crc32 payload);
  emit (Buffer.contents trailer)

let write_sections emit lts =
  emit magic;
  emit (String.make 1 (Char.chr format_version));
  let labels = Lts.labels lts in
  let nb_labels = Label.count labels in
  let meta = Buffer.create 32 in
  add_varint meta (Lts.nb_states lts);
  add_varint meta (Lts.initial lts);
  add_varint meta nb_labels;
  add_varint meta (Lts.nb_transitions lts);
  emit_section emit 'M' (Buffer.contents meta);
  let table = Buffer.create (16 * nb_labels) in
  for l = 0 to nb_labels - 1 do
    let name = Label.name labels l in
    add_varint table (String.length name);
    Buffer.add_string table name
  done;
  emit_section emit 'L' (Buffer.contents table);
  let transitions = Buffer.create (4 * Lts.nb_transitions lts) in
  for s = 0 to Lts.nb_states lts - 1 do
    add_varint transitions (Lts.out_degree lts s);
    Lts.iter_out lts s (fun l d ->
        add_varint transitions l;
        add_varint transitions d)
  done;
  emit_section emit 'T' (Buffer.contents transitions);
  emit "E"

let to_string lts =
  let buffer = Buffer.create 4096 in
  write_sections (Buffer.add_string buffer) lts;
  Buffer.contents buffer

let write_channel oc lts = write_sections (output_string oc) lts

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

(* Shared section parsers (used by the in-memory reader, the mmap
   segment reader and the header-only [stats]) *)

let parse_meta meta =
  let nb_states = read_varint meta in
  let initial = read_varint meta in
  let nb_labels = read_varint meta in
  let nb_transitions = read_varint meta in
  if nb_states < 1 then corrupt "no states";
  if initial >= nb_states then corrupt "initial state out of range";
  if nb_labels < 1 then corrupt "no labels";
  (nb_states, initial, nb_labels, nb_transitions)

let parse_label_table ~nb_labels payload =
  let table = source_of_string payload in
  let labels = Label.create () in
  for l = 0 to nb_labels - 1 do
    let name = table.read_string (read_varint table) in
    if l = 0 then begin
      if name <> Label.tau_name then
        corrupt "label 0 is %S, expected the internal action" name
    end
    else if Label.intern labels name <> l then corrupt "duplicate label %S" name
  done;
  labels

let read_magic source =
  let header = source.read_string (String.length magic) in
  if header <> magic then corrupt "bad magic (not a .mvb file)";
  let version = Char.code (source.read_char ()) in
  if version <> format_version then
    corrupt "unsupported format version %d (this reader handles %d)" version
      format_version

let read_section source expected_tag =
  let tag = source.read_char () in
  if tag <> expected_tag then
    corrupt "expected section '%c', found '%c'" expected_tag tag;
  let length = read_varint source in
  if length > max_section_bytes then
    corrupt "section '%c' is absurdly large (%d bytes)" expected_tag length;
  let payload = source.read_string length in
  let stored_crc = read_u32le source in
  if crc32 payload <> stored_crc then
    corrupt "CRC mismatch in section '%c'" expected_tag;
  payload

let read_source source =
  read_magic source;
  let nb_states, initial, nb_labels, nb_transitions =
    parse_meta (source_of_string (read_section source 'M'))
  in
  let labels = parse_label_table ~nb_labels (read_section source 'L') in
  let transitions = source_of_string (read_section source 'T') in
  let triples = Array.make nb_transitions (0, 0, 0) in
  let i = ref 0 in
  for s = 0 to nb_states - 1 do
    let degree = read_varint transitions in
    for _ = 1 to degree do
      if !i >= nb_transitions then corrupt "more transitions than declared";
      let l = read_varint transitions in
      let d = read_varint transitions in
      if l >= nb_labels then corrupt "label index %d out of range" l;
      if d >= nb_states then corrupt "destination state %d out of range" d;
      triples.(!i) <- (s, l, d);
      incr i
    done
  done;
  if !i <> nb_transitions then
    corrupt "fewer transitions than declared (%d of %d)" !i nb_transitions;
  let tag = source.read_char () in
  if tag <> 'E' then corrupt "missing end marker";
  Lts.make_array ~nb_states ~initial ~labels triples

let of_string s =
  let source = source_of_string s in
  let lts = read_source source in
  (match source.read_char () with
   | _ -> corrupt "trailing garbage after end marker"
   | exception Corrupt _ -> ());
  lts

let read_channel ic = read_source (source_of_channel ic)

let write_file path lts =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc lts)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lts = read_channel ic in
      (match input_char ic with
       | _ -> corrupt "trailing garbage after end marker"
       | exception End_of_file -> ());
      lts)

(* ------------------------------------------------------------------ *)
(* Varints, exposed for boundary tests                                 *)

module Varint = struct
  let to_string n =
    let buffer = Buffer.create 10 in
    add_varint buffer n;
    Buffer.contents buffer

  let of_string s =
    let source = source_of_string s in
    let n = read_varint source in
    (match source.read_char () with
     | _ -> corrupt "trailing garbage after varint"
     | exception Corrupt _ -> ());
    n
end

(* ------------------------------------------------------------------ *)
(* Streaming writer: one state at a time, transitions spilled to a
   scratch file, final sections assembled at [finish]                  *)

module Stream = struct
  type writer = {
    w_path : string;
    w_scratch : string;
    w_labels : Label.table;
    mutable w_oc : out_channel option; (* scratch T payload; None = done *)
    mutable w_crc : int; (* running CRC of the T payload *)
    mutable w_states : int;
    mutable w_transitions : int;
    mutable w_bytes : int; (* T payload bytes written so far *)
    mutable w_max_dst : int;
    mutable w_max_label : int;
    w_buf : Buffer.t;
  }

  let create ?labels path =
    let labels = match labels with Some t -> t | None -> Label.create () in
    let scratch = path ^ ".ttmp" in
    let oc = open_out_bin scratch in
    {
      w_path = path;
      w_scratch = scratch;
      w_labels = labels;
      w_oc = Some oc;
      w_crc = crc_init;
      w_states = 0;
      w_transitions = 0;
      w_bytes = 0;
      w_max_dst = -1;
      w_max_label = 0;
      w_buf = Buffer.create 256;
    }

  let labels w = w.w_labels
  let nb_states w = w.w_states
  let nb_transitions w = w.w_transitions

  let oc w =
    match w.w_oc with
    | Some oc -> oc
    | None -> invalid_arg "Mvb.Stream: writer already finished"

  (* Canonicalize exactly like [Lts.make]: sort by (label, dst), drop
     duplicates. The stream writer is then byte-identical to the
     materialized writer by construction, whatever order the caller
     discovered the moves in. *)
  let canonical moves =
    let moves = Array.copy moves in
    Array.sort compare moves;
    let n = Array.length moves in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if !k = 0 || moves.(!k - 1) <> moves.(i) then begin
        moves.(!k) <- moves.(i);
        incr k
      end
    done;
    Array.sub moves 0 !k

  let add_state w moves =
    let oc = oc w in
    let moves = canonical moves in
    Buffer.clear w.w_buf;
    add_varint w.w_buf (Array.length moves);
    Array.iter
      (fun (l, d) ->
        if l < 0 || d < 0 then invalid_arg "Mvb.Stream.add_state: negative";
        if l > w.w_max_label then w.w_max_label <- l;
        if d > w.w_max_dst then w.w_max_dst <- d;
        add_varint w.w_buf l;
        add_varint w.w_buf d)
      moves;
    let chunk = Buffer.contents w.w_buf in
    output_string oc chunk;
    w.w_crc <- crc_update w.w_crc chunk;
    w.w_bytes <- w.w_bytes + String.length chunk;
    w.w_states <- w.w_states + 1;
    w.w_transitions <- w.w_transitions + Array.length moves

  let abort w =
    match w.w_oc with
    | None -> ()
    | Some oc ->
      w.w_oc <- None;
      close_out_noerr oc;
      (try Sys.remove w.w_scratch with Sys_error _ -> ())

  let finish w ~initial =
    let scratch_oc = oc w in
    w.w_oc <- None;
    close_out scratch_oc;
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          (try Sys.remove w.w_scratch with Sys_error _ -> ());
          invalid_arg ("Mvb.Stream.finish: " ^ msg))
        fmt
    in
    let nb_labels = Label.count w.w_labels in
    if w.w_states < 1 then fail "no states";
    if initial < 0 || initial >= w.w_states then fail "initial out of range";
    if w.w_max_dst >= w.w_states then
      fail "destination %d out of range (%d states)" w.w_max_dst w.w_states;
    if w.w_max_label >= nb_labels then
      fail "label %d out of range (%d labels)" w.w_max_label nb_labels;
    let tmp = w.w_path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_string oc (String.make 1 (Char.chr format_version));
       let emit = output_string oc in
       let meta = Buffer.create 32 in
       add_varint meta w.w_states;
       add_varint meta initial;
       add_varint meta nb_labels;
       add_varint meta w.w_transitions;
       emit_section emit 'M' (Buffer.contents meta);
       let table = Buffer.create (16 * nb_labels) in
       for l = 0 to nb_labels - 1 do
         let name = Label.name w.w_labels l in
         add_varint table (String.length name);
         Buffer.add_string table name
       done;
       emit_section emit 'L' (Buffer.contents table);
       let head = Buffer.create 16 in
       Buffer.add_char head 'T';
       add_varint head w.w_bytes;
       emit (Buffer.contents head);
       let ic = open_in_bin w.w_scratch in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let chunk = Bytes.create 65536 in
           let rec copy remaining =
             if remaining > 0 then begin
               let n = input ic chunk 0 (min remaining (Bytes.length chunk)) in
               if n = 0 then fail "scratch file truncated";
               output oc (Bytes.sub chunk 0 n) 0 n;
               copy (remaining - n)
             end
           in
           copy w.w_bytes);
       let trailer = Buffer.create 4 in
       add_u32le trailer (crc_finish w.w_crc);
       emit (Buffer.contents trailer);
       emit "E";
       close_out oc
     with exn ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       (try Sys.remove w.w_scratch with Sys_error _ -> ());
       raise exn);
    Sys.remove w.w_scratch;
    Sys.rename tmp w.w_path
end

(* ------------------------------------------------------------------ *)
(* Random-access segment reader over an mmap'd file                    *)

module Segment = struct
  type map =
    (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  (* States per directory entry: the decode cost of a random [iter_out]
     is bounded by one directory stride. *)
  let stride = 1024

  type t = {
    map : map;
    nb_states : int;
    initial : int;
    nb_transitions : int;
    labels : Label.table;
    t_off : int; (* absolute offset of the T payload in [map] *)
    dir : int array; (* dir.(k) = offset of state [k * stride] *)
  }

  let nb_states t = t.nb_states
  let initial t = t.initial
  let nb_transitions t = t.nb_transitions
  let labels t = t.labels
  let file_bytes t = Bigarray.Array1.dim t.map

  let source_of_map map =
    let pos = ref 0 in
    let len = Bigarray.Array1.dim map in
    let read_char () =
      if !pos >= len then corrupt "truncated input";
      let c = Bigarray.Array1.unsafe_get map !pos in
      incr pos;
      c
    in
    let read_string n =
      if n < 0 || !pos + n > len then corrupt "truncated input";
      let b = Bytes.create n in
      for i = 0 to n - 1 do
        Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get map (!pos + i))
      done;
      pos := !pos + n;
      Bytes.unsafe_to_string b
    in
    (pos, { read_char; read_string })

  (* Raw varint decode at [!pos] in the payload window [lo, hi). *)
  let read_varint_at map ~hi pos =
    let rec go shift acc =
      if shift > 62 then corrupt "varint overflow";
      if !pos >= hi then corrupt "truncated transition section";
      let byte = Char.code (Bigarray.Array1.unsafe_get map !pos) in
      incr pos;
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let openfile path =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    let map =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          if size = 0 then corrupt "empty file";
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]))
    in
    Mv_obs.Obs.add (Mv_obs.Obs.counter "mvb.mmap_bytes")
      (Bigarray.Array1.dim map);
    let pos, source = source_of_map map in
    read_magic source;
    let nb_states, initial, nb_labels, nb_transitions =
      parse_meta (source_of_string (read_section source 'M'))
    in
    let labels = parse_label_table ~nb_labels (read_section source 'L') in
    (* T section: checksum chunk-wise, then decode once to validate and
       build the segment directory — never materializing the payload. *)
    let tag = source.read_char () in
    if tag <> 'T' then corrupt "expected section 'T', found '%c'" tag;
    let t_len = read_varint source in
    if t_len > max_section_bytes then
      corrupt "section 'T' is absurdly large (%d bytes)" t_len;
    let t_off = !pos in
    let crc = ref crc_init in
    let remaining = ref t_len in
    while !remaining > 0 do
      let n = min !remaining 65536 in
      crc := crc_update !crc (source.read_string n);
      remaining := !remaining - n
    done;
    let stored_crc = read_u32le source in
    if crc_finish !crc <> stored_crc then corrupt "CRC mismatch in section 'T'";
    let tag = source.read_char () in
    if tag <> 'E' then corrupt "missing end marker";
    if !pos <> Bigarray.Array1.dim map then
      corrupt "trailing garbage after end marker";
    let hi = t_off + t_len in
    let dir = Array.make (((nb_states - 1) / stride) + 1) 0 in
    let cursor = ref t_off in
    let seen = ref 0 in
    for s = 0 to nb_states - 1 do
      if s mod stride = 0 then dir.(s / stride) <- !cursor;
      let degree = read_varint_at map ~hi cursor in
      for _ = 1 to degree do
        if !seen >= nb_transitions then corrupt "more transitions than declared";
        incr seen;
        let l = read_varint_at map ~hi cursor in
        let d = read_varint_at map ~hi cursor in
        if l >= nb_labels then corrupt "label index %d out of range" l;
        if d >= nb_states then corrupt "destination state %d out of range" d
      done
    done;
    if !seen <> nb_transitions then
      corrupt "fewer transitions than declared (%d of %d)" !seen nb_transitions;
    if !cursor <> hi then corrupt "transition section has trailing bytes";
    { map; nb_states; initial; nb_transitions; labels; t_off; dir }

  let hi t = Bigarray.Array1.dim t.map (* validated stricter at open *)

  let iter_out t s f =
    if s < 0 || s >= t.nb_states then invalid_arg "Mvb.Segment.iter_out";
    let hi = hi t in
    let cursor = ref t.dir.(s / stride) in
    for _ = 1 to s mod stride do
      let degree = read_varint_at t.map ~hi cursor in
      for _ = 1 to 2 * degree do
        ignore (read_varint_at t.map ~hi cursor)
      done
    done;
    let degree = read_varint_at t.map ~hi cursor in
    for _ = 1 to degree do
      let l = read_varint_at t.map ~hi cursor in
      let d = read_varint_at t.map ~hi cursor in
      f l d
    done

  let out_degree t s =
    if s < 0 || s >= t.nb_states then invalid_arg "Mvb.Segment.out_degree";
    let hi = hi t in
    let cursor = ref t.dir.(s / stride) in
    for _ = 1 to s mod stride do
      let degree = read_varint_at t.map ~hi cursor in
      for _ = 1 to 2 * degree do
        ignore (read_varint_at t.map ~hi cursor)
      done
    done;
    read_varint_at t.map ~hi cursor

  let iter_all t f =
    let hi = hi t in
    let cursor = ref t.t_off in
    for s = 0 to t.nb_states - 1 do
      let degree = read_varint_at t.map ~hi cursor in
      for _ = 1 to degree do
        let l = read_varint_at t.map ~hi cursor in
        let d = read_varint_at t.map ~hi cursor in
        f s l d
      done
    done
end

(* ------------------------------------------------------------------ *)
(* Header-only statistics                                              *)

type stats = {
  s_nb_states : int;
  s_initial : int;
  s_nb_labels : int;
  s_nb_transitions : int;
  s_label_bytes : int;
  s_transition_bytes : int;
  s_file_bytes : int;
}

let stats path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let source = source_of_channel ic in
      read_magic source;
      let nb_states, initial, nb_labels, nb_transitions =
        parse_meta (source_of_string (read_section source 'M'))
      in
      let tag = source.read_char () in
      if tag <> 'L' then corrupt "expected section 'L', found '%c'" tag;
      let label_bytes = read_varint source in
      if label_bytes > max_section_bytes then
        corrupt "section 'L' is absurdly large (%d bytes)" label_bytes;
      seek_in ic (pos_in ic + label_bytes + 4);
      let tag = source.read_char () in
      if tag <> 'T' then corrupt "expected section 'T', found '%c'" tag;
      let transition_bytes = read_varint source in
      if transition_bytes > max_section_bytes then
        corrupt "section 'T' is absurdly large (%d bytes)" transition_bytes;
      seek_in ic (pos_in ic + transition_bytes + 4);
      let tag = source.read_char () in
      if tag <> 'E' then corrupt "missing end marker";
      (match input_char ic with
       | _ -> corrupt "trailing garbage after end marker"
       | exception End_of_file -> ());
      {
        s_nb_states = nb_states;
        s_initial = initial;
        s_nb_labels = nb_labels;
        s_nb_transitions = nb_transitions;
        s_label_bytes = label_bytes;
        s_transition_bytes = transition_bytes;
        s_file_bytes = in_channel_length ic;
      })
