(** The [.mvb] compact binary LTS format (the repository's analogue of
    CADP's BCG).

    Motivation: the flow alternates generation, minimization and
    lumping over large intermediate LTSs; the textual [.aut] exchange
    format spends ~20 bytes and a printf/parse round per transition.
    [.mvb] stores the same LTS in a few bytes per transition and reads
    back without any text scanning, which is what makes the artifact
    cache ({!Cache}) cheap enough to consult on every step.

    Layout (all integers are unsigned LEB128 varints unless noted):

    {v
    "MVB" 0x01            magic (4 bytes)
    u8  version           format version (1)
    3 sections, each:
      u8     tag          'M' meta | 'L' labels | 'T' transitions
      varint length       payload byte count
      bytes  payload
      u32le  crc32        CRC-32 (IEEE) of the payload bytes
    u8 'E'                end marker; nothing may follow
    v}

    - meta payload: [nb_states], [initial], [nb_labels],
      [nb_transitions];
    - labels payload: [nb_labels] interned label strings in index
      order, each as [varint length + bytes] — entry 0 is always the
      internal action ["i"];
    - transitions payload: for every state in order, [out_degree]
      followed by [label dst] varint pairs in the LTS's canonical
      (label, dst) sort order.

    The encoding is lossless with respect to {!Mv_lts.Aut}: for every
    LTS, [aut -> mvb -> aut] is the identity on the serialized text
    (checked by a property test in test/test_store.ml). Reading and
    writing are streaming, one section at a time; a whole-file buffer
    is never required beyond the largest section.

    Any malformed input — bad magic, unknown version or section tag,
    truncation, CRC mismatch, out-of-range state or label indices —
    raises {!Corrupt}. *)

exception Corrupt of string

(** Current format version, also folded into {!Cache.key} so that a
    format change invalidates cached artifacts. *)
val format_version : int

(** Serialize / deserialize in-memory. [of_string] raises {!Corrupt}
    on malformed input. *)
val to_string : Mv_lts.Lts.t -> string

val of_string : string -> Mv_lts.Lts.t

(** Streaming channel interface (section-at-a-time). [read_channel]
    raises {!Corrupt} on malformed input. *)
val write_channel : out_channel -> Mv_lts.Lts.t -> unit

val read_channel : in_channel -> Mv_lts.Lts.t

val write_file : string -> Mv_lts.Lts.t -> unit
val read_file : string -> Mv_lts.Lts.t

(** CRC-32 (IEEE 802.3, the zlib polynomial) of a string — exposed for
    the cache's object envelope and for tests. *)
val crc32 : string -> int
