(** The [.mvb] compact binary LTS format (the repository's analogue of
    CADP's BCG).

    Motivation: the flow alternates generation, minimization and
    lumping over large intermediate LTSs; the textual [.aut] exchange
    format spends ~20 bytes and a printf/parse round per transition.
    [.mvb] stores the same LTS in a few bytes per transition and reads
    back without any text scanning, which is what makes the artifact
    cache ({!Cache}) cheap enough to consult on every step.

    Layout (all integers are unsigned LEB128 varints unless noted):

    {v
    "MVB" 0x01            magic (4 bytes)
    u8  version           format version (1)
    3 sections, each:
      u8     tag          'M' meta | 'L' labels | 'T' transitions
      varint length       payload byte count
      bytes  payload
      u32le  crc32        CRC-32 (IEEE) of the payload bytes
    u8 'E'                end marker; nothing may follow
    v}

    - meta payload: [nb_states], [initial], [nb_labels],
      [nb_transitions];
    - labels payload: [nb_labels] interned label strings in index
      order, each as [varint length + bytes] — entry 0 is always the
      internal action ["i"];
    - transitions payload: for every state in order, [out_degree]
      followed by [label dst] varint pairs in the LTS's canonical
      (label, dst) sort order.

    The encoding is lossless with respect to {!Mv_lts.Aut}: for every
    LTS, [aut -> mvb -> aut] is the identity on the serialized text
    (checked by a property test in test/test_store.ml). Reading and
    writing are streaming, one section at a time; a whole-file buffer
    is never required beyond the largest section.

    Any malformed input — bad magic, unknown version or section tag,
    truncation, CRC mismatch, out-of-range state or label indices —
    raises {!Corrupt}. *)

exception Corrupt of string

(** Current format version, also folded into {!Cache.key} so that a
    format change invalidates cached artifacts. *)
val format_version : int

(** Serialize / deserialize in-memory. [of_string] raises {!Corrupt}
    on malformed input. *)
val to_string : Mv_lts.Lts.t -> string

val of_string : string -> Mv_lts.Lts.t

(** Streaming channel interface (section-at-a-time). [read_channel]
    raises {!Corrupt} on malformed input. *)
val write_channel : out_channel -> Mv_lts.Lts.t -> unit

val read_channel : in_channel -> Mv_lts.Lts.t

val write_file : string -> Mv_lts.Lts.t -> unit
val read_file : string -> Mv_lts.Lts.t

(** CRC-32 (IEEE 802.3, the zlib polynomial) of a string — exposed for
    the cache's object envelope and for tests. *)
val crc32 : string -> int

(** {1 Varints}

    The unsigned LEB128 codec used throughout the format, exposed for
    boundary testing (63-bit [max_int] round-trips in 9 bytes; values
    that would overflow 62 bits of shift raise {!Corrupt}). *)
module Varint : sig
  (** [to_string n] encodes [n >= 0]; raises [Invalid_argument] on a
      negative argument. *)
  val to_string : int -> string

  (** [of_string s] decodes exactly one varint occupying all of [s];
      trailing bytes or overflow raise {!Corrupt}. *)
  val of_string : string -> int
end

(** {1 Streaming writer}

    Writes a [.mvb] file one state at a time without ever
    materializing an {!Mv_lts.Lts.t} — the out-of-core exploration
    path. Transitions are spilled to a scratch file ([path ^ ".ttmp"])
    with an incremental CRC; {!Stream.finish} assembles the header
    sections from the final counts and splices the scratch in, so the
    result is byte-identical to [write_file] of the equivalent
    materialized LTS ({!Stream.add_state} canonicalizes each state's
    moves exactly like [Lts.make]: sorted by (label, dst), duplicates
    dropped). *)
module Stream : sig
  type writer

  (** [create ?labels path] opens a streaming writer targeting [path].
      [labels] is the label table transitions refer to (interned
      incrementally during exploration is fine — it is only read at
      {!finish}); a fresh table is created when omitted. *)
  val create : ?labels:Mv_lts.Label.table -> string -> writer

  val labels : writer -> Mv_lts.Label.table

  (** States and transitions appended so far. *)
  val nb_states : writer -> int

  val nb_transitions : writer -> int

  (** [add_state w moves] appends the next state (ids are assigned
      densely in call order) with outgoing [(label, dst)] moves.
      Forward references to not-yet-added states are allowed; ranges
      are validated at {!finish}. *)
  val add_state : writer -> (int * int) array -> unit

  (** Validate counts and ranges, write the final file atomically
      (tmp + rename) and remove the scratch. The writer is unusable
      afterwards. Raises [Invalid_argument] on an empty LTS,
      out-of-range [initial], or dangling destination/label. *)
  val finish : writer -> initial:int -> unit

  (** Discard the scratch without producing a file. Idempotent; also
      safe after {!finish} (no-op). *)
  val abort : writer -> unit
end

(** {1 Random-access segment reader}

    A read-only view of a [.mvb] file through [Unix.map_file]: the
    transition section stays on disk (paged in on demand) and a sparse
    in-RAM directory (one offset per 1024 states) gives random access
    to any state's out-transitions without decoding the whole file.
    Opening validates everything once — magic, CRCs, counts, index
    ranges — so the accessors never raise {!Corrupt}. *)
module Segment : sig
  type t

  (** Map and validate. Raises {!Corrupt} on malformed input,
      [Unix.Unix_error] if the file cannot be opened or mapped. *)
  val openfile : string -> t

  val nb_states : t -> int
  val initial : t -> int
  val nb_transitions : t -> int
  val labels : t -> Mv_lts.Label.table
  val file_bytes : t -> int

  (** [iter_out t s f] applies [f label dst] to state [s]'s
      out-transitions in stored (canonical) order. Cost: decode of at
      most one directory stride plus the state's own moves. *)
  val iter_out : t -> int -> (int -> int -> unit) -> unit

  val out_degree : t -> int -> int

  (** [iter_all t f] applies [f src label dst] to every transition in
      source order — a single sequential sweep of the mapped section. *)
  val iter_all : t -> (int -> int -> int -> unit) -> unit
end

(** {1 Header-only statistics} *)

type stats = {
  s_nb_states : int;
  s_initial : int;
  s_nb_labels : int;
  s_nb_transitions : int;
  s_label_bytes : int; (** 'L' section payload bytes *)
  s_transition_bytes : int; (** 'T' section payload bytes *)
  s_file_bytes : int;
}

(** [stats path] reads the meta section and the section index only —
    the transition payload is seeked over, never decoded or
    checksummed — so it is O(header) regardless of file size. Raises
    {!Corrupt} on a malformed header or framing. *)
val stats : string -> stats
