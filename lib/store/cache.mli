(** Content-addressed artifact cache.

    CADP's SVL scripts are fast to iterate on because intermediate BCG
    files persist across runs; this module gives the Multival flow the
    same property. A cache is a directory holding opaque payloads (in
    practice {!Mvb}-encoded LTSs) keyed by a content hash of
    {e everything that determines the result}: the operation name, its
    parameters, the {!Mvb.format_version} and the full source artifact
    (model text or input-LTS bytes). Worker-pool size is deliberately
    {e not} part of the key — the parallel engines produce identical
    results at every [-j N].

    Properties:

    - {b atomic publication}: payloads are written to a temp file and
      [rename]d into place, so a crashed or concurrent writer never
      leaves a half-written object visible;
    - {b corruption detection}: each object carries a CRC-32 envelope;
      a truncated or bit-flipped object is treated as a miss, deleted,
      and transparently recomputed (the cache repairs itself);
    - {b LRU eviction}: when a byte cap is configured, least recently
      used entries are evicted on insert and on {!gc};
    - {b persistent index}: [index.json] (schema [mv-store-index-v1])
      records per-entry op, size and usage plus lifetime hit/miss
      totals; it is rebuilt by scanning the directory when missing or
      unreadable.

    Every lookup and store also bumps the process-wide {!Mv_obs}
    counters [cache.hits], [cache.misses], [cache.bytes_read],
    [cache.bytes_written] and [cache.evictions], and runs inside
    [cache.find] / [cache.store] spans, so [mval --metrics/--trace]
    show exactly what the cache saved. *)

type t

(** Open (creating if needed) a cache directory. [max_bytes] caps the
    total payload size; eviction is LRU. The cap is not persisted —
    each session passes its own. *)
val open_dir : ?max_bytes:int -> string -> t

val dir : t -> string
val max_bytes : t -> int option

(** [key ~op ?params source] — the key recipe: MD5 of [op], sorted
    [params] ([k=v] lines), {!Mvb.format_version} and [source],
    rendered as hex. [source] is the full content the operation
    consumes (model text, input-LTS bytes), which is what makes the
    cache content-addressed. *)
val key : op:string -> ?params:(string * string) list -> string -> string

(** {1 Raw payloads} *)

(** [find t ~key] returns the payload, bumping hit statistics and LRU
    recency; [None] (a recorded miss) when absent or when the object
    envelope fails its integrity check — the corrupt object is deleted
    so the next {!store} repairs it. *)
val find : t -> key:string -> string option

(** [store t ~key ~op payload] publishes atomically (write to a temp
    name, then rename) and evicts LRU entries if the cap is
    exceeded. *)
val store : t -> key:string -> op:string -> string -> unit

(** {1 LTS artifacts (the common case)} *)

(** [find_lts t ~op ?params source] / [store_lts t ~op ?params source
    lts] — {!find} / {!store} with the key derived via {!key} and the
    payload {!Mvb}-encoded. A cached object that decodes to a corrupt
    [.mvb] also counts as a miss and is deleted. *)
val find_lts :
  t -> op:string -> ?params:(string * string) list -> string ->
  Mv_lts.Lts.t option

val store_lts :
  t -> op:string -> ?params:(string * string) list -> string ->
  Mv_lts.Lts.t -> unit

(** [memoize_lts t ~op ?params source compute] — {!find_lts}, or
    [compute ()] followed by {!store_lts} on a miss. *)
val memoize_lts :
  t -> op:string -> ?params:(string * string) list -> string ->
  (unit -> Mv_lts.Lts.t) -> Mv_lts.Lts.t

(** {1 Statistics and maintenance} *)

type stats = {
  entries : int;
  bytes : int; (** total payload bytes on disk *)
  capacity : int option; (** this session's [max_bytes] *)
  hits : int; (** lifetime, persisted in the index *)
  misses : int;
  evictions : int;
}

val stats : t -> stats

(** Schema [mv-store-stats-v1]: [{"schema", "entries", "bytes",
    "max_bytes", "hits", "misses", "evictions"}]. *)
val stats_json : t -> Mv_obs.Json.t

(** Hits and misses recorded through this handle since {!open_dir} —
    what {!Mv_core.Svl} uses to tag each step's cache provenance. *)
val session : t -> int * int

(** Hits and misses recorded by the {e calling domain}, across every
    handle, since the domain started. A handle may be shared between
    domains (every public operation holds an internal mutex; the
    computation between a miss and its [store] does not), and [mvald]
    runs each request's flow on a single worker domain — so a delta of
    [domain_session] around a request is that request's exact cache
    provenance, unperturbed by concurrent requests. *)
val domain_session : unit -> int * int

(** [gc ?max_bytes t] evicts LRU entries until the total payload size
    is within the cap ([max_bytes] overrides the session cap) and
    deletes orphaned object files (including stale [.tmp] files, via
    {!sweep_tmp}); returns the number of entries evicted. Without any
    cap it only removes orphans. *)
val gc : ?max_bytes:int -> t -> int

(** Remove stale ["*.tmp.*"] files left behind by a writer that was
    killed between writing and renaming, in both the cache root (index
    temp files) and the objects directory. Live objects and the index
    itself are never touched. Returns how many files were removed.
    Runs automatically under {!gc}; [mvald] also calls it on startup
    so a crashed daemon cannot leak temp artifacts. *)
val sweep_tmp : t -> int

(** Remove every entry; returns how many were removed. *)
val clear : t -> int

(** {1 Schema names}

    The on-disk schema tags, exposed for [mval version] and the serve
    protocol's version report. *)

val index_schema_name : string (** ["mv-store-index-v1"] *)

val stats_schema_name : string (** ["mv-store-stats-v1"] *)
