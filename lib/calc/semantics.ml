type move_label =
  | Tau
  | Exit_move of Value.t list
  | Rate_move of float
  | Act of string * string list

exception Semantics_error of string
exception Unguarded_recursion of string

let fail msg = raise (Semantics_error msg)

let label_string = function
  | Tau -> "i"
  | Exit_move [] -> Ast.exit_label
  | Exit_move values ->
    Ast.exit_label ^ " !" ^ String.concat " !" (List.map Value.to_string values)
  | Rate_move r -> Printf.sprintf "rate %.12g" r
  | Act (gate, []) -> gate
  | Act (gate, values) -> gate ^ " !" ^ String.concat " !" values

(* Expand the offers of an action into ground alternatives: each
   alternative carries the printed values and the receive bindings. *)
let expand_offers enums offers =
  let expand_one (values, bindings) = function
    | Ast.Send e -> (
        let e = Expr.subst bindings e in
        match Expr.eval e with
        | v -> [ (Value.to_string v :: values, bindings) ]
        | exception Expr.Eval_error msg -> fail ("offer: " ^ msg))
    | Ast.Receive (x, ty) ->
      List.map
        (fun v -> (Value.to_string v :: values, (x, v) :: bindings))
        (Ty.domain enums ty)
  in
  let alternatives =
    List.fold_left
      (fun acc offer -> List.concat_map (fun alt -> expand_one alt offer) acc)
      [ ([], []) ]
      offers
  in
  List.map (fun (values, bindings) -> (List.rev values, bindings)) alternatives

let rec moves ?(fuel = 100) spec behavior =
  let recur = moves ~fuel spec in
  match behavior with
  | Ast.At (_, k) -> recur k
  | Ast.Stop -> []
  | Ast.Exit es ->
    let values =
      List.map
        (fun e ->
           match Expr.eval e with
           | v -> v
           | exception Expr.Eval_error msg -> fail ("exit value: " ^ msg))
        es
    in
    [ (Exit_move values, Ast.Stop) ]
  | Ast.Prefix (action, k) ->
    let alternatives = expand_offers spec.Ast.enums action.offers in
    if String.equal action.gate Ast.tau_gate then begin
      if action.offers <> [] then fail "the internal gate i takes no offers";
      [ (Tau, k) ]
    end
    else
      List.map
        (fun (values, bindings) ->
           ((Act (action.gate, values)), Ast.subst bindings k))
        alternatives
  | Ast.Rate (r, k) ->
    if r <= 0.0 then fail "rate must be positive";
    [ (Rate_move r, k) ]
  | Ast.Choice bs -> List.concat_map recur bs
  | Ast.Guard (e, k) -> (
      match Expr.eval_bool e with
      | true -> recur k
      | false -> []
      | exception Expr.Eval_error msg -> fail ("guard: " ^ msg))
  | Ast.Par (sync, x, y) ->
    let sync_gate g =
      match sync with Ast.Gates gs -> List.mem g gs | Ast.All -> true
    in
    let mx = recur x and my = recur y in
    let left =
      List.filter_map
        (fun (l, x') ->
           match l with
           | Exit_move _ -> None
           | Act (g, _) when sync_gate g -> None
           | Act _ | Tau | Rate_move _ -> Some (l, Ast.Par (sync, x', y)))
        mx
    and right =
      List.filter_map
        (fun (l, y') ->
           match l with
           | Exit_move _ -> None
           | Act (g, _) when sync_gate g -> None
           | Act _ | Tau | Rate_move _ -> Some (l, Ast.Par (sync, x, y')))
        my
    and synced =
      List.concat_map
        (fun (lx, x') ->
           List.filter_map
             (fun (ly, y') ->
                match lx, ly with
                | Exit_move vx, Exit_move vy
                  when List.length vx = List.length vy
                       && List.for_all2 Value.equal vx vy ->
                  Some (lx, Ast.Par (sync, x', y'))
                | Act (g, vs), Act (g', vs')
                  when sync_gate g && String.equal g g' && vs = vs' ->
                  Some (lx, Ast.Par (sync, x', y'))
                | (Exit_move _ | Act _ | Tau | Rate_move _), _ -> None)
             my)
        (List.filter
           (fun (l, _) ->
              match l with
              | Exit_move _ -> true
              | Act (g, _) -> sync_gate g
              | Tau | Rate_move _ -> false)
           mx)
    in
    left @ right @ synced
  | Ast.Hide (gates, k) ->
    List.map
      (fun (l, k') ->
         let l' =
           match l with
           | Act (g, _) when List.mem g gates -> Tau
           | Act _ | Tau | Exit_move _ | Rate_move _ -> l
         in
         (l', Ast.Hide (gates, k')))
      (recur k)
  | Ast.Rename (pairs, k) ->
    List.map
      (fun (l, k') ->
         let l' =
           match l with
           | Act (g, vs) -> (
               match List.assoc_opt g pairs with
               | Some g' -> Act (g', vs)
               | None -> l)
           | Tau | Exit_move _ | Rate_move _ -> l
         in
         (l', Ast.Rename (pairs, k')))
      (recur k)
  | Ast.Seq (x, accepts, y) ->
    List.map
      (fun (l, x') ->
         match l with
         | Exit_move values ->
           if List.length values <> List.length accepts then
             fail
               (Printf.sprintf
                  ">>: %d exit value(s) for %d accept binder(s)"
                  (List.length values) (List.length accepts))
           else begin
             let bindings =
               List.map2
                 (fun (name, ty) value ->
                    if not (Ty.check_value spec.Ast.enums ty value) then
                      fail
                        (Printf.sprintf "accept %s: value %s not in type" name
                           (Value.to_string value));
                    (name, value))
                 accepts values
             in
             (Tau, Ast.subst bindings y)
           end
         | Act _ | Tau | Rate_move _ -> (l, Ast.Seq (x', accepts, y)))
      (recur x)
  | Ast.Call (name, gate_args, args) ->
    if fuel <= 0 then raise (Unguarded_recursion name);
    let proc =
      match Ast.find_process spec name with
      | Some p -> p
      | None -> fail ("unknown process " ^ name)
    in
    if List.length proc.gates <> List.length gate_args then
      fail
        (Printf.sprintf "process %s expects %d gate argument(s), got %d" name
           (List.length proc.gates) (List.length gate_args));
    if List.length proc.params <> List.length args then
      fail
        (Printf.sprintf "process %s expects %d argument(s), got %d" name
           (List.length proc.params) (List.length args));
    let bindings =
      List.map2
        (fun (param, ty) arg ->
           match Expr.eval arg with
           | v ->
             if not (Ty.check_value spec.enums ty v) then
               fail
                 (Printf.sprintf "argument %s of %s: value %s not in type" param
                    name (Value.to_string v));
             (param, v)
           | exception Expr.Eval_error msg ->
             fail (Printf.sprintf "argument %s of %s: %s" param name msg))
        proc.params args
    in
    let body =
      if proc.gates = [] then proc.body
      else Ast.subst_gates (List.combine proc.gates gate_args) proc.body
    in
    moves ~fuel:(fuel - 1) spec (Ast.subst bindings body)
