(** Concrete syntax of MVL specifications.

    {v
    spec      ::= decl* "init" behavior
    decl      ::= "type" NAME "=" "{" NAME ("," NAME)* "}"
                | "process" NAME gparams? params? ":=" behavior
    gparams   ::= "[" GATE ("," GATE)* "]"
    params    ::= "(" NAME ":" ty ("," NAME ":" ty)* ")"
    ty        ::= "bool" | "int" "[" SINT ".." SINT "]" | NAME

    behavior  ::= behavior parop behavior      (lowest precedence)
                | behavior ">>" behavior
                | behavior ">>" "accept" NAME ":" ty ("," NAME ":" ty)* "in" behavior
                | behavior "[]" behavior
                | "stop" | "exit" | "exit" "(" expr ("," expr)* ")"
                | GATE offer* ";" behavior
                | "rate" NUM ";" behavior
                | "[" expr "]" "->" behavior
                | "choice" NAME ":" ty "[]" behavior   (one branch per value)
                | "hide" GATE ("," GATE)* "in" behavior
                | "rename" GATE "->" GATE ("," GATE "->" GATE)* "in" behavior
                | NAME gargs? | NAME gargs? "(" expr ("," expr)* ")"
                | "(" behavior ")"
    gargs     ::= "[" GATE ("," GATE)* "]"
    parop     ::= "|||" | "||" | "|[" GATE ("," GATE)* "]|"
    offer     ::= "!" sum-expr | "?" NAME ":" ty
    v}

    Expressions use the usual precedences
    ([or < and < not < comparisons < + - < * / % < unary -]) plus
    [if e then e else e]. Offer values after [!] are parsed at additive
    level; parenthesize comparisons. Comments are [(* ... *)]. *)

exception Parse_error of string

(** Parse a full specification (no typechecking; combine with
    {!Typecheck.resolve_spec} and {!Typecheck.check_spec}). The result
    carries no {!Ast.At} annotations. *)
val spec_of_string : string -> Ast.spec

(** Parse a behaviour in an empty declaration context. *)
val behavior_of_string : string -> Ast.behavior

(** {1 Located variants}

    Same grammars, but every sub-behaviour is wrapped in an {!Ast.At}
    annotation carrying its 1-based source line (process bodies carry
    the header line on the outermost annotation). This is what
    [Mv_lint] and the collecting typechecker consume; strip with
    {!Ast.strip_locs_spec} before exploration. *)

val spec_of_string_located : string -> Ast.spec
val behavior_of_string_located : string -> Ast.behavior

(** Parse a data expression. *)
val expr_of_string : string -> Expr.t

(** {1 Sub-parsers}

    Re-usable entry points for front-ends that embed MVL expressions
    and types in their own syntax (the CHP parser does). The scanner
    must have been created with at least the punctuation of
    {!symbols}. *)

(** The punctuation tokens of the MVL grammar. *)
val symbols : string list

val parse_expr_from : Mv_util.Lexing_util.t -> Expr.t
val parse_sum_from : Mv_util.Lexing_util.t -> Expr.t
val parse_ty_from : Mv_util.Lexing_util.t -> Ty.t

(** Parse, resolve enum constructors, and typecheck in one step.
    Raises {!Parse_error} or {!Typecheck.Type_error}. *)
val spec_of_string_checked : string -> Ast.spec
