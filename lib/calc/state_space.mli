(** State-space generation: from an MVL specification to an explicit
    LTS (the CADP "generator" step of the flow).

    States are closed behaviour terms, hashed structurally. Markovian
    [rate] prefixes appear as ["rate <lambda>"] labels; the IMC layer
    ({!Mv_imc}) recognizes and decodes them.

    Modeling caveat: a [hide] (or [rename]) {e inside} a recursive body
    accumulates one binder per unfolding and never converges to a
    finite term set; place recursion outside the binder (e.g.
    [(hide h in ...) >> P] or hide at the composition level). *)

type outcome = {
  lts : Mv_lts.Lts.t;
  terms : Ast.behavior array; (** LTS state -> behaviour term *)
  truncated : bool;
}

(** [generate ?pool ?max_states spec] explores breadth-first from
    [spec.init]. Default bound: 1_000_000 states; reaching it raises
    {!Mv_lts.Explore.Too_many_states}. With a [pool] of size > 1 the
    frontier levels are expanded on all pool domains (MVL semantics is
    pure, so concurrent [Semantics.moves] calls are safe); the
    resulting LTS — numbering, transitions, labels — is identical to
    the sequential one (see {!Mv_lts.Explore.Make.run}).
    [tick] is forwarded to {!Mv_lts.Explore.Make.run}: a cooperative
    budget checkpoint called with the discovered-state count.
    [expect] pre-sizes the exploration hash tables (a hint, never a
    bound). *)
val generate :
  ?pool:Mv_par.Pool.t ->
  ?tick:(states:int -> unit) ->
  ?max_states:int ->
  ?expect:int ->
  Ast.spec ->
  outcome

(** [lts ?pool ?tick ?max_states spec] is [(generate spec).lts]. *)
val lts :
  ?pool:Mv_par.Pool.t ->
  ?tick:(states:int -> unit) ->
  ?max_states:int ->
  ?expect:int ->
  Ast.spec ->
  Mv_lts.Lts.t

(** Out-of-core generation: breadth-first exploration that streams
    each state's transitions to [emit] (in state-id order, labels
    interned into [labels]) instead of materializing an LTS, with the
    seen set spilling to sorted runs in [scratch_dir] past
    [hot_budget_bytes] — see {!Mv_lts.Explore.Make.run_ooc}. The
    emitted LTS is identical to what {!generate} builds in RAM. *)
val generate_ooc :
  ?tick:(states:int -> unit) ->
  ?max_states:int ->
  ?expect:int ->
  ?hot_budget_bytes:int ->
  scratch_dir:string ->
  labels:Mv_lts.Label.table ->
  emit:((int * int) array -> unit) ->
  Ast.spec ->
  Mv_lts.Explore.ooc_outcome

(** [first_deadlock ?max_states spec] searches breadth-first for a
    deadlocked state {e during} generation and stops at the first hit,
    returning a shortest action trace to it (so large live portions of
    the state space need not be fully built when a deadlock is
    shallow). [None] when the whole (bounded) state space is
    deadlock-free. *)
val first_deadlock : ?max_states:int -> Ast.spec -> string list option
