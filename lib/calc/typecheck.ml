exception Type_error of string

type kind = KBool | KInt | KEnum of string

type problem = { line : int option; code : string; message : string }

(* Stable diagnostic codes (shared with Mv_lint, which renders them):
   MVL001 covers every kind/well-formedness error, MVL002 singles out
   calls to undefined processes so the lint call-graph pass does not
   report them twice. *)
let code_type = "MVL001"
let code_undefined_process = "MVL002"

(* Internal, expression/statement-granular failure; collected into
   [problem]s by the spec-level traversal. *)
exception Fail of string * string (* code, message *)

let fail msg = raise (Fail (code_type, msg))

let pp_kind fmt = function
  | KBool -> Format.pp_print_string fmt "bool"
  | KInt -> Format.pp_print_string fmt "int"
  | KEnum name -> Format.pp_print_string fmt name

let kind_name = function
  | KBool -> "bool"
  | KInt -> "int"
  | KEnum name -> name

let kind_of_ty = function
  | Ty.TBool -> KBool
  | Ty.TIntRange _ -> KInt
  | Ty.TEnum name -> KEnum name

(* ------------------------------------------------------------------ *)
(* Enum constructor resolution                                         *)

(* Map constructors to their enum type; duplicates keep the first
   declaration and are reported through [report] (resolution must
   still produce a usable table for the later passes). *)
let constructor_table ?report (spec : Ast.spec) =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (ty_name, constructors) ->
       List.iter
         (fun c ->
            if Hashtbl.mem table c then (
              match report with
              | Some emit ->
                emit None code_type
                  (Printf.sprintf "enum constructor %s declared twice" c)
              | None ->
                raise
                  (Type_error
                     (Printf.sprintf "enum constructor %s declared twice" c)))
            else Hashtbl.replace table c ty_name)
         constructors)
    spec.Ast.enums;
  table

let rec resolve_expr table bound e =
  match e with
  | Expr.Const _ -> e
  | Expr.Var x ->
    if (not (List.mem x bound)) && Hashtbl.mem table x then
      Expr.Const (Value.VEnum x)
    else e
  | Expr.Unop (op, inner) -> Expr.Unop (op, resolve_expr table bound inner)
  | Expr.Binop (op, a, b) ->
    Expr.Binop (op, resolve_expr table bound a, resolve_expr table bound b)
  | Expr.If (c, t, els) ->
    Expr.If
      ( resolve_expr table bound c,
        resolve_expr table bound t,
        resolve_expr table bound els )

let rec resolve_behavior table bound b =
  match b with
  | Ast.Stop -> b
  | Ast.Exit es -> Ast.Exit (List.map (resolve_expr table bound) es)
  | Ast.Prefix (action, k) ->
    let bound', offers =
      List.fold_left
        (fun (bound, offers) offer ->
           match offer with
           | Ast.Send e -> (bound, Ast.Send (resolve_expr table bound e) :: offers)
           | Ast.Receive (x, _ty) -> (x :: bound, offer :: offers))
        (bound, []) action.offers
    in
    Ast.Prefix
      ({ action with offers = List.rev offers }, resolve_behavior table bound' k)
  | Ast.Rate (r, k) -> Ast.Rate (r, resolve_behavior table bound k)
  | Ast.Choice bs -> Ast.Choice (List.map (resolve_behavior table bound) bs)
  | Ast.Guard (e, k) ->
    Ast.Guard (resolve_expr table bound e, resolve_behavior table bound k)
  | Ast.Par (s, x, y) ->
    Ast.Par (s, resolve_behavior table bound x, resolve_behavior table bound y)
  | Ast.Hide (gs, k) -> Ast.Hide (gs, resolve_behavior table bound k)
  | Ast.Rename (rs, k) -> Ast.Rename (rs, resolve_behavior table bound k)
  | Ast.Seq (x, accepts, y) ->
    let bound' = List.map fst accepts @ bound in
    Ast.Seq
      (resolve_behavior table bound x, accepts, resolve_behavior table bound' y)
  | Ast.Call (p, gate_args, args) ->
    Ast.Call (p, gate_args, List.map (resolve_expr table bound) args)
  | Ast.At (line, k) -> Ast.At (line, resolve_behavior table bound k)

let resolve_spec spec =
  let table = constructor_table spec in
  let resolve_process (p : Ast.process) =
    let bound = List.map fst p.params in
    { p with Ast.body = resolve_behavior table bound p.body }
  in
  {
    spec with
    Ast.processes = List.map resolve_process spec.Ast.processes;
    init = resolve_behavior table [] spec.Ast.init;
  }

(* ------------------------------------------------------------------ *)
(* Kind checking                                                       *)

let enum_of_constructor spec c =
  let found =
    List.find_opt (fun (_, constructors) -> List.mem c constructors) spec.Ast.enums
  in
  match found with
  | Some (name, _) -> KEnum name
  | None -> fail ("unknown enum constructor " ^ c)

let rec infer_exn spec env e =
  match e with
  | Expr.Const (Value.VBool _) -> KBool
  | Expr.Const (Value.VInt _) -> KInt
  | Expr.Const (Value.VEnum c) -> enum_of_constructor spec c
  | Expr.Var x -> (
      match List.assoc_opt x env with
      | Some k -> k
      | None -> fail ("unbound variable " ^ x))
  | Expr.Unop (`Neg, inner) -> expect spec env inner KInt; KInt
  | Expr.Unop (`Not, inner) -> expect spec env inner KBool; KBool
  | Expr.Binop ((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod), a, b) ->
    expect spec env a KInt; expect spec env b KInt; KInt
  | Expr.Binop ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), a, b) ->
    expect spec env a KInt; expect spec env b KInt; KBool
  | Expr.Binop ((Expr.Eq | Expr.Ne), a, b) ->
    let ka = infer_exn spec env a and kb = infer_exn spec env b in
    if ka <> kb then
      fail
        (Printf.sprintf "comparison of %s and %s" (kind_name ka) (kind_name kb));
    KBool
  | Expr.Binop ((Expr.And | Expr.Or), a, b) ->
    expect spec env a KBool; expect spec env b KBool; KBool
  | Expr.If (c, t, els) ->
    expect spec env c KBool;
    let kt = infer_exn spec env t and ke = infer_exn spec env els in
    if kt <> ke then
      fail
        (Printf.sprintf "if branches have kinds %s and %s" (kind_name kt)
           (kind_name ke));
    kt

and expect spec env e k =
  let k' = infer_exn spec env e in
  if k <> k' then
    fail (Printf.sprintf "expected %s, found %s" (kind_name k) (kind_name k'))

let infer spec env e =
  try infer_exn spec env e with Fail (_, msg) -> raise (Type_error msg)

let check_ty spec = function
  | Ty.TBool -> ()
  | Ty.TIntRange (lo, hi) ->
    if lo > hi then fail (Printf.sprintf "empty range int[%d..%d]" lo hi)
  | Ty.TEnum name ->
    if not (List.mem_assoc name spec.Ast.enums) then
      fail ("undeclared enum type " ^ name)

(* ------------------------------------------------------------------ *)
(* Whole-spec checking: collect every problem in one traversal.        *)

(* [emit] records a problem; [attempt] runs one check and converts its
   first [Fail] into a problem, so independent checks keep going. *)
let check_behavior_collect spec emit =
  let attempt line f = try f () with Fail (code, msg) -> emit line code msg in
  let rec check line env b =
    match b with
    | Ast.At (l, k) -> check (Some l) env k
    | Ast.Stop -> ()
    | Ast.Exit es ->
      List.iter
        (fun e -> attempt line (fun () -> ignore (infer_exn spec env e)))
        es
    | Ast.Prefix (action, k) ->
      if String.equal action.gate Ast.tau_gate && action.offers <> [] then
        emit line code_type "the internal gate i takes no offers";
      let env' =
        List.fold_left
          (fun env offer ->
             match offer with
             | Ast.Send e ->
               attempt line (fun () -> ignore (infer_exn spec env e));
               env
             | Ast.Receive (x, ty) ->
               attempt line (fun () -> check_ty spec ty);
               (x, kind_of_ty ty) :: env)
          env action.offers
      in
      check line env' k
    | Ast.Rate (r, k) ->
      if r <= 0.0 then emit line code_type "rate must be positive";
      check line env k
    | Ast.Choice bs -> List.iter (check line env) bs
    | Ast.Guard (e, k) ->
      attempt line (fun () -> expect spec env e KBool);
      check line env k
    | Ast.Par (_, x, y) -> check line env x; check line env y
    | Ast.Seq (x, accepts, y) ->
      check line env x;
      List.iter
        (fun (_, ty) -> attempt line (fun () -> check_ty spec ty))
        accepts;
      let env' = List.map (fun (v, ty) -> (v, kind_of_ty ty)) accepts @ env in
      check line env' y
    | Ast.Hide (_, k) | Ast.Rename (_, k) -> check line env k
    | Ast.Call (name, gate_args, args) -> (
        match Ast.find_process spec name with
        | None -> emit line code_undefined_process ("unknown process " ^ name)
        | Some proc ->
          if List.length proc.gates <> List.length gate_args then
            emit line code_type
              (Printf.sprintf "process %s expects %d gate argument(s), got %d"
                 name (List.length proc.gates) (List.length gate_args));
          List.iter
            (fun g ->
               if g = Ast.tau_gate || g = Ast.exit_label then
                 emit line code_type
                   ("gate argument cannot be the reserved name " ^ g))
            gate_args;
          if List.length proc.params <> List.length args then
            emit line code_type
              (Printf.sprintf "process %s expects %d argument(s), got %d" name
                 (List.length proc.params) (List.length args))
          else
            List.iter2
              (fun (param, ty) arg ->
                 attempt line (fun () ->
                     let expected = kind_of_ty ty in
                     let found = infer_exn spec env arg in
                     if expected <> found then
                       fail
                         (Printf.sprintf
                            "argument %s of %s: expected %s, found %s" param
                            name (kind_name expected) (kind_name found))))
              proc.params args)
  in
  check

let problems spec =
  let acc = ref [] in
  let emit line code message = acc := { line; code; message } :: !acc in
  ignore (constructor_table ~report:emit spec);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, constructors) ->
       if Hashtbl.mem seen name then
         emit None code_type ("enum type " ^ name ^ " declared twice")
       else Hashtbl.replace seen name ();
       if constructors = [] then
         emit None code_type ("enum type " ^ name ^ " has no constructors"))
    spec.Ast.enums;
  let check_behavior = check_behavior_collect spec emit in
  let seen_proc = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.process) ->
       let line = Ast.loc_of p.body in
       if Hashtbl.mem seen_proc p.proc_name then
         emit line code_type ("process " ^ p.proc_name ^ " declared twice")
       else Hashtbl.replace seen_proc p.proc_name ();
       let seen_gate = Hashtbl.create 4 in
       List.iter
         (fun g ->
            if g = Ast.tau_gate || g = Ast.exit_label then
              emit line code_type
                (Printf.sprintf "process %s: formal gate %s is reserved"
                   p.proc_name g);
            if Hashtbl.mem seen_gate g then
              emit line code_type
                (Printf.sprintf "process %s: duplicate formal gate %s"
                   p.proc_name g)
            else Hashtbl.replace seen_gate g ())
         p.gates;
       List.iter
         (fun (_, ty) ->
            try check_ty spec ty
            with Fail (code, msg) ->
              emit line code (Printf.sprintf "process %s: %s" p.proc_name msg))
         p.params;
       let env = List.map (fun (x, ty) -> (x, kind_of_ty ty)) p.params in
       check_behavior line env p.body)
    spec.Ast.processes;
  check_behavior None [] spec.Ast.init;
  List.rev !acc

let problem_message p =
  match p.line with
  | Some l -> Printf.sprintf "line %d: %s" l p.message
  | None -> p.message

let check_spec spec =
  match problems spec with
  | [] -> ()
  | p :: _ -> raise (Type_error (problem_message p))
