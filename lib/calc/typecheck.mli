(** Static checks on MVL specifications.

    Two passes:
    - {!resolve_spec} turns identifiers that name declared enum
      constructors into constants (the parser cannot distinguish them
      from variables);
    - {!problems} verifies well-formedness — unique process and enum
      names, declared enum types, bound variables, kind-correct
      expressions, boolean guards, call arities, and positive rates —
      and reports {e every} problem found, with a source line whenever
      the spec carries {!Ast.At} annotations (the located parser entry
      points produce them). {!check_spec} is the fail-fast wrapper.

    Expression typing is by {e kind} ([bool], [int], or a named enum);
    integer range bounds are only enforced at binding sites (process
    arguments are range-checked dynamically during exploration;
    [Mv_lint] flags statically-decidable violations ahead of time). *)

exception Type_error of string

type kind = KBool | KInt | KEnum of string

(** One well-formedness violation. [code] is the stable diagnostic
    code ({!code_type} or {!code_undefined_process}); [line] is known
    when the offending construct carried a location. *)
type problem = { line : int option; code : string; message : string }

(** ["MVL001"] — kind errors and structural well-formedness. *)
val code_type : string

(** ["MVL002"] — call to an undefined process. *)
val code_undefined_process : string

(** Resolve enum constructors in every expression of the spec (bound
    variables shadow constructors). Raises {!Type_error} if an enum
    constructor is declared twice across types. *)
val resolve_spec : Ast.spec -> Ast.spec

(** Collect every well-formedness problem, in traversal order. *)
val problems : Ast.spec -> problem list

(** ["line N: message"] when the line is known, else the bare message. *)
val problem_message : problem -> string

(** Check the whole specification; raises {!Type_error} carrying
    {!problem_message} of the first problem. *)
val check_spec : Ast.spec -> unit

(** [infer spec env e] — kind of [e] under variable kinds [env].
    Raises {!Type_error} on ill-kinded expressions. *)
val infer : Ast.spec -> (string * kind) list -> Expr.t -> kind

(** Kind of a declared type. *)
val kind_of_ty : Ty.t -> kind

val pp_kind : Format.formatter -> kind -> unit
