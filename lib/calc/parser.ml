module Lex = Mv_util.Lexing_util

exception Parse_error of string

let symbols =
  [ "|["; "]|"; "|||"; "||"; "[]"; "->"; ">>"; ":="; ".."; "=="; "!=";
    "<="; ">="; ";"; "!"; "?"; ":"; ","; "("; ")"; "["; "]"; "{"; "}";
    "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "|" ]

let keywords =
  [ "type"; "process"; "init"; "stop"; "exit"; "hide"; "rename"; "in";
    "rate"; "if"; "then"; "else"; "true"; "false"; "not"; "and"; "or";
    "bool"; "int"; "const"; "choice"; "accept" ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_expr lex = parse_or lex

and parse_or lex =
  let left = parse_and lex in
  match Lex.peek lex with
  | Lex.Ident "or" ->
    ignore (Lex.next lex);
    Expr.Binop (Expr.Or, left, parse_or lex)
  | _ -> left

and parse_and lex =
  let left = parse_not lex in
  match Lex.peek lex with
  | Lex.Ident "and" ->
    ignore (Lex.next lex);
    Expr.Binop (Expr.And, left, parse_and lex)
  | _ -> left

and parse_not lex =
  match Lex.peek lex with
  | Lex.Ident "not" ->
    ignore (Lex.next lex);
    Expr.Unop (`Not, parse_not lex)
  | _ -> parse_comparison lex

and parse_comparison lex =
  let left = parse_sum lex in
  let op p = ignore (Lex.next lex); Some p in
  let operator =
    match Lex.peek lex with
    | Lex.Punct "==" -> op Expr.Eq
    | Lex.Punct "!=" -> op Expr.Ne
    | Lex.Punct "<" -> op Expr.Lt
    | Lex.Punct "<=" -> op Expr.Le
    | Lex.Punct ">" -> op Expr.Gt
    | Lex.Punct ">=" -> op Expr.Ge
    | _ -> None
  in
  match operator with
  | Some op -> Expr.Binop (op, left, parse_sum lex)
  | None -> left

and parse_sum lex =
  let rec loop left =
    match Lex.peek lex with
    | Lex.Punct "+" ->
      ignore (Lex.next lex);
      loop (Expr.Binop (Expr.Add, left, parse_product lex))
    | Lex.Punct "-" ->
      ignore (Lex.next lex);
      loop (Expr.Binop (Expr.Sub, left, parse_product lex))
    | _ -> left
  in
  loop (parse_product lex)

and parse_product lex =
  let rec loop left =
    match Lex.peek lex with
    | Lex.Punct "*" ->
      ignore (Lex.next lex);
      loop (Expr.Binop (Expr.Mul, left, parse_unary lex))
    | Lex.Punct "/" ->
      ignore (Lex.next lex);
      loop (Expr.Binop (Expr.Div, left, parse_unary lex))
    | Lex.Punct "%" ->
      ignore (Lex.next lex);
      loop (Expr.Binop (Expr.Mod, left, parse_unary lex))
    | _ -> left
  in
  loop (parse_unary lex)

and parse_unary lex =
  match Lex.peek lex with
  | Lex.Punct "-" ->
    ignore (Lex.next lex);
    Expr.Unop (`Neg, parse_unary lex)
  | _ -> parse_atom lex

and parse_atom lex =
  match Lex.next lex with
  | Lex.Int n -> Expr.Const (Value.VInt n)
  | Lex.Ident "true" -> Expr.Const (Value.VBool true)
  | Lex.Ident "false" -> Expr.Const (Value.VBool false)
  | Lex.Ident "if" ->
    let c = parse_expr lex in
    (match Lex.next lex with
     | Lex.Ident "then" -> ()
     | _ -> Lex.error lex "expected 'then'");
    let t = parse_expr lex in
    (match Lex.next lex with
     | Lex.Ident "else" -> ()
     | _ -> Lex.error lex "expected 'else'");
    Expr.If (c, t, parse_expr lex)
  | Lex.Ident x when not (List.mem x keywords) -> Expr.Var x
  | Lex.Punct "(" ->
    let e = parse_expr lex in
    Lex.expect lex ")";
    e
  | _ -> Lex.error lex "unexpected token in expression"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let parse_signed_int lex =
  let negative = Lex.eat lex "-" in
  match Lex.next lex with
  | Lex.Int n -> if negative then -n else n
  | _ -> Lex.error lex "expected integer"

let parse_ty lex =
  match Lex.next lex with
  | Lex.Ident "bool" -> Ty.TBool
  | Lex.Ident "int" ->
    Lex.expect lex "[";
    let lo = parse_signed_int lex in
    Lex.expect lex "..";
    let hi = parse_signed_int lex in
    Lex.expect lex "]";
    Ty.TIntRange (lo, hi)
  | Lex.Ident name when not (List.mem name keywords) -> Ty.TEnum name
  | _ -> Lex.error lex "expected a type"

(* ------------------------------------------------------------------ *)
(* Behaviours                                                          *)

let parse_gate_list lex =
  let rec loop acc =
    let g = Lex.expect_ident lex in
    if Lex.eat lex "," then loop (g :: acc) else List.rev (g :: acc)
  in
  loop []

(* Every sub-behaviour is wrapped in an [Ast.At] annotation carrying
   its starting line (binary operators carry the operator's line).
   The public entry points strip them; the [_located] variants keep
   them for diagnostics. *)

let rec parse_behavior lex = parse_par lex

and parse_par lex =
  let rec loop left =
    let line = Lex.line lex in
    match Lex.peek lex with
    | Lex.Punct "|||" ->
      ignore (Lex.next lex);
      loop (Ast.At (line, Ast.Par (Ast.Gates [], left, parse_seq lex)))
    | Lex.Punct "||" ->
      ignore (Lex.next lex);
      loop (Ast.At (line, Ast.Par (Ast.All, left, parse_seq lex)))
    | Lex.Punct "|[" ->
      ignore (Lex.next lex);
      let gates = parse_gate_list lex in
      Lex.expect lex "]|";
      loop (Ast.At (line, Ast.Par (Ast.Gates gates, left, parse_seq lex)))
    | _ -> left
  in
  loop (parse_seq lex)

and parse_seq lex =
  let left = parse_choice lex in
  let line = Lex.line lex in
  if Lex.eat lex ">>" then begin
    let accepts =
      match Lex.peek lex with
      | Lex.Ident "accept" ->
        ignore (Lex.next lex);
        let rec loop acc =
          let v = Lex.expect_ident lex in
          Lex.expect lex ":";
          let ty = parse_ty lex in
          if Lex.eat lex "," then loop ((v, ty) :: acc)
          else List.rev ((v, ty) :: acc)
        in
        let accepts = loop [] in
        (match Lex.next lex with
         | Lex.Ident "in" -> ()
         | _ -> Lex.error lex "expected 'in'");
        accepts
      | _ -> []
    in
    Ast.At (line, Ast.Seq (left, accepts, parse_seq lex))
  end
  else left

and parse_choice lex =
  let line = Lex.line lex in
  let first = parse_prefix lex in
  let rec loop acc =
    if Lex.eat lex "[]" then loop (parse_prefix lex :: acc) else List.rev acc
  in
  match loop [ first ] with
  | [ only ] -> only
  | branches -> Ast.At (line, Ast.Choice branches)

and parse_offers lex =
  let rec loop acc =
    match Lex.peek lex with
    | Lex.Punct "!" ->
      ignore (Lex.next lex);
      loop (Ast.Send (parse_sum lex) :: acc)
    | Lex.Punct "?" ->
      ignore (Lex.next lex);
      let x = Lex.expect_ident lex in
      Lex.expect lex ":";
      let ty = parse_ty lex in
      loop (Ast.Receive (x, ty) :: acc)
    | _ -> List.rev acc
  in
  loop []

and parse_prefix lex =
  let line = Lex.line lex in
  match parse_prefix_raw lex with
  | Ast.At _ as b -> b
  | b -> Ast.At (line, b)

and parse_prefix_raw lex =
  match Lex.peek lex with
  | Lex.Ident "choice" ->
    (* value choice: desugared into one branch per domain element;
       the domain must not mention enum types (their constructors are
       resolved later, but the range is known at parse time only for
       bool/int) *)
    ignore (Lex.next lex);
    let x = Lex.expect_ident lex in
    Lex.expect lex ":";
    let ty = parse_ty lex in
    Lex.expect lex "[]";
    let body = parse_prefix lex in
    let domain =
      match ty with
      | Ty.TBool | Ty.TIntRange _ -> Ty.domain [] ty
      | Ty.TEnum _ ->
        Lex.error lex
          "choice over an enum type is not supported (use int or bool)"
    in
    Ast.choice
      (List.map (fun value -> Ast.subst [ (x, value) ] body) domain)
  | Lex.Ident "stop" -> ignore (Lex.next lex); Ast.Stop
  | Lex.Ident "exit" ->
    ignore (Lex.next lex);
    if Lex.eat lex "(" then begin
      let rec args acc =
        let e = parse_expr lex in
        if Lex.eat lex "," then args (e :: acc) else List.rev (e :: acc)
      in
      let values = args [] in
      Lex.expect lex ")";
      Ast.Exit values
    end
    else Ast.Exit []
  | Lex.Ident "hide" ->
    ignore (Lex.next lex);
    let gates = parse_gate_list lex in
    (match Lex.next lex with
     | Lex.Ident "in" -> ()
     | _ -> Lex.error lex "expected 'in'");
    Ast.Hide (gates, parse_behavior lex)
  | Lex.Ident "rename" ->
    ignore (Lex.next lex);
    let rec pairs acc =
      let old_gate = Lex.expect_ident lex in
      Lex.expect lex "->";
      let new_gate = Lex.expect_ident lex in
      if Lex.eat lex "," then pairs ((old_gate, new_gate) :: acc)
      else List.rev ((old_gate, new_gate) :: acc)
    in
    let renaming = pairs [] in
    (match Lex.next lex with
     | Lex.Ident "in" -> ()
     | _ -> Lex.error lex "expected 'in'");
    Ast.Rename (renaming, parse_behavior lex)
  | Lex.Ident "rate" ->
    ignore (Lex.next lex);
    let r =
      match Lex.next lex with
      | Lex.Float f -> f
      | Lex.Int n -> float_of_int n
      | _ -> Lex.error lex "expected a rate value"
    in
    Lex.expect lex ";";
    Ast.Rate (r, parse_prefix lex)
  | Lex.Punct "[" ->
    ignore (Lex.next lex);
    let e = parse_expr lex in
    Lex.expect lex "]";
    Lex.expect lex "->";
    Ast.Guard (e, parse_prefix lex)
  | Lex.Punct "(" ->
    ignore (Lex.next lex);
    let b = parse_behavior lex in
    Lex.expect lex ")";
    b
  | Lex.Ident name when not (List.mem name keywords) ->
    ignore (Lex.next lex);
    (match Lex.peek lex with
     | Lex.Punct "!" | Lex.Punct "?" | Lex.Punct ";" ->
       let offers = parse_offers lex in
       Lex.expect lex ";";
       Ast.Prefix ({ Ast.gate = name; offers }, parse_prefix lex)
     | Lex.Punct "[" | Lex.Punct "(" ->
       let gate_args =
         if Lex.eat lex "[" then begin
           let gates = parse_gate_list lex in
           Lex.expect lex "]";
           gates
         end
         else []
       in
       let arguments =
         if Lex.eat lex "(" then begin
           let rec args acc =
             let e = parse_expr lex in
             if Lex.eat lex "," then args (e :: acc) else List.rev (e :: acc)
           in
           let arguments = args [] in
           Lex.expect lex ")";
           arguments
         end
         else []
       in
       Ast.Call (name, gate_args, arguments)
     | _ -> Ast.Call (name, [], []))
  | _ -> Lex.error lex "unexpected token in behaviour"

(* ------------------------------------------------------------------ *)
(* Specifications                                                      *)

let parse_params lex =
  if Lex.eat lex "(" then begin
    let rec loop acc =
      let x = Lex.expect_ident lex in
      Lex.expect lex ":";
      let ty = parse_ty lex in
      if Lex.eat lex "," then loop ((x, ty) :: acc)
      else begin
        Lex.expect lex ")";
        List.rev ((x, ty) :: acc)
      end
    in
    loop []
  end
  else []

let rec parse_spec lex =
  let enums = ref [] in
  let processes = ref [] in
  let consts = ref [] in
  let init = ref None in
  let rec loop () =
    match Lex.peek lex with
    | Lex.Eof -> ()
    | Lex.Ident "type" ->
      ignore (Lex.next lex);
      let name = Lex.expect_ident lex in
      Lex.expect lex "=";
      Lex.expect lex "{";
      let rec constructors acc =
        let c = Lex.expect_ident lex in
        if Lex.eat lex "," then constructors (c :: acc)
        else begin
          Lex.expect lex "}";
          List.rev (c :: acc)
        end
      in
      enums := (name, constructors []) :: !enums;
      loop ()
    | Lex.Ident "const" ->
      let line = Lex.line lex in
      ignore (Lex.next lex);
      let name = Lex.expect_ident lex in
      Lex.expect lex "=";
      let value = parse_expr lex in
      consts := (name, value, line) :: !consts;
      loop ()
    | Lex.Ident "process" ->
      let line = Lex.line lex in
      ignore (Lex.next lex);
      let name = Lex.expect_ident lex in
      let gates =
        if Lex.eat lex "[" then begin
          let gates = parse_gate_list lex in
          Lex.expect lex "]";
          gates
        end
        else []
      in
      let params = parse_params lex in
      Lex.expect lex ":=";
      (* double annotation: the outer [At] carries the header line (the
         per-process location), the inner one the body's own line *)
      let body = Ast.At (line, parse_behavior lex) in
      processes := { Ast.proc_name = name; gates; params; body } :: !processes;
      loop ()
    | Lex.Ident "init" ->
      let line = Lex.line lex in
      ignore (Lex.next lex);
      (match !init with
       | Some _ -> Lex.error lex "duplicate init declaration"
       | None -> init := Some (Ast.At (line, parse_behavior lex)));
      loop ()
    | _ -> Lex.error lex "expected 'type', 'const', 'process' or 'init'"
  in
  loop ();
  match !init with
  | None -> Lex.error lex "missing init declaration"
  | Some init ->
    let spec =
      { Ast.enums = List.rev !enums; processes = List.rev !processes; init }
    in
    apply_consts spec (List.rev !consts)

(* Constant declarations are substituted away at parse time: each
   const expression is evaluated in order (earlier constants and enum
   constructors are in scope), then every process body and the init
   behaviour get the resulting bindings (process parameters shadow
   constants of the same name). *)
and apply_consts spec consts =
  if consts = [] then spec
  else begin
    let constructor_declared c =
      List.exists (fun (_, cs) -> List.mem c cs) spec.Ast.enums
    in
    let rec resolve e =
      match e with
      | Expr.Const _ -> e
      | Expr.Var x -> if constructor_declared x then Expr.Const (Value.VEnum x) else e
      | Expr.Unop (op, inner) -> Expr.Unop (op, resolve inner)
      | Expr.Binop (op, a, b) -> Expr.Binop (op, resolve a, resolve b)
      | Expr.If (c, t, els) -> Expr.If (resolve c, resolve t, resolve els)
    in
    let bindings =
      List.fold_left
        (fun bindings (name, expr, line) ->
           let closed = Expr.subst bindings (resolve expr) in
           match Expr.eval closed with
           | v -> (name, v) :: bindings
           | exception Expr.Eval_error msg ->
             raise
               (Parse_error
                  (Printf.sprintf "line %d: const %s: %s" line name msg)))
        [] consts
    in
    let subst_process (p : Ast.process) =
      let shadowed = List.map fst p.params in
      let live =
        List.filter (fun (x, _) -> not (List.mem x shadowed)) bindings
      in
      { p with Ast.body = Ast.subst live p.body }
    in
    {
      spec with
      Ast.processes = List.map subst_process spec.Ast.processes;
      init = Ast.subst bindings spec.Ast.init;
    }
  end

let run parse text =
  try
    let lex = Lex.make ~symbols text in
    let result = parse lex in
    (match Lex.peek lex with
     | Lex.Eof -> ()
     | _ -> Lex.error lex "trailing input");
    result
  with Lex.Lex_error msg -> raise (Parse_error msg)

let parse_expr_from = parse_expr
let parse_sum_from = parse_sum
let parse_ty_from = parse_ty

(* Located variants keep the [Ast.At] line annotations (for Mv_lint
   and for typechecking with line numbers); the historical entry
   points strip them, so downstream consumers — in particular the
   state-term equality of exploration — see location-free terms. *)

let spec_of_string_located text = run parse_spec text

let behavior_of_string_located text = run parse_behavior text

let spec_of_string text = Ast.strip_locs_spec (spec_of_string_located text)

let behavior_of_string text = Ast.strip_locs (behavior_of_string_located text)

let expr_of_string text = run parse_expr text

let spec_of_string_checked text =
  let located = Typecheck.resolve_spec (spec_of_string_located text) in
  Typecheck.check_spec located;
  Ast.strip_locs_spec located
