module Explore = Mv_lts.Explore

type outcome = {
  lts : Mv_lts.Lts.t;
  terms : Ast.behavior array;
  truncated : bool;
}

module Term_state = struct
  type t = Ast.behavior

  let equal = ( = )

  (* [Hashtbl.hash] only examines a bounded number of nodes, so the
     states of a large composition (which differ deep inside the term)
     would all collide and degenerate the state table to linear
     probing. Hashing the marshalled representation covers the whole
     term at linear cost. *)
  let hash t = Hashtbl.hash (Marshal.to_string t [ Marshal.No_sharing ])
end

module Term_explore = Explore.Make (Term_state)

let successors spec behavior =
  List.map
    (fun (label, next) -> (Semantics.label_string label, Ast.normalize next))
    (Semantics.moves spec behavior)

let generate ?pool ?tick ?(max_states = 1_000_000) ?expect spec =
  let result =
    Term_explore.run ?pool ?tick ~max_states ~on_truncate:`Raise ?expect
      ~initial:(Ast.normalize spec.Ast.init)
      ~successors:(successors spec) ()
  in
  { lts = result.Explore.lts;
    terms = result.Explore.states;
    truncated = result.Explore.truncated }

let lts ?pool ?tick ?max_states ?expect spec =
  (generate ?pool ?tick ?max_states ?expect spec).lts

let generate_ooc ?tick ?(max_states = 1_000_000) ?expect ?hot_budget_bytes
    ~scratch_dir ~labels ~emit spec =
  Term_explore.run_ooc ?tick ~max_states ~on_truncate:`Raise ?expect
    ?hot_budget_bytes ~scratch_dir ~labels ~emit
    ~initial:(Ast.normalize spec.Ast.init)
    ~successors:(successors spec) ()

let first_deadlock ?(max_states = 1_000_000) spec =
  let module Table = Hashtbl.Make (Term_state) in
  let seen = Table.create 1024 in
  let queue = Queue.create () in
  let initial = Ast.normalize spec.Ast.init in
  Table.replace seen initial ();
  Queue.add (initial, []) queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let term, trace_rev = Queue.pop queue in
       let moves = Semantics.moves spec term in
       if moves = [] then begin
         result := Some (List.rev trace_rev);
         raise Exit
       end;
       List.iter
         (fun (label, next) ->
            let next = Ast.normalize next in
            if not (Table.mem seen next) then begin
              if Table.length seen >= max_states then
                raise (Mv_lts.Explore.Too_many_states max_states);
              Table.replace seen next ();
              Queue.add (next, Semantics.label_string label :: trace_rev) queue
            end)
         moves
     done
   with Exit -> ());
  !result
