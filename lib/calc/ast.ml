type offer = Send of Expr.t | Receive of string * Ty.t

type sync = Gates of string list | All

type behavior =
  | Stop
  | Exit of Expr.t list
  | Prefix of action * behavior
  | Rate of float * behavior
  | Choice of behavior list
  | Guard of Expr.t * behavior
  | Par of sync * behavior * behavior
  | Hide of string list * behavior
  | Rename of (string * string) list * behavior
  | Seq of behavior * (string * Ty.t) list * behavior
  | Call of string * string list * Expr.t list
  | At of int * behavior

and action = { gate : string; offers : offer list }

type process = {
  proc_name : string;
  gates : string list;
  params : (string * Ty.t) list;
  body : behavior;
}

type spec = { enums : Ty.enums; processes : process list; init : behavior }

let find_process spec name =
  List.find_opt (fun p -> String.equal p.proc_name name) spec.processes

let tau_gate = "i"
let exit_label = "exit"

(* [At] nodes are pure source annotations: every semantic traversal
   treats [At (_, b)] as [b]. They are stripped before exploration so
   that state terms reached through different source lines still
   converge. *)
let rec strip_locs b =
  match b with
  | At (_, k) -> strip_locs k
  | Stop | Exit _ -> b
  | Prefix (a, k) -> Prefix (a, strip_locs k)
  | Rate (r, k) -> Rate (r, strip_locs k)
  | Choice bs -> Choice (List.map strip_locs bs)
  | Guard (e, k) -> Guard (e, strip_locs k)
  | Par (s, x, y) -> Par (s, strip_locs x, strip_locs y)
  | Hide (gs, k) -> Hide (gs, strip_locs k)
  | Rename (rs, k) -> Rename (rs, strip_locs k)
  | Seq (x, accepts, y) -> Seq (strip_locs x, accepts, strip_locs y)
  | Call _ -> b

let strip_locs_spec spec =
  {
    spec with
    processes =
      List.map (fun p -> { p with body = strip_locs p.body }) spec.processes;
    init = strip_locs spec.init;
  }

(* Outermost annotation, if any. *)
let loc_of = function At (line, _) -> Some line | _ -> None

(* Peel the outer [At] wrappers (the immediate constructor underneath
   is the interesting one for analyses that dispatch on shape). *)
let rec skip_locs = function At (_, k) -> skip_locs k | b -> b

let rec subst bindings b =
  if bindings = [] then b
  else
    match b with
    | Stop -> b
    | Exit es -> Exit (List.map (Expr.subst bindings) es)
    | Prefix (a, k) ->
      let offers = List.map (subst_offer bindings) a.offers in
      (* Receive binders shadow outer bindings in the continuation *)
      let bound =
        List.filter_map
          (function Receive (x, _) -> Some x | Send _ -> None)
          a.offers
      in
      let inner = List.filter (fun (x, _) -> not (List.mem x bound)) bindings in
      Prefix ({ a with offers }, subst inner k)
    | Rate (r, k) -> Rate (r, subst bindings k)
    | Choice bs -> Choice (List.map (subst bindings) bs)
    | Guard (e, k) -> Guard (Expr.subst bindings e, subst bindings k)
    | Par (s, x, y) -> Par (s, subst bindings x, subst bindings y)
    | Hide (gs, k) -> Hide (gs, subst bindings k)
    | Rename (rs, k) -> Rename (rs, subst bindings k)
    | Seq (x, accepts, y) ->
      let bound = List.map fst accepts in
      let inner = List.filter (fun (v, _) -> not (List.mem v bound)) bindings in
      Seq (subst bindings x, accepts, subst inner y)
    | Call (p, gate_args, args) ->
      Call (p, gate_args, List.map (Expr.subst bindings) args)
    | At (line, k) -> At (line, subst bindings k)

and subst_offer bindings = function
  | Send e -> Send (Expr.subst bindings e)
  | Receive _ as o -> o

let normalize_expr e =
  if Expr.free_vars e = [] then
    match Expr.eval e with
    | v -> Expr.Const v
    | exception Expr.Eval_error _ -> e
  else e

let rec normalize b =
  match b with
  | Stop -> b
  | Exit es -> Exit (List.map normalize_expr es)
  | Prefix (a, k) ->
    let offers =
      List.map
        (function
          | Send e -> Send (normalize_expr e)
          | Receive _ as o -> o)
        a.offers
    in
    Prefix ({ a with offers }, normalize k)
  | Rate (r, k) -> Rate (r, normalize k)
  | Choice bs -> Choice (List.map normalize bs)
  | Guard (e, k) -> Guard (normalize_expr e, normalize k)
  | Par (s, x, y) -> Par (s, normalize x, normalize y)
  | Hide (gs, k) -> Hide (gs, normalize k)
  | Rename (rs, k) -> Rename (rs, normalize k)
  | Seq (x, accepts, y) -> Seq (normalize x, accepts, normalize y)
  | Call (p, gate_args, args) -> Call (p, gate_args, List.map normalize_expr args)
  | At (_, k) -> normalize k

(* Gate substitution. [hide] binds: substitution of a hidden name stops
   underneath, and a hidden gate is renamed apart when some actual gate
   of the substitution would be captured by it. The renaming appends
   primes deterministically (never a global counter: state terms must
   converge under repeated unfolding or exploration would diverge). *)
let rec subst_gates map b =
  if map = [] then b
  else
    let apply g = match List.assoc_opt g map with Some g' -> g' | None -> g in
    match b with
    | Stop | Exit _ -> b
    | Prefix (a, k) ->
      Prefix ({ a with gate = apply a.gate }, subst_gates map k)
    | Rate (r, k) -> Rate (r, subst_gates map k)
    | Choice bs -> Choice (List.map (subst_gates map) bs)
    | Guard (e, k) -> Guard (e, subst_gates map k)
    | Par (s, x, y) ->
      let s' =
        match s with Gates gs -> Gates (List.map apply gs) | All -> All
      in
      Par (s', subst_gates map x, subst_gates map y)
    | Hide (gs, k) ->
      let live = List.filter (fun (formal, _) -> not (List.mem formal gs)) map in
      let captured =
        List.filter (fun g -> List.exists (fun (_, actual) -> actual = g) live) gs
      in
      if captured = [] then Hide (gs, subst_gates live k)
      else begin
        (* rename the capturing hidden gates apart first *)
        let actuals = List.map snd live in
        let rec prime g =
          let candidate = g ^ "'" in
          if List.mem candidate actuals || List.mem candidate gs then
            prime candidate
          else candidate
        in
        let renaming = List.map (fun g -> (g, prime g)) captured in
        let gs' =
          List.map
            (fun g -> match List.assoc_opt g renaming with
               | Some g' -> g'
               | None -> g)
            gs
        in
        Hide (gs', subst_gates live (subst_gates renaming k))
      end
    | Rename (pairs, k) ->
      Rename
        (List.map (fun (old_gate, new_gate) -> (apply old_gate, apply new_gate)) pairs,
         subst_gates map k)
    | Seq (x, accepts, y) -> Seq (subst_gates map x, accepts, subst_gates map y)
    | Call (p, gate_args, args) -> Call (p, List.map apply gate_args, args)
    | At (line, k) -> At (line, subst_gates map k)

let act gate offers k = Prefix ({ gate; offers }, k)
let vint n = Expr.Const (Value.VInt n)
let vbool b = Expr.Const (Value.VBool b)
let venum c = Expr.Const (Value.VEnum c)
let var x = Expr.Var x

let choice bs =
  let rec flatten acc = function
    | [] -> acc
    | Stop :: rest | At (_, Stop) :: rest -> flatten acc rest
    | Choice inner :: rest -> flatten (flatten acc inner) rest
    | b :: rest -> flatten (b :: acc) rest
  in
  match List.rev (flatten [] bs) with
  | [] -> Stop
  | [ b ] -> b
  | bs -> Choice bs

let par gates a b = Par (Gates gates, a, b)

let interleave = function
  | [] -> Exit []
  | b :: rest -> List.fold_left (fun acc x -> Par (Gates [], acc, x)) b rest

let par_all gates = function
  | [] -> Exit []
  | b :: rest -> List.fold_left (fun acc x -> Par (Gates gates, acc, x)) b rest

let pp_gates fmt gates =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    Format.pp_print_string fmt gates

let pp_offer fmt = function
  | Send e -> Format.fprintf fmt " !%a" Expr.pp e
  | Receive (x, ty) -> Format.fprintf fmt " ?%s:%a" x Ty.pp ty

let rec pp_behavior fmt = function
  | At (_, k) -> pp_behavior fmt k
  | Stop -> Format.pp_print_string fmt "stop"
  | Exit [] -> Format.pp_print_string fmt "exit"
  | Exit es ->
    Format.fprintf fmt "exit(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         Expr.pp)
      es
  | Prefix (a, k) ->
    Format.fprintf fmt "(%s%a ; %a)" a.gate
      (fun fmt -> List.iter (pp_offer fmt))
      a.offers pp_behavior k
  | Rate (r, k) -> Format.fprintf fmt "(rate %.12g ; %a)" r pp_behavior k
  | Choice bs ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " [] ")
         pp_behavior)
      bs
  | Guard (e, k) -> Format.fprintf fmt "([%a] -> %a)" Expr.pp e pp_behavior k
  | Par (Gates [], x, y) ->
    Format.fprintf fmt "(%a ||| %a)" pp_behavior x pp_behavior y
  | Par (Gates gs, x, y) ->
    Format.fprintf fmt "(%a |[%a]| %a)" pp_behavior x pp_gates gs pp_behavior y
  | Par (All, x, y) -> Format.fprintf fmt "(%a || %a)" pp_behavior x pp_behavior y
  | Hide (gs, k) -> Format.fprintf fmt "(hide %a in %a)" pp_gates gs pp_behavior k
  | Rename (rs, k) ->
    let pp_pair fmt (old_gate, new_gate) =
      Format.fprintf fmt "%s -> %s" old_gate new_gate
    in
    Format.fprintf fmt "(rename %a in %a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_pair)
      rs pp_behavior k
  | Seq (x, [], y) -> Format.fprintf fmt "(%a >> %a)" pp_behavior x pp_behavior y
  | Seq (x, accepts, y) ->
    let pp_accept fmt (v, ty) = Format.fprintf fmt "%s : %a" v Ty.pp ty in
    Format.fprintf fmt "(%a >> accept %a in %a)" pp_behavior x
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_accept)
      accepts pp_behavior y
  | Call (p, [], []) -> Format.pp_print_string fmt p
  | Call (p, gate_args, args) ->
    Format.pp_print_string fmt p;
    if gate_args <> [] then Format.fprintf fmt "[%a]" pp_gates gate_args;
    if args <> [] then
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Expr.pp)
        args

let pp_spec fmt spec =
  List.iter
    (fun (name, constructors) ->
       Format.fprintf fmt "type %s = { %s }@." name
         (String.concat ", " constructors))
    spec.enums;
  List.iter
    (fun p ->
       Format.fprintf fmt "process %s" p.proc_name;
       if p.gates <> [] then Format.fprintf fmt " [%a]" pp_gates p.gates;
       if p.params <> [] then begin
         let pp_param fmt (x, ty) = Format.fprintf fmt "%s : %a" x Ty.pp ty in
         Format.fprintf fmt " (%a)"
           (Format.pp_print_list
              ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
              pp_param)
           p.params
       end;
       Format.fprintf fmt " :=@.  %a@." pp_behavior p.body)
    spec.processes;
  Format.fprintf fmt "init %a@." pp_behavior spec.init

let spec_to_string spec = Format.asprintf "%a" pp_spec spec
