(** Abstract syntax of MVL behaviours and specifications.

    MVL is the LOTOS-like modeling language of the flow: multiway
    rendezvous on gates with value offers, guarded choice, parallel
    composition over a synchronization set, hiding, renaming,
    sequential composition through successful termination, process
    instantiation with data parameters, and a Markovian delay prefix
    ([rate lambda]) used to decorate functional models with stochastic
    timing. *)

type offer =
  | Send of Expr.t (** [!e] *)
  | Receive of string * Ty.t (** [?x:T] — expanded over the finite domain *)

type sync =
  | Gates of string list (** [|\[g1,...\]|]; [Gates \[\]] is pure interleaving *)
  | All (** [||]: synchronize on every visible gate *)

type behavior =
  | Stop
  | Exit of Expr.t list
      (** successful termination, optionally passing values
          ([exit] / [exit(e1, ...)]; emits the [exit] action) *)
  | Prefix of action * behavior (** [g !e ?x:T ; B] *)
  | Rate of float * behavior (** Markovian delay, then [B] *)
  | Choice of behavior list
  | Guard of Expr.t * behavior (** [\[e\] -> B] *)
  | Par of sync * behavior * behavior
  | Hide of string list * behavior
  | Rename of (string * string) list * behavior (** [(old, new)] pairs *)
  | Seq of behavior * (string * Ty.t) list * behavior
      (** [B1 >> accept x : ty, ... in B2]: on termination of [B1] its
          exit values are bound to the accept variables (the exit
          itself becomes tau) *)
  | Call of string * string list * Expr.t list
      (** [P \[g1,...\](e1,...)]: process instantiation with actual
          gates and value arguments *)
  | At of int * behavior
      (** source-line annotation (1-based), produced by the located
          parser entry points and consumed by diagnostics; semantically
          transparent and stripped before exploration *)

and action = { gate : string; offers : offer list }

type process = {
  proc_name : string;
  gates : string list; (** formal gate parameters (may be empty) *)
  params : (string * Ty.t) list;
  body : behavior;
}

type spec = {
  enums : Ty.enums;
  processes : process list;
  init : behavior;
}

(** [find_process spec name]. *)
val find_process : spec -> string -> process option

(** [subst bindings b] replaces free data variables by constants,
    respecting [Receive] binders. *)
val subst : (string * Value.t) list -> behavior -> behavior

(** [subst_gates map b] replaces gate names ([(formal, actual)] pairs):
    action gates, synchronization sets, hide/rename lists and call gate
    arguments. Gates bound by [hide] shadow the substitution; hidden
    gates are alpha-renamed when an actual name would be captured. *)
val subst_gates : (string * string) list -> behavior -> behavior

(** [normalize b] evaluates every closed expression in [b] to a
    constant (expressions that fail to evaluate are kept as-is, so
    runtime errors still surface during exploration). Exploration
    normalizes every state term: without it, [Queue(1 - 1)] and
    [Queue(0)] would be distinct states. *)
val normalize : behavior -> behavior

(** {1 Source locations}

    [At] nodes only carry line information for diagnostics. Every
    semantic operation treats them as transparent, and exploration
    strips them ({!normalize} does too) so that state terms reached
    through different source lines still converge. *)

(** Remove every [At] node. *)
val strip_locs : behavior -> behavior

(** {!strip_locs} over all process bodies and the init behaviour. *)
val strip_locs_spec : spec -> spec

(** Line of the outermost [At] annotation, if any. *)
val loc_of : behavior -> int option

(** Peel outer [At] wrappers only (to dispatch on the real shape). *)
val skip_locs : behavior -> behavior

(** Gate named ["i"]: an internal-action prefix. *)
val tau_gate : string

(** The distinguished label of successful termination. *)
val exit_label : string

(** {1 Construction helpers}

    Combinators used by the embedded models (case studies, tests). *)

(** [act gate offers b] is [Prefix ({gate; offers}, b)]. *)
val act : string -> offer list -> behavior -> behavior

(** [send e] is [Send e] on a literal value. *)
val vint : int -> Expr.t

val vbool : bool -> Expr.t
val venum : string -> Expr.t
val var : string -> Expr.t

(** [choice bs] flattens nested choices and drops [Stop] branches
    (neutral element). [choice \[\]] is [Stop]. *)
val choice : behavior list -> behavior

(** [par gates a b] synchronizes [a] and [b] on [gates]. *)
val par : string list -> behavior -> behavior -> behavior

(** [interleave bs] composes all behaviours with no synchronization. *)
val interleave : behavior list -> behavior

(** [par_all gates bs] left-associates [par gates] over [bs]. *)
val par_all : string list -> behavior list -> behavior

val pp_behavior : Format.formatter -> behavior -> unit

(** Print a complete specification in parseable MVL concrete syntax
    (types, processes, init). *)
val pp_spec : Format.formatter -> spec -> unit

val spec_to_string : spec -> string
