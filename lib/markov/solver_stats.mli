(** Outcome of an iterative solve.

    Every iterative Markov solver returns one of these next to its
    vector instead of discarding the information: how many sweeps ran,
    the final residual (max component change of the last sweep), and
    whether the stopping tolerance was reached before the iteration
    budget ran out. Callers such as [mval solve] use [converged] to
    warn rather than silently print a stale vector. *)

type t = {
  iterations : int;
  residual : float; (** max component change in the final sweep *)
  converged : bool; (** residual reached the tolerance in budget *)
}

(** A direct (non-iterative) or trivially small solve: zero
    iterations, zero residual, converged. *)
val exact : t

(** Aggregate the stats of independent sub-solves (e.g. one per BSCC):
    iterations add up, residuals take the max, convergence is the
    conjunction. *)
val combine : t -> t -> t

val pp : Format.formatter -> t -> unit
