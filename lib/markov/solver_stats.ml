type t = { iterations : int; residual : float; converged : bool }

let exact = { iterations = 0; residual = 0.0; converged = true }

let combine a b =
  {
    iterations = a.iterations + b.iterations;
    residual = max a.residual b.residual;
    converged = a.converged && b.converged;
  }

let pp fmt s =
  Format.fprintf fmt "%d iteration(s), residual %g%s" s.iterations s.residual
    (if s.converged then "" else " (NOT converged)")
