(** Small dense linear algebra: exact solves used to cross-check the
    iterative Markov solvers.

    Gauss-Seidel is the production path (it scales and is what the
    CADP-era tools use); the dense LU solve here is the oracle the
    property tests compare it against, and a fallback for small
    ill-conditioned chains. *)

exception Singular

(** The stats record the iterative solvers ({!Ctmc.steady_state_stats},
    {!Dtmc.steady_state_stats}) return — re-exported here (equal to
    {!Solver_stats.t}) so numerical callers need one import. *)
type iter_stats = Solver_stats.t = {
  iterations : int;
  residual : float;
  converged : bool;
}

(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. [a] is square, row-major, and is {e not} modified.
    Raises {!Singular} when no pivot exceeds [1e-12]. *)
val solve : float array array -> float array -> float array

(** [steady_state_exact ctmc] — the stationary distribution of an
    {e irreducible} CTMC by a direct solve of the balance equations
    (one equation replaced by normalization). Raises
    [Invalid_argument] when the chain is reducible or has more than
    [2_000] states. *)
val steady_state_exact : Ctmc.t -> float array
