type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array;
  values : float array;
  mutable transposed : t option;
      (* cache for pooled [mul_left]; built lazily by the calling
         domain, then only read (the CSR arrays are immutable) *)
}

let of_triples ~rows ~cols entries =
  let compare_entry (r1, c1, _) (r2, c2, _) =
    match compare r1 r2 with 0 -> compare c1 c2 | c -> c
  in
  let sorted = List.sort compare_entry entries in
  (* merge duplicates *)
  let merged = ref [] in
  List.iter
    (fun (r, c, v) ->
       if r < 0 || r >= rows || c < 0 || c >= cols then
         invalid_arg "Sparse.of_triples: index out of range";
       match !merged with
       | (r', c', v') :: rest when r' = r && c' = c ->
         merged := (r, c, v +. v') :: rest
       | _ -> merged := (r, c, v) :: !merged)
    sorted;
  let entries = List.rev !merged in
  let n = List.length entries in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make (max n 1) 0 in
  let values = Array.make (max n 1) 0.0 in
  List.iteri
    (fun i (r, c, v) ->
       row_ptr.(r + 1) <- row_ptr.(r + 1) + 1;
       col_idx.(i) <- c;
       values.(i) <- v)
    entries;
  for r = 1 to rows do
    row_ptr.(r) <- row_ptr.(r) + row_ptr.(r - 1)
  done;
  { rows; cols; row_ptr; col_idx; values; transposed = None }

let rows m = m.rows
let cols m = m.cols
let nb_entries m = m.row_ptr.(m.rows)

let get m i j =
  let rec search lo hi =
    if lo >= hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      if m.col_idx.(mid) = j then m.values.(mid)
      else if m.col_idx.(mid) < j then search (mid + 1) hi
      else search lo mid
  in
  search m.row_ptr.(i) m.row_ptr.(i + 1)

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

(* One output row as a dot product, accumulating left-to-right in
   column order. Shared by the sequential and pooled paths of
   [mul_right] so both sum in the same order (bitwise equality). *)
let dot_row m x i =
  let acc = ref 0.0 in
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
  done;
  !acc

let mul_right ?pool m x =
  if Array.length x <> m.cols then invalid_arg "Sparse.mul_right";
  let y = Array.make m.rows 0.0 in
  (match pool with
   | Some pool when Mv_par.Pool.size pool > 1 && m.rows > 64 ->
     Mv_par.Pool.for_ ~pool ~lo:0 ~hi:m.rows (fun i ->
         y.(i) <- dot_row m x i)
   | _ ->
     for i = 0 to m.rows - 1 do
       y.(i) <- dot_row m x i
     done);
  y

let transpose m =
  let entries = ref [] in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      entries := (m.col_idx.(k), i, m.values.(k)) :: !entries
    done
  done;
  of_triples ~rows:m.cols ~cols:m.rows !entries

let transposed m =
  match m.transposed with
  | Some t -> t
  | None ->
    let t = transpose m in
    m.transposed <- Some t;
    t

(* The pooled path computes [y.(j)] as the dot product of column [j]
   (a row of the cached transpose, whose entries are sorted by source
   row) with [x]. The sequential path scatters rows in ascending
   order, so each [y.(j)] also accumulates its contributions in
   ascending source-row order: both paths perform the same additions
   in the same order and the results are bit-identical (the sequential
   [xi <> 0.0] skip only elides exact [+. 0.0] no-ops). *)
let mul_left ?pool m x =
  if Array.length x <> m.rows then invalid_arg "Sparse.mul_left";
  match pool with
  | Some pool when Mv_par.Pool.size pool > 1 && m.cols > 64 ->
    let mt = transposed m in
    let y = Array.make m.cols 0.0 in
    Mv_par.Pool.for_ ~pool ~lo:0 ~hi:m.cols (fun j ->
        y.(j) <- dot_row mt x j);
    y
  | _ ->
    let y = Array.make m.cols 0.0 in
    for i = 0 to m.rows - 1 do
      let xi = x.(i) in
      if xi <> 0.0 then
        for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
          y.(m.col_idx.(k)) <- y.(m.col_idx.(k)) +. (xi *. m.values.(k))
        done
    done;
    y

let row_sums m =
  let sums = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      sums.(i) <- sums.(i) +. m.values.(k)
    done
  done;
  sums

let scale m c =
  { m with values = Array.map (fun v -> v *. c) m.values; transposed = None }
