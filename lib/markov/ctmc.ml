module Bitset = Mv_util.Bitset
module Obs = Mv_obs.Obs
module Solver = Mv_kern.Solver

type transition = {
  src : int;
  rate : float;
  actions : string list;
  dst : int;
}

type t = {
  nb_states : int;
  initial : int;
  transitions : transition array; (* sorted by src *)
  row : int array;
}

let make ~nb_states ~initial transitions =
  if initial < 0 || initial >= nb_states then invalid_arg "Ctmc.make: initial";
  List.iter
    (fun tr ->
       if tr.rate <= 0.0 then invalid_arg "Ctmc.make: rate must be positive";
       if tr.src < 0 || tr.src >= nb_states || tr.dst < 0 || tr.dst >= nb_states
       then invalid_arg "Ctmc.make: state out of range")
    transitions;
  let transitions =
    Array.of_list (List.sort (fun a b -> compare a.src b.src) transitions)
  in
  let row = Array.make (nb_states + 1) 0 in
  Array.iter (fun tr -> row.(tr.src + 1) <- row.(tr.src + 1) + 1) transitions;
  for s = 1 to nb_states do
    row.(s) <- row.(s) + row.(s - 1)
  done;
  { nb_states; initial; transitions; row }

let nb_states t = t.nb_states
let nb_transitions t = Array.length t.transitions
let initial t = t.initial
let iter_transitions t f = Array.iter f t.transitions

let iter_out t s f =
  for i = t.row.(s) to t.row.(s + 1) - 1 do
    f t.transitions.(i)
  done

let exit_rates t =
  let rates = Array.make t.nb_states 0.0 in
  Array.iter
    (fun tr -> if tr.src <> tr.dst then rates.(tr.src) <- rates.(tr.src) +. tr.rate)
    t.transitions;
  rates

let absorbing_states t =
  let rates = exit_rates t in
  let out = ref [] in
  for s = t.nb_states - 1 downto 0 do
    if rates.(s) = 0.0 then out := s :: !out
  done;
  !out

let embedded t =
  let rates = exit_rates t in
  let entries = ref [] in
  Array.iter
    (fun tr ->
       if tr.src <> tr.dst then
         entries := (tr.src, tr.dst, tr.rate /. rates.(tr.src)) :: !entries)
    t.transitions;
  Dtmc.make ~nb_states:t.nb_states ~initial:t.initial !entries

let iter_succ t s f =
  iter_out t s (fun tr -> if tr.dst <> tr.src then f tr.dst)

let bsccs t =
  let scc =
    Mv_lts.Scc.compute ~nb_states:t.nb_states ~iter_succ:(iter_succ t)
  in
  let is_bottom =
    Mv_lts.Scc.bottom ~nb_states:t.nb_states ~iter_succ:(iter_succ t) scc
  in
  let members = Array.make scc.count [] in
  for s = t.nb_states - 1 downto 0 do
    members.(scc.component.(s)) <- s :: members.(scc.component.(s))
  done;
  let out = ref [] in
  for c = scc.count - 1 downto 0 do
    if is_bottom.(c) then out := members.(c) :: !out
  done;
  !out

(* Stationary solve restricted to an irreducible subset:
   pi_j = (sum_{i in subset, i<>j} pi_i q_ij) / E_j.

   The subset is renumbered into a contiguous local system in BFS
   order from its first state (following outgoing transitions inside
   the subset), which keeps the incoming-CSR accesses of neighbouring
   states close together; the actual sweeps are the Mv_kern.Solver
   kernels. Method selection: Gauss-Seidel by default; damped Jacobi
   when a pool of size > 1 is given (the only method whose sweeps
   parallelize — and any pool size gives bit-identical vectors); an
   explicit [method_] overrides both. *)
let steady_state_on_subset t ?pool ?method_ ?(tolerance = 1e-13)
    ?(max_iterations = 200_000) subset =
  match subset with
  | [] -> invalid_arg "Ctmc.steady_state_on_subset: empty"
  | [ s ] ->
    let pi = Array.make t.nb_states 0.0 in
    pi.(s) <- 1.0;
    (pi, Solver_stats.exact)
  | first :: _ ->
    let member = Bitset.of_list t.nb_states subset in
    let size = List.length subset in
    (* BFS renumbering: glob.(j) is the global id of local state j *)
    let glob = Array.make size 0 in
    let loc = Array.make t.nb_states (-1) in
    let visited = ref 0 in
    let visit s =
      if loc.(s) < 0 then begin
        loc.(s) <- !visited;
        glob.(!visited) <- s;
        incr visited
      end
    in
    visit first;
    let head = ref 0 in
    while !head < !visited do
      let s = glob.(!head) in
      incr head;
      iter_out t s (fun tr ->
          if tr.dst <> tr.src && Bitset.mem member tr.dst then visit tr.dst)
    done;
    (* an irreducible subset is fully visited; sweep up the rest for
       safety on callers that pass a non-strongly-connected subset *)
    List.iter visit subset;
    let inside tr =
      tr.src <> tr.dst && Bitset.mem member tr.src && Bitset.mem member tr.dst
    in
    let in_row = Array.make (size + 1) 0 in
    Array.iter
      (fun tr -> if inside tr then in_row.(loc.(tr.dst) + 1) <- in_row.(loc.(tr.dst) + 1) + 1)
      t.transitions;
    for j = 1 to size do
      in_row.(j) <- in_row.(j) + in_row.(j - 1)
    done;
    let nb_in = in_row.(size) in
    let in_src = Array.make (max nb_in 1) 0 in
    let in_rate = Array.make (max nb_in 1) 0.0 in
    let exit = Array.make size 0.0 in
    let fill = Array.copy in_row in
    Array.iter
      (fun tr ->
         if inside tr then begin
           let j = loc.(tr.dst) in
           let i = fill.(j) in
           in_src.(i) <- loc.(tr.src);
           in_rate.(i) <- tr.rate;
           fill.(j) <- i + 1;
           exit.(loc.(tr.src)) <- exit.(loc.(tr.src)) +. tr.rate
         end)
      t.transitions;
    let sys = { Solver.size; in_row; in_src; in_rate; exit } in
    let local = Array.make size (1.0 /. float_of_int size) in
    (* Gauss-Seidel is the default under any pool size: the colored
       sweeps parallelize on their own, so there is no Jacobi fallback
       any more. *)
    let method_ = Option.value method_ ~default:Solver.Gauss_seidel in
    let outcome =
      Solver.run
        (Solver.config ~method_ ~tolerance ~max_sweeps:max_iterations ?pool ())
        sys local
    in
    let iterations = outcome.Solver.sweeps in
    let residual = outcome.Solver.residual in
    let converged = outcome.Solver.converged in
    let pi = Array.make t.nb_states 0.0 in
    for j = 0 to size - 1 do
      pi.(glob.(j)) <- local.(j)
    done;
    (pi, Solver_stats.{ iterations; residual; converged })

(* Probability, from each state, of eventual absorption into a given
   BSCC, via Gauss-Seidel on the embedded chain: a_s = sum p_ss' a_s'. *)
let absorption_probabilities t bscc_list =
  let rates = exit_rates t in
  let n = t.nb_states in
  let in_bscc = Array.make n (-1) in
  List.iteri (fun k members -> List.iter (fun s -> in_bscc.(s) <- k) members)
    bscc_list;
  let k_count = List.length bscc_list in
  let prob = Array.make_matrix k_count n 0.0 in
  List.iteri
    (fun k members -> List.iter (fun s -> prob.(k).(s) <- 1.0) members)
    bscc_list;
  (* iterate on transient states only *)
  let transient = ref [] in
  for s = n - 1 downto 0 do
    if in_bscc.(s) < 0 then transient := s :: !transient
  done;
  let sweep k =
    let delta = ref 0.0 in
    List.iter
      (fun s ->
         if rates.(s) > 0.0 then begin
           let acc = ref 0.0 in
           iter_out t s (fun tr ->
               if tr.dst <> tr.src then
                 acc := !acc +. (tr.rate /. rates.(s) *. prob.(k).(tr.dst)));
           delta := max !delta (abs_float (!acc -. prob.(k).(s)));
           prob.(k).(s) <- !acc
         end)
      !transient;
    !delta
  in
  for k = 0 to k_count - 1 do
    let iteration = ref 0 in
    let delta = ref infinity in
    while !delta > 1e-13 && !iteration < 200_000 do
      delta := sweep k;
      incr iteration
    done
  done;
  prob

let steady_state_stats ?pool ?method_ ?(tolerance = 1e-13)
    ?(max_iterations = 200_000) t =
  Obs.span "ctmc.steady_state" @@ fun () ->
  let bottom = bsccs t in
  match bottom with
  | [] -> assert false (* every finite digraph has a bottom SCC *)
  | [ single ] ->
    steady_state_on_subset t ?pool ?method_ ~tolerance ~max_iterations single
  | _ ->
    let reach = absorption_probabilities t bottom in
    let pi = Array.make t.nb_states 0.0 in
    let stats = ref Solver_stats.exact in
    List.iteri
      (fun k members ->
         let alpha = reach.(k).(t.initial) in
         if alpha > 0.0 then begin
           let local, local_stats =
             steady_state_on_subset t ?pool ?method_ ~tolerance
               ~max_iterations members
           in
           stats := Solver_stats.combine !stats local_stats;
           List.iter (fun s -> pi.(s) <- pi.(s) +. (alpha *. local.(s))) members
         end)
      bottom;
    (pi, !stats)

let steady_state ?pool ?method_ ?tolerance ?max_iterations t =
  fst (steady_state_stats ?pool ?method_ ?tolerance ?max_iterations t)

let uniformization_matrix t =
  let rates = exit_rates t in
  let max_rate = Array.fold_left max 0.0 rates in
  if max_rate = 0.0 then None
  else begin
    let lambda = max_rate *. 1.02 in
    let entries = ref [] in
    Array.iter
      (fun tr ->
         if tr.src <> tr.dst then
           entries := (tr.src, tr.dst, tr.rate /. lambda) :: !entries)
      t.transitions;
    for s = 0 to t.nb_states - 1 do
      let stay = 1.0 -. (rates.(s) /. lambda) in
      if stay > 0.0 then entries := (s, s, stay) :: !entries
    done;
    Some (lambda, Sparse.of_triples ~rows:t.nb_states ~cols:t.nb_states !entries)
  end

let transient ?pool ?(epsilon = 1e-10) t ~horizon =
  if horizon < 0.0 then invalid_arg "Ctmc.transient: negative horizon";
  let point = Array.make t.nb_states 0.0 in
  point.(t.initial) <- 1.0;
  match uniformization_matrix t with
  | None -> point
  | Some (lambda, p) ->
    if horizon = 0.0 then point
    else begin
      let weights = Poisson.weights ~q:(lambda *. horizon) ~epsilon in
      let result = Array.make t.nb_states 0.0 in
      let current = ref point in
      for k = 0 to weights.right do
        if k >= weights.left then begin
          let w = weights.weights.(k - weights.left) in
          Array.iteri
            (fun s v -> result.(s) <- result.(s) +. (w *. v))
            !current
        end;
        if k < weights.right then current := Sparse.mul_left ?pool p !current
      done;
      result
    end

let accumulated_reward ?(tolerance = 1e-12) ?(max_iterations = 500_000) t
    ~reward ~targets =
  let n = t.nb_states in
  let is_target = Bitset.of_list n targets in
  (* backward reachability: which states can reach a target *)
  let preds = Array.make n [] in
  Array.iter
    (fun tr ->
       if tr.src <> tr.dst then preds.(tr.dst) <- tr.src :: preds.(tr.dst))
    t.transitions;
  let can_reach = Bitset.create n in
  let stack = ref targets in
  List.iter (Bitset.add can_reach) targets;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      List.iter
        (fun p ->
           if not (Bitset.mem can_reach p) then begin
             Bitset.add can_reach p;
             stack := p :: !stack
           end)
        preds.(s)
  done;
  let rates = exit_rates t in
  let hitting = Array.make n infinity in
  List.iter (fun s -> hitting.(s) <- 0.0) targets;
  Bitset.iter (fun s -> if not (Bitset.mem is_target s) then hitting.(s) <- 0.0)
    can_reach;
  (* Gauss-Seidel: h_s = 1/E_s + sum (q_sd / E_s) h_d over solvable
     states; a state that can reach targets but has a successor that
     cannot would make the expectation infinite, so treat any
     transition to a non-reaching state as infinite. *)
  let solvable s =
    Bitset.mem can_reach s && not (Bitset.mem is_target s) && rates.(s) > 0.0
  in
  let iteration = ref 0 in
  let delta = ref infinity in
  while !delta > tolerance && !iteration < max_iterations do
    delta := 0.0;
    for s = 0 to n - 1 do
      if solvable s then begin
        let acc = ref (reward s /. rates.(s)) in
        let infinite = ref false in
        iter_out t s (fun tr ->
            if tr.dst <> tr.src then begin
              if Bitset.mem can_reach tr.dst then
                acc := !acc +. (tr.rate /. rates.(s) *. hitting.(tr.dst))
              else infinite := true
            end);
        let updated = if !infinite then infinity else !acc in
        let change =
          if updated = infinity && hitting.(s) = infinity then 0.0
          else if updated = infinity || hitting.(s) = infinity then infinity
          else abs_float (updated -. hitting.(s))
        in
        delta := max !delta change;
        hitting.(s) <- updated
      end
    done;
    incr iteration
  done;
  hitting

let mean_first_passage ?tolerance ?max_iterations t ~targets =
  accumulated_reward ?tolerance ?max_iterations t ~reward:(fun _ -> 1.0)
    ~targets

let reach_probability_by ?(epsilon = 1e-10) t ~targets ~horizon =
  let is_target = Bitset.of_list t.nb_states targets in
  let trimmed =
    Array.to_list t.transitions
    |> List.filter (fun tr -> not (Bitset.mem is_target tr.src))
  in
  let absorbed = make ~nb_states:t.nb_states ~initial:t.initial trimmed in
  let dist = transient ~epsilon absorbed ~horizon in
  List.fold_left (fun acc s -> acc +. dist.(s)) 0.0 targets

let throughput t ~pi ~action =
  let total = ref 0.0 in
  Array.iter
    (fun tr ->
       List.iter
         (fun a -> if a = action then total := !total +. (pi.(tr.src) *. tr.rate))
         tr.actions)
    t.transitions;
  !total

let throughputs t ~pi =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun tr ->
       List.iter
         (fun a ->
            let current = Option.value ~default:0.0 (Hashtbl.find_opt table a) in
            Hashtbl.replace table a (current +. (pi.(tr.src) *. tr.rate)))
         tr.actions)
    t.transitions;
  Hashtbl.fold (fun a v acc -> (a, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let expected_reward t ~pi reward =
  let total = ref 0.0 in
  for s = 0 to t.nb_states - 1 do
    total := !total +. (pi.(s) *. reward s)
  done;
  !total

let pp fmt t =
  Format.fprintf fmt "ctmc: %d states, %d transitions, initial %d" t.nb_states
    (nb_transitions t) t.initial
