(** Discrete-time Markov chains.

    Thin layer over {!Sparse}: row-stochastic matrix plus an initial
    distribution. Used for embedded jump chains and for tests of the
    numerical core. *)

type t

(** [make ~nb_states ~initial entries] builds a DTMC from probability
    triples [(src, dst, p)]. Rows must sum to 1 within [1e-9] (rows
    summing to 0 are treated as absorbing: a self-loop is added). *)
val make : nb_states:int -> initial:int -> (int * int * float) list -> t

val nb_states : t -> int
val initial : t -> int

(** Transition matrix. *)
val matrix : t -> Sparse.t

(** [step t dist] propagates a distribution one step. *)
val step : t -> float array -> float array

(** [distribution_after t n] iterates [n] steps from the initial point
    distribution. *)
val distribution_after : t -> int -> float array

(** Long-run distribution by Gauss-Seidel sweeps (requires the chain
    restricted to its recurrent class to be irreducible; for general
    chains use the CTMC layer which performs BSCC analysis).
    @param tolerance convergence threshold on the max component change
    (default [1e-12])
    @param max_iterations default [200_000] *)
val steady_state : ?tolerance:float -> ?max_iterations:int -> t -> float array

(** Same, plus the solve's {!Solver_stats.t}. *)
val steady_state_stats :
  ?tolerance:float -> ?max_iterations:int -> t -> float array * Solver_stats.t
