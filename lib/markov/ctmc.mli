(** Continuous-time Markov chains with action-tagged transitions.

    This is the back end of the performance-evaluation flow: an IMC
    whose interactive behaviour has been closed becomes a CTMC whose
    transitions may carry the visible action labels crossed during the
    closure, so that {e transition throughputs} (the quantity reported
    by the paper's flow) can be attributed to actions.

    Self-loop transitions are legal: they do not influence the
    probability distribution but do contribute to action throughputs. *)

type transition = {
  src : int;
  rate : float; (** strictly positive *)
  actions : string list; (** visible actions attributed to this move *)
  dst : int;
}

type t

(** [make ~nb_states ~initial transitions] — rates must be positive.
    Parallel transitions are kept separate (their action tags differ in
    general). *)
val make : nb_states:int -> initial:int -> transition list -> t

val nb_states : t -> int
val nb_transitions : t -> int
val initial : t -> int
val iter_transitions : t -> (transition -> unit) -> unit

(** [exit_rates t] — total rate out of each state. Self-loop
    transitions are excluded: re-entering the same state leaves the
    sojourn-time distribution unchanged, so self-loops contribute to
    action throughputs but never to exit rates. *)
val exit_rates : t -> float array

(** States with no outgoing non-self transition. *)
val absorbing_states : t -> int list

(** Embedded jump chain (absorbing states get a self-loop). *)
val embedded : t -> Dtmc.t

(** {1 Bottom strongly connected components} *)

(** [bsccs t] lists the BSCCs of the underlying digraph (self-loops
    ignored); singleton absorbing states are BSCCs. *)
val bsccs : t -> int list list

(** {1 Steady-state analysis}

    General chains are handled by BSCC decomposition: the steady-state
    vector is the mixture of per-BSCC stationary distributions weighted
    by the probability of absorption into each BSCC from the initial
    state.

    Each BSCC is renumbered in BFS order into a contiguous CSR system
    and solved by the {!Mv_kern.Solver} kernels. [method_] selects the
    iteration: Gauss-Seidel (the default — fewest iterations),
    [Sor omega], or damped Jacobi. Without an explicit [method_], a
    [pool] of size [> 1] selects Jacobi for every large-enough BSCC —
    the only method whose sweeps parallelize; the result is then
    deterministic for any pool size (bit-identical vectors) and agrees
    with the sequential methods to within the iteration tolerance. *)

val steady_state :
  ?pool:Mv_par.Pool.t ->
  ?method_:Mv_kern.Solver.method_ ->
  ?tolerance:float ->
  ?max_iterations:int ->
  t ->
  float array

(** Same, plus the solve's {!Solver_stats.t} (sub-solves over multiple
    BSCCs are {!Solver_stats.combine}d). *)
val steady_state_stats :
  ?pool:Mv_par.Pool.t ->
  ?method_:Mv_kern.Solver.method_ ->
  ?tolerance:float ->
  ?max_iterations:int ->
  t ->
  float array * Solver_stats.t

(** {1 Transient analysis} *)

(** [transient t ~horizon] is the state distribution at time [horizon],
    by uniformization. [epsilon] bounds the truncation error (default
    [1e-10]). Under [pool] the per-step products run in parallel and
    are bit-identical to the sequential ones (see
    {!Sparse.mul_left}). *)
val transient :
  ?pool:Mv_par.Pool.t -> ?epsilon:float -> t -> horizon:float -> float array

(** {1 First-passage analysis} *)

(** [mean_first_passage t ~targets] gives, for every state, the
    expected time to first reach [targets] (list of states). States
    that cannot reach the targets get [infinity]; target states get
    [0]. *)
val mean_first_passage :
  ?tolerance:float -> ?max_iterations:int -> t -> targets:int list -> float array

(** [reach_probability_by t ~targets ~horizon] is the probability of
    having entered [targets] by time [horizon], starting from the
    initial state (targets are made absorbing). *)
val reach_probability_by :
  ?epsilon:float -> t -> targets:int list -> horizon:float -> float

(** [accumulated_reward t ~reward ~targets] gives, for every state,
    the expected reward accumulated at rate [reward s] per time unit
    until first reaching [targets] ([infinity] when the targets may
    never be reached). [mean_first_passage] is the special case
    [reward = fun _ -> 1.0]. *)
val accumulated_reward :
  ?tolerance:float ->
  ?max_iterations:int ->
  t ->
  reward:(int -> float) ->
  targets:int list ->
  float array

(** {1 Rewards and throughputs} *)

(** [throughput t ~pi ~action] is the long-run occurrence rate of
    [action]: the sum over transitions tagged with it of
    [pi.(src) *. rate] (a tag occurring twice on one transition counts
    twice). *)
val throughput : t -> pi:float array -> action:string -> float

(** All actions with their throughputs, sorted by action name. *)
val throughputs : t -> pi:float array -> (string * float) list

(** [expected_reward t ~pi reward] is [sum_s pi.(s) *. reward s]. *)
val expected_reward : t -> pi:float array -> (int -> float) -> float

val pp : Format.formatter -> t -> unit
