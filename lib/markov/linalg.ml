exception Singular

type iter_stats = Solver_stats.t = {
  iterations : int;
  residual : float;
  converged : bool;
}

let solve a b =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    Array.iter
      (fun row -> if Array.length row <> n then invalid_arg "Linalg.solve: shape")
      a;
    if Array.length b <> n then invalid_arg "Linalg.solve: shape";
    (* working copies *)
    let m = Array.map Array.copy a in
    let x = Array.copy b in
    for col = 0 to n - 1 do
      (* partial pivoting *)
      let pivot = ref col in
      for row = col + 1 to n - 1 do
        if abs_float m.(row).(col) > abs_float m.(!pivot).(col) then pivot := row
      done;
      if abs_float m.(!pivot).(col) < 1e-12 then raise Singular;
      if !pivot <> col then begin
        let tmp = m.(col) in
        m.(col) <- m.(!pivot);
        m.(!pivot) <- tmp;
        let tb = x.(col) in
        x.(col) <- x.(!pivot);
        x.(!pivot) <- tb
      end;
      for row = col + 1 to n - 1 do
        let factor = m.(row).(col) /. m.(col).(col) in
        if factor <> 0.0 then begin
          for k = col to n - 1 do
            m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
          done;
          x.(row) <- x.(row) -. (factor *. x.(col))
        end
      done
    done;
    (* back substitution *)
    for row = n - 1 downto 0 do
      for k = row + 1 to n - 1 do
        x.(row) <- x.(row) -. (m.(row).(k) *. x.(k))
      done;
      x.(row) <- x.(row) /. m.(row).(row)
    done;
    x
  end

let steady_state_exact ctmc =
  let n = Ctmc.nb_states ctmc in
  if n > 2_000 then invalid_arg "Linalg.steady_state_exact: too large";
  (match Ctmc.bsccs ctmc with
   | [ single ] when List.length single = n -> ()
   | _ -> invalid_arg "Linalg.steady_state_exact: chain is not irreducible");
  (* rows of A: columns of the generator (pi Q = 0 transposed), with
     the last equation replaced by sum(pi) = 1 *)
  let a = Array.make_matrix n n 0.0 in
  Ctmc.iter_transitions ctmc (fun tr ->
      if tr.Ctmc.src <> tr.Ctmc.dst then begin
        a.(tr.Ctmc.dst).(tr.Ctmc.src) <- a.(tr.Ctmc.dst).(tr.Ctmc.src) +. tr.Ctmc.rate;
        a.(tr.Ctmc.src).(tr.Ctmc.src) <- a.(tr.Ctmc.src).(tr.Ctmc.src) -. tr.Ctmc.rate
      end);
  let b = Array.make n 0.0 in
  for col = 0 to n - 1 do
    a.(n - 1).(col) <- 1.0
  done;
  b.(n - 1) <- 1.0;
  solve a b
