(** Compressed-sparse-row matrices over floats.

    The Markov solvers only need a handful of operations: building from
    triples, left vector-matrix products (distribution propagation),
    transposition (for Gauss-Seidel sweeps over in-transitions), and row
    iteration. *)

type t

(** [of_triples ~rows ~cols entries] builds a CSR matrix. Duplicate
    coordinates are summed. *)
val of_triples : rows:int -> cols:int -> (int * int * float) list -> t

val rows : t -> int
val cols : t -> int
val nb_entries : t -> int

(** [get m i j] — O(log row size). *)
val get : t -> int -> int -> float

(** [iter_row m i f] applies [f j v] over the entries of row [i] in
    column order. *)
val iter_row : t -> int -> (int -> float -> unit) -> unit

(** [mul_left m x] is the row vector [x·m]. [x] must have length
    [rows m]; the result has length [cols m]. With a [pool] of size
    [> 1] the product is computed in parallel from a cached transpose;
    every entry of the result is bit-identical to the sequential one
    because both paths accumulate each output in ascending source-row
    order. *)
val mul_left : ?pool:Mv_par.Pool.t -> t -> float array -> float array

(** [mul_right m x] is the column vector [m·x]. Row-parallel under
    [pool], bit-identical to the sequential product. *)
val mul_right : ?pool:Mv_par.Pool.t -> t -> float array -> float array

val transpose : t -> t

(** [row_sums m] is the vector of row sums. *)
val row_sums : t -> float array

(** [scale m c] multiplies every entry by [c]. *)
val scale : t -> float -> t
