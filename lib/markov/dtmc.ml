type t = { nb_states : int; initial : int; matrix : Sparse.t }

let make ~nb_states ~initial entries =
  if initial < 0 || initial >= nb_states then invalid_arg "Dtmc.make: initial";
  let matrix = Sparse.of_triples ~rows:nb_states ~cols:nb_states entries in
  let sums = Sparse.row_sums matrix in
  let fixups = ref [] in
  Array.iteri
    (fun i s ->
       if abs_float s < 1e-9 then fixups := (i, i, 1.0) :: !fixups
       else if abs_float (s -. 1.0) > 1e-9 then
         invalid_arg
           (Printf.sprintf "Dtmc.make: row %d sums to %g (expected 1)" i s))
    sums;
  let matrix =
    if !fixups = [] then matrix
    else begin
      let entries = ref !fixups in
      for i = 0 to nb_states - 1 do
        Sparse.iter_row matrix i (fun j v -> entries := (i, j, v) :: !entries)
      done;
      Sparse.of_triples ~rows:nb_states ~cols:nb_states !entries
    end
  in
  { nb_states; initial; matrix }

let nb_states t = t.nb_states
let initial t = t.initial
let matrix t = t.matrix
let step t dist = Sparse.mul_left t.matrix dist

let distribution_after t n =
  let dist = Array.make t.nb_states 0.0 in
  dist.(t.initial) <- 1.0;
  let current = ref dist in
  for _ = 1 to n do
    current := step t !current
  done;
  !current

let steady_state_stats ?(tolerance = 1e-12) ?(max_iterations = 200_000) t =
  (* Gauss-Seidel on pi = pi P, i.e. for each j:
     pi_j = (sum_{i<>j} pi_i p_ij) / (1 - p_jj), renormalized each sweep. *)
  let transposed = Sparse.transpose t.matrix in
  let n = t.nb_states in
  let pi = Array.make n (1.0 /. float_of_int n) in
  let iteration = ref 0 in
  let delta = ref infinity in
  while !delta > tolerance && !iteration < max_iterations do
    delta := 0.0;
    for j = 0 to n - 1 do
      let incoming = ref 0.0 in
      let self = ref 0.0 in
      Sparse.iter_row transposed j (fun i p ->
          if i = j then self := p else incoming := !incoming +. (pi.(i) *. p));
      let denominator = 1.0 -. !self in
      let updated = if denominator <= 1e-15 then pi.(j) else !incoming /. denominator in
      delta := max !delta (abs_float (updated -. pi.(j)));
      pi.(j) <- updated
    done;
    let total = Array.fold_left ( +. ) 0.0 pi in
    if total > 0.0 then Array.iteri (fun j v -> pi.(j) <- v /. total) pi;
    incr iteration
  done;
  ( pi,
    Solver_stats.
      {
        iterations = !iteration;
        residual = !delta;
        converged = !delta <= tolerance;
      } )

let steady_state ?tolerance ?max_iterations t =
  fst (steady_state_stats ?tolerance ?max_iterations t)
