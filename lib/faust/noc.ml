module Net = Mv_compose.Net

let link k = Printf.sprintf "link%d" k

let chain ~length =
  if length < 1 then invalid_arg "Noc.chain: length";
  let router k =
    let id = Printf.sprintf "r%d" k in
    let base = Net.Leaf (id, Router.lts ~id) in
    let renames =
      (if k > 0 then [ (Printf.sprintf "in0_%s" id, link (k - 1)) ] else [])
      @
      if k < length - 1 then [ (Printf.sprintf "out1_%s" id, link k) ] else []
    in
    if renames = [] then base else Net.Rename (renames, base)
  in
  (* each link is hidden as soon as both endpoints are connected, so
     the compositional strategy can collapse it before the next
     product *)
  let rec build acc k =
    if k >= length then acc
    else
      build
        (Net.Hide ([ link (k - 1) ], Net.Par ([ link (k - 1) ], acc, router k)))
        (k + 1)
  in
  build (router 0) 1

let hop_chain_spec ~hops ~inject ~hop_rate ~cross =
  if hops < 1 then invalid_arg "Noc.hop_chain_spec: hops";
  if inject <= 0.0 || hop_rate <= 0.0 then invalid_arg "Noc.hop_chain_spec: rates";
  let buffer = Buffer.create 512 in
  let enter k = Printf.sprintf "enter%d" k in
  let next_gate k = if k = hops - 1 then "deliver" else enter (k + 1) in
  Buffer.add_string buffer
    (Printf.sprintf "process Packet := rate %.12g ; %s ; deliver ; Packet\n"
       inject (enter 0));
  for k = 0 to hops - 1 do
    let serve = Printf.sprintf "%s ; rate %.12g ; %s ; Hop%d" (enter k) hop_rate
        (next_gate k) k
    in
    match cross with
    | None ->
      Buffer.add_string buffer (Printf.sprintf "process Hop%d := %s\n" k serve)
    | Some gamma ->
      Buffer.add_string buffer
        (Printf.sprintf
           "process Hop%d := (%s) [] (xin%d ; rate %.12g ; Hop%d)\n" k serve k
           hop_rate k);
      Buffer.add_string buffer
        (Printf.sprintf "process Cross%d := rate %.12g ; xin%d ; Cross%d\n" k
           gamma k k)
  done;
  (* right-nest the hops: Hop_k |[enter_{k+1}]| (...), each with its
     cross-traffic source when contended *)
  let hop_with_cross k =
    match cross with
    | None -> Printf.sprintf "Hop%d" k
    | Some _ -> Printf.sprintf "(Hop%d |[xin%d]| Cross%d)" k k k
  in
  let rec nest k =
    if k = hops - 1 then hop_with_cross k
    else
      Printf.sprintf "(%s |[%s]| %s)" (hop_with_cross k) (enter (k + 1))
        (nest (k + 1))
  in
  Buffer.add_string buffer
    (Printf.sprintf "init Packet |[%s, deliver]| %s\n" (enter 0) (nest 0));
  Mv_calc.Parser.spec_of_string_checked (Buffer.contents buffer)

let mean_packet_latency ~hops ~inject ~hop_rate ~cross =
  let spec = hop_chain_spec ~hops ~inject ~hop_rate ~cross in
  let perf = Mv_core.Flow.Run.performance
    Mv_core.Flow.Config.(default |> with_keep [ "deliver" ]) spec in
  let throughput = Mv_core.Flow.throughput perf ~gate:"deliver" in
  (1.0 /. throughput) -. (1.0 /. inject)
