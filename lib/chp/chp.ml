module Ast = Mv_calc.Ast
module Expr = Mv_calc.Expr
module Ty = Mv_calc.Ty

type process =
  | Skip
  | Send of string * Expr.t
  | Receive of string * string * Ty.t
  | Seq of process * process
  | Par of process * process
  | Select of (Expr.t * process) list
  | Loop of process

exception Translation_error of string

let rec channels_acc acc = function
  | Skip -> acc
  | Send (c, _) | Receive (c, _, _) -> c :: acc
  | Seq (p, q) | Par (p, q) -> channels_acc (channels_acc acc p) q
  | Select cases ->
    List.fold_left (fun acc (_, p) -> channels_acc acc p) acc cases
  | Loop p -> channels_acc acc p

let channels p = List.sort_uniq compare (channels_acc [] p)

(* Free data variables of a behaviour (used to reject loops that
   capture variables bound outside: an MVL process definition must be
   closed). *)
let rec behavior_free_vars bound acc b =
  match b with
  | Ast.Stop -> acc
  | Ast.Exit es ->
    List.fold_left
      (fun acc e ->
         List.filter (fun x -> not (List.mem x bound)) (Expr.free_vars e) @ acc)
      acc es
  | Ast.Prefix (action, k) ->
    let acc, bound =
      List.fold_left
        (fun (acc, bound) offer ->
           match offer with
           | Ast.Send e ->
             let free =
               List.filter (fun x -> not (List.mem x bound)) (Expr.free_vars e)
             in
             (free @ acc, bound)
           | Ast.Receive (x, _) -> (acc, x :: bound))
        (acc, bound) action.offers
    in
    behavior_free_vars bound acc k
  | Ast.Rate (_, k) -> behavior_free_vars bound acc k
  | Ast.Choice bs -> List.fold_left (behavior_free_vars bound) acc bs
  | Ast.Guard (e, k) ->
    let free = List.filter (fun x -> not (List.mem x bound)) (Expr.free_vars e) in
    behavior_free_vars bound (free @ acc) k
  | Ast.Par (_, x, y) ->
    behavior_free_vars bound (behavior_free_vars bound acc x) y
  | Ast.Seq (x, accepts, y) ->
    let bound' = List.map fst accepts @ bound in
    behavior_free_vars bound' (behavior_free_vars bound acc x) y
  | Ast.Hide (_, k) | Ast.Rename (_, k) | Ast.At (_, k) ->
    behavior_free_vars bound acc k
  | Ast.Call (_, _, args) ->
    List.fold_left
      (fun acc e ->
         List.filter (fun x -> not (List.mem x bound)) (Expr.free_vars e) @ acc)
      acc args

let translate ~prefix p =
  let definitions = ref [] in
  let counter = ref 0 in
  let fresh_name () =
    incr counter;
    Printf.sprintf "%s_loop_%d" prefix !counter
  in
  let rec compile p k =
    match p with
    | Skip -> k
    | Send (c, e) -> Ast.act c [ Ast.Send e ] k
    | Receive (c, x, ty) -> Ast.act c [ Ast.Receive (x, ty) ] k
    | Seq (a, b) -> compile a (compile b k)
    | Par (a, b) ->
      let shared =
        List.filter (fun c -> List.mem c (channels b)) (channels a)
      in
      let inner =
        Ast.Par (Ast.Gates shared, compile a (Ast.Exit []), compile b (Ast.Exit []))
      in
      (match k with
       | Ast.Exit [] -> inner
       | _ -> Ast.Seq (inner, [], k))
    | Select cases ->
      Ast.choice
        (List.map (fun (guard, body) -> Ast.Guard (guard, compile body k)) cases)
    | Loop body ->
      let name = fresh_name () in
      let def_body = compile body (Ast.Call (name, [], [])) in
      let free = behavior_free_vars [] [] def_body in
      if free <> [] then
        raise
          (Translation_error
             (Printf.sprintf
                "loop body captures variables bound outside the loop: %s"
                (String.concat ", " (List.sort_uniq compare free))));
      definitions :=
        { Ast.proc_name = name; gates = []; params = []; body = def_body } :: !definitions;
      (* code after an infinite repetition is unreachable; [k] is
         dropped, as in CHP *)
      Ast.Call (name, [], [])
  in
  let behavior = compile p (Ast.Exit []) in
  (behavior, List.rev !definitions)

let spec ~prefix ?(enums = []) p =
  let init, processes = translate ~prefix p in
  { Ast.enums; processes; init }
