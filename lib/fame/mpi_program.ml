type instruction =
  | Send of { dst : int; size : int }
  | Recv of { src : int; size : int }
  | Barrier
  | Work of float
  | Loop of int * instruction list

type program = instruction list

let channel_gate ~src ~dst = Printf.sprintf "ch_%d_%d" src dst
let deliver_gate ~src ~dst = Printf.sprintf "dv_%d_%d" src dst
let arrive_gate rank = Printf.sprintf "arr%d" rank
let release_gate rank = Printf.sprintf "rel%d" rank

let rec validate ~ranks ~rank = function
  | Send { dst; size } ->
    if dst < 0 || dst >= ranks then invalid_arg "Mpi_program: dst out of range";
    if dst = rank then invalid_arg "Mpi_program: self-send";
    if size < 0 then invalid_arg "Mpi_program: negative size"
  | Recv { src; size } ->
    if src < 0 || src >= ranks then invalid_arg "Mpi_program: src out of range";
    if src = rank then invalid_arg "Mpi_program: self-receive";
    if size < 0 then invalid_arg "Mpi_program: negative size"
  | Barrier -> ()
  | Work mean -> if mean <= 0.0 then invalid_arg "Mpi_program: work mean"
  | Loop (n, body) ->
    if n < 1 then invalid_arg "Mpi_program: loop count";
    List.iter (validate ~ranks ~rank) body

let rec uses_barrier = function
  | [] -> false
  | Barrier :: _ -> true
  | Loop (_, body) :: rest -> uses_barrier body || uses_barrier rest
  | (Send _ | Recv _ | Work _) :: rest -> uses_barrier rest

let rec channels_used ~rank acc = function
  | [] -> acc
  | Send { dst; _ } :: rest -> channels_used ~rank ((rank, dst) :: acc) rest
  | Recv { src; _ } :: rest -> channels_used ~rank ((src, rank) :: acc) rest
  | Loop (_, body) :: rest ->
    channels_used ~rank (channels_used ~rank acc body) rest
  | (Barrier | Work _) :: rest -> channels_used ~rank acc rest

(* one rank's program compiled to MVL text, continuation-passing;
   loops become auxiliary processes with a countdown parameter *)
let xfer_gate ~topology ~rank =
  (* a shared medium (bus, ring) has one transfer server; a crossbar
     gives every sender a dedicated path *)
  if Topology.contended topology then "xfer"
  else Printf.sprintf "xfer%d" rank

let compile_rank ~ranks ~topology ~rank program ~definitions =
  let loop_counter = ref 0 in
  let payload_text ~dst ~size =
    let hops = Numa.hops ~nodes:ranks topology ~src:rank ~dst in
    if hops = 0 || size = 0 then ""
    else
      String.concat ""
        (List.init size (fun _ ->
             Printf.sprintf "%s !%d ; " (xfer_gate ~topology ~rank) hops))
  in
  let rec compile instructions continuation =
    match instructions with
    | [] -> continuation
    | Send { dst; size } :: rest ->
      payload_text ~dst ~size
      ^ channel_gate ~src:rank ~dst
      ^ " ; "
      ^ compile rest continuation
    | Recv { src; _ } :: rest ->
      deliver_gate ~src ~dst:rank ^ " ; " ^ compile rest continuation
    | Barrier :: rest ->
      arrive_gate rank ^ " ; " ^ release_gate rank ^ " ; "
      ^ compile rest continuation
    | Work mean :: rest ->
      Printf.sprintf "rate %.12g ; " (1.0 /. mean) ^ compile rest continuation
    | Loop (n, body) :: rest ->
      incr loop_counter;
      let name = Printf.sprintf "Rank%d_loop%d" rank !loop_counter in
      let exit_branch =
        Printf.sprintf "[c == 0] -> %s" (compile rest continuation)
      in
      let body_text =
        compile body (Printf.sprintf "%s(c - 1)" name)
      in
      definitions :=
        Printf.sprintf "process %s (c : int[0..%d]) :=\n    %s\n [] [c > 0] -> %s\n"
          name n exit_branch body_text
        :: !definitions;
      Printf.sprintf "%s(%d)" name n
  in
  let top_name = Printf.sprintf "Rank%d" rank in
  let tail = if rank = 0 then "round ; " ^ top_name else top_name in
  (* compile first: it pushes the loop definitions this one refers to *)
  let body = compile program tail in
  definitions := Printf.sprintf "process %s := %s\n" top_name body :: !definitions;
  top_name

let spec ~programs topology ~rates =
  let ranks = List.length programs in
  if ranks < 2 || ranks > 4 then invalid_arg "Mpi_program.spec: 2 to 4 ranks";
  List.iteri
    (fun rank program -> List.iter (validate ~ranks ~rank) program)
    programs;
  let definitions = ref [] in
  let rank_names =
    List.mapi
      (fun rank program ->
         compile_rank ~ranks ~topology ~rank program ~definitions)
      programs
  in
  let channels =
    List.sort_uniq compare
      (List.concat
         (List.mapi
            (fun rank program -> channels_used ~rank [] program)
            programs))
  in
  List.iter
    (fun (src, dst) ->
       definitions :=
         Printf.sprintf "process Buf_%d_%d := %s ; %s ; Buf_%d_%d\n" src dst
           (channel_gate ~src ~dst) (deliver_gate ~src ~dst) src dst
         :: !definitions)
    channels;
  let barrier_needed = List.exists uses_barrier programs in
  if barrier_needed then begin
    let joins =
      String.concat " ||| "
        (List.init ranks (fun r -> Printf.sprintf "(%s ; exit)" (arrive_gate r)))
    in
    let releases =
      String.concat " ; " (List.init ranks release_gate) ^ " ; Coord"
    in
    definitions :=
      Printf.sprintf "process Coord := (%s) >> (%s)\n" joins releases
      :: !definitions
  end;
  let max_hops = max 1 (ranks / 2) in
  if Topology.contended topology then begin
    definitions :=
      Printf.sprintf
        {|process Net :=
    xfer ?h:int[1..%d] ; NetServe(h)
 [] bgxfer ; rate %.12g ; Net
process NetServe (h : int[0..%d]) :=
    [h == 0] -> Net
 [] [h > 0] -> rate %.12g ; NetServe(h - 1)
|}
        max_hops rates.Benchmark.xfer_rate max_hops rates.Benchmark.xfer_rate
      :: !definitions;
    definitions :=
      Printf.sprintf "process Bg := rate %.12g ; bgxfer ; Bg\n"
        rates.Benchmark.bg_rate
      :: !definitions
  end
  else
    (* dedicated crossbar links: one gate-parameterized server per rank *)
    definitions :=
      Printf.sprintf
        {|process Net [link] :=
    link ?h:int[1..%d] ; NetServe[link](h)
process NetServe [link] (h : int[0..%d]) :=
    [h == 0] -> Net[link]
 [] [h > 0] -> rate %.12g ; NetServe[link](h - 1)
|}
        max_hops max_hops rates.Benchmark.xfer_rate
      :: !definitions;
  (* composition: ranks interleaved; channel/barrier gates synchronized
     with the buffers and the coordinator; xfer with the interconnect *)
  let rank_composite = String.concat " ||| " rank_names in
  let middle_parts =
    List.map (fun (s, d) -> Printf.sprintf "Buf_%d_%d" s d) channels
    @ (if barrier_needed then [ "Coord" ] else [])
  in
  let sync_gates =
    List.concat_map
      (fun (s, d) -> [ channel_gate ~src:s ~dst:d; deliver_gate ~src:s ~dst:d ])
      channels
    @ (if barrier_needed then
         List.init ranks arrive_gate @ List.init ranks release_gate
       else [])
  in
  let system =
    if middle_parts = [] then Printf.sprintf "(%s)" rank_composite
    else
      Printf.sprintf "((%s) |[%s]| (%s))" rank_composite
        (String.concat ", " sync_gates)
        (String.concat " ||| " middle_parts)
  in
  let net, xfer_sync =
    if Topology.contended topology then ("(Net |[bgxfer]| Bg)", "xfer")
    else
      ( "("
        ^ String.concat " ||| "
            (List.init ranks (fun r -> Printf.sprintf "Net[xfer%d]" r))
        ^ ")",
        String.concat ", " (List.init ranks (fun r -> Printf.sprintf "xfer%d" r))
      )
  in
  let text =
    String.concat "" (List.rev !definitions)
    ^ Printf.sprintf "init %s |[%s]| %s\n" system xfer_sync net
  in
  if Sys.getenv_opt "MV_DEBUG_SPEC" <> None then prerr_endline text;
  Mv_calc.Parser.spec_of_string_checked text

let iteration_latency ~programs topology ~rates =
  let model = spec ~programs topology ~rates in
  let perf = Mv_core.Flow.Run.performance
    Mv_core.Flow.Config.(default |> with_keep [ "round" ]) model in
  1.0 /. Mv_core.Flow.throughput perf ~gate:"round"

(* ---- prebuilt benchmarks ---- *)

let pingpong ~partner ~size =
  if partner < 1 then invalid_arg "Mpi_program.pingpong: partner";
  let ranks = partner + 1 in
  List.init ranks (fun rank ->
      if rank = 0 then
        [ Send { dst = partner; size }; Recv { src = partner; size } ]
      else if rank = partner then
        [ Recv { src = 0; size }; Send { dst = 0; size } ]
      else [ Work 10.0 ] (* intermediate ranks idle (slow local ticking) *))

let simultaneous_ring ~ranks ~size =
  List.init ranks (fun rank ->
      let right = (rank + 1) mod ranks in
      let left = (rank + ranks - 1) mod ranks in
      [ Send { dst = right; size }; Recv { src = left; size } ])

let work_barrier ~ranks ~work_mean =
  List.init ranks (fun _ -> [ Work work_mean; Barrier ])
