type rates = { xfer_rate : float; bg_rate : float; copy_rate : float }

let default_rates = { xfer_rate = 100.0; bg_rate = 40.0; copy_rate = 30.0 }

let spec variant topology implementation ~size ~rates =
  let text =
    Protocol.line_process variant
    ^ Topology.process_text topology ~xfer_rate:rates.xfer_rate
        ~bg_rate:rates.bg_rate
    ^ Mpi.driver_text implementation ~size ~copy_rate:rates.copy_rate
    ^ Printf.sprintf
        "init (Round |[read0, write0, read1, write1]| Line(II)) |[xfer]| %s\n"
        (if Topology.contended topology then "(Net |[bgxfer]| Bg)" else "Net")
  in
  Mv_calc.Parser.spec_of_string_checked text

let round_latency variant topology implementation ~size ~rates =
  let model = spec variant topology implementation ~size ~rates in
  let perf = Mv_core.Flow.Run.performance
    Mv_core.Flow.Config.(default |> with_keep [ "round" ]) model in
  1.0 /. Mv_core.Flow.throughput perf ~gate:"round"

let barrier_latency variant topology ~rates =
  let text =
    Protocol.line_process variant
    ^ Topology.process_text topology ~xfer_rate:rates.xfer_rate
        ~bg_rate:rates.bg_rate
    ^ Mpi.barrier_driver_text ()
    ^ Printf.sprintf
        "init (Round |[read0, write0, read1, write1]| Line(II)) |[xfer]| %s\n"
        (if Topology.contended topology then "(Net |[bgxfer]| Bg)" else "Net")
  in
  let model = Mv_calc.Parser.spec_of_string_checked text in
  let perf = Mv_core.Flow.Run.performance
    Mv_core.Flow.Config.(default |> with_keep [ "round" ]) model in
  1.0 /. Mv_core.Flow.throughput perf ~gate:"round"

let latency_lower_bound variant topology implementation ~size ~rates =
  (* steady-state rounds repeat, so fold the per-round message count
     starting from the steady entry state: run one warmup round *)
  let ops = Mpi.ops_per_round implementation ~size in
  let warm_state =
    List.fold_left
      (fun state op -> fst (Protocol.step variant state op))
      Protocol.II ops
  in
  let steady_messages =
    List.fold_left
      (fun (state, acc) op ->
         let next, m = Protocol.step variant state op in
         (next, acc + m))
      (warm_state, 0) ops
    |> snd
  in
  let hop_time = float_of_int (Topology.hops topology) /. rates.xfer_rate in
  let payload = Mpi.payload_xfers_per_round implementation ~size in
  (float_of_int (steady_messages + payload) *. hop_time)
  +. (float_of_int (Mpi.copies_per_round implementation ~size) /. rates.copy_rate)
