type line_state = { owner : int option; sharers : int }

let initial_state = { owner = None; sharers = 0 }

let home = 0

let bit node = 1 lsl node

let member mask node = mask land bit node <> 0

let check_node ~nodes node =
  if node < 0 || node >= nodes then invalid_arg "Numa: node out of range"

(* Directory-based MSI. Message endpoints, in causal order:
   requester -> home, then home-driven forwards/invalidations, then
   data/acks back to the requester. *)
let step ~nodes state op =
  let node, is_write =
    match op with
    | Protocol.Read node -> (node, false)
    | Protocol.Write node -> (node, true)
  in
  check_node ~nodes node;
  match state.owner, is_write with
  | Some holder, _ when holder = node -> (state, []) (* M hit *)
  | None, false when member state.sharers node -> (state, []) (* S hit *)
  | Some holder, false ->
    (* read miss on a modified line: fetch + owner downgrade *)
    ( { owner = None; sharers = bit holder lor bit node },
      [ (node, home); (home, holder); (holder, node); (holder, home) ] )
  | None, false ->
    (* clean read miss: data from home memory *)
    ( { state with sharers = state.sharers lor bit node },
      [ (node, home); (home, node) ] )
  | Some holder, true ->
    (* write miss on a modified line: ownership transfer *)
    ( { owner = Some node; sharers = bit node },
      [ (node, home); (home, holder); (holder, node); (holder, home) ] )
  | None, true ->
    (* write: invalidate every other sharer, then grant *)
    let other_sharers =
      List.filter
        (fun s -> s <> node && member state.sharers s)
        (List.init nodes Fun.id)
    in
    let invalidations =
      List.concat_map (fun s -> [ (home, s); (s, node) ]) other_sharers
    in
    ( { owner = Some node; sharers = bit node },
      ((node, home) :: invalidations) @ [ (home, node) ] )

let hops ~nodes topology ~src ~dst =
  if src = dst then 0
  else
    match topology with
    | Topology.Bus | Topology.Crossbar -> 1
    | Topology.Ring ->
      let forward = (dst - src + nodes) mod nodes in
      min forward (nodes - forward)

type benchmark = Token_ring | Pair_pingpong of int

let benchmark_name = function
  | Token_ring -> "token ring"
  | Pair_pingpong partner -> Printf.sprintf "ping-pong 0<->%d" partner

let benchmark_ops ~nodes = function
  | Token_ring ->
    (* node i hands the token to i+1: write by i, read by the next *)
    List.concat_map
      (fun i ->
         [ Protocol.Write i; Protocol.Read ((i + 1) mod nodes) ])
      (List.init nodes Fun.id)
  | Pair_pingpong partner ->
    check_node ~nodes partner;
    if partner = 0 then invalid_arg "Numa: partner must differ from node 0";
    [ Protocol.Write 0; Protocol.Read partner; Protocol.Write partner;
      Protocol.Read 0 ]

(* Enumerate the reachable line states under the benchmark's operation
   alphabet and assign dense ids. *)
let enumerate ~nodes ops_alphabet =
  let ids = Hashtbl.create 32 in
  let order = ref [] in
  let next = ref 0 in
  let rec visit state =
    if not (Hashtbl.mem ids state) then begin
      Hashtbl.replace ids state !next;
      incr next;
      order := state :: !order;
      List.iter (fun op -> visit (fst (step ~nodes state op))) ops_alphabet
    end
  in
  visit initial_state;
  (ids, List.rev !order)

let op_gate = function
  | Protocol.Read i -> Printf.sprintf "read%d" i
  | Protocol.Write i -> Printf.sprintf "write%d" i

let spec ~nodes topology benchmark ~rates =
  if nodes < 2 || nodes > 4 then invalid_arg "Numa.spec: 2 to 4 nodes";
  let ops = benchmark_ops ~nodes benchmark in
  let alphabet = List.sort_uniq compare ops in
  let ids, states = enumerate ~nodes alphabet in
  let id_of state = Hashtbl.find ids state in
  let buffer = Buffer.create 4096 in
  let max_state = List.length states - 1 in
  let max_hops = max 1 (nodes / 2) in
  (* the line process: dispatch on the operation gates, then per-state
     branches performing one hop-labelled transfer per message *)
  Buffer.add_string buffer
    (Printf.sprintf "process Line (st : int[0..%d]) :=\n" max_state);
  List.iteri
    (fun i op ->
       Buffer.add_string buffer
         (Printf.sprintf " %s %s ; Do_%s(st)\n"
            (if i = 0 then "  " else "[]")
            (op_gate op) (op_gate op)))
    alphabet;
  List.iter
    (fun op ->
       Buffer.add_string buffer
         (Printf.sprintf "process Do_%s (st : int[0..%d]) :=\n" (op_gate op)
            max_state);
       List.iteri
         (fun i state ->
            let next_state, messages = step ~nodes state op in
            let transfers =
              String.concat ""
                (List.map
                   (fun (src, dst) ->
                      let h = hops ~nodes topology ~src ~dst in
                      if h = 0 then "" else Printf.sprintf "xfer !%d ; " h)
                   messages)
            in
            Buffer.add_string buffer
              (Printf.sprintf " %s [st == %d] -> %sLine(%d)\n"
                 (if i = 0 then "  " else "[]")
                 (id_of state) transfers (id_of next_state)))
         states)
    alphabet;
  (* hop-aware interconnect *)
  Buffer.add_string buffer
    (Printf.sprintf
       {|
process Net :=
    xfer ?h:int[1..%d] ; Serve(h)
%s
process Serve (h : int[0..%d]) :=
    [h == 0] -> Net
 [] [h > 0] -> rate %.12g ; Serve(h - 1)
|}
       max_hops
       (if Topology.contended topology then
          Printf.sprintf " [] bgxfer ; rate %.12g ; Net"
            rates.Benchmark.xfer_rate
        else "")
       max_hops rates.Benchmark.xfer_rate);
  if Topology.contended topology then
    Buffer.add_string buffer
      (Printf.sprintf "process Bg := rate %.12g ; bgxfer ; Bg\n"
         rates.Benchmark.bg_rate);
  (* the benchmark driver *)
  Buffer.add_string buffer "process Round := ";
  List.iter (fun op -> Buffer.add_string buffer (op_gate op ^ " ; ")) ops;
  Buffer.add_string buffer "round ; Round\n";
  let op_gates = String.concat ", " (List.map op_gate alphabet) in
  Buffer.add_string buffer
    (Printf.sprintf "init (Round |[%s]| Line(%d)) |[xfer]| %s\n" op_gates
       (id_of initial_state)
       (if Topology.contended topology then "(Net |[bgxfer]| Bg)" else "Net"));
  Mv_calc.Parser.spec_of_string_checked (Buffer.contents buffer)

let latency ~nodes topology benchmark ~rates =
  let model = spec ~nodes topology benchmark ~rates in
  let perf = Mv_core.Flow.Run.performance
    Mv_core.Flow.Config.(default |> with_keep [ "round" ]) model in
  1.0 /. Mv_core.Flow.throughput perf ~gate:"round"
