(* Experiment harness: regenerates every quantitative and qualitative
   claim of the paper's evaluation (the paper is a 2-page overview with
   no numbered tables; the experiment ids E1-E7 are defined in
   DESIGN.md and EXPERIMENTS.md). Running this executable prints one
   table per experiment, then times the computational kernels with
   Bechamel. Passing experiment names as arguments (e.g. "E2 bench")
   restricts the run. *)

module Report = Mv_core.Report
module Flow = Mv_core.Flow
module Obs = Mv_obs.Obs
module Json = Mv_obs.Json
module Ctmc = Mv_markov.Ctmc
module Imc = Mv_imc.Imc
module To_ctmc = Mv_imc.To_ctmc
module Phase = Mv_imc.Phase
module Label = Mv_lts.Label
module Lts = Mv_lts.Lts
module Net = Mv_compose.Net
module Mvb = Mv_store.Mvb

let f = Report.float_cell
let pc = Report.percent_cell

(* ------------------------------------------------------------------ *)
(* E1: FAME2 - MPI ping-pong latency prediction                        *)

let e1_rates = Mv_fame.Benchmark.default_rates

let e1_fame_mpi () =
  let rows = ref [] in
  List.iter
    (fun topology ->
       List.iter
         (fun implementation ->
            List.iter
              (fun size ->
                 let latency =
                   Mv_fame.Benchmark.round_latency Mv_fame.Protocol.Msi topology
                     implementation ~size ~rates:e1_rates
                 in
                 let serial =
                   Mv_fame.Benchmark.latency_lower_bound Mv_fame.Protocol.Msi
                     topology implementation ~size ~rates:e1_rates
                 in
                 rows :=
                   [ Mv_fame.Topology.name topology;
                     Mv_fame.Mpi.name implementation;
                     string_of_int size; f latency; f serial ]
                   :: !rows)
              [ 1; 4; 16 ])
         Mv_fame.Mpi.all)
    Mv_fame.Topology.all;
  Report.table
    ~title:
      "E1a  MPI ping-pong round latency: topologies x MPI implementation x \
       message size (protocol MSI)"
    ~header:[ "topology"; "mpi"; "size"; "latency"; "serial est." ]
    (List.rev !rows);
  let rows =
    List.map
      (fun variant ->
         let latency size =
           Mv_fame.Benchmark.round_latency variant Mv_fame.Topology.Bus
             Mv_fame.Mpi.Eager ~size ~rates:e1_rates
         in
         let ops = Mv_fame.Mpi.ops_per_round Mv_fame.Mpi.Eager ~size:1 in
         [ Mv_fame.Protocol.variant_name variant;
           string_of_int (Mv_fame.Protocol.messages variant (ops @ ops));
           f (latency 1); f (latency 4) ])
      [ Mv_fame.Protocol.Msi; Mv_fame.Protocol.Mesi;
        Mv_fame.Protocol.Msi_migratory ]
  in
  Report.table
    ~title:
      "E1b  MPI ping-pong latency: cache coherency protocols (bus, eager; \
       msgs = flag-op messages of two cold rounds)"
    ~header:[ "protocol"; "msgs"; "latency s=1"; "latency s=4" ]
    rows;
  let rows =
    List.map
      (fun topology ->
         [ Mv_fame.Topology.name topology;
           f (Mv_fame.Benchmark.barrier_latency Mv_fame.Protocol.Msi topology
                ~rates:e1_rates) ])
      Mv_fame.Topology.all
  in
  Report.table
    ~title:"E1c  MPI barrier episode latency (MSI): topologies"
    ~header:[ "topology"; "latency" ]
    rows;
  let rows =
    List.concat_map
      (fun topology ->
         List.map
           (fun benchmark ->
              [ Mv_fame.Topology.name topology;
                Mv_fame.Numa.benchmark_name benchmark;
                f
                  (Mv_fame.Numa.latency ~nodes:4 topology benchmark
                     ~rates:e1_rates) ])
           [ Mv_fame.Numa.Pair_pingpong 1; Mv_fame.Numa.Pair_pingpong 2;
             Mv_fame.Numa.Token_ring ])
      Mv_fame.Topology.all
  in
  Report.table
    ~title:
      "E1d  4-node NUMA (message endpoints + per-pair distance): ring \
       ping-pong cost grows with partner distance, crossbar stays flat"
    ~header:[ "topology"; "benchmark"; "latency" ]
    rows;
  let program_latency programs topology =
    Mv_fame.Mpi_program.iteration_latency ~programs topology ~rates:e1_rates
  in
  let rows =
    List.concat_map
      (fun (name, programs) ->
         List.map
           (fun topology ->
              [ name;
                Mv_fame.Topology.name topology;
                f (program_latency programs topology) ])
           [ Mv_fame.Topology.Bus; Mv_fame.Topology.Crossbar ])
      [
        ("ping-pong (serial)", Mv_fame.Mpi_program.pingpong ~partner:1 ~size:2);
        ("simultaneous ring (overlap)",
         Mv_fame.Mpi_program.simultaneous_ring ~ranks:3 ~size:2);
        ("work + barrier (BSP)",
         Mv_fame.Mpi_program.work_barrier ~ranks:3 ~work_mean:0.1);
      ]
  in
  Report.table
    ~title:
      "E1e  Concurrent MPI rank programs: overlapping communication widens \
       the crossbar advantage (serial ping-pong vs simultaneous sends)"
    ~header:[ "benchmark"; "topology"; "latency/iteration" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: xSTream - queue throughput, latency, occupancy                  *)

let e2_arrival = 2.0
let e2_service = 3.0

let e2_xstream () =
  let rows =
    List.map
      (fun capacity ->
         let spec =
           Mv_xstream.Queues.single ~arrival:e2_arrival ~service:e2_service
             ~capacity
         in
         let s = Mv_xstream.Measures.summary spec ~capacity in
         let k = Mv_xstream.Queues.system_capacity ~capacity in
         let analytic =
           Mv_xstream.Analytic.throughput ~arrival:e2_arrival ~service:e2_service
             ~k
         in
         [ string_of_int capacity;
           f s.Mv_xstream.Measures.throughput;
           f analytic;
           f s.Mv_xstream.Measures.mean_occupancy;
           f s.Mv_xstream.Measures.mean_latency;
           pc s.Mv_xstream.Measures.blocking ])
      [ 2; 4; 8; 16 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "E2a  xSTream single queue (arrival %.1f, service %.1f): capacity \
          sweep; 'analytic' is the M/M/1/K closed form the pipeline must match"
         e2_arrival e2_service)
    ~header:
      [ "capacity"; "throughput"; "analytic"; "mean occ"; "latency"; "P(full)" ]
    rows;
  (* occupancy distribution of one configuration: the 'occupancy within
     xSTream queues' series *)
  let capacity = 8 in
  let spec =
    Mv_xstream.Queues.single ~arrival:e2_arrival ~service:e2_service ~capacity
  in
  let dist = Mv_xstream.Measures.occupancy_distribution spec ~capacity in
  Report.table
    ~title:"E2b  xSTream queue occupancy distribution (capacity 8)"
    ~header:[ "occupancy"; "probability" ]
    (List.init (capacity + 1) (fun n -> [ string_of_int n; f dist.(n) ]));
  (* load sweep at fixed capacity *)
  let capacity = 4 in
  let rows =
    List.map
      (fun arrival ->
         let spec =
           Mv_xstream.Queues.single ~arrival ~service:e2_service ~capacity
         in
         let s = Mv_xstream.Measures.summary spec ~capacity in
         [ f (arrival /. e2_service);
           f s.Mv_xstream.Measures.throughput;
           f s.Mv_xstream.Measures.mean_occupancy;
           f s.Mv_xstream.Measures.mean_latency ])
      [ 0.9; 1.8; 2.7; 3.6; 4.5 ]
  in
  Report.table
    ~title:"E2c  xSTream single queue (capacity 4): load sweep"
    ~header:[ "rho"; "throughput"; "mean occ"; "latency" ]
    rows;
  (* tandem with a transfer stage, plus simulation cross-check *)
  let spec =
    Mv_xstream.Queues.tandem ~arrival:e2_arrival ~transfer:4.0
      ~service:e2_service ~capacity1:3 ~capacity2:3
  in
  let perf = Flow.performance ~keep:[ "pop" ] spec in
  let numeric = Flow.throughput perf ~gate:"pop" in
  let simulated =
    Mv_sim.Des.throughput perf.Flow.imc ~action:"pop" ~horizon:20_000.0
      ~seed:11L
  in
  Report.table
    ~title:"E2d  xSTream tandem (3+3 places, transfer rate 4.0): solver vs DES"
    ~header:[ "measure"; "numerical"; "simulated" ]
    [ [ "end-to-end throughput"; f numeric; f simulated ] ];
  (* memory-backed queue: the spill/refill path throttles the stream *)
  let rows =
    List.map
      (fun refill ->
         let s =
           Mv_xstream.Measures.spill_summary
             (Mv_xstream.Queues.spill ~arrival:e2_arrival ~service:e2_service
                ~refill ~hw_capacity:2 ~spill_capacity:4)
         in
         [ f refill;
           f s.Mv_xstream.Measures.spill_throughput;
           f s.Mv_xstream.Measures.mean_hw;
           f s.Mv_xstream.Measures.mean_spilled;
           pc s.Mv_xstream.Measures.spilling ])
      [ 0.5; 1.0; 2.0; 4.0; 16.0 ]
  in
  Report.table
    ~title:
      "E2e  xSTream memory-backed queue (HW 2 + spill 4): refill-rate sweep"
    ~header:[ "refill rate"; "throughput"; "mean HW"; "mean spilled"; "P(spilling)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: functional verification results                                 *)

let e3_verification () =
  let check name spec properties =
    let v = Flow.verify spec properties in
    List.map
      (fun r ->
         [ name;
           string_of_int (Lts.nb_states v.Flow.lts);
           r.Flow.property_name;
           (if r.Flow.holds then "holds" else "VIOLATED") ])
      v.Flow.results
  in
  let equivalence name reference candidate =
    let ok =
      Mv_bisim.Branching.equivalent
        (Mv_calc.State_space.lts reference)
        (Mv_calc.State_space.lts candidate)
    in
    [ name;
      string_of_int (Lts.nb_states (Mv_calc.State_space.lts candidate));
      "branching equivalent to reference FIFO";
      (if ok then "holds" else "VIOLATED") ]
  in
  let rows =
    check "FAUST router (closed)"
      (Mv_faust.Router.closed_spec ~id:"r")
      (Mv_faust.Router.properties ~id:"r")
    @ [ (let spec = Mv_faust.Router.single_packet_spec ~id:"r" ~input:0 ~dest:1 in
         let name, formula = Mv_faust.Router.delivery_property ~id:"r" ~dest:1 in
         let v = Flow.verify spec [ (name, formula) ] in
         match v.Flow.results with
         | [ r ] ->
           [ "FAUST router (1 packet)";
             string_of_int (Lts.nb_states v.Flow.lts);
             r.Flow.property_name;
             (if r.Flow.holds then "holds" else "VIOLATED") ]
         | _ -> assert false) ]
    @ [ equivalence "xSTream FIFO (reference)" (Mv_xstream.Queues.fifo_data ())
          (Mv_xstream.Queues.fifo_data ());
        equivalence "xSTream FIFO issue 1: drops when full"
          (Mv_xstream.Queues.fifo_data ())
          (Mv_xstream.Queues.fifo_lossy ());
        equivalence "xSTream FIFO issue 2: reorders"
          (Mv_xstream.Queues.fifo_data ())
          (Mv_xstream.Queues.fifo_unordered ()) ]
    @ [ (let flows = Mv_faust.Mesh.crossing_flows in
         match
           Mv_faust.Mesh.deadlock_witness Mv_faust.Mesh.Shared_buffer ~flows
         with
         | Some t ->
           [ "FAUST 2x2 mesh (shared-buffer routers)";
             "16";
             Printf.sprintf "deadlock freedom (witness: %s)"
               (Mv_lts.Trace.to_string t);
             "VIOLATED" ]
         | None ->
           [ "FAUST 2x2 mesh (shared-buffer routers)"; "16";
             "deadlock freedom"; "holds" ]) ]
    @ (let flows = Mv_faust.Mesh.crossing_flows in
       let spec = Mv_faust.Mesh.spec Mv_faust.Mesh.Port_buffered ~flows in
       check "FAUST 2x2 mesh (port-buffered routers)" spec
         (Mv_faust.Mesh.properties ~flows))
    @ check "FAME2 MSI directory (correct)"
        (Mv_fame.Distributed.spec Mv_fame.Distributed.Correct)
        Mv_fame.Distributed.properties
    @ check "FAME2 MSI directory (dropped inv)"
        (Mv_fame.Distributed.spec Mv_fame.Distributed.Dropped_invalidation)
        [ Mv_fame.Distributed.coherence ]
    @ check "FAME2 MSI directory (grant-before-ack race)"
        (Mv_fame.Distributed.spec Mv_fame.Distributed.Grant_before_ack)
        [ Mv_fame.Distributed.coherence ]
  in
  Report.table
    ~title:
      "E3  Functional verification: FAUST router, xSTream queue issues, FAME2 \
       coherence"
    ~header:[ "model"; "states"; "property"; "result" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4: fixed-delay approximation (space-accuracy tradeoff)             *)

let e4_erlang () =
  let delay = 1.0 in
  let rows =
    List.map
      (fun phases ->
         let dist = Phase.erlang_of_deterministic ~phases ~delay in
         let imc = Phase.absorbing_imc dist in
         let conv = To_ctmc.convert (Imc.hide_all imc) in
         let ctmc = conv.To_ctmc.ctmc in
         let targets = Ctmc.absorbing_states ctmc in
         let mean = (Ctmc.mean_first_passage ctmc ~targets).(Ctmc.initial ctmc) in
         let p_by t = Ctmc.reach_probability_by ctmc ~targets ~horizon:t in
         [ string_of_int phases;
           string_of_int (Imc.nb_states imc);
           f (Phase.coefficient_of_variation dist);
           f mean;
           f (p_by (0.8 *. delay));
           f (p_by delay);
           f (p_by (1.2 *. delay)) ])
      [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  Report.table
    ~title:
      "E4  Fixed delay (d=1) as Erlang-k: state count vs accuracy (ideal: \
       CV 0, P(T<=0.8d) 0, P(T<=1.2d) 1)"
    ~header:
      [ "k"; "states"; "CV"; "mean"; "P(T<=0.8d)"; "P(T<=d)"; "P(T<=1.2d)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5: nondeterminism in the Markov solvers                            *)

(* A contended resource: jobs arrive at rate lambda; a nondeterministic
   dispatcher hands each job to a fast or a slow server. CADP's solvers
   reject this IMC; the schedulers below handle it. *)
let e5_model () =
  let labels = Label.create () in
  let fast = Label.intern labels "fast" and slow = Label.intern labels "slow" in
  Imc.make ~nb_states:4 ~initial:0 ~labels
    ~interactive:[ (1, fast, 2); (1, slow, 3) ]
    ~markovian:[ (0, 2.0, 1); (2, 6.0, 0); (3, 1.5, 0) ]

let e5_nondet () =
  let imc = e5_model () in
  let metric conv =
    let pi = Ctmc.steady_state conv.To_ctmc.ctmc in
    let t = Ctmc.throughputs conv.To_ctmc.ctmc ~pi in
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 t
  in
  let fail_status =
    match To_ctmc.convert ~scheduler:To_ctmc.Fail imc with
    | _ -> "accepted"
    | exception To_ctmc.Nondeterministic s ->
      Printf.sprintf "rejected (state %d)" s
  in
  let uniform = metric (To_ctmc.convert ~scheduler:To_ctmc.Uniform imc) in
  let lo, hi = Option.get (To_ctmc.bounds imc ~metric ~limit:1024) in
  Report.table
    ~title:
      "E5  Nondeterministic IMC (dispatcher to fast/slow server): CADP-style \
       rejection vs scheduler-based analyses (completed-jobs throughput)"
    ~header:[ "analysis"; "result" ]
    [
      [ "CADP-style solver (Fail)"; fail_status ];
      [ "uniform scheduler"; f uniform ];
      [ "min over deterministic schedulers"; f lo ];
      [ "max over deterministic schedulers"; f hi ];
      [ "nondeterministic states";
        string_of_int (List.length (To_ctmc.nondeterministic_states imc)) ];
    ]

let e5_mvl_model () =
  Mv_calc.Parser.spec_of_string_checked
    {|
process Source := rate 2.0 ; submit ; Source
process Dispatcher := submit ; (i ; tofast ; Dispatcher [] i ; toslow ; Dispatcher)
process Fast := tofast ; rate 6.0 ; served ; Fast
process Slow := toslow ; rate 1.5 ; served ; Slow
init ((Source |[submit]| Dispatcher) |[tofast]| Fast) |[toslow]| Slow
|}

let e5_nondet_mvl () =
  let lts = Mv_calc.State_space.lts (e5_mvl_model ()) in
  let imc =
    Mv_imc.Lump.minimize
      (Imc.maximal_progress
         (Imc.hide (Imc.of_lts lts) ~gates:[ "submit"; "tofast"; "toslow" ]))
  in
  let metric conv =
    let pi = Ctmc.steady_state conv.To_ctmc.ctmc in
    Ctmc.throughput conv.To_ctmc.ctmc ~pi ~action:"served"
  in
  let fail_status =
    match To_ctmc.convert ~scheduler:To_ctmc.Fail imc with
    | _ -> "accepted"
    | exception To_ctmc.Nondeterministic _ -> "rejected (nondeterministic)"
  in
  let uniform = metric (To_ctmc.convert ~scheduler:To_ctmc.Uniform imc) in
  let lo, hi = To_ctmc.local_bounds imc ~metric in
  Report.table
    ~title:
      "E5b  The same question through the full MVL flow (dispatcher modeled \
       in the calculus; the dispatcher commits internally before seeing \
       the servers)"
    ~header:[ "analysis"; "served-throughput" ]
    [
      [ "CADP-style solver (Fail)"; fail_status ];
      [ "uniform scheduler"; f uniform ];
      [ "min over schedulers (greedy policy search)"; f lo ];
      [ "max over schedulers (greedy policy search)"; f hi ];
      [ "nondeterministic states";
        string_of_int (List.length (To_ctmc.nondeterministic_states imc)) ];
    ]

(* ------------------------------------------------------------------ *)
(* E6: compositional verification vs monolithic generation             *)

let buffer_chain_node length =
  let lts_of text =
    Mv_calc.State_space.lts (Mv_calc.Parser.spec_of_string_checked text)
  in
  let buffer k =
    let input = Printf.sprintf "g%d" k
    and output = Printf.sprintf "g%d" (k + 1) in
    Net.Leaf
      ( Printf.sprintf "buf%d" k,
        lts_of
          (Printf.sprintf
             "process B (n : int[0..2]) := [n < 2] -> %s ; B(n + 1) [] [n > 0] \
              -> %s ; B(n - 1)\ninit B(0)"
             input output) )
  in
  let rec build acc k =
    if k >= length then acc
    else
      let gate = Printf.sprintf "g%d" k in
      build (Net.Hide ([ gate ], Net.Par ([ gate ], acc, buffer k))) (k + 1)
  in
  build (buffer 0) 1

let e6_compositional () =
  let evaluate node =
    let mono = Net.evaluate ~strategy:`Monolithic node in
    let comp = Net.evaluate ~strategy:`Compositional node in
    (mono, comp)
  in
  let row name (mono, comp) =
    [ name;
      string_of_int mono.Net.peak_states;
      string_of_int comp.Net.peak_states;
      string_of_int (Lts.nb_states comp.Net.result);
      Printf.sprintf "%.1fx"
        (float_of_int mono.Net.peak_states /. float_of_int comp.Net.peak_states)
    ]
  in
  let rows =
    List.map
      (fun length ->
         row
           (Printf.sprintf "buffer chain x%d" length)
           (evaluate (buffer_chain_node length)))
      [ 2; 3; 4; 5; 6 ]
    @ List.map
        (fun length ->
           row
             (Printf.sprintf "FAUST router chain x%d" length)
             (evaluate (Mv_faust.Noc.chain ~length)))
        [ 2; 3 ]
  in
  Report.table
    ~title:
      "E6  State-space explosion: monolithic peak vs compositional \
       (minimize-then-compose) peak"
    ~header:[ "system"; "mono peak"; "comp peak"; "final"; "saving" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: generation alternated with minimization                         *)

let e7_minimization () =
  let measure name lts =
    let strong = Mv_bisim.Strong.minimize lts in
    let branching = Mv_bisim.Branching.minimize lts in
    [ name;
      string_of_int (Lts.nb_states lts);
      string_of_int (Lts.nb_states strong);
      string_of_int (Lts.nb_states branching) ]
  in
  let router = Mv_faust.Router.lts ~id:"r" in
  let queue_spec =
    Mv_xstream.Queues.single ~arrival:2.0 ~service:3.0 ~capacity:8
  in
  let queue_lts =
    Lts.hide (Mv_calc.State_space.lts queue_spec) ~gates:[ "push" ]
  in
  let coherence =
    Lts.hide_all_except
      (Mv_calc.State_space.lts
         (Mv_fame.Distributed.spec Mv_fame.Distributed.Correct))
      ~gates:[ "read0"; "write0"; "read1"; "write1"; "error" ]
  in
  let rows =
    [ measure "FAUST router (rq hidden)" router;
      measure "xSTream queue (push hidden)" queue_lts;
      measure "FAME2 coherence (protocol hidden)" coherence ]
  in
  Report.table
    ~title:"E7a  Minimization: states before / strong / branching"
    ~header:[ "model"; "original"; "strong"; "branching" ]
    rows;
  (* stochastic lumping inside the performance flow *)
  let rows =
    List.map
      (fun capacity ->
         let spec =
           Mv_xstream.Queues.single ~arrival:2.0 ~service:3.0 ~capacity
         in
         let perf = Flow.performance ~keep:[ "pop" ] spec in
         [ Printf.sprintf "queue capacity %d" capacity;
           string_of_int (Imc.nb_states perf.Flow.imc);
           string_of_int (Imc.nb_states perf.Flow.lumped);
           string_of_int (Ctmc.nb_states perf.Flow.conversion.To_ctmc.ctmc) ])
      [ 4; 8; 16 ]
    @ [ (let perf =
           Flow.performance ~keep:[ "done" ]
             (Mv_xstream.Queues.dual_server ~arrival:3.0 ~service:2.0)
         in
         [ "2 identical engines (symmetry)";
           string_of_int (Imc.nb_states perf.Flow.imc);
           string_of_int (Imc.nb_states perf.Flow.lumped);
           string_of_int (Ctmc.nb_states perf.Flow.conversion.To_ctmc.ctmc) ]) ]
  in
  Report.table
    ~title:"E7b  Stochastic lumping in the performance flow (IMC -> CTMC)"
    ~header:[ "model"; "IMC states"; "lumped"; "CTMC states" ]
    rows;
  (* compositional IMC construction (the paper's "alternates state
     space generation and stochastic state space minimization") *)
  let spec_of = Mv_calc.Parser.spec_of_string_checked in
  let engine k =
    Mv_imc.Network.of_spec
      (Printf.sprintf "engine%d" k)
      (spec_of "process E := grab ; rate 2.0 ; done ; E\ninit E")
  in
  let source =
    Mv_imc.Network.of_spec "source"
      (spec_of "process S := rate 6.0 ; grab ; S\ninit S")
  in
  let rows =
    List.map
      (fun engines ->
         let bank =
           Mv_imc.Network.par_list [] (List.init engines engine)
         in
         let node =
           Mv_imc.Network.Hide
             ([ "grab" ], Mv_imc.Network.Par ([ "grab" ], source, bank))
         in
         let mono = Mv_imc.Network.evaluate ~strategy:`Monolithic node in
         let comp = Mv_imc.Network.evaluate ~strategy:`Compositional node in
         [ Printf.sprintf "%d identical engines" engines;
           string_of_int mono.Mv_imc.Network.peak_states;
           string_of_int comp.Mv_imc.Network.peak_states;
           string_of_int (Imc.nb_states comp.Mv_imc.Network.result) ])
      [ 2; 3; 4; 5 ]
  in
  Report.table
    ~title:
      "E7c  Compositional IMC construction: peak states, monolithic vs \
       lump-as-you-go"
    ~header:[ "system"; "mono peak"; "comp peak"; "final (lumped)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: multicore scaling of the parallel engines                       *)

(* Wall-clock times for the pool-enabled phases at 1/2/4 domains. The
   outputs are identical whatever the pool size (that is the Mv_par
   contract, cross-checked in test/test_par.ml); this table only
   reports timing. On a single-core container the speedup column
   honestly hovers around 1.0x (or below: domains add overhead without
   adding parallelism) — run on a multicore host to see the scaling. *)
let e8_scaling () =
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let with_domains domains f =
    if domains = 1 then f None
    else Mv_par.Pool.scope ~domains (fun pool -> f (Some pool))
  in
  let fame_spec = Mv_fame.Distributed.spec Mv_fame.Distributed.Correct in
  let faust_spec =
    Mv_faust.Mesh.spec Mv_faust.Mesh.Port_buffered
      ~flows:Mv_faust.Mesh.crossing_flows
  in
  let queue_spec =
    Mv_xstream.Queues.tandem ~arrival:e2_arrival ~transfer:4.0
      ~service:e2_service ~capacity1:4 ~capacity2:4
  in
  let tasks =
    [ ("FAME2 MSI directory: generate",
       fun pool () -> ignore (Flow.generate ?pool fame_spec));
      ("FAUST 2x2 mesh: generate + branching min.",
       fun pool () ->
         ignore (Mv_bisim.Branching.minimize ?pool
                   (Flow.generate ?pool faust_spec)));
      ("xSTream tandem: performance solve",
       fun pool () ->
         let perf = Flow.performance ?pool ~keep:[ "pop" ] queue_spec in
         ignore (Flow.throughputs perf)) ]
  in
  let rows =
    List.map
      (fun (name, task) ->
         let timings =
           List.map
             (fun domains ->
                with_domains domains (fun pool -> time (task pool)))
             [ 1; 2; 4; 8 ]
         in
         match timings with
         | [ t1; t2; t4; t8 ] ->
           [ name; f t1; f t2; f t4; f t8;
             Printf.sprintf "%.2fx" (t1 /. t8) ]
         | _ -> assert false)
      tasks
  in
  Report.table
    ~title:
      (Printf.sprintf
         "E8  Multicore scaling (wall-clock seconds; host reports %d \
          recommended domains)"
         (Mv_par.Pool.auto ()))
    ~header:[ "phase"; "-j 1"; "-j 2"; "-j 4"; "-j 8"; "speedup (j8/j1)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per experiment                *)

let bechamel_kernels () =
  let open Bechamel in
  let kernel name run = Test.make ~name (Staged.stage run) in
  let tests =
    Test.make_grouped ~name:"multival"
      [
        kernel "e1:fame-round-latency" (fun () ->
            Mv_fame.Benchmark.round_latency Mv_fame.Protocol.Msi
              Mv_fame.Topology.Bus Mv_fame.Mpi.Eager ~size:1 ~rates:e1_rates);
        kernel "e2:xstream-summary" (fun () ->
            Mv_xstream.Measures.summary
              (Mv_xstream.Queues.single ~arrival:2.0 ~service:3.0 ~capacity:4)
              ~capacity:4);
        kernel "e3:router-verification" (fun () ->
            Flow.verify
              (Mv_faust.Router.closed_spec ~id:"b")
              (Mv_faust.Router.properties ~id:"b"));
        kernel "e4:erlang-32-passage" (fun () ->
            let dist = Phase.erlang_of_deterministic ~phases:32 ~delay:1.0 in
            let conv =
              To_ctmc.convert (Imc.hide_all (Phase.absorbing_imc dist))
            in
            let ctmc = conv.To_ctmc.ctmc in
            Ctmc.mean_first_passage ctmc ~targets:(Ctmc.absorbing_states ctmc));
        kernel "e5:scheduler-bounds" (fun () ->
            To_ctmc.bounds (e5_model ())
              ~metric:(fun conv ->
                  let pi = Ctmc.steady_state conv.To_ctmc.ctmc in
                  Ctmc.throughput conv.To_ctmc.ctmc ~pi ~action:"fast")
              ~limit:64);
        kernel "e6:compositional-chain" (fun () ->
            Net.evaluate ~strategy:`Compositional (buffer_chain_node 4));
        kernel "e7:branching-minimize" (fun () ->
            Mv_bisim.Branching.minimize (Mv_faust.Router.lts ~id:"b"));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
       let estimate =
         match Analyze.OLS.estimates ols_result with
         | Some (value :: _) -> Printf.sprintf "%.3f ms" (value /. 1e6)
         | Some [] | None -> "n/a"
       in
       rows := [ name; estimate ] :: !rows)
    results;
  Report.table ~title:"Kernel timings (Bechamel OLS estimate per run)"
    ~header:[ "kernel"; "time/run" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Per-experiment trajectory record, written to BENCH_multival.json
   so successive runs can be compared. States and solver iterations
   are counter deltas from Mv_obs around each experiment. *)

let bench_records : (string * float * int * int * float * int) list ref =
  ref []

(* Extra top-level JSON fields (e.g. the E10 engine comparison) merged
   into BENCH_multival.json next to the experiment rows. *)
let bench_extra : (string * Json.t) list ref = ref []

let timed name run () =
  let states = Obs.counter "explore.states" in
  let iterations = Obs.counter "solver.iterations" in
  let states0 = Obs.counter_value states in
  let iterations0 = Obs.counter_value iterations in
  let t0 = Unix.gettimeofday () in
  run ();
  let wall = Unix.gettimeofday () -. t0 in
  let states = Obs.counter_value states - states0 in
  let iterations = Obs.counter_value iterations - iterations0 in
  let throughput =
    if wall > 0.0 then float_of_int states /. wall else 0.0
  in
  bench_records :=
    (name, wall, states, iterations, throughput, Obs.maxrss_kb ())
    :: !bench_records

let write_bench_json path =
  let experiments =
    List.rev_map
      (fun (name, wall, states, iterations, throughput, maxrss) ->
         Json.Obj
           [ ("name", Json.String name);
             ("wall_s", Json.Float wall);
             ("states", Json.Int states);
             ("iterations", Json.Int iterations);
             ("throughput_states_per_s", Json.Float throughput);
             ("maxrss_kb", Json.Int maxrss) ])
      !bench_records
  in
  let json =
    Json.Obj
      (("schema", Json.String "mv-bench-v1")
       :: ("experiments", Json.List experiments)
       :: List.rev !bench_extra)
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d experiment(s))\n" path
    (List.length !bench_records)

(* ------------------------------------------------------------------ *)
(* E10: flat-array kernels vs legacy signature engines                 *)

(* The Mv_kern comparison: for each case-study LTS, minimize with the
   legacy signature engines and with the flat-array engines (strong =
   splitter worklist, branching = packed signatures over CSR), check
   the quotients are byte-identical (same .aut text, block ids
   included — the property the Mv_store cache keys depend on), and
   time both (best of 3). Then the solver kernels: Gauss-Seidel vs
   damped Jacobi iteration counts on the xSTream tandem steady-state.
   The detail lands in BENCH_multival.json under "e10" for CI. *)
let e10_kernels () =
  let best_of_3 f =
    let once () =
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      Unix.gettimeofday () -. t0
    in
    Float.min (once ()) (Float.min (once ()) (once ()))
  in
  let tandem c =
    Lts.hide
      (Mv_calc.State_space.lts
         (Mv_xstream.Queues.tandem ~arrival:e2_arrival ~transfer:4.0
            ~service:e2_service ~capacity1:c ~capacity2:c))
      ~gates:[ "push" ]
  in
  let cases =
    [ ("xSTream tandem 12+12", tandem 12);
      ("xSTream tandem 20+20", tandem 20);
      ("FAME2 MSI directory",
       Mv_calc.State_space.lts
         (Mv_fame.Distributed.spec Mv_fame.Distributed.Correct));
      ("FAUST 2x2 mesh",
       Mv_calc.State_space.lts
         (Mv_faust.Mesh.spec Mv_faust.Mesh.Port_buffered
            ~flows:Mv_faust.Mesh.crossing_flows)) ]
  in
  let rows = ref [] and case_json = ref [] in
  List.iter
    (fun (name, lts) ->
       let strong = Mv_bisim.Strong.minimize lts in
       let strong_legacy = Mv_bisim.Strong.minimize_legacy lts in
       let branching = Mv_bisim.Branching.minimize lts in
       let branching_legacy = Mv_bisim.Branching.minimize_legacy lts in
       let identical =
         Mv_lts.Aut.to_string strong = Mv_lts.Aut.to_string strong_legacy
         && Mv_lts.Aut.to_string branching
            = Mv_lts.Aut.to_string branching_legacy
       in
       let ts = best_of_3 (fun () -> Mv_bisim.Strong.minimize lts) in
       let tsl = best_of_3 (fun () -> Mv_bisim.Strong.minimize_legacy lts) in
       let tb = best_of_3 (fun () -> Mv_bisim.Branching.minimize lts) in
       let tbl =
         best_of_3 (fun () -> Mv_bisim.Branching.minimize_legacy lts)
       in
       let speedup t_legacy t_kern =
         if t_kern > 0.0 then t_legacy /. t_kern else 0.0
       in
       rows :=
         [ name;
           string_of_int (Lts.nb_states lts);
           f tsl; f ts;
           Printf.sprintf "%.1fx" (speedup tsl ts);
           f tbl; f tb;
           Printf.sprintf "%.1fx" (speedup tbl tb);
           (if identical then "identical" else "DIFFERS") ]
         :: !rows;
       case_json :=
         Json.Obj
           [ ("name", Json.String name);
             ("states", Json.Int (Lts.nb_states lts));
             ("strong_states", Json.Int (Lts.nb_states strong));
             ("strong_states_legacy", Json.Int (Lts.nb_states strong_legacy));
             ("branching_states", Json.Int (Lts.nb_states branching));
             ("branching_states_legacy",
              Json.Int (Lts.nb_states branching_legacy));
             ("strong_legacy_s", Json.Float tsl);
             ("strong_kern_s", Json.Float ts);
             ("strong_speedup", Json.Float (speedup tsl ts));
             ("branching_legacy_s", Json.Float tbl);
             ("branching_kern_s", Json.Float tb);
             ("branching_speedup", Json.Float (speedup tbl tb));
             ("quotients_identical", Json.Bool identical) ]
         :: !case_json)
    cases;
  Report.table
    ~title:
      "E10a  Minimization engines: legacy signature rounds vs Mv_kern \
       flat-array kernels (best of 3; quotients must be byte-identical)"
    ~header:
      [ "model"; "states"; "strong old"; "strong new"; "speedup";
        "branch old"; "branch new"; "speedup"; "quotient" ]
    (List.rev !rows);
  (* solver kernels on the xSTream tandem steady-state *)
  let perf =
    Flow.performance ~keep:[ "pop" ]
      (Mv_xstream.Queues.tandem ~arrival:e2_arrival ~transfer:4.0
         ~service:e2_service ~capacity1:12 ~capacity2:12)
  in
  let ctmc = perf.Flow.conversion.To_ctmc.ctmc in
  let solve m = snd (Ctmc.steady_state_stats ~method_:m ctmc) in
  let stats_gs = solve Mv_kern.Solver.Gauss_seidel in
  let stats_sor = solve Mv_kern.Solver.Sor in
  let stats_jac = solve Mv_kern.Solver.Jacobi in
  let row name (s : Mv_markov.Solver_stats.t) =
    [ name;
      string_of_int s.Mv_markov.Solver_stats.iterations;
      f s.Mv_markov.Solver_stats.residual;
      string_of_bool s.Mv_markov.Solver_stats.converged ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "E10b  Steady-state solvers on the xSTream tandem CTMC (%d states)"
         (Ctmc.nb_states ctmc))
    ~header:[ "method"; "iterations"; "residual"; "converged" ]
    [ row "gauss-seidel" stats_gs;
      row "sor" stats_sor;
      row "jacobi (damped)" stats_jac ];
  (* E10c: the parallel kernels themselves — strong refinement (round
     batched splitter gather) and colored Gauss-Seidel at -j 8 against
     the sequential -j 1 path. Outputs must be byte-identical; the
     speedup columns are honest about the host (a single-core container
     reports ~1.0x or below). *)
  let refine_lts = tandem 20 in
  let quotient_j1 = Mv_bisim.Strong.minimize refine_lts in
  let refine_j1_s = best_of_3 (fun () -> Mv_bisim.Strong.minimize refine_lts) in
  let pi_j1 = Ctmc.steady_state ~method_:Mv_kern.Solver.Gauss_seidel ctmc in
  let gs_j1_s =
    best_of_3 (fun () ->
        Ctmc.steady_state ~method_:Mv_kern.Solver.Gauss_seidel ctmc)
  in
  let ( refine_j8_s, refine_identical, gs_j8_s, gs_identical ) =
    Mv_par.Pool.scope ~domains:8 (fun pool ->
        let quotient_j8 = Mv_bisim.Strong.minimize ~pool refine_lts in
        let refine_j8_s =
          best_of_3 (fun () -> Mv_bisim.Strong.minimize ~pool refine_lts)
        in
        let pi_j8 =
          Ctmc.steady_state ~pool ~method_:Mv_kern.Solver.Gauss_seidel ctmc
        in
        let gs_j8_s =
          best_of_3 (fun () ->
              Ctmc.steady_state ~pool ~method_:Mv_kern.Solver.Gauss_seidel ctmc)
        in
        ( refine_j8_s,
          Mv_lts.Aut.to_string quotient_j8 = Mv_lts.Aut.to_string quotient_j1,
          gs_j8_s,
          pi_j8 = pi_j1 ))
  in
  let ratio t1 t8 = if t8 > 0.0 then t1 /. t8 else 0.0 in
  Report.table
    ~title:
      (Printf.sprintf
         "E10c  Parallel kernels at -j 8 vs -j 1 (best of 3; outputs \
          byte-identical by construction; host reports %d recommended \
          domains)"
         (Mv_par.Pool.auto ()))
    ~header:[ "kernel"; "-j 1"; "-j 8"; "speedup (j8/j1)"; "output" ]
    [ [ "strong refine (tandem 20+20)"; f refine_j1_s; f refine_j8_s;
        Printf.sprintf "%.2fx" (ratio refine_j1_s refine_j8_s);
        (if refine_identical then "identical" else "DIFFERS") ];
      [ Printf.sprintf "colored GS solve (%d states)" (Ctmc.nb_states ctmc);
        f gs_j1_s; f gs_j8_s;
        Printf.sprintf "%.2fx" (ratio gs_j1_s gs_j8_s);
        (if gs_identical then "identical" else "DIFFERS") ] ];
  bench_extra :=
    ( "e10",
      Json.Obj
        [ ("cases", Json.List (List.rev !case_json));
          ("gs_iterations", Json.Int stats_gs.Mv_markov.Solver_stats.iterations);
          ("sor_iterations",
           Json.Int stats_sor.Mv_markov.Solver_stats.iterations);
          ("jacobi_iterations",
           Json.Int stats_jac.Mv_markov.Solver_stats.iterations);
          ("refine_j1_s", Json.Float refine_j1_s);
          ("refine_j8_s", Json.Float refine_j8_s);
          ("refine_speedup_j8", Json.Float (ratio refine_j1_s refine_j8_s));
          ("refine_quotient_identical", Json.Bool refine_identical);
          ("gs_j1_s", Json.Float gs_j1_s);
          ("gs_j8_s", Json.Float gs_j8_s);
          ("gs_speedup_j8", Json.Float (ratio gs_j1_s gs_j8_s));
          ("gs_vector_identical", Json.Bool gs_identical) ] )
    :: !bench_extra

(* ------------------------------------------------------------------ *)
(* E11: mvald under concurrent load                                    *)

(* An in-process Mv_serve server (Unix socket in a sandbox, its own
   artifact cache) hammered by concurrent client threads, one
   connection each — the same shape as `mvald` + N × `mval --remote`.
   Three phases of `minimize` requests over distinct buffer-chain
   models (a distinct input gate per model = a distinct cache key):
   cold (every request computes and fills the cache), warm (the same
   requests replayed, all cache hits) and mixed (half warm, half new).
   Per phase: wall clock, req/s, p50/p99 latency and the cache
   provenance summed over the responses. CI asserts warm req/s >= 5x
   cold req/s from the "e11" record in BENCH_multival.json.

   The workload is the E6 buffer chain (7 one-definition buffers wired
   input-to-output, internal gates hidden): generation explores 3^7
   states through the Par/Hide tree and branching minimization
   collapses the tau mass to a 15-state counter, so a cold request is
   dominated by computation while a warm one only replays two small
   artifacts — the cache-friendly many-small-queries shape the daemon
   exists for. *)

let e11_clients = 8
let e11_per_client = 4
let e11_workers = 4
let e11_buffers = 7

let e11_model_text k =
  let buf input output = Printf.sprintf "Buf[%s, %s](0)" input output in
  let gate i = Printf.sprintf "g%d" i in
  let rec wire acc i =
    if i >= e11_buffers then acc
    else
      let out = if i = e11_buffers - 1 then "pop" else gate i in
      wire
        (Printf.sprintf "(%s |[%s]| %s)" acc
           (gate (i - 1))
           (buf (gate (i - 1)) out))
        (i + 1)
  in
  let init = wire (buf (Printf.sprintf "push%d" k) (gate 0)) 1 in
  let hidden = String.concat ", " (List.init (e11_buffers - 1) gate) in
  Printf.sprintf
    {|process Buf [input, output] (n : int[0..2]) :=
    [n < 2] -> input ; Buf[input, output](n + 1)
 [] [n > 0] -> output ; Buf[input, output](n - 1)
init hide %s in %s
|}
    hidden init

let e11_serve () =
  let module Proto = Mv_serve.Proto in
  let module Server = Mv_serve.Server in
  let module Client = Mv_serve.Client in
  let dir = Filename.temp_file "mv_e11" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec remove_tree path =
    if Sys.is_directory path then begin
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let cache = Mv_store.Cache.open_dir (Filename.concat dir "cache") in
  let server =
    Server.create
      {
        Server.addr = Proto.Unix_path (Filename.concat dir "mvald.sock");
        workers = e11_workers;
        queue_capacity = 256;
        max_frame = Proto.default_max_frame;
        cache = Some cache;
        slow_s = Server.default_slow_s;
      }
  in
  let addr = Server.addr server in
  let server_thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.initiate_drain server;
      Thread.join server_thread)
  @@ fun () ->
  let minimize_args k =
    Json.Obj
      [
        ( "model",
          Json.Obj
            [
              ("kind", Json.String "mvl");
              ("text", Json.String (e11_model_text k));
            ] );
      ]
  in
  (* One phase: client [i] issues the model ids [plan i] in order on
     its own connection; all clients run concurrently. Returns the
     phase wall clock and every (latency, hits, misses). *)
  let run_phase plan =
    let results = Array.make e11_clients [] in
    let worker i =
      Client.with_connection addr @@ fun conn ->
      results.(i) <-
        List.map
          (fun k ->
             let t0 = Unix.gettimeofday () in
             let response = Client.call conn ~op:"minimize" (minimize_args k) in
             let latency = Unix.gettimeofday () -. t0 in
             (match response.Proto.outcome with
              | Ok _ -> ()
              | Error e -> failwith ("E11 request failed: " ^ e.Proto.message));
             let hits, misses =
               match response.Proto.cache with
               | Some provenance -> provenance
               | None -> (0, 0)
             in
             (latency, hits, misses))
          (plan i)
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init e11_clients (fun i -> Thread.create worker i) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    (wall, List.concat (Array.to_list results))
  in
  let percentile p latencies =
    let arr = Array.of_list latencies in
    Array.sort compare arr;
    let n = Array.length arr in
    if n = 0 then 0.0
    else
      arr.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let fresh = e11_clients * e11_per_client in
  let cold_plan i = List.init e11_per_client (fun j -> (i * e11_per_client) + j) in
  (* half replays of the cold set, half never-seen models *)
  let mixed_plan i =
    List.init e11_per_client (fun j ->
        let k = (i * e11_per_client) + j in
        if j mod 2 = 0 then k else fresh + k)
  in
  let phases =
    List.map
      (fun (name, plan) ->
         let wall, results = run_phase plan in
         let latencies = List.map (fun (l, _, _) -> l) results in
         let hits = List.fold_left (fun a (_, h, _) -> a + h) 0 results in
         let misses = List.fold_left (fun a (_, _, m) -> a + m) 0 results in
         let requests = List.length results in
         let rps =
           if wall > 0.0 then float_of_int requests /. wall else 0.0
         in
         ( name,
           requests,
           wall,
           rps,
           1000.0 *. percentile 0.50 latencies,
           1000.0 *. percentile 0.99 latencies,
           hits,
           misses ) )
      [ ("cold", cold_plan); ("warm", cold_plan); ("mixed", mixed_plan) ]
  in
  let rps_of name =
    match
      List.find_opt (fun (n, _, _, _, _, _, _, _) -> n = name) phases
    with
    | Some (_, _, _, rps, _, _, _, _) -> rps
    | None -> 0.0
  in
  let pct_of name pick =
    match
      List.find_opt (fun (n, _, _, _, _, _, _, _) -> n = name) phases
    with
    | Some phase -> pick phase
    | None -> 0.0
  in
  (* the server executed in this process, so its registry is ours:
     read the per-op request-latency quantiles it recorded *)
  let server_latency_quantile q =
    let h = Obs.histogram "serve.request_latency_s.minimize" in
    let v = Obs.quantile h q in
    if Float.is_nan v then 0.0 else 1000.0 *. v
  in
  let warm_over_cold =
    let cold = rps_of "cold" in
    if cold > 0.0 then rps_of "warm" /. cold else 0.0
  in
  let gauges =
    Client.with_connection addr @@ fun conn ->
    match (Client.call conn ~op:"metrics" (Json.Obj [])).Proto.outcome with
    | Ok (Json.Obj fields) ->
      (match List.assoc_opt "server" fields with
       | Some (Json.Obj _ as server) -> server
       | _ -> Json.Null)
    | _ -> Json.Null
  in
  Report.table
    ~title:
      (Printf.sprintf
         "E11  mvald load bench: %d clients x %d requests/phase, %d workers, \
          unix socket (warm/cold req/s %.1fx)"
         e11_clients e11_per_client e11_workers warm_over_cold)
    ~header:
      [ "phase"; "requests"; "wall s"; "req/s"; "p50 ms"; "p99 ms"; "hits";
        "misses" ]
    (List.map
       (fun (name, requests, wall, rps, p50, p99, hits, misses) ->
          [ name; string_of_int requests; f wall; f rps; f p50; f p99;
            string_of_int hits; string_of_int misses ])
       phases);
  bench_extra :=
    ( "e11",
      Json.Obj
        [
          ("clients", Json.Int e11_clients);
          ("requests_per_client", Json.Int e11_per_client);
          ("workers", Json.Int e11_workers);
          ( "phases",
            Json.List
              (List.map
                 (fun (name, requests, wall, rps, p50, p99, hits, misses) ->
                    Json.Obj
                      [
                        ("name", Json.String name);
                        ("requests", Json.Int requests);
                        ("wall_s", Json.Float wall);
                        ("rps", Json.Float rps);
                        ("p50_ms", Json.Float p50);
                        ("p99_ms", Json.Float p99);
                        ("hits", Json.Int hits);
                        ("misses", Json.Int misses);
                      ])
                 phases) );
          ("warm_over_cold_rps", Json.Float warm_over_cold);
          (* headline warm-path client latencies, plus the server's own
             per-op request-latency quantiles (shared in-process
             registry) — what CI's bench-smoke asserts on *)
          ("warm_p50_ms", Json.Float (pct_of "warm" (fun (_, _, _, _, p50, _, _, _) -> p50)));
          ("warm_p99_ms", Json.Float (pct_of "warm" (fun (_, _, _, _, _, p99, _, _) -> p99)));
          ( "server_latency_p50_ms",
            Json.Float (server_latency_quantile 0.50) );
          ( "server_latency_p99_ms",
            Json.Float (server_latency_quantile 0.99) );
          ("server", gauges);
        ] )
    :: !bench_extra

(* ------------------------------------------------------------------ *)
(* E12: out-of-core generate -> strong-minimize at 10^7 states         *)

(* The out-of-core pipeline on a state space that dwarfs every other
   experiment: a tandem of [n] buffers of capacity [c] — arrivals,
   stage-to-stage transfers, departures — with (c+1)^n reachable
   states, driven as a direct int-array state machine so the
   measurement is the pipeline, not the MVL interpreter. The OOC phase
   runs FIRST (getrusage maxrss is a process-wide high-water mark, so
   the bounded-RAM phase must take its snapshot before the in-RAM
   phase raises the mark), then the same space is generated and
   minimized in RAM and both artifacts are byte-compared.

   MVAL_E12_STATES scales the instance (default 10^7; CI smoke uses
   10^4). The "e12" record lands in BENCH_multival.json. *)

(* The E12 instance: m * 10^n states as a (c+1)-ary tandem of n stages
   crossed with an m-slot rotating grant vector. The grant advances one
   slot on every action but gates nothing, so states differing only in
   the grant are strongly bisimilar and the quotient collapses m-fold
   back to the tandem — the generate-big / minimize-small shape the
   out-of-core path exists for. m is kept coprime with n+1 so every
   (tandem, grant) pair is reachable (cycle lengths are multiples of
   n+1, so the reachable grant residues per tandem state fall in
   gcd(m, n+1) classes). *)

module E12_state = struct
  type t = int array

  let equal = ( = )
  let hash t = Hashtbl.hash (Marshal.to_string t [ Marshal.No_sharing ])
end

module E12_explore = Mv_lts.Explore.Make (E12_state)

type e12_instance = {
  e12_m : int;
  e12_n : int;
  e12_states : int; (* exact reachable count *)
  e12_initial : int array;
  e12_successors : int array -> (string * int array) list;
}

let e12_target () =
  try int_of_string (Sys.getenv "MVAL_E12_STATES")
  with Not_found -> 10_000_000

let e12_hot_budget_mb = 128

let e12_instance target =
  let c = 9 in
  let n =
    max 1
      (int_of_float (Float.round (log (float target /. 24.) /. log 10.)))
  in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let m =
    let rec first k = if gcd k (n + 1) = 1 then k else first (k + 1) in
    first 24
  in
  let states_exact = m * int_of_float (Float.pow 10. (float n)) in
  let width = n + m in
  (* apply occupancy edits, then rotate the one-hot grant in s.(n..) *)
  let move s edits =
    let t = Array.copy s in
    List.iter (fun (i, d) -> t.(i) <- t.(i) + d) edits;
    let g = ref 0 in
    for j = 0 to m - 1 do
      if s.(n + j) = 1 then g := j
    done;
    t.(n + !g) <- 0;
    t.(n + ((!g + 1) mod m)) <- 1;
    t
  in
  let successors s =
    let moves = ref [] in
    if s.(n - 1) > 0 then moves := [ ("dep", move s [ (n - 1, -1) ]) ];
    for i = n - 2 downto 0 do
      if s.(i) > 0 && s.(i + 1) < c then
        moves :=
          (Printf.sprintf "mv%d" i, move s [ (i, -1); (i + 1, 1) ])
          :: !moves
    done;
    if s.(0) < c then moves := ("arr", move s [ (0, 1) ]) :: !moves;
    !moves
  in
  {
    e12_m = m;
    e12_n = n;
    e12_states = states_exact;
    e12_initial = Array.init width (fun i -> if i = n then 1 else 0);
    e12_successors = successors;
  }

let e12_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The whole out-of-core pipeline. Runs inside the child process (see
   the MVAL_E12_CHILD hook in the main entry): OCaml 5 forbids
   [Unix.fork] once domains have ever been spawned (E8/E10 spawn
   pools), so the bench re-executes its own binary instead. *)
let e12_ooc_pipeline ~target ~dir () =
  let inst = e12_instance target in
  let ooc_mvb = Filename.concat dir "ooc.mvb" in
  let ooc_min_mvb = Filename.concat dir "ooc_min.mvb" in
  let config =
    { Flow.Config.default with
      mem_budget_mb = Some (2 * e12_hot_budget_mb);
      scratch_dir = Some dir;
    }
  in
  let (ooc : Mv_lts.Explore.ooc_outcome), generate_s =
    e12_wall (fun () ->
        let w = Mvb.Stream.create ooc_mvb in
        match
          E12_explore.run_ooc
            ~max_states:(inst.e12_states + 1)
            ~expect:inst.e12_states
            ~hot_budget_bytes:(e12_hot_budget_mb * 1024 * 1024)
            ~scratch_dir:dir
            ~labels:(Mvb.Stream.labels w)
            ~emit:(Mvb.Stream.add_state w)
            ~initial:inst.e12_initial ~successors:inst.e12_successors ()
        with
        | outcome ->
          Mvb.Stream.finish w ~initial:0;
          outcome
        | exception e ->
          Mvb.Stream.abort w;
          raise e)
  in
  let _minimized, minimize_s =
    e12_wall (fun () ->
        Flow.Run.minimize_mvb config Flow.Strong ~src:ooc_mvb
          ~dst:ooc_min_mvb)
  in
  ( ooc.Mv_lts.Explore.ooc_states,
    ooc.Mv_lts.Explore.ooc_transitions,
    generate_s,
    minimize_s )

(* child entry: enroll in the cgroup if told to, run the pipeline,
   marshal the result to stdout *)
let e12_child_main dir =
  (match Sys.getenv_opt "MVAL_E12_CGROUP" with
  | Some d -> (
    try
      let oc = open_out (Filename.concat d "cgroup.procs") in
      output_string oc (string_of_int (Unix.getpid ()));
      close_out oc
    with _ -> ())
  | None -> ());
  (* bound the GC's heap slack so the child's RSS tracks its live set;
     the extra collection work is noise next to the I/O *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 60 };
  set_binary_mode_out stdout true;
  let r = e12_ooc_pipeline ~target:(e12_target ()) ~dir () in
  Marshal.to_channel stdout (r, Obs.maxrss_kb ()) [];
  flush stdout;
  exit 0

let e12_out_of_core () =
  let target = e12_target () in
  let inst = e12_instance target in
  let m = inst.e12_m and n = inst.e12_n in
  let states_exact = inst.e12_states in
  let max_states = states_exact + 1 in
  let dir = Filename.temp_file "mv-e12" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path name = Filename.concat dir name in
  let remove_tree () =
    Array.iter (fun e -> Sys.remove (path e)) (Sys.readdir dir);
    Sys.rmdir dir
  in
  Fun.protect ~finally:remove_tree @@ fun () ->
  let wall = e12_wall in
  let hot_budget_mb = e12_hot_budget_mb in
  let ooc_mvb = path "ooc.mvb" in
  let ooc_min_mvb = path "ooc_min.mvb" in
  (* Best-effort cgroup-v1 memory limit: under the cap the kernel must
     reclaim the mmap'd scratch/segment pages, so the child's peak RSS
     is a measurement of the pipeline's true working set, not of how
     many clean pages an idle kernel left resident. Absent permissions
     (CI runners) the child simply runs uncapped. *)
  let cgroup_make cap_bytes =
    let d =
      Printf.sprintf "/sys/fs/cgroup/memory/mv-e12-%d" (Unix.getpid ())
    in
    try
      Unix.mkdir d 0o755;
      let oc = open_out (Filename.concat d "memory.limit_in_bytes") in
      output_string oc (string_of_int cap_bytes);
      close_out oc;
      Some d
    with _ ->
      (try Unix.rmdir d with _ -> ());
      None
  in
  let cgroup_peak_kb d =
    try
      let ic = open_in (Filename.concat d "memory.max_usage_in_bytes") in
      let v = int_of_string (String.trim (input_line ic)) in
      close_in ic;
      v / 1024
    with _ -> 0
  in
  (* run the OOC pipeline in a child process (optionally enrolled in
     the cgroup); its maxrss is then the OOC phase's own high-water,
     not entangled with the parent's *)
  let run_child cgroup =
    let rd, wr = Unix.pipe () in
    let keep e =
      not (String.length e >= 9 && String.sub e 0 9 = "MVAL_E12_")
    in
    let env =
      Array.append
        (Array.of_seq
           (Seq.filter keep (Array.to_seq (Unix.environment ()))))
        (Array.of_list
           ((Printf.sprintf "MVAL_E12_CHILD=%s" dir)
           :: (Printf.sprintf "MVAL_E12_STATES=%d" target)
           ::
           (match cgroup with
           | Some d -> [ Printf.sprintf "MVAL_E12_CGROUP=%s" d ]
           | None -> [])))
    in
    let pid =
      Unix.create_process_env Sys.executable_name
        [| Sys.executable_name |]
        env Unix.stdin wr Unix.stderr
    in
    Unix.close wr;
    let ic = Unix.in_channel_of_descr rd in
    let payload =
      try
        Some (Marshal.from_channel ic : (int * int * float * float) * int)
      with _ -> None
    in
    close_in ic;
    let _, st = Unix.waitpid [] pid in
    match (payload, st) with
    | Some r, Unix.WEXITED 0 -> Some r
    | _ -> None
  in
  (* -- phase 1: out of core (bounded RAM) -- *)
  (* tightest cap first; a child killed under a cap (anon set over the
     limit, no swap) is retried one rung up, then uncapped, so the
     section always reports — the JSON records which rung ran *)
  let cap_ladder = [ 4096; 5632 ] in
  let rec try_caps = function
    | [] -> (run_child None, false, 0, 0)
    | mb :: rest -> (
      match cgroup_make (mb * 1024 * 1024) with
      | None -> (run_child None, false, 0, 0)
      | Some d ->
        let r =
          try run_child (Some d)
          with e ->
            (try Unix.rmdir d with _ -> ());
            raise e
        in
        let peak = cgroup_peak_kb d in
        (try Unix.rmdir d with _ -> ());
        (match r with
        | Some _ -> (r, true, mb, peak)
        | None -> try_caps rest))
  in
  let ooc_res, ooc_capped, cap_mb, ooc_cgroup_peak_kb =
    try_caps cap_ladder
  in
  let (ooc_states, ooc_transitions, ooc_generate_s, ooc_minimize_s),
      ooc_maxrss_kb =
    match ooc_res with
    | Some r -> r
    | None -> failwith "E12: out-of-core pipeline failed in the child"
  in
  let ooc_minimized_states = (Mvb.stats ooc_min_mvb).Mvb.s_nb_states in
  (* -- phase 2: in RAM (the reference) -- *)
  let ram, ram_generate_s =
    wall (fun () ->
        (E12_explore.run ~max_states ~expect:states_exact
           ~initial:inst.e12_initial ~successors:inst.e12_successors ())
          .Mv_lts.Explore.lts)
  in
  let ram_min, ram_minimize_s = wall (fun () -> Mv_bisim.Strong.minimize ram) in
  let ram_maxrss_kb = Obs.maxrss_kb () in
  let ram_mvb = path "ram.mvb" in
  Mvb.write_file ram_mvb ram;
  let ram_min_mvb = path "ram_min.mvb" in
  Mvb.write_file ram_min_mvb ram_min;
  let same a b =
    let read p =
      let ic = open_in_bin p in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    read a = read b
  in
  let generated_identical = same ooc_mvb ram_mvb in
  let quotients_identical =
    generated_identical && same ooc_min_mvb ram_min_mvb
    && ooc_minimized_states = Lts.nb_states ram_min
  in
  let file_bytes = (Unix.stat ooc_mvb).Unix.st_size in
  (* -- the composition planner on a network where order matters -- *)
  let planner_leaf name body =
    let spec =
      Flow.model_of_text
        (Printf.sprintf "process %s := %s\ninit %s" name body name)
    in
    Net.Leaf (name, Flow.Run.generate Flow.Config.default spec)
  in
  let planner_node =
    Net.par_list [ "g" ]
      [ planner_leaf "A" "g ; a1 ; a2 ; a3 ; A";
        planner_leaf "C" "g ; c1 ; c2 ; c3 ; C";
        Net.Leaf ("B", Flow.Run.generate Flow.Config.default
                         (Flow.model_of_text "init stop"));
      ]
  in
  let naive = Net.evaluate ~plan:`Naive ~strategy:`Compositional planner_node in
  let greedy =
    Net.evaluate ~plan:`Greedy ~strategy:`Compositional planner_node
  in
  let ratio =
    if ooc_maxrss_kb > 0 then float ram_maxrss_kb /. float ooc_maxrss_kb
    else 0.0
  in
  Report.table
    ~title:
      (Printf.sprintf
         "E12  Out-of-core pipeline: %d states, %d transitions (tandem \
          10^%d x %d-slot grant)"
         ooc_states ooc_transitions n m)
    ~header:[ "pipeline"; "generate"; "strong minimize"; "peak RSS" ]
    [
      [ "out-of-core";
        Printf.sprintf "%.1fs" ooc_generate_s;
        Printf.sprintf "%.1fs" ooc_minimize_s;
        (if ooc_capped then
           Printf.sprintf "%d MB (cap %d MB)" (ooc_maxrss_kb / 1024)
             cap_mb
         else Printf.sprintf "%d MB (uncapped)" (ooc_maxrss_kb / 1024)) ];
      [ "in-RAM";
        Printf.sprintf "%.1fs" ram_generate_s;
        Printf.sprintf "%.1fs" ram_minimize_s;
        Printf.sprintf "%d MB (%.1fx)" (ram_maxrss_kb / 1024) ratio ];
      [ "artifacts";
        (if generated_identical then "identical" else "DIFFER");
        (if quotients_identical then "identical" else "DIFFER");
        Printf.sprintf "%d MB .mvb" (file_bytes / 1024 / 1024) ];
      [ "planner";
        Printf.sprintf "naive peak %d" naive.Net.peak_states;
        Printf.sprintf "greedy peak %d" greedy.Net.peak_states;
        (if greedy.Net.peak_states < naive.Net.peak_states then "greedy wins"
         else "tie") ];
    ];
  bench_extra :=
    ( "e12",
      Json.Obj
        [
          ("states", Json.Int ooc_states);
          ("transitions", Json.Int ooc_transitions);
          ("minimized_states", Json.Int ooc_minimized_states);
          ("mvb_bytes", Json.Int file_bytes);
          ("hot_budget_mb", Json.Int hot_budget_mb);
          ("mem_budget_mb", Json.Int (2 * hot_budget_mb));
          ("ooc_capped", Json.Bool ooc_capped);
          ("ooc_cap_mb", Json.Int (if ooc_capped then cap_mb else 0));
          ("ooc_cgroup_peak_kb", Json.Int ooc_cgroup_peak_kb);
          ("ooc_generate_wall_s", Json.Float ooc_generate_s);
          ("ooc_minimize_wall_s", Json.Float ooc_minimize_s);
          ("ram_generate_wall_s", Json.Float ram_generate_s);
          ("ram_minimize_wall_s", Json.Float ram_minimize_s);
          ("ooc_maxrss_kb", Json.Int ooc_maxrss_kb);
          ("ram_maxrss_kb", Json.Int ram_maxrss_kb);
          ("ram_over_ooc_rss", Json.Float ratio);
          ("generated_identical", Json.Bool generated_identical);
          ("quotients_identical", Json.Bool quotients_identical);
          ("planner_naive_peak", Json.Int naive.Net.peak_states);
          ("planner_greedy_peak", Json.Int greedy.Net.peak_states);
          ( "planner_wins",
            Json.Bool (greedy.Net.peak_states < naive.Net.peak_states) );
        ] )
    :: !bench_extra

(* ------------------------------------------------------------------ *)
(* E9: the artifact cache: cold vs warm SVL run                        *)

(* One SVL script over the xSTream tandem, run twice against the same
   cache directory in a throwaway sandbox. The cold run computes and
   stores generation, both reductions and the lumping; the warm run
   replays them from the cache. Steps must report byte-identical
   descriptions and details across the two runs — the cache only
   changes where the artifacts come from, never what they are. Uses
   [timed] so BENCH_multival.json records E9-cold vs E9-warm wall
   seconds. *)
let e9_cache () =
  let dir = Filename.temp_file "mv_e9" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec remove_tree path =
    if Sys.is_directory path then begin
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let spec =
    Mv_xstream.Queues.tandem ~arrival:e2_arrival ~transfer:4.0
      ~service:e2_service ~capacity1:12 ~capacity2:12
  in
  let oc = open_out (Filename.concat dir "tandem.mvl") in
  output_string oc (Mv_calc.Ast.spec_to_string spec);
  close_out oc;
  let script =
    String.concat "\n"
      [
        {|"tandem.aut" = generate "tandem.mvl" hide push ;|};
        {|"min.mvb" = branching reduction of "tandem.aut" ;|};
        {|"wmin.mvb" = weak reduction of "tandem.aut" ;|};
        {|solve "tandem.mvl" keep pop ;|};
      ]
  in
  let cache = Mv_store.Cache.open_dir (Filename.concat dir "cache") in
  let run () = Mv_core.Svl.run_string ~cache ~dir script in
  let cold = ref [] and warm = ref [] in
  timed "E9-cold" (fun () -> cold := run ()) ();
  timed "E9-warm" (fun () -> warm := run ()) ();
  let wall name =
    match List.find_opt (fun (n, _, _, _, _, _) -> n = name) !bench_records with
    | Some (_, w, _, _, _, _) -> w
    | None -> 0.0
  in
  let hits_of step =
    match step.Mv_core.Svl.outcome with
    | Mv_core.Svl.Passed { cache = Some { hits; misses }; _ } ->
      Printf.sprintf "%d/%d" hits (hits + misses)
    | _ -> "-"
  in
  let rows =
    List.map2
      (fun c w ->
         [
           c.Mv_core.Svl.description;
           hits_of c;
           hits_of w;
           (if
              c.Mv_core.Svl.detail = w.Mv_core.Svl.detail
              && c.Mv_core.Svl.description = w.Mv_core.Svl.description
            then "identical"
            else "DIFFERS");
         ])
      !cold !warm
  in
  let cold_s = wall "E9-cold" and warm_s = wall "E9-warm" in
  Report.table
    ~title:
      (Printf.sprintf
         "E9  Artifact cache: cold %.3fs vs warm %.3fs (%.1fx) on the \
          tandem SVL script"
         cold_s warm_s
         (if warm_s > 0.0 then cold_s /. warm_s else 0.0))
    ~header:[ "step"; "cold hits/ops"; "warm hits/ops"; "result" ]
    rows

let () =
  (* E12's out-of-core child: this binary re-executed with the scratch
     dir in the environment — run only the pipeline, never a section *)
  match Sys.getenv_opt "MVAL_E12_CHILD" with
  | Some dir -> e12_child_main dir
  | None ->
  Obs.enable ();
  let sections =
    [ ("E1", e1_fame_mpi); ("E2", e2_xstream); ("E3", e3_verification);
      ("E4", e4_erlang);
      ("E5", fun () -> e5_nondet (); e5_nondet_mvl ());
      ("E6", e6_compositional); ("E7", e7_minimization);
      ("E8", e8_scaling); ("E10", e10_kernels); ("E11", e11_serve);
      ("E12", e12_out_of_core) ]
  in
  let raw_args =
    match Array.to_list Sys.argv with _ :: args -> args | [] -> []
  in
  let only =
    List.filter
      (fun arg ->
         match String.index_opt arg '=' with
         | Some i when String.sub arg 0 i = "csv" ->
           Report.set_csv_dir
             (Some (String.sub arg (i + 1) (String.length arg - i - 1)));
           false
         | _ -> true)
      raw_args
  in
  let wanted name = only = [] || List.mem name only in
  List.iter
    (fun (name, run) -> if wanted name then timed name run ())
    sections;
  if wanted "E9" then e9_cache ();
  if wanted "bench" then timed "bench" bechamel_kernels ();
  write_bench_json "BENCH_multival.json"
