(* Tests for mv_serve: the mv-serve-v1 wire protocol, hardened JSON
   parsing of untrusted socket input, the shared op dispatch, and an
   in-process end-to-end server (admission control, per-request cache
   provenance, budgets, overload fast-reject, graceful drain). *)

module Json = Mv_obs.Json
module Obs = Mv_obs.Obs
module Log = Mv_obs.Log
module Proto = Mv_serve.Proto
module Ops = Mv_serve.Ops
module Server = Mv_serve.Server
module Client = Mv_serve.Client
module Cache = Mv_store.Cache
module Flow = Mv_core.Flow

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun entry -> remove_tree (Filename.concat path entry))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let in_sandbox f =
  let dir = Filename.temp_file "mv_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let mm1_text ~capacity =
  Printf.sprintf
    {|
process Producer := rate 2.0 ; push ; Producer
process Consumer := pop ; rate 3.0 ; Consumer
process Queue (n : int[0..%d]) :=
    [n < %d] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init (Producer |[push]| Queue(0)) |[pop]| Consumer
|}
    capacity capacity

let model_args ?(capacity = 2) ?(extra = []) () =
  Json.Obj
    (( "model",
       Json.Obj
         [
           ("kind", Json.String "mvl");
           ("text", Json.String (mm1_text ~capacity));
         ] )
     :: extra)

(* ------------------------------------------------------------------ *)
(* Protocol round trips                                                *)

let test_addr_parsing () =
  let ok text expected =
    match Proto.addr_of_string text with
    | Ok addr ->
      Alcotest.(check string) text expected (Proto.addr_to_string addr)
    | Error msg -> Alcotest.fail (text ^ ": " ^ msg)
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "/tmp/x.sock" "unix:/tmp/x.sock";
  ok "./d.sock" "unix:./d.sock";
  ok "tcp:localhost:7777" "tcp:localhost:7777";
  ok "localhost:7777" "tcp:localhost:7777";
  List.iter
    (fun text ->
       match Proto.addr_of_string text with
       | Ok addr ->
         Alcotest.fail
           (Printf.sprintf "%S parsed as %s" text (Proto.addr_to_string addr))
       | Error _ -> ())
    [ ""; "tcp:localhost"; "tcp:host:notaport"; "tcp:host:99999"; "plainname" ]

let test_request_round_trip () =
  let request =
    {
      Proto.id = 42;
      op = "generate";
      args = model_args ();
      budget = Some { Proto.max_states = Some 100; wall_s = Some 1.5 };
      trace = Some { Proto.request_id = "req-001"; collect_spans = true };
    }
  in
  (match Proto.parse_request (Proto.encode_request request) with
   | Error msg -> Alcotest.fail msg
   | Ok parsed ->
     Alcotest.(check int) "id" request.Proto.id parsed.Proto.id;
     Alcotest.(check string) "op" request.Proto.op parsed.Proto.op;
     Alcotest.(check bool) "args" true (request.Proto.args = parsed.Proto.args);
     Alcotest.(check bool) "budget" true
       (request.Proto.budget = parsed.Proto.budget);
     Alcotest.(check bool) "trace spec" true
       (request.Proto.trace = parsed.Proto.trace));
  (* a traceless request stays traceless; unknown peers' extra fields
     never break parsing *)
  match
    Proto.parse_request
      (Proto.encode_request { request with Proto.trace = None })
  with
  | Error msg -> Alcotest.fail msg
  | Ok parsed -> Alcotest.(check bool) "no trace" true (parsed.Proto.trace = None)

let test_response_round_trip () =
  let ok_response =
    {
      Proto.rsp_id = 7;
      outcome = Ok (Json.Obj [ ("states", Json.Int 16) ]);
      cache = Some (3, 1);
      elapsed_s = 0.25;
      trace =
        Some
          (Json.Obj
             [
               ("schema", Json.String Obs.trace_spans_schema);
               ("spans", Json.List []);
             ]);
    }
  in
  (match Proto.parse_response (Proto.encode_response ok_response) with
   | Error msg -> Alcotest.fail msg
   | Ok parsed ->
     Alcotest.(check int) "id" 7 parsed.Proto.rsp_id;
     Alcotest.(check bool) "outcome" true
       (parsed.Proto.outcome = ok_response.Proto.outcome);
     Alcotest.(check bool) "cache" true (parsed.Proto.cache = Some (3, 1));
     Alcotest.(check bool) "trace" true
       (parsed.Proto.trace = ok_response.Proto.trace));
  let err_response =
    {
      Proto.rsp_id = 8;
      outcome =
        Error { Proto.kind = Proto.Budget_exceeded; message = "too big" };
      cache = None;
      elapsed_s = 0.0;
      trace = None;
    }
  in
  match Proto.parse_response (Proto.encode_response err_response) with
  | Error msg -> Alcotest.fail msg
  | Ok parsed ->
    Alcotest.(check bool) "error outcome" true
      (parsed.Proto.outcome = err_response.Proto.outcome)

let test_frame_round_trip () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
    (fun () ->
       let body = String.init 1000 (fun i -> Char.chr (i mod 256)) in
       Proto.write_frame w body;
       (match Proto.read_frame r with
        | Some got -> Alcotest.(check string) "frame body" body got
        | None -> Alcotest.fail "unexpected EOF");
       (* an oversized frame is rejected without being read *)
       Proto.write_frame w (String.make 100 'x');
       match Proto.read_frame ~max_frame:10 r with
       | exception Proto.Frame_error _ -> ()
       | _ -> Alcotest.fail "oversized frame accepted")

(* ------------------------------------------------------------------ *)
(* JSON hardening for untrusted input                                  *)

let json_gen =
  let open QCheck2.Gen in
  sized_size (int_bound 4) @@ fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) int;
            map (fun f -> Json.Float f) float;
            map (fun s -> Json.String s) (string_size (int_bound 20));
          ]
      in
      if n = 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun l -> Json.List l) (list_size (int_bound 4) (self (n - 1)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_bound 4)
                 (pair (string_size (int_bound 8)) (self (n - 1))));
          ])

let json_round_trip_prop =
  QCheck2.Test.make ~name:"json round-trips through print and hardened parse"
    ~count:500 json_gen (fun json ->
      Json.of_string (Json.to_string ~compact:true json) = json)

let test_json_adversarial () =
  let rejected ?max_depth ?max_bytes text =
    match Json.of_string ?max_depth ?max_bytes text with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted %S" text)
  in
  (* nesting bomb: the counter starts at 0, so max_depth:32 admits 33
     bracket levels and rejects the 34th *)
  let deep n = String.make n '[' ^ String.make n ']' in
  rejected ~max_depth:32 (deep 34);
  ignore (Json.of_string ~max_depth:32 (deep 33));
  (* the default depth cap also holds *)
  rejected (deep (Json.default_max_depth + 2));
  (* size cap *)
  rejected ~max_bytes:16 (Printf.sprintf "%S" (String.make 100 'a'));
  (* trailing garbage after a valid document *)
  rejected "{} []";
  rejected "1 2";
  rejected "[1,2,3] x";
  (* truncated documents *)
  rejected "{\"a\":";
  rejected "[1,2";
  rejected "\"unterminated";
  (* malformed requests never crash the protocol layer *)
  List.iter
    (fun body ->
       match Proto.parse_request body with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail (Printf.sprintf "request accepted: %S" body))
    [
      "";
      "not json";
      "[]";
      "{\"schema\":\"bogus\",\"id\":1,\"op\":\"ping\"}";
      "{\"schema\":\"mv-serve-v1\",\"op\":\"ping\"}";
      "{\"schema\":\"mv-serve-v1\",\"id\":1}";
      deep 64;
    ]

(* ------------------------------------------------------------------ *)
(* Stale cache temp files                                              *)

let test_sweep_tmp () =
  in_sandbox @@ fun dir ->
  let cache = Cache.open_dir dir in
  Cache.store cache ~key:"live" ~op:"test" "payload";
  (* plant what a writer killed between write and rename leaves *)
  let plant path = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "junk") in
  plant (Filename.concat dir "index.json.tmp.12345");
  plant (Filename.concat (Filename.concat dir "objects") "abc.tmp.12345");
  let swept = Cache.sweep_tmp cache in
  Alcotest.(check int) "both stale files swept" 2 swept;
  Alcotest.(check bool) "stale object tmp removed" false
    (Sys.file_exists (Filename.concat (Filename.concat dir "objects") "abc.tmp.12345"));
  Alcotest.(check (option string)) "live object untouched" (Some "payload")
    (Cache.find cache ~key:"live");
  Alcotest.(check int) "nothing left to sweep" 0 (Cache.sweep_tmp cache)

(* ------------------------------------------------------------------ *)
(* Dispatch (no sockets)                                               *)

let dispatch ?cache ?budget op args =
  Ops.dispatch ?cache { Proto.id = 1; op; args; budget; trace = None }

let error_kind = function
  | Error { Proto.kind; _ } -> Some kind
  | Ok _ -> None

let test_dispatch_basics () =
  (match dispatch "ping" (Json.Obj []) with
   | Ok _ -> ()
   | Error { Proto.message; _ } -> Alcotest.fail message);
  (match dispatch "version" (Json.Obj []) with
   | Ok versions ->
     Alcotest.(check bool) "protocol version present" true
       (Json.member "protocol" versions = Some (Json.String Proto.schema))
   | Error { Proto.message; _ } -> Alcotest.fail message);
  Alcotest.(check bool) "unsupported op" true
    (error_kind (dispatch "frobnicate" (Json.Obj [])) = Some Proto.Unsupported_op);
  Alcotest.(check bool) "missing model is bad_request" true
    (error_kind (dispatch "generate" (Json.Obj [])) = Some Proto.Bad_request);
  Alcotest.(check bool) "broken model is model_error" true
    (error_kind
       (dispatch "generate"
          (Json.Obj
             [
               ( "model",
                 Json.Obj
                   [ ("kind", Json.String "mvl"); ("text", Json.String "???") ]
               );
             ]))
     = Some Proto.Model_error);
  Alcotest.(check bool) "cache-stats without cache is no_cache" true
    (error_kind (dispatch "cache-stats" (Json.Obj [])) = Some Proto.No_cache)

let test_dispatch_budget () =
  (* a states budget far below the model's size must come back as a
     structured budget_exceeded error *)
  Alcotest.(check bool) "states budget" true
    (error_kind
       (dispatch "generate" (model_args ())
          ~budget:{ Proto.max_states = Some 2; wall_s = None })
     = Some Proto.Budget_exceeded);
  (* the wall budget interrupts a sleeping request *)
  Alcotest.(check bool) "wall budget" true
    (error_kind
       (dispatch "sleep"
          (Json.Obj [ ("s", Json.Float 5.0) ])
          ~budget:{ Proto.max_states = None; wall_s = Some 0.05 })
     = Some Proto.Budget_exceeded);
  (* the states budget applies to cached results too: warm the cache
     without a budget, then ask again under one — the cache hit must
     still come back as budget_exceeded, exactly like the cold run *)
  in_sandbox @@ fun dir ->
  let cache = Cache.open_dir dir in
  (match dispatch ~cache "generate" (model_args ()) with
   | Ok _ -> ()
   | Error { Proto.message; _ } ->
     Alcotest.fail ("unbudgeted warm-up failed: " ^ message));
  Alcotest.(check bool) "states budget on a cache hit" true
    (error_kind
       (dispatch ~cache "generate" (model_args ())
          ~budget:{ Proto.max_states = Some 2; wall_s = None })
     = Some Proto.Budget_exceeded)

(* ------------------------------------------------------------------ *)
(* End-to-end server                                                   *)

let with_server ?(workers = 2) ?(queue_capacity = 8) ?(with_cache = false) f =
  in_sandbox @@ fun dir ->
  let cache =
    if with_cache then Some (Cache.open_dir (Filename.concat dir "cache"))
    else None
  in
  let server =
    Server.create
      {
        Server.addr = Proto.Unix_path (Filename.concat dir "d.sock");
        workers;
        queue_capacity;
        max_frame = Proto.default_max_frame;
        cache;
        slow_s = Server.default_slow_s;
      }
  in
  let runner = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.initiate_drain server;
      Thread.join runner)
    (fun () -> f (Server.addr server) server)

let check_ok name response =
  match response.Proto.outcome with
  | Ok result -> result
  | Error { Proto.message; _ } -> Alcotest.fail (name ^ ": " ^ message)

let artifact_of result =
  match Json.member "artifact" result with
  | Some (Json.String s) -> s
  | _ -> Alcotest.fail "missing artifact"

let test_server_warm_cache () =
  with_server ~with_cache:true @@ fun addr _server ->
  Client.with_connection addr @@ fun client ->
  let cold = Client.call client ~op:"generate" (model_args ()) in
  let cold_result = check_ok "cold" cold in
  (match cold.Proto.cache with
   | Some (_, misses) when misses > 0 -> ()
   | provenance ->
     Alcotest.fail
       (Printf.sprintf "cold request should record misses, got %s"
          (match provenance with
           | None -> "no provenance"
           | Some (h, m) -> Printf.sprintf "(%d,%d)" h m)));
  let warm = Client.call client ~op:"generate" (model_args ()) in
  let warm_result = check_ok "warm" warm in
  (match warm.Proto.cache with
   | Some (hits, 0) when hits > 0 -> ()
   | provenance ->
     Alcotest.fail
       (Printf.sprintf "warm request should be all hits, got %s"
          (match provenance with
           | None -> "no provenance"
           | Some (h, m) -> Printf.sprintf "(%d,%d)" h m)));
  Alcotest.(check string) "cold and warm artifacts identical"
    (artifact_of cold_result) (artifact_of warm_result);
  (* byte-identical to a local, pool-less run *)
  let local =
    Mv_lts.Aut.to_string
      (Flow.Run.generate
         { Flow.Config.default with max_states = Some 1_000_000 }
         (Flow.model_of_text (mm1_text ~capacity:2)))
  in
  Alcotest.(check string) "remote artifact matches local run" local
    (artifact_of cold_result)

let test_server_budget_concurrent () =
  (* an over-budget request fails with a structured error while a
     concurrent small request on the same pool completes *)
  with_server ~workers:2 @@ fun addr _server ->
  let big_outcome = ref None and small_outcome = ref None in
  let big =
    Thread.create
      (fun () ->
         Client.with_connection addr (fun client ->
             big_outcome :=
               Some
                 (Client.call client ~op:"generate"
                    ~budget:{ Proto.max_states = Some 3; wall_s = None }
                    (model_args ~capacity:30 ()))))
      ()
  and small =
    Thread.create
      (fun () ->
         Client.with_connection addr (fun client ->
             small_outcome :=
               Some (Client.call client ~op:"generate" (model_args ()))))
      ()
  in
  Thread.join big;
  Thread.join small;
  (match !big_outcome with
   | Some { Proto.outcome = Error { Proto.kind = Proto.Budget_exceeded; _ }; _ }
     -> ()
   | Some { Proto.outcome = Error { Proto.message; _ }; _ } ->
     Alcotest.fail ("wrong error: " ^ message)
   | Some { Proto.outcome = Ok _; _ } ->
     Alcotest.fail "over-budget request succeeded"
   | None -> Alcotest.fail "no response to the over-budget request");
  match !small_outcome with
  | Some response -> ignore (check_ok "small concurrent request" response)
  | None -> Alcotest.fail "no response to the small request"

let test_server_overload () =
  (* one worker busy + a full queue of one => the third concurrent
     request is rejected immediately with [overloaded] *)
  with_server ~workers:1 ~queue_capacity:1 @@ fun addr _server ->
  let sleep_args s = Json.Obj [ ("s", Json.Float s) ] in
  let first_outcome = ref None and second_outcome = ref None in
  let first =
    Thread.create
      (fun () ->
         Client.with_connection addr (fun client ->
             first_outcome :=
               Some (Client.call client ~op:"sleep" (sleep_args 0.6))))
      ()
  in
  Thread.delay 0.15;
  let second =
    Thread.create
      (fun () ->
         Client.with_connection addr (fun client ->
             second_outcome :=
               Some (Client.call client ~op:"sleep" (sleep_args 0.05))))
      ()
  in
  Thread.delay 0.15;
  (* worker occupied by the first, queue holding the second: this one
     must bounce without waiting *)
  let started = Unix.gettimeofday () in
  let third =
    Client.with_connection addr (fun client ->
        Client.call client ~op:"sleep" (sleep_args 0.05))
  in
  let reject_latency = Unix.gettimeofday () -. started in
  (match third.Proto.outcome with
   | Error { Proto.kind = Proto.Overloaded; _ } -> ()
   | Error { Proto.message; _ } -> Alcotest.fail ("wrong error: " ^ message)
   | Ok _ -> Alcotest.fail "third request should have been rejected");
  Alcotest.(check bool)
    (Printf.sprintf "fast reject (%.3fs)" reject_latency)
    true (reject_latency < 0.3);
  Thread.join first;
  Thread.join second;
  (match !first_outcome with
   | Some response -> ignore (check_ok "first (executing) request" response)
   | None -> Alcotest.fail "no response to the first request");
  match !second_outcome with
  | Some response -> ignore (check_ok "second (queued) request" response)
  | None -> Alcotest.fail "no response to the second request"

let test_server_drain () =
  with_server ~workers:1 @@ fun addr server ->
  let slow_outcome = ref None in
  let slow =
    Thread.create
      (fun () ->
         Client.with_connection addr (fun client ->
             slow_outcome :=
               Some
                 (Client.call client ~op:"sleep"
                    (Json.Obj [ ("s", Json.Float 0.4) ]))))
      ()
  in
  Thread.delay 0.1;
  (* connect before drain: existing connections keep their reader *)
  Client.with_connection addr @@ fun client ->
  Server.initiate_drain server;
  Thread.delay 0.1;
  let refused = Client.call client ~op:"ping" (Json.Obj []) in
  (match refused.Proto.outcome with
   | Error { Proto.kind = Proto.Draining; _ } -> ()
   | Error { Proto.message; _ } -> Alcotest.fail ("wrong error: " ^ message)
   | Ok _ -> Alcotest.fail "request admitted while draining");
  Thread.join slow;
  match !slow_outcome with
  | Some response -> ignore (check_ok "in-flight request drained" response)
  | None -> Alcotest.fail "in-flight request lost during drain"

let test_server_metrics () =
  with_server @@ fun addr _server ->
  Client.with_connection addr @@ fun client ->
  let result = check_ok "metrics" (Client.call client ~op:"metrics" (Json.Obj [])) in
  let server_stats =
    match Json.member "server" result with
    | Some (Json.Obj _ as s) -> s
    | _ -> Alcotest.fail "metrics response lacks server gauges"
  in
  List.iter
    (fun gauge ->
       match Json.member gauge server_stats with
       | Some (Json.Int _) -> ()
       | _ -> Alcotest.fail ("missing server gauge " ^ gauge))
    [ "queue_depth"; "in_flight"; "connections"; "accepted"; "requests";
      "workers"; "queue_capacity" ];
  match Json.member "metrics" result with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "metrics response lacks the mv-obs snapshot"

(* ------------------------------------------------------------------ *)
(* Request-centric telemetry                                           *)

(* run [f] with telemetry on and a clean registry, resetting after
   (the registry is process-global, so each test starts from zero) *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Log.clear ();
  Fun.protect ~finally:Obs.reset f

let contains haystack needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let test_server_request_trace () =
  with_obs @@ fun () ->
  (* client and server sides of a traced --remote call land in one
     trace sharing one request id: the client span records locally,
     the server ships its spans in the response and they are ingested
     under the remote pid *)
  with_server @@ fun addr _server ->
  let rid = "req-e2e-1" in
  let response =
    Obs.with_request rid (fun () ->
        Obs.span "remote.call" (fun () ->
            Client.with_connection addr (fun client ->
                Client.call client ~op:"generate"
                  ~trace:{ Proto.request_id = rid; collect_spans = true }
                  (model_args ()))))
  in
  ignore (check_ok "traced request" response);
  (match response.Proto.trace with
   | Some spans ->
     Alcotest.(check bool) "trace schema" true
       (Json.member "schema" spans
        = Some (Json.String Obs.trace_spans_schema));
     Obs.ingest_spans spans
   | None -> Alcotest.fail "response carries no spans");
  let spans = Obs.spans_for_request rid in
  let has name pid =
    List.exists
      (fun sp -> sp.Obs.sp_name = name && sp.Obs.sp_pid = pid)
      spans
  in
  Alcotest.(check bool) "client span, local pid" true (has "remote.call" 1);
  Alcotest.(check bool) "server span, remote pid" true (has "serve.request" 2);
  Alcotest.(check bool) "every span carries the request id" true
    (spans <> []
     && List.for_all (fun sp -> sp.Obs.sp_request = Some rid) spans)

let test_server_queue_metrics () =
  (* requests_rejected counts the overload fast-reject path and the
     queue-wait histogram sees every admitted request *)
  with_obs @@ fun () ->
  with_server ~workers:1 ~queue_capacity:1 @@ fun addr _server ->
  let rejected0 = Obs.counter_value (Obs.counter "serve.requests_rejected") in
  let sleep_args s = Json.Obj [ ("s", Json.Float s) ] in
  let first =
    Thread.create
      (fun () ->
         Client.with_connection addr (fun client ->
             ignore (Client.call client ~op:"sleep" (sleep_args 0.4))))
      ()
  in
  Thread.delay 0.1;
  let second =
    Thread.create
      (fun () ->
         Client.with_connection addr (fun client ->
             ignore (Client.call client ~op:"sleep" (sleep_args 0.05))))
      ()
  in
  Thread.delay 0.1;
  let third =
    Client.with_connection addr (fun client ->
        Client.call client ~op:"sleep" (sleep_args 0.05))
  in
  (match third.Proto.outcome with
   | Error { Proto.kind = Proto.Overloaded; _ } -> ()
   | _ -> Alcotest.fail "third request should have been rejected");
  Thread.join first;
  Thread.join second;
  Alcotest.(check bool) "requests_rejected counted" true
    (Obs.counter_value (Obs.counter "serve.requests_rejected") > rejected0);
  let waits = Obs.histogram_snapshot (Obs.histogram "serve.queue_wait_s") in
  Alcotest.(check bool) "queue_wait_s observed" true (waits.Obs.hs_count >= 2);
  (* the queued request's wait includes the first one's sleep *)
  Alcotest.(check bool) "queued request waited" true (waits.Obs.hs_max > 0.1);
  (* the reject left a structured log event *)
  Alcotest.(check bool) "overload rejection logged" true
    (List.exists
       (fun e ->
          e.Log.ev_level = Log.Warn
          && e.Log.ev_msg = "request rejected: overloaded")
       (Log.recent ()))

let test_server_metrics_text () =
  with_obs @@ fun () ->
  with_server @@ fun addr _server ->
  Client.with_connection addr @@ fun client ->
  ignore (check_ok "warm-up" (Client.call client ~op:"ping" (Json.Obj [])));
  let result =
    check_ok "metrics-text" (Client.call client ~op:"metrics-text" (Json.Obj []))
  in
  let exposition = Ops.texts_of_json result in
  Alcotest.(check int) "exit 0" 0 exposition.Ops.code;
  let has = contains exposition.Ops.out in
  Alcotest.(check bool) "terminated by EOF marker" true (has "# EOF\n");
  Alcotest.(check bool) "request-latency family present" true
    (has "# TYPE serve_request_latency_s histogram");
  Alcotest.(check bool) "per-op labels" true
    (has "serve_request_latency_s_bucket{op=\"ping\"");
  Alcotest.(check bool) "counters exposed as _total" true
    (has "serve_requests_total")

let test_server_logs_op () =
  with_obs @@ fun () ->
  with_server @@ fun addr _server ->
  Client.with_connection addr @@ fun client ->
  ignore (check_ok "ping" (Client.call client ~op:"ping" (Json.Obj [])));
  let result =
    check_ok "logs"
      (Client.call client ~op:"logs" (Json.Obj [ ("limit", Json.Int 100) ]))
  in
  Alcotest.(check bool) "mv-log-v1 schema" true
    (Json.member "schema" result = Some (Json.String Log.schema));
  match Json.member "events" result with
  | Some (Json.List events) ->
    Alcotest.(check bool) "admission event present" true
      (List.exists
         (fun e -> Json.member "msg" e = Some (Json.String "request admitted"))
         events)
  | _ -> Alcotest.fail "logs response lacks events"

let test_server_http_scrape () =
  (* a plain HTTP GET on the same listener answers the OpenMetrics
     exposition *)
  with_obs @@ fun () ->
  with_server @@ fun addr _server ->
  Client.with_connection addr (fun client ->
      ignore (check_ok "ping" (Client.call client ~op:"ping" (Json.Obj []))));
  let path = match addr with Proto.Unix_path p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let http_request = "GET /metrics HTTP/1.0\r\n\r\n" in
  ignore (Unix.write_substring fd http_request 0 (String.length http_request));
  let buffer = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buffer chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  let reply = Buffer.contents buffer in
  let has = contains reply in
  Alcotest.(check bool) "HTTP 200" true
    (String.length reply > 15 && String.sub reply 0 15 = "HTTP/1.0 200 OK");
  Alcotest.(check bool) "openmetrics content type" true
    (has "application/openmetrics-text");
  Alcotest.(check bool) "exposition body" true (has "# EOF\n");
  Alcotest.(check bool) "scrape counted" true (has "serve_http_scrapes_total")

let suite =
  [
    Alcotest.test_case "addr parsing" `Quick test_addr_parsing;
    Alcotest.test_case "request round trip" `Quick test_request_round_trip;
    Alcotest.test_case "response round trip" `Quick test_response_round_trip;
    Alcotest.test_case "frame round trip" `Quick test_frame_round_trip;
    QCheck_alcotest.to_alcotest json_round_trip_prop;
    Alcotest.test_case "json adversarial inputs" `Quick test_json_adversarial;
    Alcotest.test_case "cache sweep_tmp" `Quick test_sweep_tmp;
    Alcotest.test_case "dispatch basics" `Quick test_dispatch_basics;
    Alcotest.test_case "dispatch budgets" `Quick test_dispatch_budget;
    Alcotest.test_case "server warm cache provenance" `Quick
      test_server_warm_cache;
    Alcotest.test_case "server budget vs concurrent request" `Quick
      test_server_budget_concurrent;
    Alcotest.test_case "server overload fast-reject" `Quick test_server_overload;
    Alcotest.test_case "server graceful drain" `Quick test_server_drain;
    Alcotest.test_case "server metrics" `Quick test_server_metrics;
    Alcotest.test_case "server request trace propagation" `Quick
      test_server_request_trace;
    Alcotest.test_case "server queue metrics and rejection logging" `Quick
      test_server_queue_metrics;
    Alcotest.test_case "server metrics-text exposition" `Quick
      test_server_metrics_text;
    Alcotest.test_case "server logs op" `Quick test_server_logs_op;
    Alcotest.test_case "server HTTP /metrics scrape" `Quick
      test_server_http_scrape;
  ]
