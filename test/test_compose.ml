(* Tests for mv_compose: LTS parallel composition and the two
   compositional-verification strategies. *)

module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Parallel = Mv_compose.Parallel
module Net = Mv_compose.Net
module Parser = Mv_calc.Parser
module State_space = Mv_calc.State_space

let lts_of text = State_space.lts (Parser.spec_of_string_checked text)

let test_compose_matches_calculus () =
  (* composing generated component LTSs must agree (up to strong
     bisimulation) with generating the composed specification *)
  let left = lts_of "process P := a ; b ; P\ninit P" in
  let right = lts_of "process Q := b ; c ; Q\ninit Q" in
  let composed = Parallel.compose ~sync:[ "b" ] left right in
  let direct =
    lts_of
      "process P := a ; b ; P\nprocess Q := b ; c ; Q\ninit P |[b]| Q"
  in
  Alcotest.(check bool) "agrees with calculus" true
    (Mv_bisim.Strong.equivalent composed direct)

let test_compose_value_matching () =
  let left = lts_of "init g !1 ; stop" in
  let right = lts_of "init g !2 ; stop" in
  let composed = Parallel.compose ~sync:[ "g" ] left right in
  (* values differ: no synchronization possible *)
  Alcotest.(check int) "deadlocked" 1 (Lts.nb_states composed)

let test_compose_interleaving () =
  let left = lts_of "process P := a ; P\ninit P" in
  let right = lts_of "process Q := b ; Q\ninit Q" in
  let composed = Parallel.compose ~sync:[] left right in
  Alcotest.(check int) "product of cycles" 1 (Lts.nb_states composed);
  Alcotest.(check int) "both actions" 2 (Lts.nb_transitions composed)

let tandem_node length =
  (* a chain of 1-place buffers: buffer k forwards g<k> to g<k+1> *)
  let buffer k =
    let input = Printf.sprintf "g%d" k and output = Printf.sprintf "g%d" (k + 1) in
    Net.Leaf
      ( Printf.sprintf "buf%d" k,
        lts_of
          (Printf.sprintf "process B := %s ; %s ; B\ninit B" input output) )
  in
  let rec build acc k =
    if k >= length then acc
    else
      let gate = Printf.sprintf "g%d" k in
      build (Net.Hide ([ gate ], Net.Par ([ gate ], acc, buffer k))) (k + 1)
  in
  build (buffer 0) 1

let test_strategies_agree () =
  let node = tandem_node 4 in
  let mono = Net.evaluate ~strategy:`Monolithic node in
  let comp = Net.evaluate ~strategy:`Compositional node in
  Alcotest.(check bool) "branching equivalent" true
    (Mv_bisim.Branching.equivalent mono.Net.result comp.Net.result);
  Alcotest.(check bool) "compositional not larger" true
    (comp.Net.peak_states <= mono.Net.peak_states);
  Alcotest.(check bool) "steps recorded" true (List.length comp.Net.steps > 0)

let test_rename_node () =
  let leaf = Net.Leaf ("p", lts_of "init g !1 ; stop") in
  let renamed = Net.Rename ([ ("g", "h") ], leaf) in
  let report = Net.evaluate ~strategy:`Monolithic renamed in
  Alcotest.(check (list string)) "gate renamed, offer kept" [ "h !1" ]
    (Lts.occurring_labels report.Net.result)

let test_hide_node () =
  let leaf = Net.Leaf ("p", lts_of "init g !1 ; h !2 ; stop") in
  let report = Net.evaluate ~strategy:`Monolithic (Net.Hide ([ "g" ], leaf)) in
  Alcotest.(check (list string)) "hidden" [ "h !2"; "i" ]
    (Lts.occurring_labels report.Net.result)

let test_par_list () =
  let leaf text = Net.Leaf (text, lts_of ("process P := " ^ text ^ " ; P\ninit P")) in
  let node = Net.par_list [] [ leaf "a"; leaf "b"; leaf "c" ] in
  let report = Net.evaluate ~strategy:`Monolithic node in
  Alcotest.(check int) "three interleaved loops" 1
    (Lts.nb_states report.Net.result);
  Alcotest.(check int) "three actions" 3 (Lts.nb_transitions report.Net.result)

(* A network where composition order matters. All three components
   synchronize multiway on [g]; A and C loop through private segments
   between [g]s, while B never offers [g] at all — so the composed
   system is stuck at its initial state. Naive left-to-right order
   composes A with C first and pays for their full segment
   interleaving; the greedy planner's interface estimate (no shared
   gate means no pruning) starts from B instead, and every
   intermediate collapses to a single reachable state. *)
let planner_chain () =
  let component name body =
    Net.Leaf
      (name, lts_of (Printf.sprintf "process %s := %s\ninit %s" name body name))
  in
  let a = component "A" "g ; a1 ; a2 ; a3 ; A" in
  let c = component "C" "g ; c1 ; c2 ; c3 ; C" in
  let b = Net.Leaf ("B", lts_of "init stop") in
  (* A and C adjacent: the naive order composes them first *)
  Net.par_list [ "g" ] [ a; c; b ]

let test_planner_beats_naive () =
  let node = planner_chain () in
  let naive = Net.evaluate ~plan:`Naive ~strategy:`Compositional node in
  let greedy = Net.evaluate ~plan:`Greedy ~strategy:`Compositional node in
  Alcotest.(check bool) "same behaviour" true
    (Mv_bisim.Branching.equivalent naive.Net.result greedy.Net.result);
  Alcotest.(check bool)
    (Printf.sprintf "greedy peak %d < naive peak %d" greedy.Net.peak_states
       naive.Net.peak_states)
    true
    (greedy.Net.peak_states < naive.Net.peak_states)

let test_planner_default_unchanged () =
  (* plan defaults to `Naive: existing callers see identical reports *)
  let node = planner_chain () in
  let implicit = Net.evaluate ~strategy:`Compositional node in
  let explicit = Net.evaluate ~plan:`Naive ~strategy:`Compositional node in
  Alcotest.(check int) "same peak" explicit.Net.peak_states
    implicit.Net.peak_states;
  Alcotest.(check int) "same steps" (List.length explicit.Net.steps)
    (List.length implicit.Net.steps)

(* Property: Parallel.compose agrees with the calculus semantics of
   |[gates]| on randomly chosen small cyclic processes. *)
let compose_agreement_prop =
  let gen =
    QCheck2.Gen.(
      let gate = oneofl [ "a"; "b"; "c" ] in
      let* g1 = gate and* g2 = gate and* g3 = gate and* g4 = gate in
      let* sync = oneofl [ []; [ "a" ]; [ "b" ]; [ "a"; "b"; "c" ] ] in
      return ((g1, g2), (g3, g4), sync))
  in
  QCheck2.Test.make ~name:"Parallel.compose agrees with MVL semantics" ~count:40
    gen
    (fun ((g1, g2), (g3, g4), sync) ->
       let proc name x y =
         Printf.sprintf "process %s := %s ; %s ; %s\n" name x y name
       in
       let left = lts_of (proc "P" g1 g2 ^ "init P") in
       let right = lts_of (proc "Q" g3 g4 ^ "init Q") in
       let composed = Parallel.compose ~sync left right in
       let sync_text = String.concat ", " sync in
       let direct =
         lts_of
           (proc "P" g1 g2 ^ proc "Q" g3 g4
            ^
            if sync = [] then "init P ||| Q"
            else Printf.sprintf "init P |[%s]| Q" sync_text)
       in
       Mv_bisim.Strong.equivalent composed direct)

let suite =
  [
    Alcotest.test_case "compose matches calculus" `Quick
      test_compose_matches_calculus;
    Alcotest.test_case "value matching" `Quick test_compose_value_matching;
    Alcotest.test_case "interleaving" `Quick test_compose_interleaving;
    Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
    Alcotest.test_case "rename node" `Quick test_rename_node;
    Alcotest.test_case "hide node" `Quick test_hide_node;
    Alcotest.test_case "par_list" `Quick test_par_list;
    Alcotest.test_case "greedy planner beats naive" `Quick
      test_planner_beats_naive;
    Alcotest.test_case "planner default unchanged" `Quick
      test_planner_default_unchanged;
    QCheck_alcotest.to_alcotest compose_agreement_prop;
  ]
