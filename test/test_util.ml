(* Unit and property tests for mv_util: Vec, Bitset, Rng. *)

module Vec = Mv_util.Vec
module Bitset = Mv_util.Bitset
module Rng = Mv_util.Rng

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get 31" (31 * 31) (Vec.get v 31);
  Vec.set v 31 7;
  Alcotest.(check int) "set" 7 (Vec.get v 31)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () ->
      Vec.set v (-1) 0)

let test_vec_to_array_iter () =
  let v = Vec.create ~capacity:1 () in
  List.iter (Vec.push v) [ 3; 1; 4; 1; 5 ];
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4; 1; 5 |] (Vec.to_array v);
  let seen = ref [] in
  Vec.iter (fun x -> seen := x :: !seen) v;
  Alcotest.(check (list int)) "iter order" [ 5; 1; 4; 1; 3 ] !seen;
  Vec.clear v;
  Alcotest.(check int) "clear" 0 (Vec.length v)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 64" false (Bitset.mem s 64);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list" [ 0; 99 ] (Bitset.to_list s)

let test_bitset_complement_full () =
  let s = Bitset.create 13 in
  Bitset.add s 5;
  Bitset.complement s;
  Alcotest.(check int) "complement cardinal" 12 (Bitset.cardinal s);
  Alcotest.(check bool) "5 gone" false (Bitset.mem s 5);
  Alcotest.(check bool) "12 present" true (Bitset.mem s 12);
  let f = Bitset.full 13 in
  Alcotest.(check int) "full" 13 (Bitset.cardinal f);
  Bitset.complement f;
  Alcotest.(check bool) "complement of full is empty" true (Bitset.is_empty f)

let test_bitset_set_ops () =
  let a = Bitset.of_list 20 [ 1; 3; 5; 7 ] in
  let b = Bitset.of_list 20 [ 3; 4; 5; 6 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~into:u b;
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 5; 6; 7 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into ~into:i b;
  Alcotest.(check (list int)) "inter" [ 3; 5 ] (Bitset.to_list i);
  Alcotest.(check bool) "equal self" true (Bitset.equal a a);
  Alcotest.(check bool) "not equal" false (Bitset.equal a b)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "add oob" (Invalid_argument "Bitset.add") (fun () ->
      Bitset.add s 8)

(* Property: bitset operations agree with a sorted-list model. *)
let bitset_model_prop =
  QCheck2.Test.make ~name:"bitset agrees with list model" ~count:200
    QCheck2.Gen.(
      pair (list (int_bound 63)) (list (int_bound 63)))
    (fun (xs, ys) ->
       let a = Bitset.of_list 64 xs and b = Bitset.of_list 64 ys in
       let u = Bitset.copy a in
       Bitset.union_into ~into:u b;
       let i = Bitset.copy a in
       Bitset.inter_into ~into:i b;
       let model_u = List.sort_uniq compare (xs @ ys) in
       let model_i =
         List.sort_uniq compare (List.filter (fun x -> List.mem x ys) xs)
       in
       Bitset.to_list u = model_u
       && Bitset.to_list i = model_i
       && Bitset.cardinal u = List.length model_u)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done;
  let c = Rng.create 43L in
  Alcotest.(check bool) "different seed differs" true
    (Rng.next_int64 (Rng.create 42L) <> Rng.next_int64 c)

let test_rng_ranges () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Rng.int rng 10 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 10);
    let e = Rng.exponential rng ~rate:2.0 in
    Alcotest.(check bool) "exponential nonneg" true (e >= 0.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 123L in
  let n = 20000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng ~rate:4.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f close to 0.25" mean)
    true
    (abs_float (mean -. 0.25) < 0.01)

let test_rng_invalid () =
  let rng = Rng.create 1L in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int") (fun () ->
      ignore (Rng.int rng 0));
  Alcotest.check_raises "rate 0" (Invalid_argument "Rng.exponential") (fun () ->
      ignore (Rng.exponential rng ~rate:0.0))

(* Statistical independence smoke test for split streams (the
   per-replication seeding of the parallel simulator): two streams
   split off the same master look uniform and uncorrelated. *)
let test_rng_split_independence () =
  let master = Rng.create 2024L in
  let a = Rng.split master in
  let b = Rng.split master in
  let n = 10_000 in
  let xs = Array.init n (fun _ -> Rng.float a) in
  let ys = Array.init n (fun _ -> Rng.float b) in
  let mean arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int n in
  let mx = mean xs and my = mean ys in
  Alcotest.(check bool)
    (Printf.sprintf "mean a %.4f uniform" mx)
    true
    (abs_float (mx -. 0.5) < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "mean b %.4f uniform" my)
    true
    (abs_float (my -. 0.5) < 0.02);
  let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
  for i = 0 to n - 1 do
    cov := !cov +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    vx := !vx +. ((xs.(i) -. mx) ** 2.0);
    vy := !vy +. ((ys.(i) -. my) ** 2.0)
  done;
  let corr = !cov /. sqrt (!vx *. !vy) in
  (* the paired-draw sample correlation sits inside the ~3/sqrt(n)
     noise band around zero for independent streams *)
  Alcotest.(check bool)
    (Printf.sprintf "correlation %.4f near zero" corr)
    true
    (abs_float corr < 0.03);
  Alcotest.(check bool) "streams distinct" true (xs <> ys)

let suite =
  [
    Alcotest.test_case "vec push/get/set" `Quick test_vec_push_get;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec to_array/iter/clear" `Quick test_vec_to_array_iter;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basic;
    Alcotest.test_case "bitset complement/full" `Quick test_bitset_complement_full;
    Alcotest.test_case "bitset union/inter/equal" `Quick test_bitset_set_ops;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    QCheck_alcotest.to_alcotest bitset_model_prop;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng invalid args" `Quick test_rng_invalid;
    Alcotest.test_case "rng split independence" `Quick
      test_rng_split_independence;
  ]
