(* Tests for the SVL-style verification scripts. *)

module Svl = Mv_core.Svl

let queue_model =
  {|
process Producer := rate 2.0 ; push ; Producer
process Consumer := pop ; rate 3.0 ; Consumer
process Queue (n : int[0..2]) :=
    [n < 2] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init (Producer |[push]| Queue(0)) |[pop]| Consumer
|}

let in_sandbox f =
  let dir = Filename.temp_file "mv_svl" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "queue.mvl") in
  output_string oc queue_model;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir)
    (fun () -> f dir)

let test_full_flow () =
  in_sandbox (fun dir ->
      let steps =
        Svl.run_string ~dir
          {|
"q.aut"   = generate "queue.mvl" hide push ;
"min.aut" = branching reduction of "q.aut" ;
check deadlock of "q.aut" ;
compare "min.aut" == "q.aut" modulo branching ;
solve "queue.mvl" keep pop ;
|}
      in
      Alcotest.(check int) "five steps" 5 (List.length steps);
      Alcotest.(check bool) "all ok" true (Svl.all_ok steps);
      Alcotest.(check bool) "aut files written" true
        (Sys.file_exists (Filename.concat dir "q.aut")
         && Sys.file_exists (Filename.concat dir "min.aut"));
      (* the solve step reports the known M/M/1/K throughput *)
      let solve_step = List.nth steps 4 in
      Alcotest.(check bool) "throughput reported" true
        (Astring.String.is_infix ~affix:"pop: 1.8" solve_step.Svl.detail))

let test_failing_check () =
  in_sandbox (fun dir ->
      let steps =
        Svl.run_string ~dir
          {|
"q.aut" = generate "queue.mvl" ;
check "[ true* . pop ] false" of "q.aut" ;
check deadlock of "q.aut" ;
|}
      in
      Alcotest.(check int) "continues past failures" 3 (List.length steps);
      Alcotest.(check bool) "script not ok" false (Svl.all_ok steps);
      let violated = List.nth steps 1 in
      Alcotest.(check bool) "violation flagged" false (Svl.ok violated);
      (match violated.Svl.outcome with
       | Svl.Failed_check -> ()
       | Svl.Passed _ | Svl.Hard_error _ ->
         Alcotest.fail "expected Failed_check"))

let test_composition_statement () =
  in_sandbox (fun dir ->
      let steps =
        Svl.run_string ~dir
          {|
"q.aut" = generate "queue.mvl" ;
"qq.aut" = composition of "q.aut" |[pop]| "q.aut" ;
"h.aut" = hide pop in "qq.aut" ;
|}
      in
      Alcotest.(check bool) "all ok" true (Svl.all_ok steps))

let test_hard_error_stops () =
  in_sandbox (fun dir ->
      let steps =
        Svl.run_string ~dir
          {|
"q.aut" = generate "missing.mvl" ;
check deadlock of "q.aut" ;
|}
      in
      (* the unreadable file is reported and execution stops *)
      Alcotest.(check int) "stopped" 1 (List.length steps);
      Alcotest.(check bool) "reported as failure" false (Svl.all_ok steps);
      (* the failing step carries the real statement description, not a
         generic placeholder *)
      let step = List.hd steps in
      Alcotest.(check bool) "real description" true
        (Astring.String.is_infix ~affix:"missing.mvl" step.Svl.description);
      match step.Svl.outcome with
      | Svl.Hard_error _ -> ()
      | Svl.Passed _ | Svl.Failed_check -> Alcotest.fail "expected Hard_error")

let test_mvb_artifacts () =
  in_sandbox (fun dir ->
      let steps =
        Svl.run_string ~dir
          {|
"q.mvb" = generate "queue.mvl" ;
"min.aut" = branching reduction of "q.mvb" ;
compare "q.mvb" == "min.aut" modulo branching ;
|}
      in
      Alcotest.(check bool) "all ok" true (Svl.all_ok steps);
      Alcotest.(check bool) "mvb file written" true
        (Sys.file_exists (Filename.concat dir "q.mvb"));
      (* artifact paths are resolved against the script directory *)
      match (List.hd steps).Svl.outcome with
      | Svl.Passed { artifacts = [ path ]; _ } ->
        Alcotest.(check string) "resolved artifact path"
          (Filename.concat dir "q.mvb") path
      | _ -> Alcotest.fail "expected one artifact")

let test_expect_throughput () =
  in_sandbox (fun dir ->
      let steps =
        Svl.run_string ~dir
          {|
expect throughput pop of "queue.mvl" in [1.8, 1.9] ;
expect throughput pop of "queue.mvl" in [0.0, 0.5] ;
|}
      in
      (match steps with
       | [ ok_step; fail_step ] ->
         Alcotest.(check bool) "in range" true (Svl.ok ok_step);
         Alcotest.(check bool) "out of range" false (Svl.ok fail_step);
         Alcotest.(check bool) "flagged" true
           (Astring.String.is_infix ~affix:"OUT OF RANGE" fail_step.Svl.detail)
       | _ -> Alcotest.fail "expected two steps"))

let test_parse_errors () =
  List.iter
    (fun text ->
       try
         ignore (Svl.run_string text);
         Alcotest.fail ("expected parse error on: " ^ text)
       with Svl.Parse_error _ -> ())
    [
      "\"a.aut\" = generate ;";
      "check of \"x.aut\" ;";
      "compare \"a\" \"b\" modulo strong ;";
      "\"a.aut\" = zebra reduction of \"b.aut\" ;";
      "\"a.aut\" = generate \"b.mvl\"" (* missing ; *);
    ]

let suite =
  [
    Alcotest.test_case "full flow" `Quick test_full_flow;
    Alcotest.test_case "failing check" `Quick test_failing_check;
    Alcotest.test_case "composition + hide" `Quick test_composition_statement;
    Alcotest.test_case "hard error stops" `Quick test_hard_error_stops;
    Alcotest.test_case "mvb artifacts" `Quick test_mvb_artifacts;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "expect throughput" `Quick test_expect_throughput;
  ]
