(* Schedule-exploration tests: the shipped lock-free algorithms
   (Deque.Make, Shard_set.Bucket) instantiated over the virtual
   atomics of Mv_par.Interleave, with every interleaving of their
   atomic accesses enumerated. A failure here is a linearizability
   bug with a deterministic repro (the Violation carries the
   thread-choice schedule). *)

module Interleave = Mv_par.Interleave
module A = Mv_par.Interleave.A
module VDeque = Mv_par.Deque.Make (Mv_par.Interleave.A)

let explore = Interleave.explore

let check_stats name min_schedules (stats : Interleave.stats) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: explored >= %d schedules (got %d)" name min_schedules
       stats.Interleave.schedules)
    true
    (stats.Interleave.schedules >= min_schedules)

(* ---- harness self-test ---- *)

(* A racy read-modify-write MUST be caught: if the harness cannot see
   this lost update, none of the passes below mean anything. *)
let test_detects_lost_update () =
  let raced =
    try
      ignore
        (explore
           ~setup:(fun () -> A.make 0)
           ~threads:
             [ (fun c -> A.set c (A.get c + 1));
               (fun c -> A.set c (A.get c + 1)) ]
           ~check:(fun c -> A.get c = 2)
           ());
      false
    with Interleave.Violation _ -> true
  in
  Alcotest.(check bool) "lost update detected" true raced

let test_fetch_and_add_is_atomic () =
  let stats =
    explore
      ~setup:(fun () -> A.make 0)
      ~threads:
        [ (fun c -> ignore (A.fetch_and_add c 1));
          (fun c -> ignore (A.fetch_and_add c 1));
          (fun c -> ignore (A.fetch_and_add c 1)) ]
      ~check:(fun c -> A.get c = 3)
      ()
  in
  check_stats "fetch_and_add" 6 stats

(* ---- Chase-Lev deque ---- *)

type 'a race_state = {
  d : 'a VDeque.t;
  got : 'a option ref array; (* per-thread take result *)
}

let taken st = Array.to_list st.got |> List.filter_map (fun r -> !r)

(* drain what the threads left behind (check runs solo) *)
let rec drain d = match VDeque.pop d with None -> [] | Some x -> x :: drain d

(* Exactly-once delivery: whatever the schedule, the elements taken by
   the threads plus the leftovers are the pushed multiset. *)
let deque_race ~name ~min_schedules ~pushed ~threads () =
  let stats =
    explore
      ~setup:(fun () ->
        let d = VDeque.create () in
        List.iter (VDeque.push d) pushed;
        { d; got = Array.init (List.length threads) (fun _ -> ref None) })
      ~threads:
        (List.mapi (fun k take -> fun st -> st.got.(k) := take st.d) threads)
      ~check:(fun st ->
        List.sort compare (taken st @ drain st.d) = List.sort compare pushed)
      ()
  in
  check_stats name min_schedules stats

(* one element, owner pop vs thief steal: the CAS showdown — at most
   one side may win, and the element must not vanish *)
let test_deque_last_element_race () =
  deque_race ~name:"last element" ~min_schedules:5 ~pushed:[ 7 ]
    ~threads:[ VDeque.pop; VDeque.steal ] ()

(* owner pushes and pops interleaved with a thief *)
let test_deque_owner_vs_thief () =
  let stats =
    explore
      ~setup:(fun () ->
        { d = VDeque.create (); got = [| ref None; ref None; ref None |] })
      ~threads:
        [ (fun st ->
            VDeque.push st.d 1;
            VDeque.push st.d 2;
            st.got.(0) := VDeque.pop st.d;
            st.got.(1) := VDeque.pop st.d);
          (fun st -> st.got.(2) := VDeque.steal st.d) ]
      ~check:(fun st ->
        List.sort compare (taken st @ drain st.d) = [ 1; 2 ])
      ()
  in
  check_stats "owner vs thief" 50 stats

(* two thieves racing on a two-element deque: the top CAS must hand
   each element to exactly one thief *)
let test_deque_steal_steal_race () =
  deque_race ~name:"steal/steal" ~min_schedules:20 ~pushed:[ 1; 2 ]
    ~threads:[ VDeque.steal; VDeque.steal ] ()

(* the deque starts at capacity 8: a 9th push grows the buffer while a
   thief holds a reference to the old one *)
let test_deque_growth_during_steal () =
  let pushed = List.init 8 Fun.id in
  let stats =
    explore
      ~setup:(fun () ->
        let d = VDeque.create () in
        List.iter (VDeque.push d) pushed;
        { d; got = [| ref None |] })
      ~threads:
        [ (fun st -> VDeque.push st.d 8);
          (fun st -> st.got.(0) := VDeque.steal st.d) ]
      ~check:(fun st ->
        List.sort compare (taken st @ drain st.d) = List.init 9 Fun.id)
      ()
  in
  check_stats "growth during steal" 10 stats

(* ---- Shard_set bucket ---- *)

module B =
  Mv_par.Shard_set.Bucket
    (Mv_par.Interleave.A)
    (struct
      type t = int

      let equal = Int.equal
      let hash = Hashtbl.hash
    end)

type bucket_state = {
  head : B.node A.t;
  next_slot : int A.t;
  results : (int * bool) option ref array;
}

let bucket_setup nb_threads () =
  {
    head = A.make B.Nil;
    next_slot = A.make 0;
    results = Array.init nb_threads (fun _ -> ref None);
  }

let bucket_add st k x =
  let alloc () = A.fetch_and_add st.next_slot 1 in
  st.results.(k) := Some (B.add st.head x ~alloc)

let chain_occurrences st x =
  let rec walk n acc =
    match n with
    | B.Nil -> acc
    | B.Cons { elem; next; _ } -> walk next (if elem = x then acc + 1 else acc)
  in
  walk (A.get st.head) 0

(* two adds of the same element: one fresh insert, one hit, same slot,
   the chain holds the element exactly once *)
let test_bucket_same_element () =
  let stats =
    explore
      ~setup:(bucket_setup 2)
      ~threads:[ (fun st -> bucket_add st 0 42); (fun st -> bucket_add st 1 42) ]
      ~check:(fun st ->
        match (!(st.results.(0)), !(st.results.(1))) with
        | Some (s0, f0), Some (s1, f1) ->
          s0 = s1
          && Bool.to_int f0 + Bool.to_int f1 = 1
          && chain_occurrences st 42 = 1
          && B.find_node (A.get st.head) 42 = Some s0
        | _ -> false)
      ()
  in
  check_stats "same element" 10 stats

(* two adds of distinct elements: both fresh, distinct slots, each in
   the chain exactly once (the loser of the head CAS must re-link) *)
let test_bucket_distinct_elements () =
  let stats =
    explore
      ~setup:(bucket_setup 2)
      ~threads:[ (fun st -> bucket_add st 0 1); (fun st -> bucket_add st 1 2) ]
      ~check:(fun st ->
        match (!(st.results.(0)), !(st.results.(1))) with
        | Some (s0, true), Some (s1, true) ->
          s0 <> s1 && chain_occurrences st 1 = 1 && chain_occurrences st 2 = 1
        | _ -> false)
      ()
  in
  check_stats "distinct elements" 10 stats

(* three-way mix: two racing adds of x against one of y *)
let test_bucket_three_way () =
  let stats =
    explore
      ~setup:(bucket_setup 3)
      ~threads:
        [ (fun st -> bucket_add st 0 5);
          (fun st -> bucket_add st 1 5);
          (fun st -> bucket_add st 2 9) ]
      ~check:(fun st ->
        match
          (!(st.results.(0)), !(st.results.(1)), !(st.results.(2)))
        with
        | Some (s0, f0), Some (s1, f1), Some (_, fy) ->
          s0 = s1
          && Bool.to_int f0 + Bool.to_int f1 = 1
          && fy
          && chain_occurrences st 5 = 1
          && chain_occurrences st 9 = 1
        | _ -> false)
      ()
  in
  check_stats "three-way" 100 stats

let suite =
  [
    Alcotest.test_case "harness detects a lost update" `Quick
      test_detects_lost_update;
    Alcotest.test_case "fetch_and_add is atomic" `Quick
      test_fetch_and_add_is_atomic;
    Alcotest.test_case "deque: last-element pop/steal race" `Quick
      test_deque_last_element_race;
    Alcotest.test_case "deque: owner push/pop vs thief" `Quick
      test_deque_owner_vs_thief;
    Alcotest.test_case "deque: steal/steal race" `Quick
      test_deque_steal_steal_race;
    Alcotest.test_case "deque: growth during steal" `Quick
      test_deque_growth_during_steal;
    Alcotest.test_case "bucket: racing adds of one element" `Quick
      test_bucket_same_element;
    Alcotest.test_case "bucket: racing adds of distinct elements" `Quick
      test_bucket_distinct_elements;
    Alcotest.test_case "bucket: three-way race" `Quick test_bucket_three_way;
  ]
