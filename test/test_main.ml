(* Test entry point: one alcotest suite per library. *)

let () =
  Alcotest.run "multival"
    [
      ("util", Test_util.suite);
      ("par", Test_par.suite);
      ("model", Test_model.suite);
      ("lts", Test_lts.suite);
      ("markov", Test_markov.suite);
      ("bisim", Test_bisim.suite);
      ("kern", Test_kern.suite);
      ("diagnostics", Test_diagnostics.suite);
      ("mcl", Test_mcl.suite);
      ("calc", Test_calc.suite);
      ("calc-laws", Test_calc_laws.suite);
      ("chp", Test_chp.suite);
      ("imc", Test_imc.suite);
      ("compose", Test_compose.suite);
      ("sim", Test_sim.suite);
      ("flow", Test_flow.suite);
      ("report", Test_report.suite);
      ("svl", Test_svl.suite);
      ("store", Test_store.suite);
      ("xstream", Test_xstream.suite);
      ("faust", Test_faust.suite);
      ("fame", Test_fame.suite);
      ("lint", Test_lint.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
    ]
