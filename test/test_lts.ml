(* Tests for mv_lts: Lts construction, label tables, hiding/renaming,
   reachability, Aut round trips, SCC, and the generic explorer. *)

module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Aut = Mv_lts.Aut
module Scc = Mv_lts.Scc
module Bitset = Mv_util.Bitset

let build transitions ~nb_states ~initial =
  let labels = Label.create () in
  let interned =
    List.map (fun (s, l, d) -> (s, Label.intern labels l, d)) transitions
  in
  Lts.make ~nb_states ~initial ~labels interned

let test_label_table () =
  let t = Label.create () in
  Alcotest.(check int) "tau is 0" Label.tau (Label.intern t "i");
  Alcotest.(check int) "tau alias" Label.tau (Label.intern t "tau");
  let a = Label.intern t "a" in
  Alcotest.(check int) "idempotent" a (Label.intern t "a");
  Alcotest.(check string) "name" "a" (Label.name t a);
  Alcotest.(check (option int)) "find" (Some a) (Label.find t "a");
  Alcotest.(check (option int)) "find missing" None (Label.find t "zz");
  let copy = Label.copy t in
  ignore (Label.intern copy "b");
  Alcotest.(check (option int)) "copy independent" None (Label.find t "b")

let test_label_gate () =
  Alcotest.(check string) "gate of plain" "PUSH" (Label.gate "PUSH");
  Alcotest.(check string) "gate of offer" "PUSH" (Label.gate "PUSH !3 !true")

let test_make_dedup () =
  let lts =
    build ~nb_states:2 ~initial:0 [ (0, "a", 1); (0, "a", 1); (1, "b", 0) ]
  in
  Alcotest.(check int) "dedup" 2 (Lts.nb_transitions lts);
  Alcotest.(check bool) "has" true
    (Lts.has_transition lts 0 (Option.get (Label.find (Lts.labels lts) "a")) 1);
  Alcotest.(check bool) "hasn't" false
    (Lts.has_transition lts 1 (Option.get (Label.find (Lts.labels lts) "a")) 1)

let test_make_invalid () =
  Alcotest.check_raises "bad initial" (Invalid_argument "Lts.make: initial")
    (fun () -> ignore (build ~nb_states:1 ~initial:1 []))

let test_out_iteration () =
  let lts =
    build ~nb_states:3 ~initial:0
      [ (0, "a", 1); (0, "b", 2); (1, "a", 2); (2, "c", 0) ]
  in
  Alcotest.(check int) "out_degree 0" 2 (Lts.out_degree lts 0);
  let count = ref 0 in
  Lts.iter_out lts 0 (fun _ _ -> incr count);
  Alcotest.(check int) "iter_out" 2 !count;
  let sum = Lts.fold_out lts 0 (fun _ d acc -> acc + d) 0 in
  Alcotest.(check int) "fold_out targets" 3 sum;
  let preds = Lts.in_adjacency lts in
  Alcotest.(check int) "preds of 2" 2 (List.length preds.(2))

let test_in_iteration () =
  let lts =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (0, "b", 2); (1, "a", 2); (2, "c", 0); (3, "a", 2) ]
  in
  let preds = Lts.in_adjacency lts in
  for s = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "in_degree %d" s)
      (List.length preds.(s)) (Lts.in_degree lts s);
    let via_iter = ref [] in
    Lts.iter_in lts s (fun l src -> via_iter := (l, src) :: !via_iter);
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "iter_in %d" s)
      preds.(s)
      (List.rev !via_iter)
  done;
  (* every incoming transition is a real transition, and the counts add
     up to the transition count *)
  let total = ref 0 in
  for s = 0 to 3 do
    Lts.iter_in lts s (fun l src ->
        incr total;
        Alcotest.(check bool) "transition exists" true
          (Lts.has_transition lts src l s))
  done;
  Alcotest.(check int) "degrees sum to m" (Lts.nb_transitions lts) !total;
  Alcotest.(check int) "no preds" 0 (Lts.in_degree lts 3)

let test_deadlocks () =
  let lts = build ~nb_states:3 ~initial:0 [ (0, "a", 1) ] in
  Alcotest.(check (list int)) "deadlocks" [ 1; 2 ] (Lts.deadlocks lts)

let test_reachable_restrict () =
  let lts =
    build ~nb_states:4 ~initial:0 [ (0, "a", 1); (1, "b", 0); (2, "c", 3) ]
  in
  let reach = Lts.reachable lts in
  Alcotest.(check (list int)) "reachable" [ 0; 1 ] (Bitset.to_list reach);
  let restricted = Lts.restrict_reachable lts in
  Alcotest.(check int) "restricted states" 2 (Lts.nb_states restricted);
  Alcotest.(check int) "restricted transitions" 2 (Lts.nb_transitions restricted);
  Alcotest.(check int) "initial renumbered to 0" 0 (Lts.initial restricted)

let test_hide_rename () =
  let lts =
    build ~nb_states:2 ~initial:0
      [ (0, "PUSH !1", 1); (1, "POP !1", 0); (1, "i", 1) ]
  in
  let hidden = Lts.hide lts ~gates:[ "PUSH" ] in
  Alcotest.(check (list string)) "hide" [ "POP !1"; "i" ]
    (Lts.occurring_labels hidden);
  let kept = Lts.hide_all_except lts ~gates:[ "POP" ] in
  Alcotest.(check (list string)) "hide_all_except" [ "POP !1"; "i" ]
    (Lts.occurring_labels kept);
  let renamed =
    Lts.rename lts (fun name ->
        if Label.gate name = "PUSH" then Some "IN !1" else None)
  in
  Alcotest.(check (list string)) "rename" [ "IN !1"; "POP !1"; "i" ]
    (Lts.occurring_labels renamed)

let test_aut_round_trip () =
  let lts =
    build ~nb_states:3 ~initial:1
      [ (0, "a b \"quoted\"", 1); (1, "i", 2); (2, "plain", 0) ]
  in
  let text = Aut.to_string lts in
  let back = Aut.of_string text in
  Alcotest.(check int) "states" (Lts.nb_states lts) (Lts.nb_states back);
  Alcotest.(check int) "transitions" (Lts.nb_transitions lts)
    (Lts.nb_transitions back);
  Alcotest.(check int) "initial" (Lts.initial lts) (Lts.initial back);
  Alcotest.(check (list string)) "labels" (Lts.occurring_labels lts)
    (Lts.occurring_labels back)

let test_aut_bare_labels () =
  let lts = Aut.of_string "des (0, 2, 2)\n(0, hello, 1)\n(1, i, 0)\n" in
  Alcotest.(check (list string)) "bare labels" [ "hello"; "i" ]
    (Lts.occurring_labels lts)

let test_aut_errors () =
  (try
     ignore (Aut.of_string "not an aut file");
     Alcotest.fail "expected parse error"
   with Aut.Parse_error _ -> ());
  try
    ignore (Aut.of_string "des (0, 1, 1)\n(0, \"unterminated, 0)");
    Alcotest.fail "expected parse error"
  with Aut.Parse_error _ -> ()

(* Property: .aut round trip preserves everything, on random LTSs. *)
let aut_round_trip_prop =
  let gen =
    QCheck2.Gen.(
      let* nb_states = int_range 1 15 in
      let* transitions =
        list_size (int_bound 40)
          (triple (int_bound (nb_states - 1))
             (oneofl [ "a"; "b"; "i"; "G !1"; "odd \"label\"" ])
             (int_bound (nb_states - 1)))
      in
      return (nb_states, transitions))
  in
  QCheck2.Test.make ~name:"aut round trip" ~count:100 gen
    (fun (nb_states, transitions) ->
       let lts = build ~nb_states ~initial:0 transitions in
       let back = Aut.of_string (Aut.to_string lts) in
       Lts.nb_states back = Lts.nb_states lts
       && Lts.nb_transitions back = Lts.nb_transitions lts
       && Lts.occurring_labels back = Lts.occurring_labels lts)

let test_make_array_and_relabel () =
  let labels = Label.create () in
  let a = Label.intern labels "a" in
  let lts =
    Lts.make_array ~nb_states:2 ~initial:0 ~labels [| (0, a, 1); (0, a, 1) |]
  in
  Alcotest.(check int) "deduped" 1 (Lts.nb_transitions lts);
  let relabeled = Lts.relabel lts (fun s _ d -> (d, "flip", s)) in
  Alcotest.(check bool) "reversed edge" true
    (Lts.has_transition relabeled 1
       (Option.get (Label.find (Lts.labels relabeled) "flip"))
       0)

let test_label_table_growth () =
  (* exceed the initial capacity of the interning table *)
  let t = Label.create () in
  let ids = List.init 100 (fun i -> Label.intern t (Printf.sprintf "g%d" i)) in
  Alcotest.(check int) "all distinct" 100
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check int) "count includes tau" 101 (Label.count t);
  Alcotest.(check string) "lookup survives growth" "g73" (Label.name t (List.nth ids 73))

let test_pp_smoke () =
  let lts = build ~nb_states:1 ~initial:0 [ (0, "a", 0) ] in
  let text = Format.asprintf "%a" Lts.pp lts in
  Alcotest.(check bool) "mentions counts" true
    (Astring.String.is_infix ~affix:"1 states" text)

let test_scc_basic () =
  (* 0 <-> 1, 2 alone, 1 -> 2 *)
  let succ = [| [ 1 ]; [ 0; 2 ]; [] |] in
  let result =
    Scc.compute ~nb_states:3 ~iter_succ:(fun s f -> List.iter f succ.(s))
  in
  Alcotest.(check int) "count" 2 result.Scc.count;
  Alcotest.(check bool) "0 and 1 together" true
    (result.Scc.component.(0) = result.Scc.component.(1));
  Alcotest.(check bool) "2 separate" true
    (result.Scc.component.(2) <> result.Scc.component.(0));
  (* reverse topological numbering: edge 1->2 crosses components *)
  Alcotest.(check bool) "reverse topological" true
    (result.Scc.component.(1) > result.Scc.component.(2));
  let bottom =
    Scc.bottom ~nb_states:3 ~iter_succ:(fun s f -> List.iter f succ.(s)) result
  in
  Alcotest.(check bool) "2 is bottom" true bottom.(result.Scc.component.(2));
  Alcotest.(check bool) "0/1 not bottom" false bottom.(result.Scc.component.(0))

let test_scc_big_cycle () =
  (* one large cycle, iterative Tarjan must not overflow *)
  let n = 50_000 in
  let result =
    Scc.compute ~nb_states:n ~iter_succ:(fun s f -> f ((s + 1) mod n))
  in
  Alcotest.(check int) "single component" 1 result.Scc.count

let test_explorer_truncation () =
  let module E = Mv_lts.Explore.Make (struct
      type t = int

      let equal = Int.equal
      let hash = Hashtbl.hash
    end) in
  let successors n = [ ("next", n + 1) ] in
  let out = E.run ~max_states:10 ~initial:0 ~successors () in
  Alcotest.(check bool) "truncated" true out.Mv_lts.Explore.truncated;
  Alcotest.(check int) "bounded" 10 (Lts.nb_states out.Mv_lts.Explore.lts);
  try
    ignore (E.run ~max_states:10 ~on_truncate:`Raise ~initial:0 ~successors ());
    Alcotest.fail "expected Too_many_states"
  with Mv_lts.Explore.Too_many_states n -> Alcotest.(check int) "bound" 10 n

(* ------------------------------------------------------------------ *)
(* Out-of-core exploration                                             *)

module Int_explore = Mv_lts.Explore.Make (struct
    type t = int

    let equal = Int.equal
    let hash = Hashtbl.hash
  end)

(* a graph with sharing and cycles: every state is reached several
   times, so the seen set (and its cold, spilled part) is actually
   exercised *)
let braid_successors n s =
  [ ("a", (2 * s + 1) mod n); ("b", (3 * s + 2) mod n); ("c", s / 2) ]

let in_scratch f =
  let dir = Filename.temp_file "mv_ooc" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

(* Replay [run_ooc]'s emitted stream into an [Lts.t] and require it to
   be identical (text form) to what [run] materializes. *)
let check_ooc_matches_run ?hot_budget_bytes ?max_states ~n () =
  in_scratch (fun dir ->
      let successors = braid_successors n in
      let reference =
        Int_explore.run ?max_states ~initial:0 ~successors ()
      in
      let labels = Label.create () in
      let transitions = ref [] in
      let next_id = ref 0 in
      let emit moves =
        let src = !next_id in
        incr next_id;
        Array.iter (fun (l, d) -> transitions := (src, l, d) :: !transitions) moves
      in
      let outcome =
        Int_explore.run_ooc ?hot_budget_bytes ?max_states ~scratch_dir:dir
          ~labels ~emit ~initial:0 ~successors ()
      in
      let streamed =
        Lts.make_array ~nb_states:outcome.Mv_lts.Explore.ooc_states ~initial:0
          ~labels
          (Array.of_list (List.rev !transitions))
      in
      Alcotest.(check string) "identical stream"
        (Aut.to_string reference.Mv_lts.Explore.lts)
        (Aut.to_string streamed);
      Alcotest.(check int) "transition count"
        (Lts.nb_transitions reference.Mv_lts.Explore.lts)
        outcome.Mv_lts.Explore.ooc_transitions;
      Alcotest.(check bool) "truncation agrees"
        reference.Mv_lts.Explore.truncated outcome.Mv_lts.Explore.ooc_truncated;
      Alcotest.(check (array string)) "no scratch left behind" [||]
        (Sys.readdir dir))

let test_explore_ooc_matches_run () = check_ooc_matches_run ~n:2000 ()

let test_explore_ooc_forced_spill () =
  (* a hot budget far below 2000 entries forces spilling to sorted
     runs (and run merging) on every level; results must not change *)
  check_ooc_matches_run ~hot_budget_bytes:1024 ~n:2000 ()

let test_explore_ooc_truncation () =
  (* `Stop at the bound must cut the stream at exactly the same states
     and transitions as the in-RAM search *)
  check_ooc_matches_run ~hot_budget_bytes:1024 ~max_states:700 ~n:5000 ()

let suite =
  [
    Alcotest.test_case "label table" `Quick test_label_table;
    Alcotest.test_case "label gate" `Quick test_label_gate;
    Alcotest.test_case "make dedups" `Quick test_make_dedup;
    Alcotest.test_case "make validates" `Quick test_make_invalid;
    Alcotest.test_case "out iteration" `Quick test_out_iteration;
    Alcotest.test_case "in iteration" `Quick test_in_iteration;
    Alcotest.test_case "deadlocks" `Quick test_deadlocks;
    Alcotest.test_case "reachable/restrict" `Quick test_reachable_restrict;
    Alcotest.test_case "hide/rename" `Quick test_hide_rename;
    Alcotest.test_case "aut round trip" `Quick test_aut_round_trip;
    Alcotest.test_case "aut bare labels" `Quick test_aut_bare_labels;
    Alcotest.test_case "aut errors" `Quick test_aut_errors;
    QCheck_alcotest.to_alcotest aut_round_trip_prop;
    Alcotest.test_case "make_array/relabel" `Quick test_make_array_and_relabel;
    Alcotest.test_case "label table growth" `Quick test_label_table_growth;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    Alcotest.test_case "scc basics" `Quick test_scc_basic;
    Alcotest.test_case "scc large cycle (iterative)" `Quick test_scc_big_cycle;
    Alcotest.test_case "explorer truncation" `Quick test_explorer_truncation;
    Alcotest.test_case "ooc explorer matches run" `Quick
      test_explore_ooc_matches_run;
    Alcotest.test_case "ooc explorer forced spill" `Quick
      test_explore_ooc_forced_spill;
    Alcotest.test_case "ooc explorer truncation" `Quick
      test_explore_ooc_truncation;
  ]
