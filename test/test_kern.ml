(* Tests for mv_kern: CSR adjacency, the refinable partition, signature
   sort/dedup, the solver kernels, and — the contract everything else
   rests on — agreement of the flat refinement engines with the legacy
   signature engines, block ids included, at every pool size. *)

module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Csr = Mv_kern.Csr
module Arr = Mv_kern.Arr
module Part = Mv_kern.Part
module Sig_table = Mv_kern.Sig_table
module Solver = Mv_kern.Solver
module Strong = Mv_bisim.Strong
module Branching = Mv_bisim.Branching
module Partition = Mv_bisim.Partition
module Imc = Mv_imc.Imc
module Lump = Mv_imc.Lump
module Ctmc = Mv_markov.Ctmc

let build transitions ~nb_states ~initial =
  let labels = Label.create () in
  let interned =
    List.map (fun (s, l, d) -> (s, Label.intern labels l, d)) transitions
  in
  Lts.make ~nb_states ~initial ~labels interned

(* ---- CSR ---- *)

let test_csr_forward_matches_iter_out () =
  let lts =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (0, "b", 2); (1, "a", 3); (3, "a", 0); (3, "a", 3) ]
  in
  let fwd = Csr.forward lts in
  Alcotest.(check int) "rows" 4 (Csr.nb_rows fwd);
  Alcotest.(check int) "entries" 5 (Csr.nb_entries fwd);
  for s = 0 to 3 do
    let from_lts = ref [] in
    Lts.iter_out lts s (fun l d -> from_lts := (l, d) :: !from_lts);
    let from_csr = ref [] in
    for i = Arr.get fwd.Csr.row (s + 1) - 1 downto Arr.get fwd.Csr.row s do
      from_csr := (Arr.get fwd.Csr.lbl i, Arr.get fwd.Csr.col i) :: !from_csr
    done;
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "row %d" s)
      (List.rev !from_lts) !from_csr
  done

let test_csr_reverse_matches_iter_in () =
  let lts =
    build ~nb_states:4 ~initial:0
      [ (0, "a", 1); (0, "b", 2); (1, "a", 3); (3, "a", 0); (3, "a", 3) ]
  in
  let rev = Csr.reverse lts in
  Alcotest.(check int) "entries" 5 (Csr.nb_entries rev);
  for s = 0 to 3 do
    let from_lts = ref [] in
    Lts.iter_in lts s (fun l src -> from_lts := (l, src) :: !from_lts);
    let from_csr = ref [] in
    for i = Arr.get rev.Csr.row (s + 1) - 1 downto Arr.get rev.Csr.row s do
      from_csr := (Arr.get rev.Csr.lbl i, Arr.get rev.Csr.col i) :: !from_csr
    done;
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "row %d" s)
      (List.rev !from_lts) !from_csr
  done

let test_csr_deterministic () =
  let det = build ~nb_states:2 ~initial:0 [ (0, "a", 1); (0, "b", 1) ] in
  let nondet = build ~nb_states:3 ~initial:0 [ (0, "a", 1); (0, "a", 2) ] in
  Alcotest.(check bool) "deterministic" true (Csr.deterministic (Csr.forward det));
  Alcotest.(check bool) "nondeterministic" false
    (Csr.deterministic (Csr.forward nondet))

(* ---- refinable partition ---- *)

let test_part_mark_split () =
  let p = Part.create 5 in
  Alcotest.(check int) "one block" 1 (Part.count p);
  Alcotest.(check int) "size" 5 (Part.size p 0);
  Part.mark p 1;
  Part.mark p 3;
  Part.mark p 1;
  (* idempotent *)
  Alcotest.(check int) "marked" 2 (Part.marked p 0);
  let c = Part.split_marked p 0 in
  Alcotest.(check bool) "fresh block" true (c >= 0);
  Alcotest.(check int) "two blocks" 2 (Part.count p);
  Alcotest.(check int) "split sizes" 5 (Part.size p 0 + Part.size p c);
  Alcotest.(check bool) "1 and 3 together" true
    (Part.block_of p 1 = Part.block_of p 3);
  Alcotest.(check bool) "0 and 1 apart" false
    (Part.block_of p 0 = Part.block_of p 1);
  (* marking every state of a block must NOT split it *)
  let b = Part.block_of p 0 in
  Part.iter_block p b (fun s -> Part.mark p s);
  Alcotest.(check int) "all-marked split refused" (-1) (Part.split_marked p b);
  Alcotest.(check int) "still two blocks" 2 (Part.count p);
  Alcotest.(check int) "marks cleared" 0 (Part.marked p b)

let test_part_assignment_canonical () =
  let p = Part.create 4 in
  (* split {2,3} away, then {1} away: blocks by first occurrence must
     come out 0 -> 0, 1 -> 1, 2 -> 2, 3 -> 2 whatever internal ids the
     splits produced *)
  Part.mark p 2;
  Part.mark p 3;
  ignore (Part.split_marked p 0);
  Part.mark p 1;
  ignore (Part.split_marked p 0);
  let block_of, count = Part.assignment p in
  Alcotest.(check int) "three blocks" 3 count;
  Alcotest.(check (array int)) "canonical ids" [| 0; 1; 2; 2 |] block_of

(* ---- sort_dedup ---- *)

let test_sort_dedup () =
  let a = [| 5; 1; 5; 3; 1; 1; 9; 3 |] in
  let len = Sig_table.sort_dedup a (Array.length a) in
  Alcotest.(check int) "length" 4 len;
  Alcotest.(check (array int)) "prefix" [| 1; 3; 5; 9 |] (Array.sub a 0 len);
  (* prefix lengths and duplicate-only arrays *)
  let b = [| 7; 7; 7; 0 |] in
  let len = Sig_table.sort_dedup b 3 in
  Alcotest.(check int) "all equal" 1 len;
  Alcotest.(check int) "kept" 7 b.(0);
  Alcotest.(check int) "empty" 0 (Sig_table.sort_dedup [||] 0)

let sort_dedup_prop =
  QCheck2.Test.make ~name:"sort_dedup agrees with List.sort_uniq" ~count:200
    QCheck2.Gen.(list_size (int_bound 60) (int_range (-50) 50))
    (fun l ->
       let a = Array.of_list l in
       let len = Sig_table.sort_dedup a (Array.length a) in
       Array.to_list (Array.sub a 0 len) = List.sort_uniq compare l)

(* ---- flat engines vs legacy engines ---- *)

let lts_gen =
  QCheck2.Gen.(
    let* nb_states = int_range 1 14 in
    let* transitions =
      list_size (int_bound 40)
        (triple (int_bound (nb_states - 1))
           (oneofl [ "a"; "b"; "c"; "i" ])
           (int_bound (nb_states - 1)))
    in
    return (build ~nb_states ~initial:0 transitions))

let same_partition (p : Partition.t) (q : Partition.t) =
  p.Partition.count = q.Partition.count
  && p.Partition.block_of = q.Partition.block_of

(* The engines must agree block id for block id (not just up to
   renaming): quotients are then byte-identical and Mv_store cache
   keys stay valid. The pool never changes results, so the flat -j1
   partition is checked against the legacy engine at -j1 and -j4. *)
let strong_matches_legacy_prop =
  QCheck2.Test.make ~name:"strong: flat engine = legacy engine (-j1, -j4)"
    ~count:120 lts_gen
    (fun lts ->
       let flat = Strong.partition lts in
       same_partition flat (Strong.partition_legacy lts)
       && Mv_par.Pool.scope ~domains:4 (fun pool ->
           same_partition flat (Strong.partition_legacy ~pool lts)))

let branching_matches_legacy_prop =
  QCheck2.Test.make ~name:"branching: flat engine = legacy engine (-j1, -j4)"
    ~count:120 lts_gen
    (fun lts ->
       let flat = Branching.partition lts in
       same_partition flat (Branching.partition_legacy lts)
       && Mv_par.Pool.scope ~domains:4 (fun pool ->
           same_partition (Branching.partition ~pool lts)
             (Branching.partition_legacy ~pool lts)))

let divbranching_matches_legacy_prop =
  QCheck2.Test.make ~name:"divbranching: flat engine = legacy engine" ~count:120
    lts_gen
    (fun lts ->
       same_partition
         (Branching.partition ~divergence_sensitive:true lts)
         (Branching.partition_legacy ~divergence_sensitive:true lts))

let imc_gen =
  QCheck2.Gen.(
    let* nb_states = int_range 2 10 in
    let* markovian =
      list_size (int_range 1 16)
        (triple (int_bound (nb_states - 1))
           (float_range 0.5 4.0)
           (int_bound (nb_states - 1)))
    in
    let* interactive_raw =
      list_size (int_bound 6)
        (triple (int_bound (nb_states - 1))
           (oneofl [ "a"; "b"; "i" ])
           (int_bound (nb_states - 1)))
    in
    let labels = Label.create () in
    let interactive =
      List.map (fun (s, l, d) -> (s, Label.intern labels l, d)) interactive_raw
    in
    return (Imc.make ~nb_states ~initial:0 ~labels ~interactive ~markovian))

let lump_matches_legacy_prop =
  QCheck2.Test.make ~name:"lump: flat engine = legacy engine" ~count:120 imc_gen
    (fun imc ->
       same_partition (Lump.partition imc) (Lump.partition_legacy imc))

(* ---- solver kernels ---- *)

(* A random ergodic CTMC: a cycle 0 -> 1 -> ... -> n-1 -> 0 guarantees
   irreducibility, plus random extra transitions. *)
let ctmc_gen =
  QCheck2.Gen.(
    let* nb_states = int_range 2 30 in
    let* extra =
      list_size (int_bound 40)
        (triple (int_bound (nb_states - 1))
           (float_range 0.2 5.0)
           (int_bound (nb_states - 1)))
    in
    let cycle =
      List.init nb_states (fun s ->
          { Ctmc.src = s; rate = 1.0; actions = []; dst = (s + 1) mod nb_states })
    in
    let extra =
      List.map (fun (s, r, d) -> { Ctmc.src = s; rate = r; actions = []; dst = d })
        extra
    in
    return (Ctmc.make ~nb_states ~initial:0 (cycle @ extra)))

let max_abs_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
  !m

let solver_methods_agree_prop =
  QCheck2.Test.make ~name:"solver: gs, sor and jacobi give the same vector"
    ~count:60 ctmc_gen
    (fun ctmc ->
       let solve m = Ctmc.steady_state ~method_:m ctmc in
       let gs = solve Solver.Gauss_seidel in
       let sor = solve Solver.Sor in
       let jac = solve Solver.Jacobi in
       max_abs_diff gs sor < 1e-9 && max_abs_diff gs jac < 1e-9)

(* A cycle system 0 -> 1 -> ... -> n-1 -> 0, all rates 1: steady
   state is uniform, and the conflict graph is the cycle itself. *)
let cycle_system n =
  {
    Solver.size = n;
    in_row = Array.init (n + 1) Fun.id;
    in_src = Array.init n (fun j -> (j + n - 1) mod n);
    in_rate = Array.make n 1.0;
    exit = Array.make n 1.0;
  }

let test_solver_run_config () =
  let cfg = Solver.config () in
  Alcotest.(check bool) "default method is gs" true
    (cfg.Solver.method_ = Solver.Gauss_seidel);
  Alcotest.(check bool) "no pool by default" true
    (match cfg.Solver.pool with None -> true | Some _ -> false);
  let n = 5 in
  let sys = cycle_system n in
  let pi = Array.make n (1.0 /. float_of_int n) in
  let outcome = Solver.run (Solver.config ~tolerance:1e-12 ()) sys pi in
  Alcotest.(check bool) "converged" true outcome.Solver.converged;
  Alcotest.(check bool) "sweeps counted" true (outcome.Solver.sweeps > 0);
  Alcotest.(check bool) "residual below tolerance" true
    (outcome.Solver.residual <= 1e-12);
  Array.iter
    (fun x ->
       Alcotest.(check bool) "uniform steady state" true
         (Float.abs (x -. 0.2) < 1e-9))
    pi;
  (* Sor with a forced non-convergent omega must still converge via
     the stall fallback *)
  let pi = Array.make n (1.0 /. float_of_int n) in
  let outcome =
    Solver.run (Solver.config ~method_:Solver.Sor ~omega:1.9 ()) sys pi
  in
  Alcotest.(check bool) "sor converged" true outcome.Solver.converged

let test_coloring_valid () =
  let n = 6 in
  let sys = cycle_system n in
  let order, class_start, nb_colors = Solver.coloring sys in
  Alcotest.(check (list int)) "order is a permutation" (List.init n Fun.id)
    (List.sort compare (Array.to_list order));
  Alcotest.(check bool) "cycle needs >= 2 colors" true (nb_colors >= 2);
  Alcotest.(check int) "class_start spans order" n class_start.(nb_colors);
  let color = Array.make n (-1) in
  for c = 0 to nb_colors - 1 do
    for i = class_start.(c) to class_start.(c + 1) - 1 do
      color.(order.(i)) <- c
    done
  done;
  for j = 0 to n - 1 do
    for k = sys.Solver.in_row.(j) to sys.Solver.in_row.(j + 1) - 1 do
      let i = sys.Solver.in_src.(k) in
      if i <> j then
        Alcotest.(check bool) "conflict edge bicolored" false
          (color.(i) = color.(j))
    done
  done

(* ---- the parallel engines vs -j1, above their thresholds ---- *)

(* big enough (> 1024 states) that Refine.strong takes the round-based
   parallel path and the GS color classes exceed the parallel class
   threshold *)
let big_lts n =
  let tr = ref [] in
  for s = 0 to n - 1 do
    tr := (s, "a", (s + 1) mod n) :: (s, "b", ((s * s) + 3) mod n) :: !tr;
    if s mod 3 = 0 then tr := (s, "a", ((s * 5) + 2) mod n) :: !tr
  done;
  build ~nb_states:n ~initial:0 !tr

let test_refine_parallel_identical () =
  let lts = big_lts 3000 in
  let seq = Strong.partition lts in
  List.iter
    (fun domains ->
       Mv_par.Pool.scope ~domains (fun pool ->
           let par = Strong.partition ~pool lts in
           Alcotest.(check int)
             (Printf.sprintf "count -j %d" domains)
             seq.Partition.count par.Partition.count;
           Alcotest.(check (array int))
             (Printf.sprintf "blocks byte-identical -j %d" domains)
             seq.Partition.block_of par.Partition.block_of))
    [ 2; 8 ]

let test_gs_parallel_bitwise () =
  (* birth-death chain: 2-colorable, classes of ~1000 states *)
  let n = 2000 in
  let transitions = ref [] in
  for s = 0 to n - 2 do
    transitions :=
      { Ctmc.src = s; rate = 1.0 +. (0.01 *. float_of_int s);
        actions = []; dst = s + 1 }
      :: { Ctmc.src = s + 1; rate = 2.0 +. (0.03 *. float_of_int s);
           actions = []; dst = s }
      :: !transitions
  done;
  let c = Ctmc.make ~nb_states:n ~initial:0 !transitions in
  let pi1 = Ctmc.steady_state ~method_:Solver.Gauss_seidel c in
  let total = Array.fold_left ( +. ) 0.0 pi1 in
  Alcotest.(check bool) "normalized" true (Float.abs (total -. 1.0) < 1e-9);
  List.iter
    (fun domains ->
       Mv_par.Pool.scope ~domains (fun pool ->
           let pi = Ctmc.steady_state ~pool ~method_:Solver.Gauss_seidel c in
           Alcotest.(check bool)
             (Printf.sprintf "gs -j %d bitwise" domains)
             true (pi = pi1)))
    [ 2; 8 ]

let strong_quotient_j8_prop =
  QCheck2.Test.make ~name:"strong: -j8 partition = -j1 partition" ~count:60
    lts_gen
    (fun lts ->
       let seq = Strong.partition lts in
       Mv_par.Pool.scope ~domains:8 (fun pool ->
           same_partition seq (Strong.partition ~pool lts)))

let test_solver_method_names () =
  List.iter
    (fun (name, expected) ->
       let got =
         Option.map Solver.method_name (Solver.method_of_name name)
       in
       Alcotest.(check (option string)) name expected got)
    [
      ("jacobi", Some "jacobi");
      ("gs", Some "gs");
      ("gauss-seidel", Some "gs");
      ("sor", Some "sor");
      ("newton", None);
    ]

let suite =
  [
    Alcotest.test_case "csr forward matches iter_out" `Quick
      test_csr_forward_matches_iter_out;
    Alcotest.test_case "csr reverse matches iter_in" `Quick
      test_csr_reverse_matches_iter_in;
    Alcotest.test_case "csr determinism check" `Quick test_csr_deterministic;
    Alcotest.test_case "refinable partition mark/split" `Quick
      test_part_mark_split;
    Alcotest.test_case "refinable partition canonical assignment" `Quick
      test_part_assignment_canonical;
    Alcotest.test_case "sort_dedup" `Quick test_sort_dedup;
    QCheck_alcotest.to_alcotest sort_dedup_prop;
    QCheck_alcotest.to_alcotest strong_matches_legacy_prop;
    QCheck_alcotest.to_alcotest branching_matches_legacy_prop;
    QCheck_alcotest.to_alcotest divbranching_matches_legacy_prop;
    QCheck_alcotest.to_alcotest lump_matches_legacy_prop;
    QCheck_alcotest.to_alcotest solver_methods_agree_prop;
    Alcotest.test_case "solver method names" `Quick test_solver_method_names;
    Alcotest.test_case "Solver.run config API" `Quick test_solver_run_config;
    Alcotest.test_case "coloring is a valid conflict coloring" `Quick
      test_coloring_valid;
    Alcotest.test_case "parallel refine byte-identical (3000 states)" `Quick
      test_refine_parallel_identical;
    Alcotest.test_case "parallel gs bitwise (2000 states)" `Quick
      test_gs_parallel_bitwise;
    QCheck_alcotest.to_alcotest strong_quotient_j8_prop;
  ]
