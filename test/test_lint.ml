(* Tests for mv_lint: the diagnostic type and its JSON round-trip, one
   positive and one negative specimen per rule code, the combined
   acceptance scenario, the exit-code policy, severity overrides, and
   lint-cleanliness of the shipped example models. *)

module Lint = Mv_lint.Lint
module Diagnostic = Mv_lint.Diagnostic

let lint = Lint.check_text

let codes ds =
  List.sort_uniq String.compare
    (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds)

let has code ds =
  List.exists (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.code code) ds

let line_of code ds =
  match
    List.find_opt
      (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.code code)
      ds
  with
  | Some d -> d.Diagnostic.line
  | None -> None

let check_flags name expected actual =
  Alcotest.(check (list string)) name expected actual

(* A specimen that triggers [code] and a variant that does not. *)
let rule_case name ~code ~dirty ~clean () =
  let reported = lint dirty in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s reported" name code)
    true (has code reported);
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s has a line" name code)
    true
    (line_of code reported <> None);
  Alcotest.(check bool)
    (Printf.sprintf "%s: clean variant" name)
    false
    (has code (lint clean))

let test_mvl001_type_error =
  rule_case "kind error" ~code:"MVL001"
    ~dirty:"process P := [1 < true] -> a ; P\ninit P"
    ~clean:"process P := [1 < 2] -> a ; P\ninit P"

let test_mvl002_undefined_process =
  rule_case "undefined process" ~code:"MVL002"
    ~dirty:"process P := a ; Ghost\ninit P"
    ~clean:"process P := a ; P\ninit P"

let test_mvl003_unused_process =
  rule_case "unused process" ~code:"MVL003"
    ~dirty:"process P := a ; P\nprocess Orphan := b ; Orphan\ninit P"
    ~clean:"process P := a ; P\nprocess Q := b ; Q\ninit P ||| Q"

let test_mvl004_unguarded_recursion =
  rule_case "unguarded recursion" ~code:"MVL004"
    ~dirty:"process P := Q\nprocess Q := P\ninit P"
    ~clean:"process P := a ; Q\nprocess Q := P\ninit P"

let test_mvl005_sync_mismatch =
  rule_case "sync mismatch" ~code:"MVL005"
    ~dirty:"process P := a ; P\nprocess Q := b ; Q\ninit P |[a, c]| Q"
    ~clean:"process P := a ; P\nprocess Q := a ; b ; Q\ninit P |[a]| Q"

let test_mvl005_full_sync =
  rule_case "one-sided gate under ||" ~code:"MVL005"
    ~dirty:"process P := a ; b ; P\nprocess Q := a ; Q\ninit P || Q"
    ~clean:"process P := a ; b ; P\nprocess Q := a ; b ; Q\ninit P || Q"

let test_mvl006_dead_hide =
  rule_case "dead hide" ~code:"MVL006"
    ~dirty:"process P := a ; P\ninit hide ghost in P"
    ~clean:"process P := a ; P\ninit hide a in P"

let test_mvl007_dead_rename =
  rule_case "dead rename" ~code:"MVL007"
    ~dirty:"process P := a ; P\ninit rename ghost -> g in P"
    ~clean:"process P := a ; P\ninit rename a -> g in P"

let test_mvl008_dead_guard =
  rule_case "dead guard" ~code:"MVL008"
    ~dirty:
      "process P (n : int[0..3]) := [n > 5] -> a ; P(n)\n\
       init P(0)"
    ~clean:
      "process P (n : int[0..3]) := [n > 2] -> a ; P(n)\n\
       init P(0)"

let test_mvl009_redundant_guard =
  rule_case "redundant guard" ~code:"MVL009"
    ~dirty:
      "process P (n : int[0..3]) := [n >= 0] -> a ; P(n)\n\
       init P(0)"
    ~clean:
      "process P (n : int[0..3]) := [n >= 1] -> a ; P(n)\n\
       init P(0)"

let test_mvl010_out_of_range =
  rule_case "out-of-range binding" ~code:"MVL010"
    ~dirty:
      "process P (n : int[0..3]) := a ; P(n + 4)\n\
       init P(0)"
    ~clean:
      "process P (n : int[0..3]) := [n < 3] -> a ; P(n + 1)\n\
       init P(0)"

let test_mvl011_rate_race =
  rule_case "rate race" ~code:"MVL011"
    ~dirty:"process P := a ; P [] rate 2.0 ; P\ninit P"
    ~clean:"process P := rate 2.0 ; a ; P\ninit P"

let test_mvl012_phase_blowup () =
  let stage rates =
    "process Stage := "
    ^ String.concat "" (List.init rates (fun _ -> "rate 1.0 ; "))
    ^ "step ; Stage\n"
  in
  let spec leaves rates =
    stage rates ^ "init "
    ^ String.concat " ||| " (List.init leaves (fun _ -> "Stage"))
  in
  (* (6 rates + 1) ^ 4 = 2401 > 1024 > (6 rates + 1) ^ 3 = 343 *)
  Alcotest.(check bool) "blowup reported" true
    (has "MVL012" (lint (spec 4 6)));
  Alcotest.(check bool) "under the limit" false
    (has "MVL012" (lint (spec 3 6)));
  let config = { Lint.default_config with Lint.max_phase_product = 100 } in
  Alcotest.(check bool) "configurable limit" true
    (has "MVL012" (Lint.check_text ~config (spec 3 6)))

let test_mvl013_unused_formal_gate =
  rule_case "unused formal gate" ~code:"MVL013"
    ~dirty:"process P [g, dead] := g ; stop\ninit P[a, b]"
    ~clean:"process P [g] := g ; stop\ninit P[a]"

(* The interval analysis narrows parameters through guards: without
   refinement the increment in the guarded branch would look like it
   can reach 4. *)
let test_interval_refinement () =
  let ds =
    lint
      "process P (n : int[0..3]) :=\n\
      \    [n < 3] -> a ; P(n + 1)\n\
      \ [] [n > 0] -> b ; P(n - 1)\n\
       init P(0)"
  in
  check_flags "guard-refined queue is clean" [] (codes ds)

(* Acceptance scenario from the issue: a sync-set mismatch, a dead
   guard, an out-of-range binding and a rate race must all surface in
   one run, each with a location. *)
let seeded_spec =
  "process Producer := rate 2.0 ; put ; Producer\n\
   process Buffer (n : int[0..3]) :=\n\
  \    [n < 3] -> put ; Buffer(n + 1)\n\
  \ [] [n > 4] -> get ; Buffer(n - 1)\n\
  \ [] [n == 0] -> get ; Buffer(n + 5)\n\
   process Consumer := get ; Consumer\n\
  \ [] rate 1.0 ; Consumer\n\
   init (Producer |[put, ack]| Buffer(0)) |[get]| Consumer"

let test_seeded_spec_all_four () =
  let ds = lint seeded_spec in
  List.iter
    (fun (code, expected_line) ->
       Alcotest.(check bool) (code ^ " reported") true (has code ds);
       Alcotest.(check (option int)) (code ^ " line") (Some expected_line)
         (line_of code ds))
    [ ("MVL008", 4); ("MVL010", 5); ("MVL011", 6); ("MVL005", 8) ]

let test_diagnostics_sorted_by_line () =
  let ds = lint seeded_spec in
  let lines =
    List.filter_map (fun (d : Diagnostic.t) -> d.Diagnostic.line) ds
  in
  Alcotest.(check (list int)) "ascending" (List.sort compare lines) lines

(* ---- JSON ---- *)

let test_json_round_trip () =
  let ds = lint seeded_spec in
  Alcotest.(check bool) "non-empty" true (ds <> []);
  let parsed = Diagnostic.of_json (Diagnostic.to_json ds) in
  Alcotest.(check int) "same length" (List.length ds) (List.length parsed);
  List.iter2
    (fun (a : Diagnostic.t) (b : Diagnostic.t) ->
       Alcotest.(check string) "code" a.Diagnostic.code b.Diagnostic.code;
       Alcotest.(check string) "severity"
         (Diagnostic.severity_name a.Diagnostic.severity)
         (Diagnostic.severity_name b.Diagnostic.severity);
       Alcotest.(check (option int)) "line" a.Diagnostic.line b.Diagnostic.line;
       Alcotest.(check string) "message" a.Diagnostic.message
         b.Diagnostic.message)
    ds parsed

let test_json_escapes_and_empty () =
  let d =
    {
      Diagnostic.code = "MVL001";
      severity = Diagnostic.Error;
      line = None;
      message = "quote \" backslash \\ newline \n tab \t done";
    }
  in
  (match Diagnostic.of_json (Diagnostic.to_json [ d ]) with
   | [ back ] ->
     Alcotest.(check string) "escapes survive" d.Diagnostic.message
       back.Diagnostic.message;
     Alcotest.(check (option int)) "null line" None back.Diagnostic.line
   | _ -> Alcotest.fail "expected a single diagnostic");
  Alcotest.(check int) "empty array" 0
    (List.length (Diagnostic.of_json (Diagnostic.to_json [])));
  Alcotest.check_raises "malformed input"
    (Diagnostic.Json_error "expected a JSON array") (fun () ->
      ignore (Diagnostic.of_json "\"not an array\""))

(* ---- policy ---- *)

let test_exit_codes () =
  Alcotest.(check int) "clean" 0 (Lint.exit_code (lint "init stop"));
  Alcotest.(check int) "errors" 2 (Lint.exit_code (lint seeded_spec));
  let warnings_only = lint "process P := a ; P [] rate 2.0 ; P\ninit P" in
  Alcotest.(check int) "warnings without -Werror" 0
    (Lint.exit_code warnings_only);
  let werror = { Lint.default_config with Lint.werror = true } in
  Alcotest.(check int) "warnings under -Werror" 1
    (Lint.exit_code ~config:werror warnings_only);
  (* -Werror is exit-code policy only: the labels stay warnings *)
  Alcotest.(check bool) "severity unchanged" false
    (Lint.has_errors warnings_only)

let test_overrides () =
  let dirty = "process P := a ; P [] rate 2.0 ; P\ninit P" in
  let ignore_it =
    { Lint.default_config with Lint.overrides = [ ("MVL011", None) ] }
  in
  check_flags "ignored" [] (codes (Lint.check_text ~config:ignore_it dirty));
  let promote =
    {
      Lint.default_config with
      Lint.overrides = [ ("MVL011", Some Diagnostic.Error) ];
    }
  in
  let ds = Lint.check_text ~config:promote dirty in
  Alcotest.(check bool) "promoted to error" true (Lint.has_errors ds);
  Alcotest.(check int) "promoted exit code" 2
    (Lint.exit_code ~config:promote ds)

let test_parse_override () =
  Alcotest.(check bool) "ignore" true
    (Lint.parse_override "MVL005=ignore" = Some ("MVL005", None));
  Alcotest.(check bool) "error" true
    (Lint.parse_override "MVL011=error"
     = Some ("MVL011", Some Diagnostic.Error));
  Alcotest.(check bool) "malformed level" true
    (Lint.parse_override "MVL011=loud" = None);
  Alcotest.(check bool) "no equals" true (Lint.parse_override "MVL011" = None)

let test_rule_registry () =
  Alcotest.(check bool) "at least 8 distinct codes" true
    (List.length Lint.rules >= 8);
  Alcotest.(check bool) "codes unique" true
    (let cs = List.map (fun r -> r.Lint.code) Lint.rules in
     List.length (List.sort_uniq String.compare cs) = List.length cs);
  Alcotest.(check bool) "typecheck codes registered" true
    (Lint.find_rule Mv_calc.Typecheck.code_type <> None
     && Lint.find_rule Mv_calc.Typecheck.code_undefined_process <> None)

(* Linting never raises, even on specs whose resolution fails. *)
let test_ill_formed_never_raises () =
  let ds =
    lint
      "type c = { RED, GREEN }\ntype d = { RED }\nprocess P := a ; P\ninit P"
  in
  Alcotest.(check bool) "duplicate constructor reported as MVL001" true
    (has "MVL001" ds)

(* [mval script] lints the .mvl sources a script references; the
   extraction skips .aut intermediates and deduplicates. *)
let test_script_model_sources () =
  let script =
    "\"q.aut\" = generate \"queue.mvl\" hide push ;\n\
     \"m.aut\" = branching reduction of \"q.aut\" ;\n\
     \"n.aut\" = composition of \"q.aut\" |[g]| \"other.aut\" ;\n\
     solve \"queue.mvl\" keep pop ;\n\
     expect throughput pop of \"second.mvl\" in [1.0, 2.0] ;"
  in
  Alcotest.(check (list string)) "mvl sources, deduped, first-use order"
    [ "sub/queue.mvl"; "sub/second.mvl" ]
    (Mv_core.Svl.model_sources_of_string ~dir:"sub" script);
  Alcotest.(check bool) "malformed script raises Parse_error" true
    (match Mv_core.Svl.model_sources_of_string "generate without =" with
     | _ -> false
     | exception Mv_core.Svl.Parse_error _ -> true)

(* ---- shipped models stay clean ---- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let project_file path =
  (* the test binary runs from _build/default/test; the source tree is
     three levels up (examples/ is not copied into the build tree) *)
  match
    List.find_opt Sys.file_exists
      [
        path;
        Filename.concat ".." path;
        Filename.concat "../.." path;
        Filename.concat "../../.." path;
      ]
  with
  | Some p -> p
  | None -> Alcotest.fail (path ^ " not found from " ^ Sys.getcwd ())

let test_queue_example_clean () =
  let text = read_file (project_file "examples/queue.mvl") in
  check_flags "examples/queue.mvl" [] (codes (lint text))

let test_case_studies_clean () =
  let clean name spec =
    check_flags name [] (codes (Lint.check spec))
  in
  clean "xstream single queue"
    (Mv_xstream.Queues.single ~arrival:2.0 ~service:3.0 ~capacity:3);
  clean "xstream tandem"
    (Mv_xstream.Queues.tandem ~arrival:2.0 ~transfer:4.0 ~service:3.0
       ~capacity1:2 ~capacity2:2);
  clean "faust hop chain"
    (Mv_faust.Noc.hop_chain_spec ~hops:2 ~inject:1.0 ~hop_rate:4.0
       ~cross:(Some 0.5));
  clean "fame benchmark (bus)"
    (Mv_fame.Benchmark.spec Mv_fame.Protocol.Msi Mv_fame.Topology.Bus
       Mv_fame.Mpi.Eager ~size:2 ~rates:Mv_fame.Benchmark.default_rates);
  clean "fame benchmark (crossbar)"
    (Mv_fame.Benchmark.spec Mv_fame.Protocol.Mesi Mv_fame.Topology.Crossbar
       Mv_fame.Mpi.Rendezvous ~size:2 ~rates:Mv_fame.Benchmark.default_rates)

(* The mesh closes off flowless inject gates by synchronizing on gates
   its source side never offers — a deliberate idiom MVL005 flags; the
   override mechanism is the documented way to acknowledge it. *)
let test_mesh_clean_modulo_gate_closing () =
  let spec =
    Mv_faust.Mesh.spec Mv_faust.Mesh.Port_buffered
      ~flows:Mv_faust.Mesh.crossing_flows
  in
  check_flags "mesh reports only MVL005" [ "MVL005" ]
    (codes (Lint.check spec));
  let config =
    { Lint.default_config with Lint.overrides = [ ("MVL005", None) ] }
  in
  check_flags "mesh clean with -W MVL005=ignore" []
    (codes (Lint.check ~config spec))

let suite =
  [
    Alcotest.test_case "MVL001 type error" `Quick test_mvl001_type_error;
    Alcotest.test_case "MVL002 undefined process" `Quick
      test_mvl002_undefined_process;
    Alcotest.test_case "MVL003 unused process" `Quick test_mvl003_unused_process;
    Alcotest.test_case "MVL004 unguarded recursion" `Quick
      test_mvl004_unguarded_recursion;
    Alcotest.test_case "MVL005 sync mismatch" `Quick test_mvl005_sync_mismatch;
    Alcotest.test_case "MVL005 one-sided ||" `Quick test_mvl005_full_sync;
    Alcotest.test_case "MVL006 dead hide" `Quick test_mvl006_dead_hide;
    Alcotest.test_case "MVL007 dead rename" `Quick test_mvl007_dead_rename;
    Alcotest.test_case "MVL008 dead guard" `Quick test_mvl008_dead_guard;
    Alcotest.test_case "MVL009 redundant guard" `Quick
      test_mvl009_redundant_guard;
    Alcotest.test_case "MVL010 out of range" `Quick test_mvl010_out_of_range;
    Alcotest.test_case "MVL011 rate race" `Quick test_mvl011_rate_race;
    Alcotest.test_case "MVL012 phase blowup" `Quick test_mvl012_phase_blowup;
    Alcotest.test_case "MVL013 unused formal gate" `Quick
      test_mvl013_unused_formal_gate;
    Alcotest.test_case "interval refinement" `Quick test_interval_refinement;
    Alcotest.test_case "seeded spec: all four" `Quick test_seeded_spec_all_four;
    Alcotest.test_case "sorted by line" `Quick test_diagnostics_sorted_by_line;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json escapes and errors" `Quick
      test_json_escapes_and_empty;
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "overrides" `Quick test_overrides;
    Alcotest.test_case "parse_override" `Quick test_parse_override;
    Alcotest.test_case "rule registry" `Quick test_rule_registry;
    Alcotest.test_case "ill-formed input" `Quick test_ill_formed_never_raises;
    Alcotest.test_case "script model sources" `Quick
      test_script_model_sources;
    Alcotest.test_case "queue.mvl clean" `Quick test_queue_example_clean;
    Alcotest.test_case "case studies clean" `Quick test_case_studies_clean;
    Alcotest.test_case "mesh modulo gate closing" `Quick
      test_mesh_clean_modulo_gate_closing;
  ]
