(* Tests for mv_par (chunk policies, lock-free deque, pool, loops,
   shard set) and for the
   determinism contract of every pool-enabled engine: whatever -j N,
   generation yields the identical LTS, refinement the identical
   partition, and the solvers the same vectors (bitwise for the
   matrix/replication paths, <= 1e-12 vs the sequential Gauss-Seidel
   for the steady-state solver). *)

module Pool = Mv_par.Pool
module Chunk = Mv_par.Chunk
module Deque = Mv_par.Deque
module Ctmc = Mv_markov.Ctmc
module Lts = Mv_lts.Lts
module Aut = Mv_lts.Aut

let with_pool domains f = Pool.scope ~domains f

(* ---- deque ---- *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Deque.length d);
  Alcotest.(check (option int)) "pop newest" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "pop" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "steal" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d)

let test_deque_growth () =
  let d = Deque.create () in
  for i = 0 to 999 do
    Deque.push d i
  done;
  (* drain alternately from both ends *)
  let popped = ref [] in
  for _ = 0 to 499 do
    popped := Option.get (Deque.steal d) :: !popped;
    popped := Option.get (Deque.pop d) :: !popped
  done;
  Alcotest.(check int) "drained" 0 (Deque.length d);
  Alcotest.(check int) "all items" 1000 (List.length !popped);
  Alcotest.(check (list int)) "each once" (List.init 1000 Fun.id)
    (List.sort compare !popped)

(* ---- pool ---- *)

let test_pool_runs_all_workers () =
  with_pool 4 (fun pool ->
      Alcotest.(check int) "size" 4 (Pool.size pool);
      let hits = Array.make 4 0 in
      Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1);
      Alcotest.(check (array int)) "each worker once" [| 1; 1; 1; 1 |] hits;
      Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1);
      Alcotest.(check (array int)) "reusable" [| 2; 2; 2; 2 |] hits)

let test_pool_clamps_and_inline () =
  with_pool (-3) (fun pool -> Alcotest.(check int) "clamped" 1 (Pool.size pool));
  with_pool 1 (fun pool ->
      let ran = ref false in
      Pool.run pool (fun w ->
          Alcotest.(check int) "inline worker id" 0 w;
          ran := true);
      Alcotest.(check bool) "ran inline" true !ran)

exception Boom

let test_pool_propagates_exception () =
  with_pool 3 (fun pool ->
      Alcotest.check_raises "worker exception" Boom (fun () ->
          Pool.run pool (fun w -> if w = 1 then raise Boom));
      (* the pool survives a failed job *)
      let count = Atomic.make 0 in
      Pool.run pool (fun _ -> Atomic.incr count);
      Alcotest.(check int) "usable after failure" 3 (Atomic.get count))

(* ---- parallel loops ---- *)

let test_parallel_for_covers_range () =
  List.iter
    (fun domains ->
       with_pool domains (fun pool ->
           let out = Array.make 1000 0 in
           Pool.for_ ~pool ~lo:0 ~hi:1000 (fun i -> out.(i) <- i * i);
           Alcotest.(check (array int))
             (Printf.sprintf "squares at -j %d" domains)
             (Array.init 1000 (fun i -> i * i))
             out))
    [ 1; 2; 4 ]

let test_map_reduce_deterministic () =
  (* a float reduction whose result is order-sensitive: with a Fixed
     chunk policy the boundaries and fold order are pool-size
     independent, so all pool sizes must agree bitwise *)
  let run domains =
    with_pool domains (fun pool ->
        Pool.map_reduce ~chunk:(Chunk.Fixed 1024) ~pool ~lo:1 ~hi:100_001
          ~map:(fun i -> 1.0 /. float_of_int i)
          ~reduce:( +. ) ~init:0.0)
  in
  let h1 = run 1 and h2 = run 2 and h4 = run 4 in
  Alcotest.(check bool) "harmonic j1=j2" true (h1 = h2);
  Alcotest.(check bool) "harmonic j1=j4" true (h1 = h4);
  Alcotest.(check bool) "plausible value" true (abs_float (h1 -. 12.09) < 0.01)

let test_parallel_chunks_partition () =
  with_pool 4 (fun pool ->
      let seen = Array.make 100 0 in
      Pool.chunks ~chunk:(Chunk.Fixed 7) ~pool ~lo:0 ~hi:100 (fun a b ->
          for i = a to b - 1 do
            seen.(i) <- seen.(i) + 1
          done);
      Alcotest.(check (array int)) "each index once" (Array.make 100 1) seen)

(* ---- chunk policies ---- *)

let check_cover name ranges lo hi =
  let pos = ref lo in
  Array.iter
    (fun (a, b) ->
       Alcotest.(check int) (name ^ " contiguous") !pos a;
       Alcotest.(check bool) (name ^ " nonempty") true (b > a);
       pos := b)
    ranges;
  Alcotest.(check int) (name ^ " reaches hi") hi !pos

let test_chunk_policies () =
  check_cover "auto" (Chunk.ranges ~policy:Chunk.Auto ~workers:4 ~lo:0 ~hi:1000)
    0 1000;
  let fixed = Chunk.ranges ~policy:(Chunk.Fixed 7) ~workers:4 ~lo:0 ~hi:100 in
  check_cover "fixed" fixed 0 100;
  Array.iteri
    (fun i (a, b) ->
       if i < Array.length fixed - 1 then
         Alcotest.(check int) "fixed size" 7 (b - a))
    fixed;
  let guided = Chunk.ranges ~policy:Chunk.Guided ~workers:2 ~lo:0 ~hi:10_000 in
  check_cover "guided" guided 0 10_000;
  Array.iteri
    (fun i (a, b) ->
       if i > 0 then begin
         let pa, pb = guided.(i - 1) in
         Alcotest.(check bool) "guided non-increasing" true (b - a <= pb - pa)
       end)
    guided;
  Alcotest.(check (array (pair int int))) "empty range" [||]
    (Chunk.ranges ~policy:Chunk.Auto ~workers:4 ~lo:5 ~hi:5);
  Alcotest.(check bool) "Fixed 0 rejected" true
    (try
       ignore (Chunk.ranges ~policy:(Chunk.Fixed 0) ~workers:1 ~lo:0 ~hi:10);
       false
     with Invalid_argument _ -> true)

let test_pool_scope_and_plan () =
  let r =
    Pool.scope ~chunk:(Chunk.Fixed 5) ~domains:2 (fun pool ->
        Alcotest.(check bool) "policy carried" true
          (Pool.chunk_policy pool = Chunk.Fixed 5);
        let plan = Pool.plan pool ~lo:0 ~hi:23 in
        Alcotest.(check bool) "plan = Chunk.ranges" true
          (plan = Chunk.ranges ~policy:(Chunk.Fixed 5) ~workers:2 ~lo:0 ~hi:23);
        let plan9 = Pool.plan ~chunk:(Chunk.Fixed 9) pool ~lo:0 ~hi:23 in
        Alcotest.(check bool) "per-call override" true
          (plan9 = Chunk.ranges ~policy:(Chunk.Fixed 9) ~workers:2 ~lo:0 ~hi:23);
        42)
  in
  Alcotest.(check int) "scope returns" 42 r

(* ---- deque under real contention ---- *)

(* One owner pushes [0 .. n-1] (popping every eighth push, then
   draining), [nb_stealers] domains steal concurrently. Every element
   must surface exactly once across the owner and the thieves. *)
let steal_race ~n ~nb_stealers =
  let d = Deque.create () in
  let stop = Atomic.make false in
  let stolen = Array.make nb_stealers [] in
  let stealers =
    Array.init nb_stealers (fun k ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let rec loop () =
              match Deque.steal d with
              | Some x ->
                acc := x :: !acc;
                loop ()
              | None ->
                if not (Atomic.get stop) then begin
                  Domain.cpu_relax ();
                  loop ()
                end
            in
            loop ();
            stolen.(k) <- !acc))
  in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Deque.push d i;
    if i land 7 = 7 then
      match Deque.pop d with
      | Some x -> popped := x :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some x ->
      popped := x :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join stealers;
  let all = Array.fold_left (fun acc l -> List.rev_append l acc) !popped stolen in
  List.length all = n && List.sort compare all = List.init n Fun.id

let test_deque_steal_stress () =
  Alcotest.(check bool) "100k ops, 3 thieves: no loss, no duplication" true
    (steal_race ~n:100_000 ~nb_stealers:3)

let deque_steal_prop =
  QCheck2.Test.make ~name:"deque: no loss/duplication vs stealers" ~count:10
    QCheck2.Gen.(pair (int_range 1_000 5_000) (int_range 1 3))
    (fun (n, nb_stealers) -> steal_race ~n ~nb_stealers)

(* ---- shard set ---- *)

module Int_set = Mv_par.Shard_set.Make (struct
    type t = int

    let equal = Int.equal
    let hash = Hashtbl.hash
  end)

let test_shard_set_sequential () =
  let s = Int_set.create ~shards:8 () in
  let id0, fresh0 = Int_set.add s 42 in
  let id0', fresh0' = Int_set.add s 42 in
  Alcotest.(check bool) "first add fresh" true fresh0;
  Alcotest.(check bool) "second add stale" false fresh0';
  Alcotest.(check int) "stable id" id0 id0';
  Alcotest.(check (option int)) "find" (Some id0) (Int_set.find s 42);
  Alcotest.(check (option int)) "absent" None (Int_set.find s 7);
  Alcotest.(check bool) "mem" true (Int_set.mem s 42);
  Alcotest.(check int) "get roundtrip" 42 (Int_set.get s id0);
  Alcotest.(check int) "cardinal" 1 (Int_set.cardinal s)

let test_shard_set_concurrent () =
  let s = Int_set.create () in
  let n = 10_000 in
  with_pool 4 (fun pool ->
      (* every element inserted twice, racing *)
      Pool.for_ ~pool ~lo:0 ~hi:(2 * n) (fun i ->
          ignore (Int_set.add s (i mod n))));
  Alcotest.(check int) "cardinal" n (Int_set.cardinal s);
  Alcotest.(check bool) "id_bound sane" true (Int_set.id_bound s >= n);
  (* ids are unique and roundtrip through get *)
  let ids = Hashtbl.create n in
  for x = 0 to n - 1 do
    let id = Option.get (Int_set.find s x) in
    Alcotest.(check bool) "id in bound" true (id < Int_set.id_bound s);
    Alcotest.(check bool) "id unique" false (Hashtbl.mem ids id);
    Hashtbl.replace ids id ();
    Alcotest.(check int) "get" x (Int_set.get s id)
  done

let test_shard_set_iter_snapshot () =
  let s = Int_set.create ~shards:4 () in
  for x = 0 to 99 do
    ignore (Int_set.add s x)
  done;
  let seen = Hashtbl.create 128 in
  Int_set.iter s (fun id x ->
      Alcotest.(check bool) "no duplicate" false (Hashtbl.mem seen x);
      Alcotest.(check int) "id roundtrip" x (Int_set.get s id);
      Hashtbl.add seen x ());
  Alcotest.(check int) "all visited" 100 (Hashtbl.length seen)

let test_shard_set_iter_racing_adds () =
  (* the documented snapshot contract: completed adds are visited
     exactly once, racing adds once or never, nothing twice *)
  let s = Int_set.create ~shards:4 () in
  for x = 0 to 499 do
    ignore (Int_set.add s x)
  done;
  let adder =
    Domain.spawn (fun () ->
        for x = 500 to 9_999 do
          ignore (Int_set.add s x)
        done)
  in
  let dup = ref false in
  let completed = ref 0 in
  let seen = Hashtbl.create 1024 in
  Int_set.iter s (fun _ x ->
      if Hashtbl.mem seen x then dup := true;
      Hashtbl.replace seen x ();
      if x < 500 then incr completed);
  Domain.join adder;
  Alcotest.(check bool) "no duplicates under race" false !dup;
  Alcotest.(check int) "completed adds all visited" 500 !completed;
  let total = ref 0 in
  Int_set.iter s (fun _ _ -> incr total);
  Alcotest.(check int) "quiescent iter exact" 10_000 !total

(* ---- split streams ---- *)

let test_streams_reproducible () =
  let draw rngs = Array.map (fun rng -> Mv_util.Rng.float rng) rngs in
  let a = draw (Mv_par.Streams.replications ~seed:5L 16) in
  let b = draw (Mv_par.Streams.replications ~seed:5L 16) in
  let c = draw (Mv_par.Streams.replications ~seed:6L 16) in
  Alcotest.(check bool) "same seed, same streams" true (a = b);
  Alcotest.(check bool) "different seed" true (a <> c);
  let distinct =
    Array.for_all Fun.id
      (Array.mapi (fun i x -> i = 0 || x <> a.(i - 1)) a)
  in
  Alcotest.(check bool) "streams differ pairwise" true distinct

(* ---- generation determinism across pool sizes ---- *)

let tandem_spec () =
  Mv_xstream.Queues.tandem ~arrival:2.0 ~transfer:4.0 ~service:3.0 ~capacity1:3
    ~capacity2:3

let fame_spec () = Mv_fame.Distributed.spec Mv_fame.Distributed.Correct

let generate ?pool spec = Mv_calc.State_space.lts ?pool spec

let test_generation_identical () =
  List.iter
    (fun (name, spec) ->
       let reference = Aut.to_string (generate spec) in
       List.iter
         (fun domains ->
            let parallel =
              with_pool domains (fun pool -> Aut.to_string (generate ~pool spec))
            in
            Alcotest.(check string)
              (Printf.sprintf "%s at -j %d" name domains)
              reference parallel)
         [ 2; 4 ])
    [ ("tandem", tandem_spec ()); ("fame-distributed", fame_spec ()) ]

let test_generation_truncation_identical () =
  let spec = tandem_spec () in
  let count ?pool () =
    match Mv_calc.State_space.lts ?pool ~max_states:10 spec with
    | _ -> Alcotest.fail "expected truncation"
    | exception Mv_lts.Explore.Too_many_states n -> n
  in
  let sequential = count () in
  let parallel = with_pool 4 (fun pool -> count ~pool ()) in
  Alcotest.(check int) "same bound reported" sequential parallel

(* ---- refinement determinism ---- *)

let test_partitions_identical () =
  let lts = Lts.hide (generate (tandem_spec ())) ~gates:[ "push" ] in
  let check_partition name (p : Mv_bisim.Partition.t)
      (q : Mv_bisim.Partition.t) =
    Alcotest.(check int) (name ^ " count") p.count q.count;
    Alcotest.(check (array int)) (name ^ " blocks") p.block_of q.block_of
  in
  let strong = Mv_bisim.Strong.partition lts in
  let branching = Mv_bisim.Branching.partition lts in
  let divbranching =
    Mv_bisim.Branching.partition ~divergence_sensitive:true lts
  in
  List.iter
    (fun domains ->
       with_pool domains (fun pool ->
           check_partition
             (Printf.sprintf "strong -j %d" domains)
             strong
             (Mv_bisim.Strong.partition ~pool lts);
           check_partition
             (Printf.sprintf "branching -j %d" domains)
             branching
             (Mv_bisim.Branching.partition ~pool lts);
           check_partition
             (Printf.sprintf "divbranching -j %d" domains)
             divbranching
             (Mv_bisim.Branching.partition ~pool ~divergence_sensitive:true
                lts)))
    [ 2; 4 ]

(* ---- solver determinism ---- *)

(* A birth-death chain big enough (> 64 states) to engage the parallel
   Jacobi and mat-vec paths. *)
let chain n =
  let transitions = ref [] in
  for s = 0 to n - 2 do
    transitions :=
      { Ctmc.src = s; rate = 1.0 +. (0.01 *. float_of_int s);
        actions = [ "up" ]; dst = s + 1 }
      :: { Ctmc.src = s + 1; rate = 2.0 +. (0.03 *. float_of_int s);
           actions = []; dst = s }
      :: !transitions
  done;
  Ctmc.make ~nb_states:n ~initial:0 !transitions

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := max !d (abs_float (x -. b.(i)))) a;
  !d

let test_steady_state_matches_sequential () =
  let c = chain 100 in
  let reference = Ctmc.steady_state c in
  let total = Array.fold_left ( +. ) 0.0 reference in
  Alcotest.(check bool) "normalized" true (abs_float (total -. 1.0) < 1e-9);
  let pi2 = with_pool 2 (fun pool -> Ctmc.steady_state ~pool c) in
  let pi4 = with_pool 4 (fun pool -> Ctmc.steady_state ~pool c) in
  Alcotest.(check bool) "jacobi(j2) vs gauss-seidel" true
    (max_abs_diff reference pi2 <= 1e-12);
  (* the Jacobi iteration itself is scheduling-independent: bitwise *)
  Alcotest.(check bool) "j2 = j4 bitwise" true (pi2 = pi4)

let test_transient_bitwise () =
  let c = chain 100 in
  let reference = Ctmc.transient c ~horizon:0.7 in
  List.iter
    (fun domains ->
       let dist = with_pool domains (fun pool -> Ctmc.transient ~pool c ~horizon:0.7) in
       Alcotest.(check bool)
         (Printf.sprintf "transient -j %d bitwise" domains)
         true (reference = dist))
    [ 2; 4 ]

let test_des_replications_bitwise () =
  let perf = Mv_core.Flow.performance ~keep:[ "pop" ] (tandem_spec ()) in
  let imc = perf.Mv_core.Flow.imc in
  let reference =
    Mv_sim.Des.throughput_stats imc ~action:"pop" ~horizon:200.0
      ~replications:20 ~seed:17L
  in
  List.iter
    (fun domains ->
       let stats =
         with_pool domains (fun pool ->
             Mv_sim.Des.throughput_stats ~pool imc ~action:"pop" ~horizon:200.0
               ~replications:20 ~seed:17L)
       in
       Alcotest.(check bool)
         (Printf.sprintf "throughput stats -j %d bitwise" domains)
         true (reference = stats))
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "deque lifo/fifo ends" `Quick test_deque_lifo_fifo;
    Alcotest.test_case "deque growth + drain" `Quick test_deque_growth;
    Alcotest.test_case "pool runs every worker" `Quick test_pool_runs_all_workers;
    Alcotest.test_case "pool clamps size; size 1 inline" `Quick
      test_pool_clamps_and_inline;
    Alcotest.test_case "pool propagates exceptions" `Quick
      test_pool_propagates_exception;
    Alcotest.test_case "parallel_for covers range" `Quick
      test_parallel_for_covers_range;
    Alcotest.test_case "map_reduce pool-size independent" `Quick
      test_map_reduce_deterministic;
    Alcotest.test_case "parallel_chunks partitions range" `Quick
      test_parallel_chunks_partition;
    Alcotest.test_case "chunk policies cover ranges" `Quick test_chunk_policies;
    Alcotest.test_case "pool scope + plan" `Quick test_pool_scope_and_plan;
    Alcotest.test_case "deque steal stress (100k x 3 thieves)" `Quick
      test_deque_steal_stress;
    QCheck_alcotest.to_alcotest deque_steal_prop;
    Alcotest.test_case "shard set sequential ops" `Quick
      test_shard_set_sequential;
    Alcotest.test_case "shard set concurrent inserts" `Quick
      test_shard_set_concurrent;
    Alcotest.test_case "shard set iter snapshot" `Quick
      test_shard_set_iter_snapshot;
    Alcotest.test_case "shard set iter vs racing adds" `Quick
      test_shard_set_iter_racing_adds;
    Alcotest.test_case "split streams reproducible" `Quick
      test_streams_reproducible;
    Alcotest.test_case "generation identical at any -j" `Quick
      test_generation_identical;
    Alcotest.test_case "truncation identical at any -j" `Quick
      test_generation_truncation_identical;
    Alcotest.test_case "partitions identical at any -j" `Quick
      test_partitions_identical;
    Alcotest.test_case "steady state: jacobi vs gauss-seidel" `Quick
      test_steady_state_matches_sequential;
    Alcotest.test_case "transient bitwise at any -j" `Quick
      test_transient_bitwise;
    Alcotest.test_case "DES replications bitwise at any -j" `Quick
      test_des_replications_bitwise;
  ]
