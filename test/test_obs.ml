(* Mv_obs: registry semantics, histogram bucketing, series
   decimation, span nesting, exporter validity, and the instrumented
   flow end to end. Every test resets the registry first — reset
   orphans previously obtained handles, so handles are re-acquired
   after it. *)

module Obs = Mv_obs.Obs
module Json = Mv_obs.Json
module Flow = Mv_core.Flow

let fresh () =
  Obs.reset ();
  Obs.enable ()

let member name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON member %S" name

let test_registry () =
  fresh ();
  let c = Obs.counter "t.count" in
  Alcotest.(check bool) "get-or-create returns the same counter" true
    (c == Obs.counter "t.count");
  Obs.incr c;
  Obs.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Obs.counter_value c);
  let g = Obs.gauge "t.gauge" in
  Obs.set g 2.5;
  Obs.set g 1.5;
  Alcotest.(check (float 0.0)) "gauge keeps last value" 1.5 (Obs.gauge_value g);
  (try
     ignore (Obs.gauge "t.count");
     Alcotest.fail "expected a kind clash"
   with Invalid_argument _ -> ());
  Obs.reset ();
  Alcotest.(check bool) "reset disables" false (Obs.is_enabled ());
  Obs.enable ();
  Alcotest.(check int) "reset drops values" 0
    (Obs.counter_value (Obs.counter "t.count"))

let test_disabled_is_inert () =
  Obs.reset ();
  let c = Obs.counter "t.off" and s = Obs.series "t.off.series" in
  Obs.incr c;
  Obs.push s 1.0;
  let r = Obs.span "t.off.span" (fun () -> 17) in
  Alcotest.(check int) "span still runs the body" 17 r;
  Alcotest.(check int) "disabled counter" 0 (Obs.counter_value c);
  let total, _, values = Obs.series_values s in
  Alcotest.(check int) "disabled series" 0 total;
  Alcotest.(check (list (float 0.0))) "disabled series values" [] values;
  Alcotest.(check int) "disabled span not recorded" 0
    (List.length (Obs.spans ()))

let test_histogram_buckets () =
  (* interior bucket i covers [2^(i-31), 2^(i-30)); bucket 0 collects
     non-positives and the left tail, bucket 62 the right tail *)
  Alcotest.(check int) "zero" 0 (Obs.bucket_of 0.0);
  Alcotest.(check int) "negative" 0 (Obs.bucket_of (-3.0));
  Alcotest.(check int) "1.0" 31 (Obs.bucket_of 1.0);
  Alcotest.(check int) "huge clamps" 62 (Obs.bucket_of 1e40);
  Alcotest.(check (float 0.0)) "bucket_lt 31" 2.0 (Obs.bucket_lt 31);
  Alcotest.(check (float 0.0)) "last bound" infinity (Obs.bucket_lt 62);
  List.iter
    (fun v ->
       let i = Obs.bucket_of v in
       Alcotest.(check bool)
         (Printf.sprintf "%g below its bucket bound" v)
         true
         (v < Obs.bucket_lt i);
       if i > 0 then
         Alcotest.(check bool)
           (Printf.sprintf "%g at or above the previous bound" v)
           true
           (v >= Obs.bucket_lt (i - 1)))
    [ 1e-12; 0.25; 0.9; 1.0; 1.5; 2.0; 3.14; 1024.0; 123456.789 ]

let test_series_decimation () =
  fresh ();
  let s = Obs.series "t.series" in
  for i = 0 to 9_999 do
    Obs.push s (float_of_int i)
  done;
  let total, stride, values = Obs.series_values s in
  Alcotest.(check int) "total counts every push" 10_000 total;
  Alcotest.(check bool) "stride grew past 1" true (stride > 1);
  Alcotest.(check bool) "stride is a power of two" true
    (stride land (stride - 1) = 0);
  Alcotest.(check bool) "retained within cap" true (List.length values <= 4096);
  (* deterministic shape: value k is push number k * stride *)
  List.iteri
    (fun k v ->
       Alcotest.(check (float 0.0))
         (Printf.sprintf "retained point %d" k)
         (float_of_int (k * stride))
         v)
    values

let test_span_nesting () =
  fresh ();
  let inner_result =
    Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> 42))
  in
  Alcotest.(check int) "body result" 42 inner_result;
  (try
     Obs.span "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  let find name =
    match List.find_opt (fun sp -> sp.Obs.sp_name = name) (Obs.spans ()) with
    | Some sp -> sp
    | None -> Alcotest.failf "span %S not recorded" name
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check (option int)) "outer is a root" None outer.Obs.sp_parent;
  Alcotest.(check (option int)) "inner nests under outer"
    (Some outer.Obs.sp_id) inner.Obs.sp_parent;
  Alcotest.(check bool) "outer at least as long as inner" true
    (Int64.compare outer.Obs.sp_dur_ns inner.Obs.sp_dur_ns >= 0);
  let failing = find "failing" in
  Alcotest.(check (option int)) "exception path still records" None
    failing.Obs.sp_parent;
  Alcotest.(check bool) "aggregate covers outer" true
    (Obs.span_total_s "outer" >= 0.0)

let test_metrics_json_roundtrip () =
  fresh ();
  Obs.add (Obs.counter "t.count") 3;
  Obs.set (Obs.gauge "t.gauge") 0.25;
  Obs.observe (Obs.histogram "t.hist") 1.5;
  Obs.push (Obs.series "t.series") 9.0;
  ignore (Obs.span "t.span" (fun () -> ()));
  let json = Obs.metrics_json () in
  Alcotest.(check bool) "schema tag" true
    (Json.equal (member "schema" json) (Json.String "mv-obs-metrics-v1"));
  Alcotest.(check bool) "counter exported" true
    (Json.equal (member "t.count" (member "counters" json)) (Json.Int 3));
  (match member "t.span" (member "timings" json) with
   | Json.Obj _ -> ()
   | _ -> Alcotest.fail "timings entry should be an object");
  let reparsed = Json.of_string (Json.to_string json) in
  Alcotest.(check bool) "pretty round-trip" true (Json.equal json reparsed);
  let compact = Json.of_string (Json.to_string ~compact:true json) in
  Alcotest.(check bool) "compact round-trip" true (Json.equal json compact)

let test_trace_json () =
  fresh ();
  ignore (Obs.span "alpha" (fun () -> Obs.span "beta" (fun () -> ())));
  let json = Obs.trace_json () in
  let events =
    match member "traceEvents" json with
    | Json.List l -> l
    | _ -> Alcotest.fail "traceEvents should be an array"
  in
  Alcotest.(check int) "one event per span" 2 (List.length events);
  List.iter
    (fun event ->
       Alcotest.(check bool) "complete event" true
         (Json.equal (member "ph" event) (Json.String "X"));
       List.iter
         (fun field ->
            match member field event with
            | Json.Float v -> Alcotest.(check bool) field true (v >= 0.0)
            | _ -> Alcotest.failf "%s should be a non-negative float" field)
         [ "ts"; "dur" ];
       List.iter
         (fun field ->
            match member field event with
            | Json.Int n -> Alcotest.(check bool) field true (n >= 0)
            | _ -> Alcotest.failf "%s should be a non-negative int" field)
         [ "pid"; "tid" ];
       match member "name" event with
       | Json.String _ -> ()
       | _ -> Alcotest.fail "name should be a string")
    events;
  Alcotest.(check bool) "trace round-trips" true
    (Json.equal json (Json.of_string (Json.to_string json)))

let queue_text =
  {|
process Producer := rate 2.0 ; push ; Producer
process Consumer := pop ; rate 3.0 ; Consumer
process Queue (n : int[0..3]) :=
    [n < 3] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init (Producer |[push]| Queue(0)) |[pop]| Consumer
|}

let test_flow_instrumented () =
  fresh ();
  let spec = Flow.model_of_text queue_text in
  let perf = Flow.performance ~keep:[ "pop" ] spec in
  let throughput = Flow.throughput perf ~gate:"pop" in
  Alcotest.(check bool) "throughput positive" true (throughput > 0.0);
  let stats = Flow.solver_stats perf in
  Alcotest.(check bool) "solver converged" true
    stats.Mv_markov.Solver_stats.converged;
  Alcotest.(check bool) "solver iterated" true
    (stats.Mv_markov.Solver_stats.iterations > 0);
  Alcotest.(check bool) "explorer counted states" true
    (Obs.counter_value (Obs.counter "explore.states") > 0);
  Alcotest.(check bool) "explorer counted transitions" true
    (Obs.counter_value (Obs.counter "explore.transitions") > 0);
  Alcotest.(check int) "solver iterations counter matches stats"
    stats.Mv_markov.Solver_stats.iterations
    (Obs.counter_value (Obs.counter "solver.iterations"));
  let total, _, residuals = Obs.series_values (Obs.series "solver.residual") in
  Alcotest.(check bool) "residual series populated" true (total > 0);
  Alcotest.(check bool) "residuals decrease overall" true
    (match (residuals, List.rev residuals) with
     | first :: _, last :: _ -> last <= first
     | _ -> false);
  List.iter
    (fun name ->
       Alcotest.(check bool)
         (Printf.sprintf "span %S recorded" name)
         true
         (Obs.span_total_s name > 0.0))
    [ "explore"; "flow.generate"; "imc.lump"; "ctmc.steady_state"; "flow.solve" ];
  Alcotest.(check bool) "headlines curated" true
    (List.mem_assoc "states explored" (Obs.headlines ()))

let test_parallel_matches_sequential () =
  fresh ();
  let spec = Flow.model_of_text queue_text in
  let imc = (Flow.performance ~keep:[ "pop" ] spec).Flow.imc in
  let stats pool =
    Mv_sim.Des.throughput_stats ?pool imc ~action:"pop" ~horizon:200.0
      ~replications:16 ~seed:7L
  in
  let sequential = stats None in
  let parallel =
    Mv_par.Pool.with_pool ~domains:4 (fun pool -> stats (Some pool))
  in
  Alcotest.(check (float 0.0)) "means identical across -j"
    sequential.Mv_sim.Des.mean parallel.Mv_sim.Des.mean;
  Alcotest.(check (float 0.0)) "stddevs identical across -j"
    sequential.Mv_sim.Des.stddev parallel.Mv_sim.Des.stddev;
  Alcotest.(check bool) "replications counted" true
    (Obs.counter_value (Obs.counter "des.replications") >= 32);
  Alcotest.(check bool) "events counted" true
    (Obs.counter_value (Obs.counter "des.events") > 0);
  let total, _, walls = Obs.series_values (Obs.series "des.replication_s") in
  Alcotest.(check bool) "replication wall times recorded" true (total >= 32);
  List.iter
    (fun w -> Alcotest.(check bool) "wall times non-negative" true (w >= 0.0))
    walls;
  Alcotest.(check bool) "pool accounted busy time" true
    (Obs.gauge_value (Obs.gauge "par.pool.wall_s") > 0.0)

let cleanup f () =
  Fun.protect ~finally:Obs.reset f

let suite =
  [
    Alcotest.test_case "registry get-or-create, kinds, reset" `Quick
      (cleanup test_registry);
    Alcotest.test_case "disabled recording is inert" `Quick
      (cleanup test_disabled_is_inert);
    Alcotest.test_case "histogram bucketing" `Quick
      (cleanup test_histogram_buckets);
    Alcotest.test_case "series decimation is deterministic" `Quick
      (cleanup test_series_decimation);
    Alcotest.test_case "span nesting and exception safety" `Quick
      (cleanup test_span_nesting);
    Alcotest.test_case "metrics JSON round-trip" `Quick
      (cleanup test_metrics_json_roundtrip);
    Alcotest.test_case "Chrome trace validity" `Quick
      (cleanup test_trace_json);
    Alcotest.test_case "instrumented flow end to end" `Quick
      (cleanup test_flow_instrumented);
    Alcotest.test_case "parallel replications match sequential" `Slow
      (cleanup test_parallel_matches_sequential);
  ]
