(* Mv_obs: registry semantics, histogram bucketing, series
   decimation, span nesting, exporter validity, and the instrumented
   flow end to end. Every test resets the registry first — reset
   orphans previously obtained handles, so handles are re-acquired
   after it. *)

module Obs = Mv_obs.Obs
module Json = Mv_obs.Json
module Log = Mv_obs.Log
module Openmetrics = Mv_obs.Openmetrics
module Flow = Mv_core.Flow

let fresh () =
  Obs.reset ();
  Obs.enable ()

let member name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON member %S" name

let test_registry () =
  fresh ();
  let c = Obs.counter "t.count" in
  Alcotest.(check bool) "get-or-create returns the same counter" true
    (c == Obs.counter "t.count");
  Obs.incr c;
  Obs.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Obs.counter_value c);
  let g = Obs.gauge "t.gauge" in
  Obs.set g 2.5;
  Obs.set g 1.5;
  Alcotest.(check (float 0.0)) "gauge keeps last value" 1.5 (Obs.gauge_value g);
  (try
     ignore (Obs.gauge "t.count");
     Alcotest.fail "expected a kind clash"
   with Invalid_argument _ -> ());
  Obs.reset ();
  Alcotest.(check bool) "reset disables" false (Obs.is_enabled ());
  Obs.enable ();
  Alcotest.(check int) "reset drops values" 0
    (Obs.counter_value (Obs.counter "t.count"))

let test_disabled_is_inert () =
  Obs.reset ();
  let c = Obs.counter "t.off" and s = Obs.series "t.off.series" in
  Obs.incr c;
  Obs.push s 1.0;
  let r = Obs.span "t.off.span" (fun () -> 17) in
  Alcotest.(check int) "span still runs the body" 17 r;
  Alcotest.(check int) "disabled counter" 0 (Obs.counter_value c);
  let total, _, values = Obs.series_values s in
  Alcotest.(check int) "disabled series" 0 total;
  Alcotest.(check (list (float 0.0))) "disabled series values" [] values;
  Alcotest.(check int) "disabled span not recorded" 0
    (List.length (Obs.spans ()))

let test_histogram_buckets () =
  (* interior bucket i covers [2^(i-31), 2^(i-30)); bucket 0 collects
     non-positives and the left tail, bucket 62 the right tail *)
  Alcotest.(check int) "zero" 0 (Obs.bucket_of 0.0);
  Alcotest.(check int) "negative" 0 (Obs.bucket_of (-3.0));
  Alcotest.(check int) "1.0" 31 (Obs.bucket_of 1.0);
  Alcotest.(check int) "huge clamps" 62 (Obs.bucket_of 1e40);
  Alcotest.(check (float 0.0)) "bucket_lt 31" 2.0 (Obs.bucket_lt 31);
  Alcotest.(check (float 0.0)) "last bound" infinity (Obs.bucket_lt 62);
  List.iter
    (fun v ->
       let i = Obs.bucket_of v in
       Alcotest.(check bool)
         (Printf.sprintf "%g below its bucket bound" v)
         true
         (v < Obs.bucket_lt i);
       if i > 0 then
         Alcotest.(check bool)
           (Printf.sprintf "%g at or above the previous bound" v)
           true
           (v >= Obs.bucket_lt (i - 1)))
    [ 1e-12; 0.25; 0.9; 1.0; 1.5; 2.0; 3.14; 1024.0; 123456.789 ]

let test_series_decimation () =
  fresh ();
  let s = Obs.series "t.series" in
  for i = 0 to 9_999 do
    Obs.push s (float_of_int i)
  done;
  let total, stride, values = Obs.series_values s in
  Alcotest.(check int) "total counts every push" 10_000 total;
  Alcotest.(check bool) "stride grew past 1" true (stride > 1);
  Alcotest.(check bool) "stride is a power of two" true
    (stride land (stride - 1) = 0);
  Alcotest.(check bool) "retained within cap" true (List.length values <= 4096);
  (* deterministic shape: value k is push number k * stride *)
  List.iteri
    (fun k v ->
       Alcotest.(check (float 0.0))
         (Printf.sprintf "retained point %d" k)
         (float_of_int (k * stride))
         v)
    values

let test_span_nesting () =
  fresh ();
  let inner_result =
    Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> 42))
  in
  Alcotest.(check int) "body result" 42 inner_result;
  (try
     Obs.span "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  let find name =
    match List.find_opt (fun sp -> sp.Obs.sp_name = name) (Obs.spans ()) with
    | Some sp -> sp
    | None -> Alcotest.failf "span %S not recorded" name
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check (option int)) "outer is a root" None outer.Obs.sp_parent;
  Alcotest.(check (option int)) "inner nests under outer"
    (Some outer.Obs.sp_id) inner.Obs.sp_parent;
  Alcotest.(check bool) "outer at least as long as inner" true
    (Int64.compare outer.Obs.sp_dur_ns inner.Obs.sp_dur_ns >= 0);
  let failing = find "failing" in
  Alcotest.(check (option int)) "exception path still records" None
    failing.Obs.sp_parent;
  Alcotest.(check bool) "aggregate covers outer" true
    (Obs.span_total_s "outer" >= 0.0)

let test_metrics_json_roundtrip () =
  fresh ();
  Obs.add (Obs.counter "t.count") 3;
  Obs.set (Obs.gauge "t.gauge") 0.25;
  Obs.observe (Obs.histogram "t.hist") 1.5;
  Obs.push (Obs.series "t.series") 9.0;
  ignore (Obs.span "t.span" (fun () -> ()));
  let json = Obs.metrics_json () in
  Alcotest.(check bool) "schema tag" true
    (Json.equal (member "schema" json) (Json.String "mv-obs-metrics-v1"));
  Alcotest.(check bool) "counter exported" true
    (Json.equal (member "t.count" (member "counters" json)) (Json.Int 3));
  (match member "t.span" (member "timings" json) with
   | Json.Obj _ -> ()
   | _ -> Alcotest.fail "timings entry should be an object");
  let reparsed = Json.of_string (Json.to_string json) in
  Alcotest.(check bool) "pretty round-trip" true (Json.equal json reparsed);
  let compact = Json.of_string (Json.to_string ~compact:true json) in
  Alcotest.(check bool) "compact round-trip" true (Json.equal json compact)

let test_trace_json () =
  fresh ();
  ignore (Obs.span "alpha" (fun () -> Obs.span "beta" (fun () -> ())));
  let json = Obs.trace_json () in
  let events =
    match member "traceEvents" json with
    | Json.List l -> l
    | _ -> Alcotest.fail "traceEvents should be an array"
  in
  Alcotest.(check int) "one event per span" 2 (List.length events);
  List.iter
    (fun event ->
       Alcotest.(check bool) "complete event" true
         (Json.equal (member "ph" event) (Json.String "X"));
       List.iter
         (fun field ->
            match member field event with
            | Json.Float v -> Alcotest.(check bool) field true (v >= 0.0)
            | _ -> Alcotest.failf "%s should be a non-negative float" field)
         [ "ts"; "dur" ];
       List.iter
         (fun field ->
            match member field event with
            | Json.Int n -> Alcotest.(check bool) field true (n >= 0)
            | _ -> Alcotest.failf "%s should be a non-negative int" field)
         [ "pid"; "tid" ];
       match member "name" event with
       | Json.String _ -> ()
       | _ -> Alcotest.fail "name should be a string")
    events;
  Alcotest.(check bool) "trace round-trips" true
    (Json.equal json (Json.of_string (Json.to_string json)))

let queue_text =
  {|
process Producer := rate 2.0 ; push ; Producer
process Consumer := pop ; rate 3.0 ; Consumer
process Queue (n : int[0..3]) :=
    [n < 3] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init (Producer |[push]| Queue(0)) |[pop]| Consumer
|}

let test_flow_instrumented () =
  fresh ();
  let spec = Flow.model_of_text queue_text in
  let perf = Flow.performance ~keep:[ "pop" ] spec in
  let throughput = Flow.throughput perf ~gate:"pop" in
  Alcotest.(check bool) "throughput positive" true (throughput > 0.0);
  let stats = Flow.solver_stats perf in
  Alcotest.(check bool) "solver converged" true
    stats.Mv_markov.Solver_stats.converged;
  Alcotest.(check bool) "solver iterated" true
    (stats.Mv_markov.Solver_stats.iterations > 0);
  Alcotest.(check bool) "explorer counted states" true
    (Obs.counter_value (Obs.counter "explore.states") > 0);
  Alcotest.(check bool) "explorer counted transitions" true
    (Obs.counter_value (Obs.counter "explore.transitions") > 0);
  Alcotest.(check int) "solver iterations counter matches stats"
    stats.Mv_markov.Solver_stats.iterations
    (Obs.counter_value (Obs.counter "solver.iterations"));
  let total, _, residuals = Obs.series_values (Obs.series "solver.residual") in
  Alcotest.(check bool) "residual series populated" true (total > 0);
  Alcotest.(check bool) "residuals decrease overall" true
    (match (residuals, List.rev residuals) with
     | first :: _, last :: _ -> last <= first
     | _ -> false);
  List.iter
    (fun name ->
       Alcotest.(check bool)
         (Printf.sprintf "span %S recorded" name)
         true
         (Obs.span_total_s name > 0.0))
    [ "explore"; "flow.generate"; "imc.lump"; "ctmc.steady_state"; "flow.solve" ];
  Alcotest.(check bool) "headlines curated" true
    (List.mem_assoc "states explored" (Obs.headlines ()))

let test_parallel_matches_sequential () =
  fresh ();
  let spec = Flow.model_of_text queue_text in
  let imc = (Flow.performance ~keep:[ "pop" ] spec).Flow.imc in
  let stats pool =
    Mv_sim.Des.throughput_stats ?pool imc ~action:"pop" ~horizon:200.0
      ~replications:16 ~seed:7L
  in
  let sequential = stats None in
  let parallel =
    Mv_par.Pool.scope ~domains:4 (fun pool -> stats (Some pool))
  in
  Alcotest.(check (float 0.0)) "means identical across -j"
    sequential.Mv_sim.Des.mean parallel.Mv_sim.Des.mean;
  Alcotest.(check (float 0.0)) "stddevs identical across -j"
    sequential.Mv_sim.Des.stddev parallel.Mv_sim.Des.stddev;
  Alcotest.(check bool) "replications counted" true
    (Obs.counter_value (Obs.counter "des.replications") >= 32);
  Alcotest.(check bool) "events counted" true
    (Obs.counter_value (Obs.counter "des.events") > 0);
  let total, _, walls = Obs.series_values (Obs.series "des.replication_s") in
  Alcotest.(check bool) "replication wall times recorded" true (total >= 32);
  List.iter
    (fun w -> Alcotest.(check bool) "wall times non-negative" true (w >= 0.0))
    walls;
  Alcotest.(check bool) "pool accounted busy time" true
    (Obs.gauge_value (Obs.gauge "par.pool.wall_s") > 0.0)

let test_clock_monotone_across_domains () =
  (* regression for the lock-free CAS-max clamp: no domain may ever
     observe the shared clock moving backwards *)
  let t0 = Obs.Clock.now_ns () in
  let reads_per_domain = 10_000 in
  let monotone =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop i last ok =
              if i = 0 then ok
              else
                let t = Obs.Clock.now_ns () in
                loop (i - 1) t (ok && Int64.compare last t <= 0)
            in
            loop reads_per_domain (Obs.Clock.now_ns ()) true))
    |> Array.map Domain.join
  in
  Array.iteri
    (fun i ok ->
       Alcotest.(check bool)
         (Printf.sprintf "domain %d saw a monotone clock" i)
         true ok)
    monotone;
  Alcotest.(check bool) "clock advanced across the whole test" true
    (Int64.compare t0 (Obs.Clock.now_ns ()) <= 0)

let test_reset_with_open_span () =
  (* a span still open when the registry is reset must not record into
     the fresh epoch — neither itself nor as a dangling parent *)
  fresh ();
  ignore
    (Obs.span "outer" (fun () ->
         Obs.reset ();
         Obs.enable ();
         Obs.span "inner" (fun () -> 5)));
  match Obs.spans () with
  | [ inner ] ->
    Alcotest.(check string) "only the post-reset span records" "inner"
      inner.Obs.sp_name;
    Alcotest.(check (option int)) "inner is a root, not outer's child" None
      inner.Obs.sp_parent
  | spans ->
    Alcotest.failf "expected exactly the inner span, got %d span(s)"
      (List.length spans)

let quantile_prop =
  (* estimates are monotone in q and always land inside the bucket
     holding the exact sample quantile *)
  QCheck2.Test.make
    ~name:"quantile estimates are monotone and bucket-accurate" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (map (fun i -> (float_of_int i +. 1.0) /. 1000.0) (int_bound 999_999)))
    (fun samples ->
       fresh ();
       let h = Obs.histogram "t.quantile" in
       List.iter (Obs.observe h) samples;
       let n = List.length samples in
       let sorted = List.sort compare samples in
       let qs = [ 0.0; 0.1; 0.25; 0.5; 0.9; 0.99; 1.0 ] in
       let estimates = List.map (Obs.quantile h) qs in
       let rec monotone = function
         | a :: (b :: _ as rest) -> a <= b && monotone rest
         | _ -> true
       in
       let bracketed =
         List.for_all2
           (fun q est ->
              let rank = int_of_float (ceil (max 1.0 (q *. float_of_int n))) in
              let exact = List.nth sorted (rank - 1) in
              let b = Obs.bucket_of exact in
              Obs.bucket_ge b <= est && est <= Obs.bucket_lt b)
           qs estimates
       in
       Obs.reset ();
       monotone estimates && bracketed)

let test_openmetrics_golden () =
  (* exact exposition: family splitting, label escaping, cumulative
     buckets, the mandatory +Inf line, and the EOF terminator *)
  fresh ();
  Obs.add (Obs.counter "om.requests") 3;
  Obs.set (Obs.gauge "om.depth") 2.5;
  let h1 = Obs.histogram "om.lat.alpha\"x" in
  Obs.observe h1 0.5;
  Obs.observe h1 1.5;
  Obs.observe h1 1.5;
  Obs.observe (Obs.histogram "om.lat.b\\d") 0.5;
  let rendered = Openmetrics.render ~families:[ ("om.lat.", "op") ] () in
  (* the process peak-RSS gauge is refreshed on every exposition; its
     value varies, so check it structurally and strip it before the
     golden comparison *)
  Alcotest.(check bool)
    "exposition carries process_maxrss_kb" true
    (String.split_on_char '\n' rendered
    |> List.exists (fun line ->
           match String.split_on_char ' ' line with
           | [ "process_maxrss_kb"; v ] -> float_of_string v > 0.
           | _ -> false));
  let rendered =
    String.split_on_char '\n' rendered
    |> List.filter (fun line ->
           not
             (String.starts_with ~prefix:"process_maxrss_kb" line
             || line = "# TYPE process_maxrss_kb gauge"))
    |> String.concat "\n"
  in
  let expected =
    String.concat "\n"
      [
        {|# TYPE om_requests counter|};
        {|om_requests_total 3|};
        {|# TYPE om_depth gauge|};
        {|om_depth 2.5|};
        {|# TYPE om_lat histogram|};
        {|om_lat_bucket{op="alpha\"x",le="1"} 1|};
        {|om_lat_bucket{op="alpha\"x",le="2"} 3|};
        {|om_lat_bucket{op="alpha\"x",le="+Inf"} 3|};
        {|om_lat_sum{op="alpha\"x"} 3.5|};
        {|om_lat_count{op="alpha\"x"} 3|};
        {|om_lat_bucket{op="b\\d",le="1"} 1|};
        {|om_lat_bucket{op="b\\d",le="+Inf"} 1|};
        {|om_lat_sum{op="b\\d"} 0.5|};
        {|om_lat_count{op="b\\d"} 1|};
        {|# EOF|};
        "";
      ]
  in
  Alcotest.(check string) "golden exposition" expected rendered

let test_log_ring () =
  Log.clear ();
  let captured = ref [] in
  Log.set_sink (Some (fun e -> captured := e :: !captured));
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink None;
      Log.clear ())
    (fun () ->
       Obs.with_request "req-log-1" (fun () ->
           Log.info ~op:"test" ~fields:[ ("k", Json.Int 1) ] "tagged");
       for i = 1 to Log.capacity + 49 do
         Log.debug (Printf.sprintf "event %d" i)
       done;
       let events = Log.recent () in
       Alcotest.(check int) "ring keeps the last capacity events" Log.capacity
         (List.length events);
       (* oldest first, contiguous, ending at the newest event *)
       List.iteri
         (fun i e ->
            Alcotest.(check int) "sequence contiguous" (50 + i) e.Log.ev_seq)
         events;
       Alcotest.(check int) "limit keeps the newest" 10
         (List.length (Log.recent ~limit:10 ()));
       Alcotest.(check int) "sink called once per event" (Log.capacity + 50)
         (List.length !captured);
       let tagged = List.find (fun e -> e.Log.ev_msg = "tagged") !captured in
       Alcotest.(check (option string))
         "events default to the domain's request context" (Some "req-log-1")
         tagged.Log.ev_request;
       Alcotest.(check bool) "level recorded" true
         (tagged.Log.ev_level = Log.Info);
       (* the mv-log-v1 dump document *)
       let dump = Log.dump_json ~limit:3 () in
       Alcotest.(check bool) "dump schema" true
         (Json.member "schema" dump = Some (Json.String Log.schema));
       (match Json.member "events" dump with
        | Some (Json.List l) ->
          Alcotest.(check int) "dump honours the limit" 3 (List.length l)
        | _ -> Alcotest.fail "dump lacks events");
       (* one compact line per event, parseable back *)
       let reparsed = Json.of_string (Log.line tagged) in
       Alcotest.(check bool) "log line round-trips" true
         (Json.member "msg" reparsed = Some (Json.String "tagged")))

let cleanup f () =
  Fun.protect ~finally:Obs.reset f

let suite =
  [
    Alcotest.test_case "registry get-or-create, kinds, reset" `Quick
      (cleanup test_registry);
    Alcotest.test_case "disabled recording is inert" `Quick
      (cleanup test_disabled_is_inert);
    Alcotest.test_case "histogram bucketing" `Quick
      (cleanup test_histogram_buckets);
    Alcotest.test_case "series decimation is deterministic" `Quick
      (cleanup test_series_decimation);
    Alcotest.test_case "span nesting and exception safety" `Quick
      (cleanup test_span_nesting);
    Alcotest.test_case "metrics JSON round-trip" `Quick
      (cleanup test_metrics_json_roundtrip);
    Alcotest.test_case "Chrome trace validity" `Quick
      (cleanup test_trace_json);
    Alcotest.test_case "instrumented flow end to end" `Quick
      (cleanup test_flow_instrumented);
    Alcotest.test_case "parallel replications match sequential" `Slow
      (cleanup test_parallel_matches_sequential);
    Alcotest.test_case "clock monotone across domains" `Quick
      (cleanup test_clock_monotone_across_domains);
    Alcotest.test_case "reset with an open span" `Quick
      (cleanup test_reset_with_open_span);
    QCheck_alcotest.to_alcotest quantile_prop;
    Alcotest.test_case "OpenMetrics golden exposition" `Quick
      (cleanup test_openmetrics_golden);
    Alcotest.test_case "log flight recorder" `Quick (cleanup test_log_ring);
  ]
