(* Tests for mv_store: the .mvb binary LTS format (round trips,
   corruption detection) and the content-addressed artifact cache
   (memoization, self-repair, LRU eviction, persistence) plus the
   cache's integration with Flow.Run and Svl. *)

module Lts = Mv_lts.Lts
module Label = Mv_lts.Label
module Aut = Mv_lts.Aut
module Mvb = Mv_store.Mvb
module Cache = Mv_store.Cache
module Flow = Mv_core.Flow
module Svl = Mv_core.Svl
module Json = Mv_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let build transitions ~nb_states ~initial =
  let labels = Label.create () in
  let interned =
    List.map (fun (s, l, d) -> (s, Label.intern labels l, d)) transitions
  in
  Lts.make ~nb_states ~initial ~labels interned

let sample_lts () =
  build ~nb_states:4 ~initial:0
    [ (0, "a", 1); (1, "i", 2); (2, "b !1", 3); (3, "a", 0); (0, "b !1", 2) ]

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun entry -> remove_tree (Filename.concat path entry))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let in_sandbox f =
  let dir = Filename.temp_file "mv_store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* .mvb format                                                         *)

(* Property: aut -> mvb -> aut is the identity on the serialized text
   (the formats are lossless with respect to each other). *)
let mvb_round_trip_prop =
  let gen =
    QCheck2.Gen.(
      let* nb_states = int_range 1 15 in
      let* transitions =
        list_size (int_bound 40)
          (triple (int_bound (nb_states - 1))
             (oneofl [ "a"; "b"; "i"; "G !1"; "odd \"label\""; "rate 2.5" ])
             (int_bound (nb_states - 1)))
      in
      return (nb_states, transitions))
  in
  QCheck2.Test.make ~name:"aut -> mvb -> aut identity" ~count:100 gen
    (fun (nb_states, transitions) ->
       let lts = build ~nb_states ~initial:0 transitions in
       let back = Mvb.of_string (Mvb.to_string lts) in
       Aut.to_string back = Aut.to_string lts)

let test_mvb_file_round_trip () =
  in_sandbox (fun dir ->
      let lts = sample_lts () in
      let path = Filename.concat dir "t.mvb" in
      Mvb.write_file path lts;
      let back = Mvb.read_file path in
      Alcotest.(check string) "identical" (Aut.to_string lts)
        (Aut.to_string back))

let expect_corrupt name thunk =
  match thunk () with
  | (_ : Lts.t) -> Alcotest.fail (name ^ ": expected Mvb.Corrupt")
  | exception Mvb.Corrupt _ -> ()

let test_mvb_corruption () =
  let encoded = Mvb.to_string (sample_lts ()) in
  (* flip one byte somewhere past the header: CRC must catch it *)
  let flipped = Bytes.of_string encoded in
  let i = String.length encoded / 2 in
  Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
  expect_corrupt "bit flip" (fun () ->
      Mvb.of_string (Bytes.to_string flipped));
  expect_corrupt "truncation" (fun () ->
      Mvb.of_string (String.sub encoded 0 (String.length encoded - 3)));
  expect_corrupt "trailing garbage" (fun () -> Mvb.of_string (encoded ^ "x"));
  expect_corrupt "bad magic" (fun () -> Mvb.of_string ("XYZ" ^ encoded))

let test_mvb_empty_lts () =
  let lts = build ~nb_states:1 ~initial:0 [] in
  let back = Mvb.of_string (Mvb.to_string lts) in
  Alcotest.(check int) "one state" 1 (Lts.nb_states back);
  Alcotest.(check int) "no transitions" 0 (Lts.nb_transitions back)

(* ------------------------------------------------------------------ *)
(* Varints                                                             *)

(* Property: LEB128 round trip, with the generator weighted toward the
   7-bit group boundaries (127/128, 16383/16384, ...) up to the 63-bit
   top of the OCaml int range. *)
let varint_round_trip_prop =
  let boundaries =
    List.concat_map
      (fun k ->
         let edge = 1 lsl (7 * k) in
         [ edge - 1; edge; edge + 1 ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    @ [ 0; 1; max_int - 1; max_int ]
  in
  let gen =
    QCheck2.Gen.(
      oneof [ oneofl boundaries; int_bound (1 lsl 55); int_bound 1_000_000 ])
  in
  let rec expected_len n = if n < 128 then 1 else 1 + expected_len (n lsr 7) in
  QCheck2.Test.make ~name:"varint round trip" ~count:500 gen (fun n ->
      let s = Mvb.Varint.to_string n in
      Mvb.Varint.of_string s = n && String.length s = expected_len n)

let test_varint_edges () =
  (* max_int = 2^62 - 1 occupies 62 bits: ceil(62/7) = 9 bytes *)
  Alcotest.(check int) "max_int is 9 bytes" 9
    (String.length (Mvb.Varint.to_string max_int));
  Alcotest.(check int) "max_int round trip" max_int
    (Mvb.Varint.of_string (Mvb.Varint.to_string max_int));
  let corrupt name s =
    match Mvb.Varint.of_string s with
    | (_ : int) -> Alcotest.fail (name ^ ": expected Mvb.Corrupt")
    | exception Mvb.Corrupt _ -> ()
  in
  corrupt "empty" "";
  corrupt "unterminated" "\x80\x80";
  corrupt "trailing byte" (Mvb.Varint.to_string 5 ^ "\x00");
  (* ten continuation groups put bit 70 in play: past the 63-bit limit
     of the decoder, which must refuse rather than wrap silently *)
  corrupt "overflow" "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01"

(* ------------------------------------------------------------------ *)
(* Streaming writer / segment reader                                   *)

(* Property: streaming states one at a time produces byte-identical
   files to the one-shot writer (so out-of-core generation artifacts
   are indistinguishable from in-RAM ones). *)
let stream_identity_prop =
  let gen =
    QCheck2.Gen.(
      let* nb_states = int_range 1 15 in
      let* transitions =
        list_size (int_bound 40)
          (triple (int_bound (nb_states - 1))
             (oneofl [ "a"; "b"; "i"; "G !1"; "rate 2.5" ])
             (int_bound (nb_states - 1)))
      in
      return (nb_states, transitions))
  in
  QCheck2.Test.make ~name:"streamed .mvb = materialized .mvb" ~count:100 gen
    (fun (nb_states, transitions) ->
       in_sandbox (fun dir ->
           let lts = build ~nb_states ~initial:0 transitions in
           let whole = Filename.concat dir "whole.mvb" in
           let streamed = Filename.concat dir "streamed.mvb" in
           Mvb.write_file whole lts;
           let w = Mvb.Stream.create ~labels:(Lts.labels lts) streamed in
           for s = 0 to Lts.nb_states lts - 1 do
             let moves = ref [] in
             Lts.iter_out lts s (fun l d -> moves := (l, d) :: !moves);
             (* reversed, deliberately: add_state must canonicalize *)
             Mvb.Stream.add_state w (Array.of_list !moves)
           done;
           Mvb.Stream.finish w ~initial:(Lts.initial lts);
           read_file whole = read_file streamed))

let test_stream_canonicalizes () =
  in_sandbox (fun dir ->
      let lts =
        build ~nb_states:2 ~initial:0 [ (0, "a", 1); (0, "b", 1); (1, "a", 0) ]
      in
      let whole = Filename.concat dir "whole.mvb" in
      let streamed = Filename.concat dir "streamed.mvb" in
      Mvb.write_file whole lts;
      let labels = Lts.labels lts in
      let a = Mv_lts.Label.intern labels "a"
      and b = Mv_lts.Label.intern labels "b" in
      let w = Mvb.Stream.create ~labels streamed in
      (* out of order and duplicated: the writer must sort + dedup
         exactly like Lts.make *)
      Mvb.Stream.add_state w [| (b, 1); (a, 1); (a, 1) |];
      Mvb.Stream.add_state w [| (a, 0) |];
      Mvb.Stream.finish w ~initial:0;
      Alcotest.(check string) "identical bytes" (read_file whole)
        (read_file streamed))

let test_stream_validates () =
  in_sandbox (fun dir ->
      let path = Filename.concat dir "bad.mvb" in
      let labels = Mv_lts.Label.create () in
      let a = Mv_lts.Label.intern labels "a" in
      let w = Mvb.Stream.create ~labels path in
      Mvb.Stream.add_state w [| (a, 7) |];
      (* same contract as [Lts.make]: a dangling target is a caller
         bug, signalled as Invalid_argument, not file corruption *)
      (match Mvb.Stream.finish w ~initial:0 with
       | () -> Alcotest.fail "expected Invalid_argument: dangling target"
       | exception Invalid_argument _ -> ());
      (* a failed finish must leave no file and no scratch behind *)
      Alcotest.(check (array string)) "nothing left" [||] (Sys.readdir dir))

let test_segment_reader () =
  in_sandbox (fun dir ->
      (* > 2 directory strides (1024 states each), cyclic, irregular
         degrees: exercises skip-decoding from mid-stride offsets *)
      let n = 2500 in
      let transitions = ref [] in
      for s = 0 to n - 1 do
        transitions := (s, "step", (s + 1) mod n) :: !transitions;
        if s mod 3 = 0 then transitions := (s, "hop", (s + 7) mod n) :: !transitions
      done;
      let lts = build ~nb_states:n ~initial:0 !transitions in
      let path = Filename.concat dir "big.mvb" in
      Mvb.write_file path lts;
      let seg = Mvb.Segment.openfile path in
      Alcotest.(check int) "states" n (Mvb.Segment.nb_states seg);
      Alcotest.(check int) "initial" 0 (Mvb.Segment.initial seg);
      Alcotest.(check int) "transitions" (Lts.nb_transitions lts)
        (Mvb.Segment.nb_transitions seg);
      (* random access across stride boundaries *)
      List.iter
        (fun s ->
           Alcotest.(check int)
             (Printf.sprintf "degree of %d" s)
             (Lts.out_degree lts s)
             (Mvb.Segment.out_degree seg s);
           let expected = ref [] and got = ref [] in
           Lts.iter_out lts s (fun l d -> expected := (l, d) :: !expected);
           Mvb.Segment.iter_out seg s (fun l d -> got := (l, d) :: !got);
           Alcotest.(check (list (pair int int)))
             (Printf.sprintf "moves of %d" s)
             (List.rev !expected) (List.rev !got))
        [ 0; 1; 1023; 1024; 1025; 2047; 2048; n - 1 ];
      (* full sweep agrees with the in-RAM iteration *)
      let all = ref [] in
      Mvb.Segment.iter_all seg (fun s l d -> all := (s, l, d) :: !all);
      let reference = ref [] in
      Lts.iter_transitions lts (fun s l d -> reference := (s, l, d) :: !reference);
      Alcotest.(check int) "sweep size" (List.length !reference)
        (List.length !all);
      Alcotest.(check bool) "sweep identical" true (!all = !reference))

let test_mvb_stats () =
  in_sandbox (fun dir ->
      let lts = sample_lts () in
      let path = Filename.concat dir "t.mvb" in
      Mvb.write_file path lts;
      let s = Mvb.stats path in
      Alcotest.(check int) "states" (Lts.nb_states lts) s.Mvb.s_nb_states;
      Alcotest.(check int) "initial" (Lts.initial lts) s.Mvb.s_initial;
      Alcotest.(check int) "labels"
        (Mv_lts.Label.count (Lts.labels lts))
        s.Mvb.s_nb_labels;
      Alcotest.(check int) "transitions" (Lts.nb_transitions lts)
        s.Mvb.s_nb_transitions;
      Alcotest.(check int) "file bytes"
        (in_channel_length (open_in_bin path))
        s.Mvb.s_file_bytes)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_memoize () =
  in_sandbox (fun dir ->
      let cache = Cache.open_dir (Filename.concat dir "c") in
      let computed = ref 0 in
      let compute () =
        incr computed;
        sample_lts ()
      in
      let a = Cache.memoize_lts cache ~op:"t" "source" compute in
      let b = Cache.memoize_lts cache ~op:"t" "source" compute in
      Alcotest.(check int) "computed once" 1 !computed;
      Alcotest.(check string) "identical results" (Aut.to_string a)
        (Aut.to_string b);
      let hits, misses = Cache.session cache in
      Alcotest.(check (pair int int)) "one hit, one miss" (1, 1) (hits, misses);
      (* different op or params or source: distinct keys *)
      ignore (Cache.memoize_lts cache ~op:"u" "source" compute);
      ignore
        (Cache.memoize_lts cache ~op:"t" ~params:[ ("k", "v") ] "source"
           compute);
      ignore (Cache.memoize_lts cache ~op:"t" "other source" compute);
      Alcotest.(check int) "each recomputed" 4 !computed;
      (* params order does not matter *)
      Alcotest.(check string) "params order canonical"
        (Cache.key ~op:"o" ~params:[ ("a", "1"); ("b", "2") ] "s")
        (Cache.key ~op:"o" ~params:[ ("b", "2"); ("a", "1") ] "s"))

let test_cache_repairs_corruption () =
  in_sandbox (fun dir ->
      let cache = Cache.open_dir (Filename.concat dir "c") in
      let computed = ref 0 in
      let compute () =
        incr computed;
        sample_lts ()
      in
      ignore (Cache.memoize_lts cache ~op:"t" "s" compute);
      (* poison every stored object on disk *)
      let objects = Filename.concat (Filename.concat dir "c") "objects" in
      Array.iter
        (fun name ->
           let path = Filename.concat objects name in
           let oc = open_out_bin path in
           output_string oc "garbage";
           close_out oc)
        (Sys.readdir objects);
      (* the poisoned entry is a miss; recomputation repairs it *)
      ignore (Cache.memoize_lts cache ~op:"t" "s" compute);
      Alcotest.(check int) "recomputed after poisoning" 2 !computed;
      ignore (Cache.memoize_lts cache ~op:"t" "s" compute);
      Alcotest.(check int) "repaired" 2 !computed;
      (* truncation of the object file is also caught *)
      Array.iter
        (fun name ->
           let path = Filename.concat objects name in
           let contents =
             In_channel.with_open_bin path In_channel.input_all
           in
           let oc = open_out_bin path in
           output_string oc (String.sub contents 0 5);
           close_out oc)
        (Sys.readdir objects);
      ignore (Cache.memoize_lts cache ~op:"t" "s" compute);
      Alcotest.(check int) "recomputed after truncation" 3 !computed)

let test_cache_eviction () =
  in_sandbox (fun dir ->
      let payload i = String.make 100 (Char.chr (Char.code 'a' + i)) in
      let cache = Cache.open_dir ~max_bytes:250 (Filename.concat dir "c") in
      for i = 0 to 4 do
        Cache.store cache ~key:(Cache.key ~op:"raw" (string_of_int i)) ~op:"raw"
          (payload i)
      done;
      let s = Cache.stats cache in
      Alcotest.(check bool) "within cap" true (s.Cache.bytes <= 250);
      Alcotest.(check int) "entries evicted down to cap" 2 s.Cache.entries;
      Alcotest.(check int) "evictions counted" 3 s.Cache.evictions;
      (* the survivors are the most recently stored *)
      Alcotest.(check bool) "LRU evicts oldest" true
        (Cache.find cache ~key:(Cache.key ~op:"raw" "4") <> None);
      Alcotest.(check bool) "oldest gone" true
        (Cache.find cache ~key:(Cache.key ~op:"raw" "0") = None))

let test_cache_persistence () =
  in_sandbox (fun dir ->
      let root = Filename.concat dir "c" in
      let computed = ref 0 in
      let compute () =
        incr computed;
        sample_lts ()
      in
      let cache = Cache.open_dir root in
      ignore (Cache.memoize_lts cache ~op:"t" "s" compute);
      (* a fresh handle on the same directory sees the entry *)
      let reopened = Cache.open_dir root in
      ignore (Cache.memoize_lts reopened ~op:"t" "s" compute);
      Alcotest.(check int) "hit across handles" 1 !computed;
      let s = Cache.stats reopened in
      Alcotest.(check bool) "lifetime hits persisted" true (s.Cache.hits >= 1);
      (* deleting the index forces a rebuild from the object files *)
      Sys.remove (Filename.concat root "index.json");
      let rebuilt = Cache.open_dir root in
      ignore (Cache.memoize_lts rebuilt ~op:"t" "s" compute);
      Alcotest.(check int) "hit after index rebuild" 1 !computed;
      (* clear removes everything *)
      Alcotest.(check int) "clear" 1 (Cache.clear rebuilt);
      ignore (Cache.memoize_lts rebuilt ~op:"t" "s" compute);
      Alcotest.(check int) "recomputed after clear" 2 !computed)

let test_stats_json () =
  in_sandbox (fun dir ->
      let cache = Cache.open_dir (Filename.concat dir "c") in
      Cache.store cache ~key:(Cache.key ~op:"raw" "x") ~op:"raw" "payload";
      let json = Json.of_string (Json.to_string (Cache.stats_json cache)) in
      Alcotest.(check bool) "schema" true
        (Json.member "schema" json = Some (Json.String "mv-store-stats-v1"));
      Alcotest.(check bool) "entries" true
        (Json.member "entries" json = Some (Json.Int 1)))

(* ------------------------------------------------------------------ *)
(* Flow integration                                                    *)

let queue_model =
  {|
process Producer := rate 2.0 ; push ; Producer
process Consumer := pop ; rate 3.0 ; Consumer
process Queue (n : int[0..2]) :=
    [n < 2] -> push ; Queue(n + 1)
 [] [n > 0] -> pop ; Queue(n - 1)
init (Producer |[push]| Queue(0)) |[pop]| Consumer
|}

(* The pool is not part of the cache key: a sequential run primes the
   cache for a parallel one and vice versa. *)
let test_pool_not_in_key () =
  in_sandbox (fun dir ->
      let cache = Cache.open_dir (Filename.concat dir "c") in
      let spec = Flow.model_of_text queue_model in
      let sequential =
        Flow.Run.generate
          Flow.Config.(with_cache (Some cache) default)
          spec
      in
      let parallel =
        Mv_par.Pool.scope ~domains:4 (fun pool ->
            Flow.Run.generate
              Flow.Config.(default |> with_cache (Some cache) |> with_pool (Some pool))
              spec)
      in
      let hits, misses = Cache.session cache in
      Alcotest.(check (pair int int)) "second run hits" (1, 1) (hits, misses);
      Alcotest.(check string) "identical LTS" (Aut.to_string sequential)
        (Aut.to_string parallel))

let test_flow_performance_cached () =
  in_sandbox (fun dir ->
      let cache = Cache.open_dir (Filename.concat dir "c") in
      let spec = Flow.model_of_text queue_model in
      let config =
        Flow.Config.(default |> with_cache (Some cache) |> with_keep [ "pop" ])
      in
      let cold = Flow.Run.performance config spec in
      let cold_t = Flow.throughput cold ~gate:"pop" in
      let _, misses0 = Cache.session cache in
      let warm = Flow.Run.performance config spec in
      let warm_t = Flow.throughput warm ~gate:"pop" in
      let _, misses1 = Cache.session cache in
      Alcotest.(check int) "no new misses when warm" misses0 misses1;
      (* bit-identical, not approximately equal: the lumped IMC crossed
         the cache through the exact-rate encoding *)
      Alcotest.(check bool) "identical throughput" true (cold_t = warm_t))

(* ------------------------------------------------------------------ *)
(* Svl integration                                                     *)

let svl_script =
  {|
"q.aut" = generate "queue.mvl" hide push ;
"min.mvb" = branching reduction of "q.aut" ;
check deadlock of "q.aut" ;
solve "queue.mvl" keep pop ;
|}

let write_queue_model dir =
  let oc = open_out (Filename.concat dir "queue.mvl") in
  output_string oc queue_model;
  close_out oc

let strip step = (step.Svl.description, Svl.ok step, step.Svl.detail)

let test_svl_warm_run () =
  in_sandbox (fun dir ->
      write_queue_model dir;
      let cache = Cache.open_dir (Filename.concat dir "c") in
      let cold = Svl.run_string ~cache ~dir svl_script in
      let warm = Svl.run_string ~cache ~dir svl_script in
      Alcotest.(check bool) "all ok" true
        (Svl.all_ok cold && Svl.all_ok warm);
      Alcotest.(check (list (triple string bool string)))
        "warm run byte-identical" (List.map strip cold) (List.map strip warm);
      (* every cacheable warm step is all hits, no misses *)
      List.iter
        (fun step ->
           match step.Svl.outcome with
           | Svl.Passed { cache = Some { hits; misses }; _ } ->
             if
               Astring.String.is_infix ~affix:"generate"
                 step.Svl.description
               || Astring.String.is_infix ~affix:"reduction"
                    step.Svl.description
             then begin
               Alcotest.(check bool)
                 (step.Svl.description ^ ": warm hits") true (hits > 0);
               Alcotest.(check int)
                 (step.Svl.description ^ ": no warm misses") 0 misses
             end
           | Svl.Passed { cache = None; _ } ->
             Alcotest.fail "cache provenance missing"
           | Svl.Failed_check | Svl.Hard_error _ -> ())
        warm)

let test_svl_steps_json () =
  in_sandbox (fun dir ->
      write_queue_model dir;
      let cache = Cache.open_dir (Filename.concat dir "c") in
      let steps = Svl.run_string ~cache ~dir svl_script in
      let json = Json.of_string (Json.to_string (Svl.steps_json steps)) in
      Alcotest.(check bool) "schema" true
        (Json.member "schema" json = Some (Json.String "mv-svl-steps-v1"));
      match Json.member "steps" json with
      | Some (Json.List items) ->
        Alcotest.(check int) "all steps rendered" (List.length steps)
          (List.length items);
        List.iter
          (fun item ->
             match Json.member "outcome" item with
             | Some (Json.String ("passed" | "failed" | "error")) -> ()
             | _ -> Alcotest.fail "bad outcome tag")
          items;
        (* the generate step records its artifact and cache traffic *)
        let first = List.hd items in
        (match Json.member "artifacts" first with
         | Some (Json.List [ Json.String path ]) ->
           Alcotest.(check bool) "artifact path resolved" true
             (Astring.String.is_suffix ~affix:"q.aut" path)
         | _ -> Alcotest.fail "expected one artifact");
        (match Json.member "cache" first with
         | Some (Json.Obj _) -> ()
         | _ -> Alcotest.fail "expected cache object")
      | _ -> Alcotest.fail "expected steps list")

let test_svl_unwritable_target () =
  in_sandbox (fun dir ->
      write_queue_model dir;
      (* the target's parent directory does not exist: a hard error
         reported against the real statement, not an exception *)
      let steps =
        Svl.run_string ~dir {|"missing_sub/q.aut" = generate "queue.mvl" ;|}
      in
      Alcotest.(check int) "stopped" 1 (List.length steps);
      match (List.hd steps).Svl.outcome with
      | Svl.Hard_error _ ->
        Alcotest.(check bool) "real description" true
          (Astring.String.is_infix ~affix:"missing_sub/q.aut"
             (List.hd steps).Svl.description)
      | Svl.Passed _ | Svl.Failed_check ->
        Alcotest.fail "expected Hard_error")

(* ------------------------------------------------------------------ *)
(* Out-of-core flow (generate_mvb / minimize_mvb)                      *)

(* The acceptance contract of the out-of-core pipeline: the streamed
   artifact and the minimized artifact are byte-identical to their
   in-RAM counterparts, at every pool size, even when the seen set is
   forced to spill. *)
let check_ooc_flow ~pool () =
  in_sandbox (fun dir ->
      let spec = Flow.model_of_text queue_model in
      let config =
        { Flow.Config.default with
          pool;
          scratch_dir = Some dir;
          (* tiny hot budget: forces spill runs + batched cold lookups *)
          mem_budget_mb = Some 1;
        }
      in
      let ram = Flow.Run.generate { Flow.Config.default with pool } spec in
      let ram_path = Filename.concat dir "ram.mvb" in
      Mvb.write_file ram_path ram;
      let ooc_path = Filename.concat dir "ooc.mvb" in
      let outcome = Flow.Run.generate_mvb config spec ~out:ooc_path in
      Alcotest.(check int) "states" (Lts.nb_states ram)
        outcome.Mv_lts.Explore.ooc_states;
      Alcotest.(check string) "generated bytes identical" (read_file ram_path)
        (read_file ooc_path);
      let ram_min =
        Flow.Run.minimize { Flow.Config.default with pool } Flow.Strong ram
      in
      let ram_min_path = Filename.concat dir "ram_min.mvb" in
      Mvb.write_file ram_min_path ram_min;
      let ooc_min_path = Filename.concat dir "ooc_min.mvb" in
      let minimized =
        Flow.Run.minimize_mvb config Flow.Strong ~src:ooc_path ~dst:ooc_min_path
      in
      Alcotest.(check string) "minimized bytes identical"
        (read_file ram_min_path) (read_file ooc_min_path);
      Alcotest.(check int) "minimized states" (Lts.nb_states ram_min)
        (Lts.nb_states minimized);
      (* only the four artifacts remain: every spill run, mmap scratch
         and stream temp file has been cleaned up *)
      Alcotest.(check (list string)) "no scratch left"
        [ "ooc.mvb"; "ooc_min.mvb"; "ram.mvb"; "ram_min.mvb" ]
        (List.sort compare (Array.to_list (Sys.readdir dir))))

let test_ooc_flow_sequential () = check_ooc_flow ~pool:None ()

let test_ooc_flow_parallel () =
  Mv_par.Pool.scope ~domains:4 (fun pool -> check_ooc_flow ~pool:(Some pool) ())

let test_minimize_mvb_strong_only () =
  in_sandbox (fun dir ->
      let path = Filename.concat dir "t.mvb" in
      Mvb.write_file path (sample_lts ());
      match
        Flow.Run.minimize_mvb Flow.Config.default Flow.Branching ~src:path
          ~dst:(Filename.concat dir "o.mvb")
      with
      | (_ : Lts.t) -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let suite =
  [
    QCheck_alcotest.to_alcotest mvb_round_trip_prop;
    Alcotest.test_case "mvb file round trip" `Quick test_mvb_file_round_trip;
    Alcotest.test_case "mvb corruption detection" `Quick test_mvb_corruption;
    Alcotest.test_case "mvb empty lts" `Quick test_mvb_empty_lts;
    QCheck_alcotest.to_alcotest varint_round_trip_prop;
    Alcotest.test_case "varint edges" `Quick test_varint_edges;
    QCheck_alcotest.to_alcotest stream_identity_prop;
    Alcotest.test_case "stream canonicalizes" `Quick test_stream_canonicalizes;
    Alcotest.test_case "stream validates" `Quick test_stream_validates;
    Alcotest.test_case "segment reader" `Quick test_segment_reader;
    Alcotest.test_case "mvb stats" `Quick test_mvb_stats;
    Alcotest.test_case "ooc flow sequential" `Quick test_ooc_flow_sequential;
    Alcotest.test_case "ooc flow parallel" `Quick test_ooc_flow_parallel;
    Alcotest.test_case "minimize_mvb strong only" `Quick
      test_minimize_mvb_strong_only;
    Alcotest.test_case "cache memoize" `Quick test_cache_memoize;
    Alcotest.test_case "cache repairs corruption" `Quick
      test_cache_repairs_corruption;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache persistence" `Quick test_cache_persistence;
    Alcotest.test_case "cache stats json" `Quick test_stats_json;
    Alcotest.test_case "pool not in key" `Quick test_pool_not_in_key;
    Alcotest.test_case "performance pipeline cached" `Quick
      test_flow_performance_cached;
    Alcotest.test_case "svl warm run" `Quick test_svl_warm_run;
    Alcotest.test_case "svl steps json" `Quick test_svl_steps_json;
    Alcotest.test_case "svl unwritable target" `Quick
      test_svl_unwritable_target;
  ]
