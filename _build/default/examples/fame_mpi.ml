(* FAME2 case study: verify the distributed MSI directory protocol
   (including catching an injected bug), then predict the latency of an
   MPI ping-pong benchmark across interconnect topologies, MPI
   implementations and coherence protocols - the Bull workloads of the
   paper's SS3-4.

   Run with: dune exec examples/fame_mpi.exe *)

module Protocol = Mv_fame.Protocol
module Topology = Mv_fame.Topology
module Mpi = Mv_fame.Mpi
module Benchmark = Mv_fame.Benchmark
module Distributed = Mv_fame.Distributed
module Flow = Mv_core.Flow
module Report = Mv_core.Report

let () =
  (* 1. Verify the message-level MSI directory protocol *)
  let verify label bug properties =
    let v = Flow.verify (Distributed.spec bug) properties in
    Printf.printf "%s (%d states):\n" label
      (Mv_lts.Lts.nb_states v.Flow.lts);
    List.iter
      (fun r ->
         Printf.printf "  %-45s %s\n" r.Flow.property_name
           (if r.Flow.holds then "holds" else "VIOLATED"))
      v.Flow.results
  in
  verify "MSI directory protocol" Distributed.Correct Distributed.properties;
  verify "with dropped invalidation (injected bug)"
    Distributed.Dropped_invalidation
    [ Distributed.coherence ];

  (* 2. Predict MPI ping-pong latency *)
  let rates = Benchmark.default_rates in
  let rows =
    List.concat_map
      (fun topology ->
         List.map
           (fun implementation ->
              let latency size =
                Benchmark.round_latency Protocol.Msi topology implementation
                  ~size ~rates
              in
              [ Topology.name topology;
                Mpi.name implementation;
                Report.float_cell (latency 1);
                Report.float_cell (latency 8) ])
           Mpi.all)
      Topology.all
  in
  Report.table
    ~title:"MPI ping-pong round latency (MSI): topology x implementation"
    ~header:[ "topology"; "mpi"; "size 1"; "size 8" ]
    rows;

  (* 3. Coherence protocol comparison on the same benchmark *)
  let rows =
    List.map
      (fun variant ->
         [ Protocol.variant_name variant;
           Report.float_cell
             (Benchmark.round_latency variant Topology.Bus Mpi.Eager ~size:1
                ~rates) ])
      [ Protocol.Msi; Protocol.Mesi; Protocol.Msi_migratory ]
  in
  Report.table ~title:"protocol comparison (bus, eager, size 1)"
    ~header:[ "protocol"; "latency" ]
    rows;

  (* 4. MPI benchmark *programs*: per-rank send/recv/barrier/work code
     running concurrently - overlapping communication separates the
     topologies more than any serialized benchmark can *)
  let module Prog = Mv_fame.Mpi_program in
  let rows =
    List.concat_map
      (fun (name, programs) ->
         List.map
           (fun topology ->
              [ name;
                Topology.name topology;
                Report.float_cell
                  (Prog.iteration_latency ~programs topology ~rates) ])
           [ Topology.Bus; Topology.Crossbar ])
      [
        ("ping-pong", Prog.pingpong ~partner:1 ~size:2);
        ("simultaneous ring x3", Prog.simultaneous_ring ~ranks:3 ~size:2);
        ("work+barrier x3", Prog.work_barrier ~ranks:3 ~work_mean:0.1);
      ]
  in
  Report.table ~title:"concurrent MPI rank programs (time per iteration)"
    ~header:[ "program"; "topology"; "latency" ]
    rows;

  (* 5. The eager/rendezvous crossover *)
  let rows =
    List.map
      (fun size ->
         let eager =
           Benchmark.round_latency Protocol.Msi Topology.Bus Mpi.Eager ~size
             ~rates
         in
         let rendezvous =
           Benchmark.round_latency Protocol.Msi Topology.Bus Mpi.Rendezvous
             ~size ~rates
         in
         [ string_of_int size;
           Report.float_cell eager;
           Report.float_cell rendezvous;
           (if eager < rendezvous then "eager" else "rendezvous") ])
      [ 1; 2; 4; 8; 16 ]
  in
  Report.table ~title:"eager vs rendezvous: the crossover"
    ~header:[ "size"; "eager"; "rendezvous"; "winner" ]
    rows
