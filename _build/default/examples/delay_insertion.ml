(* The paper's performance-decoration methodology (SS4), step by step:
   (1) localize the relevant delays in the functional model,
   (2) expose the start and end of each delay as gates,
   (3) instantiate each delay by synchronizing those gates with an
       auxiliary process expressing the delay as a phase-type
       distribution.
   Then the space-accuracy tradeoff of approximating a FIXED delay by
   Erlang-k chains (the open issue in the paper's conclusion).

   Run with: dune exec examples/delay_insertion.exe *)

module Flow = Mv_core.Flow
module Phase = Mv_imc.Phase
module Report = Mv_core.Report

(* Step 1+2: the functional model, with the work delay exposed as the
   gate pair begin_work / end_work. *)
let functional_text =
  {|
process Worker := job ; begin_work ; end_work ; done ; Worker
process Source := rate 2.0 ; job ; Source
init hide begin_work, end_work, job in
  ((Source |[job]| Worker) |[begin_work, end_work]| Delay)
|}

(* Step 3: instantiate the delay with a chosen phase-type process. *)
let model_with distribution =
  let spec = Mv_calc.Parser.spec_of_string functional_text in
  let delay =
    Phase.process distribution ~name:"Delay" ~start:"begin_work"
      ~finish:"end_work"
  in
  let spec =
    { spec with Mv_calc.Ast.processes = delay :: spec.Mv_calc.Ast.processes }
  in
  Mv_calc.Typecheck.check_spec spec;
  spec

let () =
  (* any phase-type distribution slots into the same functional model *)
  let rows =
    List.map
      (fun (name, distribution) ->
         let perf = Flow.performance ~keep:[ "done" ] (model_with distribution) in
         [ name;
           string_of_int (Phase.nb_phases distribution);
           Report.float_cell (Phase.mean distribution);
           Report.float_cell (Phase.coefficient_of_variation distribution);
           Report.float_cell (Flow.throughput perf ~gate:"done") ])
      [
        ("exponential(4)", Phase.Exponential 4.0);
        ("erlang(4, 16)", Phase.Erlang (4, 16.0));
        ("hypoexp [8; 8]", Phase.Hypoexponential [ 8.0; 8.0 ]);
      ]
  in
  Report.table
    ~title:
      "one functional model, three service-time distributions (mean 0.25)"
    ~header:[ "distribution"; "phases"; "mean"; "CV"; "throughput(done)" ]
    rows;

  (* the fixed-delay approximation: more phases, sharper distribution,
     bigger chain - the space-accuracy tradeoff *)
  let delay = 0.25 in
  let rows =
    List.map
      (fun phases ->
         let distribution = Phase.erlang_of_deterministic ~phases ~delay in
         let perf =
           Flow.performance ~keep:[ "done" ] (model_with distribution)
         in
         let ctmc_states =
           Mv_markov.Ctmc.nb_states perf.Flow.conversion.Mv_imc.To_ctmc.ctmc
         in
         [ string_of_int phases;
           string_of_int ctmc_states;
           Report.float_cell (Phase.coefficient_of_variation distribution);
           Report.float_cell (Flow.throughput perf ~gate:"done");
           Report.float_cell
             (Flow.probability_by perf ~gate:"done" ~horizon:(2.0 *. delay)) ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "fixed work time (d = %.2f) as Erlang-k inside the full model: \
          state count vs distribution sharpness"
         delay)
    ~header:[ "k"; "CTMC states"; "CV"; "throughput"; "P(done by 2d)" ]
    rows;
  print_newline ();
  print_endline
    "Throughput rises slightly with k: less service variance means less\n\
     blocking (the Pollaczek-Khinchine effect), converging to the true\n\
     fixed-delay value, while the chain grows linearly in k - exactly the\n\
     space-accuracy tradeoff the paper's conclusion names for fixed-time\n\
     delays."
