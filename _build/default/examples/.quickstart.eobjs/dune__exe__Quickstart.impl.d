examples/quickstart.ml: Format List Mv_core Mv_lts Mv_mcl Mv_sim Printf
