examples/fame_mpi.ml: List Mv_core Mv_fame Mv_lts Printf
