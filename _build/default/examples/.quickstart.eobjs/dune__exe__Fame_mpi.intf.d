examples/fame_mpi.mli:
