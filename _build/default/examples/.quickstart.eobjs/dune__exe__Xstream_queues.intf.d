examples/xstream_queues.mli:
