examples/faust_noc.mli:
