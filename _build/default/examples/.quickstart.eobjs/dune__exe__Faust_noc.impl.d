examples/faust_noc.ml: Format List Mv_bisim Mv_compose Mv_core Mv_faust Mv_lts Printf
