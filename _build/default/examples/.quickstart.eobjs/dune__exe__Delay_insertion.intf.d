examples/delay_insertion.mli:
