examples/xstream_queues.ml: Array List Mv_bisim Mv_calc Mv_core Mv_xstream Printf
