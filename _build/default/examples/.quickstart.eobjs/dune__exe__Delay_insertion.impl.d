examples/delay_insertion.ml: List Mv_calc Mv_core Mv_imc Mv_markov Printf
