examples/quickstart.mli:
