(* xSTream case study: predict latency, throughput and occupancy of
   flow-controlled hardware queues, and catch the two injected
   functional issues - the xSTream workloads of the paper's SS3-4.

   Run with: dune exec examples/xstream_queues.exe *)

module Queues = Mv_xstream.Queues
module Measures = Mv_xstream.Measures
module Analytic = Mv_xstream.Analytic
module Report = Mv_core.Report

let () =
  (* performance: capacity sweep of a single flow-controlled queue *)
  let arrival = 2.0 and service = 3.0 in
  let rows =
    List.map
      (fun capacity ->
         let spec = Queues.single ~arrival ~service ~capacity in
         let s = Measures.summary spec ~capacity in
         [ string_of_int capacity;
           Report.float_cell s.Measures.throughput;
           Report.float_cell s.Measures.mean_occupancy;
           Report.float_cell s.Measures.mean_latency;
           Report.percent_cell s.Measures.blocking ])
      [ 2; 4; 8 ]
  in
  Report.table ~title:"xSTream queue: capacity sweep"
    ~header:[ "capacity"; "throughput"; "mean occupancy"; "latency"; "P(full)" ]
    rows;

  (* occupancy distribution (the quantity ST explores per the paper) *)
  let capacity = 4 in
  let spec = Queues.single ~arrival ~service ~capacity in
  let dist = Measures.occupancy_distribution spec ~capacity in
  Report.table ~title:"occupancy distribution (capacity 4)"
    ~header:[ "jobs in queue"; "probability" ]
    (List.init (capacity + 1) (fun n ->
         [ string_of_int n; Report.float_cell dist.(n) ]));

  (* credit-based flow control bounds the occupancy by construction *)
  let credited = Queues.credit ~arrival ~service ~capacity:4 ~credits:2 in
  let credited_dist = Measures.occupancy_distribution credited ~capacity:4 in
  Report.table ~title:"with 2 credits the queue never holds more than 2"
    ~header:[ "jobs in queue"; "probability" ]
    (List.init 5 (fun n ->
         [ string_of_int n; Report.float_cell credited_dist.(n) ]));

  (* verification: the two injected functional issues are caught by
     equivalence checking against the reference FIFO *)
  let reference = Mv_calc.State_space.lts (Queues.fifo_data ()) in
  let verdict name candidate =
    let lts = Mv_calc.State_space.lts candidate in
    Printf.printf "  %-28s %s\n" name
      (if Mv_bisim.Branching.equivalent reference lts then
         "equivalent to the reference FIFO"
       else "NOT equivalent (issue detected)")
  in
  print_newline ();
  print_endline "functional comparison against the reference FIFO:";
  verdict "correct queue" (Queues.fifo_data ());
  verdict "drops when full" (Queues.fifo_lossy ());
  verdict "reorders elements" (Queues.fifo_unordered ())
