(* Quickstart: model a producer / bounded buffer / consumer system in
   MVL, verify it, then decorate it with rates and predict its
   performance - the complete Multival flow in one page.

   Run with: dune exec examples/quickstart.exe *)

module Flow = Mv_core.Flow
module Formula = Mv_mcl.Formula
module Action = Mv_mcl.Action_formula

(* 1. The model: a LOTOS-like specification. [rate r ;] is a Markovian
   delay; everything else is plain rendezvous. *)
let model =
  Flow.model_of_text
    {|
process Producer := rate 2.0 ; put ; Producer
process Buffer (n : int[0..3]) :=
    [n < 3] -> put ; Buffer(n + 1)
 [] [n > 0] -> get ; Buffer(n - 1)
process Consumer := get ; rate 3.0 ; Consumer
init (Producer |[put]| Buffer(0)) |[get]| Consumer
|}

let () =
  (* 2. Functional verification: generate the state space, minimize it,
     check temporal properties. *)
  let verification =
    Flow.verify ~hide:[ "put" ] model
      [
        ("no deadlock", Formula.Macro.deadlock_free);
        ( "every put is eventually followed by a get",
          Formula.Macro.response ~trigger:(Action.Gate "put")
            ~reaction:(Action.Gate "get") );
        ("a get is always possible eventually",
         Formula.Macro.always
           (Formula.Macro.possibly (Formula.Macro.can_do (Action.Gate "get"))));
      ]
  in
  Format.printf "state space: %a@." Mv_lts.Lts.pp verification.Flow.lts;
  Format.printf "minimized  : %a@." Mv_lts.Lts.pp verification.Flow.minimized;
  List.iter
    (fun r ->
       Printf.printf "  %-45s %s\n" r.Flow.property_name
         (if r.Flow.holds then "holds" else "VIOLATED"))
    verification.Flow.results;

  (* 3. Performance evaluation: same model, stochastic pipeline.
     The [get] gate stays visible so its throughput can be queried. *)
  let perf = Flow.performance ~keep:[ "get" ] model in
  let throughput = Flow.throughput perf ~gate:"get" in
  Printf.printf "\nthroughput(get)        = %.4f jobs/s\n" throughput;
  Printf.printf "mean time to first get = %.4f s\n"
    (Flow.time_to_first perf ~gate:"get");
  Printf.printf "P(get by t=1)          = %.4f\n"
    (Flow.probability_by perf ~gate:"get" ~horizon:1.0);

  (* 4. Cross-validation with the discrete-event simulator. *)
  let simulated =
    Mv_sim.Des.throughput perf.Flow.imc ~action:"get" ~horizon:10_000.0
      ~seed:42L
  in
  Printf.printf "simulated throughput   = %.4f jobs/s (independent DES)\n"
    simulated
