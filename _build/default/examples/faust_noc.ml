(* FAUST case study: a CHP-modeled asynchronous NoC router is
   translated to MVL, verified formally, composed into a chain with
   compositional minimization, and its packet latency predicted under
   contention - the FAUST workflow of the paper's SS2-4.

   Run with: dune exec examples/faust_noc.exe *)

module Router = Mv_faust.Router
module Noc = Mv_faust.Noc
module Flow = Mv_core.Flow
module Net = Mv_compose.Net
module Report = Mv_core.Report

let () =
  (* 1. Verify the router (CHP -> MVL -> LTS -> model checking) *)
  let v = Flow.verify (Router.closed_spec ~id:"r0") (Router.properties ~id:"r0") in
  Format.printf "router under saturating traffic: %a@." Mv_lts.Lts.pp v.Flow.lts;
  List.iter
    (fun r ->
       Printf.printf "  %-45s %s\n" r.Flow.property_name
         (if r.Flow.holds then "holds" else "VIOLATED"))
    v.Flow.results;
  let spec = Router.single_packet_spec ~id:"r0" ~input:0 ~dest:1 in
  let v1 = Flow.verify spec [ Router.delivery_property ~id:"r0" ~dest:1 ] in
  List.iter
    (fun r ->
       Printf.printf "  %-45s %s\n" r.Flow.property_name
         (if r.Flow.holds then "holds" else "VIOLATED"))
    v1.Flow.results;

  (* 2. Compose routers into a chain, compositionally *)
  print_newline ();
  let node = Noc.chain ~length:3 in
  let mono = Net.evaluate ~strategy:`Monolithic node in
  let comp = Net.evaluate ~strategy:`Compositional node in
  Printf.printf "3-router chain: monolithic peak %d states, compositional %d\n"
    mono.Net.peak_states comp.Net.peak_states;
  Printf.printf "results branching-equivalent: %b\n"
    (Mv_bisim.Branching.equivalent mono.Net.result comp.Net.result);

  (* 3. The 2x2 mesh with XY routing: the naive shared-buffer router
     deadlocks under crossing traffic (the checker exhibits the
     head-of-line cycle); per-port input buffers fix it *)
  print_newline ();
  let flows = Mv_faust.Mesh.crossing_flows in
  (match Mv_faust.Mesh.deadlock_witness Mv_faust.Mesh.Shared_buffer ~flows with
   | Some t ->
     Printf.printf
       "2x2 mesh, shared-buffer routers: DEADLOCK after [%s]\n"
       (Mv_lts.Trace.to_string t)
   | None -> print_endline "2x2 mesh, shared-buffer routers: no deadlock (?)");
  let spec = Mv_faust.Mesh.spec Mv_faust.Mesh.Port_buffered ~flows in
  let vm = Flow.verify spec (Mv_faust.Mesh.properties ~flows) in
  Printf.printf "2x2 mesh, port-buffered routers: %d states, all properties %s\n"
    (Mv_lts.Lts.nb_states vm.Flow.lts)
    (if Flow.all_hold vm then "hold" else "VIOLATED");

  (* 4. Packet latency across hops, with and without cross traffic *)
  let rows =
    List.concat_map
      (fun hops ->
         List.map
           (fun cross ->
              let latency =
                Noc.mean_packet_latency ~hops ~inject:1.0 ~hop_rate:10.0 ~cross
              in
              [ string_of_int hops;
                (match cross with
                 | None -> "none"
                 | Some g -> Printf.sprintf "%.1f" g);
                Report.float_cell latency ])
           [ None; Some 4.0; Some 8.0 ])
      [ 1; 2; 4 ]
  in
  Report.table ~title:"mean packet latency (hop rate 10.0)"
    ~header:[ "hops"; "cross traffic"; "latency" ]
    rows
