(* Tests for mv_imc: IMC structure, composition, maximal progress,
   phase-type distributions, lumping, and CTMC extraction. *)

module Imc = Mv_imc.Imc
module Phase = Mv_imc.Phase
module Lump = Mv_imc.Lump
module To_ctmc = Mv_imc.To_ctmc
module Ctmc = Mv_markov.Ctmc
module Label = Mv_lts.Label
module Lts = Mv_lts.Lts

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.10g, got %.10g" msg expected actual)
    true
    (abs_float (expected -. actual) <= eps)

let simple_imc () =
  let labels = Label.create () in
  let a = Label.intern labels "a" in
  Imc.make ~nb_states:3 ~initial:0 ~labels
    ~interactive:[ (1, a, 2) ]
    ~markovian:[ (0, 2.0, 1); (2, 1.0, 0) ]

let test_structure () =
  let imc = simple_imc () in
  Alcotest.(check int) "states" 3 (Imc.nb_states imc);
  Alcotest.(check int) "interactive" 1 (Imc.nb_interactive imc);
  Alcotest.(check int) "markovian" 2 (Imc.nb_markovian imc);
  Alcotest.(check (list int)) "unstable" [ 1 ] (Imc.unstable_states imc);
  Alcotest.(check int) "interactive out" 1
    (List.length (Imc.interactive_out imc 1));
  Alcotest.(check int) "markovian out" 1 (List.length (Imc.markovian_out imc 0))

let test_lts_round_trip () =
  let imc = simple_imc () in
  let back = Imc.of_lts (Imc.to_lts imc) in
  Alcotest.(check int) "states" (Imc.nb_states imc) (Imc.nb_states back);
  Alcotest.(check int) "interactive" (Imc.nb_interactive imc)
    (Imc.nb_interactive back);
  Alcotest.(check int) "markovian" (Imc.nb_markovian imc) (Imc.nb_markovian back);
  let rates = ref [] in
  Imc.iter_markovian back (fun _ r _ -> rates := r :: !rates);
  Alcotest.(check (list (float 1e-12))) "rates" [ 2.0; 1.0 ]
    (List.sort compare !rates |> List.rev)

let test_of_lts_decodes_rates () =
  let spec = Mv_calc.Parser.spec_of_string_checked "init rate 3.5 ; a ; stop" in
  let imc = Imc.of_lts (Mv_calc.State_space.lts spec) in
  Alcotest.(check int) "one markovian" 1 (Imc.nb_markovian imc);
  Alcotest.(check int) "one interactive" 1 (Imc.nb_interactive imc);
  Imc.iter_markovian imc (fun _ r _ -> close "rate decoded" 3.5 r)

let test_hide () =
  let imc = simple_imc () in
  let hidden = Imc.hide imc ~gates:[ "a" ] in
  let all_tau = ref true in
  Imc.iter_interactive hidden (fun _ l _ -> if l <> Label.tau then all_tau := false);
  Alcotest.(check bool) "hidden to tau" true !all_tau;
  let hidden2 = Imc.hide_all imc in
  let all_tau2 = ref true in
  Imc.iter_interactive hidden2 (fun _ l _ -> if l <> Label.tau then all_tau2 := false);
  Alcotest.(check bool) "hide_all" true !all_tau2

let test_maximal_progress () =
  let labels = Label.create () in
  let imc =
    Imc.make ~nb_states:2 ~initial:0 ~labels
      ~interactive:[ (0, Label.tau, 1) ]
      ~markovian:[ (0, 5.0, 1); (1, 1.0, 0) ]
  in
  let cut = Imc.maximal_progress imc in
  Alcotest.(check int) "markovian cut at tau state" 1 (Imc.nb_markovian cut);
  Alcotest.(check int) "interactive kept" 1 (Imc.nb_interactive cut)

let test_par_sync () =
  (* a-transition synchronizes; rates interleave *)
  let labels1 = Label.create () in
  let a1 = Label.intern labels1 "a" in
  let left =
    Imc.make ~nb_states:2 ~initial:0 ~labels:labels1
      ~interactive:[ (0, a1, 1) ]
      ~markovian:[ (1, 2.0, 0) ]
  in
  let labels2 = Label.create () in
  let a2 = Label.intern labels2 "a" in
  let right =
    Imc.make ~nb_states:2 ~initial:0 ~labels:labels2
      ~interactive:[ (0, a2, 1) ]
      ~markovian:[ (1, 3.0, 0) ]
  in
  let product = Imc.par ~sync:[ "a" ] left right in
  Alcotest.(check int) "reachable product" 4 (Imc.nb_states product);
  Alcotest.(check int) "one synced interactive" 1 (Imc.nb_interactive product);
  (* without sync the a-moves interleave *)
  let free = Imc.par ~sync:[] left right in
  Alcotest.(check int) "interleaved interactive" 4 (Imc.nb_interactive free)

let test_phase_moments () =
  close "exp mean" 0.5 (Phase.mean (Phase.Exponential 2.0));
  close "erlang mean" 2.0 (Phase.mean (Phase.Erlang (4, 2.0)));
  close "erlang var" 1.0 (Phase.variance (Phase.Erlang (4, 2.0)));
  close "erlang cv" 0.5 (Phase.coefficient_of_variation (Phase.Erlang (4, 2.0)));
  close "hypoexp mean" (1.0 +. 0.5)
    (Phase.mean (Phase.Hypoexponential [ 1.0; 2.0 ]));
  Alcotest.(check int) "phases" 3 (Phase.nb_phases (Phase.Erlang (3, 1.0)));
  let det = Phase.erlang_of_deterministic ~phases:16 ~delay:2.0 in
  close "det mean" 2.0 (Phase.mean det);
  close "det cv" 0.25 (Phase.coefficient_of_variation det)

let test_phase_process_generates () =
  let proc =
    Phase.process (Phase.Erlang (3, 6.0)) ~name:"Delay" ~start:"s" ~finish:"f"
  in
  let spec =
    { Mv_calc.Ast.enums = []; processes = [ proc ];
      init = Mv_calc.Ast.Call ("Delay", [], []) }
  in
  let lts = Mv_calc.State_space.lts spec in
  (* s, 3 phases, f: 5 states in a cycle *)
  Alcotest.(check int) "cycle length" 5 (Lts.nb_states lts)

let test_phase_absorbing_mean () =
  let dist = Phase.Erlang (4, 8.0) in
  let imc = Phase.absorbing_imc dist in
  let conv = To_ctmc.convert (Imc.hide_all imc) in
  let ctmc = conv.To_ctmc.ctmc in
  let targets =
    (* the absorbing CTMC states *)
    Ctmc.absorbing_states ctmc
  in
  let h = Ctmc.mean_first_passage ctmc ~targets in
  close ~eps:1e-8 "absorption time = mean" (Phase.mean dist)
    h.(Ctmc.initial ctmc)

let test_lump_erlang_branches () =
  (* two identical parallel Erlang branches lump together *)
  let labels = Label.create () in
  let imc =
    Imc.make ~nb_states:5 ~initial:0 ~labels ~interactive:[]
      ~markovian:
        [ (0, 1.0, 1); (0, 1.0, 2); (1, 3.0, 3); (2, 3.0, 4) ]
  in
  let lumped = Lump.minimize imc in
  (* states 1,2 merge and 3,4 merge; rates 1+1 sum *)
  Alcotest.(check int) "3 states" 3 (Imc.nb_states lumped);
  let total_rate_from_initial =
    List.fold_left (fun acc (r, _) -> acc +. r) 0.0
      (Imc.markovian_out lumped (Imc.initial lumped))
  in
  close "summed rate" 2.0 total_rate_from_initial;
  Alcotest.(check bool) "lumped equivalent" true (Lump.equivalent imc lumped)

let test_lump_distinguishes_rates () =
  let labels = Label.create () in
  let imc =
    Imc.make ~nb_states:3 ~initial:0 ~labels ~interactive:[]
      ~markovian:[ (0, 1.0, 1); (0, 1.0, 2); (1, 3.0, 0); (2, 4.0, 0) ]
  in
  let lumped = Lump.minimize imc in
  Alcotest.(check int) "no lumping" 3 (Imc.nb_states lumped)

let test_to_ctmc_vanishing_chain () =
  (* 0 -2.0-> v1 -a-> v2 -tau-> 3: the chain collapses into one
     tagged transition *)
  let labels = Label.create () in
  let a = Label.intern labels "a" in
  let imc =
    Imc.make ~nb_states:4 ~initial:0 ~labels
      ~interactive:[ (1, a, 2); (2, Label.tau, 3) ]
      ~markovian:[ (0, 2.0, 1); (3, 1.0, 0) ]
  in
  let conv = To_ctmc.convert imc in
  Alcotest.(check int) "2 tangible states" 2 (Ctmc.nb_states conv.To_ctmc.ctmc);
  let found = ref false in
  Ctmc.iter_transitions conv.To_ctmc.ctmc (fun tr ->
      if tr.Ctmc.actions = [ "a" ] then begin
        found := true;
        close "rate preserved" 2.0 tr.Ctmc.rate
      end);
  Alcotest.(check bool) "action tag collected" true !found

let test_to_ctmc_probabilistic_split () =
  (* uniform scheduler splits a nondeterministic vanishing state *)
  let labels = Label.create () in
  let a = Label.intern labels "a" and b = Label.intern labels "b" in
  let imc =
    Imc.make ~nb_states:4 ~initial:0 ~labels
      ~interactive:[ (1, a, 2); (1, b, 3) ]
      ~markovian:[ (0, 4.0, 1); (2, 1.0, 0); (3, 1.0, 0) ]
  in
  Alcotest.(check (list int)) "nondet detected" [ 1 ]
    (To_ctmc.nondeterministic_states imc);
  let conv = To_ctmc.convert ~scheduler:To_ctmc.Uniform imc in
  let rates = ref [] in
  Ctmc.iter_transitions conv.To_ctmc.ctmc (fun tr ->
      if Ctmc.initial conv.To_ctmc.ctmc = tr.Ctmc.src then
        rates := (tr.Ctmc.actions, tr.Ctmc.rate) :: !rates);
  Alcotest.(check int) "split in two" 2 (List.length !rates);
  List.iter (fun (_, r) -> close "half rate" 2.0 r) !rates;
  (* Fail scheduler mirrors CADP's rejection *)
  (try
     ignore (To_ctmc.convert ~scheduler:To_ctmc.Fail imc);
     Alcotest.fail "expected Nondeterministic"
   with To_ctmc.Nondeterministic s -> Alcotest.(check int) "state" 1 s);
  (* deterministic schedulers pick one branch *)
  let conv_a = To_ctmc.convert ~scheduler:(To_ctmc.Deterministic (fun _ -> 0)) imc in
  let pi = Ctmc.steady_state conv_a.To_ctmc.ctmc in
  let tput_a = Ctmc.throughput conv_a.To_ctmc.ctmc ~pi ~action:"a" in
  let tput_b = Ctmc.throughput conv_a.To_ctmc.ctmc ~pi ~action:"b" in
  Alcotest.(check bool) "scheduler picks a" true (tput_a > 0.0 && tput_b = 0.0)

let test_to_ctmc_bounds () =
  let labels = Label.create () in
  let a = Label.intern labels "a" and b = Label.intern labels "b" in
  let imc =
    Imc.make ~nb_states:4 ~initial:0 ~labels
      ~interactive:[ (1, a, 2); (1, b, 3) ]
      ~markovian:[ (0, 4.0, 1); (2, 1.0, 0); (3, 2.0, 0) ]
  in
  let metric conv =
    let pi = Ctmc.steady_state conv.To_ctmc.ctmc in
    Ctmc.throughput conv.To_ctmc.ctmc ~pi ~action:"a"
  in
  (match To_ctmc.bounds imc ~metric ~limit:16 with
   | None -> Alcotest.fail "bounds should be computable"
   | Some (lo, hi) ->
     Alcotest.(check bool) "lo < hi" true (lo < hi);
     close "lo is never-a" 0.0 lo);
  Alcotest.(check bool) "limit respected" true
    (To_ctmc.bounds imc ~metric ~limit:1 = None)

let test_local_bounds_match_exhaustive () =
  let labels = Label.create () in
  let a = Label.intern labels "a" and b = Label.intern labels "b" in
  let imc =
    Imc.make ~nb_states:4 ~initial:0 ~labels
      ~interactive:[ (1, a, 2); (1, b, 3) ]
      ~markovian:[ (0, 2.0, 1); (2, 6.0, 0); (3, 1.5, 0) ]
  in
  let metric conv =
    let pi = Ctmc.steady_state conv.To_ctmc.ctmc in
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0
      (Ctmc.throughputs conv.To_ctmc.ctmc ~pi)
  in
  let exact_lo, exact_hi = Option.get (To_ctmc.bounds imc ~metric ~limit:64) in
  let local_lo, local_hi = To_ctmc.local_bounds imc ~metric in
  close ~eps:1e-9 "local min = exhaustive min" exact_lo local_lo;
  close ~eps:1e-9 "local max = exhaustive max" exact_hi local_hi

let test_to_ctmc_divergence () =
  (* tau cycle with no exit diverges *)
  let labels = Label.create () in
  let imc =
    Imc.make ~nb_states:3 ~initial:0 ~labels
      ~interactive:[ (1, Label.tau, 2); (2, Label.tau, 1) ]
      ~markovian:[ (0, 1.0, 1) ]
  in
  try
    ignore (To_ctmc.convert imc);
    Alcotest.fail "expected Divergence"
  with To_ctmc.Divergence _ -> ()

let test_to_ctmc_vanishing_initial () =
  (* deterministic vanishing initial state resolves without artifacts *)
  let labels = Label.create () in
  let a = Label.intern labels "a" in
  let imc =
    Imc.make ~nb_states:3 ~initial:0 ~labels
      ~interactive:[ (0, a, 1) ]
      ~markovian:[ (1, 1.0, 2); (2, 1.0, 1) ]
  in
  let conv = To_ctmc.convert imc in
  Alcotest.(check int) "no artificial state" 2 (Ctmc.nb_states conv.To_ctmc.ctmc)

let test_urgency_cut_reported () =
  (* a state with both an interactive and a Markovian transition: the
     conversion records the urgency decision *)
  let labels = Label.create () in
  let a = Label.intern labels "a" in
  let imc =
    Imc.make ~nb_states:3 ~initial:0 ~labels
      ~interactive:[ (1, a, 2) ]
      ~markovian:[ (0, 1.0, 1); (1, 5.0, 0); (2, 1.0, 0) ]
  in
  let conv = To_ctmc.convert imc in
  Alcotest.(check (list int)) "urgency cut at state 1" [ 1 ]
    conv.To_ctmc.urgency_cut;
  (* the Markovian race from the vanishing state is discarded: from
     the CTMC's view state 1 does not exist *)
  Alcotest.(check int) "two tangible states" 2 (Ctmc.nb_states conv.To_ctmc.ctmc)

let test_imc_validation () =
  let labels = Label.create () in
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Imc.make: rate must be positive") (fun () ->
      ignore
        (Imc.make ~nb_states:1 ~initial:0 ~labels ~interactive:[]
           ~markovian:[ (0, -1.0, 0) ]));
  Alcotest.check_raises "range" (Invalid_argument "Imc.make: state out of range")
    (fun () ->
       ignore
         (Imc.make ~nb_states:1 ~initial:0 ~labels
            ~interactive:[ (0, 0, 5) ]
            ~markovian:[]))

(* ---- compositional IMC construction ---- *)

let spec_of = Mv_calc.Parser.spec_of_string_checked

let mm1_network () =
  let open Mv_imc.Network in
  let producer = of_spec "producer" (spec_of "process P := rate 2.0 ; push ; P\ninit P") in
  let queue =
    of_spec "queue"
      (spec_of
         "process Q (n : int[0..3]) := [n < 3] -> push ; Q(n+1) [] [n > 0] -> \
          pop ; Q(n-1)\ninit Q(0)")
  in
  let consumer = of_spec "consumer" (spec_of "process C := pop ; rate 3.0 ; C\ninit C") in
  Par ([ "pop" ], Par ([ "push" ], producer, queue), consumer)

let test_network_strategies_agree () =
  let node = mm1_network () in
  let mono = Mv_imc.Network.evaluate ~strategy:`Monolithic node in
  let comp = Mv_imc.Network.evaluate ~strategy:`Compositional node in
  Alcotest.(check bool) "stochastically bisimilar" true
    (Lump.equivalent mono.Mv_imc.Network.result comp.Mv_imc.Network.result);
  Alcotest.(check bool) "steps recorded" true
    (List.length comp.Mv_imc.Network.steps > List.length mono.Mv_imc.Network.steps)

let test_network_matches_monolithic_spec () =
  (* composing component IMCs = generating the composite spec *)
  let node = mm1_network () in
  let comp = Mv_imc.Network.evaluate ~strategy:`Compositional node in
  let perf =
    Mv_core.Flow.performance_of_imc ~keep:[ "pop" ] comp.Mv_imc.Network.result
  in
  let tput = Mv_core.Flow.throughput perf ~gate:"pop" in
  let expected = Mv_xstream.Analytic.throughput ~arrival:2.0 ~service:3.0 ~k:5 in
  close ~eps:1e-8 "compositional IMC = closed form" expected tput

let test_network_lumps_symmetry () =
  (* a bank of identical engines lumps as it is composed *)
  let open Mv_imc.Network in
  let engine k =
    of_spec
      (Printf.sprintf "engine%d" k)
      (spec_of "process E := grab ; rate 2.0 ; done ; E\ninit E")
  in
  let source = of_spec "source" (spec_of "process S := rate 3.0 ; grab ; S\ninit S") in
  let bank = par_list [] [ engine 0; engine 1; engine 2 ] in
  let node = Hide ([ "grab" ], Par ([ "grab" ], source, bank)) in
  let mono = evaluate ~strategy:`Monolithic node in
  let comp = evaluate ~strategy:`Compositional node in
  Alcotest.(check bool)
    (Printf.sprintf "lumping reduces peak (%d vs %d)"
       comp.Mv_imc.Network.peak_states mono.Mv_imc.Network.peak_states)
    true
    (comp.Mv_imc.Network.peak_states <= mono.Mv_imc.Network.peak_states);
  Alcotest.(check bool) "final result smaller when lumped" true
    (Imc.nb_states comp.Mv_imc.Network.result
     < Imc.nb_states mono.Mv_imc.Network.result)

(* Property: lumping is sound on random IMCs - the quotient is
   stochastically bisimilar and the converted chains give the same
   visible-action throughputs. *)
let imc_gen =
  QCheck2.Gen.(
    let* nb_states = int_range 2 8 in
    let* markovian =
      list_size (int_range 1 12)
        (triple (int_bound (nb_states - 1))
           (float_range 0.5 4.0)
           (int_bound (nb_states - 1)))
    in
    let* interactive_raw =
      list_size (int_bound 5)
        (triple (int_bound (nb_states - 1))
           (oneofl [ "a"; "b"; "i" ])
           (int_bound (nb_states - 1)))
    in
    return (nb_states, markovian, interactive_raw))

let build_random_imc (nb_states, markovian, interactive_raw) =
  let labels = Label.create () in
  let interactive =
    List.map (fun (s, l, d) -> (s, Label.intern labels l, d)) interactive_raw
  in
  Imc.make ~nb_states ~initial:0 ~labels ~interactive ~markovian

let lump_sound_prop =
  QCheck2.Test.make ~name:"lump: quotient is stochastically bisimilar"
    ~count:60 imc_gen
    (fun description ->
       let imc = build_random_imc description in
       let lumped = Lump.minimize imc in
       Lump.equivalent imc lumped
       && Imc.nb_states (Lump.minimize lumped) = Imc.nb_states lumped)

let lump_preserves_throughput_prop =
  QCheck2.Test.make
    ~name:"lump: visible throughputs survive (when deterministic)" ~count:40
    imc_gen
    (fun description ->
       let imc = Imc.maximal_progress (build_random_imc description) in
       match To_ctmc.convert ~scheduler:To_ctmc.Fail imc with
       | exception To_ctmc.Nondeterministic _ -> true (* skip *)
       | exception To_ctmc.Divergence _ -> true (* skip *)
       | conv -> (
           match To_ctmc.convert ~scheduler:To_ctmc.Fail (Lump.minimize imc) with
           | exception To_ctmc.Divergence _ -> true
           | lumped_conv ->
             let tput c action =
               let pi = Ctmc.steady_state c.To_ctmc.ctmc in
               Ctmc.throughput c.To_ctmc.ctmc ~pi ~action
             in
             List.for_all
               (fun action ->
                  abs_float (tput conv action -. tput lumped_conv action) < 1e-6)
               [ "a"; "b" ]))

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "lts round trip" `Quick test_lts_round_trip;
    Alcotest.test_case "of_lts decodes rate labels" `Quick
      test_of_lts_decodes_rates;
    Alcotest.test_case "hide" `Quick test_hide;
    Alcotest.test_case "maximal progress" `Quick test_maximal_progress;
    Alcotest.test_case "parallel composition" `Quick test_par_sync;
    Alcotest.test_case "phase moments" `Quick test_phase_moments;
    Alcotest.test_case "phase process" `Quick test_phase_process_generates;
    Alcotest.test_case "phase absorption mean" `Quick test_phase_absorbing_mean;
    Alcotest.test_case "lumping merges branches" `Quick test_lump_erlang_branches;
    Alcotest.test_case "lumping distinguishes rates" `Quick
      test_lump_distinguishes_rates;
    Alcotest.test_case "vanishing chain collapse" `Quick
      test_to_ctmc_vanishing_chain;
    Alcotest.test_case "nondeterminism: uniform/fail/deterministic" `Quick
      test_to_ctmc_probabilistic_split;
    Alcotest.test_case "nondeterminism: scheduler bounds" `Quick
      test_to_ctmc_bounds;
    Alcotest.test_case "local bounds match exhaustive" `Quick
      test_local_bounds_match_exhaustive;
    Alcotest.test_case "divergence detected" `Quick test_to_ctmc_divergence;
    Alcotest.test_case "vanishing initial state" `Quick
      test_to_ctmc_vanishing_initial;
    Alcotest.test_case "urgency cut reported" `Quick test_urgency_cut_reported;
    Alcotest.test_case "imc validation" `Quick test_imc_validation;
    Alcotest.test_case "network: strategies agree" `Quick
      test_network_strategies_agree;
    Alcotest.test_case "network: matches closed form" `Quick
      test_network_matches_monolithic_spec;
    Alcotest.test_case "network: lumps symmetric banks" `Quick
      test_network_lumps_symmetry;
    QCheck_alcotest.to_alcotest lump_sound_prop;
    QCheck_alcotest.to_alcotest lump_preserves_throughput_prop;
  ]
