(* Tests for mv_sim: the discrete-event simulator cross-validated
   against closed forms and the numerical solvers. *)

module Des = Mv_sim.Des
module Imc = Mv_imc.Imc
module Phase = Mv_imc.Phase
module Label = Mv_lts.Label

let mm1k_imc ~arrival ~service ~k =
  (* birth-death IMC with a "serve"-labelled immediate action after
     each departure would complicate the chain; instead tag departures
     by going through a vanishing state *)
  let labels = Label.create () in
  let serve = Label.intern labels "serve" in
  (* states 0..k tangible; k+1..2k vanishing "departure" states *)
  let vanishing m = k + m in
  let markovian = ref [] in
  let interactive = ref [] in
  for m = 0 to k - 1 do
    markovian := (m, arrival, m + 1) :: !markovian
  done;
  for m = 1 to k do
    markovian := (m, service, vanishing m) :: !markovian;
    interactive := (vanishing m, serve, m - 1) :: !interactive
  done;
  Imc.make ~nb_states:(2 * k + 1) ~initial:0 ~labels ~interactive:!interactive
    ~markovian:!markovian

let test_throughput_vs_analytic () =
  let arrival = 2.0 and service = 3.0 and k = 4 in
  let imc = mm1k_imc ~arrival ~service ~k in
  let simulated =
    Des.throughput imc ~action:"serve" ~horizon:50_000.0 ~seed:2024L
  in
  let analytic = Mv_xstream.Analytic.throughput ~arrival ~service ~k in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f vs analytic %.4f" simulated analytic)
    true
    (abs_float (simulated -. analytic) /. analytic < 0.03)

let test_first_passage_vs_erlang () =
  let dist = Phase.Erlang (5, 10.0) in
  let imc = Phase.absorbing_imc dist in
  let absorbing = Imc.nb_states imc - 1 in
  let stats =
    Des.mean_first_passage imc ~targets:(fun s -> s = absorbing)
      ~replications:4000 ~seed:7L
  in
  let expected = Phase.mean dist in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f vs %.4f" stats.Des.mean expected)
    true
    (abs_float (stats.Des.mean -. expected) /. expected < 0.05);
  Alcotest.(check int) "replications" 4000 stats.Des.replications;
  Alcotest.(check bool) "stddev positive" true (stats.Des.stddev > 0.0)

let test_occupancy_vs_analytic () =
  let arrival = 2.0 and service = 3.0 and k = 4 in
  let imc = mm1k_imc ~arrival ~service ~k in
  let simulated =
    Des.occupancy imc
      ~reward:(fun s -> if s <= k then float_of_int s else float_of_int (s - k))
      ~horizon:50_000.0 ~seed:99L
  in
  let analytic = Mv_xstream.Analytic.mean_jobs ~arrival ~service ~k in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f vs analytic %.4f" simulated analytic)
    true
    (abs_float (simulated -. analytic) /. analytic < 0.03)

let test_absorbing_stops () =
  (* trajectory reaching an absorbing state stops early *)
  let labels = Label.create () in
  let imc =
    Imc.make ~nb_states:2 ~initial:0 ~labels ~interactive:[]
      ~markovian:[ (0, 1.0, 1) ]
  in
  let tput = Des.throughput imc ~action:"never" ~horizon:100.0 ~seed:1L in
  Alcotest.(check (float 0.0)) "no occurrences" 0.0 tput;
  let stats =
    Des.mean_first_passage imc ~max_time:50.0 ~targets:(fun _ -> false)
      ~replications:3 ~seed:1L
  in
  Alcotest.(check (float 0.0)) "aborted at bound" 50.0 stats.Des.mean

let test_determinism () =
  let imc = mm1k_imc ~arrival:1.0 ~service:2.0 ~k:3 in
  let a = Des.throughput imc ~action:"serve" ~horizon:100.0 ~seed:5L in
  let b = Des.throughput imc ~action:"serve" ~horizon:100.0 ~seed:5L in
  Alcotest.(check (float 0.0)) "same seed, same result" a b

let suite =
  [
    Alcotest.test_case "throughput vs analytic" `Slow test_throughput_vs_analytic;
    Alcotest.test_case "first passage vs Erlang" `Slow
      test_first_passage_vs_erlang;
    Alcotest.test_case "occupancy vs analytic" `Slow test_occupancy_vs_analytic;
    Alcotest.test_case "absorbing trajectories" `Quick test_absorbing_stops;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
